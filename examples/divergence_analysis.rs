//! Error-propagation analysis (paper Results I & II).
//!
//! ```text
//! cargo run --release --example divergence_analysis
//! ```
//!
//! Computes the refined local divergence Υ^C(G) — the quantity that
//! controls how far a randomized-rounding discrete scheme can drift from
//! its continuous twin (Theorem 3: deviation = O(Υ·√(d·log n)) w.h.p.) —
//! numerically from the error-propagation matrices M^t (FOS) and Q(t)
//! (SOS), and compares the resulting envelope against the deviation
//! actually measured in coupled runs.

use sodiff::core::divergence::{contribution, refined_local_divergence_at, DivergenceOptions};
use sodiff::core::prelude::*;
use sodiff::graph::generators;
use sodiff::linalg::spectral;

fn main() {
    let side = 16;
    let g = generators::torus2d(side, side);
    let n = g.node_count();
    let sp = Speeds::uniform(n);
    let spec = spectral::analyze(&g, &sp);
    let beta = spec.beta_opt();
    println!(
        "torus {side}x{side}: gap = {:.4}, beta_opt = {:.4}",
        spec.gap(),
        beta
    );

    // Edge contributions C_{k,i->j}(t): how a unit rounding error on edge
    // (i, j) at round t-s shows up at node k.
    println!("\ncontribution of edge (0,1) on node 5 over time (SOS):");
    for t in [1u64, 2, 4, 8, 16, 32] {
        let c = contribution(&g, &sp, Scheme::sos(beta), 5, 0, 1, t);
        println!("  t = {t:>3}: {c:+.6}");
    }

    // Refined local divergence for both schemes.
    let opts = DivergenceOptions::default();
    let ups_fos = refined_local_divergence_at(&g, &sp, Scheme::fos(), 0, opts);
    let ups_sos = refined_local_divergence_at(&g, &sp, Scheme::sos(beta), 0, opts);
    println!("\nrefined local divergence: FOS {ups_fos:.3}, SOS {ups_sos:.3}");

    // Theorem 3 envelope vs measured deviation of coupled runs.
    let envelope_fos = ups_fos * (4.0 * (n as f64).ln()).sqrt();
    let envelope_sos = ups_sos * (4.0 * (n as f64).ln()).sqrt();
    let rounds = 40 * side;
    let deviation_of = |scheme: Scheme| {
        Experiment::on(&g)
            .discrete(Rounding::randomized(7))
            .scheme(scheme)
            .init(InitialLoad::paper_default(n))
            .build()
            .expect("valid experiment")
            .coupled_deviation(rounds)
            .expect("discrete experiment")
    };
    let dev_fos = deviation_of(Scheme::fos());
    let dev_sos = deviation_of(Scheme::sos(beta));
    println!("measured max deviation over {rounds} rounds:");
    println!(
        "  FOS: {:.2}  (Theorem 3 envelope {envelope_fos:.2})",
        dev_fos.max()
    );
    println!(
        "  SOS: {:.2}  (Theorem 3 envelope {envelope_sos:.2})",
        dev_sos.max()
    );
    assert!(dev_fos.max() <= envelope_fos);
    assert!(dev_sos.max() <= envelope_sos);
    println!("\nboth deviations sit inside the theorem's envelope, with SOS");
    println!("propagating rounding errors more aggressively than FOS.");
}
