//! Kill-and-resume: durable batches survive a crashed process.
//!
//! ```text
//! cargo run --release --example resume
//! ```
//!
//! Stages a batch the way a killed process would leave it — a durable
//! journal with every spec recorded but only the first scenario marked
//! `done`, plus an in-flight `ckpt=every:N:DIR` scenario whose latest
//! auto-checkpoint sits mid-run on disk — then calls
//! [`Driver::resume_batch`]. The resume skips finished work, restores
//! the in-flight scenario from its snapshot (running only the remaining
//! rounds), re-runs the untouched one from round 0, and lands on final
//! metrics bit-identical to an uninterrupted batch.

use std::fs;

use sodiff::{read_checkpoint, Driver, ScenarioSpec, StopCondition};

fn main() {
    let dir = std::env::temp_dir().join(format!("sodiff-resume-{}", std::process::id()));
    let ckpts = dir.join("ckpts");
    fs::create_dir_all(&dir).expect("create scratch dir");
    let journal = dir.join("batch.journal");

    // Three scenarios; the middle one auto-checkpoints every 16 rounds.
    let lines = format!(
        "name=warmup topology=cycle:64 seed=1 stop=rounds:120\n\
         name=inflight topology=torus2d:16:16 scheme=sos:1.7 rounding=nearest \
         init=point:0:25600 faults=crash:0.1:7 ckpt=every:16:{} stop=rounds:96\n\
         name=untouched topology=hypercube:8 seed=5 stop=rounds:80\n",
        ckpts.display()
    );
    let specs = ScenarioSpec::parse_many(&lines).expect("valid scenario lines");

    // The uninterrupted batch, for comparison at the end.
    let clean = Driver::new().run_batch(&specs);
    assert!(clean.errors.is_empty());

    // --- Stage the crash -------------------------------------------------
    // A real durable batch writes this journal itself
    // (`Driver::run_batch_durable`); here we forge the exact on-disk state
    // a `kill -9` at the 60th round of `inflight` would leave behind.
    let mut text = String::from("sodiff-journal v1\n");
    for spec in &specs {
        text.push_str(&format!("spec {spec}\n"));
    }
    text.push_str("done 0\n"); // only `warmup` finished
    fs::write(&journal, &text).expect("write journal");

    // Run `inflight` partway so its auto-checkpoints land on disk; the
    // latest one (round 48) is what the resume will restore from.
    let spec = &specs[1];
    let graph = spec.build_graph().expect("build graph");
    let experiment = spec.experiment_on(&graph).expect("build experiment");
    let mut sim = experiment.simulator();
    sim.run_until(StopCondition::MaxRounds(60));
    drop(sim);
    let latest = read_checkpoint(&ckpts.join("inflight.ckpt")).expect("read latest snapshot");
    println!(
        "crashed batch: 1/3 scenarios done, `inflight` checkpointed at round {}",
        latest.snapshot.round()
    );

    // --- Resume ----------------------------------------------------------
    let resumed = Driver::new()
        .resume_batch(&journal)
        .expect("journal replays");
    assert!(resumed.errors.is_empty(), "{:?}", resumed.errors);

    println!("\nresume ran {} scenario(s):", resumed.scenarios.len());
    for s in &resumed.scenarios {
        println!(
            "  {:<10} {:>3} rounds (max-avg {:.2})",
            s.name, s.report.rounds, s.report.final_metrics.max_minus_avg
        );
    }

    // `warmup` was skipped, `inflight` ran only the remaining rounds from
    // its snapshot, `untouched` ran in full — and both land on EXACTLY the
    // state of the uninterrupted batch.
    assert_eq!(resumed.scenarios.len(), 2);
    let inflight = &resumed.scenarios[0];
    assert_eq!(inflight.name, "inflight");
    assert_eq!(inflight.report.rounds, 96 - latest.snapshot.round());
    assert_eq!(
        inflight.report.final_metrics,
        clean.scenarios[1].report.final_metrics
    );
    assert_eq!(resumed.scenarios[1].report, clean.scenarios[2].report);

    // The resume journaled its own outcomes: running it again is a no-op.
    let again = Driver::new()
        .resume_batch(&journal)
        .expect("journal replays");
    assert!(again.scenarios.is_empty() && again.errors.is_empty());
    println!("\nsecond resume: nothing left to do — every outcome is journaled");
    println!("resumed `inflight` matches the uninterrupted run bit-for-bit");

    fs::remove_dir_all(&dir).ok();
}
