//! Heterogeneous cluster: balance proportionally to processor speeds.
//!
//! ```text
//! cargo run --release --example heterogeneous_cluster
//! ```
//!
//! Models a 256-node cluster (random regular topology) in which one rack
//! of 32 machines is 8× faster than the rest. Heterogeneous diffusion
//! (`M = I − L·S⁻¹`) drives every node to a load proportional to its
//! speed; we verify the two speed classes end up near their ideals and
//! report the negative-load safety margin from the paper's Theorem 11.

use sodiff::core::prelude::*;
use sodiff::core::theory;
use sodiff::graph::generators;
use sodiff::linalg::spectral;

fn main() {
    let n = 256;
    let fast = 32;
    let fast_speed = 8.0;
    let graph = generators::random_regular(n, 8, 2024).expect("valid degree");
    let speeds = Speeds::two_class(n, fast, fast_speed);

    let spectrum = spectral::analyze(&graph, &speeds);
    let beta = spectrum.beta_opt();
    println!("random 8-regular graph, n = {n}; {fast} fast nodes at speed {fast_speed}");
    println!(
        "lambda = {:.6}, beta_opt = {:.6}, s_max = {}",
        spectrum.lambda,
        beta,
        speeds.max()
    );

    let total: i64 = 100 * (speeds.total() as i64); // average 100 per unit speed
    let mut sim = Experiment::on(&graph)
        .discrete(Rounding::randomized(7))
        .sos(beta)
        .speeds(speeds.clone())
        .init(InitialLoad::point(200, total)) // dumped on one slow node
        .build()
        .expect("valid experiment")
        .simulator();
    let report = sim.run_until(StopCondition::Plateau {
        window: 40,
        max_rounds: 5_000,
    });
    println!(
        "stopped after {} rounds ({:?}), max - ideal = {:.1}",
        sim.round(),
        report.reason,
        report.final_metrics.max_minus_avg
    );

    // Per-class averages vs the speed-proportional ideals.
    let loads = sim.loads_i64().expect("discrete run");
    let (mut fast_sum, mut slow_sum) = (0i64, 0i64);
    for (i, &x) in loads.iter().enumerate() {
        if i < fast {
            fast_sum += x;
        } else {
            slow_sum += x;
        }
    }
    let ideal_fast = total as f64 * fast_speed / speeds.total();
    let ideal_slow = total as f64 / speeds.total();
    println!(
        "fast nodes: mean load {:.1} (ideal {:.1})",
        fast_sum as f64 / fast as f64,
        ideal_fast
    );
    println!(
        "slow nodes: mean load {:.1} (ideal {:.1})",
        slow_sum as f64 / (n - fast) as f64,
        ideal_slow
    );

    // Negative-load check against Theorem 11's shape.
    let delta0 = total as f64 - total as f64 / speeds.total();
    let bound = theory::min_initial_load_discrete_sos(n, delta0, 8, spectrum.gap());
    println!(
        "min transient load observed: {:.1} (Theorem 11 scale: {:.0})",
        sim.min_transient_load(),
        bound
    );
    assert!(
        (fast_sum as f64 / fast as f64 - ideal_fast).abs() < 0.1 * ideal_fast,
        "fast class should balance near its ideal"
    );
}
