//! Negative load in second-order diffusion (paper Section V).
//!
//! ```text
//! cargo run --release --example negative_load
//! ```
//!
//! SOS can schedule more outgoing load than a node holds. This example
//! measures the minimum *transient* load `x̆_i(t)` (after sends, before
//! receives) on a torus for increasing base loads, and compares the point
//! where negative load disappears with the paper's Theorem 10/11 bounds
//! `O(√n·Δ(0)/√(1−λ))`.

use sodiff::core::prelude::*;
use sodiff::core::theory;
use sodiff::graph::generators;
use sodiff::linalg::spectral;

fn main() {
    let side = 32;
    let graph = generators::torus2d(side, side);
    let n = graph.node_count();
    let spectrum = spectral::analyze(&graph, &Speeds::uniform(n));
    let beta = spectrum.beta_opt();
    let spike = 10_000i64; // extra tokens dumped on node 0
    let delta0 = spike as f64 * (1.0 - 1.0 / n as f64);

    println!(
        "torus {side}x{side}: beta_opt = {beta:.6}, gap = {:.3e}",
        spectrum.gap()
    );
    println!(
        "Theorem 10 (continuous) min-load scale: {:.0} tokens",
        theory::min_initial_load_continuous_sos(n, delta0, spectrum.gap())
    );
    println!(
        "Theorem 11 (discrete)  min-load scale: {:.0} tokens",
        theory::min_initial_load_discrete_sos(n, delta0, 4, spectrum.gap())
    );
    println!();
    println!(
        "{:>12} {:>20} {:>20}",
        "base load", "min transient (cont)", "min transient (disc)"
    );

    for base in [0i64, 100, 1_000, 10_000, 100_000] {
        let mut loads = vec![base; n];
        loads[0] += spike;
        let init = InitialLoad::Custom(loads);

        let mut continuous = Experiment::on(&graph)
            .continuous()
            .sos(beta)
            .init(init.clone())
            .build()
            .expect("valid experiment")
            .simulator();
        continuous.run_until(StopCondition::MaxRounds(2_000));

        let mut discrete = Experiment::on(&graph)
            .discrete(Rounding::randomized(3))
            .sos(beta)
            .init(init)
            .build()
            .expect("valid experiment")
            .simulator();
        discrete.run_until(StopCondition::MaxRounds(2_000));

        println!(
            "{:>12} {:>20.1} {:>20.1}",
            base,
            continuous.min_transient_load(),
            discrete.min_transient_load()
        );
    }

    println!();
    println!("With enough base load (the theorems' scale), the minimum");
    println!("transient load stays non-negative: no node is overdrawn.");
}
