//! Run a whole experiment matrix from a scenario text file.
//!
//! ```text
//! cargo run --release --example scenarios [-- <file> [--threads <t>]]
//! ```
//!
//! Each non-comment line of the file is one `ScenarioSpec` (`key=value`
//! pairs; see the `sodiff::ScenarioSpec` docs for the format). The batch
//! `Driver` executes all of them over a single persistent worker pool and
//! prints the aggregated report. Without arguments, the bundled
//! `examples/scenarios.txt` matrix is run.

use std::time::Duration;

use sodiff::{Driver, ScenarioSpec};

const BUNDLED: &str = include_str!("scenarios.txt");

fn main() {
    let mut path = None;
    let mut threads = 1usize;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--threads" => {
                threads = args
                    .next()
                    .expect("--threads requires a value")
                    .parse()
                    .expect("--threads must be a positive integer");
            }
            other => path = Some(other.to_string()),
        }
    }

    let text = match &path {
        Some(p) => std::fs::read_to_string(p).unwrap_or_else(|e| panic!("read {p}: {e}")),
        None => BUNDLED.to_string(),
    };
    let specs = match ScenarioSpec::parse_many(&text) {
        Ok(specs) => specs,
        Err(e) => {
            eprintln!("invalid scenario file: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "{} scenario(s) from {}, {threads} thread(s)\n",
        specs.len(),
        path.as_deref()
            .unwrap_or("examples/scenarios.txt (bundled)")
    );

    let driver = Driver::with_threads(threads).expect("positive thread count");
    let batch = driver.run_batch(&specs);

    println!(
        "{:<16} {:>9} {:>9} {:>8} {:>12} {:>12} {:>10} {:>10}",
        "name", "nodes", "edges", "rounds", "max - avg", "local diff", "switch", "wall"
    );
    for s in &batch.scenarios {
        println!(
            "{:<16} {:>9} {:>9} {:>8} {:>12.2} {:>12.2} {:>10} {:>9.2?}",
            s.name,
            s.nodes,
            s.edges,
            s.report.rounds,
            s.report.final_metrics.max_minus_avg,
            s.report.final_metrics.max_local_diff,
            s.report
                .switch_round
                .map(|r| r.to_string())
                .unwrap_or_else(|| "-".into()),
            round_duration(s.wall),
        );
    }
    println!(
        "\nbatch: {} rounds in {:.2?} (worst max-avg {:.2}, mean {:.2})",
        batch.total_rounds,
        round_duration(batch.total_wall),
        batch.worst_max_minus_avg,
        batch.mean_max_minus_avg
    );
    if let Some(p99) = batch.worst_steady_p99 {
        println!("steady-state scenarios: worst p99 deviation {p99:.2}");
    }
    if !batch.errors.is_empty() {
        eprintln!("\n{} scenario(s) failed:", batch.errors.len());
        for e in &batch.errors {
            eprintln!("  {e}");
        }
        std::process::exit(1);
    }
}

/// Truncates sub-millisecond noise for stable-looking output.
fn round_duration(d: Duration) -> Duration {
    Duration::from_millis(d.as_millis() as u64)
}
