//! Elastic cluster: balance quality while machines join and leave.
//!
//! ```text
//! cargo run --release --example elastic_cluster
//! ```
//!
//! The paper's guarantees are stated for a fixed network, but the regime
//! a production balancer actually lives in is *elastic*: nodes depart —
//! handing their entire load to live neighbors, conservation-exactly —
//! and (re)arrive empty-handed at a configured initial load. The
//! `churn=flux` axis drives exactly that from counter-indexed RNG
//! streams (one membership draw per node per 16-round epoch), so every
//! run is seed-reproducible and identical at any thread count.
//!
//! This example holds a torus under sustained join/leave flux and
//! compares the steady-state deviation that first-order diffusion,
//! second-order diffusion, and dimension exchange each maintain against
//! the same membership trace, then verifies the churn accounting
//! identity `total == initial + joined − departed` at the end of every
//! run.

use sodiff::core::prelude::*;
use sodiff::graph::generators;

fn main() {
    let side = 16;
    let graph = generators::torus2d(side, side);
    let n = graph.node_count();
    let base = 100i64;

    // Per 16-round epoch: each live node leaves with p=0.05 (its load
    // split over live neighbors), each empty slot refills with p=0.4,
    // arriving at the balanced per-node load.
    let flux = ChurnSpec::none()
        .with_flux(0.05, 0.4, 9)
        .with_initial(base as f64);

    println!("torus {side}x{side}, base load {base}/node, churn {flux}");
    println!(
        "{:>8} {:>12} {:>12} {:>12} {:>8} {:>8} {:>10}",
        "scheme", "mean dev", "p99 dev", "max dev", "left", "joined", "handoffs"
    );

    for (label, scheme) in [
        ("fos", Scheme::fos()),
        ("sos", Scheme::sos(1.7)),
        ("de", Scheme::dimension_exchange(1.0)),
    ] {
        let mut sim = Experiment::on(&graph)
            .discrete(Rounding::nearest())
            .scheme(scheme)
            .init(InitialLoad::EqualPerNode(base))
            .churn(flux)
            .build()
            .expect("valid experiment")
            .simulator();
        let report = sim.run_until(StopCondition::Horizon(400));
        let stats = report.steady.expect("horizon mode always reports stats");
        let events = sim.churn_events();
        println!(
            "{:>8} {:>12.3} {:>12.3} {:>12.3} {:>8} {:>8} {:>10}",
            label,
            stats.mean_dev,
            stats.p99_dev,
            stats.max_dev,
            events.departures,
            events.arrivals,
            events.handoffs,
        );

        // Conservation-exact handoff: the only way total load changes
        // under pure churn is the per-arrival initial load in `joined`
        // and the load a neighborless departure takes with it.
        let expected = (n as i64 * base) as f64 + events.joined - events.departed;
        assert_eq!(sim.total_load(), expected, "churn accounting drifted");
    }

    println!();
    println!("Same flux, SOS, 1 vs 4 threads (identical membership trace):");
    for threads in [1usize, 4] {
        let mut sim = Experiment::on(&graph)
            .discrete(Rounding::nearest())
            .sos(1.7)
            .threads(threads)
            .init(InitialLoad::EqualPerNode(base))
            .churn(flux)
            .build()
            .expect("valid experiment")
            .simulator();
        let report = sim.run_until(StopCondition::Horizon(400));
        let stats = report.steady.expect("horizon mode always reports stats");
        let events = sim.churn_events();
        println!(
            "  threads={threads}: p99 dev {:.3}, departures {}, arrivals {} (bit-identical)",
            stats.p99_dev, events.departures, events.arrivals
        );
    }
}
