//! Sustained dynamic traffic and steady-state balance quality.
//!
//! ```text
//! cargo run --release --example sustained_traffic
//! ```
//!
//! The paper's convergence results are stated for a fixed initial
//! imbalance, but real clusters see load arrive and depart continuously.
//! This example drives a torus under sustained Poisson churn plus a
//! periodic hotspot burst and compares the *steady-state* deviation —
//! the windowed mean/max/p99 of `max_dev` once the run flattens — that
//! FOS and SOS each hold against the same injected traffic. Every run is
//! seed-reproducible: the generators draw from counter-indexed streams
//! on the control thread, so the trace is identical at any thread count.

use sodiff::core::prelude::*;
use sodiff::graph::generators;

fn main() {
    let side = 32;
    let graph = generators::torus2d(side, side);
    let n = graph.node_count();
    let base = 100i64;

    // Two tokens in, two tokens out per round on average, plus a burst
    // of 50 tokens onto node 0 every 16 rounds.
    let traffic = LoadSpec::none()
        .with_poisson(2.0, 7)
        .with_hotspot(0, 50, 16, 11);

    println!("torus {side}x{side}, base load {base}/node, traffic {traffic}");
    println!(
        "{:>8} {:>8} {:>12} {:>12} {:>12} {:>12}",
        "scheme", "rounds", "mean dev", "p99 dev", "max dev", "injected"
    );

    for (label, sos_beta) in [("fos", None), ("sos", Some(1.7))] {
        let e = Experiment::on(&graph)
            .discrete(Rounding::nearest())
            .init(InitialLoad::EqualPerNode(base))
            .load(traffic);
        let e = match sos_beta {
            Some(beta) => e.sos(beta),
            None => e.fos(),
        };
        let mut sim = e
            .stop(StopCondition::Steady { window: 64 })
            .build()
            .expect("valid experiment")
            .simulator();
        let report = sim.run_until(StopCondition::Steady { window: 64 });
        let stats = report.steady.expect("steady mode always reports stats");
        println!(
            "{:>8} {:>8} {:>12.3} {:>12.3} {:>12.3} {:>12}",
            label,
            report.rounds,
            stats.mean_dev,
            stats.p99_dev,
            stats.max_dev,
            report.load.injected
        );

        // The injected-total invariant: conservation holds round by
        // round once the net injected delta is accounted for.
        let expected = (n as i64 * base) as f64 + report.load.injected;
        assert_eq!(sim.total_load(), expected, "injection accounting drifted");
    }

    println!();
    println!("Same traffic, fixed 512-round horizon, SOS, 1 vs 4 threads:");
    for threads in [1usize, 4] {
        let mut sim = Experiment::on(&graph)
            .discrete(Rounding::nearest())
            .sos(1.7)
            .threads(threads)
            .init(InitialLoad::EqualPerNode(base))
            .load(traffic)
            .build()
            .expect("valid experiment")
            .simulator();
        let report = sim.run_until(StopCondition::Horizon(512));
        let stats = report.steady.expect("horizon mode always reports stats");
        println!(
            "  threads={threads}: p99 dev {:.3}, arrivals {}, departures {} (bit-identical)",
            stats.p99_dev, report.load.arrivals, report.load.departures
        );
    }
}
