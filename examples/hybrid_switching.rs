//! The SOS→FOS hybrid strategy (paper Figures 4, 5, 8).
//!
//! ```text
//! cargo run --release --example hybrid_switching
//! ```
//!
//! On a 100×100 torus, runs (a) pure SOS, (b) pure FOS, (c) hybrids that
//! switch to FOS at several fixed rounds, and (d) a hybrid driven by the
//! distributed-friendly local trigger (max local load difference ≤ 10).
//! Prints the final imbalance of each strategy, reproducing the paper's
//! observation that the switch removes the residual imbalance SOS leaves.

use sodiff::core::prelude::*;
use sodiff::graph::generators;
use sodiff::linalg::spectral;

fn run(
    graph: &sodiff::graph::Graph,
    scheme: Scheme,
    policy: SwitchPolicy,
    rounds: u64,
) -> (f64, f64, Option<u64>) {
    let report = Experiment::on(graph)
        .discrete(Rounding::randomized(99))
        .scheme(scheme)
        .hybrid(policy)
        .stop(StopCondition::MaxRounds(rounds as usize))
        .build()
        .expect("valid experiment")
        .run();
    let m = report.final_metrics;
    (m.max_minus_avg, m.max_local_diff, report.switch_round)
}

fn main() {
    let side = 100;
    let graph = generators::torus2d(side, side);
    let n = graph.node_count();
    let spectrum = spectral::analyze(&graph, &Speeds::uniform(n));
    let beta = spectrum.beta_opt();
    let total_rounds = 1000u64;
    println!("torus {side}x{side}, beta_opt = {beta:.6}, horizon = {total_rounds} rounds");
    println!(
        "{:<28} {:>12} {:>16} {:>14}",
        "strategy", "max - avg", "max local diff", "switch round"
    );

    let report = |name: &str, scheme: Scheme, policy: SwitchPolicy| {
        let (max_avg, local, switch) = run(&graph, scheme, policy, total_rounds);
        println!(
            "{:<28} {:>12.1} {:>16.1} {:>14}",
            name,
            max_avg,
            local,
            switch.map(|r| r.to_string()).unwrap_or_else(|| "-".into())
        );
    };

    report("pure FOS", Scheme::fos(), SwitchPolicy::Never);
    report("pure SOS", Scheme::sos(beta), SwitchPolicy::Never);
    for at in [300u64, 500, 700, 900] {
        report(
            &format!("SOS -> FOS at round {at}"),
            Scheme::sos(beta),
            SwitchPolicy::AtRound(at),
        );
    }
    report(
        "SOS -> FOS local diff <= 20",
        Scheme::sos(beta),
        SwitchPolicy::MaxLocalDiffBelow(20.0),
    );

    println!();
    println!("Paper Section VI: pure SOS plateaus around 10 tokens above");
    println!("average; every hybrid drops to ~4-7 tokens, and the local");
    println!("trigger needs no global knowledge.");
}
