//! Torus wavefront visualization (paper Figures 9–10).
//!
//! ```text
//! cargo run --release --example torus_wavefront [-- <side> <out_dir>]
//! ```
//!
//! Runs discrete SOS on a 2D torus with all load initially at node 0 and
//! dumps PGM frames at the paper's checkpoints. The load spreads in
//! circular wavefronts from the four image corners (the torus wraps
//! around); the discontinuities in the paper's Figure 1 coincide with the
//! wavefronts collapsing at the center.

use std::path::PathBuf;

use sodiff::core::prelude::*;
use sodiff::graph::generators;
use sodiff::linalg::spectral;
use sodiff::viz::{render_torus, Shading};

fn main() {
    let mut args = std::env::args().skip(1);
    let side: usize = args
        .next()
        .map(|s| s.parse().expect("side must be an integer"))
        .unwrap_or(200);
    let out_dir: PathBuf = args
        .next()
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("target/wavefront"));
    std::fs::create_dir_all(&out_dir).expect("create output directory");

    let graph = generators::torus2d(side, side);
    let n = graph.node_count();
    let spectrum = spectral::analyze(&graph, &Speeds::uniform(n));
    let beta = spectrum.beta_opt();
    println!("torus {side}x{side}, beta_opt = {beta:.6}");

    let mut sim = Experiment::on(&graph)
        .discrete(Rounding::randomized(1))
        .sos(beta)
        .init(InitialLoad::paper_default(n))
        .build()
        .expect("valid experiment")
        .simulator();

    // Paper checkpoints (Figure 10 uses 500/1000/1200/1400 on the
    // 1000-side torus); scale them with the torus side.
    let scale = side as f64 / 1000.0;
    let mut checkpoints: Vec<u64> = [500.0, 1000.0, 1100.0, 1200.0, 1400.0]
        .iter()
        .map(|r| (r * scale).round().max(1.0) as u64)
        .collect();
    checkpoints.dedup();

    let loads_to_f64 = |sim: &Simulator<'_>| -> Vec<f64> { sim.loads_to_f64() };
    for &cp in &checkpoints {
        while sim.round() < cp {
            sim.step();
        }
        let loads = loads_to_f64(&sim);
        let img = render_torus(side, side, &loads, Shading::Adaptive);
        let path = out_dir.join(format!("wavefront_{cp:05}.pgm"));
        img.save_pgm(&path).expect("write frame");
        let m = sim.metrics();
        println!(
            "round {cp:>5}: max-avg {:>10.1}, local diff {:>10.1}  -> {}",
            m.max_minus_avg,
            m.max_local_diff,
            path.display()
        );
    }

    // Figure 11 style: absolute shading with a 10-token threshold after
    // the hybrid switch.
    sim.run_hybrid(
        SwitchPolicy::MaxLocalDiffBelow(20.0),
        StopCondition::MaxRounds(2 * side),
    );
    let loads = loads_to_f64(&sim);
    let img = render_torus(side, side, &loads, Shading::Absolute { threshold: 10.0 });
    let path = out_dir.join("post_switch_absolute.pgm");
    img.save_pgm(&path).expect("write frame");
    println!(
        "after hybrid switch: max-avg {:.1} -> {}",
        sim.metrics().max_minus_avg,
        path.display()
    );
}
