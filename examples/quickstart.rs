//! Quickstart: balance a point load on a 2D torus with FOS and SOS.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Builds a 64×64 torus, computes the spectral gap and the optimal SOS
//! parameter `β`, then runs discrete FOS and SOS (randomized rounding)
//! side by side until balanced, printing the metric trajectory.

use sodiff::core::prelude::*;
use sodiff::graph::generators;
use sodiff::linalg::spectral;

fn main() {
    let (rows, cols) = (64, 64);
    let graph = generators::torus2d(rows, cols);
    let n = graph.node_count();
    let speeds = Speeds::uniform(n);

    let spectrum = spectral::analyze(&graph, &speeds);
    let beta = spectrum.beta_opt();
    println!("torus {rows}x{cols}: n = {n}, |E| = {}", graph.edge_count());
    println!(
        "lambda = {:.9}  (gap {:.3e}),  beta_opt = {:.9}",
        spectrum.lambda,
        spectrum.gap(),
        beta
    );
    println!();

    // The paper's default initialization: 1000·n tokens on node 0.
    let init = InitialLoad::paper_default(n);
    let schemes = [("FOS", Scheme::fos()), ("SOS", Scheme::sos(beta))];

    println!(
        "{:<6} {:>8} {:>16} {:>16} {:>16}",
        "scheme", "round", "max - avg", "max local diff", "potential/n"
    );
    for (name, scheme) in schemes {
        let mut sim = Experiment::on(&graph)
            .discrete(Rounding::randomized(42))
            .scheme(scheme)
            .init(init.clone())
            .build()
            .expect("valid experiment")
            .simulator();
        for checkpoint in [50u64, 200, 500, 1000, 2000, 4000] {
            while sim.round() < checkpoint {
                sim.step();
            }
            let m = sim.metrics();
            println!(
                "{:<6} {:>8} {:>16.2} {:>16.2} {:>16.2}",
                name, checkpoint, m.max_minus_avg, m.max_local_diff, m.potential_over_n
            );
        }
        assert_eq!(sim.total_load(), init.total(n) as f64, "tokens conserved");
        println!();
    }

    println!("SOS converges roughly quadratically faster; its residual");
    println!("imbalance can be removed by switching to FOS — see the");
    println!("hybrid_switching example.");
}
