//! The fused in-loop metrics reduction equals a from-scratch recompute —
//! **bit for bit** — for every scheme, both modes, and every thread
//! count.
//!
//! `Simulator::round_metrics()` is assembled from the `LoadStats` the
//! apply kernels reduce while applying flows (plus shared per-block
//! squared-deviation partials folded in block order);
//! `Simulator::metrics()` recomputes the same snapshot from scratch with
//! an `O(n + m)` sweep. Three design choices make exact equality hold
//! everywhere, and these tests pin all three:
//!
//! * deviations are measured against the **conserved initial total** on
//!   both paths, so the balanced load `x̄_i = T·s_i/S` is the same bits;
//! * min/max fields reduce through the same compare-and-assign updates,
//!   which are order-insensitive for the merge grouping the pool uses;
//! * the potential `Σ dev²` is summed per `metrics::DEV_BLOCK`-node
//!   block with block partials folded in block order — the sequential
//!   executor, every (block-aligned) pooled chunking, and the
//!   from-scratch sweep all group the sum identically.

use sodiff::graph::generators;
use sodiff::prelude::*;

/// All five schemes at fixed, valid parameters.
fn schemes() -> Vec<Scheme> {
    vec![
        Scheme::fos(),
        Scheme::sos(1.7),
        Scheme::dimension_exchange(0.9),
        Scheme::matching_round_robin(1.0),
        Scheme::matching_random(11, 0.8),
    ]
}

fn assert_fused_matches_scratch(sim: &Simulator<'_>, context: &str) {
    let fused = sim
        .round_metrics()
        .expect("round_metrics is Some after a step");
    let scratch = sim.metrics();
    assert_eq!(
        fused, scratch,
        "{context}: fused snapshot diverged from the from-scratch recompute"
    );
}

/// 5 schemes × 2 modes × thread counts {1, 2, 3, 5}: the fused snapshot
/// equals the recompute after every round of a short run, exactly.
#[test]
fn fused_snapshot_equals_recompute_all_schemes_modes_threads() {
    let g = generators::torus2d(9, 7); // odd sizes exercise block-aligned chunking
    let n = g.node_count();
    for scheme in schemes() {
        for discrete in [true, false] {
            for threads in [1usize, 2, 3, 5] {
                let builder = Experiment::on(&g);
                let builder = if discrete {
                    builder.discrete(Rounding::randomized(5))
                } else {
                    builder.continuous()
                };
                let mut sim = builder
                    .scheme(scheme)
                    .threads(threads)
                    .init(InitialLoad::point(0, (n * 100) as i64))
                    .build()
                    .unwrap()
                    .simulator();
                assert!(
                    sim.round_metrics().is_none(),
                    "no fused stats before the first round"
                );
                for round in 0..12 {
                    sim.step();
                    assert_fused_matches_scratch(
                        &sim,
                        &format!("{scheme:?} discrete={discrete} threads={threads} round={round}"),
                    );
                }
            }
        }
    }
}

/// Heterogeneous speeds: the ideal table is speed-proportional, so this
/// exercises per-node ideals rather than one shared average.
#[test]
fn fused_snapshot_matches_under_heterogeneous_speeds() {
    let g = generators::random_regular(60, 4, 2).unwrap();
    for threads in [1usize, 4] {
        let mut sim = Experiment::on(&g)
            .discrete(Rounding::unbiased_edge(3))
            .sos(1.6)
            .speeds(Speeds::linear_ramp(60, 5.0))
            .threads(threads)
            .init(InitialLoad::point(0, 60_000))
            .build()
            .unwrap()
            .simulator();
        for round in 0..30 {
            sim.step();
            assert_fused_matches_scratch(&sim, &format!("het threads={threads} round={round}"));
        }
    }
}

/// The run loop consumes the fused statistics: a report's final metrics
/// must equal the recompute at loop exit on every stop path — including
/// `MaxRounds`, which used to fall back to a post-run `metrics()` sweep.
#[test]
fn run_reports_carry_fused_final_metrics_on_every_stop_path() {
    let g = generators::torus2d(8, 8);
    let run = |condition| {
        let mut sim = Experiment::on(&g)
            .discrete(Rounding::randomized(9))
            .sos(1.8)
            .init(InitialLoad::point(0, 6400))
            .build()
            .unwrap()
            .simulator();
        let report = sim.run_until(condition);
        assert_eq!(
            report.final_metrics,
            sim.metrics(),
            "{condition:?}: final report diverged from the recompute"
        );
        report
    };
    let max_rounds = run(StopCondition::MaxRounds(120));
    assert_eq!(max_rounds.reason, StopReason::MaxRounds);
    let threshold = run(StopCondition::BalancedWithin {
        threshold: 5.0,
        max_rounds: 5000,
    });
    assert_eq!(threshold.reason, StopReason::Threshold);
    let plateau = run(StopCondition::Plateau {
        window: 40,
        max_rounds: 5000,
    });
    assert_eq!(plateau.reason, StopReason::Plateau);
}

/// Pooled and sequential runs produce bit-identical reports even for
/// metric-bearing stop conditions — the block-folded potential is what
/// makes this hold.
#[test]
fn threshold_reports_bit_identical_across_thread_counts() {
    let g = generators::torus2d(9, 7);
    let run = |threads: usize| {
        let mut sim = Experiment::on(&g)
            .discrete(Rounding::randomized(13))
            .sos(1.7)
            .threads(threads)
            .init(InitialLoad::point(0, 6300))
            .build()
            .unwrap()
            .simulator();
        sim.run_until(StopCondition::BalancedWithin {
            threshold: 4.0,
            max_rounds: 4000,
        })
    };
    let seq = run(1);
    for threads in [2, 3, 5] {
        assert_eq!(seq, run(threads), "{threads} threads");
    }
}
