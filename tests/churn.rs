//! Live-topology churn subsystem: determinism across executors,
//! conservation-exact handoff accounting, composition with the fault
//! and load axes, crash-freeze vs churn-arrival rejoin semantics, and
//! exact mid-churn checkpoint/resume through the v2 on-disk format.
//!
//! The conservation contract under churn extends the injected-total
//! invariant: every round,
//! `total == initial + injected + joined − departed`,
//! where `joined` counts the configured initial load brought by
//! arrivals and `departed` counts only the load of neighborless
//! departures (a departure with live neighbors hands off every token).

use std::path::PathBuf;

use proptest::prelude::*;

use sodiff::core::Driver;
use sodiff::graph::generators;
use sodiff::prelude::*;
use sodiff::{read_checkpoint, write_checkpoint, ScenarioSpec};

fn churned_sim(g: &sodiff::graph::Graph, churn: ChurnSpec, threads: usize) -> Simulator<'_> {
    let n = g.node_count();
    Experiment::on(g)
        .discrete(Rounding::nearest())
        .sos(1.7)
        .threads(threads)
        .init(InitialLoad::point(0, (n * 100) as i64))
        .churn(churn)
        .build()
        .unwrap()
        .simulator()
}

/// Any churned run is bit-identical sequential vs pooled across thread
/// counts: membership transitions, handoff deltas, and mask repair all
/// run on the control thread before the round's flow pass, so the
/// executor cannot influence the trajectory.
#[test]
fn churned_runs_are_bit_identical_across_executors() {
    let g = generators::torus2d(6, 6);
    let combos = [
        ChurnSpec::none().with_flux(0.1, 0.4, 9),
        ChurnSpec::none().with_flux(0.3, 0.3, 5).with_initial(40.0),
        ChurnSpec::none().with_flux(0.05, 0.9, 2).with_initial(75.0),
    ];
    for churn in combos {
        let mut reference = churned_sim(&g, churn, 1);
        for _ in 0..48 {
            reference.step();
        }
        for threads in [2usize, 3, 5] {
            let mut sim = churned_sim(&g, churn, threads);
            for _ in 0..48 {
                sim.step();
            }
            assert_eq!(
                sim.loads_i64().unwrap(),
                reference.loads_i64().unwrap(),
                "{churn} loads diverged at {threads} threads"
            );
            assert_eq!(
                sim.previous_flows(),
                reference.previous_flows(),
                "{churn} flow memory diverged at {threads} threads"
            );
            assert_eq!(
                sim.churn_events(),
                reference.churn_events(),
                "{churn} event counts diverged at {threads} threads"
            );
        }
    }
}

/// A total-flux plan (`leave = join = 1`) is deterministic regardless
/// of seed, which pins the epoch/transition semantics exactly: every
/// 16-round epoch boundary alternates "everyone departs" (the whole
/// total leaves — no survivors to hand off to) with "everyone
/// (re)arrives at the configured initial load".
#[test]
fn total_flux_alternates_whole_cluster_deterministically() {
    let g = generators::torus2d(6, 6);
    let mut sim = Experiment::on(&g)
        .discrete(Rounding::nearest())
        .fos()
        .init(InitialLoad::point(0, 3600))
        .churn(
            ChurnSpec::none()
                .with_flux(1.0, 1.0, 123)
                .with_initial(50.0),
        )
        .build()
        .unwrap()
        .simulator();
    for _ in 0..64 {
        sim.step();
    }
    // Epochs 0 and 2 empty the cluster (departures with no possible
    // target), epochs 1 and 3 refill it at 50 tokens per node.
    let events = sim.churn_events();
    assert_eq!(events.departures, 72);
    assert_eq!(events.arrivals, 72);
    assert_eq!(events.handoffs, 0, "no survivor can absorb a handoff");
    assert_eq!(events.joined, 3600.0);
    assert_eq!(events.departed, 3600.0 + 1800.0);
    assert_eq!(events.total(), 144);
    assert_eq!(
        sim.total_load(),
        3600.0 + events.joined - events.departed,
        "conservation identity must close over the whole run"
    );
}

/// Satellite audit of the two rejoin semantics, which compose without
/// double-counting:
/// * a *crash-frozen* node (fault axis) returns with its **frozen
///   load** — the total never moves, and nothing lands in the churn
///   accounts;
/// * a *churn re-arrival* starts from the **configured initial load** —
///   exactly `init` per arrival enters the system, all of it visible in
///   `ChurnEvents::joined`.
#[test]
fn crash_freeze_and_churn_arrival_semantics_compose() {
    let g = generators::torus2d(6, 6);

    // Crash alone: freeze-and-return conserves the total bit-exactly.
    let mut crashed = Experiment::on(&g)
        .discrete(Rounding::nearest())
        .sos(1.7)
        .init(InitialLoad::point(0, 3600))
        .faults(FaultSpec::none().with_crash(0.3, 7))
        .build()
        .unwrap()
        .simulator();
    for _ in 0..64 {
        crashed.step();
        assert_eq!(crashed.total_load(), 3600.0, "crash freeze must conserve");
    }
    assert!(
        crashed.fault_events().rejoins > 0,
        "the plan must actually exercise a rejoin"
    );
    assert_eq!(crashed.churn_events(), ChurnEvents::default());

    // Crash + churn: every churn arrival accounts exactly `init`, and
    // the combined conservation identity holds every round.
    let init = 40.0;
    let mut sim = Experiment::on(&g)
        .discrete(Rounding::nearest())
        .sos(1.7)
        .init(InitialLoad::point(0, 3600))
        .faults(FaultSpec::none().with_crash(0.2, 7))
        .churn(
            ChurnSpec::none()
                .with_flux(0.25, 0.5, 11)
                .with_initial(init),
        )
        .build()
        .unwrap()
        .simulator();
    for _ in 0..64 {
        sim.step();
        let events = sim.churn_events();
        assert_eq!(
            events.joined,
            events.arrivals as f64 * init,
            "every churn arrival starts from the configured initial load"
        );
        assert_eq!(
            sim.total_load(),
            3600.0 + events.joined - events.departed,
            "crash+churn run broke the conservation identity"
        );
    }
    assert!(sim.churn_events().total() > 0, "plan never fired");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random churn plans composed with random fault and load channels
    /// stay executor-independent and satisfy the conservation identity
    /// `total == initial + injected + joined − departed` every round.
    #[test]
    fn random_churn_plans_conserve_and_match_pooled(
        leave in 0.0f64..0.6,
        join in 0.0f64..1.0,
        init in 0u16..120,
        churn_seed in 0u64..100,
        fault_channels in 0u8..16,
        with_load in any::<bool>(),
        sos in any::<bool>(),
        threads in 2usize..5,
    ) {
        let churn = ChurnSpec::none()
            .with_flux(leave, join, churn_seed)
            .with_initial(f64::from(init));
        let mut faults = FaultSpec::none();
        if fault_channels & 1 != 0 { faults = faults.with_crash(0.15, 1); }
        if fault_channels & 2 != 0 { faults = faults.with_edgedrop(0.2, 2); }
        if fault_channels & 4 != 0 { faults = faults.with_shock(0.1, 3); }
        if fault_channels & 8 != 0 { faults = faults.with_stale(0.15, 4); }
        let load = if with_load {
            LoadSpec::none().with_poisson(0.6, 7).with_hotspot(3, 25, 5, 11)
        } else {
            LoadSpec::none()
        };
        let g = generators::torus2d(5, 5);
        let build = |threads: usize| {
            let e = Experiment::on(&g).discrete(Rounding::randomized(9));
            let e = if sos { e.sos(1.6) } else { e.fos() };
            e.threads(threads)
                .init(InitialLoad::point(0, 2500))
                .faults(faults)
                .load(load)
                .churn(churn)
                .build()
                .unwrap()
                .simulator()
        };
        let mut seq = build(1);
        let mut pooled = build(threads);
        for _ in 0..40 {
            seq.step();
            pooled.step();
            let churned = seq.churn_events();
            prop_assert_eq!(
                seq.total_load(),
                2500.0 + seq.load_events().injected + churned.joined - churned.departed,
                "sequential churned run broke the conservation identity"
            );
            prop_assert_eq!(seq.loads_i64().unwrap(), pooled.loads_i64().unwrap());
        }
        prop_assert_eq!(seq.previous_flows(), pooled.previous_flows());
        prop_assert_eq!(seq.fault_events(), pooled.fault_events());
        prop_assert_eq!(seq.load_events(), pooled.load_events());
        prop_assert_eq!(seq.churn_events(), pooled.churn_events());
    }

    /// Churn composes with the sweep-scheduled pairwise schemes: the
    /// per-epoch incremental schedule repair runs against the combined
    /// churn-active set and stays bit-identical across executors.
    #[test]
    fn churned_pairwise_schemes_match_pooled(
        leave in 0.0f64..0.5,
        join in 0.2f64..1.0,
        seed in 0u64..50,
        recover in any::<bool>(),
        threads in 2usize..5,
    ) {
        let g = generators::torus2d(5, 5);
        let scheme = if recover {
            Scheme::matching_round_robin(1.0)
        } else {
            Scheme::dimension_exchange(0.8)
        };
        let churn = ChurnSpec::none().with_flux(leave, join, seed).with_initial(30.0);
        let build = |threads: usize| {
            Experiment::on(&g)
                .discrete(Rounding::nearest())
                .scheme(scheme)
                .threads(threads)
                .init(InitialLoad::point(0, 2500))
                .churn(churn)
                .build()
                .unwrap()
                .simulator()
        };
        let mut seq = build(1);
        let mut pooled = build(threads);
        for _ in 0..40 {
            seq.step();
            pooled.step();
            let churned = seq.churn_events();
            prop_assert_eq!(
                seq.total_load(),
                2500.0 + churned.joined - churned.departed,
                "churned pairwise run broke the conservation identity"
            );
            prop_assert_eq!(seq.loads_i64().unwrap(), pooled.loads_i64().unwrap());
        }
        prop_assert_eq!(seq.churn_events(), pooled.churn_events());
    }
}

/// FNV-1a over the full simulation state — the same digest
/// `tests/golden_trace.rs` pins.
fn state_checksum(sim: &Simulator<'_>) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
    };
    for &x in sim.loads_i64().expect("golden traces are discrete") {
        eat(&x.to_le_bytes());
    }
    for &f in sim.previous_flows() {
        eat(&f.to_bits().to_le_bytes());
    }
    eat(&sim.min_transient_load().to_bits().to_le_bytes());
    h
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sodiff-churn-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Interrupting a churned (and crashed) run mid-epoch, writing the v2
/// checkpoint to disk, and resuming in a fresh simulator replays to the
/// exact same state as the uninterrupted run — the persisted activation
/// overlay makes the history-dependent membership chain resume without
/// redrawing a single transition. `resume_at: 33` straddles the
/// 16-round epoch boundary so the overlay is mid-epoch non-trivial.
#[test]
fn mid_churn_checkpoint_resume_is_exact() {
    let dir = scratch_dir("resume");
    let line = "name=flux topology=torus2d:8:8 rounding=nearest scheme=sos:1.7 \
                init=point:0:6400 faults=crash:0.1:7 churn=flux:0.08:0.3:9:25 stop=rounds:64";
    let spec: ScenarioSpec = line.parse().unwrap();
    let graph = spec.build_graph().unwrap();
    let experiment = spec.experiment_on(&graph).unwrap();

    let mut whole = experiment.simulator();
    whole.run_until(StopCondition::MaxRounds(64));
    assert!(whole.churn_events().total() > 0, "plan never fired");

    let mut first = experiment.simulator();
    first.run_until(StopCondition::MaxRounds(33));
    let path = dir.join("flux.ckpt");
    write_checkpoint(&path, &spec, &first.snapshot()).unwrap();
    let ckpt = read_checkpoint(&path).unwrap();
    assert_eq!(ckpt.snapshot.round(), 33);

    let mut resumed = experiment.simulator();
    resumed.restore(&ckpt.snapshot).unwrap();
    resumed.run_until(StopCondition::MaxRounds(64 - 33));
    assert_eq!(
        state_checksum(&resumed),
        state_checksum(&whole),
        "mid-churn resume diverged from the uninterrupted run"
    );
    assert_eq!(resumed.churn_events(), whole.churn_events());
    assert_eq!(resumed.fault_events(), whole.fault_events());
    std::fs::remove_dir_all(&dir).ok();
}

/// Churned scenarios flow end to end through the text pipeline: parse,
/// batch-drive, surface per-scenario and batch-total churn accounting.
#[test]
fn churn_scenarios_run_through_the_driver() {
    let specs = ScenarioSpec::parse_many(
        "name=elastic topology=torus2d:6:6 scheme=sos:1.7 rounding=nearest \
         churn=flux:0.1:0.5:9:50 stop=rounds:48\n\
         name=static topology=torus2d:6:6 scheme=sos:1.7 rounding=nearest stop=rounds:48\n",
    )
    .unwrap();
    let batch = Driver::new().run_batch(&specs);
    assert!(batch.errors.is_empty(), "{:?}", batch.errors);
    let elastic = &batch.scenarios[0].report;
    let static_run = &batch.scenarios[1].report;
    assert!(elastic.churn.total() > 0, "churn plan never fired");
    assert_eq!(static_run.churn, ChurnEvents::default());
    assert_eq!(
        batch.churn, elastic.churn,
        "batch totals sum churn events across successful scenarios"
    );
    // The churned spec round-trips with its churn= key intact.
    let reparsed: ScenarioSpec = batch.scenarios[0].spec.parse().unwrap();
    assert_eq!(reparsed.churn, specs[0].churn);
}
