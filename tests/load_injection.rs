//! Dynamic-workload subsystem: determinism across executors,
//! conservation with injection, composition with fault channels, and
//! the steady-state run modes.

use proptest::prelude::*;

use sodiff::core::Driver;
use sodiff::graph::generators;
use sodiff::prelude::*;
use sodiff::ScenarioSpec;

fn loaded_sim(g: &sodiff::graph::Graph, load: LoadSpec, threads: usize) -> Simulator<'_> {
    let n = g.node_count();
    Experiment::on(g)
        .discrete(Rounding::nearest())
        .sos(1.7)
        .threads(threads)
        .init(InitialLoad::point(0, (n * 100) as i64))
        .load(load)
        .build()
        .unwrap()
        .simulator()
}

/// Any dynamic run is bit-identical sequential vs pooled across thread
/// counts: every generator draws from counter-indexed streams on the
/// control thread before the round's flow pass, so the executor cannot
/// influence the injected deltas.
#[test]
fn loaded_runs_are_bit_identical_across_executors() {
    let g = generators::torus2d(6, 6);
    let combos = [
        LoadSpec::none().with_poisson(0.8, 7),
        LoadSpec::none().with_hotspot(5, 40, 8, 11),
        LoadSpec::none().with_diurnal(25.0, 16),
        LoadSpec::none().with_adversarial(30, 6, 5),
        LoadSpec::none()
            .with_poisson(0.5, 1)
            .with_hotspot(0, 20, 4, 2)
            .with_diurnal(10.0, 12)
            .with_adversarial(15, 9, 3),
    ];
    for load in combos {
        let mut reference = loaded_sim(&g, load, 1);
        for _ in 0..48 {
            reference.step();
        }
        for threads in [2usize, 3, 5] {
            let mut sim = loaded_sim(&g, load, threads);
            for _ in 0..48 {
                sim.step();
            }
            assert_eq!(
                sim.loads_i64().unwrap(),
                reference.loads_i64().unwrap(),
                "{load} loads diverged at {threads} threads"
            );
            assert_eq!(
                sim.previous_flows(),
                reference.previous_flows(),
                "{load} flow memory diverged at {threads} threads"
            );
            assert_eq!(
                sim.load_events(),
                reference.load_events(),
                "{load} event counts diverged at {threads} threads"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random load-plan × scheme combinations stay executor-independent
    /// and satisfy the injected-total invariant every round: the total
    /// load equals the initial total plus the net injected delta.
    #[test]
    fn random_load_plans_conserve_and_match_pooled(
        channels in 1u8..16,
        rate in 0.0f64..2.0,
        burst in 1i64..80,
        period in 1u64..10,
        seeds in (0u64..100, 0u64..100, 0u64..100),
        sos in 0u8..2,
        threads in 2usize..5,
    ) {
        // `channels` is a bitmask picking a nonempty subset of the four
        // generators, so every combination (including all-on) is drawn.
        let mut load = LoadSpec::none();
        if channels & 1 != 0 { load = load.with_poisson(rate, seeds.0); }
        if channels & 2 != 0 { load = load.with_hotspot(3, burst, period, seeds.1); }
        if channels & 4 != 0 { load = load.with_diurnal(burst as f64, period + 2); }
        if channels & 8 != 0 { load = load.with_adversarial(burst, period, seeds.2); }
        let sos = sos == 1;
        let g = generators::torus2d(5, 5);
        let build = |threads: usize| {
            let e = Experiment::on(&g).discrete(Rounding::randomized(9));
            let e = if sos { e.sos(1.6) } else { e.fos() };
            e.threads(threads)
                .init(InitialLoad::point(0, 2500))
                .load(load)
                .build()
                .unwrap()
                .simulator()
        };
        let mut seq = build(1);
        let mut pooled = build(threads);
        for _ in 0..40 {
            seq.step();
            pooled.step();
            let injected = seq.load_events().injected;
            prop_assert_eq!(
                seq.total_load(),
                2500.0 + injected,
                "sequential run broke the injected-total invariant"
            );
            prop_assert_eq!(seq.loads_i64().unwrap(), pooled.loads_i64().unwrap());
        }
        prop_assert_eq!(seq.previous_flows(), pooled.previous_flows());
        prop_assert_eq!(seq.load_events(), pooled.load_events());
    }

    /// Load generators compose with fault channels: the combined run is
    /// still executor-independent, and the injected-total invariant
    /// still holds (fault channels conserve, injection accounts).
    #[test]
    fn load_composes_with_faults_deterministically(
        load_channels in 1u8..16,
        fault_channels in 1u8..16,
        threads in 2usize..5,
    ) {
        let mut load = LoadSpec::none();
        if load_channels & 1 != 0 { load = load.with_poisson(0.6, 7); }
        if load_channels & 2 != 0 { load = load.with_hotspot(2, 30, 5, 11); }
        if load_channels & 4 != 0 { load = load.with_diurnal(12.0, 9); }
        if load_channels & 8 != 0 { load = load.with_adversarial(20, 7, 13); }
        let mut faults = FaultSpec::none();
        if fault_channels & 1 != 0 { faults = faults.with_crash(0.15, 1); }
        if fault_channels & 2 != 0 { faults = faults.with_edgedrop(0.2, 2); }
        if fault_channels & 4 != 0 { faults = faults.with_shock(0.1, 3); }
        if fault_channels & 8 != 0 { faults = faults.with_stale(0.15, 4); }
        let g = generators::torus2d(5, 5);
        let build = |threads: usize| {
            Experiment::on(&g)
                .discrete(Rounding::nearest())
                .sos(1.5)
                .threads(threads)
                .init(InitialLoad::point(0, 2500))
                .faults(faults)
                .load(load)
                .build()
                .unwrap()
                .simulator()
        };
        let mut seq = build(1);
        let mut pooled = build(threads);
        for _ in 0..40 {
            seq.step();
            pooled.step();
            prop_assert_eq!(
                seq.total_load(),
                2500.0 + seq.load_events().injected,
                "faulted dynamic run broke the injected-total invariant"
            );
            prop_assert_eq!(seq.loads_i64().unwrap(), pooled.loads_i64().unwrap());
        }
        prop_assert_eq!(seq.fault_events(), pooled.fault_events());
        prop_assert_eq!(seq.load_events(), pooled.load_events());
    }
}

/// `stop=horizon:R` runs exactly R rounds, never self-stops, and
/// reports windowed deviation statistics over the whole horizon plus
/// the injected-total accounting.
#[test]
fn horizon_mode_reports_steady_stats_and_accounting() {
    let g = generators::torus2d(6, 6);
    let mut sim = Experiment::on(&g)
        .discrete(Rounding::nearest())
        .sos(1.7)
        .init(InitialLoad::point(0, 3600))
        .load(
            LoadSpec::none()
                .with_poisson(0.7, 7)
                .with_hotspot(5, 25, 6, 3),
        )
        .build()
        .unwrap()
        .simulator();
    let report = sim.run_until(StopCondition::Horizon(40));
    assert_eq!(report.rounds, 40);
    assert_eq!(report.reason, StopReason::Horizon);
    let stats = report.steady.expect("horizon mode always reports stats");
    assert_eq!(stats.window, 40);
    assert!(stats.mean_dev.is_finite() && stats.mean_dev >= 0.0);
    assert!(stats.max_dev >= stats.p99_dev && stats.p99_dev >= 0.0);
    assert!(
        report.load.arrivals + report.load.departures > 0,
        "generators never fired over 40 rounds"
    );
    assert_eq!(
        sim.total_load(),
        3600.0 + report.load.injected,
        "report accounting must satisfy total == initial + injected"
    );
}

/// `stop=steady:WINDOW` detects a flat deviation profile: a run that
/// starts balanced (deviation pinned at zero) trips the detector as
/// soon as both comparison windows fill.
#[test]
fn steady_mode_stops_on_flat_deviation() {
    let g = generators::cycle(12);
    let report = Experiment::on(&g)
        .discrete(Rounding::nearest())
        .fos()
        .init(InitialLoad::EqualPerNode(100))
        .stop(StopCondition::Steady { window: 8 })
        .build()
        .unwrap()
        .run();
    assert_eq!(report.reason, StopReason::Steady);
    assert_eq!(report.rounds, 16, "detector trips once both windows fill");
    let stats = report.steady.expect("steady mode always reports stats");
    assert_eq!(stats.max_dev, 0.0, "balanced run has zero deviation");
    // No load plan: the events report stays all-zero.
    assert_eq!(report.load, LoadEvents::default());
    assert!(report.steady.is_some());
}

/// Static stop conditions leave the steady report empty and the load
/// accounting untouched, so existing callers see no behavior change.
#[test]
fn static_runs_report_no_steady_stats() {
    let g = generators::cycle(8);
    let report = Experiment::on(&g)
        .discrete(Rounding::nearest())
        .fos()
        .init(InitialLoad::point(0, 800))
        .stop(StopCondition::MaxRounds(20))
        .build()
        .unwrap()
        .run();
    assert_eq!(report.steady, None);
    assert_eq!(report.load, LoadEvents::default());
}

/// Dynamic scenarios flow end to end through the text pipeline: parse,
/// batch-drive, report injection counts and the worst steady p99.
#[test]
fn load_scenarios_run_through_the_driver() {
    let specs = ScenarioSpec::parse_many(
        "name=dynamic topology=torus2d:6:6 scheme=sos:1.7 rounding=nearest \
         load=poisson:0.6:7+adversarial:20:5:3 stop=horizon:48\n\
         name=static topology=torus2d:6:6 scheme=sos:1.7 rounding=nearest stop=rounds:48\n",
    )
    .unwrap();
    let batch = Driver::new().run_batch(&specs);
    assert!(batch.errors.is_empty(), "{:?}", batch.errors);
    let dynamic = &batch.scenarios[0].report;
    let static_run = &batch.scenarios[1].report;
    assert!(
        dynamic.load.arrivals + dynamic.load.departures > 0,
        "load generators never fired"
    );
    assert!(dynamic.steady.is_some());
    assert_eq!(static_run.load, LoadEvents::default());
    assert_eq!(static_run.steady, None);
    assert_eq!(
        batch.worst_steady_p99,
        dynamic.steady.map(|s| s.p99_dev),
        "batch aggregates the worst steady p99 across scenarios"
    );
    // The dynamic spec round-trips with its load= key intact.
    let reparsed: ScenarioSpec = batch.scenarios[0].spec.parse().unwrap();
    assert_eq!(reparsed.load, specs[0].load);
}
