//! End-to-end balancing runs across every graph class in the paper's
//! Table I (scaled down), for both schemes and all rounding modes.

use sodiff::core::prelude::*;
use sodiff::graph::{generators, Graph};
use sodiff::linalg::spectral;

fn balance(graph: &Graph, scheme: Scheme, rounding: Rounding, rounds: usize) -> (f64, f64) {
    let n = graph.node_count();
    let mut sim = Experiment::on(graph)
        .discrete(rounding)
        .scheme(scheme)
        .init(InitialLoad::paper_default(n))
        .build()
        .unwrap()
        .simulator();
    sim.run_until(StopCondition::MaxRounds(rounds));
    assert_eq!(
        sim.total_load(),
        (1000 * n) as f64,
        "token conservation violated"
    );
    let m = sim.metrics();
    (m.max_minus_avg, m.max_local_diff)
}

fn beta_for(graph: &Graph) -> f64 {
    spectral::analyze(graph, &Speeds::uniform(graph.node_count())).beta_opt()
}

#[test]
fn torus_sos_balances() {
    let g = generators::torus2d(32, 32);
    let beta = beta_for(&g);
    let (max_avg, local) = balance(&g, Scheme::sos(beta), Rounding::randomized(1), 2000);
    assert!(max_avg < 15.0, "max-avg {max_avg}");
    assert!(local < 20.0, "local {local}");
}

#[test]
fn torus_fos_balances_eventually() {
    let g = generators::torus2d(16, 16);
    let (max_avg, _) = balance(&g, Scheme::fos(), Rounding::randomized(2), 8000);
    assert!(max_avg < 6.0, "max-avg {max_avg}");
}

#[test]
fn hypercube_both_schemes() {
    let g = generators::hypercube(10);
    let beta = beta_for(&g);
    let (sos, _) = balance(&g, Scheme::sos(beta), Rounding::randomized(3), 300);
    let (fos, _) = balance(&g, Scheme::fos(), Rounding::randomized(3), 300);
    // Paper Figure 13: on hypercubes FOS and SOS end up very close.
    assert!(sos < 12.0, "sos {sos}");
    assert!(fos < 12.0, "fos {fos}");
}

#[test]
fn random_regular_graph_balances_fast() {
    let g = generators::random_graph_cm(2048, 7).unwrap();
    let beta = beta_for(&g);
    let (sos, _) = balance(&g, Scheme::sos(beta), Rounding::randomized(4), 200);
    assert!(sos < 12.0, "sos {sos}");
}

#[test]
fn random_geometric_graph_balances() {
    let g = generators::rgg_paper(1000, 5);
    let beta = beta_for(&g);
    let (sos, _) = balance(&g, Scheme::sos(beta), Rounding::randomized(5), 2000);
    assert!(sos < 25.0, "sos {sos}");
}

#[test]
fn cycle_balances_with_all_roundings() {
    let g = generators::cycle(64);
    let beta = beta_for(&g);
    for rounding in [
        Rounding::randomized(6),
        Rounding::round_down(),
        Rounding::nearest(),
        Rounding::unbiased_edge(6),
    ] {
        let (max_avg, _) = balance(&g, Scheme::sos(beta), rounding, 4000);
        assert!(max_avg < 40.0, "{rounding:?}: max-avg {max_avg}");
    }
}

#[test]
fn complete_graph_balances_immediately() {
    let g = generators::complete(50);
    let (max_avg, _) = balance(&g, Scheme::fos(), Rounding::randomized(8), 20);
    assert!(max_avg <= 3.0, "max-avg {max_avg}");
}

#[test]
fn sos_much_faster_than_fos_on_torus() {
    // The central Table-I-graph claim: on tori (small spectral gap) SOS
    // reaches a near-balanced state long before FOS.
    let g = generators::torus2d(24, 24);
    let beta = beta_for(&g);
    let rounds_to = |scheme: Scheme| -> u64 {
        Experiment::on(&g)
            .discrete(Rounding::randomized(11))
            .scheme(scheme)
            .init(InitialLoad::paper_default(576))
            .stop(StopCondition::BalancedWithin {
                threshold: 30.0,
                max_rounds: 50_000,
            })
            .build()
            .unwrap()
            .run()
            .rounds
    };
    let sos = rounds_to(Scheme::sos(beta));
    let fos = rounds_to(Scheme::fos());
    assert!(
        3 * sos < fos,
        "SOS took {sos} rounds, FOS {fos}; expected ≥3x speedup"
    );
}

#[test]
fn idealized_and_discrete_agree_on_shape() {
    // Figure 6: the idealized scheme tracks the discrete one closely at
    // the macro level.
    let g = generators::torus2d(20, 20);
    let beta = beta_for(&g);
    let n = g.node_count();
    let mut disc = Experiment::on(&g)
        .discrete(Rounding::randomized(12))
        .sos(beta)
        .init(InitialLoad::paper_default(n))
        .build()
        .unwrap()
        .simulator();
    let mut cont = Experiment::on(&g)
        .continuous()
        .sos(beta)
        .init(InitialLoad::paper_default(n))
        .build()
        .unwrap()
        .simulator();
    // During the decay phase the two trajectories agree to within a few
    // percent; after convergence the discrete run keeps a small constant
    // residual (the paper's "remaining imbalance") while the idealized one
    // goes to ~0.
    for _ in 0..40 {
        disc.step();
        cont.step();
    }
    let (d, c) = (disc.metrics(), cont.metrics());
    let rel = (d.max_minus_avg - c.max_minus_avg).abs() / c.max_minus_avg.max(1.0);
    assert!(
        rel < 0.3,
        "discrete {} vs continuous {}",
        d.max_minus_avg,
        c.max_minus_avg
    );
    for _ in 0..400 {
        disc.step();
        cont.step();
    }
    let (d, c) = (disc.metrics(), cont.metrics());
    assert!(c.max_minus_avg < 1.0, "idealized converges to ~0");
    assert!(
        d.max_minus_avg < 15.0,
        "discrete residual stays constant-sized, got {}",
        d.max_minus_avg
    );
}

#[test]
fn continuous_total_load_error_is_tiny() {
    // Figure 6 (right): float drift of the idealized scheme is negligible.
    let g = generators::torus2d(20, 20);
    let beta = beta_for(&g);
    let n = g.node_count();
    let mut sim = Experiment::on(&g)
        .continuous()
        .sos(beta)
        .init(InitialLoad::paper_default(n))
        .build()
        .unwrap()
        .simulator();
    sim.run_until(StopCondition::MaxRounds(2000));
    let drift = (sim.total_load() - sim.initial_total()).abs();
    assert!(drift < 1e-4, "float drift {drift}");
}
