//! Golden-trace bit-identity of the randomized rounding framework.
//!
//! The checksums below were captured from the pre-pipeline implementation
//! (per-node `SplitMix64::for_node_round` construction, gather-based arc
//! pass, arc-out combine) before it was rebuilt as the streaming
//! three-phase pipeline. Any deviation — loads, flow memory, or minimum
//! transient load, after dozens of rounds across FOS/SOS, both flow-memory
//! modes, and heterogeneous speeds — fails these tests, proving the
//! rewrite is bit-identical to the original randomized framework.

use sodiff::graph::generators;
use sodiff::prelude::*;

/// FNV-1a over the full simulation state: loads, previous flows (bits),
/// and the minimum transient load (bits).
fn state_checksum(sim: &Simulator<'_>) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
    };
    for &x in sim.loads_i64().expect("golden traces are discrete") {
        eat(&x.to_le_bytes());
    }
    for &f in sim.previous_flows() {
        eat(&f.to_bits().to_le_bytes());
    }
    eat(&sim.min_transient_load().to_bits().to_le_bytes());
    h
}

fn run_and_check(name: &str, expected: u64, mut sim: Simulator<'_>, rounds: usize) {
    for _ in 0..rounds {
        sim.step();
    }
    assert_eq!(
        state_checksum(&sim),
        expected,
        "{name}: randomized-framework trace diverged from the pre-pipeline implementation"
    );
}

#[test]
fn torus_fos_rounded_memory() {
    let g = generators::torus2d(8, 8);
    let sim = Experiment::on(&g)
        .discrete(Rounding::randomized(42))
        .init(InitialLoad::point(0, 6400))
        .build()
        .unwrap()
        .simulator();
    run_and_check("torus_fos_rounded", 0xc6a410e2f5b1eac5, sim, 60);
}

#[test]
fn torus_sos_scheduled_memory() {
    let g = generators::torus2d(8, 8);
    let sim = Experiment::on(&g)
        .discrete(Rounding::randomized(7))
        .sos(1.8)
        .flow_memory(FlowMemory::Scheduled)
        .build()
        .unwrap()
        .simulator();
    run_and_check("torus_sos_scheduled", 0xdef99d824410227d, sim, 60);
}

#[test]
fn random_regular_sos_heterogeneous() {
    let g = generators::random_regular(60, 4, 2).unwrap();
    let sim = Experiment::on(&g)
        .discrete(Rounding::randomized(13))
        .sos(1.7)
        .speeds(Speeds::linear_ramp(60, 5.0))
        .init(InitialLoad::point(0, 60_000))
        .build()
        .unwrap()
        .simulator();
    run_and_check("regular_sos_het", 0xcda74ebcdaf7a3a9, sim, 80);
}

#[test]
fn cycle_fos_odd_size() {
    let g = generators::cycle(17);
    let sim = Experiment::on(&g)
        .discrete(Rounding::randomized(3))
        .init(InitialLoad::point(0, 1700))
        .build()
        .unwrap()
        .simulator();
    run_and_check("cycle_fos", 0x7a6af77403c77095, sim, 45);
}

/// The pooled executor reproduces the same golden trace: the pipeline's
/// bit-identity holds across chunking too.
#[test]
fn golden_trace_holds_on_the_pool() {
    let g = generators::torus2d(8, 8);
    let sim = Experiment::on(&g)
        .discrete(Rounding::randomized(42))
        .threads(3)
        .init(InitialLoad::point(0, 6400))
        .build()
        .unwrap()
        .simulator();
    run_and_check("torus_fos_rounded (pooled)", 0xc6a410e2f5b1eac5, sim, 60);
}
