//! Golden-trace bit-identity of the simulation kernels.
//!
//! The FOS/SOS checksums were captured from the pre-pipeline randomized
//! framework (per-node `SplitMix64::for_node_round` construction,
//! gather-based arc pass, arc-out combine) before it was rebuilt as the
//! streaming three-phase pipeline, and have survived the scheme-kernel
//! layer refactor unchanged. The dimension-exchange and matching-based
//! checksums pin the pairwise kernels since their introduction. Any
//! deviation — loads, flow memory, or minimum transient load, after
//! dozens of rounds across schemes, flow-memory modes, and heterogeneous
//! speeds — fails these tests; each pairwise configuration is checked on
//! the sequential executor *and*, against the same checksum, on the pool.
//!
//! # Re-pin policy for distribution-changing optimizations
//!
//! A golden checksum may be re-pinned **only** when an optimization
//! deliberately changes which random outcome a scheme draws — never to
//! paper over an unexplained divergence. The bar, in order:
//!
//! 1. the change must be confined to a *randomized decision* whose
//!    distribution the scheme's correctness argument treats as
//!    exchangeable (e.g. which maximal matching a round draws), not to
//!    the arithmetic of flows, rounding, or application;
//! 2. a statistical test must pin the properties the scheme actually
//!    relies on (for matchings: maximality every round, determinism per
//!    `(seed, round)`, size concentration — see
//!    `crates/core/src/matchgen.rs`);
//! 3. sequential and pooled executors must still produce the *same new*
//!    checksum (the re-pin never relaxes executor bit-identity); and
//! 4. the commit re-pinning the value must state what changed and why
//!    the old trace could not be preserved.
//!
//! Applied once so far: `regular_matching_random_heterogeneous`, when
//! the random-matching generator's `O(m log m)` full-key sort was
//! replaced by the `O(m)` counting-scatter bucket pass — the greedy
//! visit order became "key-prefix bucket, then edge id" instead of the
//! full `(key, edge)` order, so rounds draw different (equally valid)
//! maximal matchings. Diffusion, dimension-exchange, and round-robin
//! matching traces were unaffected.

use sodiff::graph::generators;
use sodiff::prelude::*;

/// FNV-1a over the full simulation state: loads, previous flows (bits),
/// and the minimum transient load (bits).
fn state_checksum(sim: &Simulator<'_>) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
    };
    for &x in sim.loads_i64().expect("golden traces are discrete") {
        eat(&x.to_le_bytes());
    }
    for &f in sim.previous_flows() {
        eat(&f.to_bits().to_le_bytes());
    }
    eat(&sim.min_transient_load().to_bits().to_le_bytes());
    h
}

fn run_and_check(name: &str, expected: u64, mut sim: Simulator<'_>, rounds: usize) {
    for _ in 0..rounds {
        sim.step();
    }
    assert_eq!(
        state_checksum(&sim),
        expected,
        "{name}: golden trace diverged from the pinned implementation"
    );
}

#[test]
fn torus_fos_rounded_memory() {
    let g = generators::torus2d(8, 8);
    let sim = Experiment::on(&g)
        .discrete(Rounding::randomized(42))
        .init(InitialLoad::point(0, 6400))
        .build()
        .unwrap()
        .simulator();
    run_and_check("torus_fos_rounded", 0xc6a410e2f5b1eac5, sim, 60);
}

#[test]
fn torus_sos_scheduled_memory() {
    let g = generators::torus2d(8, 8);
    let sim = Experiment::on(&g)
        .discrete(Rounding::randomized(7))
        .sos(1.8)
        .flow_memory(FlowMemory::Scheduled)
        .build()
        .unwrap()
        .simulator();
    run_and_check("torus_sos_scheduled", 0xdef99d824410227d, sim, 60);
}

#[test]
fn random_regular_sos_heterogeneous() {
    let g = generators::random_regular(60, 4, 2).unwrap();
    let sim = Experiment::on(&g)
        .discrete(Rounding::randomized(13))
        .sos(1.7)
        .speeds(Speeds::linear_ramp(60, 5.0))
        .init(InitialLoad::point(0, 60_000))
        .build()
        .unwrap()
        .simulator();
    run_and_check("regular_sos_het", 0xcda74ebcdaf7a3a9, sim, 80);
}

#[test]
fn cycle_fos_odd_size() {
    let g = generators::cycle(17);
    let sim = Experiment::on(&g)
        .discrete(Rounding::randomized(3))
        .init(InitialLoad::point(0, 1700))
        .build()
        .unwrap()
        .simulator();
    run_and_check("cycle_fos", 0x7a6af77403c77095, sim, 45);
}

/// The pooled executor reproduces the same golden trace: the pipeline's
/// bit-identity holds across chunking too.
#[test]
fn golden_trace_holds_on_the_pool() {
    let g = generators::torus2d(8, 8);
    let sim = Experiment::on(&g)
        .discrete(Rounding::randomized(42))
        .threads(3)
        .init(InitialLoad::point(0, 6400))
        .build()
        .unwrap()
        .simulator();
    run_and_check("torus_fos_rounded (pooled)", 0xc6a410e2f5b1eac5, sim, 60);
}

// ---------------------------------------------------------------------
// Pairwise schemes: the checksums below pin the dimension-exchange and
// matching-based kernels as introduced by the scheme-kernel layer. Each
// configuration is checked on the sequential executor and, with the same
// checksum, on the pool — sequential == pooled, bit for bit.
// ---------------------------------------------------------------------

/// A DE/matching simulator over the given scheme and rounding.
fn pairwise_sim(
    g: &sodiff::graph::Graph,
    scheme: Scheme,
    rounding: Rounding,
    threads: usize,
) -> Simulator<'_> {
    let n = g.node_count();
    Experiment::on(g)
        .discrete(rounding)
        .scheme(scheme)
        .threads(threads)
        .init(InitialLoad::point(0, (n * 100) as i64))
        .build()
        .unwrap()
        .simulator()
}

#[test]
fn torus_dimension_exchange_nearest() {
    let g = generators::torus2d(8, 8);
    for threads in [1, 3] {
        let sim = pairwise_sim(
            &g,
            Scheme::dimension_exchange(1.0),
            Rounding::nearest(),
            threads,
        );
        run_and_check("torus_de_nearest", 0x1059328902898be5, sim, 60);
    }
}

#[test]
fn torus_dimension_exchange_randomized_framework() {
    // DE under the node-centric randomized framework exercises the masked
    // scatter pass; each node has at most one active arc per round.
    let g = generators::torus2d(8, 8);
    for threads in [1, 3] {
        let sim = pairwise_sim(
            &g,
            Scheme::dimension_exchange(0.75),
            Rounding::randomized(42),
            threads,
        );
        run_and_check("torus_de_randomized", 0x309b74ddad5025da, sim, 60);
    }
}

#[test]
fn cycle_matching_round_robin() {
    let g = generators::cycle(17);
    for threads in [1, 3] {
        let sim = pairwise_sim(
            &g,
            Scheme::matching_round_robin(1.0),
            Rounding::nearest(),
            threads,
        );
        run_and_check("cycle_matching_rr", 0xc26364164de48acf, sim, 45);
    }
}

/// Fault injection is part of the pinned surface: a crash-churn SOS run
/// must reproduce this trace on the sequential executor and on the pool.
/// Pinned when the `FaultSpec` axis was introduced; the re-pin policy
/// above applies (a fault plan is a randomized decision stream keyed by
/// `(kind, seed, round)` — changing which stream a channel consumes
/// needs the full justification, not just a new constant).
#[test]
fn torus_sos_crash_churn() {
    let g = generators::torus2d(8, 8);
    for threads in [1, 3] {
        let sim = Experiment::on(&g)
            .discrete(Rounding::nearest())
            .sos(1.7)
            .threads(threads)
            .init(InitialLoad::point(0, 6400))
            .faults(FaultSpec::none().with_crash(0.1, 7))
            .build()
            .unwrap()
            .simulator();
        run_and_check("torus_sos_crash_churn", 0x8cc7ad550f849948, sim, 64);
    }
}

/// Dynamic-workload injection is part of the pinned surface: a Poisson
/// arrival/departure SOS run must reproduce this trace on the
/// sequential executor and on the pool. Pinned when the `LoadSpec` axis
/// was introduced; the re-pin policy above applies (a load plan is a
/// randomized decision stream keyed by `(generator, seed, round)` —
/// changing which stream a generator consumes needs the full
/// justification, not just a new constant).
#[test]
fn torus_sos_poisson() {
    let g = generators::torus2d(8, 8);
    for threads in [1, 3] {
        let sim = Experiment::on(&g)
            .discrete(Rounding::nearest())
            .sos(1.7)
            .threads(threads)
            .init(InitialLoad::point(0, 6400))
            .load(LoadSpec::none().with_poisson(0.5, 7))
            .build()
            .unwrap()
            .simulator();
        run_and_check("torus_sos_poisson", 0x528126d94fdd1296, sim, 64);
    }
}

/// Live-topology churn is part of the pinned surface: a flux SOS run
/// (epoch-aligned departures with conservation-exact handoff, arrivals
/// at a configured initial load) must reproduce this trace on the
/// sequential executor and on the pool. Pinned when the `ChurnSpec`
/// axis was introduced; the re-pin policy above applies (a churn plan
/// is a randomized decision stream keyed by `(seed, epoch)` — changing
/// which stream the flux channel consumes needs the full justification,
/// not just a new constant).
#[test]
fn torus_sos_flux() {
    let g = generators::torus2d(8, 8);
    for threads in [1, 3] {
        let sim = Experiment::on(&g)
            .discrete(Rounding::nearest())
            .sos(1.7)
            .threads(threads)
            .init(InitialLoad::point(0, 6400))
            .churn(ChurnSpec::none().with_flux(0.08, 0.3, 9).with_initial(25.0))
            .build()
            .unwrap()
            .simulator();
        run_and_check("torus_sos_flux", 0x7e2c2b500623f7e6, sim, 64);
    }
}

/// Churn composed with the crash channel: the two axes draw from
/// independent streams, so this trace pins their interaction order
/// (fault epoch first, churn transition second, then the flow pass).
#[test]
fn torus_sos_crash_flux() {
    let g = generators::torus2d(8, 8);
    for threads in [1, 3] {
        let sim = Experiment::on(&g)
            .discrete(Rounding::nearest())
            .sos(1.7)
            .threads(threads)
            .init(InitialLoad::point(0, 6400))
            .faults(FaultSpec::none().with_crash(0.1, 7))
            .churn(ChurnSpec::none().with_flux(0.08, 0.3, 9).with_initial(25.0))
            .build()
            .unwrap()
            .simulator();
        run_and_check("torus_sos_crash_flux", 0x98bbaa1b24facd58, sim, 64);
    }
}

#[test]
fn regular_matching_random_heterogeneous() {
    // Random per-round maximal matchings + per-edge unbiased rounding +
    // heterogeneous speeds: the random plan's control-thread mask
    // generation must hold the trace across executors.
    let g = generators::random_regular(60, 4, 2).unwrap();
    for threads in [1, 4] {
        let sim = Experiment::on(&g)
            .discrete(Rounding::unbiased_edge(13))
            .scheme(Scheme::matching_random(7, 1.0))
            .speeds(Speeds::linear_ramp(60, 5.0))
            .threads(threads)
            .init(InitialLoad::point(0, 60_000))
            .build()
            .unwrap()
            .simulator();
        run_and_check("regular_matching_random", 0x7cbb471521179a82, sim, 80);
    }
}
