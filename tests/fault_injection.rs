//! Fault-injection subsystem: determinism across executors, conservation
//! under churn, graceful degradation, and crash-isolated batch driving.

use proptest::prelude::*;

use sodiff::core::{Driver, ScenarioFailure, EPOCH_LEN};
use sodiff::graph::generators;
use sodiff::prelude::*;
use sodiff::ScenarioSpec;

fn faulted_sim(g: &sodiff::graph::Graph, faults: FaultSpec, threads: usize) -> Simulator<'_> {
    let n = g.node_count();
    Experiment::on(g)
        .discrete(Rounding::nearest())
        .sos(1.7)
        .threads(threads)
        .init(InitialLoad::point(0, (n * 100) as i64))
        .faults(faults)
        .build()
        .unwrap()
        .simulator()
}

/// Any faulted run is bit-identical sequential vs pooled across thread
/// counts: fault masks, crash schedules, shocks, and stale drops are all
/// drawn from counter-indexed streams on the control thread, so the
/// executor cannot influence them.
#[test]
fn faulted_runs_are_bit_identical_across_executors() {
    let g = generators::torus2d(6, 6);
    let combos = [
        FaultSpec::none().with_crash(0.2, 7),
        FaultSpec::none().with_edgedrop(0.3, 11),
        FaultSpec::none().with_shock(0.2, 5),
        FaultSpec::none().with_stale(0.25, 3),
        FaultSpec::none()
            .with_crash(0.15, 1)
            .with_edgedrop(0.1, 2)
            .with_shock(0.1, 3)
            .with_stale(0.1, 4),
    ];
    for faults in combos {
        let mut reference = faulted_sim(&g, faults, 1);
        for _ in 0..48 {
            reference.step();
        }
        for threads in [2usize, 3, 5] {
            let mut sim = faulted_sim(&g, faults, threads);
            for _ in 0..48 {
                sim.step();
            }
            assert_eq!(
                sim.loads_i64().unwrap(),
                reference.loads_i64().unwrap(),
                "{faults} loads diverged at {threads} threads"
            );
            assert_eq!(
                sim.previous_flows(),
                reference.previous_flows(),
                "{faults} flow memory diverged at {threads} threads"
            );
            assert_eq!(
                sim.fault_events(),
                reference.fault_events(),
                "{faults} event counts diverged at {threads} threads"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random fault-plan × scheme combinations stay executor-independent
    /// and conserve total load every round (masked edges carry no flow,
    /// dead nodes freeze, shocks and stale drops are symmetric).
    #[test]
    fn random_fault_plans_conserve_and_match_pooled(
        channels in 1u8..16,
        probs in (0.0f64..0.4, 0.0f64..0.4, 0.0f64..0.3, 0.0f64..0.4),
        seeds in (0u64..100, 0u64..100, 0u64..100, 0u64..100),
        sos in 0u8..2,
        threads in 2usize..5,
    ) {
        // `channels` is a bitmask picking a nonempty subset of the four
        // fault kinds, so every combination (including all-on) is drawn.
        let mut faults = FaultSpec::none();
        if channels & 1 != 0 { faults = faults.with_crash(probs.0, seeds.0); }
        if channels & 2 != 0 { faults = faults.with_edgedrop(probs.1, seeds.1); }
        if channels & 4 != 0 { faults = faults.with_shock(probs.2, seeds.2); }
        if channels & 8 != 0 { faults = faults.with_stale(probs.3, seeds.3); }
        let sos = sos == 1;
        let g = generators::torus2d(5, 5);
        let build = |threads: usize| {
            let e = Experiment::on(&g).discrete(Rounding::randomized(9));
            let e = if sos { e.sos(1.6) } else { e.fos() };
            e.threads(threads)
                .init(InitialLoad::point(0, 2500))
                .faults(faults)
                .build()
                .unwrap()
                .simulator()
        };
        let mut seq = build(1);
        let mut pooled = build(threads);
        for _ in 0..40 {
            seq.step();
            pooled.step();
            prop_assert_eq!(seq.total_load(), 2500.0, "sequential run leaked load");
            prop_assert_eq!(seq.loads_i64().unwrap(), pooled.loads_i64().unwrap());
        }
        prop_assert_eq!(seq.previous_flows(), pooled.previous_flows());
        prop_assert_eq!(seq.fault_events(), pooled.fault_events());
    }
}

/// Within an epoch, crashed nodes are frozen exactly as
/// [`FaultSpec::live_nodes`] predicts: their loads do not move between
/// churn events (epoch boundaries), and live-node totals are conserved
/// between them too.
#[test]
fn crash_churn_freezes_dead_nodes_between_epochs() {
    let g = generators::torus2d(6, 6);
    let n = g.node_count();
    let faults = FaultSpec::none().with_crash(0.25, 13);
    let mut sim = faulted_sim(&g, faults, 1);
    let epochs = 4u64;
    let mut saw_dead_node = false;
    for epoch in 0..epochs {
        let live = faults.live_nodes(epoch * EPOCH_LEN, n);
        let at_epoch_start = sim.loads_i64().unwrap().to_vec();
        let live_total: i64 = (0..n).filter(|&u| live[u]).map(|u| at_epoch_start[u]).sum();
        for _ in 0..EPOCH_LEN {
            sim.step();
            let now = sim.loads_i64().unwrap();
            for u in 0..n {
                if !live[u] {
                    saw_dead_node = true;
                    assert_eq!(
                        now[u], at_epoch_start[u],
                        "dead node {u} moved load mid-epoch {epoch}"
                    );
                }
            }
            let live_now: i64 = (0..n).filter(|&u| live[u]).map(|u| now[u]).sum();
            assert_eq!(live_now, live_total, "live total drifted in epoch {epoch}");
        }
    }
    assert!(
        saw_dead_node,
        "seed 13 @ p=0.25 should crash at least one node"
    );
    assert!(sim.fault_events().crashes > 0);
}

/// The divergence watchdog notices a fault-driven deviation burst and
/// degrades SOS to FOS through the ordinary hybrid switching machinery;
/// the clean twin of the same experiment stays undegraded.
#[test]
fn watchdog_degrades_sos_to_fos_under_shocks() {
    let g = generators::cycle(16);
    let run = |faults: FaultSpec| {
        Experiment::on(&g)
            .discrete(Rounding::nearest())
            .sos(1.9)
            .init(InitialLoad::EqualPerNode(1000))
            .faults(faults)
            .stop(StopCondition::MaxRounds(400))
            .build()
            .unwrap()
            .run()
    };
    let clean = run(FaultSpec::none());
    assert!(!clean.degraded, "clean run must not degrade");
    assert_eq!(clean.faults, FaultEvents::default());
    assert_eq!(clean.switch_round, None);

    // Starting balanced, the first load shock (post-watchdog-warmup) is a
    // deviation burst orders of magnitude above the window floor.
    let shocked = run(FaultSpec::none().with_shock(0.02, 40));
    assert!(shocked.faults.shocks > 0, "shock channel never fired");
    assert!(shocked.degraded, "watchdog missed the deviation burst");
    assert!(
        shocked.switch_round.is_some(),
        "degradation must fall back SOS→FOS"
    );
}

/// A batch containing a panicking scenario completes the rest and
/// reports the failure in input order — on both the sequential and the
/// concurrent driver.
#[test]
fn batch_survives_panicking_scenario() {
    let specs = ScenarioSpec::parse_many(
        "name=a topology=cycle:12 seed=1 stop=rounds:10\n\
         name=bomb topology=cycle:12 seed=2 stop=rounds:10\n\
         name=b topology=torus2d:4:4 seed=3 stop=rounds:10\n",
    )
    .unwrap();
    for driver in [Driver::new(), Driver::concurrent(3).unwrap()] {
        let batch = driver.run_batch_with(&specs, |spec| {
            if spec.name == "bomb" {
                panic!("simulated mid-run crash");
            }
            driver.run_spec(spec)
        });
        assert_eq!(batch.scenarios.len(), 2, "surviving scenarios completed");
        assert_eq!(batch.errors.len(), 1);
        let err = &batch.errors[0];
        assert_eq!((err.index, err.line), (1, Some(2)));
        assert!(matches!(&err.error, ScenarioFailure::Panicked(msg) if msg.contains("crash")));
    }
}

/// A run that completes with non-finite loads is reported as
/// [`ScenarioFailure::Diverged`], not returned as a success.
#[test]
fn non_finite_result_is_reported_as_diverged() {
    let specs = ScenarioSpec::parse_many("name=nan topology=cycle:8 seed=1 stop=rounds:5").unwrap();
    let driver = Driver::new();
    let batch = driver.run_batch_with(&specs, |spec| {
        let mut report = driver.run_spec(spec)?;
        report.report.final_metrics.max_minus_avg = f64::NAN;
        Ok(report)
    });
    assert!(batch.scenarios.is_empty());
    assert_eq!(batch.errors.len(), 1);
    assert!(matches!(
        &batch.errors[0].error,
        ScenarioFailure::Diverged(_)
    ));
}

/// Hostile scenario inputs surface as typed errors — parse errors with
/// context, build errors collected per scenario — never as panics.
#[test]
fn hostile_scenarios_fail_typed_never_panic() {
    // Rejected at parse time, with the offending key in the message.
    for (text, needle) in [
        ("topology=cycle:8 faults=crash:1.5:0", "in faults"),
        ("topology=cycle:8 faults=shock:nan:0", "in faults"),
        ("topology=cycle:8 faults=crash:0.1", "in faults"),
        ("topology=cycle:8 faults=meteor:0.1:0", "in faults"),
        (
            "topology=cycle:8 faults=crash:0.1:1+crash:0.2:2",
            "in faults",
        ),
        ("topology=cycle:8 stop=plateau:0:10", "invalid stop"),
    ] {
        let err = text.parse::<ScenarioSpec>().unwrap_err();
        assert!(
            err.message.contains(needle),
            "'{text}' -> '{}'",
            err.message
        );
    }
    // Parse fine, fail at build: collected per scenario, in input order.
    let specs = ScenarioSpec::parse_many(
        "name=noseed topology=cycle:8 rounding=randomized\n\
         name=badspeeds topology=cycle:8 seed=1 speeds=two_class:99:2\n\
         name=badinit topology=cycle:8 seed=1 init=point:99:10\n",
    )
    .unwrap();
    let batch = Driver::new().run_batch(&specs);
    assert!(batch.scenarios.is_empty());
    let kinds: Vec<(usize, bool)> = batch
        .errors
        .iter()
        .map(|e| (e.index, matches!(e.error, ScenarioFailure::Build(_))))
        .collect();
    assert_eq!(kinds, [(0, true), (1, true), (2, true)]);
    // Out-of-range probabilities set programmatically (parse already
    // rejects them in text form) are a typed build error, not a panic.
    let g = generators::cycle(8);
    let err = Experiment::on(&g)
        .discrete(Rounding::nearest())
        .faults(FaultSpec::none().with_crash(1.5, 0))
        .build()
        .unwrap_err();
    assert!(matches!(err, BuildError::InvalidFaults(_)), "{err:?}");
}

/// Fault scenarios flow end to end through the text pipeline: parse,
/// batch-drive, report churn counts.
#[test]
fn fault_scenarios_run_through_the_driver() {
    let specs = ScenarioSpec::parse_many(
        "name=churn topology=torus2d:6:6 scheme=sos:1.7 rounding=nearest \
         faults=crash:0.2:7+shock:0.1:3 stop=rounds:48\n\
         name=clean topology=torus2d:6:6 scheme=sos:1.7 rounding=nearest stop=rounds:48\n",
    )
    .unwrap();
    let batch = Driver::new().run_batch(&specs);
    assert!(batch.errors.is_empty(), "{:?}", batch.errors);
    let churn = &batch.scenarios[0].report;
    let clean = &batch.scenarios[1].report;
    assert!(churn.faults.churn_events() > 0, "faults never fired");
    assert_eq!(clean.faults, FaultEvents::default());
    // The faulted spec round-trips with its faults= key intact.
    let reparsed: ScenarioSpec = batch.scenarios[0].spec.parse().unwrap();
    assert_eq!(reparsed.faults, specs[0].faults);
}
