//! Durable batch driving: journals, resume, and checkpoint restore.
//!
//! `Driver::run_batch_durable` journals every scenario up front and
//! appends a flushed `done`/`fail` line per outcome;
//! `Driver::resume_batch` replays that journal after a crash — skipping
//! finished work, restoring in-flight scenarios from their latest
//! `ckpt=` snapshot, and re-running the rest from round 0. This suite
//! drives those paths end-to-end, including a simulated mid-batch kill
//! and a rotten checkpoint that must quarantine only its own scenario.

use std::fs;
use std::path::PathBuf;

use sodiff::{
    read_checkpoint, write_checkpoint, CheckpointError, Driver, ScenarioFailure, ScenarioSpec,
    StopCondition,
};

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sodiff-batch-{tag}-{}", std::process::id()));
    fs::create_dir_all(&dir).unwrap();
    dir
}

fn sample_specs() -> Vec<ScenarioSpec> {
    ScenarioSpec::parse_many(
        "name=torus topology=torus2d:6:6 scheme=sos:1.8 seed=4 stop=rounds:80\n\
         name=cube topology=hypercube:5 seed=5 stop=rounds:40\n\
         name=ring topology=cycle:12 seed=6 stop=rounds:60\n",
    )
    .unwrap()
}

#[test]
fn durable_batch_journals_every_outcome() {
    let dir = scratch_dir("journal");
    let journal = dir.join("batch.journal");
    let specs = ScenarioSpec::parse_many(
        "name=ok topology=cycle:8 seed=1 stop=rounds:5\n\
         name=broken topology=cycle:8 rounding=randomized\n\
         name=ok2 topology=cycle:8 seed=2 stop=rounds:5\n",
    )
    .unwrap();
    let report = Driver::new().run_batch_durable(&specs, &journal).unwrap();
    assert_eq!(report.scenarios.len(), 2);
    assert_eq!(report.errors.len(), 1);
    assert_eq!(report.total_attempts, 3);

    let text = fs::read_to_string(&journal).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines[0], "sodiff-journal v1");
    assert!(lines[1..=3].iter().all(|l| l.starts_with("spec name=")));
    let outcomes: Vec<&str> = lines[4..].to_vec();
    assert_eq!(outcomes.len(), 3, "one outcome line per scenario");
    assert!(outcomes.contains(&"done 0") && outcomes.contains(&"done 2"));
    assert!(
        outcomes.iter().any(|l| l.starts_with("fail 1 ")),
        "{outcomes:?}"
    );

    // Everything is accounted for: resuming a finished batch runs
    // nothing and reports nothing new.
    let resumed = Driver::new().resume_batch(&journal).unwrap();
    assert!(resumed.scenarios.is_empty() && resumed.errors.is_empty());
    assert_eq!(resumed.total_rounds, 0);
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn resume_runs_only_the_unfinished_remainder() {
    let dir = scratch_dir("remainder");
    let journal = dir.join("killed.journal");
    let specs = sample_specs();
    // Simulate a batch killed after its first scenario completed: the
    // journal has every spec but only one `done` line.
    let mut text = String::from("sodiff-journal v1\n");
    for spec in &specs {
        text.push_str(&format!("spec {spec}\n"));
    }
    text.push_str("done 0\n");
    fs::write(&journal, &text).unwrap();

    let clean = Driver::new().run_batch(&specs);
    for driver in [Driver::new(), Driver::concurrent(2).unwrap()] {
        fs::write(&journal, &text).unwrap();
        let resumed = driver.resume_batch(&journal).unwrap();
        assert!(resumed.errors.is_empty(), "{:?}", resumed.errors);
        assert_eq!(resumed.scenarios.len(), 2, "only the unfinished two ran");
        assert_eq!(resumed.scenarios[0].name, "cube");
        assert_eq!(resumed.scenarios[1].name, "ring");
        // Re-run scenarios are bit-identical to the uninterrupted batch.
        assert_eq!(resumed.scenarios[0].report, clean.scenarios[1].report);
        assert_eq!(resumed.scenarios[1].report, clean.scenarios[2].report);
        // The resume appended its own outcomes: a second resume is a
        // no-op.
        let again = driver.resume_batch(&journal).unwrap();
        assert!(again.scenarios.is_empty() && again.errors.is_empty());
    }
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn resume_restores_in_flight_scenario_from_checkpoint() {
    let dir = scratch_dir("inflight");
    let ckpt_dir = dir.join("ckpts");
    let journal = dir.join("crashed.journal");
    let line = format!(
        "name=inflight topology=torus2d:8:8 rounding=nearest scheme=sos:1.7 init=point:0:6400 \
         faults=crash:0.1:7 ckpt=every:8:{} stop=rounds:40",
        ckpt_dir.display()
    );
    let spec: ScenarioSpec = line.parse().unwrap();

    // Simulate the crash: the scenario ran 24 of 40 rounds (three
    // auto-checkpoints) before the process died — journal has the spec
    // but no outcome, and the latest snapshot sits at round 24.
    let graph = spec.build_graph().unwrap();
    let experiment = spec.experiment_on(&graph).unwrap();
    let mut sim = experiment.simulator();
    sim.run_until(StopCondition::MaxRounds(24));
    let latest = ckpt_dir.join("inflight.ckpt");
    assert_eq!(
        read_checkpoint(&latest).unwrap().snapshot.round(),
        24,
        "the ckpt= key wrote the in-flight snapshot"
    );
    fs::write(&journal, format!("sodiff-journal v1\nspec {spec}\n")).unwrap();

    let resumed = Driver::new().resume_batch(&journal).unwrap();
    assert!(resumed.errors.is_empty(), "{:?}", resumed.errors);
    assert_eq!(resumed.scenarios.len(), 1);
    let scenario = &resumed.scenarios[0];
    assert_eq!(
        scenario.report.rounds, 16,
        "resume covers only the remaining rounds"
    );
    // The restored run ends in exactly the state of an uninterrupted one.
    let clean = spec.run().unwrap();
    assert_eq!(scenario.report.final_metrics, clean.final_metrics);
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn rotten_checkpoint_quarantines_only_its_scenario() {
    let dir = scratch_dir("rotten");
    let ckpt_dir = dir.join("ckpts");
    fs::create_dir_all(&ckpt_dir).unwrap();
    let journal = dir.join("rotten.journal");
    let lines = format!(
        "name=rotten topology=cycle:12 seed=6 ckpt=every:8:{d} stop=rounds:60\n\
         name=healthy topology=hypercube:5 seed=5 stop=rounds:40\n",
        d = ckpt_dir.display()
    );
    let specs = ScenarioSpec::parse_many(&lines).unwrap();
    // A checkpoint that is present but bit-rotted.
    fs::write(ckpt_dir.join("rotten.ckpt"), b"SODIFFCK garbage").unwrap();
    let mut text = String::from("sodiff-journal v1\n");
    for spec in &specs {
        text.push_str(&format!("spec {spec}\n"));
    }
    fs::write(&journal, &text).unwrap();

    let resumed = Driver::new().resume_batch(&journal).unwrap();
    // The healthy scenario ran; the rotten one was quarantined with a
    // typed, line-anchored error and was NOT silently re-run.
    assert_eq!(resumed.scenarios.len(), 1);
    assert_eq!(resumed.scenarios[0].name, "healthy");
    assert_eq!(resumed.errors.len(), 1);
    let err = &resumed.errors[0];
    assert_eq!((err.index, err.name.as_str()), (0, "rotten"));
    assert_eq!(err.line, Some(2), "anchored to the journal's spec line");
    assert_eq!(err.attempts, 0, "the scenario never started");
    assert!(
        matches!(&err.error, ScenarioFailure::Checkpoint(_)),
        "{:?}",
        err.error
    );
    // The failure was journaled, so the next resume has nothing to do.
    let again = Driver::new().resume_batch(&journal).unwrap();
    assert!(again.scenarios.is_empty() && again.errors.is_empty());
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn mismatched_checkpoint_is_refused() {
    // A checkpoint written by a DIFFERENT scenario under the name the
    // journal expects must be refused (Mismatch), not restored.
    let dir = scratch_dir("mismatch");
    let ckpt_dir = dir.join("ckpts");
    let journal = dir.join("mismatch.journal");
    let imposter: ScenarioSpec = "name=imposter topology=cycle:12 seed=1 stop=rounds:30"
        .parse()
        .unwrap();
    let graph = imposter.build_graph().unwrap();
    let experiment = imposter.experiment_on(&graph).unwrap();
    let mut sim = experiment.simulator();
    sim.run_until(StopCondition::MaxRounds(10));
    fs::create_dir_all(&ckpt_dir).unwrap();
    write_checkpoint(&ckpt_dir.join("victim.ckpt"), &imposter, &sim.snapshot()).unwrap();

    let line = format!(
        "name=victim topology=cycle:12 seed=6 ckpt=every:8:{} stop=rounds:60",
        ckpt_dir.display()
    );
    let spec: ScenarioSpec = line.parse().unwrap();
    fs::write(&journal, format!("sodiff-journal v1\nspec {spec}\n")).unwrap();
    let resumed = Driver::new().resume_batch(&journal).unwrap();
    assert!(resumed.scenarios.is_empty());
    assert_eq!(resumed.errors.len(), 1);
    match &resumed.errors[0].error {
        ScenarioFailure::Checkpoint(CheckpointError::Mismatch(msg)) => {
            assert!(msg.contains("imposter"), "{msg}");
        }
        other => panic!("unexpected {other:?}"),
    }
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn malformed_journals_error_with_line_numbers() {
    let dir = scratch_dir("malformed");
    let journal = dir.join("bad.journal");

    fs::write(&journal, "wrong header\n").unwrap();
    assert!(matches!(
        Driver::new().resume_batch(&journal).unwrap_err(),
        CheckpointError::Journal { line: 1, .. }
    ));

    fs::write(&journal, "sodiff-journal v1\nspec name=x topology=warp:9\n").unwrap();
    assert!(matches!(
        Driver::new().resume_batch(&journal).unwrap_err(),
        CheckpointError::Journal { line: 2, .. }
    ));

    fs::write(&journal, "sodiff-journal v1\ndone 7\n").unwrap();
    assert!(matches!(
        Driver::new().resume_batch(&journal).unwrap_err(),
        CheckpointError::Journal { line: 2, .. }
    ));

    let missing = dir.join("missing.journal");
    assert!(matches!(
        Driver::new().resume_batch(&missing).unwrap_err(),
        CheckpointError::Io { .. }
    ));
    fs::remove_dir_all(&dir).ok();
}
