//! Corrupted checkpoints and journals fail **typed**, never panic.
//!
//! The on-disk checkpoint format is length-prefixed and
//! checksum-trailed, so every way a file can rot — truncation at any
//! byte, a flipped bit anywhere, a foreign file, a future format
//! version — must surface as the matching [`CheckpointError`] variant.
//! This suite exhaustively truncates and bit-flips a real snapshot and
//! asserts the typed outcome for every prefix/position; the batch
//! recovery layer (`tests/batch_recovery.rs`) additionally proves a
//! rotten checkpoint quarantines only its own scenario.

use std::fs;
use std::path::PathBuf;

use sodiff::{read_checkpoint, write_checkpoint, CheckpointError, ScenarioSpec, StopCondition};

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sodiff-corrupt-{tag}-{}", std::process::id()));
    fs::create_dir_all(&dir).unwrap();
    dir
}

/// A real checkpoint (10 rounds of a seeded cycle run) as raw bytes.
fn checkpoint_bytes(dir: &std::path::Path) -> Vec<u8> {
    let spec: ScenarioSpec =
        "name=victim topology=cycle:17 rounding=randomized seed=3 init=point:0:1700 \
         stop=rounds:45"
            .parse()
            .unwrap();
    let graph = spec.build_graph().unwrap();
    let experiment = spec.experiment_on(&graph).unwrap();
    let mut sim = experiment.simulator();
    sim.run_until(StopCondition::MaxRounds(10));
    let path = dir.join("victim.ckpt");
    write_checkpoint(&path, &spec, &sim.snapshot()).unwrap();
    fs::read(&path).unwrap()
}

#[test]
fn truncation_at_every_byte_is_typed() {
    let dir = scratch_dir("truncate");
    let bytes = checkpoint_bytes(&dir);
    let path = dir.join("truncated.ckpt");
    for len in 0..bytes.len() {
        fs::write(&path, &bytes[..len]).unwrap();
        let err = read_checkpoint(&path).expect_err("truncated checkpoint must not load");
        // Short prefixes die on the structural checks, longer ones on
        // the trailing checksum — never anything untyped, never a panic.
        assert!(
            matches!(
                err,
                CheckpointError::Truncated | CheckpointError::ChecksumMismatch { .. }
            ),
            "prefix of {len} bytes: unexpected {err:?}"
        );
    }
    // The untruncated bytes still load (the fixture itself is valid).
    fs::write(&path, &bytes).unwrap();
    read_checkpoint(&path).unwrap();
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn bit_flip_at_every_byte_is_typed() {
    let dir = scratch_dir("bitflip");
    let bytes = checkpoint_bytes(&dir);
    let path = dir.join("flipped.ckpt");
    for pos in 0..bytes.len() {
        let mut rotten = bytes.clone();
        rotten[pos] ^= 0x40;
        fs::write(&path, &rotten).unwrap();
        let err = read_checkpoint(&path).expect_err("corrupted checkpoint must not load");
        let expected = match pos {
            // Inside the magic: recognized as "not a checkpoint at all".
            0..=7 => matches!(err, CheckpointError::BadMagic),
            // Inside the version word: an unsupported format.
            8..=11 => matches!(err, CheckpointError::UnsupportedVersion { .. }),
            // Anywhere else — payload or the stored digest itself — the
            // FNV trailer catches it.
            _ => matches!(err, CheckpointError::ChecksumMismatch { .. }),
        };
        assert!(expected, "flip at byte {pos}: unexpected {err:?}");
    }
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn version_bump_and_foreign_files_are_typed() {
    let dir = scratch_dir("version");
    let bytes = checkpoint_bytes(&dir);

    // Future (v3+) and nonsense (0) format versions are refused by
    // number, not by checksum; the accepted range is exactly {1, 2}.
    for found in [0u32, 3, 4, 0x7f7f_7f7f] {
        let mut future = bytes.clone();
        future[8..12].copy_from_slice(&found.to_le_bytes());
        let path = dir.join("future.ckpt");
        fs::write(&path, &future).unwrap();
        match read_checkpoint(&path).unwrap_err() {
            CheckpointError::UnsupportedVersion { found: got } => assert_eq!(got, found),
            other => panic!("version {found}: unexpected {other:?}"),
        }
    }

    // Patching the version *down* to 1 is a checksum mismatch, not a
    // version error: the v2 payload no longer matches what a v1 reader
    // would expect, and the FNV trailer covers the version word.
    let mut downgraded = bytes.clone();
    downgraded[8..12].copy_from_slice(&1u32.to_le_bytes());
    let path = dir.join("downgraded.ckpt");
    fs::write(&path, &downgraded).unwrap();
    assert!(matches!(
        read_checkpoint(&path).unwrap_err(),
        CheckpointError::ChecksumMismatch { .. }
    ));

    // A file that was never a checkpoint.
    let path = dir.join("foreign.ckpt");
    fs::write(&path, b"name=not-a-checkpoint topology=cycle:8\n").unwrap();
    assert!(matches!(
        read_checkpoint(&path).unwrap_err(),
        CheckpointError::BadMagic
    ));

    // A missing file is an Io error carrying the path.
    let missing = dir.join("nope.ckpt");
    match read_checkpoint(&missing).unwrap_err() {
        CheckpointError::Io { path, .. } => assert_eq!(path, missing),
        other => panic!("unexpected {other:?}"),
    }
    fs::remove_dir_all(&dir).ok();
}

/// Backward compatibility with the pre-churn on-disk format: the
/// committed version-1 fixture (`tests/fixtures/checkpoint_v1.ckpt`,
/// the crash-churn golden scenario frozen at round 33 by a v1 writer —
/// regenerate with `cargo test -p sodiff-core regenerate_v1 --
/// --ignored`) must load under the v2 reader with "churn never ran"
/// defaults and resume to the exact pinned golden checksum of
/// `tests/golden_trace.rs::torus_sos_crash_churn`.
#[test]
fn committed_v1_fixture_resumes_under_v2_reader() {
    let path =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/checkpoint_v1.ckpt");
    let bytes = fs::read(&path).unwrap();
    assert_eq!(
        u32::from_le_bytes(bytes[8..12].try_into().unwrap()),
        1,
        "the committed fixture must actually be a version-1 file"
    );
    let ckpt = read_checkpoint(&path).unwrap();
    assert_eq!(ckpt.snapshot.round(), 33);
    assert!(ckpt.spec.churn.is_none(), "a v1 writer predates churn");

    let graph = ckpt.spec.build_graph().unwrap();
    let experiment = ckpt.spec.experiment_on(&graph).unwrap();
    let mut resumed = experiment.simulator();
    resumed.restore(&ckpt.snapshot).unwrap();
    resumed.run_until(StopCondition::MaxRounds(64 - 33));
    // The same FNV digest `tests/golden_trace.rs` pins for the
    // uninterrupted torus_sos_crash_churn run.
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
    };
    for &x in resumed.loads_i64().unwrap() {
        eat(&x.to_le_bytes());
    }
    for &f in resumed.previous_flows() {
        eat(&f.to_bits().to_le_bytes());
    }
    eat(&resumed.min_transient_load().to_bits().to_le_bytes());
    assert_eq!(
        h, 0x8cc7ad550f849948,
        "v1 fixture resumed under the v2 reader diverged from the pinned golden trace"
    );
}

#[test]
fn header_spec_is_parse_checked() {
    // A checksum-valid checkpoint whose embedded spec line no longer
    // parses (e.g. written by a newer grammar) must fail typed, not
    // crash the resume. Rebuild the file by hand: magic + version +
    // garbled spec + payload, re-checksummed.
    let dir = scratch_dir("spec");
    let bytes = checkpoint_bytes(&dir);
    let spec_len = u32::from_le_bytes(bytes[12..16].try_into().unwrap()) as usize;
    let mut rotten = bytes.clone();
    // Overwrite the spec line with same-length garbage so every offset
    // (and the length prefix) stays valid.
    for b in &mut rotten[16..16 + spec_len] {
        *b = b'?';
    }
    // Recompute the trailing FNV-1a over everything before the digest.
    let body_len = rotten.len() - 8;
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in &rotten[..body_len] {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    rotten[body_len..].copy_from_slice(&h.to_le_bytes());
    let path = dir.join("badspec.ckpt");
    fs::write(&path, &rotten).unwrap();
    assert!(matches!(
        read_checkpoint(&path).unwrap_err(),
        CheckpointError::Spec(_)
    ));
    fs::remove_dir_all(&dir).ok();
}
