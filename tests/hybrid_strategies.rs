//! Cross-crate integration: hybrid switch triggers, including the
//! eigenvector-coefficient trigger the paper discusses (Section VI), and
//! the parallel executor running a full experiment.

use sodiff::core::prelude::*;
use sodiff::graph::generators;
use sodiff::linalg::fourier::TorusModes;
use sodiff::linalg::spectral;

struct Null;
impl Observer for Null {
    fn on_round(&mut self, _: &Simulator<'_>) {}
}

/// The paper: "It seems reasonable to switch from SOS to FOS once the
/// impact of the leading eigenvector drops below some threshold" (a
/// global-knowledge strategy). Implemented via the Fourier eigenbasis.
#[test]
fn eigenvector_coefficient_trigger() {
    let side = 20;
    let g = generators::torus2d(side, side);
    let n = g.node_count();
    let beta = spectral::analyze(&g, &Speeds::uniform(n)).beta_opt();
    let modes = TorusModes::new(side, side);
    let mut sim = Experiment::on(&g)
        .discrete(Rounding::randomized(3))
        .sos(beta)
        .init(InitialLoad::paper_default(n))
        .build()
        .unwrap()
        .simulator();
    let mut loads = vec![0.0; n];
    let report = sim.run_when(
        |sim| {
            for (i, l) in loads.iter_mut().enumerate() {
                *l = sim.load_of(i);
            }
            let coeffs = modes.coefficients(&loads);
            TorusModes::leading(&coeffs)
                .map(|lead| lead.amplitude < 50.0)
                .unwrap_or(true)
        },
        StopCondition::MaxRounds(600),
        &mut Null,
    );
    let switch = report.switch_round.expect("trigger should fire");
    assert!(
        switch > 5,
        "needs some SOS rounds first, switched at {switch}"
    );
    let final_imbalance = sim.metrics().max_minus_avg;
    assert!(
        final_imbalance <= 6.0,
        "eigen-triggered hybrid should balance well, got {final_imbalance}"
    );
}

/// The local-difference trigger (distributed-friendly) ends at the same
/// quality as the fixed-round switch on the same instance.
#[test]
fn local_trigger_matches_fixed_switch_quality() {
    let g = generators::torus2d(16, 16);
    let n = g.node_count();
    let beta = spectral::analyze(&g, &Speeds::uniform(n)).beta_opt();
    let exp = Experiment::on(&g)
        .discrete(Rounding::randomized(9))
        .sos(beta)
        .init(InitialLoad::paper_default(n))
        .build()
        .unwrap();
    let mut fixed = exp.simulator();
    fixed.run_hybrid(SwitchPolicy::AtRound(200), StopCondition::MaxRounds(500));
    let mut local = exp.simulator();
    let report = local.run_hybrid(
        SwitchPolicy::MaxLocalDiffBelow(20.0),
        StopCondition::MaxRounds(500),
    );
    assert!(report.switch_round.is_some());
    let (f, l) = (fixed.metrics().max_minus_avg, local.metrics().max_minus_avg);
    assert!(
        (f - l).abs() <= 3.0,
        "fixed-switch {f} vs local-trigger {l} should end comparably"
    );
}

/// A full hybrid experiment on the parallel executor matches the
/// sequential one exactly, including the switch round.
#[test]
fn parallel_hybrid_is_identical() {
    let g = generators::torus2d(12, 12);
    let n = g.node_count();
    let beta = spectral::analyze(&g, &Speeds::uniform(n)).beta_opt();
    let run = |threads: usize| {
        let mut sim = Experiment::on(&g)
            .discrete(Rounding::randomized(4))
            .sos(beta)
            .threads(threads)
            .init(InitialLoad::paper_default(n))
            .build()
            .unwrap()
            .simulator();
        let report = sim.run_hybrid(
            SwitchPolicy::MaxLocalDiffBelow(25.0),
            StopCondition::MaxRounds(400),
        );
        (report.switch_round, sim.loads_i64().unwrap().to_vec())
    };
    let (seq_switch, seq_loads) = run(1);
    let (par_switch, par_loads) = run(3);
    assert_eq!(seq_switch, par_switch);
    assert_eq!(seq_loads, par_loads);
}

/// Deviation measurement through the umbrella crate: coupled runs on a
/// heterogeneous hypercube with threads enabled.
#[test]
fn parallel_coupled_deviation() {
    let g = generators::hypercube(8);
    let speeds = Speeds::two_class(256, 32, 4.0);
    let series = Experiment::on(&g)
        .discrete(Rounding::randomized(6))
        .speeds(speeds)
        .threads(2)
        .init(InitialLoad::point(0, 256_000))
        .build()
        .unwrap()
        .coupled_deviation(150)
        .unwrap();
    assert_eq!(series.per_round.len(), 150);
    assert!(series.max() < 100.0, "deviation {}", series.max());
}
