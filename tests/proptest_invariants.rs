//! Property-based invariants over random graphs, loads, speeds, schemes,
//! and rounding modes.

use proptest::prelude::*;

use sodiff::core::prelude::*;
use sodiff::graph::{Graph, GraphBuilder};
use sodiff::linalg::diffusion::DiffusionOperator;

/// A random connected graph on 3..=24 nodes: a random spanning tree plus
/// random extra edges.
fn connected_graph() -> impl Strategy<Value = Graph> {
    (3usize..=24, any::<u64>()).prop_map(|(n, seed)| {
        let mut b = GraphBuilder::new(n);
        let mut rng = seed;
        let mut next = move || {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            rng
        };
        // Random spanning tree: attach node i to a random previous node.
        for i in 1..n as u32 {
            let parent = (next() % i as u64) as u32;
            b.add_edge(parent, i).unwrap();
        }
        // Sprinkle extra edges.
        for _ in 0..n {
            let u = (next() % n as u64) as u32;
            let v = (next() % n as u64) as u32;
            b.add_edge_dedup(u, v);
        }
        b.build()
    })
}

fn any_rounding() -> impl Strategy<Value = Rounding> {
    prop_oneof![
        any::<u64>().prop_map(Rounding::randomized),
        Just(Rounding::round_down()),
        Just(Rounding::nearest()),
        any::<u64>().prop_map(Rounding::unbiased_edge),
    ]
}

fn any_scheme() -> impl Strategy<Value = Scheme> {
    prop_oneof![Just(Scheme::fos()), (0.05f64..1.95).prop_map(Scheme::sos),]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Token conservation holds for every graph/scheme/rounding/initial
    /// load combination.
    #[test]
    fn tokens_are_conserved(
        g in connected_graph(),
        scheme in any_scheme(),
        rounding in any_rounding(),
        per_node in 0i64..500,
        rounds in 1usize..60,
    ) {
        let n = g.node_count();
        let mut sim = Experiment::on(&g)
            .discrete(rounding)
            .scheme(scheme)
            .init(InitialLoad::EqualPerNode(per_node))
            .build()
            .unwrap()
            .simulator();
        // Perturb: move everything from node 0's perspective by using a
        // point load on top would need custom; equal load suffices to
        // check conservation is exact under rounding noise.
        sim.run_until(StopCondition::MaxRounds(rounds));
        prop_assert_eq!(sim.total_load(), (per_node * n as i64) as f64);
    }

    /// A point load spreads but never changes the total, and the maximum
    /// load never exceeds the initial maximum. This holds for the
    /// framework and round-down schemes, which never overdraw a node under
    /// FOS (per-edge unbiased and nearest rounding can, so they are
    /// excluded here and covered by the conservation property above).
    #[test]
    fn point_load_max_never_grows(
        g in connected_graph(),
        rounding in prop_oneof![
            any::<u64>().prop_map(Rounding::randomized),
            Just(Rounding::round_down()),
        ],
        total in 1i64..5000,
        rounds in 1usize..60,
    ) {
        let mut sim = Experiment::on(&g)
            .discrete(rounding)
            .init(InitialLoad::point(0, total))
            .build()
            .unwrap()
            .simulator();
        for _ in 0..rounds {
            sim.step();
            let max = sim.loads_i64().unwrap().iter().copied().max().unwrap();
            prop_assert!(max <= total);
        }
        prop_assert_eq!(sim.total_load(), total as f64);
    }

    /// FOS with any rounding never produces negative load (each node sends
    /// at most `Σ_j α_ij < 1` of its normalized load and rounding only
    /// shrinks per-node outflow relative to ⌈r⌉ ≤ outdegree... checked
    /// empirically here as a regression property).
    #[test]
    fn fos_randomized_framework_transient_bounded(
        g in connected_graph(),
        total in 0i64..2000,
        rounds in 1usize..40,
    ) {
        let d = g.max_degree() as f64;
        let mut sim = Experiment::on(&g)
            .discrete(Rounding::randomized(7))
            .init(InitialLoad::point(0, total))
            .build()
            .unwrap()
            .simulator();
        sim.run_until(StopCondition::MaxRounds(rounds));
        // FOS sends at most x_i·d/(d+1) plus at most d excess tokens.
        prop_assert!(
            sim.min_transient_load() >= -d,
            "transient {} below -d = {}", sim.min_transient_load(), -d
        );
    }

    /// The balanced vector is a fixed point of the continuous process for
    /// arbitrary speeds.
    #[test]
    fn balanced_vector_is_fixed_point(
        g in connected_graph(),
        seed in any::<u64>(),
    ) {
        let n = g.node_count();
        let speeds = Speeds::random_skewed(n, 8.0, 1.0, seed);
        let op = DiffusionOperator::new(&g, &speeds);
        let bal = speeds.balanced_load(1000.0);
        let mut out = vec![0.0; n];
        op.apply(&bal, &mut out);
        for (a, b) in bal.iter().zip(&out) {
            prop_assert!((a - b).abs() < 1e-9);
        }
    }

    /// Continuous FOS monotonically decreases the 2-norm potential.
    #[test]
    fn continuous_fos_potential_decreases(
        g in connected_graph(),
        total in 100i64..10_000,
    ) {
        let mut sim = Experiment::on(&g)
            .continuous()
            .init(InitialLoad::point(0, total))
            .build()
            .unwrap()
            .simulator();
        let mut prev = sim.metrics().potential_over_n;
        for _ in 0..30 {
            sim.step();
            let cur = sim.metrics().potential_over_n;
            prop_assert!(cur <= prev + 1e-9, "potential rose: {prev} -> {cur}");
            prev = cur;
        }
    }

    /// Flow antisymmetry is structural: replaying the previous round's
    /// flows from both endpoints yields opposite signs. (The engine stores
    /// one value per canonical edge; this checks the exposed view.)
    #[test]
    fn flows_conserve_when_reapplied(
        g in connected_graph(),
        total in 100i64..5000,
    ) {
        let mut sim = Experiment::on(&g)
            .discrete(Rounding::randomized(3))
            .init(InitialLoad::point(0, total))
            .build()
            .unwrap()
            .simulator();
        let before: Vec<i64> = sim.loads_i64().unwrap().to_vec();
        sim.step();
        let after: Vec<i64> = sim.loads_i64().unwrap().to_vec();
        let flows = sim.previous_flows();
        // after = before - B·flows where B is the incidence matrix.
        let mut reconstructed = before.clone();
        for (e, &(u, v)) in g.edges().iter().enumerate() {
            let y = flows[e] as i64;
            reconstructed[u as usize] -= y;
            reconstructed[v as usize] += y;
        }
        prop_assert_eq!(reconstructed, after);
    }

    /// Metrics are invariant under adding a constant load to every node
    /// (max-avg, local diff, potential) in the homogeneous model.
    #[test]
    fn metrics_shift_invariance(
        g in connected_graph(),
        base in 0i64..100,
    ) {
        use sodiff::core::metrics::snapshot_i64;
        let n = g.node_count();
        let speeds = Speeds::uniform(n);
        let loads: Vec<i64> = (0..n as i64).map(|i| (i * 7) % 23).collect();
        let shifted: Vec<i64> = loads.iter().map(|&x| x + base).collect();
        let a = snapshot_i64(&g, &speeds, &loads);
        let b = snapshot_i64(&g, &speeds, &shifted);
        prop_assert!((a.max_minus_avg - b.max_minus_avg).abs() < 1e-9);
        prop_assert!((a.max_local_diff - b.max_local_diff).abs() < 1e-9);
        prop_assert!((a.potential_over_n - b.potential_over_n).abs() < 1e-6);
    }
}
