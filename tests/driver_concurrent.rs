//! Property test: a concurrent `Driver` (K scenarios in flight on a
//! work-stealing queue) produces batch reports identical to
//! `Driver::new()`'s sequential execution, for arbitrary small batches
//! over topology × scheme × rounding × seed.

use proptest::prelude::*;

use sodiff::core::prelude::*;
use sodiff::core::Driver;

/// One random-but-valid scenario line (sans `name=`); small graphs and
/// short runs keep the 32-case budget fast.
fn any_scenario_line() -> impl Strategy<Value = String> {
    let topology = prop_oneof![
        (2usize..8, 2usize..8).prop_map(|(r, c)| format!("torus2d:{r}:{c}")),
        (3usize..24).prop_map(|n| format!("cycle:{n}")),
        (2u32..5).prop_map(|d| format!("hypercube:{d}")),
        (2usize..16).prop_map(|n| format!("star:{n}")),
    ];
    let scheme = prop_oneof![
        Just("fos".to_string()),
        (0.5f64..1.9).prop_map(|b| format!("sos:{b:.3}")),
    ];
    let rounding = prop_oneof![
        Just("randomized"),
        Just("round_down"),
        Just("nearest"),
        Just("unbiased"),
    ];
    (topology, scheme, rounding, 0u64..1000, 5usize..40).prop_map(
        |(topology, scheme, rounding, seed, rounds)| {
            format!(
                "topology={topology} scheme={scheme} mode=discrete \
                 rounding={rounding} seed={seed} init=paper stop=rounds:{rounds}"
            )
        },
    )
}

fn any_batch() -> impl Strategy<Value = Vec<ScenarioSpec>> {
    proptest::collection::vec(any_scenario_line(), 2..6).prop_map(|lines| {
        let text: Vec<String> = lines
            .iter()
            .enumerate()
            .map(|(i, line)| format!("name=s{i} {line}"))
            .collect();
        ScenarioSpec::parse_many(&text.join("\n")).expect("generated specs parse")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn concurrent_driver_batches_match_sequential(specs in any_batch(), workers in 2usize..6) {
        let sequential = Driver::new().run_batch(&specs);
        let concurrent = Driver::concurrent(workers)
            .expect("positive workers")
            .run_batch(&specs);
        prop_assert!(sequential.errors.is_empty(), "sequential batch failed");
        prop_assert!(concurrent.errors.is_empty(), "concurrent batch failed");
        prop_assert_eq!(sequential.scenarios.len(), concurrent.scenarios.len());
        for (a, b) in sequential.scenarios.iter().zip(&concurrent.scenarios) {
            prop_assert_eq!(&a.name, &b.name, "input order preserved");
            prop_assert_eq!(&a.report, &b.report, "{} diverged", &a.name);
            prop_assert_eq!(a.nodes, b.nodes);
            prop_assert_eq!(a.edges, b.edges);
        }
        prop_assert_eq!(sequential.total_rounds, concurrent.total_rounds);
        prop_assert_eq!(sequential.worst_max_minus_avg, concurrent.worst_max_minus_avg);
        prop_assert_eq!(sequential.mean_max_minus_avg, concurrent.mean_max_minus_avg);
    }
}
