//! Workspace-level tests of the unified experiment API: every invalid
//! configuration path returns the right `BuildError` variant instead of
//! panicking, and scenario files through the batch `Driver` are
//! bit-identical to hand-built simulators.

use sodiff::graph::{generators, GraphBuilder};
use sodiff::linalg::spectral;
use sodiff::prelude::*;
use sodiff::{BuildError, Driver};

#[test]
fn invalid_beta_returns_build_error() {
    let g = generators::torus2d(4, 4);
    for beta in [-0.5, 0.0, 2.0, 2.5] {
        let err = Experiment::on(&g)
            .discrete(Rounding::nearest())
            .sos(beta)
            .build()
            .unwrap_err();
        assert_eq!(err, BuildError::InvalidBeta(beta));
    }
    // The boundary of the open interval (0, 2) is valid just inside.
    assert!(Experiment::on(&g)
        .discrete(Rounding::nearest())
        .sos(1.999_999)
        .build()
        .is_ok());
}

#[test]
fn speeds_length_mismatch_returns_build_error() {
    let g = generators::torus2d(4, 4);
    let err = Experiment::on(&g)
        .continuous()
        .speeds(Speeds::uniform(15))
        .build()
        .unwrap_err();
    assert_eq!(
        err,
        BuildError::SpeedsLengthMismatch {
            expected: 16,
            got: 15
        }
    );
}

#[test]
fn empty_graph_returns_build_error() {
    let g = GraphBuilder::new(0).build();
    let err = Experiment::on(&g)
        .discrete(Rounding::round_down())
        .build()
        .unwrap_err();
    assert_eq!(err, BuildError::EmptyGraph);
}

#[test]
fn randomized_rounding_without_seed_returns_build_error() {
    let g = generators::cycle(8);
    for spec in [RoundingSpec::Randomized, RoundingSpec::UnbiasedEdge] {
        let err = Experiment::on(&g).discrete_spec(spec).build().unwrap_err();
        assert!(
            matches!(err, BuildError::MissingSeed(_)),
            "{spec:?}: {err:?}"
        );
    }
    // The error names the missing piece for the user.
    let err = Experiment::on(&g)
        .discrete_spec(RoundingSpec::Randomized)
        .build()
        .unwrap_err();
    assert!(err.to_string().contains("seed"), "{err}");
}

#[test]
fn scenario_error_paths_return_build_errors() {
    // Through the text surface too: a whole matrix of invalid scenarios,
    // each mapping to its typed variant, none panicking.
    type Check = fn(&BuildError) -> bool;
    let cases: [(&str, Check); 3] = [
        ("topology=cycle:8 rounding=randomized", |e| {
            matches!(e, BuildError::MissingSeed(_))
        }),
        ("topology=cycle:8 seed=1 threads=0", |e| {
            matches!(e, BuildError::ZeroThreads)
        }),
        ("topology=cycle:8 seed=1 init=point:99:100", |e| {
            matches!(e, BuildError::InvalidInitialLoad(_))
        }),
    ];
    for (text, check) in cases {
        let spec: ScenarioSpec = text.parse().unwrap();
        let err = spec.run().unwrap_err();
        assert!(check(&err), "'{text}' -> {err:?}");
    }
    // Out-of-range β is rejected at *parse* time for scenario text (with
    // a line-anchored error); a programmatically constructed spec still
    // gets the typed build error.
    let mut spec: ScenarioSpec = "topology=cycle:8 seed=1".parse().unwrap();
    spec.scheme = sodiff::SchemeSpec::Sos { beta: 2.4 };
    assert!(matches!(
        spec.run().unwrap_err(),
        BuildError::InvalidBeta(_)
    ));
    // Bad topology parameters surface as wrapped graph errors.
    let spec: ScenarioSpec = "topology=random_regular:5:3:1 seed=1".parse().unwrap();
    assert!(matches!(spec.run().unwrap_err(), BuildError::Graph(_)));
}

/// Acceptance criterion: a scenario text file fed to the `Driver`
/// reproduces the same `RunReport` (bit-identical metrics) as the
/// equivalent hand-built `Simulator`.
#[test]
fn driver_reproduces_hand_built_simulator_bit_identically() {
    let text = "name=matrix topology=torus2d:12:12 scheme=sos_opt mode=discrete \
                rounding=randomized seed=77 init=paper stop=rounds:250 \
                hybrid=local_diff:25";
    let specs = ScenarioSpec::parse_many(text).unwrap();

    // Hand-built equivalent of the scenario line above.
    let g = generators::torus2d(12, 12);
    let n = g.node_count();
    let beta = spectral::analyze(&g, &Speeds::uniform(n)).beta_opt();
    let mut sim = Experiment::on(&g)
        .discrete(Rounding::randomized(77))
        .sos(beta)
        .init(InitialLoad::paper_default(n))
        .build()
        .unwrap()
        .simulator();
    let hand_built = sim.run_hybrid(
        SwitchPolicy::MaxLocalDiffBelow(25.0),
        StopCondition::MaxRounds(250),
    );

    // Sequential driver and pooled driver must both reproduce it exactly.
    for threads in [1usize, 3] {
        let batch = Driver::with_threads(threads).unwrap().run_batch(&specs);
        assert!(batch.errors.is_empty());
        assert_eq!(batch.scenarios.len(), 1);
        let driven = &batch.scenarios[0].report;
        assert_eq!(
            driven, &hand_built,
            "{threads}-thread driver diverged from the hand-built run"
        );
    }
}

/// The driver reuses one pool across a mixed batch; results still match
/// independently built simulators, scenario by scenario.
#[test]
fn mixed_batch_over_one_pool_matches_standalone_runs() {
    let text = "name=a topology=cycle:40 scheme=sos:1.5 seed=3 stop=rounds:120\n\
                name=b topology=hypercube:6 scheme=fos rounding=unbiased seed=9 stop=rounds:60\n\
                name=c topology=torus2d:7:9 mode=continuous scheme=sos:1.8 stop=rounds:90\n\
                name=d topology=star:17 rounding=nearest init=point:0:1700 stop=rounds:30\n";
    let specs = ScenarioSpec::parse_many(text).unwrap();
    let pooled = Driver::with_threads(4).unwrap().run_batch(&specs);
    assert!(pooled.errors.is_empty());
    for (spec, scenario) in specs.iter().zip(&pooled.scenarios) {
        let standalone = spec.run().unwrap();
        assert_eq!(scenario.report, standalone, "{}", spec.name);
    }
    assert_eq!(pooled.total_rounds, 120 + 60 + 90 + 30);
}

#[test]
fn experiment_run_matches_manual_hybrid_loop() {
    // The builder's hybrid policy must equal driving an identically
    // configured simulator by hand.
    let g = generators::torus2d(8, 8);
    let n = g.node_count();
    let exp = Experiment::on(&g)
        .discrete(Rounding::randomized(5))
        .sos(1.9)
        .init(InitialLoad::paper_default(n))
        .hybrid(SwitchPolicy::AtRound(30))
        .stop(StopCondition::MaxRounds(100))
        .build()
        .unwrap();
    let report = exp.run();
    let mut manual = exp.simulator();
    let manual_report = manual.run_hybrid(SwitchPolicy::AtRound(30), StopCondition::MaxRounds(100));
    assert_eq!(report, manual_report);
    assert_eq!(report.switch_round, Some(30));
}
