//! Golden-trace bit-identity of the bulk RNG draw sweep.
//!
//! The randomized framework's hot path no longer constructs a
//! `SplitMix64` per node: `rng::fill_node_states` computes warmed-up
//! stream states in a flat sweep (warm-up discard fused into the key
//! mix), and `rng::nth_u64` produces the `k`-th draw straight from the
//! stream counter. Both must reproduce the canonical per-node
//! constructor's streams draw for draw, or parallel chunking and replays
//! would silently change every randomized experiment.

use sodiff::core::rng::{self, SplitMix64};

#[test]
fn bulk_sweep_reproduces_keyed_streams_draw_for_draw() {
    for seed in [0u64, 7, 0xdead_beef, u64::MAX] {
        for round in [0u64, 1, 512, u64::MAX / 3] {
            let key = rng::round_key(seed, round);
            let first_node = 123usize;
            let mut states = vec![0u64; 257];
            rng::fill_node_states(key, first_node, &mut states);
            for (i, &state) in states.iter().enumerate() {
                let node = (first_node + i) as u32;
                let mut reference = SplitMix64::for_node_round(seed, node, round);
                let mut resumed = SplitMix64::new(state);
                for draw in 0..12u64 {
                    let want = reference.next_u64();
                    assert_eq!(
                        resumed.next_u64(),
                        want,
                        "sequential resume: seed {seed} round {round} node {node} draw {draw}"
                    );
                    assert_eq!(
                        rng::nth_u64(state, draw),
                        want,
                        "counter draw: seed {seed} round {round} node {node} draw {draw}"
                    );
                }
            }
        }
    }
}

#[test]
fn unit_f64_matches_next_f64() {
    let mut stream = SplitMix64::new(99);
    let mut probe = SplitMix64::new(99);
    for _ in 0..1000 {
        let word = stream.next_u64();
        assert_eq!(rng::unit_f64(word), probe.next_f64());
    }
}

#[test]
fn sweep_chunking_is_immaterial() {
    // Filling [0, 64) in one go equals filling [0, 17) + [17, 64):
    // chunked parallel executors see the same states.
    let key = rng::round_key(5, 40);
    let mut whole = vec![0u64; 64];
    rng::fill_node_states(key, 0, &mut whole);
    let mut lo = vec![0u64; 17];
    let mut hi = vec![0u64; 47];
    rng::fill_node_states(key, 0, &mut lo);
    rng::fill_node_states(key, 17, &mut hi);
    assert_eq!(&whole[..17], &lo[..]);
    assert_eq!(&whole[17..], &hi[..]);
}
