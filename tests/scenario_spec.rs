//! Property tests for the scenario text format: `Display` → `FromStr`
//! round-trips exactly for arbitrary valid specs over the whole
//! scheme × rounding × mode × topology × stop-condition × load space.

use proptest::prelude::*;

use std::path::PathBuf;

use sodiff::core::prelude::*;
use sodiff::core::{CheckpointPolicy, InitSpec, ModeSpec, SchemeSpec, SpeedsSpec, StopSpec};

fn any_topology() -> impl Strategy<Value = TopologySpec> {
    prop_oneof![
        (1usize..40, 1usize..40).prop_map(|(rows, cols)| TopologySpec::Torus2d { rows, cols }),
        proptest::collection::vec(1usize..8, 1..4).prop_map(|dims| TopologySpec::Torus { dims }),
        (1u32..12).prop_map(|dim| TopologySpec::Hypercube { dim }),
        (3usize..200).prop_map(|n| TopologySpec::Cycle { n }),
        (1usize..200).prop_map(|n| TopologySpec::Path { n }),
        (1usize..60).prop_map(|n| TopologySpec::Complete { n }),
        (1usize..200).prop_map(|n| TopologySpec::Star { n }),
        (1usize..20, 1usize..20).prop_map(|(rows, cols)| TopologySpec::Grid2d { rows, cols }),
        (2usize..100, 1usize..6, any::<u64>())
            .prop_map(|(n, d, seed)| TopologySpec::RandomRegular { n, d, seed }),
        (2usize..200, any::<u64>()).prop_map(|(n, seed)| TopologySpec::RandomCm { n, seed }),
        (1usize..100, 0.0f64..1.0, any::<u64>())
            .prop_map(|(n, p, seed)| TopologySpec::ErdosRenyi { n, p, seed }),
        (1usize..100, 0.0f64..5.0, any::<u64>())
            .prop_map(|(n, radius, seed)| TopologySpec::Geometric { n, radius, seed }),
        (2usize..200, any::<u64>()).prop_map(|(n, seed)| TopologySpec::RggPaper { n, seed }),
    ]
}

fn any_speeds() -> impl Strategy<Value = SpeedsSpec> {
    prop_oneof![
        Just(SpeedsSpec::Uniform),
        (0usize..64, 1.0f64..16.0).prop_map(|(fast, speed)| SpeedsSpec::TwoClass { fast, speed }),
        (1.0f64..16.0).prop_map(|max| SpeedsSpec::Ramp { max }),
        (1.0f64..16.0, 0.1f64..4.0, any::<u64>()).prop_map(|(max, exponent, seed)| {
            SpeedsSpec::Skewed {
                max,
                exponent,
                seed,
            }
        }),
    ]
}

fn any_scheme() -> impl Strategy<Value = SchemeSpec> {
    prop_oneof![
        Just(SchemeSpec::Fos),
        (0.01f64..1.99).prop_map(|beta| SchemeSpec::Sos { beta }),
        Just(SchemeSpec::SosOpt),
        (0.01f64..=1.0).prop_map(|lambda| SchemeSpec::De { lambda }),
        (0.01f64..=1.0).prop_map(|lambda| SchemeSpec::MatchingRr { lambda }),
        (any::<u64>(), 0.01f64..=1.0)
            .prop_map(|(seed, lambda)| SchemeSpec::MatchingRandom { seed, lambda }),
    ]
}

fn any_mode() -> impl Strategy<Value = ModeSpec> {
    prop_oneof![
        Just(ModeSpec::Continuous),
        Just(ModeSpec::Discrete(RoundingSpec::Randomized)),
        Just(ModeSpec::Discrete(RoundingSpec::RoundDown)),
        Just(ModeSpec::Discrete(RoundingSpec::Nearest)),
        Just(ModeSpec::Discrete(RoundingSpec::UnbiasedEdge)),
    ]
}

fn any_init() -> impl Strategy<Value = InitSpec> {
    prop_oneof![
        Just(InitSpec::Paper),
        (0u32..100, 0i64..1_000_000).prop_map(|(node, total)| InitSpec::Point { node, total }),
        (0i64..10_000).prop_map(|per| InitSpec::Equal { per }),
        (0i64..10_000).prop_map(|max| InitSpec::Ramp { max }),
        (0i64..1_000_000, any::<u64>()).prop_map(|(total, seed)| InitSpec::Random { total, seed }),
    ]
}

fn any_stop() -> impl Strategy<Value = StopSpec> {
    prop_oneof![
        (1usize..100_000).prop_map(StopSpec::Rounds),
        (0.0f64..100.0, 1usize..100_000).prop_map(|(threshold, max_rounds)| {
            StopSpec::Balanced {
                threshold,
                max_rounds,
            }
        }),
        (1usize..500, 1usize..100_000)
            .prop_map(|(window, max_rounds)| StopSpec::Plateau { window, max_rounds }),
        (1usize..500).prop_map(|window| StopSpec::Steady { window }),
        (1usize..100_000).prop_map(StopSpec::Horizon),
    ]
}

fn any_load() -> impl Strategy<Value = LoadSpec> {
    // A bitmask picks which generators are present (0 = `load=none`),
    // so every subset of channels — including the empty one — shows up.
    (
        0u64..16,
        (0.0f64..1024.0, any::<u64>()),
        ((0usize..100, 1i64..1000), (1u64..1000, any::<u64>())),
        (0.0f64..1000.0, 1u64..1000),
        ((1i64..1000, 1u64..1000), any::<u64>()),
    )
        .prop_map(
            |(
                mask,
                (rate, p_seed),
                ((node, burst), (period, h_seed)),
                (amp, d_period),
                ((a_burst, a_period), a_seed),
            )| {
                let mut spec = LoadSpec::none();
                if mask & 1 != 0 {
                    spec = spec.with_poisson(rate, p_seed);
                }
                if mask & 2 != 0 {
                    spec = spec.with_hotspot(node, burst, period, h_seed);
                }
                if mask & 4 != 0 {
                    spec = spec.with_diurnal(amp, d_period);
                }
                if mask & 8 != 0 {
                    spec = spec.with_adversarial(a_burst, a_period, a_seed);
                }
                spec
            },
        )
}

fn any_hybrid() -> impl Strategy<Value = Option<SwitchPolicy>> {
    prop_oneof![
        Just(None),
        Just(Some(SwitchPolicy::Never)),
        (0u64..10_000).prop_map(|r| Some(SwitchPolicy::AtRound(r))),
        (0.0f64..100.0).prop_map(|t| Some(SwitchPolicy::MaxLocalDiffBelow(t))),
        (0.0f64..100.0).prop_map(|t| Some(SwitchPolicy::MaxMinusAvgBelow(t))),
    ]
}

fn any_ckpt() -> impl Strategy<Value = Option<CheckpointPolicy>> {
    prop_oneof![
        Just(None),
        (1u64..100, 0usize..3).prop_map(|(every, pick)| {
            Some(CheckpointPolicy {
                every,
                dir: PathBuf::from(["ckpts", "out/snaps", "state"][pick]),
            })
        }),
    ]
}

fn any_spec() -> impl Strategy<Value = ScenarioSpec> {
    (
        (
            any_topology(),
            any_speeds(),
            any_scheme(),
            any_mode(),
            any_init(),
        ),
        (
            any_stop(),
            any_load(),
            any_hybrid(),
            any_ckpt(),
            (any::<bool>(), 0usize..5, 1usize..9),
        ),
    )
        .prop_map(
            |(
                (topology, speeds, scheme, mode, init),
                (stop, load, hybrid, ckpt, (seeded, name_pick, threads)),
            )| {
                let mut spec = ScenarioSpec::new(topology);
                spec.name = ["scenario", "fig_01", "a", "sweep-3", "x9"][name_pick].to_string();
                spec.speeds = speeds;
                spec.scheme = scheme;
                spec.mode = mode;
                spec.seed = seeded.then_some(12345);
                spec.init = init;
                spec.stop = stop;
                spec.load = load;
                spec.threads = threads;
                spec.flow_memory = if seeded {
                    FlowMemory::Scheduled
                } else {
                    FlowMemory::Rounded
                };
                spec.hybrid = hybrid;
                spec.ckpt = ckpt;
                spec.mem = if name_pick % 2 == 1 {
                    MemSpec::Compact
                } else {
                    MemSpec::Full
                };
                spec
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The headline format property: printing and re-parsing an arbitrary
    /// valid spec yields the identical spec, and printing is a fixpoint.
    #[test]
    fn display_from_str_roundtrip(spec in any_spec()) {
        let text = spec.to_string();
        let reparsed: ScenarioSpec = text.parse().unwrap_or_else(|e| {
            panic!("'{text}' failed to re-parse: {e}")
        });
        prop_assert_eq!(&reparsed, &spec, "round-trip changed the spec: '{}'", text);
        prop_assert_eq!(reparsed.to_string(), text, "display is not a fixpoint");
    }

    /// Scenario files built from arbitrary specs parse back line by line.
    #[test]
    fn parse_many_roundtrip(specs in proptest::collection::vec(any_spec(), 1..6)) {
        let mut text = String::from("# generated batch\n\n");
        for spec in &specs {
            text.push_str(&spec.to_string());
            text.push('\n');
        }
        let reparsed = ScenarioSpec::parse_many(&text).unwrap();
        prop_assert_eq!(reparsed, specs);
    }
}

/// Error paths of the text format: every malformed or out-of-range value
/// must yield a [`ParseError`] whose message names the offending piece —
/// not a panic, and not a silently defaulted spec.
#[test]
fn scenario_parse_error_paths_are_specific() {
    let cases = [
        // Unknown / malformed keys.
        ("topology=cycle:8 wat=1", "unknown key"),
        ("topology=cycle:8 scheme", "expected key=value"),
        ("topology=cycle:8 name=a name=b", "duplicate key"),
        // Scheme values: unknown kinds, malformed numbers, out-of-range β/λ.
        ("topology=cycle:8 scheme=third_order", "unknown scheme"),
        ("topology=cycle:8 scheme=sos:fast", "invalid sos beta"),
        ("topology=cycle:8 scheme=sos:2.5", "beta in (0, 2)"),
        ("topology=cycle:8 scheme=sos:0", "beta in (0, 2)"),
        ("topology=cycle:8 scheme=de:0", "lambda in (0, 1]"),
        ("topology=cycle:8 scheme=de:1.5", "lambda in (0, 1]"),
        ("topology=cycle:8 scheme=de:x", "invalid de lambda"),
        ("topology=cycle:8 scheme=matching:rr:-1", "lambda in (0, 1]"),
        (
            "topology=cycle:8 scheme=matching:random:x",
            "invalid matching seed",
        ),
        (
            "topology=cycle:8 scheme=matching:random:3:nope",
            "invalid matching lambda",
        ),
        ("topology=cycle:8 scheme=matching:swiss", "unknown scheme"),
        // Hybrid values.
        ("topology=cycle:8 hybrid=at", "unknown hybrid policy"),
        ("topology=cycle:8 hybrid=at:soon", "unknown hybrid policy"),
        (
            "topology=cycle:8 hybrid=local_diff:",
            "unknown hybrid policy",
        ),
        (
            "topology=cycle:8 hybrid=sometimes:1",
            "unknown hybrid policy",
        ),
        // Stop conditions.
        ("topology=cycle:8 stop=rounds", "invalid stop condition"),
        ("topology=cycle:8 stop=rounds:ten", "invalid stop condition"),
        ("topology=cycle:8 stop=balanced:1", "invalid stop condition"),
        (
            "topology=cycle:8 stop=plateau:a:100",
            "invalid stop condition",
        ),
        ("topology=cycle:8 stop=steady", "invalid stop condition"),
        (
            "topology=cycle:8 stop=steady:0",
            "steady window must be positive",
        ),
        (
            "topology=cycle:8 stop=horizon:0",
            "horizon must be positive",
        ),
        // Load plans: unknown kinds, out-of-range parameters, duplicates.
        ("topology=cycle:8 load=meteor:1:2", "unknown load kind"),
        ("topology=cycle:8 load=poisson:-1:2", "outside [0, 1024]"),
        (
            "topology=cycle:8 load=hotspot:0:0:4:1",
            "outside [1, 1000000000]",
        ),
        (
            "topology=cycle:8 load=diurnal:5:0",
            "diurnal period must be positive",
        ),
        (
            "topology=cycle:8 load=poisson:1:2+poisson:3:4",
            "duplicate load kind",
        ),
        // Other values.
        ("topology=cycle:8 seed=minus_one", "invalid seed"),
        ("topology=cycle:8 threads=none", "invalid thread count"),
        (
            "topology=cycle:8 flow_memory=forgetful",
            "unknown flow memory",
        ),
        ("topology=cycle:8 mode=both", "unknown mode"),
        ("topology=cycle:8 rounding=banker", "unknown rounding"),
        ("topology=cycle:8 speeds=warp:9", "invalid speeds"),
        ("topology=cycle:8 init=everywhere", "invalid init"),
        // Checkpoint policies.
        ("topology=cycle:8 ckpt=every:0:dir", "must be positive"),
        ("topology=cycle:8 ckpt=every:16:", "expected every:N:DIR"),
        ("topology=cycle:8 ckpt=sometimes", "invalid ckpt"),
    ];
    for (text, needle) in cases {
        let err = text
            .parse::<ScenarioSpec>()
            .expect_err(&format!("'{text}' should fail to parse"));
        assert!(
            err.message.contains(needle),
            "'{text}' -> '{}' (wanted '{needle}')",
            err.message
        );
    }
    // Errors in files carry the 1-based line number of the bad line.
    let err =
        ScenarioSpec::parse_many("topology=cycle:8\n\n# comment\ntopology=cycle:8 scheme=sos:9\n")
            .unwrap_err();
    assert_eq!(err.line, 4);
    assert!(err.message.contains("beta in (0, 2)"));
}

#[test]
fn topology_display_roundtrip_exhaustive_kinds() {
    // One of each kind, exact text form.
    for text in [
        "torus2d:3:4",
        "torus:2:2:2",
        "hypercube:5",
        "cycle:11",
        "path:7",
        "complete:13",
        "star:9",
        "grid2d:2:9",
        "random_regular:20:3:99",
        "random_cm:50:1",
        "erdos_renyi:30:0.25:8",
        "geometric:40:1.75:3",
        "rgg:25:4",
    ] {
        let spec: TopologySpec = text.parse().unwrap();
        assert_eq!(spec.to_string(), text);
    }
}
