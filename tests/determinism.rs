//! Reproducibility: fixed seeds give identical trajectories; distinct
//! seeds and schemes diverge.

use sodiff::core::prelude::*;
use sodiff::graph::generators;
use sodiff::linalg::spectral;

fn run_loads(seed: u64, rounds: usize) -> Vec<i64> {
    let g = generators::torus2d(12, 12);
    let n = g.node_count();
    let beta = spectral::analyze(&g, &Speeds::uniform(n)).beta_opt();
    let mut sim = Simulator::new(
        &g,
        SimulationConfig::discrete(Scheme::sos(beta), Rounding::randomized(seed)),
        InitialLoad::paper_default(n),
    );
    sim.run_until(StopCondition::MaxRounds(rounds));
    sim.loads_i64().unwrap().to_vec()
}

#[test]
fn same_seed_same_trajectory() {
    assert_eq!(run_loads(7, 300), run_loads(7, 300));
}

#[test]
fn different_seed_different_trajectory() {
    assert_ne!(run_loads(7, 300), run_loads(8, 300));
}

#[test]
fn stepwise_equals_batch() {
    let g = generators::cycle(30);
    let make = || {
        Simulator::new(
            &g,
            SimulationConfig::discrete(Scheme::fos(), Rounding::randomized(5)),
            InitialLoad::point(0, 3000),
        )
    };
    let mut batch = make();
    batch.run_until(StopCondition::MaxRounds(100));
    let mut stepwise = make();
    for _ in 0..100 {
        stepwise.step();
    }
    assert_eq!(batch.loads_i64().unwrap(), stepwise.loads_i64().unwrap());
}

#[test]
fn deterministic_roundings_are_seed_independent() {
    let g = generators::torus2d(8, 8);
    let n = g.node_count();
    let run = |rounding: Rounding| {
        let mut sim = Simulator::new(
            &g,
            SimulationConfig::discrete(Scheme::fos(), rounding),
            InitialLoad::paper_default(n),
        );
        sim.run_until(StopCondition::MaxRounds(200));
        sim.loads_i64().unwrap().to_vec()
    };
    assert_eq!(run(Rounding::round_down()), run(Rounding::round_down()));
    assert_eq!(run(Rounding::nearest()), run(Rounding::nearest()));
    assert_ne!(run(Rounding::round_down()), run(Rounding::nearest()));
}

#[test]
fn observer_does_not_perturb_run() {
    let g = generators::torus2d(8, 8);
    let n = g.node_count();
    let make = || {
        Simulator::new(
            &g,
            SimulationConfig::discrete(Scheme::fos(), Rounding::randomized(9)),
            InitialLoad::paper_default(n),
        )
    };
    let mut plain = make();
    plain.run_until(StopCondition::MaxRounds(50));
    let mut observed = make();
    let mut rec = Recorder::new();
    observed.run_until_with(StopCondition::MaxRounds(50), &mut rec);
    assert_eq!(plain.loads_i64().unwrap(), observed.loads_i64().unwrap());
    assert_eq!(rec.rows().len(), 50);
}
