//! Reproducibility: fixed seeds give identical trajectories; distinct
//! seeds and schemes diverge; the pooled parallel executor is bit-identical
//! to the sequential one across the whole configuration grid.

use proptest::prelude::*;

use sodiff::core::prelude::*;
use sodiff::graph::{generators, Graph};
use sodiff::linalg::spectral;

fn run_loads(seed: u64, rounds: usize) -> Vec<i64> {
    let g = generators::torus2d(12, 12);
    let n = g.node_count();
    let beta = spectral::analyze(&g, &Speeds::uniform(n)).beta_opt();
    let mut sim = Experiment::on(&g)
        .discrete(Rounding::randomized(seed))
        .sos(beta)
        .init(InitialLoad::paper_default(n))
        .build()
        .unwrap()
        .simulator();
    sim.run_until(StopCondition::MaxRounds(rounds));
    sim.loads_i64().unwrap().to_vec()
}

#[test]
fn same_seed_same_trajectory() {
    assert_eq!(run_loads(7, 300), run_loads(7, 300));
}

#[test]
fn different_seed_different_trajectory() {
    assert_ne!(run_loads(7, 300), run_loads(8, 300));
}

#[test]
fn stepwise_equals_batch() {
    let g = generators::cycle(30);
    let exp = Experiment::on(&g)
        .discrete(Rounding::randomized(5))
        .init(InitialLoad::point(0, 3000))
        .build()
        .unwrap();
    let make = || exp.simulator();
    let mut batch = make();
    batch.run_until(StopCondition::MaxRounds(100));
    let mut stepwise = make();
    for _ in 0..100 {
        stepwise.step();
    }
    assert_eq!(batch.loads_i64().unwrap(), stepwise.loads_i64().unwrap());
}

#[test]
fn deterministic_roundings_are_seed_independent() {
    let g = generators::torus2d(8, 8);
    let n = g.node_count();
    let run = |rounding: Rounding| {
        let mut sim = Experiment::on(&g)
            .discrete(rounding)
            .init(InitialLoad::paper_default(n))
            .build()
            .unwrap()
            .simulator();
        sim.run_until(StopCondition::MaxRounds(200));
        sim.loads_i64().unwrap().to_vec()
    };
    assert_eq!(run(Rounding::round_down()), run(Rounding::round_down()));
    assert_eq!(run(Rounding::nearest()), run(Rounding::nearest()));
    assert_ne!(run(Rounding::round_down()), run(Rounding::nearest()));
}

/// Fingerprint of a finished run: loads, minimum transient load, and the
/// final flow memory — all compared bit-for-bit.
fn run_fingerprint(
    graph: &Graph,
    scheme: Scheme,
    mode_discrete: bool,
    rounding: Rounding,
    threads: usize,
    rounds: usize,
) -> (Vec<i64>, Vec<u64>, u64, Vec<u64>) {
    let n = graph.node_count();
    let builder = Experiment::on(graph);
    let builder = if mode_discrete {
        builder.discrete(rounding)
    } else {
        builder.continuous()
    };
    let mut sim = builder
        .scheme(scheme)
        .threads(threads)
        .init(InitialLoad::paper_default(n))
        .build()
        .unwrap()
        .simulator();
    sim.run_until(StopCondition::MaxRounds(rounds));
    let loads_i = sim.loads_i64().map(<[i64]>::to_vec).unwrap_or_default();
    let loads_f = sim
        .loads_f64()
        .map(|l| l.iter().map(|x| x.to_bits()).collect())
        .unwrap_or_default();
    let transient = sim.min_transient_load().to_bits();
    let flows = sim.previous_flows().iter().map(|f| f.to_bits()).collect();
    (loads_i, loads_f, transient, flows)
}

/// The full deterministic grid on one torus: every scheme × rounding ×
/// mode must match `threads = 1` bit-for-bit on 2–8 threads. The grid
/// includes the pairwise schemes (dimension exchange over the torus's
/// edge coloring, round-robin and random matching-based balancing).
#[test]
fn pooled_executor_bit_identical_across_grid() {
    let g = generators::torus2d(9, 7); // odd sizes exercise chunk edges
    let beta = spectral::analyze(&g, &Speeds::uniform(63)).beta_opt();
    for scheme in [
        Scheme::fos(),
        Scheme::sos(beta),
        Scheme::dimension_exchange(1.0),
        Scheme::matching_round_robin(0.8),
        Scheme::matching_random(5, 1.0),
    ] {
        for rounding in [
            Rounding::randomized(13),
            Rounding::round_down(),
            Rounding::nearest(),
            Rounding::unbiased_edge(13),
        ] {
            for mode_discrete in [true, false] {
                let seq = run_fingerprint(&g, scheme, mode_discrete, rounding, 1, 60);
                for threads in [2, 5, 8] {
                    let par = run_fingerprint(&g, scheme, mode_discrete, rounding, threads, 60);
                    assert_eq!(
                        seq, par,
                        "{scheme:?} {rounding:?} discrete={mode_discrete} threads={threads}"
                    );
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Property form of the grid test: random torus/hypercube/CM graphs,
    /// random scheme, rounding, mode, and thread count — pooled parallel
    /// execution is always bit-identical to sequential.
    #[test]
    fn pooled_executor_matches_sequential(
        graph_pick in 0usize..3,
        seed in any::<u64>(),
        beta_scale in 0.2f64..1.0,
        scheme_pick in 0usize..5,
        exchange_lambda in 0.1f64..1.0,
        rounding_pick in 0usize..4,
        mode_discrete in proptest::prelude::any::<bool>(),
        threads in 2usize..=8,
        rounds in 10usize..50,
    ) {
        let graph = match graph_pick {
            0 => generators::torus2d(8, 6),
            1 => generators::hypercube(6),
            _ => generators::random_graph_cm(48, seed % 1000).unwrap(),
        };
        let n = graph.node_count();
        let scheme = match scheme_pick {
            0 => Scheme::fos(),
            1 => {
                let lambda = spectral::analyze(&graph, &Speeds::uniform(n)).lambda;
                // A stable-range β between 1 and β_opt.
                Scheme::sos(1.0 + beta_scale * (beta_opt(lambda) - 1.0))
            }
            2 => Scheme::dimension_exchange(exchange_lambda),
            3 => Scheme::matching_round_robin(exchange_lambda),
            _ => Scheme::matching_random(seed, exchange_lambda),
        };
        let rounding = match rounding_pick {
            0 => Rounding::randomized(seed),
            1 => Rounding::round_down(),
            2 => Rounding::nearest(),
            _ => Rounding::unbiased_edge(seed),
        };
        let seq = run_fingerprint(&graph, scheme, mode_discrete, rounding, 1, rounds);
        let par = run_fingerprint(&graph, scheme, mode_discrete, rounding, threads, rounds);
        prop_assert_eq!(
            seq, par,
            "{:?} {:?} discrete={} threads={}", scheme, rounding, mode_discrete, threads
        );
    }
}

#[test]
fn observer_does_not_perturb_run() {
    let g = generators::torus2d(8, 8);
    let n = g.node_count();
    let exp = Experiment::on(&g)
        .discrete(Rounding::randomized(9))
        .init(InitialLoad::paper_default(n))
        .build()
        .unwrap();
    let make = || exp.simulator();
    let mut plain = make();
    plain.run_until(StopCondition::MaxRounds(50));
    let mut observed = make();
    let mut rec = Recorder::new();
    observed.run_until_with(StopCondition::MaxRounds(50), &mut rec);
    assert_eq!(plain.loads_i64().unwrap(), observed.loads_i64().unwrap());
    assert_eq!(rec.rows().len(), 50);
}
