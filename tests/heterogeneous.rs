//! Heterogeneous-model integration tests: load balances proportionally to
//! speed across profiles, schemes, and graphs.

use sodiff::core::prelude::*;
use sodiff::graph::{generators, Graph};
use sodiff::linalg::spectral;

fn proportional_error(graph: &Graph, speeds: &Speeds, scheme_beta: Option<f64>) -> f64 {
    let _n = graph.node_count();
    let scheme = match scheme_beta {
        Some(beta) => Scheme::sos(beta),
        None => Scheme::fos(),
    };
    let total = 200 * speeds.total() as i64;
    let mut sim = Experiment::on(graph)
        .discrete(Rounding::randomized(17))
        .scheme(scheme)
        .speeds(speeds.clone())
        .init(InitialLoad::point(0, total))
        .build()
        .unwrap()
        .simulator();
    sim.run_until(StopCondition::Plateau {
        window: 60,
        max_rounds: 20_000,
    });
    assert_eq!(sim.total_load(), total as f64, "conservation");
    // Max relative error of per-node load vs speed-proportional ideal.
    let loads = sim.loads_i64().unwrap();
    loads
        .iter()
        .enumerate()
        .map(|(i, &x)| {
            let ideal = total as f64 * speeds.get(i) / speeds.total();
            (x as f64 - ideal).abs() / ideal
        })
        .fold(0.0, f64::max)
}

#[test]
fn two_class_speeds_on_torus() {
    let g = generators::torus2d(12, 12);
    let speeds = Speeds::two_class(144, 36, 4.0);
    let beta = spectral::analyze(&g, &speeds).beta_opt();
    let err = proportional_error(&g, &speeds, Some(beta));
    assert!(err < 0.15, "relative error {err}");
}

#[test]
fn linear_ramp_speeds_on_hypercube() {
    let g = generators::hypercube(7);
    let speeds = Speeds::linear_ramp(128, 6.0);
    let beta = spectral::analyze(&g, &speeds).beta_opt();
    let err = proportional_error(&g, &speeds, Some(beta));
    assert!(err < 0.15, "relative error {err}");
}

#[test]
fn random_skewed_speeds_with_fos() {
    let g = generators::random_regular(200, 6, 3).unwrap();
    let speeds = Speeds::random_skewed(200, 8.0, 1.5, 42);
    let err = proportional_error(&g, &speeds, None);
    assert!(err < 0.2, "relative error {err}");
}

#[test]
fn heterogeneous_sos_faster_than_fos() {
    let g = generators::torus2d(16, 16);
    let speeds = Speeds::two_class(256, 64, 4.0);
    let spec = spectral::analyze(&g, &speeds);
    let rounds = |scheme: Scheme| -> u64 {
        Experiment::on(&g)
            .continuous()
            .scheme(scheme)
            .speeds(speeds.clone())
            .init(InitialLoad::point(0, 256_000))
            .stop(StopCondition::BalancedWithin {
                threshold: 1.0,
                max_rounds: 200_000,
            })
            .build()
            .unwrap()
            .run()
            .rounds
    };
    let sos = rounds(Scheme::sos(spec.beta_opt()));
    let fos = rounds(Scheme::fos());
    assert!(2 * sos < fos, "sos {sos}, fos {fos}");
}

#[test]
fn unit_speeds_match_homogeneous_metrics() {
    // Config with explicit unit speeds must behave identically to the
    // default homogeneous run (same seed).
    let g = generators::torus2d(8, 8);
    let n = g.node_count();
    let run = |speeds: Option<Speeds>| {
        let mut builder = Experiment::on(&g)
            .discrete(Rounding::randomized(3))
            .init(InitialLoad::paper_default(n));
        if let Some(s) = speeds {
            builder = builder.speeds(s);
        }
        let mut sim = builder.build().unwrap().simulator();
        sim.run_until(StopCondition::MaxRounds(150));
        sim.loads_i64().unwrap().to_vec()
    };
    assert_eq!(run(None), run(Some(Speeds::uniform(n))));
}

#[test]
fn hybrid_switch_works_heterogeneously() {
    let g = generators::torus2d(12, 12);
    let speeds = Speeds::two_class(144, 16, 3.0);
    let spec = spectral::analyze(&g, &speeds);
    let total = 144_000;
    let mut sim = Experiment::on(&g)
        .discrete(Rounding::randomized(5))
        .sos(spec.beta_opt())
        .speeds(speeds.clone())
        .init(InitialLoad::point(0, total))
        .build()
        .unwrap()
        .simulator();
    let report = sim.run_hybrid(SwitchPolicy::AtRound(400), StopCondition::MaxRounds(1200));
    assert!(report.switch_round.is_some());
    let m = sim.metrics();
    assert!(
        m.max_minus_avg < 12.0,
        "post-switch imbalance {}",
        m.max_minus_avg
    );
}
