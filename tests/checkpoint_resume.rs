//! Exact checkpoint/resume over the golden-trace suite.
//!
//! For every pinned configuration of `tests/golden_trace.rs` — all
//! schemes, flow-memory modes, heterogeneous speeds, and the fault- and
//! load-injected runs, on the sequential executor and on the pool —
//! this suite proves the resume-exactness contract of the checkpoint
//! subsystem: running straight to round `R` and running to `k`,
//! snapshotting **to disk**, restoring into a fresh simulator, and
//! finishing the remaining rounds produce the *same pinned FNV
//! checksum*. Loads, flow memory, and the minimum transient load are
//! bit-identical; nothing about a checkpointed run is approximate.
//!
//! Resume points deliberately straddle the 16-round fault/load epoch
//! boundaries (e.g. `k = 33`) so the epoch re-materialization path of
//! `Simulator::restore` is exercised, not just the clean case.

use std::path::PathBuf;

use sodiff::prelude::*;
use sodiff::{read_checkpoint, write_checkpoint, ScenarioSpec};

/// FNV-1a over the full simulation state — the same digest
/// `tests/golden_trace.rs` pins.
fn state_checksum(sim: &Simulator<'_>) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
    };
    for &x in sim.loads_i64().expect("golden traces are discrete") {
        eat(&x.to_le_bytes());
    }
    for &f in sim.previous_flows() {
        eat(&f.to_bits().to_le_bytes());
    }
    eat(&sim.min_transient_load().to_bits().to_le_bytes());
    h
}

struct Golden {
    name: &'static str,
    /// Spec line without `name=`, `threads=`, `stop=`.
    spec: &'static str,
    rounds: usize,
    /// Snapshot round of the interrupted run.
    resume_at: usize,
    threads: &'static [usize],
    /// The pinned golden checksum (see `tests/golden_trace.rs`).
    checksum: u64,
}

const GOLDEN: &[Golden] = &[
    Golden {
        name: "torus_fos_rounded",
        spec: "topology=torus2d:8:8 rounding=randomized seed=42 init=point:0:6400",
        rounds: 60,
        resume_at: 30,
        threads: &[1, 3],
        checksum: 0xc6a410e2f5b1eac5,
    },
    Golden {
        name: "torus_sos_scheduled",
        spec: "topology=torus2d:8:8 rounding=randomized seed=7 scheme=sos:1.8 \
               flow_memory=scheduled",
        rounds: 60,
        resume_at: 31,
        threads: &[1, 3],
        checksum: 0xdef99d824410227d,
    },
    Golden {
        name: "regular_sos_het",
        spec: "topology=random_regular:60:4:2 rounding=randomized seed=13 scheme=sos:1.7 \
               speeds=ramp:5 init=point:0:60000",
        rounds: 80,
        resume_at: 41,
        threads: &[1, 3],
        checksum: 0xcda74ebcdaf7a3a9,
    },
    Golden {
        name: "cycle_fos",
        spec: "topology=cycle:17 rounding=randomized seed=3 init=point:0:1700",
        rounds: 45,
        resume_at: 22,
        threads: &[1, 3],
        checksum: 0x7a6af77403c77095,
    },
    Golden {
        name: "torus_de_nearest",
        spec: "topology=torus2d:8:8 rounding=nearest scheme=de:1 init=point:0:6400",
        rounds: 60,
        resume_at: 29,
        threads: &[1, 3],
        checksum: 0x1059328902898be5,
    },
    Golden {
        name: "torus_de_randomized",
        spec: "topology=torus2d:8:8 rounding=randomized seed=42 scheme=de:0.75 \
               init=point:0:6400",
        rounds: 60,
        resume_at: 37,
        threads: &[1, 3],
        checksum: 0x309b74ddad5025da,
    },
    Golden {
        name: "cycle_matching_rr",
        spec: "topology=cycle:17 rounding=nearest scheme=matching:rr:1 init=point:0:1700",
        rounds: 45,
        resume_at: 23,
        threads: &[1, 3],
        checksum: 0xc26364164de48acf,
    },
    Golden {
        // `resume_at: 33` straddles the crash channel's 16-round epoch:
        // the restore must re-materialize epoch 2's masks and keep the
        // cumulative event counters exact.
        name: "torus_sos_crash_churn",
        spec: "topology=torus2d:8:8 rounding=nearest scheme=sos:1.7 init=point:0:6400 \
               faults=crash:0.1:7",
        rounds: 64,
        resume_at: 33,
        threads: &[1, 3],
        checksum: 0x8cc7ad550f849948,
    },
    Golden {
        // `resume_at: 32` lands exactly on an epoch boundary — the next
        // round after resume opens a fresh epoch.
        name: "torus_sos_poisson",
        spec: "topology=torus2d:8:8 rounding=nearest scheme=sos:1.7 init=point:0:6400 \
               load=poisson:0.5:7",
        rounds: 64,
        resume_at: 32,
        threads: &[1, 3],
        checksum: 0x528126d94fdd1296,
    },
    Golden {
        // `resume_at: 33` straddles the churn epoch: the restore must
        // reinstall the persisted activation overlay (never redrawing
        // the membership chain) and rebuild the epoch's masks.
        name: "torus_sos_crash_flux",
        spec: "topology=torus2d:8:8 rounding=nearest scheme=sos:1.7 init=point:0:6400 \
               faults=crash:0.1:7 churn=flux:0.08:0.3:9:25",
        rounds: 64,
        resume_at: 33,
        threads: &[1, 3],
        checksum: 0x98bbaa1b24facd58,
    },
    Golden {
        name: "regular_matching_random",
        spec: "topology=random_regular:60:4:2 rounding=unbiased seed=13 \
               scheme=matching:random:7:1 speeds=ramp:5 init=point:0:60000",
        rounds: 80,
        resume_at: 43,
        threads: &[1, 4],
        checksum: 0x7cbb471521179a82,
    },
];

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sodiff-ckpt-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn resume_matches_pinned_golden_checksums() {
    let dir = scratch_dir("resume");
    for cfg in GOLDEN {
        for &threads in cfg.threads {
            let line = format!(
                "name={} {} threads={threads} stop=rounds:{}",
                cfg.name, cfg.spec, cfg.rounds
            );
            let spec: ScenarioSpec = line.parse().unwrap();
            let graph = spec.build_graph().unwrap();
            let experiment = spec.experiment_on(&graph).unwrap();

            // Uninterrupted reference run: must hit the pinned checksum
            // (the spec line reproduces the golden builder config).
            let mut whole = experiment.simulator();
            whole.run_until(StopCondition::MaxRounds(cfg.rounds));
            assert_eq!(
                state_checksum(&whole),
                cfg.checksum,
                "{} t{threads}: uninterrupted run diverged from the pinned trace",
                cfg.name
            );

            // Interrupted run: stop at k, snapshot through the on-disk
            // format, restore into a FRESH simulator, finish.
            let mut first = experiment.simulator();
            first.run_until(StopCondition::MaxRounds(cfg.resume_at));
            let snap = first.snapshot();
            assert_eq!(snap.round(), cfg.resume_at as u64);
            let path = dir.join(format!("{}-t{threads}.ckpt", cfg.name));
            write_checkpoint(&path, &spec, &snap).unwrap();
            let ckpt = read_checkpoint(&path).unwrap();
            assert_eq!(ckpt.spec, spec, "{}: header spec round-trips", cfg.name);
            assert_eq!(ckpt.snapshot.round(), cfg.resume_at as u64);

            let mut resumed = experiment.simulator();
            resumed.restore(&ckpt.snapshot).unwrap();
            // `MaxRounds` counts rounds per call: ask for the remainder.
            resumed.run_until(StopCondition::MaxRounds(cfg.rounds - cfg.resume_at));
            assert_eq!(
                state_checksum(&resumed),
                cfg.checksum,
                "{} t{threads}: resume at {} diverged from the pinned trace",
                cfg.name,
                cfg.resume_at
            );
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// The `ckpt=every:N:DIR` scenario key auto-writes resumable snapshots
/// from inside the round loop; the latest one restores to the exact
/// final state of the run that wrote it.
#[test]
fn scenario_ckpt_key_writes_resumable_checkpoints() {
    let dir = scratch_dir("auto");
    let line = format!(
        "name=auto topology=torus2d:8:8 rounding=nearest scheme=sos:1.7 init=point:0:6400 \
         faults=crash:0.1:7 ckpt=every:16:{} stop=rounds:64",
        dir.display()
    );
    let spec: ScenarioSpec = line.parse().unwrap();
    let report = spec.run().unwrap();
    assert_eq!(report.rounds, 64);

    let ckpt = read_checkpoint(&dir.join("auto.ckpt")).unwrap();
    assert_eq!(
        ckpt.snapshot.round(),
        64,
        "latest snapshot is the final one"
    );
    assert_eq!(ckpt.spec, spec);
    // Resuming a checkpoint taken at the stop round replays zero rounds.
    let resumed = ckpt.resume().unwrap();
    assert_eq!(resumed.rounds, 0);

    // A checkpoint from a SHORTER run of the same scenario resumes to
    // the same final metrics the full run reported.
    let line = format!(
        "name=auto2 topology=torus2d:8:8 rounding=nearest scheme=sos:1.7 init=point:0:6400 \
         faults=crash:0.1:7 ckpt=every:16:{} stop=rounds:64",
        dir.display()
    );
    let spec2: ScenarioSpec = line.parse().unwrap();
    let graph = spec2.build_graph().unwrap();
    let experiment = spec2.experiment_on(&graph).unwrap();
    let mut partial = experiment.simulator();
    partial.run_until(StopCondition::MaxRounds(48));
    let resumed = read_checkpoint(&dir.join("auto2.ckpt"))
        .unwrap()
        .resume()
        .unwrap();
    assert_eq!(resumed.rounds, 16, "48 of 64 rounds were already done");
    assert_eq!(resumed.final_metrics, report.final_metrics);
    std::fs::remove_dir_all(&dir).ok();
}

/// Restoring into a mismatched simulator (different topology, or a
/// different initial total) is rejected with a typed error before any
/// state is touched.
#[test]
fn restore_rejects_mismatched_simulators() {
    let spec: ScenarioSpec = "name=src topology=torus2d:8:8 rounding=nearest seed=1 \
                              init=point:0:6400 stop=rounds:40"
        .parse()
        .unwrap();
    let graph = spec.build_graph().unwrap();
    let experiment = spec.experiment_on(&graph).unwrap();
    let mut sim = experiment.simulator();
    sim.run_until(StopCondition::MaxRounds(10));
    let snap = sim.snapshot();

    let other: ScenarioSpec = "name=dst topology=cycle:17 rounding=nearest seed=1 \
                               stop=rounds:40"
        .parse()
        .unwrap();
    let other_graph = other.build_graph().unwrap();
    let other_exp = other.experiment_on(&other_graph).unwrap();
    let mut other_sim = other_exp.simulator();
    let before = state_checksum(&other_sim);
    let err = other_sim.restore(&snap).unwrap_err();
    assert!(matches!(err, CheckpointError::Mismatch(_)), "{err}");
    assert_eq!(
        state_checksum(&other_sim),
        before,
        "failed restore must not mutate the target"
    );
}
