//! End-to-end behavior of the pairwise schemes opened by the
//! scheme-kernel layer: dimension exchange over edge colorings and
//! matching-based balancing, across modes, roundings, the builder, the
//! scenario format, and the batch driver.

use sodiff::graph::generators;
use sodiff::prelude::*;
use sodiff::ScenarioSpec;

#[test]
fn dimension_exchange_balances_torus() {
    let g = generators::torus2d(8, 8);
    let mut sim = Experiment::on(&g)
        .discrete(Rounding::nearest())
        .scheme(Scheme::dimension_exchange(1.0))
        .init(InitialLoad::point(0, 6400))
        .build()
        .unwrap()
        .simulator();
    let report = sim.run_until(StopCondition::MaxRounds(800));
    assert!(
        report.final_metrics.max_minus_avg <= 4.0,
        "DE should balance the torus, max−avg = {}",
        report.final_metrics.max_minus_avg
    );
    assert_eq!(sim.total_load(), 6400.0, "tokens conserved");
}

#[test]
fn matching_schemes_balance_and_conserve() {
    let g = generators::torus2d(6, 6);
    for scheme in [
        Scheme::matching_round_robin(1.0),
        Scheme::matching_random(11, 1.0),
    ] {
        let mut sim = Experiment::on(&g)
            .discrete(Rounding::nearest())
            .scheme(scheme)
            .init(InitialLoad::point(0, 3600))
            .build()
            .unwrap()
            .simulator();
        let report = sim.run_until(StopCondition::MaxRounds(1200));
        assert!(
            report.final_metrics.max_minus_avg <= 6.0,
            "{scheme} should balance, max−avg = {}",
            report.final_metrics.max_minus_avg
        );
        assert_eq!(sim.total_load(), 3600.0, "{scheme} conserves tokens");
    }
}

#[test]
fn continuous_de_is_exact_pairwise_averaging() {
    // One active edge with λ = 1 averages its endpoints exactly.
    let g = generators::path(2);
    let mut sim = Experiment::on(&g)
        .continuous()
        .scheme(Scheme::dimension_exchange(1.0))
        .init(InitialLoad::point(0, 40))
        .build()
        .unwrap()
        .simulator();
    sim.step();
    assert_eq!(sim.loads_f64().unwrap(), &[20.0, 20.0]);
}

#[test]
fn heterogeneous_de_balances_proportionally_to_speeds() {
    // (s_0, s_1) = (1, 3): the pairwise quantum moves loads straight to
    // the speed-proportional split.
    let g = generators::path(2);
    let mut sim = Experiment::on(&g)
        .continuous()
        .scheme(Scheme::dimension_exchange(1.0))
        .speeds(Speeds::new(vec![1.0, 3.0]))
        .init(InitialLoad::point(0, 40))
        .build()
        .unwrap()
        .simulator();
    sim.step();
    assert_eq!(sim.loads_f64().unwrap(), &[10.0, 30.0]);
}

#[test]
fn de_under_randomized_framework_conserves() {
    let g = generators::torus2d(5, 5);
    let mut sim = Experiment::on(&g)
        .discrete(Rounding::randomized(3))
        .scheme(Scheme::dimension_exchange(0.9))
        .init(InitialLoad::point(0, 2500))
        .build()
        .unwrap()
        .simulator();
    sim.run_until(StopCondition::MaxRounds(600));
    assert_eq!(sim.total_load(), 2500.0);
}

#[test]
fn de_sweeps_every_edge_once_per_coloring_cycle() {
    // On an even torus (4 color classes) 4 consecutive rounds touch every
    // edge exactly once: after one sweep from a balanced-but-offset start
    // every node has exchanged with all 4 neighbors.
    let g = generators::torus2d(4, 4);
    let mut sim = Experiment::on(&g)
        .discrete(Rounding::round_down())
        .scheme(Scheme::dimension_exchange(1.0))
        .init(InitialLoad::EqualPerNode(10))
        .build()
        .unwrap()
        .simulator();
    for _ in 0..4 {
        sim.step();
    }
    // Balanced start stays balanced through a full sweep.
    assert_eq!(sim.loads_i64().unwrap(), &[10i64; 16][..]);
}

#[test]
fn builder_rejects_bad_pairwise_configs() {
    let g = generators::cycle(6);
    // λ out of range.
    let err = Experiment::on(&g)
        .discrete(Rounding::nearest())
        .scheme(Scheme::dimension_exchange(0.0))
        .build()
        .unwrap_err();
    assert!(matches!(err, BuildError::InvalidLambda(_)), "{err}");
    let err = Experiment::on(&g)
        .discrete(Rounding::nearest())
        .scheme(Scheme::matching_round_robin(1.5))
        .build()
        .unwrap_err();
    assert!(matches!(err, BuildError::InvalidLambda(_)), "{err}");
    // Pairwise schemes need edges.
    let single = generators::path(1);
    let err = Experiment::on(&single)
        .discrete(Rounding::nearest())
        .scheme(Scheme::dimension_exchange(1.0))
        .build()
        .unwrap_err();
    assert!(matches!(err, BuildError::NoColoring(_)), "{err}");
    let err = Experiment::on(&single)
        .discrete(Rounding::nearest())
        .scheme(Scheme::matching_random(1, 1.0))
        .build()
        .unwrap_err();
    assert!(matches!(err, BuildError::NoMatching(_)), "{err}");
    // The SOS→FOS hybrid switch has no meaning for pairwise schemes.
    let err = Experiment::on(&g)
        .discrete(Rounding::nearest())
        .scheme(Scheme::matching_round_robin(1.0))
        .hybrid(SwitchPolicy::AtRound(10))
        .build()
        .unwrap_err();
    assert!(
        matches!(err, BuildError::HybridRequiresDiffusion(_)),
        "{err}"
    );
}

#[test]
#[should_panic(expected = "diffusion family")]
fn switch_scheme_rejects_family_changes() {
    let g = generators::cycle(6);
    let mut sim = Experiment::on(&g)
        .discrete(Rounding::nearest())
        .scheme(Scheme::dimension_exchange(1.0))
        .build()
        .unwrap()
        .simulator();
    sim.switch_scheme(Scheme::fos());
}

#[test]
fn scenario_specs_run_de_and_matching_end_to_end() {
    let specs = ScenarioSpec::parse_many(
        "name=de topology=torus2d:8:8 scheme=de:1 mode=discrete rounding=nearest \
         init=point:0:6400 stop=rounds:400\n\
         name=mrr topology=torus2d:8:8 scheme=matching:rr:1 mode=discrete rounding=nearest \
         init=point:0:6400 stop=rounds:400\n\
         name=mrand topology=torus2d:8:8 scheme=matching:random:7:0.9 mode=discrete \
         rounding=nearest init=point:0:6400 stop=rounds:400\n",
    )
    .unwrap();
    let batch = Driver::new().run_batch(&specs);
    assert!(batch.errors.is_empty());
    assert_eq!(batch.scenarios.len(), 3);
    for s in &batch.scenarios {
        assert!(
            s.report.final_metrics.max_minus_avg < 200.0,
            "{}: imbalance {}",
            s.name,
            s.report.final_metrics.max_minus_avg
        );
        // The driver's canonical spec text round-trips.
        let reparsed: ScenarioSpec = s.spec.parse().unwrap();
        assert_eq!(reparsed.to_string(), s.spec);
    }
    // Pooled and concurrent drivers reproduce the sequential reports.
    let pooled = Driver::with_threads(3).unwrap().run_batch(&specs);
    let concurrent = Driver::concurrent(2).unwrap().run_batch(&specs);
    for ((seq, pl), cc) in batch
        .scenarios
        .iter()
        .zip(&pooled.scenarios)
        .zip(&concurrent.scenarios)
    {
        assert_eq!(seq.report, pl.report, "{} pooled", seq.name);
        assert_eq!(seq.report, cc.report, "{} concurrent", seq.name);
    }
}

#[test]
fn coupled_deviation_works_for_pairwise_schemes() {
    let g = generators::torus2d(6, 6);
    let exp = Experiment::on(&g)
        .discrete(Rounding::nearest())
        .scheme(Scheme::dimension_exchange(1.0))
        .init(InitialLoad::point(0, 3600))
        .build()
        .unwrap();
    let series = exp.coupled_deviation(60).unwrap();
    assert_eq!(series.per_round.len(), 60);
    // Deterministic nearest rounding keeps the discrete run close to its
    // continuous twin.
    assert!(series.per_round.iter().all(|&d| d < 30.0));
}

#[test]
fn matching_random_is_deterministic_per_seed() {
    let g = generators::torus2d(6, 6);
    let run = |seed: u64| {
        let mut sim = Experiment::on(&g)
            .discrete(Rounding::nearest())
            .scheme(Scheme::matching_random(seed, 1.0))
            .init(InitialLoad::point(0, 3600))
            .build()
            .unwrap()
            .simulator();
        sim.run_until(StopCondition::MaxRounds(120));
        sim.loads_i64().unwrap().to_vec()
    };
    assert_eq!(run(4), run(4));
    assert_ne!(run(4), run(5), "different matching seeds should diverge");
}
