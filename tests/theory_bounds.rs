//! Simulated quantities stay within the shapes of the paper's theorems.

use sodiff::core::divergence::{refined_local_divergence_at, DivergenceOptions};
use sodiff::core::prelude::*;
use sodiff::core::theory;
use sodiff::graph::generators;
use sodiff::linalg::spectral;

/// Theorem 4(2): randomized FOS deviation is O(d√(log n/(1−λ))) — check
/// the measured deviation sits below a generous constant times the bound.
#[test]
fn fos_deviation_within_theorem4_envelope() {
    for side in [8usize, 16] {
        let g = generators::torus2d(side, side);
        let n = g.node_count();
        let spec = spectral::analyze(&g, &Speeds::uniform(n));
        let series = Experiment::on(&g)
            .discrete(Rounding::randomized(21))
            .init(InitialLoad::paper_default(n))
            .build()
            .unwrap()
            .coupled_deviation(2000)
            .unwrap();
        let bound = theory::fos_deviation_bound(4, n, 1.0, spec.gap());
        assert!(
            series.max() < 3.0 * bound,
            "side {side}: deviation {} vs bound {bound}",
            series.max()
        );
    }
}

/// Theorem 9(2): randomized SOS deviation is O(d·√(log n)/(1−λ)^{3/4}).
#[test]
fn sos_deviation_within_theorem9_envelope() {
    for side in [8usize, 16] {
        let g = generators::torus2d(side, side);
        let n = g.node_count();
        let spec = spectral::analyze(&g, &Speeds::uniform(n));
        let series = Experiment::on(&g)
            .discrete(Rounding::randomized(22))
            .sos(spec.beta_opt())
            .init(InitialLoad::paper_default(n))
            .build()
            .unwrap()
            .coupled_deviation(2000)
            .unwrap();
        let bound = theory::sos_deviation_bound(4, n, 1.0, spec.gap());
        assert!(
            series.max() < 3.0 * bound,
            "side {side}: deviation {} vs bound {bound}",
            series.max()
        );
    }
}

/// Theorem 8: even deterministic floor/ceiling rounding stays within the
/// (much looser) O(d√(n s_max)/(1−λ)) envelope.
#[test]
fn arbitrary_rounding_within_theorem8_envelope() {
    let g = generators::torus2d(12, 12);
    let n = g.node_count();
    let spec = spectral::analyze(&g, &Speeds::uniform(n));
    let series = Experiment::on(&g)
        .discrete(Rounding::round_down())
        .sos(spec.beta_opt())
        .init(InitialLoad::paper_default(n))
        .build()
        .unwrap()
        .coupled_deviation(3000)
        .unwrap();
    let bound = theory::sos_arbitrary_rounding_deviation_bound(4, n, 1.0, spec.gap());
    assert!(
        series.max() < bound,
        "deviation {} vs bound {bound}",
        series.max()
    );
}

/// Theorems 4(1)/9(1): numerically computed refined local divergences obey
/// the bound shapes and their relative order.
#[test]
fn divergence_obeys_theorem_shapes() {
    let g = generators::torus2d(12, 12);
    let n = g.node_count();
    let sp = Speeds::uniform(n);
    let spec = spectral::analyze(&g, &sp);
    let fos = refined_local_divergence_at(&g, &sp, Scheme::fos(), 0, DivergenceOptions::default());
    let sos = refined_local_divergence_at(
        &g,
        &sp,
        Scheme::sos(spec.beta_opt()),
        0,
        DivergenceOptions::default(),
    );
    let fos_bound = theory::fos_divergence_bound(4, 1.0, spec.gap());
    let sos_bound = theory::sos_divergence_bound(4, 1.0, spec.gap());
    assert!(fos < 5.0 * fos_bound, "fos {fos} vs bound {fos_bound}");
    assert!(sos < 5.0 * sos_bound, "sos {sos} vs bound {sos_bound}");
    assert!(fos < sos, "FOS divergence should be smaller");
}

/// Theorem 10: with the bound's worth of initial minimum load, continuous
/// SOS never drives any node negative.
#[test]
fn continuous_sos_min_load_bound_prevents_negative() {
    let g = generators::torus2d(16, 16);
    let n = g.node_count();
    let spec = spectral::analyze(&g, &Speeds::uniform(n));
    let spike = 5_000i64;
    let delta0 = spike as f64;
    let bound = theory::min_initial_load_continuous_sos(n, delta0, spec.gap());
    let mut loads = vec![bound.ceil() as i64; n];
    loads[0] += spike;
    let mut sim = Experiment::on(&g)
        .continuous()
        .sos(spec.beta_opt())
        .init(InitialLoad::Custom(loads))
        .build()
        .unwrap()
        .simulator();
    sim.run_until(StopCondition::MaxRounds(3000));
    assert!(
        sim.min_transient_load() >= 0.0,
        "transient went negative: {}",
        sim.min_transient_load()
    );
}

/// Theorem 11: same for the discrete randomized process.
#[test]
fn discrete_sos_min_load_bound_prevents_negative() {
    let g = generators::torus2d(16, 16);
    let n = g.node_count();
    let spec = spectral::analyze(&g, &Speeds::uniform(n));
    let spike = 5_000i64;
    let bound = theory::min_initial_load_discrete_sos(n, spike as f64, 4, spec.gap());
    let mut loads = vec![bound.ceil() as i64; n];
    loads[0] += spike;
    let mut sim = Experiment::on(&g)
        .discrete(Rounding::randomized(31))
        .sos(spec.beta_opt())
        .init(InitialLoad::Custom(loads))
        .build()
        .unwrap()
        .simulator();
    sim.run_until(StopCondition::MaxRounds(3000));
    assert!(
        sim.min_transient_load() >= 0.0,
        "transient went negative: {}",
        sim.min_transient_load()
    );
}

/// Steady-state closure of the static theory under a *sustained*
/// workload: starting balanced, a Poisson arrival/departure stream
/// keeps perturbing the system every round, and the windowed deviation
/// statistics (`stop=horizon`, the PR 7 `SteadyStats` window) must stay
/// inside the paper's fixed-network envelopes — Theorem 4(2) for FOS
/// and Theorem 9(2) for SOS. The bounds are stated for the transient of
/// a static instance; the check is that the *stationary* deviation of
/// the perturbed process never leaves those shapes, for either scheme.
#[test]
fn steady_deviation_under_sustained_injection_within_static_envelopes() {
    let g = generators::torus2d(8, 8);
    let n = g.node_count();
    let spec = spectral::analyze(&g, &Speeds::uniform(n));
    let steady = |scheme: Scheme| {
        Experiment::on(&g)
            .discrete(Rounding::nearest())
            .scheme(scheme)
            .init(InitialLoad::EqualPerNode(100))
            .load(LoadSpec::none().with_poisson(0.8, 7))
            .stop(StopCondition::Horizon(400))
            .build()
            .unwrap()
            .run()
            .steady
            .expect("horizon mode always reports stats")
    };
    let fos = steady(Scheme::fos());
    let sos = steady(Scheme::sos(spec.beta_opt()));
    let fos_bound = theory::fos_deviation_bound(4, n, 1.0, spec.gap());
    let sos_bound = theory::sos_deviation_bound(4, n, 1.0, spec.gap());
    for (name, stats, bound) in [("FOS", &fos, fos_bound), ("SOS", &sos, sos_bound)] {
        assert!(
            stats.p99_dev > 0.0,
            "{name}: a sustained stream must keep the process perturbed"
        );
        assert!(
            stats.max_dev < 3.0 * bound,
            "{name}: steady deviation {} escaped the static envelope {bound}",
            stats.max_dev
        );
    }
}

/// The same closure under *topology churn*: nodes keep departing (their
/// load handed to neighbors) and re-arriving at the balanced per-node
/// load. Churn perturbs in units of a whole node's load — a departure
/// dumps ~x̄ onto its neighborhood at once, and an empty slot sits a
/// full x̄ below the mean — so the right stationary envelope is the
/// static theorem bound *plus* O(x̄) worth of churn amplitude. The check
/// is that neither scheme's windowed deviation escapes
/// `3·bound + 2·x̄`: the perturbed process re-contracts between epochs
/// instead of accumulating imbalance across them.
#[test]
fn steady_deviation_under_churn_within_static_envelopes() {
    let g = generators::torus2d(8, 8);
    let n = g.node_count();
    let spec = spectral::analyze(&g, &Speeds::uniform(n));
    let steady = |scheme: Scheme| {
        Experiment::on(&g)
            .discrete(Rounding::nearest())
            .scheme(scheme)
            .init(InitialLoad::EqualPerNode(100))
            .churn(
                ChurnSpec::none()
                    .with_flux(0.05, 0.4, 11)
                    .with_initial(100.0),
            )
            .stop(StopCondition::Horizon(400))
            .build()
            .unwrap()
            .run()
            .steady
            .expect("horizon mode always reports stats")
    };
    let fos = steady(Scheme::fos());
    let sos = steady(Scheme::sos(spec.beta_opt()));
    let fos_bound = theory::fos_deviation_bound(4, n, 1.0, spec.gap());
    let sos_bound = theory::sos_deviation_bound(4, n, 1.0, spec.gap());
    // The balanced per-node load x̄ — both the handoff quantum and the
    // empty-slot offset are bounded by one node's worth of it.
    let per_node = 100.0;
    for (name, stats, bound) in [("FOS", &fos, fos_bound), ("SOS", &sos, sos_bound)] {
        assert!(
            stats.p99_dev > 0.0,
            "{name}: sustained churn must keep the process perturbed"
        );
        let envelope = 3.0 * bound + 2.0 * per_node;
        assert!(
            stats.max_dev < envelope,
            "{name}: steady deviation under churn {} escaped bound {bound} + churn \
             amplitude (envelope {envelope})",
            stats.max_dev
        );
        assert!(
            stats.mean_dev < envelope / 2.0,
            "{name}: windowed mean {} shows imbalance accumulating across epochs",
            stats.mean_dev
        );
    }
}

/// Convergence-time shapes (Section II): measured round counts scale like
/// log(Kn)/(1−λ) for FOS and log(Kn)/√(1−λ) for SOS as the torus grows.
#[test]
fn convergence_times_scale_with_gap() {
    let measure = |side: usize, scheme_of: fn(f64) -> Scheme| -> (u64, f64) {
        let g = generators::torus2d(side, side);
        let n = g.node_count();
        let spec = spectral::analyze(&g, &Speeds::uniform(n));
        let r = Experiment::on(&g)
            .continuous()
            .scheme(scheme_of(spec.beta_opt()))
            .init(InitialLoad::paper_default(n))
            .stop(StopCondition::BalancedWithin {
                threshold: 1.0,
                max_rounds: 2_000_000,
            })
            .build()
            .unwrap()
            .run()
            .rounds;
        (r, spec.gap())
    };
    // FOS: rounds ratio between sides ~ gap ratio (log factor ~constant).
    let (fos_small, gap_small) = measure(8, |_| Scheme::fos());
    let (fos_large, gap_large) = measure(16, |_| Scheme::fos());
    let measured_ratio = fos_large as f64 / fos_small as f64;
    let gap_ratio = gap_small / gap_large;
    assert!(
        measured_ratio > 0.4 * gap_ratio && measured_ratio < 2.5 * gap_ratio,
        "FOS scaling: measured {measured_ratio} vs gap ratio {gap_ratio}"
    );
    // SOS: ratio ~ sqrt(gap ratio).
    let (sos_small, _) = measure(8, Scheme::sos);
    let (sos_large, _) = measure(16, Scheme::sos);
    let sos_ratio = sos_large as f64 / sos_small as f64;
    let expected = gap_ratio.sqrt();
    assert!(
        sos_ratio > 0.4 * expected && sos_ratio < 2.5 * expected,
        "SOS scaling: measured {sos_ratio} vs sqrt gap ratio {expected}"
    );
}
