//! The `mem=compact` state layout: pinned golden traces, executor
//! bit-identity, accuracy tolerance against the full-width layout,
//! checkpoint/resume exactness, and the memory-diet guarantee itself.
//!
//! Compact runs store per-node loads and per-edge state as `i32`/`f32`
//! while keeping every arithmetic step in `f64` (see
//! `crates/core/src/kernel.rs`). They are a *different* deterministic
//! process than `mem=full` — each narrow store rounds — so compact gets
//! its own pinned checksums here, under the same re-pin policy as
//! `tests/golden_trace.rs`. The full-width golden traces over there are
//! the zero-cost guarantee: `mem=full` monomorphizes to the exact
//! pre-compact code paths and its checksums never move.

use sodiff::core::Driver;
use sodiff::graph::generators;
use sodiff::prelude::*;

/// FNV-1a over the full compact simulation state, layout-independent:
/// loads (as `f64` bits), previous flows, and the minimum transient.
fn state_checksum(sim: &Simulator<'_>) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
    };
    for i in 0..sim.graph().node_count() {
        eat(&sim.load_of(i).to_bits().to_le_bytes());
    }
    for &f in &sim.previous_flows_to_f64() {
        eat(&f.to_bits().to_le_bytes());
    }
    eat(&sim.min_transient_load().to_bits().to_le_bytes());
    h
}

fn run_and_check(name: &str, expected: u64, mut sim: Simulator<'_>, rounds: usize) {
    for _ in 0..rounds {
        sim.step();
    }
    assert_eq!(
        state_checksum(&sim),
        expected,
        "{name}: compact golden trace diverged from the pinned implementation"
    );
}

#[test]
fn compact_torus_fos_rounded() {
    let g = generators::torus2d(8, 8);
    for threads in [1, 3] {
        let sim = Experiment::on(&g)
            .discrete(Rounding::randomized(42))
            .init(InitialLoad::point(0, 6400))
            .mem(MemSpec::Compact)
            .threads(threads)
            .build()
            .unwrap()
            .simulator();
        run_and_check("compact_torus_fos", 0x5ece01fb7507a57c, sim, 60);
    }
}

#[test]
fn compact_torus_sos_scheduled() {
    let g = generators::torus2d(8, 8);
    for threads in [1, 3] {
        let sim = Experiment::on(&g)
            .discrete(Rounding::randomized(7))
            .sos(1.8)
            .flow_memory(FlowMemory::Scheduled)
            .mem(MemSpec::Compact)
            .threads(threads)
            .build()
            .unwrap()
            .simulator();
        run_and_check("compact_torus_sos_scheduled", 0xc5c2429a8d2805bb, sim, 60);
    }
}

#[test]
fn compact_matching_random_heterogeneous() {
    let g = generators::random_regular(60, 4, 2).unwrap();
    for threads in [1, 4] {
        let sim = Experiment::on(&g)
            .discrete(Rounding::unbiased_edge(13))
            .scheme(Scheme::matching_random(7, 1.0))
            .speeds(Speeds::linear_ramp(60, 5.0))
            .init(InitialLoad::point(0, 60_000))
            .mem(MemSpec::Compact)
            .threads(threads)
            .build()
            .unwrap()
            .simulator();
        run_and_check("compact_matching_random", 0xe1d0d8e39687b05d, sim, 80);
    }
}

/// The pooled compact executor is bit-identical to the sequential one at
/// every thread count, for both modes — the compact `AtomicsI32/F32`
/// buffers perform the same narrow/widen conversions as the sequential
/// `CellsI32/F32` ones.
#[test]
fn compact_seq_matches_pooled() {
    let g = generators::torus2d(9, 7); // odd sizes exercise chunking
    let run = |threads: usize, continuous: bool| {
        let b = Experiment::on(&g);
        let b = if continuous {
            b.continuous().sos(1.7)
        } else {
            b.discrete(Rounding::randomized(13)).sos(1.7)
        };
        let mut sim = b
            .mem(MemSpec::Compact)
            .threads(threads)
            .init(InitialLoad::point(0, 6300))
            .build()
            .unwrap()
            .simulator();
        sim.run_until(StopCondition::MaxRounds(120));
        state_checksum(&sim)
    };
    for continuous in [false, true] {
        let seq = run(1, continuous);
        for threads in [2, 3, 5] {
            assert_eq!(
                seq,
                run(threads, continuous),
                "continuous={continuous}, {threads} threads"
            );
        }
    }
}

/// Compact is a memory diet, not a different balancer: after the same
/// number of rounds its remaining imbalance matches the full-width
/// layout within a small tolerance, and conservation still holds
/// exactly in discrete mode.
#[test]
fn compact_tracks_full_within_tolerance() {
    let g = generators::torus2d(8, 8);
    let run = |mem: MemSpec| {
        let mut sim = Experiment::on(&g)
            .discrete(Rounding::randomized(11))
            .sos(1.7)
            .init(InitialLoad::point(0, 6400))
            .mem(mem)
            .build()
            .unwrap()
            .simulator();
        let report = sim.run_until(StopCondition::MaxRounds(300));
        assert_eq!(sim.total_load(), 6400.0, "tokens conserved under {mem:?}");
        report.final_metrics.max_minus_avg
    };
    let full = run(MemSpec::Full);
    let compact = run(MemSpec::Compact);
    assert!(
        (full - compact).abs() <= 3.0,
        "final max_dev diverged: full {full} vs compact {compact}"
    );
}

/// In continuous mode the compact layout's per-round f32 stores act as a
/// tiny rounding noise; per-node loads stay close to the full run.
#[test]
fn compact_continuous_stays_close_to_full() {
    let g = generators::torus2d(8, 8);
    let run = |mem: MemSpec| {
        let mut sim = Experiment::on(&g)
            .continuous()
            .sos(1.7)
            .init(InitialLoad::point(0, 6400))
            .mem(mem)
            .build()
            .unwrap()
            .simulator();
        sim.run_until(StopCondition::MaxRounds(200));
        sim.loads_to_f64()
    };
    let full = run(MemSpec::Full);
    let compact = run(MemSpec::Compact);
    let worst = full
        .iter()
        .zip(&compact)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    assert!(worst < 0.5, "worst per-node deviation {worst}");
}

/// Checkpoint/resume is exact for compact runs: snapshots widen the
/// `i32`/`f32` state losslessly, and restore re-narrows bit-exactly, so
/// an interrupted compact run continues identically to an uninterrupted
/// one — across executors.
#[test]
fn compact_checkpoint_resume_is_exact() {
    let g = generators::torus2d(8, 8);
    let build = |threads: usize| {
        Experiment::on(&g)
            .discrete(Rounding::randomized(5))
            .sos(1.7)
            .init(InitialLoad::point(0, 6400))
            .mem(MemSpec::Compact)
            .threads(threads)
            .build()
            .unwrap()
            .simulator()
    };
    let mut reference = build(1);
    reference.run_until(StopCondition::MaxRounds(60));
    let expected = state_checksum(&reference);

    let mut first = build(1);
    first.run_until(StopCondition::MaxRounds(25));
    let snap = first.snapshot();
    drop(first);
    for threads in [1, 3] {
        let mut resumed = build(threads);
        resumed.restore(&snap).unwrap();
        resumed.run_until(StopCondition::MaxRounds(35));
        assert_eq!(
            state_checksum(&resumed),
            expected,
            "resume diverged on {threads} threads"
        );
    }
}

/// A full-width snapshot whose values do not narrow exactly is rejected
/// with a `Mismatch` — and the simulator is left untouched.
#[test]
fn compact_restore_rejects_unrepresentable_snapshot() {
    let g = generators::cycle(7);
    let mut full = Experiment::on(&g)
        .continuous()
        .init(InitialLoad::point(0, 700))
        .build()
        .unwrap()
        .simulator();
    // 700/3-style thirds are not f32-representable after a few rounds.
    full.run_until(StopCondition::MaxRounds(5));
    let snap = full.snapshot();
    let mut compact = Experiment::on(&g)
        .continuous()
        .init(InitialLoad::point(0, 700))
        .mem(MemSpec::Compact)
        .build()
        .unwrap()
        .simulator();
    let before = state_checksum(&compact);
    let err = compact.restore(&snap).unwrap_err();
    assert!(
        matches!(err, CheckpointError::Mismatch(_)),
        "expected Mismatch, got {err:?}"
    );
    assert_eq!(
        state_checksum(&compact),
        before,
        "failed restore must leave the simulator unmodified"
    );
}

/// The headline guarantee of the diet: compact halves the per-node and
/// per-edge state bytes (well past the required 40% cut), on the
/// sequential executor and with the pool's mirrors included.
#[test]
fn compact_halves_state_bytes() {
    let g = generators::torus2d(16, 16);
    for threads in [1, 3] {
        let bytes = |mem: MemSpec| {
            Experiment::on(&g)
                .discrete(Rounding::randomized(3))
                .sos(1.7)
                .threads(threads)
                .mem(mem)
                .build()
                .unwrap()
                .simulator()
                .state_bytes()
        };
        let full = bytes(MemSpec::Full);
        let compact = bytes(MemSpec::Compact);
        assert_eq!(
            compact * 2,
            full,
            "{threads} threads: compact should be exactly half of {full}"
        );
    }
}

/// `mem=compact` rides through the scenario text format and the batch
/// driver end to end.
#[test]
fn compact_spec_line_runs_through_driver() {
    let line = "name=diet topology=torus2d:6:6 scheme=sos:1.7 mode=discrete \
                rounding=randomized seed=9 init=point:0:3600 stop=rounds:50 mem=compact";
    let spec: ScenarioSpec = line.parse().unwrap();
    assert_eq!(spec.mem, MemSpec::Compact);
    assert!(
        spec.to_string().contains("mem=compact"),
        "display keeps mem"
    );
    let batch = Driver::new().run_batch(&[spec]);
    assert!(batch.errors.is_empty(), "driver failed: {:?}", batch.errors);
    let report = &batch.scenarios[0].report;
    assert_eq!(report.rounds, 50);
    assert!(report.final_metrics.max_minus_avg.is_finite());
}
