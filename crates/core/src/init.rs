//! Initial load distributions.

use sodiff_graph::NodeId;

use crate::rng::SplitMix64;

/// How the `m` tokens are placed at round 0.
///
/// The paper's default initialization assigns `1000·n` tokens to a fixed
/// node `v0` ([`InitialLoad::point`]); the alternatives are used in the
/// initial-load sensitivity experiment (Figure 2) and in tests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InitialLoad {
    /// All `total` tokens on one node.
    Point {
        /// The loaded node.
        node: NodeId,
        /// Total number of tokens.
        total: i64,
    },
    /// Every node starts with the same number of tokens.
    EqualPerNode(i64),
    /// `total` tokens dropped on nodes independently and uniformly.
    UniformRandom {
        /// Total number of tokens.
        total: i64,
        /// RNG seed.
        seed: u64,
    },
    /// Node `i` starts with `i·max_per_node/(n−1)` tokens (a linear ramp).
    Ramp {
        /// Load of the last node.
        max_per_node: i64,
    },
    /// Explicit per-node loads.
    Custom(Vec<i64>),
}

impl InitialLoad {
    /// All `total` tokens on `node` (the paper's default with
    /// `total = 1000·n`).
    pub fn point(node: NodeId, total: i64) -> Self {
        InitialLoad::Point { node, total }
    }

    /// The paper's default for an `n`-node network: `1000·n` tokens on
    /// node 0.
    pub fn paper_default(n: usize) -> Self {
        InitialLoad::Point {
            node: 0,
            total: 1000 * n as i64,
        }
    }

    /// Validates the distribution against an `n`-node network, returning
    /// the message the builder wraps into
    /// [`crate::BuildError::InvalidInitialLoad`].
    pub(crate) fn check(&self, n: usize) -> Result<(), String> {
        match self {
            InitialLoad::Point { node, total } => {
                if *node as usize >= n {
                    return Err(format!(
                        "point load node {node} out of range (graph has {n} nodes)"
                    ));
                }
                if *total < 0 {
                    return Err(format!("negative total load {total}"));
                }
            }
            InitialLoad::EqualPerNode(per) => {
                if *per < 0 {
                    return Err(format!("negative per-node load {per}"));
                }
            }
            InitialLoad::UniformRandom { total, .. } => {
                if *total < 0 {
                    return Err(format!("negative total load {total}"));
                }
            }
            InitialLoad::Ramp { max_per_node } => {
                if *max_per_node < 0 {
                    return Err(format!("negative ramp load {max_per_node}"));
                }
            }
            InitialLoad::Custom(loads) => {
                if loads.len() != n {
                    return Err(format!(
                        "custom load vector length mismatch: {} loads for {n} nodes",
                        loads.len()
                    ));
                }
            }
        }
        Ok(())
    }

    /// Extra validation for compact-state runs (`mem=compact`), where
    /// per-node loads are stored as `i32`: the distribution's total —
    /// and, for `Custom`, every per-node value — must fit in an `i32`
    /// with 4× headroom, so transient concentrations (the whole total
    /// piling onto one node) plus a reasonable amount of injected load
    /// cannot overflow the narrow storage.
    pub(crate) fn check_compact(&self, n: usize) -> Result<(), String> {
        const LIMIT: i64 = (i32::MAX / 4) as i64;
        if let InitialLoad::Custom(loads) = self {
            for &l in loads {
                if l.unsigned_abs() > LIMIT as u64 {
                    return Err(format!(
                        "custom per-node load {l} too large for mem=compact \
                         (i32 storage caps magnitudes at {LIMIT})"
                    ));
                }
            }
        }
        let total = self.total(n);
        if total > LIMIT {
            return Err(format!(
                "total load {total} too large for mem=compact \
                 (i32 storage caps totals at {LIMIT})"
            ));
        }
        Ok(())
    }

    /// Materializes the distribution for an `n`-node network.
    ///
    /// # Panics
    ///
    /// Panics if the distribution references a node `>= n`, a negative
    /// total, or a `Custom` vector of the wrong length.
    pub fn materialize(&self, n: usize) -> Vec<i64> {
        match self {
            InitialLoad::Point { node, total } => {
                assert!((*node as usize) < n, "point load node out of range");
                assert!(*total >= 0, "negative total load");
                let mut loads = vec![0; n];
                loads[*node as usize] = *total;
                loads
            }
            InitialLoad::EqualPerNode(per) => {
                assert!(*per >= 0, "negative per-node load");
                vec![*per; n]
            }
            InitialLoad::UniformRandom { total, seed } => {
                assert!(*total >= 0, "negative total load");
                let mut loads = vec![0i64; n];
                let mut rng = SplitMix64::new(*seed);
                for _ in 0..*total {
                    let v = (rng.next_u64() % n as u64) as usize;
                    loads[v] += 1;
                }
                loads
            }
            InitialLoad::Ramp { max_per_node } => {
                assert!(*max_per_node >= 0, "negative ramp load");
                if n <= 1 {
                    return vec![*max_per_node; n];
                }
                (0..n)
                    .map(|i| max_per_node * i as i64 / (n as i64 - 1))
                    .collect()
            }
            InitialLoad::Custom(loads) => {
                assert_eq!(loads.len(), n, "custom load vector length mismatch");
                loads.clone()
            }
        }
    }

    /// Total number of tokens this distribution places on `n` nodes.
    pub fn total(&self, n: usize) -> i64 {
        match self {
            InitialLoad::Point { total, .. } => *total,
            InitialLoad::EqualPerNode(per) => per * n as i64,
            InitialLoad::UniformRandom { total, .. } => *total,
            InitialLoad::Ramp { .. } | InitialLoad::Custom(_) => self.materialize(n).iter().sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_load_shape() {
        let loads = InitialLoad::point(2, 100).materialize(4);
        assert_eq!(loads, vec![0, 0, 100, 0]);
    }

    #[test]
    fn paper_default_is_1000n_at_node0() {
        let init = InitialLoad::paper_default(16);
        let loads = init.materialize(16);
        assert_eq!(loads[0], 16_000);
        assert_eq!(loads.iter().sum::<i64>(), 16_000);
        assert_eq!(init.total(16), 16_000);
    }

    #[test]
    fn uniform_random_conserves_total() {
        let init = InitialLoad::UniformRandom {
            total: 5000,
            seed: 3,
        };
        let loads = init.materialize(50);
        assert_eq!(loads.iter().sum::<i64>(), 5000);
        assert_eq!(loads, init.materialize(50)); // deterministic
    }

    #[test]
    fn ramp_is_monotone() {
        let loads = InitialLoad::Ramp { max_per_node: 90 }.materialize(10);
        assert_eq!(loads[0], 0);
        assert_eq!(loads[9], 90);
        assert!(loads.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn custom_roundtrips() {
        let v = vec![5, 0, 7];
        assert_eq!(InitialLoad::Custom(v.clone()).materialize(3), v);
        assert_eq!(InitialLoad::Custom(v).total(3), 12);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn point_out_of_range_panics() {
        InitialLoad::point(9, 1).materialize(4);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn custom_wrong_length_panics() {
        InitialLoad::Custom(vec![1, 2]).materialize(3);
    }
}
