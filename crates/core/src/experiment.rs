//! The unified experiment API: a typestate builder over graph, scheme,
//! mode, speeds, initial load, hybrid policy, and stop condition.
//!
//! [`Experiment::on`] starts an [`ExperimentBuilder`] in the
//! [`NeedsMode`] state; choosing continuous or discrete execution moves it
//! to [`Ready`], where [`ExperimentBuilder::build`] validates every input
//! and returns a typed [`BuildError`] instead of panicking. The resulting
//! [`Experiment`] is a validated, reusable description: it can mint fresh
//! [`Simulator`]s, run itself to completion (including the paper's SOS→FOS
//! hybrid switch via [`ExperimentBuilder::hybrid`]), or measure the
//! discrete/continuous deviation of its configuration.
//!
//! # Example
//!
//! ```
//! use sodiff_core::prelude::*;
//! use sodiff_graph::generators;
//!
//! let graph = generators::torus2d(16, 16);
//! let report = Experiment::on(&graph)
//!     .discrete(Rounding::randomized(42))
//!     .sos(1.9)
//!     .stop(StopCondition::MaxRounds(400))
//!     .build()
//!     .unwrap()
//!     .run();
//! assert!(report.final_metrics.max_minus_avg < 20.0);
//! ```

use std::marker::PhantomData;

use sodiff_graph::{Graph, Speeds};

use crate::checkpoint::CheckpointConfig;
use crate::churn::ChurnSpec;
use crate::deviation::DeviationSeries;
use crate::engine::{FlowMemory, Mode, RunReport, SimulationConfig, Simulator, StopCondition};
use crate::error::BuildError;
use crate::fault::FaultSpec;
use crate::hybrid::SwitchPolicy;
use crate::init::InitialLoad;
use crate::load::LoadSpec;
use crate::observer::Observer;
use crate::rounding::{Rounding, RoundingSpec};
use crate::scenario::MemSpec;
use crate::scheme::Scheme;

/// Typestate: the builder still needs an execution mode
/// ([`ExperimentBuilder::continuous`] or [`ExperimentBuilder::discrete`]).
#[derive(Debug)]
pub struct NeedsMode(());

/// Typestate: the builder has a mode and can [`ExperimentBuilder::build`].
#[derive(Debug)]
pub struct Ready(());

/// Scheme selection deferred to `build` so invalid `β` values surface as
/// [`BuildError::InvalidBeta`] rather than a panic.
#[derive(Debug, Clone, Copy)]
enum SchemeChoice {
    Fos,
    SosBeta(f64),
    Given(Scheme),
}

/// Mode selection, with or without a pre-seeded rounding.
#[derive(Debug, Clone, Copy)]
enum ModeChoice {
    Continuous,
    Seeded(Rounding),
    Spec(RoundingSpec),
}

/// Accumulated builder state (shared by both typestates).
#[derive(Debug, Clone)]
struct Parts<'g> {
    graph: &'g Graph,
    scheme: SchemeChoice,
    mode: Option<ModeChoice>,
    seed: Option<u64>,
    speeds: Option<Speeds>,
    flow_memory: FlowMemory,
    threads: usize,
    init: Option<InitialLoad>,
    hybrid: Option<SwitchPolicy>,
    stop: StopCondition,
    faults: FaultSpec,
    load: LoadSpec,
    churn: ChurnSpec,
    ckpt: Option<CheckpointConfig>,
    mem: MemSpec,
}

/// Typestate builder for [`Experiment`]s; see [`Experiment::on`].
///
/// The type parameter tracks whether an execution mode has been chosen:
/// `build` only exists in the [`Ready`] state, so "forgot to pick
/// continuous vs discrete" is a compile error, not a runtime panic.
#[derive(Debug)]
pub struct ExperimentBuilder<'g, S = NeedsMode> {
    parts: Parts<'g>,
    _state: PhantomData<S>,
}

impl<'g, S> ExperimentBuilder<'g, S> {
    fn transition<T>(self) -> ExperimentBuilder<'g, T> {
        ExperimentBuilder {
            parts: self.parts,
            _state: PhantomData,
        }
    }

    /// Uses the first-order scheme (the default).
    pub fn fos(mut self) -> Self {
        self.parts.scheme = SchemeChoice::Fos;
        self
    }

    /// Uses the second-order scheme with relaxation parameter `beta`.
    /// The convergence range `β ∈ (0, 2)` is checked at
    /// [`ExperimentBuilder::build`], which reports violations as
    /// [`BuildError::InvalidBeta`].
    pub fn sos(mut self, beta: f64) -> Self {
        self.parts.scheme = SchemeChoice::SosBeta(beta);
        self
    }

    /// Uses a pre-constructed [`Scheme`] (still re-validated at build):
    /// FOS/SOS diffusion, [`Scheme::dimension_exchange`], or one of the
    /// [`Scheme::matching_round_robin`] / [`Scheme::matching_random`]
    /// matching-based schemes. Pairwise schemes need a graph with at
    /// least one edge ([`BuildError::NoColoring`] /
    /// [`BuildError::NoMatching`]) and `λ ∈ (0, 1]`
    /// ([`BuildError::InvalidLambda`]).
    pub fn scheme(mut self, scheme: Scheme) -> Self {
        self.parts.scheme = SchemeChoice::Given(scheme);
        self
    }

    /// Sets heterogeneous node speeds. The length is checked against the
    /// graph at build ([`BuildError::SpeedsLengthMismatch`]).
    pub fn speeds(mut self, speeds: Speeds) -> Self {
        self.parts.speeds = Some(speeds);
        self
    }

    /// Sets the SOS flow-memory source (discrete mode; default
    /// [`FlowMemory::Rounded`], the stateless process the paper analyzes).
    pub fn flow_memory(mut self, memory: FlowMemory) -> Self {
        self.parts.flow_memory = memory;
        self
    }

    /// Runs rounds on a persistent pool of `threads` workers; results are
    /// bit-identical to the sequential executor. `0` is reported as
    /// [`BuildError::ZeroThreads`] at build.
    pub fn threads(mut self, threads: usize) -> Self {
        self.parts.threads = threads;
        self
    }

    /// Sets the initial token placement (default:
    /// [`InitialLoad::paper_default`], `1000·n` tokens on node 0).
    /// Out-of-range nodes and negative totals are reported as
    /// [`BuildError::InvalidInitialLoad`] at build.
    pub fn init(mut self, init: InitialLoad) -> Self {
        self.parts.init = Some(init);
        self
    }

    /// Sets the RNG seed used to resolve seedless [`RoundingSpec`]s (see
    /// [`ExperimentBuilder::discrete_spec`]).
    pub fn seed(mut self, seed: u64) -> Self {
        self.parts.seed = Some(seed);
        self
    }

    /// Attaches the paper's SOS→FOS hybrid switch (Section VI): the
    /// policy is evaluated before every round of [`Experiment::run`] and
    /// flips the scheme to FOS at most once. This replaces the old
    /// `run_hybrid*` free functions. Only the diffusion schemes support
    /// it — with a pairwise scheme, `build` reports
    /// [`BuildError::HybridRequiresDiffusion`].
    pub fn hybrid(mut self, policy: SwitchPolicy) -> Self {
        self.parts.hybrid = Some(policy);
        self
    }

    /// Sets the stop condition of [`Experiment::run`] (default:
    /// `MaxRounds(1000)`).
    pub fn stop(mut self, condition: StopCondition) -> Self {
        self.parts.stop = condition;
        self
    }

    /// Sets the deterministic fault-injection plan (default:
    /// [`FaultSpec::none`]). Probabilities outside `[0, 1]` are reported
    /// as [`BuildError::InvalidFaults`] at build.
    pub fn faults(mut self, faults: FaultSpec) -> Self {
        self.parts.faults = faults;
        self
    }

    /// Sets the deterministic dynamic-load plan (default:
    /// [`LoadSpec::none`]). Out-of-range generator parameters are
    /// reported as [`BuildError::InvalidLoad`] at build.
    pub fn load(mut self, load: LoadSpec) -> Self {
        self.parts.load = load;
        self
    }

    /// Sets the deterministic live-topology churn plan (default:
    /// [`ChurnSpec::none`]): epoch-aligned node departures with
    /// conservation-exact load handoff and (re)arrivals over the
    /// graph's reserved capacity. Out-of-range probabilities or initial
    /// loads are reported as [`BuildError::InvalidChurn`] at build.
    pub fn churn(mut self, churn: ChurnSpec) -> Self {
        self.parts.churn = churn;
        self
    }

    /// Attaches a periodic checkpoint sink (see [`crate::checkpoint`]):
    /// the engine snapshots the full evolving state every
    /// `ckpt.policy.every` rounds (and on a divergence-watchdog trip),
    /// so a killed run can be resumed **bit-identically** with
    /// [`crate::checkpoint::read_checkpoint`]. Scenario files opt in
    /// with the `ckpt=every:N:DIR` key. Degenerate policies (zero
    /// interval, empty directory) are reported as
    /// [`BuildError::InvalidCheckpoint`] at build.
    pub fn checkpoint(mut self, ckpt: CheckpointConfig) -> Self {
        self.parts.ckpt = Some(ckpt);
        self
    }

    /// Selects the state-storage width (default [`MemSpec::Full`]).
    /// [`MemSpec::Compact`] stores per-node and per-edge state as
    /// f32/i32 — half the resident bytes — while all arithmetic stays
    /// f64/i64; see [`MemSpec`] for the accuracy contract. Discrete
    /// initial loads whose total exceeds the i32 range are reported as
    /// [`BuildError::InvalidInitialLoad`] at build.
    pub fn mem(mut self, mem: MemSpec) -> Self {
        self.parts.mem = mem;
        self
    }
}

impl<'g> ExperimentBuilder<'g, NeedsMode> {
    /// Continuous (idealized) execution: loads are `f64`, flows are not
    /// rounded.
    pub fn continuous(mut self) -> ExperimentBuilder<'g, Ready> {
        self.parts.mode = Some(ModeChoice::Continuous);
        self.transition()
    }

    /// Discrete execution with a fully specified (seed included) rounding
    /// scheme.
    pub fn discrete(mut self, rounding: Rounding) -> ExperimentBuilder<'g, Ready> {
        self.parts.mode = Some(ModeChoice::Seeded(rounding));
        self.transition()
    }

    /// Discrete execution with a seedless rounding kind; randomized kinds
    /// take their seed from [`ExperimentBuilder::seed`], and a missing
    /// seed is reported as [`BuildError::MissingSeed`] at build.
    pub fn discrete_spec(mut self, spec: RoundingSpec) -> ExperimentBuilder<'g, Ready> {
        self.parts.mode = Some(ModeChoice::Spec(spec));
        self.transition()
    }
}

impl<'g> ExperimentBuilder<'g, Ready> {
    /// Validates the accumulated configuration.
    ///
    /// # Errors
    ///
    /// Every invalid input surfaces as the matching [`BuildError`]
    /// variant: [`BuildError::EmptyGraph`], [`BuildError::InvalidBeta`],
    /// [`BuildError::InvalidLambda`], [`BuildError::NoColoring`],
    /// [`BuildError::NoMatching`],
    /// [`BuildError::HybridRequiresDiffusion`],
    /// [`BuildError::SpeedsLengthMismatch`], [`BuildError::MissingSeed`],
    /// [`BuildError::ZeroThreads`], [`BuildError::InvalidInitialLoad`],
    /// [`BuildError::InvalidStopCondition`], [`BuildError::InvalidFaults`],
    /// or [`BuildError::InvalidLoad`].
    pub fn build(self) -> Result<Experiment<'g>, BuildError> {
        let Parts {
            graph,
            scheme,
            mode,
            seed,
            speeds,
            flow_memory,
            threads,
            init,
            hybrid,
            stop,
            faults,
            load,
            churn,
            ckpt,
            mem,
        } = self.parts;
        let n = graph.node_count();
        if n == 0 {
            return Err(BuildError::EmptyGraph);
        }
        let scheme = match scheme {
            SchemeChoice::Fos => Scheme::Fos,
            SchemeChoice::SosBeta(beta) => Scheme::try_sos(beta)?,
            SchemeChoice::Given(scheme) => scheme,
        };
        // Parameter ranges (β, λ) plus the pairwise schemes' structural
        // needs (an edge coloring / a matching exists iff the graph has
        // edges) — the same check the simulator's scheme kernel performs,
        // pulled forward so `Experiment::simulator` cannot fail later.
        crate::scheme_kernel::SchemeKernel::validate(scheme, graph)?;
        if hybrid.is_some() && !scheme.is_diffusion() {
            return Err(BuildError::HybridRequiresDiffusion(scheme.to_string()));
        }
        let mode = match mode.expect("typestate guarantees a mode") {
            ModeChoice::Continuous => Mode::Continuous,
            ModeChoice::Seeded(rounding) => Mode::Discrete(rounding),
            ModeChoice::Spec(spec) => Mode::Discrete(spec.seeded(seed)?),
        };
        if let Some(speeds) = &speeds {
            if speeds.len() != n {
                return Err(BuildError::SpeedsLengthMismatch {
                    expected: n,
                    got: speeds.len(),
                });
            }
        }
        if threads == 0 {
            return Err(BuildError::ZeroThreads);
        }
        let init = init.unwrap_or_else(|| InitialLoad::paper_default(n));
        init.check(n).map_err(BuildError::InvalidInitialLoad)?;
        if mem == MemSpec::Compact {
            init.check_compact(n)
                .map_err(BuildError::InvalidInitialLoad)?;
        }
        stop.check()?;
        faults.check()?;
        load.check()?;
        churn.check()?;
        if let Some(ckpt) = &ckpt {
            if ckpt.policy.every == 0 {
                return Err(BuildError::InvalidCheckpoint(
                    "interval must be positive".into(),
                ));
            }
            if ckpt.policy.dir.as_os_str().is_empty() {
                return Err(BuildError::InvalidCheckpoint(
                    "directory must not be empty".into(),
                ));
            }
        }
        Ok(Experiment {
            graph,
            config: SimulationConfig {
                scheme,
                mode,
                speeds,
                flow_memory,
                threads,
                faults,
                load,
                churn,
                ckpt,
                mem,
            },
            init,
            hybrid,
            stop,
        })
    }
}

/// A validated, reusable experiment description: graph, scheme, mode,
/// speeds, initial load, optional hybrid switch policy, and stop
/// condition.
///
/// Built by [`Experiment::on`]'s [`ExperimentBuilder`]; see the module
/// docs above for an end-to-end example.
#[derive(Debug, Clone)]
pub struct Experiment<'g> {
    graph: &'g Graph,
    config: SimulationConfig,
    init: InitialLoad,
    hybrid: Option<SwitchPolicy>,
    stop: StopCondition,
}

impl<'g> Experiment<'g> {
    /// Starts building an experiment on `graph`.
    pub fn on(graph: &'g Graph) -> ExperimentBuilder<'g, NeedsMode> {
        ExperimentBuilder {
            parts: Parts {
                graph,
                scheme: SchemeChoice::Fos,
                mode: None,
                seed: None,
                speeds: None,
                flow_memory: FlowMemory::default(),
                threads: 1,
                init: None,
                hybrid: None,
                stop: StopCondition::MaxRounds(1000),
                faults: FaultSpec::none(),
                load: LoadSpec::none(),
                churn: ChurnSpec::none(),
                ckpt: None,
                mem: MemSpec::default(),
            },
            _state: PhantomData,
        }
    }

    /// The network this experiment runs on.
    pub fn graph(&self) -> &'g Graph {
        self.graph
    }

    /// The diffusion scheme.
    pub fn scheme(&self) -> Scheme {
        self.config.scheme
    }

    /// Continuous or discrete execution.
    pub fn mode(&self) -> Mode {
        self.config.mode
    }

    /// Worker threads of the executor.
    pub fn threads(&self) -> usize {
        self.config.threads
    }

    /// The initial token placement.
    pub fn initial_load(&self) -> &InitialLoad {
        &self.init
    }

    /// The hybrid switch policy, if any.
    pub fn hybrid_policy(&self) -> Option<SwitchPolicy> {
        self.hybrid
    }

    /// The fault-injection plan ([`FaultSpec::none`] when unset).
    pub fn faults(&self) -> FaultSpec {
        self.config.faults
    }

    /// The dynamic-load plan ([`LoadSpec::none`] when unset).
    pub fn load(&self) -> LoadSpec {
        self.config.load
    }

    /// The live-topology churn plan ([`ChurnSpec::none`] when unset).
    pub fn churn(&self) -> ChurnSpec {
        self.config.churn
    }

    /// The state-storage width ([`MemSpec::Full`] when unset).
    pub fn mem(&self) -> MemSpec {
        self.config.mem
    }

    /// The stop condition of [`Experiment::run`].
    pub fn stop_condition(&self) -> StopCondition {
        self.stop
    }

    /// Mints a fresh simulator at round 0. The experiment can create any
    /// number of independent simulators (e.g. for lockstep comparisons).
    pub fn simulator(&self) -> Simulator<'g> {
        Simulator::build(self.graph, self.config.clone(), self.init.clone(), None)
            .expect("experiment was validated at build")
    }

    /// Mints a simulator that executes rounds on an externally owned
    /// worker pool (the batch [`crate::Driver`]'s), overriding the
    /// configured thread count with the pool's.
    pub(crate) fn simulator_on(
        &self,
        pool: std::sync::Arc<crate::pool::WorkerPool>,
    ) -> Simulator<'g> {
        Simulator::build(
            self.graph,
            self.config.clone(),
            self.init.clone(),
            Some(pool),
        )
        .expect("experiment was validated at build")
    }

    /// Runs a fresh simulator to the stop condition, applying the hybrid
    /// policy if one is attached, and returns the report.
    pub fn run(&self) -> RunReport {
        self.run_with(&mut crate::observer::NullObserver)
    }

    /// Like [`Experiment::run`], invoking `observer` after every round.
    pub fn run_with(&self, observer: &mut dyn Observer) -> RunReport {
        let mut sim = self.simulator();
        self.run_on(&mut sim, observer)
    }

    /// Runs an existing simulator (typically from
    /// [`Experiment::simulator`]) to this experiment's stop condition
    /// with its hybrid policy.
    pub fn run_on(&self, sim: &mut Simulator<'g>, observer: &mut dyn Observer) -> RunReport {
        match self.hybrid {
            Some(policy) => sim.run_hybrid_with(policy, self.stop, observer),
            None => sim.run_until_with(self.stop, observer),
        }
    }

    /// Runs this experiment's discrete process in lockstep with its
    /// continuous twin for `rounds` rounds, recording the per-round
    /// deviation `max_k |x_k^D − x_k^C|` (paper Theorems 3, 8, 9).
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::RequiresDiscrete`] for continuous-mode
    /// experiments (they have no rounding to deviate from).
    pub fn coupled_deviation(&self, rounds: usize) -> Result<DeviationSeries, BuildError> {
        if !matches!(self.config.mode, Mode::Discrete(_)) {
            return Err(BuildError::RequiresDiscrete("coupled_deviation"));
        }
        let mut discrete = self.simulator();
        let continuous_config = SimulationConfig {
            scheme: self.config.scheme,
            mode: Mode::Continuous,
            speeds: self.config.speeds.clone(),
            flow_memory: self.config.flow_memory,
            threads: self.config.threads,
            faults: self.config.faults,
            load: self.config.load,
            churn: self.config.churn,
            // The twin is a transient comparison run; never checkpoint it.
            ckpt: None,
            // The twin shares the storage width so compact-mode deviation
            // measurements compare the process actually being run.
            mem: self.config.mem,
        };
        let mut continuous =
            Simulator::build(self.graph, continuous_config, self.init.clone(), None)
                .expect("continuous twin of a validated experiment");
        let mut per_round = Vec::with_capacity(rounds);
        for _ in 0..rounds {
            discrete.step();
            continuous.step();
            per_round.push(discrete.deviation_from(&continuous));
        }
        Ok(DeviationSeries { per_round })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::BuildError;
    use sodiff_graph::{generators, GraphBuilder};

    #[test]
    fn builder_minimal_discrete() {
        let g = generators::torus2d(4, 4);
        let exp = Experiment::on(&g)
            .discrete(Rounding::nearest())
            .build()
            .unwrap();
        assert_eq!(exp.scheme(), Scheme::fos());
        assert_eq!(exp.threads(), 1);
        let report = exp.run();
        assert_eq!(report.rounds, 1000);
        assert_eq!(report.switch_round, None);
    }

    #[test]
    fn invalid_beta_is_reported() {
        let g = generators::cycle(4);
        for beta in [0.0, -1.0, 2.0, 3.5, f64::NAN] {
            let err = Experiment::on(&g)
                .continuous()
                .sos(beta)
                .build()
                .unwrap_err();
            assert!(matches!(err, BuildError::InvalidBeta(_)), "beta {beta}");
        }
        // Pre-built schemes with hand-rolled bad betas are re-validated.
        let err = Experiment::on(&g)
            .continuous()
            .scheme(Scheme::Sos { beta: 7.0 })
            .build()
            .unwrap_err();
        assert_eq!(err, BuildError::InvalidBeta(7.0));
    }

    #[test]
    fn speeds_mismatch_is_reported() {
        let g = generators::cycle(6);
        let err = Experiment::on(&g)
            .discrete(Rounding::nearest())
            .speeds(Speeds::uniform(5))
            .build()
            .unwrap_err();
        assert_eq!(
            err,
            BuildError::SpeedsLengthMismatch {
                expected: 6,
                got: 5
            }
        );
    }

    #[test]
    fn empty_graph_is_reported() {
        let g = GraphBuilder::new(0).build();
        let err = Experiment::on(&g).continuous().build().unwrap_err();
        assert_eq!(err, BuildError::EmptyGraph);
    }

    #[test]
    fn missing_seed_is_reported() {
        let g = generators::cycle(4);
        let err = Experiment::on(&g)
            .discrete_spec(RoundingSpec::Randomized)
            .build()
            .unwrap_err();
        assert!(matches!(err, BuildError::MissingSeed("randomized")));
        // With a seed the same spec builds.
        let exp = Experiment::on(&g)
            .discrete_spec(RoundingSpec::Randomized)
            .seed(5)
            .build()
            .unwrap();
        assert_eq!(exp.mode(), Mode::Discrete(Rounding::randomized(5)));
        // Deterministic kinds never need one.
        assert!(Experiment::on(&g)
            .discrete_spec(RoundingSpec::Nearest)
            .build()
            .is_ok());
    }

    #[test]
    fn zero_threads_is_reported() {
        let g = generators::cycle(4);
        let err = Experiment::on(&g)
            .continuous()
            .threads(0)
            .build()
            .unwrap_err();
        assert_eq!(err, BuildError::ZeroThreads);
    }

    #[test]
    fn bad_initial_load_is_reported() {
        let g = generators::cycle(4);
        let err = Experiment::on(&g)
            .discrete(Rounding::nearest())
            .init(InitialLoad::point(9, 10))
            .build()
            .unwrap_err();
        assert!(matches!(err, BuildError::InvalidInitialLoad(_)));
        let err = Experiment::on(&g)
            .discrete(Rounding::nearest())
            .init(InitialLoad::Custom(vec![1, 2]))
            .build()
            .unwrap_err();
        assert!(matches!(err, BuildError::InvalidInitialLoad(_)));
    }

    #[test]
    fn bad_stop_condition_is_reported() {
        let g = generators::cycle(4);
        let err = Experiment::on(&g)
            .continuous()
            .stop(StopCondition::Plateau {
                window: 0,
                max_rounds: 10,
            })
            .build()
            .unwrap_err();
        assert!(matches!(err, BuildError::InvalidStopCondition(_)));
    }

    #[test]
    fn hybrid_run_reports_switch_round() {
        let g = generators::torus2d(8, 8);
        let spec = sodiff_linalg::spectral::analyze(&g, &Speeds::uniform(64));
        let report = Experiment::on(&g)
            .discrete(Rounding::randomized(3))
            .sos(spec.beta_opt())
            .hybrid(SwitchPolicy::AtRound(40))
            .stop(StopCondition::MaxRounds(120))
            .build()
            .unwrap()
            .run();
        assert_eq!(report.switch_round, Some(40));
        assert_eq!(report.rounds, 120);
    }

    #[test]
    fn experiment_run_matches_hand_built_simulator() {
        let g = generators::torus2d(6, 6);
        let exp = Experiment::on(&g)
            .discrete(Rounding::randomized(11))
            .sos(1.8)
            .stop(StopCondition::MaxRounds(150))
            .build()
            .unwrap();
        let report = exp.run();
        let mut sim = exp.simulator();
        let manual = sim.run_until(StopCondition::MaxRounds(150));
        assert_eq!(report, manual, "Experiment::run must be bit-identical");
    }

    #[test]
    fn coupled_deviation_requires_discrete() {
        let g = generators::cycle(6);
        let exp = Experiment::on(&g).continuous().build().unwrap();
        assert!(matches!(
            exp.coupled_deviation(5),
            Err(BuildError::RequiresDiscrete(_))
        ));
        let exp = Experiment::on(&g)
            .discrete(Rounding::randomized(1))
            .init(InitialLoad::point(0, 600))
            .build()
            .unwrap();
        let series = exp.coupled_deviation(20).unwrap();
        assert_eq!(series.per_round.len(), 20);
    }
}
