//! Rounding schemes that turn continuous scheduled flows into integral
//! token movements (paper Section III-B).
//!
//! A discrete process is `D(x) = R_D(C(x))` (Definition 1): the continuous
//! scheme computes a scheduled flow `Ŷ_e` for every edge, and the rounding
//! scheme maps it to an integer. Flows are stored per canonical edge
//! (`u < v`), positive meaning `u → v`; the *sender* of an edge is the
//! endpoint whose outflow is positive, and node-centric schemes (the
//! paper's randomized framework) round all outgoing flows of one node
//! together.

use std::fmt;
use std::str::FromStr;

use sodiff_graph::Graph;

use crate::error::{BuildError, ParseError};
use crate::rng::SplitMix64;

/// A rounding scheme *kind*, without its RNG seed: the serializable form
/// used by [`crate::ScenarioSpec`] and the builder's
/// [`crate::ExperimentBuilder::discrete_spec`]. Seeds are supplied
/// separately (`seed=` / `.seed(..)`), so the same spec text can be run
/// under many seeds; [`RoundingSpec::seeded`] resolves the pair into a
/// concrete [`Rounding`], reporting a missing seed as a
/// [`BuildError::MissingSeed`] instead of panicking.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RoundingSpec {
    /// The paper's randomized rounding framework (needs a seed).
    #[default]
    Randomized,
    /// Deterministic truncation of flow magnitudes.
    RoundDown,
    /// Deterministic round-to-nearest.
    Nearest,
    /// Independent per-edge unbiased rounding (needs a seed).
    UnbiasedEdge,
}

impl RoundingSpec {
    /// Returns `true` if this kind draws random bits and therefore needs
    /// a seed.
    pub fn needs_seed(&self) -> bool {
        matches!(self, RoundingSpec::Randomized | RoundingSpec::UnbiasedEdge)
    }

    /// Resolves the kind plus an optional seed into a concrete
    /// [`Rounding`].
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::MissingSeed`] when the kind needs randomness
    /// but no seed was provided.
    pub fn seeded(self, seed: Option<u64>) -> Result<Rounding, BuildError> {
        match self {
            RoundingSpec::Randomized => seed
                .map(Rounding::randomized)
                .ok_or(BuildError::MissingSeed("randomized")),
            RoundingSpec::RoundDown => Ok(Rounding::round_down()),
            RoundingSpec::Nearest => Ok(Rounding::nearest()),
            RoundingSpec::UnbiasedEdge => seed
                .map(Rounding::unbiased_edge)
                .ok_or(BuildError::MissingSeed("unbiased per-edge")),
        }
    }
}

impl From<Rounding> for RoundingSpec {
    /// Forgets the seed, keeping the kind.
    fn from(r: Rounding) -> Self {
        match r {
            Rounding::RandomizedFramework { .. } => RoundingSpec::Randomized,
            Rounding::RoundDown => RoundingSpec::RoundDown,
            Rounding::Nearest => RoundingSpec::Nearest,
            Rounding::UnbiasedEdge { .. } => RoundingSpec::UnbiasedEdge,
        }
    }
}

impl fmt::Display for RoundingSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            RoundingSpec::Randomized => "randomized",
            RoundingSpec::RoundDown => "round_down",
            RoundingSpec::Nearest => "nearest",
            RoundingSpec::UnbiasedEdge => "unbiased",
        };
        f.write_str(name)
    }
}

impl FromStr for RoundingSpec {
    type Err = ParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "randomized" => Ok(RoundingSpec::Randomized),
            "round_down" => Ok(RoundingSpec::RoundDown),
            "nearest" => Ok(RoundingSpec::Nearest),
            "unbiased" => Ok(RoundingSpec::UnbiasedEdge),
            other => Err(ParseError::new(format!(
                "unknown rounding '{other}' (expected randomized, round_down, nearest, \
                 or unbiased)"
            ))),
        }
    }
}

/// The rounding scheme of a discrete diffusion process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rounding {
    /// The paper's randomized rounding framework (Section III-B): every
    /// node floors its outgoing flows, then distributes the `⌈r⌉` excess
    /// tokens (where `r` is the sum of the dropped fractional parts)
    /// randomly — each token leaves with probability `r/⌈r⌉` and picks
    /// neighbor `j` with probability `{Ŷ_{i,j}}/r`.
    RandomizedFramework {
        /// Seed of the per-(node, round) random streams.
        seed: u64,
    },
    /// Deterministic "always round down" (magnitudes are truncated); the
    /// baseline the paper cites from Sauerwald & Sun.
    RoundDown,
    /// Deterministic round-to-nearest (half away from zero).
    Nearest,
    /// Independent per-edge unbiased randomized rounding: round up with
    /// probability equal to the fractional part (the Friedrich–Gairing–
    /// Sauerwald style scheme; may overdraw a node, producing negative
    /// load more readily than the framework above).
    UnbiasedEdge {
        /// Seed of the per-(edge, round) random streams.
        seed: u64,
    },
}

impl Rounding {
    /// The paper's randomized rounding framework.
    pub fn randomized(seed: u64) -> Self {
        Rounding::RandomizedFramework { seed }
    }

    /// Deterministic truncation of flow magnitudes.
    pub fn round_down() -> Self {
        Rounding::RoundDown
    }

    /// Deterministic round-to-nearest.
    pub fn nearest() -> Self {
        Rounding::Nearest
    }

    /// Independent per-edge unbiased rounding.
    pub fn unbiased_edge(seed: u64) -> Self {
        Rounding::UnbiasedEdge { seed }
    }

    /// Rounds the scheduled flows into `out` (one integer per canonical
    /// edge, same sign convention).
    ///
    /// `round` is the current round number, used to key the random streams
    /// so that every round draws fresh randomness while remaining
    /// reproducible and iteration-order independent.
    ///
    /// This is the reference (unchunked) implementation; the simulator's
    /// hot path runs the equivalent fused kernels in `crate::kernel`,
    /// which are tested against this form.
    ///
    /// # Panics
    ///
    /// Panics if the slice lengths mismatch the graph.
    pub fn round_flows(&self, graph: &Graph, scheduled: &[f64], round: u64, out: &mut [i64]) {
        assert_eq!(scheduled.len(), graph.edge_count());
        assert_eq!(out.len(), graph.edge_count());
        match *self {
            Rounding::RoundDown => {
                for (o, &s) in out.iter_mut().zip(scheduled) {
                    *o = s.trunc() as i64;
                }
            }
            Rounding::Nearest => {
                for (o, &s) in out.iter_mut().zip(scheduled) {
                    *o = s.round() as i64;
                }
            }
            Rounding::UnbiasedEdge { seed } => {
                for (e, (o, &s)) in out.iter_mut().zip(scheduled).enumerate() {
                    let mut rng = SplitMix64::for_node_round(seed, e as u32, round);
                    let floor = s.floor();
                    let frac = s - floor;
                    *o = floor as i64 + i64::from(rng.next_f64() < frac);
                }
            }
            Rounding::RandomizedFramework { seed } => {
                out.fill(0);
                // Reusable buffer: (edge, sign, fractional part).
                let mut excess: Vec<(usize, i64, f64)> = Vec::new();
                for v in graph.nodes() {
                    excess.clear();
                    let mut r = 0.0f64;
                    for (&e, &s) in graph.neighbor_edges(v).iter().zip(graph.neighbor_signs(v)) {
                        let sign = s as f64;
                        let outflow = scheduled[e as usize] * sign;
                        if outflow > 0.0 {
                            let base = outflow.floor();
                            let frac = outflow - base;
                            out[e as usize] = sign as i64 * base as i64;
                            if frac > 0.0 {
                                excess.push((e as usize, sign as i64, frac));
                                r += frac;
                            }
                        }
                    }
                    if excess.is_empty() {
                        continue;
                    }
                    let tokens = r.ceil() as i64;
                    if tokens == 0 {
                        continue;
                    }
                    let mut rng = SplitMix64::for_node_round(seed, v, round);
                    let denom = tokens as f64;
                    for _ in 0..tokens {
                        // P(edge k) = frac_k / ⌈r⌉; P(stay) = 1 − r/⌈r⌉.
                        let u = rng.next_f64() * denom;
                        let mut cum = 0.0;
                        for &(e, sign, frac) in &excess {
                            cum += frac;
                            if u < cum {
                                out[e] += sign;
                                break;
                            }
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sodiff_graph::generators;

    #[test]
    fn rounding_spec_roundtrip_and_seeding() {
        for spec in [
            RoundingSpec::Randomized,
            RoundingSpec::RoundDown,
            RoundingSpec::Nearest,
            RoundingSpec::UnbiasedEdge,
        ] {
            let text = spec.to_string();
            assert_eq!(text.parse::<RoundingSpec>().unwrap(), spec);
            if spec.needs_seed() {
                assert!(matches!(spec.seeded(None), Err(BuildError::MissingSeed(_))));
            }
            let rounding = spec.seeded(Some(9)).unwrap();
            assert_eq!(RoundingSpec::from(rounding), spec);
        }
        assert!("banker".parse::<RoundingSpec>().is_err());
    }

    fn star_scheduled(graph: &Graph, outflows: &[f64]) -> Vec<f64> {
        // On a star, canonical edges are (0, leaf); positive = hub sends.
        assert_eq!(outflows.len(), graph.edge_count());
        outflows.to_vec()
    }

    #[test]
    fn round_down_truncates_magnitudes() {
        let g = generators::star(3);
        let sched = star_scheduled(&g, &[1.9, -2.7]);
        let mut out = vec![0i64; 2];
        Rounding::round_down().round_flows(&g, &sched, 0, &mut out);
        assert_eq!(out, vec![1, -2]);
    }

    #[test]
    fn nearest_rounds_half_away() {
        let g = generators::star(3);
        let sched = star_scheduled(&g, &[1.5, -1.5]);
        let mut out = vec![0i64; 2];
        Rounding::nearest().round_flows(&g, &sched, 0, &mut out);
        assert_eq!(out, vec![2, -2]);
    }

    #[test]
    fn per_edge_schemes_error_below_one() {
        // Round-down, nearest, and per-edge unbiased rounding keep the
        // rounding error strictly below one token per edge. (The
        // randomized framework only bounds the error per *node*: several
        // excess tokens may ride the same edge.)
        let g = generators::torus2d(4, 4);
        let m = g.edge_count();
        let sched: Vec<f64> = (0..m)
            .map(|e| ((e * 31 % 17) as f64 - 8.0) * 0.37)
            .collect();
        for rounding in [
            Rounding::round_down(),
            Rounding::nearest(),
            Rounding::unbiased_edge(1),
        ] {
            let mut out = vec![0i64; m];
            rounding.round_flows(&g, &sched, 5, &mut out);
            for (e, (&s, &o)) in sched.iter().zip(&out).enumerate() {
                assert!(
                    (s - o as f64).abs() < 1.0,
                    "{rounding:?} edge {e}: scheduled {s} rounded {o}"
                );
            }
        }
    }

    #[test]
    fn randomized_node_error_bounded_by_degree() {
        // Framework guarantee: per node, the rounded outflow differs from
        // the scheduled outflow by less than ⌈r⌉ ≤ d tokens.
        let g = generators::torus2d(4, 4);
        let m = g.edge_count();
        let sched: Vec<f64> = (0..m)
            .map(|e| ((e * 31 % 17) as f64 - 8.0) * 0.37)
            .collect();
        let mut out = vec![0i64; m];
        Rounding::randomized(1).round_flows(&g, &sched, 5, &mut out);
        for v in g.nodes() {
            let mut scheduled_out = 0.0;
            let mut rounded_out = 0i64;
            for (_, e) in g.neighbors(v) {
                let sign = g.orientation(v, e);
                let s = sched[e as usize] * sign;
                if s > 0.0 {
                    scheduled_out += s;
                    rounded_out += (out[e as usize] as f64 * sign) as i64;
                }
            }
            assert!(
                (scheduled_out - rounded_out as f64).abs() <= g.degree(v) as f64,
                "node {v}: scheduled {scheduled_out} rounded {rounded_out}"
            );
        }
    }

    #[test]
    fn integral_flows_pass_through_unchanged() {
        let g = generators::cycle(5);
        let sched = vec![3.0, -2.0, 0.0, 7.0, -1.0];
        for rounding in [
            Rounding::round_down(),
            Rounding::nearest(),
            Rounding::unbiased_edge(2),
            Rounding::randomized(2),
        ] {
            let mut out = vec![0i64; 5];
            rounding.round_flows(&g, &sched, 1, &mut out);
            assert_eq!(out, vec![3, -2, 0, 7, -1], "{rounding:?}");
        }
    }

    #[test]
    fn randomized_is_deterministic_per_seed_and_round() {
        let g = generators::torus2d(3, 3);
        let m = g.edge_count();
        let sched: Vec<f64> = (0..m).map(|e| (e as f64) * 0.21 - 1.5).collect();
        let run = |seed, round| {
            let mut out = vec![0i64; m];
            Rounding::randomized(seed).round_flows(&g, &sched, round, &mut out);
            out
        };
        assert_eq!(run(7, 3), run(7, 3));
        assert_ne!(run(7, 3), run(7, 4));
        assert_ne!(run(7, 3), run(8, 3));
    }

    #[test]
    fn randomized_framework_is_unbiased() {
        // E[rounded] == scheduled, checked empirically over many rounds.
        let g = generators::star(5);
        let sched = vec![0.3, 0.7, 1.25, 2.5];
        let m = g.edge_count();
        let trials = 20_000;
        let mut sums = vec![0i64; m];
        let rounding = Rounding::randomized(99);
        let mut out = vec![0i64; m];
        for round in 0..trials {
            rounding.round_flows(&g, &sched, round, &mut out);
            for (s, &o) in sums.iter_mut().zip(&out) {
                *s += o;
            }
        }
        for (e, (&s, &sum)) in sched.iter().zip(&sums).enumerate() {
            let mean = sum as f64 / trials as f64;
            assert!(
                (mean - s).abs() < 0.02,
                "edge {e}: mean {mean} vs scheduled {s}"
            );
        }
    }

    #[test]
    fn unbiased_edge_is_unbiased() {
        let g = generators::star(4);
        let sched = vec![0.25, -0.75, 1.5];
        let m = g.edge_count();
        let trials = 20_000;
        let mut sums = vec![0i64; m];
        let rounding = Rounding::unbiased_edge(123);
        let mut out = vec![0i64; m];
        for round in 0..trials {
            rounding.round_flows(&g, &sched, round, &mut out);
            for (s, &o) in sums.iter_mut().zip(&out) {
                *s += o;
            }
        }
        for (&s, &sum) in sched.iter().zip(&sums) {
            let mean = sum as f64 / trials as f64;
            assert!((mean - s).abs() < 0.02, "mean {mean} vs scheduled {s}");
        }
    }

    #[test]
    fn randomized_never_overdraws_excess_budget() {
        // The number of excess tokens a node sends is at most ⌈r⌉ where r
        // is the sum of fractional parts of its outgoing flows: the
        // rounded outflow of each node is at most ceil of its scheduled
        // outflow total.
        let g = generators::star(6);
        // Hub sends 0.9 to each of 5 leaves: r = 4.5, ⌈r⌉ = 5.
        let sched = vec![0.9; 5];
        let rounding = Rounding::randomized(5);
        for round in 0..500 {
            let mut out = vec![0i64; 5];
            rounding.round_flows(&g, &sched, round, &mut out);
            let total: i64 = out.iter().sum();
            assert!(total <= 5, "round {round}: hub sent {total} > ⌈4.5⌉");
            assert!(out.iter().all(|&y| y >= 0), "tokens only flow outward");
        }
    }
}
