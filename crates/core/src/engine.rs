//! The round-based load-balancing simulator.
//!
//! One [`Simulator`] runs either the *continuous* (idealized, `f64` loads)
//! or the *discrete* (integer tokens, rounded flows) version of a
//! balancing [`Scheme`] — FOS/SOS diffusion, dimension exchange, or
//! matching-based balancing — on a fixed network, in synchronous rounds.
//! The per-round flow computation itself lives in the scheme-kernel layer
//! ([`crate::scheme_kernel`]); the engine owns state, stop conditions,
//! hybrid switching, and reporting. It also tracks the
//! *transient* load `x̆_i(t) = x_i(t) − Σ_j max(y_{i,j}(t), 0)` — the load
//! of a node after all outgoing flow has left but before incoming flow
//! arrives — which is the quantity the paper's negative-load results
//! (Section V) bound.
//!
//! Simulators are built through the [`crate::ExperimentBuilder`], which
//! validates every input and returns a typed [`BuildError`] instead of
//! panicking. (The pre-0.2 `SimulationConfig` constructors and
//! `Simulator::new` shims were removed after their deprecation release.)
//!
//! # Parallel execution
//!
//! The paper's C++ simulator uses OpenMP; here a thread count above 1
//! attaches the simulation to a **persistent worker pool** (see
//! [`crate::pool`]): threads are spawned once and park on a barrier
//! between rounds, so the per-round executor overhead is a handful of
//! barrier waits instead of `threads × phases` thread spawns. The batch
//! [`crate::Driver`] shares one pool across a whole scenario file. Every
//! phase of a round is decomposed into pure per-edge or per-node passes
//! (node-centric application, per-(node, round)-keyed RNG streams) that
//! run through the same division-free kernels ([`crate::kernel`]) as the
//! sequential executor, so the parallel path is **bit-identical** to the
//! sequential one — for integer and floating-point loads alike — and
//! results never depend on the thread count.

use std::sync::Arc;

use sodiff_graph::{Graph, Speeds};

use crate::checkpoint::{
    self, CheckpointConfig, LoadsSnapshot, PlateauSnapshot, Snapshot, SteadySnapshot, WatchSnapshot,
};
use crate::churn::{ChurnEvents, ChurnSpec};
use crate::error::{BuildError, CheckpointError};
use crate::fault::{DivergenceWatch, FaultEvents, FaultSpec};
use crate::hybrid::SwitchPolicy;
use crate::init::InitialLoad;
use crate::kernel::{
    cells_f32, cells_f64, cells_i32, cells_i64, AtomicsF32, AtomicsF64, AtomicsI32, AtomicsI64,
    KernelTables, LoadStats,
};
use crate::load::{LoadEvents, LoadSpec, SteadyStats, SteadyTracker};
use crate::metrics::{local_diff_with, snapshot_with_total, MetricsSnapshot, RemainingImbalance};
use crate::observer::Observer;
use crate::pool::{JobLoads, RoundJob, WorkerPool};
use crate::rounding::Rounding;
use crate::scenario::MemSpec;
use crate::scheme::Scheme;
use crate::scheme_kernel::{RoundScratch, SchemeKernel};

/// Continuous vs discrete execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Idealized scheme: loads are `f64`, flows are not rounded.
    Continuous,
    /// Discrete scheme: integer tokens, scheduled flows rounded per round.
    Discrete(Rounding),
}

/// Which previous-flow value the SOS memory term uses in the discrete
/// process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FlowMemory {
    /// The integral flow actually sent in the previous round — the
    /// *stateless* process the paper analyzes ("the amount that was sent
    /// in step t−1").
    #[default]
    Rounded,
    /// The unrounded scheduled flow of the previous round (an ablation:
    /// slightly less noise accumulation, but requires remembering a real
    /// number per edge).
    Scheduled,
}

/// Full configuration of a simulation run.
///
/// Prefer building simulations through [`crate::Experiment::on`]; this
/// struct remains the validated internal form.
#[derive(Debug, Clone)]
pub struct SimulationConfig {
    /// FOS or SOS.
    pub scheme: Scheme,
    /// Continuous or discrete execution.
    pub mode: Mode,
    /// Node speeds; `None` means the homogeneous model.
    pub speeds: Option<Speeds>,
    /// SOS memory source in discrete mode (ignored otherwise).
    pub flow_memory: FlowMemory,
    /// Worker threads for the round executor (1 = sequential).
    pub threads: usize,
    /// Deterministic fault injection ([`FaultSpec::none`] = unperturbed).
    pub faults: FaultSpec,
    /// Deterministic dynamic-load injection ([`LoadSpec::none`] = the
    /// static workload, taking the exact pre-load code paths).
    pub load: LoadSpec,
    /// Deterministic topology churn ([`ChurnSpec::none`] = the fixed
    /// node set, taking the exact pre-churn code paths).
    pub churn: ChurnSpec,
    /// Periodic checkpointing (`None` = never snapshot; the zero-cost
    /// default, branch-predicted away in the round loop).
    pub ckpt: Option<CheckpointConfig>,
    /// State-storage width ([`MemSpec::Full`] = the bit-pinned `i64`/`f64`
    /// reference layout; [`MemSpec::Compact`] halves per-node and per-edge
    /// state bytes by storing loads and flow memory as `i32`/`f32` while
    /// keeping all arithmetic in `f64`).
    pub mem: MemSpec,
}

impl SimulationConfig {
    /// Sets heterogeneous node speeds.
    pub fn with_speeds(mut self, speeds: Speeds) -> Self {
        self.speeds = Some(speeds);
        self
    }

    /// Sets the SOS flow-memory source.
    pub fn with_flow_memory(mut self, memory: FlowMemory) -> Self {
        self.flow_memory = memory;
        self
    }

    /// Sets the fault-injection plan (validated at build time).
    pub fn with_faults(mut self, faults: FaultSpec) -> Self {
        self.faults = faults;
        self
    }

    /// Sets the dynamic-load plan (validated at build time).
    pub fn with_load(mut self, load: LoadSpec) -> Self {
        self.load = load;
        self
    }

    /// Sets the topology-churn plan (validated at build time).
    pub fn with_churn(mut self, churn: ChurnSpec) -> Self {
        self.churn = churn;
        self
    }

    /// Sets the periodic checkpoint policy (validated at build time).
    pub fn with_checkpoint(mut self, ckpt: CheckpointConfig) -> Self {
        self.ckpt = Some(ckpt);
        self
    }

    /// Runs rounds on a persistent pool of `threads` workers (spawned once
    /// at simulator construction, parked on a barrier between rounds).
    /// Results are bit-identical to the sequential executor.
    ///
    /// Diffusion rounds are memory-bandwidth-bound. With the persistent
    /// pool the per-round executor overhead is a few barrier waits
    /// (micro­seconds), so threads start paying off around ~10⁴ edges on
    /// multi-core hosts — roughly where one round's work outweighs the
    /// rendezvous cost — instead of the ~10⁵-edge break-even the old
    /// per-round `thread::scope` executor had. Keep the default of 1 for
    /// small graphs or single-core machines.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`. (The builder's
    /// [`crate::ExperimentBuilder::threads`] reports this as
    /// [`BuildError::ZeroThreads`] instead.)
    pub fn with_threads(mut self, threads: usize) -> Self {
        assert!(threads > 0, "thread count must be positive");
        self.threads = threads;
        self
    }
}

/// When to stop a [`Simulator::run_until`] loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StopCondition {
    /// Run exactly this many further rounds.
    MaxRounds(usize),
    /// Stop as soon as `max − avg` drops to `threshold` (or after
    /// `max_rounds`, whichever comes first).
    BalancedWithin {
        /// Target `max − avg` in tokens.
        threshold: f64,
        /// Hard round cap.
        max_rounds: usize,
    },
    /// Stop when the remaining imbalance stops improving (plateau
    /// detection over `window` rounds), or after `max_rounds`.
    Plateau {
        /// Plateau detection window in rounds.
        window: usize,
        /// Hard round cap.
        max_rounds: usize,
    },
    /// Stop once the per-round deviation has reached **steady state**
    /// under a dynamic workload: the mean `max − avg` over the newest
    /// `window` rounds no longer improves on the window before it
    /// (within 1%). The report carries windowed deviation statistics
    /// ([`RunReport::steady`]). A built-in cap of 100 000 rounds
    /// guards against workloads that never settle.
    Steady {
        /// Steady-state detection window in rounds.
        window: usize,
    },
    /// Run exactly this many rounds and report deviation statistics
    /// over **all** of them ([`RunReport::steady`]) — the fixed-horizon
    /// companion of [`StopCondition::Steady`] for dynamic workloads.
    Horizon(usize),
}

impl StopCondition {
    /// Validates the condition's parameters.
    pub(crate) fn check(&self) -> Result<(), BuildError> {
        match *self {
            StopCondition::MaxRounds(_) => Ok(()),
            StopCondition::BalancedWithin { threshold, .. } => {
                if threshold.is_nan() {
                    Err(BuildError::InvalidStopCondition(
                        "balance threshold must not be NaN".into(),
                    ))
                } else {
                    Ok(())
                }
            }
            StopCondition::Plateau { window, .. } => {
                if window == 0 {
                    Err(BuildError::InvalidStopCondition(
                        "plateau window must be positive".into(),
                    ))
                } else {
                    Ok(())
                }
            }
            StopCondition::Steady { window } => {
                if window == 0 {
                    Err(BuildError::InvalidStopCondition(
                        "steady window must be positive".into(),
                    ))
                } else {
                    Ok(())
                }
            }
            StopCondition::Horizon(rounds) => {
                if rounds == 0 {
                    Err(BuildError::InvalidStopCondition(
                        "horizon must be positive".into(),
                    ))
                } else {
                    Ok(())
                }
            }
        }
    }
}

/// Why a run stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// The round cap was reached.
    MaxRounds,
    /// The balance threshold was met.
    Threshold,
    /// The imbalance plateaued.
    Plateau,
    /// The deviation reached steady state under a dynamic workload.
    Steady,
    /// The fixed horizon was reached.
    Horizon,
}

/// Summary of a finished run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// Rounds executed by this call.
    pub rounds: u64,
    /// Metrics at the final round.
    pub final_metrics: MetricsSnapshot,
    /// Why the run stopped.
    pub reason: StopReason,
    /// Remaining imbalance if a plateau was detected.
    pub remaining_imbalance: Option<f64>,
    /// The round at which a hybrid switch to FOS fired, if a
    /// [`SwitchPolicy`] was active and fired — or if the divergence
    /// watchdog degraded an SOS run to FOS.
    pub switch_round: Option<u64>,
    /// Whether the divergence watchdog fired during this call: the
    /// deviation grew past its guardrail (or went non-finite) under
    /// fault injection, engaging graceful degradation (automatic
    /// SOS→FOS fallback where the scheme allows it).
    pub degraded: bool,
    /// Fault events injected over the simulator's lifetime so far (all
    /// zero for `faults=none` runs). Cumulative across repeated
    /// [`Simulator::run_until`] calls, like [`Simulator::round`].
    pub faults: FaultEvents,
    /// Dynamic-load events injected over the simulator's lifetime so far
    /// (all zero for `load=none` runs); `injected` is the net token
    /// delta, so conservation checks become
    /// `total == initial + injected`. Cumulative like
    /// [`RunReport::faults`].
    pub load: LoadEvents,
    /// Topology-churn events over the simulator's lifetime so far (all
    /// zero for `churn=none` runs). With churn active, conservation
    /// checks become `total == initial + injected + joined − departed`.
    /// Cumulative like [`RunReport::faults`].
    pub churn: ChurnEvents,
    /// Windowed steady-state deviation statistics, reported by the
    /// [`StopCondition::Steady`] and [`StopCondition::Horizon`] run
    /// modes (`None` for every other stop condition).
    pub steady: Option<SteadyStats>,
}

enum State {
    Discrete {
        loads: Vec<i64>,
        int_flows: Vec<i64>,
    },
    Continuous {
        loads: Vec<f64>,
    },
    /// `mem=compact` discrete state: `i32` tokens and integral flows.
    /// All per-round arithmetic still runs in `f64`; only the stored
    /// representation narrows (see [`crate::kernel::BufI64`]).
    DiscreteCompact {
        loads: Vec<i32>,
        int_flows: Vec<i32>,
    },
    /// `mem=compact` continuous state: `f32` loads, `f64` arithmetic.
    ContinuousCompact {
        loads: Vec<f32>,
    },
}

/// The simulation's attachment to a worker pool: the pool itself (owned
/// here or shared with a [`crate::Driver`]) plus this simulation's job.
struct PoolAttachment {
    pool: Arc<WorkerPool>,
    job: Arc<RoundJob>,
}

/// The run loop's local state, persisted across `run_*` calls so a
/// [`Simulator::snapshot`] taken at any round boundary carries the
/// origin, hybrid/degradation flags, and metric rings a later
/// [`Simulator::restore`] needs to continue the interrupted run
/// bit-identically.
#[derive(Default)]
struct SavedLoop {
    /// `round` at the start of the current/last `run_*` call; hybrid
    /// `AtRound` triggers count from here.
    run_start: u64,
    switch_round: Option<u64>,
    degraded: bool,
    watch: Option<DivergenceWatch>,
    steady: Option<SteadyTracker>,
    plateau: Option<RemainingImbalance>,
    /// Set by [`Simulator::restore`]: the next `run_loop` call seeds its
    /// locals from this state instead of starting fresh.
    pending_resume: bool,
}

/// SOS→FOS switch-trigger variants for the unified run loop.
enum Trigger<'a> {
    /// No hybrid behavior.
    None,
    /// A declarative [`SwitchPolicy`].
    Policy(SwitchPolicy),
    /// An arbitrary predicate over the simulator state.
    Custom(&'a mut dyn FnMut(&Simulator<'_>) -> bool),
}

/// Writes an auto-checkpoint or aborts the run: a failing sink means the
/// promised resumability is already lost, so surfacing it loudly (the
/// batch [`crate::Driver`] isolates and quarantines the panic) beats
/// silently continuing without crash coverage.
fn write_or_die(path: &std::path::Path, spec_line: &str, snap: &Snapshot) {
    if let Err(e) = checkpoint::write_checkpoint_line(path, spec_line, snap) {
        panic!("auto-checkpoint failed: {e}");
    }
}

/// A synchronous-round diffusion load-balancing simulation.
///
/// # Example
///
/// ```
/// use sodiff_core::prelude::*;
/// use sodiff_graph::generators;
///
/// let g = generators::torus2d(8, 8);
/// let mut sim = Experiment::on(&g)
///     .discrete(Rounding::randomized(7))
///     .init(InitialLoad::point(0, 6400))
///     .build()
///     .unwrap()
///     .simulator();
/// let report = sim.run_until(StopCondition::MaxRounds(500));
/// assert_eq!(report.rounds, 500);
/// assert!(report.final_metrics.max_minus_avg < 10.0);
/// assert_eq!(sim.total_load(), 6400.0); // tokens are conserved
/// ```
pub struct Simulator<'g> {
    graph: &'g Graph,
    speeds: Speeds,
    /// Division-free coefficient tables and SoA adjacency, shared with the
    /// worker pool.
    tables: Arc<KernelTables>,
    /// The scheme-kernel layer: per-round flow computation (edge pass,
    /// rounding hook, apply pass, barrier plan) for the configured
    /// scheme, shared with the worker pool.
    scheme_kernel: Arc<SchemeKernel>,
    scheme: Scheme,
    flow_memory: FlowMemory,
    threads: usize,
    state: State,
    /// Previous-round flow memory for SOS (`f64` storage; empty in
    /// `mem=compact` runs, which use [`Simulator::prev_flow32`]).
    prev_flow: Vec<f64>,
    /// Compact twin of `prev_flow` (`mem=compact` only; empty otherwise).
    prev_flow32: Vec<f32>,
    /// Scratch: arc-indexed signed scheduled flows (sequential
    /// randomized-framework path; empty in `mem=compact` runs).
    arc_frac: Vec<f64>,
    /// Compact twin of `arc_frac` (`mem=compact` only; empty otherwise).
    arc_frac32: Vec<f32>,
    /// Control-thread round scratch: framework rounding states plus
    /// random-matching generation buffers.
    scratch: RoundScratch,
    /// Worker pool attachment (`threads > 1` only).
    pool: Option<PoolAttachment>,
    round: u64,
    rounds_in_scheme: u64,
    min_transient: f64,
    /// Fused load statistics of the last executed round (the apply
    /// pass's in-loop reduction); `None` until the first [`Simulator::step`].
    round_stats: Option<LoadStats>,
    initial_total: f64,
    /// Periodic checkpoint sink (`None` = never snapshot).
    ckpt: Option<CheckpointConfig>,
    /// Run-loop state preserved across `run_*` calls for
    /// [`Simulator::snapshot`] / [`Simulator::restore`].
    saved_loop: SavedLoop,
}

impl<'g> Simulator<'g> {
    /// Fallible constructor behind the builder and the batch driver.
    /// `shared_pool` overrides `config.threads` with an externally owned
    /// pool (the driver's), avoiding a per-simulation thread spawn.
    pub(crate) fn build(
        graph: &'g Graph,
        config: SimulationConfig,
        init: InitialLoad,
        shared_pool: Option<Arc<WorkerPool>>,
    ) -> Result<Self, BuildError> {
        let n = graph.node_count();
        let speeds = match config.speeds {
            Some(speeds) => {
                if speeds.len() != n {
                    return Err(BuildError::SpeedsLengthMismatch {
                        expected: n,
                        got: speeds.len(),
                    });
                }
                speeds
            }
            None => Speeds::uniform(n),
        };
        let threads = match &shared_pool {
            Some(pool) => pool.threads(),
            None => config.threads,
        };
        if threads == 0 {
            return Err(BuildError::ZeroThreads);
        }
        init.check(n).map_err(BuildError::InvalidInitialLoad)?;
        let compact = config.mem == MemSpec::Compact;
        if compact {
            init.check_compact(n)
                .map_err(BuildError::InvalidInitialLoad)?;
        }
        let loads = init.materialize(n);
        let initial_total = loads.iter().map(|&x| x as f64).sum();
        let m = graph.edge_count();
        let mut scheme_kernel = SchemeKernel::new(
            config.scheme,
            config.mode,
            graph,
            &speeds,
            config.faults,
            config.load,
            config.churn,
        )?;
        let framework = scheme_kernel.needs_arc_plan();
        let tables = Arc::new(KernelTables::new(graph, &speeds, framework, initial_total));
        scheme_kernel.finish(&tables);
        let scheme_kernel = Arc::new(scheme_kernel);
        let state = match (config.mode, compact) {
            (Mode::Discrete(_), false) => State::Discrete {
                loads,
                int_flows: vec![0; m],
            },
            (Mode::Continuous, false) => State::Continuous {
                loads: loads.iter().map(|&x| x as f64).collect(),
            },
            // check_compact() bounded the total, so every per-node load
            // (and any transient concentration of it) fits an i32.
            (Mode::Discrete(_), true) => State::DiscreteCompact {
                loads: loads.iter().map(|&x| x as i32).collect(),
                int_flows: vec![0; m],
            },
            (Mode::Continuous, true) => State::ContinuousCompact {
                loads: loads.iter().map(|&x| x as f32).collect(),
            },
        };
        let min_transient = match &state {
            State::Discrete { loads, .. } => loads.iter().copied().min().unwrap_or(0) as f64,
            State::Continuous { loads } => loads.iter().copied().fold(f64::INFINITY, f64::min),
            State::DiscreteCompact { loads, .. } => loads.iter().copied().min().unwrap_or(0) as f64,
            State::ContinuousCompact { loads } => loads
                .iter()
                .map(|&x| f64::from(x))
                .fold(f64::INFINITY, f64::min),
        };
        let pool = if threads > 1 {
            let job_loads = match &state {
                State::Discrete { loads, .. } => JobLoads::I64(loads),
                State::Continuous { loads } => JobLoads::F64(loads),
                State::DiscreteCompact { loads, .. } => JobLoads::I32(loads),
                State::ContinuousCompact { loads } => JobLoads::F32(loads),
            };
            let pool = shared_pool.unwrap_or_else(|| Arc::new(WorkerPool::new(threads)));
            let job = Arc::new(RoundJob::new(
                pool.threads(),
                Arc::clone(&tables),
                Arc::clone(&scheme_kernel),
                config.flow_memory,
                job_loads,
            ));
            Some(PoolAttachment { pool, job })
        } else {
            None
        };
        // The sequential framework path needs the arc-indexed scheduled
        // scratch; the fused edge-local path and the pool do not.
        let seq_arcs = if framework && pool.is_none() {
            graph.arc_count()
        } else {
            0
        };
        let arc_frac = if compact {
            Vec::new()
        } else {
            vec![0.0; seq_arcs]
        };
        let arc_frac32 = if compact {
            vec![0.0; seq_arcs]
        } else {
            Vec::new()
        };
        Ok(Self {
            graph,
            speeds,
            tables,
            scheme_kernel,
            scheme: config.scheme,
            flow_memory: config.flow_memory,
            threads,
            state,
            prev_flow: if compact { Vec::new() } else { vec![0.0; m] },
            prev_flow32: if compact { vec![0.0; m] } else { Vec::new() },
            arc_frac,
            arc_frac32,
            scratch: RoundScratch::new(),
            pool,
            round: 0,
            rounds_in_scheme: 0,
            min_transient,
            round_stats: None,
            initial_total,
            ckpt: config.ckpt,
            saved_loop: SavedLoop::default(),
        })
    }

    /// The network this simulation runs on.
    pub fn graph(&self) -> &'g Graph {
        self.graph
    }

    /// The node speeds.
    pub fn speeds(&self) -> &Speeds {
        &self.speeds
    }

    /// The active scheme.
    pub fn scheme(&self) -> Scheme {
        self.scheme
    }

    /// Rounds executed since construction.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Worker threads used by the executor.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Returns `true` in discrete mode.
    pub fn is_discrete(&self) -> bool {
        matches!(
            self.state,
            State::Discrete { .. } | State::DiscreteCompact { .. }
        )
    }

    /// Returns `true` when this run stores state in the compact
    /// (`mem=compact`) `i32`/`f32` layout.
    pub fn is_compact(&self) -> bool {
        matches!(
            self.state,
            State::DiscreteCompact { .. } | State::ContinuousCompact { .. }
        )
    }

    /// Integer loads (full-width discrete mode only; `None` in
    /// continuous and `mem=compact` runs — use [`Simulator::load_of`]
    /// or [`Simulator::loads_to_f64`] there).
    pub fn loads_i64(&self) -> Option<&[i64]> {
        match &self.state {
            State::Discrete { loads, .. } => Some(loads),
            _ => None,
        }
    }

    /// Continuous loads (full-width continuous mode only; `None` in
    /// discrete and `mem=compact` runs).
    pub fn loads_f64(&self) -> Option<&[f64]> {
        match &self.state {
            State::Continuous { loads } => Some(loads),
            _ => None,
        }
    }

    /// Load of node `i` as `f64`, regardless of mode or memory layout.
    #[inline]
    pub fn load_of(&self, i: usize) -> f64 {
        match &self.state {
            State::Discrete { loads, .. } => loads[i] as f64,
            State::Continuous { loads } => loads[i],
            State::DiscreteCompact { loads, .. } => loads[i] as f64,
            State::ContinuousCompact { loads } => f64::from(loads[i]),
        }
    }

    /// Copies the loads into a fresh `f64` vector.
    pub fn loads_to_f64(&self) -> Vec<f64> {
        (0..self.graph.node_count())
            .map(|i| self.load_of(i))
            .collect()
    }

    /// Current total load (must equal the initial total in discrete mode;
    /// floats may drift by rounding error in continuous mode).
    pub fn total_load(&self) -> f64 {
        match &self.state {
            State::Discrete { loads, .. } => loads.iter().map(|&x| x as f64).sum(),
            State::Continuous { loads } => loads.iter().sum(),
            State::DiscreteCompact { loads, .. } => loads.iter().map(|&x| x as f64).sum(),
            State::ContinuousCompact { loads } => loads.iter().map(|&x| f64::from(x)).sum(),
        }
    }

    /// The total load at round 0.
    pub fn initial_total(&self) -> f64 {
        self.initial_total
    }

    /// Minimum transient load `min_{i,t} x̆_i(t)` observed so far
    /// (Section V). Negative values mean a node was overdrawn.
    pub fn min_transient_load(&self) -> f64 {
        self.min_transient
    }

    /// Flow sent in the previous round, per canonical edge (the SOS
    /// memory). **Empty in `mem=compact` runs**, which store flow memory
    /// as `f32` — use [`Simulator::previous_flows_to_f64`] for a
    /// layout-independent copy.
    pub fn previous_flows(&self) -> &[f64] {
        &self.prev_flow
    }

    /// Copies the previous-round flow memory into a fresh `f64` vector,
    /// regardless of memory layout (compact `f32` values widen exactly).
    pub fn previous_flows_to_f64(&self) -> Vec<f64> {
        if self.is_compact() {
            self.prev_flow32.iter().map(|&x| f64::from(x)).collect()
        } else {
            self.prev_flow.clone()
        }
    }

    /// Bytes of per-node and per-edge simulation state this simulator
    /// holds: loads, integral flows, SOS flow memory, and arc-fraction
    /// scratch, plus the pool job's mirrors when running threaded.
    /// `mem=compact` halves every category counted here; auxiliary
    /// metadata (masks, per-block partials, kernel tables) is excluded
    /// because both layouts share it unchanged.
    pub fn state_bytes(&self) -> usize {
        let own = match &self.state {
            State::Discrete { loads, int_flows } => 8 * (loads.len() + int_flows.len()),
            State::Continuous { loads } => 8 * loads.len(),
            State::DiscreteCompact { loads, int_flows } => 4 * (loads.len() + int_flows.len()),
            State::ContinuousCompact { loads } => 4 * loads.len(),
        };
        own + 8 * (self.prev_flow.len() + self.arc_frac.len())
            + 4 * (self.prev_flow32.len() + self.arc_frac32.len())
            + self
                .pool
                .as_ref()
                .map_or(0, |attachment| attachment.job.state_bytes())
    }

    /// Freezes the complete evolving state of this simulation at the
    /// current round boundary (see [`crate::checkpoint`]).
    ///
    /// Because every random decision is drawn from counter-indexed
    /// streams (no serial RNG state — see [`crate::rng`]), the snapshot
    /// plus the originating [`crate::ScenarioSpec`] is enough to
    /// continue the run **bit-identically**: loads, SOS flow memory,
    /// round counters, hybrid/degradation state, cumulative
    /// fault/load event counters, and the stop-condition metric rings.
    /// Persist it with [`checkpoint::write_checkpoint`].
    pub fn snapshot(&self) -> Snapshot {
        let saved = &self.saved_loop;
        self.make_snapshot(
            saved.run_start,
            saved.switch_round,
            saved.degraded,
            saved.watch.as_ref(),
            saved.steady.as_ref(),
            saved.plateau.as_ref(),
        )
    }

    /// Assembles a [`Snapshot`] from the simulator state plus the given
    /// run-loop locals (the live ones mid-run, the saved ones between
    /// runs).
    fn make_snapshot(
        &self,
        run_start: u64,
        switch_round: Option<u64>,
        degraded: bool,
        watch: Option<&DivergenceWatch>,
        steady: Option<&SteadyTracker>,
        plateau: Option<&RemainingImbalance>,
    ) -> Snapshot {
        // Compact state widens losslessly into the full-width snapshot
        // forms, so the on-disk format (and its VERSION) is layout-free.
        let loads = match &self.state {
            State::Discrete { loads, .. } => LoadsSnapshot::Discrete(loads.clone()),
            State::Continuous { loads } => LoadsSnapshot::Continuous(loads.clone()),
            State::DiscreteCompact { loads, .. } => {
                LoadsSnapshot::Discrete(loads.iter().map(|&x| i64::from(x)).collect())
            }
            State::ContinuousCompact { loads } => {
                LoadsSnapshot::Continuous(loads.iter().map(|&x| f64::from(x)).collect())
            }
        };
        let round_stats = self.round_stats.map(|s| {
            [
                s.min_transient,
                s.min_load,
                s.max_dev,
                s.min_dev,
                s.sum_sq_dev,
            ]
        });
        let watch = watch.map(|w| {
            let (armed, ring, len, pos) = w.raw_parts();
            WatchSnapshot {
                armed,
                ring: ring.to_vec(),
                len,
                pos,
            }
        });
        let steady = steady.map(|s| {
            let (window, ring, pos, len, newer_sum, older_sum, check) = s.raw_parts();
            SteadySnapshot {
                window,
                ring: ring.to_vec(),
                pos,
                len,
                newer_sum,
                older_sum,
                check,
            }
        });
        let plateau = plateau.map(|p| PlateauSnapshot {
            window: p.window(),
            history: p.history_tail().to_vec(),
        });
        Snapshot {
            round: self.round,
            rounds_in_scheme: self.rounds_in_scheme,
            run_start,
            switch_round,
            degraded,
            min_transient: self.min_transient,
            initial_total: self.initial_total,
            round_stats,
            loads,
            prev_flow: self.previous_flows_to_f64(),
            fault_events: self.scratch.fault.events,
            load_events: self.scratch.load.events,
            churn_events: self.scratch.churn.events,
            // The active-node overlay is the churn axis's one
            // history-dependent piece of state (a Markov chain over
            // epochs), so it is persisted verbatim; empty = churn never
            // ran, so restore leaves the default all-active overlay.
            churn_active: self.scratch.churn.active_words().to_vec(),
            watch,
            steady,
            plateau,
        }
    }

    /// Restores a [`Snapshot`] into this simulator, which must have been
    /// built from the same [`crate::ScenarioSpec`] (same graph, scheme,
    /// mode, seeds, and initial load — the thread count is free to
    /// differ, since results never depend on it). The next `run_*` call
    /// continues the interrupted run: hybrid triggers keep counting from
    /// the original run origin and the stop-condition rings resume
    /// where they left off.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Mismatch`] when the snapshot does not fit this
    /// simulation (wrong node/edge count, wrong mode, or a different
    /// initial total). The simulator is left unmodified on error.
    pub fn restore(&mut self, snap: &Snapshot) -> Result<(), CheckpointError> {
        let n = self.graph.node_count();
        let m = self.graph.edge_count();
        let (snap_nodes, snap_discrete) = match &snap.loads {
            LoadsSnapshot::Discrete(v) => (v.len(), true),
            LoadsSnapshot::Continuous(v) => (v.len(), false),
        };
        if snap_discrete != self.is_discrete() {
            return Err(CheckpointError::Mismatch(format!(
                "snapshot is {} but the simulation is {}",
                if snap_discrete {
                    "discrete"
                } else {
                    "continuous"
                },
                if self.is_discrete() {
                    "discrete"
                } else {
                    "continuous"
                },
            )));
        }
        if snap_nodes != n {
            return Err(CheckpointError::Mismatch(format!(
                "snapshot has {snap_nodes} nodes, the graph has {n}"
            )));
        }
        if snap.prev_flow.len() != m {
            return Err(CheckpointError::Mismatch(format!(
                "snapshot has {} edges, the graph has {m}",
                snap.prev_flow.len()
            )));
        }
        if snap.initial_total.to_bits() != self.initial_total.to_bits() {
            return Err(CheckpointError::Mismatch(format!(
                "snapshot initial total {} differs from the simulation's {}",
                snap.initial_total, self.initial_total
            )));
        }
        // Compact runs must be able to re-narrow the widened snapshot
        // bit-exactly; validate every value BEFORE touching any state so
        // the simulator stays unmodified on error. (Snapshots taken from
        // a compact run always pass: widening f32→f64 / i32→i64 is
        // lossless. Only a snapshot from a *full-width* run of the same
        // spec could fail, and then the state genuinely doesn't fit.)
        if self.is_compact() {
            match &snap.loads {
                LoadsSnapshot::Discrete(src) => {
                    if let Some(&bad) = src.iter().find(|&&x| i64::from(x as i32) != x) {
                        return Err(CheckpointError::Mismatch(format!(
                            "snapshot load {bad} does not fit the mem=compact i32 storage"
                        )));
                    }
                }
                LoadsSnapshot::Continuous(src) => {
                    if let Some(&bad) = src
                        .iter()
                        .find(|&&x| f64::from(x as f32).to_bits() != x.to_bits())
                    {
                        return Err(CheckpointError::Mismatch(format!(
                            "snapshot load {bad} does not narrow exactly to the                              mem=compact f32 storage"
                        )));
                    }
                }
            }
            if let Some(&bad) = snap
                .prev_flow
                .iter()
                .find(|&&x| f64::from(x as f32).to_bits() != x.to_bits())
            {
                return Err(CheckpointError::Mismatch(format!(
                    "snapshot flow memory {bad} does not narrow exactly to the                      mem=compact f32 storage"
                )));
            }
        }
        match (&mut self.state, &snap.loads) {
            (State::Discrete { loads, .. }, LoadsSnapshot::Discrete(src)) => {
                loads.copy_from_slice(src);
            }
            (State::Continuous { loads }, LoadsSnapshot::Continuous(src)) => {
                loads.copy_from_slice(src);
            }
            (State::DiscreteCompact { loads, .. }, LoadsSnapshot::Discrete(src)) => {
                for (l, &x) in loads.iter_mut().zip(src) {
                    *l = x as i32;
                }
            }
            (State::ContinuousCompact { loads }, LoadsSnapshot::Continuous(src)) => {
                for (l, &x) in loads.iter_mut().zip(src) {
                    *l = x as f32;
                }
            }
            _ => unreachable!("mode checked above"),
        }
        if self.is_compact() {
            for (p, &x) in self.prev_flow32.iter_mut().zip(&snap.prev_flow) {
                *p = x as f32;
            }
        } else {
            self.prev_flow.copy_from_slice(&snap.prev_flow);
        }
        if let Some(attachment) = &self.pool {
            match &self.state {
                State::Discrete { loads, .. } => attachment.job.write_loads_i(loads),
                State::Continuous { loads } => attachment.job.write_loads_f(loads),
                State::DiscreteCompact { loads, .. } => attachment.job.write_loads_i32(loads),
                State::ContinuousCompact { loads } => attachment.job.write_loads_f32(loads),
            }
            if self.is_compact() {
                attachment.job.write_prev32(&self.prev_flow32);
            } else {
                attachment.job.write_prev(&self.prev_flow);
            }
        }
        self.round = snap.round;
        self.rounds_in_scheme = snap.rounds_in_scheme;
        self.min_transient = snap.min_transient;
        self.round_stats =
            snap.round_stats
                .map(
                    |[min_transient, min_load, max_dev, min_dev, sum_sq_dev]| LoadStats {
                        min_transient,
                        min_load,
                        max_dev,
                        min_dev,
                        sum_sq_dev,
                    },
                );
        // A fired hybrid/degradation switch means the scheme is FOS from
        // `switch_round` on, whatever the spec's scheme was. (Set
        // directly — `switch_scheme` would clear the restored
        // `rounds_in_scheme` warm-up counter.)
        if snap.switch_round.is_some() && self.scheme.is_diffusion() {
            self.scheme = Scheme::fos();
        }
        // Fault masks are pure per-epoch functions of the spec's seeds
        // (never incremental), so materializing the pre-resume epoch
        // once puts every mask exactly where an uninterrupted run would
        // have it; the cumulative event counters are then overwritten
        // with the snapshot's so future epochs extend the original
        // counts.
        self.scratch.fault = Default::default();
        if snap.round > 0 {
            self.scratch.fault.begin_round(
                &self.scheme_kernel.faults,
                self.graph,
                snap.round - 1,
                self.scheme_kernel.fault_sweep_family(),
            );
        }
        self.scratch.fault.events = snap.fault_events;
        self.scratch.load = Default::default();
        self.scratch.load.events = snap.load_events;
        // The churn overlay is history-dependent (unlike the per-epoch
        // fault redraw), so restore installs the persisted words
        // verbatim — never redrawing a transition — and re-derives the
        // epoch's masks from them against the rematerialized crash-live
        // set. The memoized epoch is the last *processed* round's, so
        // the next round transitions exactly when an uninterrupted run
        // would.
        self.scratch.churn = Default::default();
        if !snap.churn_active.is_empty() {
            self.scratch.churn.restore(
                n,
                snap.churn_active.clone(),
                snap.round.saturating_sub(1) / crate::fault::EPOCH_LEN,
            );
            let fault_live = self
                .scheme_kernel
                .faults
                .crash
                .is_some()
                .then(|| self.scratch.fault.live_node_words());
            self.scratch.churn.rebuild_masks(
                self.graph,
                fault_live,
                self.scheme_kernel.sweep_family(),
            );
        }
        self.scratch.churn.events = snap.churn_events;
        self.saved_loop = SavedLoop {
            run_start: snap.run_start,
            switch_round: snap.switch_round,
            degraded: snap.degraded,
            watch: snap
                .watch
                .as_ref()
                .and_then(|w| DivergenceWatch::from_raw_parts(w.armed, &w.ring, w.len, w.pos)),
            steady: snap.steady.as_ref().and_then(|s| {
                SteadyTracker::from_raw_parts(
                    s.window,
                    s.ring.clone(),
                    s.pos,
                    s.len,
                    s.newer_sum,
                    s.older_sum,
                    s.check,
                )
            }),
            plateau: snap
                .plateau
                .as_ref()
                .and_then(|p| RemainingImbalance::from_history(p.window, p.history.clone())),
            pending_resume: true,
        };
        Ok(())
    }

    /// Current quality metrics, recomputed from scratch (`O(n + m)`).
    ///
    /// Deviations are measured against the **conserved initial total**
    /// (exact in discrete mode by token conservation; in continuous mode
    /// this pins the balanced load to the invariant instead of a float
    /// re-sum that drifts by rounding error). After a round has run,
    /// [`Simulator::round_metrics`] returns the same snapshot from the
    /// fused in-loop reduction without the `O(n)` node sweep.
    pub fn metrics(&self) -> MetricsSnapshot {
        snapshot_with_total(self.graph, &self.speeds, self.initial_total, |i| {
            self.load_of(i)
        })
    }

    /// The metrics snapshot of the state after the last executed round,
    /// assembled from the **fused in-loop reduction** the apply kernels
    /// compute while applying flows — `None` before the first round.
    ///
    /// The node-derived fields cost nothing here (they were reduced
    /// inside the round); only `max_local_diff` pays a dedicated edge
    /// sweep, because it is inherently an edge metric. The snapshot is
    /// **bit-identical** to [`Simulator::metrics`] on every executor:
    /// the potential is summed per [`crate::metrics::DEV_BLOCK`]-node
    /// block with partials folded in block order, and pooled node
    /// chunks are block-aligned, so no thread count regroups the sum
    /// (`tests/fused_metrics.rs` pins exact equality across all
    /// schemes, modes, and thread counts).
    pub fn round_metrics(&self) -> Option<MetricsSnapshot> {
        let stats = self.round_stats?;
        Some(MetricsSnapshot {
            max_minus_avg: stats.max_dev,
            min_minus_avg: stats.min_dev,
            max_local_diff: local_diff_with(self.graph, &self.speeds, |i| self.load_of(i)),
            potential_over_n: stats.sum_sq_dev / self.graph.node_count() as f64,
            min_load: stats.min_load,
        })
    }

    /// Fused `max − avg` of the current state: free after any round, one
    /// node sweep before the first.
    fn max_minus_avg(&self) -> f64 {
        match self.round_stats {
            Some(stats) => stats.max_dev,
            None => self.metrics().max_minus_avg,
        }
    }

    /// Switches the active scheme (the SOS→FOS hybrid of Section VI).
    ///
    /// Loads are kept; the scheme restarts its round counter, so a switch
    /// *to* SOS begins with an FOS round, as the paper prescribes.
    ///
    /// # Panics
    ///
    /// Panics unless both the current and the target scheme are diffusion
    /// schemes (FOS/SOS): the pairwise schemes bake their coloring or
    /// matching plan and λ-scaled coefficient tables into the simulator at
    /// construction, so changing families mid-run requires building a new
    /// experiment. (The [`crate::ExperimentBuilder`] reports a hybrid
    /// policy on a pairwise scheme as
    /// [`BuildError::HybridRequiresDiffusion`] instead of panicking.)
    pub fn switch_scheme(&mut self, scheme: Scheme) {
        assert!(
            self.scheme.is_diffusion() && scheme.is_diffusion(),
            "switch_scheme supports the diffusion family (FOS/SOS) only; \
             build a new experiment to change scheme families"
        );
        self.scheme = scheme;
        self.rounds_in_scheme = 0;
    }

    /// Executes one synchronous round.
    pub fn step(&mut self) {
        let (mem, gain) = self.scheme.coefficients(self.rounds_in_scheme);
        if self.pool.is_some() {
            self.step_pooled(mem, gain);
        } else {
            self.step_sequential(mem, gain);
        }
        self.round += 1;
        self.rounds_in_scheme += 1;
    }

    fn step_sequential(&mut self, mem: f64, gain: f64) {
        let Self {
            graph,
            tables,
            scheme_kernel,
            state,
            prev_flow,
            prev_flow32,
            arc_frac,
            arc_frac32,
            scratch,
            flow_memory,
            round,
            min_transient,
            round_stats,
            ..
        } = self;
        let t = &**tables;
        // Each arm monomorphizes the generic round over its layout's
        // buffer handles; the full-width arms compile to the exact
        // pre-compact code (Cell wrappers are free).
        let stats = match state {
            State::Discrete { loads, int_flows } => scheme_kernel.run_discrete_seq(
                t,
                graph,
                mem,
                gain,
                *round,
                *flow_memory,
                &cells_i64(loads),
                &cells_f64(prev_flow),
                &cells_i64(int_flows),
                &cells_f64(arc_frac),
                scratch,
            ),
            State::Continuous { loads } => scheme_kernel.run_continuous_seq(
                t,
                graph,
                mem,
                gain,
                *round,
                &cells_f64(loads),
                &cells_f64(prev_flow),
                scratch,
            ),
            State::DiscreteCompact { loads, int_flows } => scheme_kernel.run_discrete_seq(
                t,
                graph,
                mem,
                gain,
                *round,
                *flow_memory,
                &cells_i32(loads),
                &cells_f32(prev_flow32),
                &cells_i32(int_flows),
                &cells_f32(arc_frac32),
                scratch,
            ),
            State::ContinuousCompact { loads } => scheme_kernel.run_continuous_seq(
                t,
                graph,
                mem,
                gain,
                *round,
                &cells_f32(loads),
                &cells_f32(prev_flow32),
                scratch,
            ),
        };
        if stats.min_transient < *min_transient {
            *min_transient = stats.min_transient;
        }
        *round_stats = Some(stats);
    }

    fn step_pooled(&mut self, mem: f64, gain: f64) {
        let Self {
            graph,
            pool,
            tables,
            state,
            prev_flow,
            prev_flow32,
            scratch,
            round,
            min_transient,
            round_stats,
            ..
        } = self;
        let attachment = pool.as_ref().expect("step_pooled requires a pool");
        let compact = matches!(
            state,
            State::DiscreteCompact { .. } | State::ContinuousCompact { .. }
        );
        // Per-round plan state (the random-matching or fault-effective
        // mask, plus any fault perturbations of the loads) is produced
        // here, on the control thread, and published into the job before
        // the round's first barrier — results never depend on the
        // executor.
        if compact {
            attachment.job.kernel().prepare_pooled(
                tables,
                graph,
                *round,
                scratch,
                &AtomicsI32(attachment.job.loads_i32_slots()),
                &AtomicsF32(attachment.job.loads_f32_slots()),
                attachment.job.mask_slots(),
                attachment.job.stale_slots(),
            );
        } else {
            attachment.job.kernel().prepare_pooled(
                tables,
                graph,
                *round,
                scratch,
                &AtomicsI64(attachment.job.loads_i_slots()),
                &AtomicsF64(attachment.job.loads_f_slots()),
                attachment.job.mask_slots(),
                attachment.job.stale_slots(),
            );
        }
        let stats = attachment
            .pool
            .run_round(&attachment.job, mem, gain, *round, &mut scratch.fw);
        if stats.min_transient < *min_transient {
            *min_transient = stats.min_transient;
        }
        *round_stats = Some(stats);
        // Mirror the job's canonical state back into the accessor-visible
        // vectors (bit-exact copies). This eager O(n + m) sync keeps every
        // `&self` accessor valid between rounds; threshold/plateau stop
        // conditions and observers read loads each round anyway, so a lazy
        // dirty-flag scheme would mostly shift the cost, not remove it.
        match state {
            State::Discrete { loads, .. } => attachment.job.read_loads_i(loads),
            State::Continuous { loads } => attachment.job.read_loads_f(loads),
            State::DiscreteCompact { loads, .. } => attachment.job.read_loads_i32(loads),
            State::ContinuousCompact { loads } => attachment.job.read_loads_f32(loads),
        }
        if compact {
            attachment.job.read_prev32(prev_flow32);
        } else {
            attachment.job.read_prev(prev_flow);
        }
    }

    /// Runs until the stop condition fires; returns a report.
    pub fn run_until(&mut self, condition: StopCondition) -> RunReport {
        self.run_loop(Trigger::None, condition, &mut crate::observer::NullObserver)
    }

    /// Runs until the stop condition fires, invoking the observer after
    /// every round.
    pub fn run_until_with(
        &mut self,
        condition: StopCondition,
        observer: &mut dyn Observer,
    ) -> RunReport {
        self.run_loop(Trigger::None, condition, observer)
    }

    /// Runs with an active SOS→FOS [`SwitchPolicy`] until the stop
    /// condition fires (Section VI). The policy is evaluated before every
    /// round and fires at most once; `switch_round` in the report records
    /// when.
    pub fn run_hybrid(&mut self, policy: SwitchPolicy, condition: StopCondition) -> RunReport {
        self.run_loop(
            Trigger::Policy(policy),
            condition,
            &mut crate::observer::NullObserver,
        )
    }

    /// Like [`Simulator::run_hybrid`], with an observer invoked after
    /// every round.
    pub fn run_hybrid_with(
        &mut self,
        policy: SwitchPolicy,
        condition: StopCondition,
        observer: &mut dyn Observer,
    ) -> RunReport {
        self.run_loop(Trigger::Policy(policy), condition, observer)
    }

    /// Runs with an arbitrary SOS→FOS switch trigger evaluated before
    /// every round (fires at most once). This enables strategies beyond
    /// [`SwitchPolicy`], e.g. the eigenvector-coefficient trigger the
    /// paper discusses (switch once the leading coefficient's impact drops
    /// below a threshold — a global-knowledge strategy for offline
    /// studies).
    pub fn run_when(
        &mut self,
        mut trigger: impl FnMut(&Simulator<'_>) -> bool,
        condition: StopCondition,
        observer: &mut dyn Observer,
    ) -> RunReport {
        self.run_loop(Trigger::Custom(&mut trigger), condition, observer)
    }

    /// The unified run loop behind `run_until*`, `run_hybrid*`,
    /// `run_when`, and [`crate::Experiment::run`]: an optional switch
    /// trigger evaluated before each round, the stop condition after it.
    ///
    /// Stop checks consume the **fused** load statistics the apply
    /// kernels reduce while applying flows, so threshold- and
    /// plateau-stopped runs make exactly one pass over the node loads
    /// per round — there is no separate per-round `metrics()` sweep.
    /// The final report is assembled from the same fused statistics on
    /// *every* exit path (`MaxRounds` included); only its
    /// `max_local_diff` field pays a dedicated edge sweep, once per run.
    fn run_loop(
        &mut self,
        mut trigger: Trigger<'_>,
        condition: StopCondition,
        observer: &mut dyn Observer,
    ) -> RunReport {
        /// Built-in round cap of [`StopCondition::Steady`]: a guard
        /// against dynamic workloads that never settle.
        const STEADY_CAP: usize = 100_000;
        let start_round = self.round;
        let (cap, threshold, window, mut steady) = match condition {
            StopCondition::MaxRounds(r) => (r, None, None, None),
            StopCondition::BalancedWithin {
                threshold,
                max_rounds,
            } => (max_rounds, Some(threshold), None, None),
            StopCondition::Plateau { window, max_rounds } => (max_rounds, None, Some(window), None),
            StopCondition::Steady { window } => {
                (STEADY_CAP, None, None, Some(SteadyTracker::steady(window)))
            }
            StopCondition::Horizon(r) => (r, None, None, Some(SteadyTracker::horizon(r))),
        };
        let mut tracker = window.map(RemainingImbalance::new);
        // Graceful degradation: under fault or dynamic-load injection,
        // watch the fused per-round deviation for runaway growth (or
        // non-finite values) and fall back SOS→FOS through the ordinary
        // hybrid switching machinery. Disarmed (and branch-free after
        // the first check) for unperturbed runs.
        let mut watch = DivergenceWatch::new(
            !self.scheme_kernel.faults.is_none()
                || !self.scheme_kernel.loads.is_none()
                || !self.scheme_kernel.churn.is_none(),
        );
        let mut degraded = false;
        let mut reason = match condition {
            StopCondition::Horizon(_) => StopReason::Horizon,
            _ => StopReason::MaxRounds,
        };
        let mut remaining = None;
        let mut switch_round = None;
        // The round hybrid triggers count from: `start_round` for a fresh
        // run, the interrupted run's origin after a restore.
        let mut origin = start_round;
        let resumed = std::mem::take(&mut self.saved_loop);
        if resumed.pending_resume {
            origin = resumed.run_start;
            switch_round = resumed.switch_round;
            degraded = resumed.degraded;
            if let Some(w) = resumed.watch {
                if w.armed() == watch.armed() {
                    watch = w;
                }
            }
            if let Some(s) = resumed.steady {
                if steady
                    .as_ref()
                    .is_some_and(|fresh| fresh.checks_steadiness() == s.checks_steadiness())
                {
                    steady = Some(s);
                }
            }
            if let Some(p) = resumed.plateau {
                if window == Some(p.window()) {
                    tracker = Some(p);
                }
            }
        }
        let sink = self.ckpt.clone();
        for _ in 0..cap {
            if switch_round.is_none() {
                let fire = match &mut trigger {
                    Trigger::None => false,
                    Trigger::Policy(policy) => match *policy {
                        SwitchPolicy::AtRound(r) => self.round - origin >= r,
                        SwitchPolicy::MaxLocalDiffBelow(t) => {
                            // An edge metric: the one policy that costs a
                            // sweep (over edges) per round while armed.
                            local_diff_with(self.graph, &self.speeds, |i| self.load_of(i)) <= t
                        }
                        SwitchPolicy::MaxMinusAvgBelow(t) => self.max_minus_avg() <= t,
                        SwitchPolicy::Never => false,
                    },
                    Trigger::Custom(f) => f(self),
                };
                if fire {
                    self.switch_scheme(Scheme::fos());
                    switch_round = Some(self.round);
                }
            }
            self.step();
            observer.on_round(self);
            if watch.armed() {
                let max_dev = self
                    .round_stats
                    .expect("step() fills the fused round statistics")
                    .max_dev;
                if watch.observe(max_dev) {
                    degraded = true;
                    // Preserve the pre-degradation state for post-mortem
                    // before the SOS→FOS fallback rewrites the scheme.
                    if let Some(cfg) = &sink {
                        let snap = self.make_snapshot(
                            origin,
                            switch_round,
                            degraded,
                            Some(&watch),
                            steady.as_ref(),
                            tracker.as_ref(),
                        );
                        write_or_die(&cfg.degraded_path(), &cfg.spec_line, &snap);
                    }
                    if switch_round.is_none() && self.scheme.is_sos() {
                        self.switch_scheme(Scheme::fos());
                        switch_round = Some(self.round);
                    }
                }
            }
            if let Some(cfg) = &sink {
                if self.round.is_multiple_of(cfg.policy.every) {
                    let snap = self.make_snapshot(
                        origin,
                        switch_round,
                        degraded,
                        Some(&watch),
                        steady.as_ref(),
                        tracker.as_ref(),
                    );
                    write_or_die(&cfg.latest_path(), &cfg.spec_line, &snap);
                }
            }
            if threshold.is_some() || tracker.is_some() {
                let max_minus_avg = self
                    .round_stats
                    .expect("step() fills the fused round statistics")
                    .max_dev;
                if let Some(t) = threshold {
                    if max_minus_avg <= t {
                        reason = StopReason::Threshold;
                        break;
                    }
                }
                if let Some(tr) = tracker.as_mut() {
                    tr.push(max_minus_avg);
                    if tr.converged() {
                        reason = StopReason::Plateau;
                        remaining = tr.value();
                        break;
                    }
                }
            }
            if let Some(st) = steady.as_mut() {
                st.push(
                    self.round_stats
                        .expect("step() fills the fused round statistics")
                        .max_dev,
                );
                if st.is_steady() {
                    reason = StopReason::Steady;
                    break;
                }
            }
        }
        let steady_stats = steady.as_ref().and_then(SteadyTracker::stats);
        // Persist the loop locals so a snapshot taken after this call
        // still captures the run origin and the metric rings.
        self.saved_loop = SavedLoop {
            run_start: origin,
            switch_round,
            degraded,
            watch: Some(watch),
            steady,
            plateau: tracker,
            pending_resume: false,
        };
        RunReport {
            rounds: self.round - start_round,
            // Fused on every exit path; `metrics()` only for zero-round
            // runs on a freshly built simulator (nothing to fuse yet).
            final_metrics: self.round_metrics().unwrap_or_else(|| self.metrics()),
            reason,
            remaining_imbalance: remaining,
            switch_round,
            degraded,
            faults: self.fault_events(),
            load: self.load_events(),
            churn: self.churn_events(),
            steady: steady_stats,
        }
    }

    /// Fault events injected over this simulator's lifetime (all zero
    /// for `faults=none`).
    pub fn fault_events(&self) -> FaultEvents {
        self.scratch.fault.events
    }

    /// Dynamic-load events injected over this simulator's lifetime (all
    /// zero for `load=none`). The `injected` field is the net token
    /// delta, so conservation reads `total == initial + injected`.
    pub fn load_events(&self) -> LoadEvents {
        self.scratch.load.events
    }

    /// Topology-churn events over this simulator's lifetime (all zero
    /// for `churn=none`). With churn active, conservation reads
    /// `total == initial + injected + joined − departed`.
    pub fn churn_events(&self) -> ChurnEvents {
        self.scratch.churn.events
    }

    /// Maximum absolute per-node load difference to another simulation on
    /// the same graph (the paper's deviation `max_k |x_k^A − x_k^B|`).
    ///
    /// # Panics
    ///
    /// Panics if the node counts differ.
    pub fn deviation_from(&self, other: &Simulator<'_>) -> f64 {
        let n = self.graph.node_count();
        assert_eq!(n, other.graph.node_count(), "graphs differ in size");
        (0..n)
            .map(|i| (self.load_of(i) - other.load_of(i)).abs())
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::Experiment;
    use sodiff_graph::generators;

    /// Shorthand: a discrete FOS simulator through the builder.
    fn fos_sim<'g>(g: &'g Graph, rounding: Rounding, init: InitialLoad) -> Simulator<'g> {
        Experiment::on(g)
            .discrete(rounding)
            .init(init)
            .build()
            .expect("valid experiment")
            .simulator()
    }

    #[test]
    fn fos_balances_cycle() {
        let g = generators::cycle(8);
        let mut sim = fos_sim(&g, Rounding::randomized(1), InitialLoad::point(0, 800));
        let report = sim.run_until(StopCondition::MaxRounds(800));
        assert!(report.final_metrics.max_minus_avg <= 3.0);
        assert_eq!(sim.total_load(), 800.0);
    }

    #[test]
    fn conservation_all_roundings() {
        let g = generators::torus2d(4, 4);
        for rounding in [
            Rounding::randomized(3),
            Rounding::round_down(),
            Rounding::nearest(),
            Rounding::unbiased_edge(3),
        ] {
            let mut sim = fos_sim(&g, rounding, InitialLoad::point(5, 4321));
            sim.run_until(StopCondition::MaxRounds(100));
            assert_eq!(sim.total_load(), 4321.0, "{rounding:?}");
        }
    }

    #[test]
    fn continuous_fos_matches_matrix_power() {
        use sodiff_linalg::diffusion::DiffusionOperator;
        let g = generators::torus2d(3, 3);
        let s = Speeds::uniform(9);
        let mut sim = Experiment::on(&g)
            .continuous()
            .init(InitialLoad::point(4, 900))
            .build()
            .unwrap()
            .simulator();
        let op = DiffusionOperator::new(&g, &s);
        let mut x = vec![0.0; 9];
        x[4] = 900.0;
        let mut y = vec![0.0; 9];
        for _ in 0..20 {
            sim.step();
            op.apply(&x, &mut y);
            std::mem::swap(&mut x, &mut y);
        }
        let sim_loads = sim.loads_f64().unwrap();
        for (a, b) in sim_loads.iter().zip(&x) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn continuous_sos_matches_recurrence() {
        // x(t+1) = β·M·x(t) + (1−β)·x(t−1), first round FOS.
        use sodiff_linalg::diffusion::DiffusionOperator;
        let g = generators::cycle(6);
        let s = Speeds::uniform(6);
        let beta = 1.6;
        let mut sim = Experiment::on(&g)
            .continuous()
            .sos(beta)
            .init(InitialLoad::point(2, 600))
            .build()
            .unwrap()
            .simulator();
        let op = DiffusionOperator::new(&g, &s);
        let mut x_prev = vec![0.0; 6];
        x_prev[2] = 600.0;
        // First round: FOS.
        let mut x = vec![0.0; 6];
        op.apply(&x_prev, &mut x);
        sim.step();
        for t in 1..15 {
            let mut mx = vec![0.0; 6];
            op.apply(&x, &mut mx);
            let x_next: Vec<f64> = (0..6)
                .map(|i| beta * mx[i] + (1.0 - beta) * x_prev[i])
                .collect();
            x_prev = std::mem::replace(&mut x, x_next);
            sim.step();
            let sim_loads = sim.loads_f64().unwrap();
            for (i, (a, b)) in sim_loads.iter().zip(&x).enumerate() {
                assert!((a - b).abs() < 1e-8, "round {t} node {i}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn sos_beats_fos_on_torus() {
        let g = generators::torus2d(16, 16);
        let spec = sodiff_linalg::spectral::analyze(&g, &Speeds::uniform(256));
        let beta = spec.beta_opt();
        let run = |scheme| {
            let mut sim = Experiment::on(&g)
                .continuous()
                .scheme(scheme)
                .init(InitialLoad::point(0, 256_000))
                .build()
                .unwrap()
                .simulator();
            sim.run_until(StopCondition::BalancedWithin {
                threshold: 1.0,
                max_rounds: 20_000,
            })
            .rounds
        };
        let fos_rounds = run(Scheme::fos());
        let sos_rounds = run(Scheme::sos(beta));
        assert!(
            sos_rounds * 2 < fos_rounds,
            "SOS ({sos_rounds}) should be much faster than FOS ({fos_rounds})"
        );
    }

    #[test]
    fn heterogeneous_balances_proportionally() {
        let g = generators::torus2d(4, 4);
        let speeds = Speeds::two_class(16, 4, 4.0);
        let mut sim = Experiment::on(&g)
            .discrete(Rounding::randomized(5))
            .speeds(speeds)
            .init(InitialLoad::point(0, 2800))
            .build()
            .unwrap()
            .simulator();
        sim.run_until(StopCondition::MaxRounds(2000));
        // Ideal: fast nodes 4/28·2800 = 400, slow nodes 100.
        let loads = sim.loads_i64().unwrap();
        for (i, &x) in loads.iter().enumerate() {
            let ideal = if i < 4 { 400.0 } else { 100.0 };
            assert!(
                (x as f64 - ideal).abs() <= 25.0,
                "node {i}: {x} far from ideal {ideal}"
            );
        }
    }

    #[test]
    fn switch_scheme_resets_sos_warmup() {
        let g = generators::cycle(5);
        let mut sim = Experiment::on(&g)
            .continuous()
            .init(InitialLoad::point(0, 500))
            .build()
            .unwrap()
            .simulator();
        sim.step();
        sim.switch_scheme(Scheme::sos(1.5));
        // The first SOS round after the switch must not use flow memory:
        // coefficients(0) == (0, 1) — verified via scheme directly here,
        // and end-to-end by the hybrid tests.
        assert_eq!(sim.scheme(), Scheme::sos(1.5));
    }

    #[test]
    fn negative_load_occurs_with_sos_point_load() {
        // A huge point load with aggressive β overdraws neighbors in the
        // early waves; min_transient_load must capture that.
        let g = generators::torus2d(10, 10);
        let spec = sodiff_linalg::spectral::analyze(&g, &Speeds::uniform(100));
        let mut sim = Experiment::on(&g)
            .discrete(Rounding::randomized(2))
            .sos(spec.beta_opt())
            .init(InitialLoad::point(0, 100_000))
            .build()
            .unwrap()
            .simulator();
        sim.run_until(StopCondition::MaxRounds(300));
        assert!(
            sim.min_transient_load() < 0.0,
            "expected negative transient load, got {}",
            sim.min_transient_load()
        );
    }

    #[test]
    fn plateau_stop_reports_remaining_imbalance() {
        let g = generators::torus2d(8, 8);
        let spec = sodiff_linalg::spectral::analyze(&g, &Speeds::uniform(64));
        let mut sim = Experiment::on(&g)
            .discrete(Rounding::randomized(4))
            .sos(spec.beta_opt())
            .build()
            .unwrap()
            .simulator();
        let report = sim.run_until(StopCondition::Plateau {
            window: 50,
            max_rounds: 5000,
        });
        assert_eq!(report.reason, StopReason::Plateau);
        let remaining = report.remaining_imbalance.unwrap();
        assert!((0.0..30.0).contains(&remaining), "remaining {remaining}");
    }

    #[test]
    fn deviation_between_discrete_and_continuous_is_small() {
        let g = generators::torus2d(8, 8);
        let spec = sodiff_linalg::spectral::analyze(&g, &Speeds::uniform(64));
        let beta = spec.beta_opt();
        let mut d = Experiment::on(&g)
            .discrete(Rounding::randomized(11))
            .sos(beta)
            .build()
            .unwrap()
            .simulator();
        let mut c = Experiment::on(&g)
            .continuous()
            .sos(beta)
            .build()
            .unwrap()
            .simulator();
        let mut worst = 0.0f64;
        for _ in 0..400 {
            d.step();
            c.step();
            worst = worst.max(d.deviation_from(&c));
        }
        // Theorem 9 shape: deviation stays polylogarithmic (tiny here).
        assert!(worst < 60.0, "deviation {worst} too large");
        assert!(worst > 0.0, "discrete run should differ from continuous");
    }

    #[test]
    fn flow_memory_modes_differ_but_both_conserve() {
        let g = generators::torus2d(6, 6);
        let spec = sodiff_linalg::spectral::analyze(&g, &Speeds::uniform(36));
        let beta = spec.beta_opt();
        let mut runs = Vec::new();
        for memory in [FlowMemory::Rounded, FlowMemory::Scheduled] {
            let mut sim = Experiment::on(&g)
                .discrete(Rounding::randomized(9))
                .sos(beta)
                .flow_memory(memory)
                .build()
                .unwrap()
                .simulator();
            sim.run_until(StopCondition::MaxRounds(200));
            assert_eq!(sim.total_load(), 36_000.0);
            runs.push(sim.loads_i64().unwrap().to_vec());
        }
        assert_ne!(runs[0], runs[1], "memory modes should diverge");
    }

    #[test]
    fn balanced_threshold_stops_early() {
        let g = generators::complete(16);
        let mut sim = Experiment::on(&g)
            .continuous()
            .init(InitialLoad::point(0, 1600))
            .build()
            .unwrap()
            .simulator();
        let report = sim.run_until(StopCondition::BalancedWithin {
            threshold: 0.5,
            max_rounds: 100,
        });
        assert_eq!(report.reason, StopReason::Threshold);
        assert!(report.rounds <= 2, "complete graph balances in one step");
    }

    /// The parallel executor is bit-identical to the sequential one, for
    /// every rounding scheme and both modes.
    #[test]
    fn parallel_matches_sequential_discrete() {
        let g = generators::torus2d(9, 7); // odd sizes exercise chunking
        let n = g.node_count();
        let spec = sodiff_linalg::spectral::analyze(&g, &Speeds::uniform(n));
        let beta = spec.beta_opt();
        for rounding in [
            Rounding::randomized(13),
            Rounding::round_down(),
            Rounding::nearest(),
            Rounding::unbiased_edge(13),
        ] {
            let run = |threads: usize| {
                let mut sim = Experiment::on(&g)
                    .discrete(rounding)
                    .sos(beta)
                    .threads(threads)
                    .build()
                    .unwrap()
                    .simulator();
                sim.run_until(StopCondition::MaxRounds(120));
                (
                    sim.loads_i64().unwrap().to_vec(),
                    sim.min_transient_load(),
                    sim.previous_flows().to_vec(),
                )
            };
            let seq = run(1);
            for threads in [2, 3, 5] {
                let par = run(threads);
                assert_eq!(seq.0, par.0, "{rounding:?} loads, {threads} threads");
                assert_eq!(seq.1, par.1, "{rounding:?} transient, {threads} threads");
                assert_eq!(seq.2, par.2, "{rounding:?} flows, {threads} threads");
            }
        }
    }

    #[test]
    fn parallel_matches_sequential_continuous() {
        let g = generators::torus2d(8, 8);
        let n = g.node_count();
        let spec = sodiff_linalg::spectral::analyze(&g, &Speeds::uniform(n));
        let run = |threads: usize| {
            let mut sim = Experiment::on(&g)
                .continuous()
                .sos(spec.beta_opt())
                .threads(threads)
                .build()
                .unwrap()
                .simulator();
            sim.run_until(StopCondition::MaxRounds(200));
            (sim.loads_f64().unwrap().to_vec(), sim.min_transient_load())
        };
        let seq = run(1);
        let par = run(4);
        // Bit-identical: same summation order within every node.
        assert_eq!(seq.0, par.0);
        assert_eq!(seq.1, par.1);
    }

    #[test]
    fn parallel_heterogeneous_matches() {
        let g = generators::random_regular(60, 4, 2).unwrap();
        let speeds = Speeds::linear_ramp(60, 5.0);
        let run = |threads: usize| {
            let mut sim = Experiment::on(&g)
                .discrete(Rounding::randomized(3))
                .speeds(speeds.clone())
                .threads(threads)
                .init(InitialLoad::point(0, 60_000))
                .build()
                .unwrap()
                .simulator();
            sim.run_until(StopCondition::MaxRounds(100));
            sim.loads_i64().unwrap().to_vec()
        };
        assert_eq!(run(1), run(4));
    }

    #[test]
    #[should_panic(expected = "thread count must be positive")]
    fn zero_threads_rejected() {
        let config = SimulationConfig {
            scheme: Scheme::fos(),
            mode: Mode::Continuous,
            speeds: None,
            flow_memory: FlowMemory::Rounded,
            threads: 1,
            faults: FaultSpec::none(),
            load: LoadSpec::none(),
            churn: ChurnSpec::none(),
            ckpt: None,
            mem: MemSpec::Full,
        };
        config.with_threads(0);
    }

    #[test]
    fn hand_built_config_runs_through_fallible_constructor() {
        let g = generators::cycle(6);
        let config = SimulationConfig {
            scheme: Scheme::fos(),
            mode: Mode::Discrete(Rounding::nearest()),
            speeds: None,
            flow_memory: FlowMemory::Rounded,
            threads: 1,
            faults: FaultSpec::none(),
            load: LoadSpec::none(),
            churn: ChurnSpec::none(),
            ckpt: None,
            mem: MemSpec::Full,
        };
        let mut sim = Simulator::build(&g, config, InitialLoad::EqualPerNode(10), None).unwrap();
        sim.step();
        assert_eq!(sim.total_load(), 60.0);
    }

    #[test]
    fn accessors_reflect_configuration() {
        let g = generators::cycle(6);
        let speeds = Speeds::linear_ramp(6, 3.0);
        let sim = Experiment::on(&g)
            .discrete(Rounding::nearest())
            .speeds(speeds.clone())
            .threads(2)
            .init(InitialLoad::EqualPerNode(10))
            .build()
            .unwrap()
            .simulator();
        assert!(sim.is_discrete());
        assert_eq!(sim.threads(), 2);
        assert_eq!(sim.round(), 0);
        assert_eq!(sim.graph().node_count(), 6);
        assert_eq!(sim.speeds(), &speeds);
        assert_eq!(sim.initial_total(), 60.0);
        assert!(sim.loads_f64().is_none(), "discrete mode has no f64 loads");
        assert_eq!(sim.loads_i64().unwrap(), &[10; 6]);
        assert_eq!(sim.loads_to_f64(), vec![10.0; 6]);
        assert_eq!(sim.load_of(3), 10.0);
        // Pre-round transient equals the initial minimum load.
        assert_eq!(sim.min_transient_load(), 10.0);
    }

    #[test]
    fn continuous_mode_accessors() {
        let g = generators::cycle(4);
        let sim = Experiment::on(&g)
            .continuous()
            .init(InitialLoad::point(1, 40))
            .build()
            .unwrap()
            .simulator();
        assert!(!sim.is_discrete());
        assert!(sim.loads_i64().is_none());
        assert_eq!(sim.loads_f64().unwrap(), &[0.0, 40.0, 0.0, 0.0]);
    }

    #[test]
    fn previous_flows_start_zero_and_update() {
        let g = generators::path(3);
        let mut sim = fos_sim(&g, Rounding::round_down(), InitialLoad::point(0, 90));
        assert!(sim.previous_flows().iter().all(|&f| f == 0.0));
        sim.step();
        // Node 0 (deg 1, neighbor deg 2): alpha = 1/3, flow = 30 exactly.
        assert_eq!(sim.previous_flows()[0], 30.0);
    }
}
