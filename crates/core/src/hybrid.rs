//! The SOS→FOS hybrid strategy (paper Section VI).
//!
//! The paper's central empirical observation: SOS converges fast but its
//! residual imbalance plateaus above what FOS can reach; switching every
//! node to FOS once the system is "almost" balanced removes most of the
//! remaining imbalance. The switch trigger can be a fixed round (the
//! paper's 2500/3000-step experiments, Figures 4–5) or a *local* criterion
//! such as the maximum local load difference — which, as the paper notes,
//! is available in a distributed system, unlike eigenvector information.
//!
//! Hybrid execution is part of the core run loop: attach a
//! [`SwitchPolicy`] with [`crate::ExperimentBuilder::hybrid`], or call
//! [`crate::Simulator::run_hybrid`] /
//! [`crate::Simulator::run_hybrid_with`] / [`crate::Simulator::run_when`]
//! on an existing simulator. (The pre-0.2 free `run_hybrid*` functions
//! and `HybridReport` were removed after their deprecation release; the
//! switch round now lives in [`RunReport::switch_round`].)
//!
//! [`RunReport::switch_round`]: crate::RunReport

use std::fmt;
use std::str::FromStr;

use crate::engine::{Simulator, StopCondition};
use crate::error::ParseError;

/// When the hybrid controller flips from SOS to FOS.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SwitchPolicy {
    /// Switch at a fixed round (counted from the start of the hybrid run).
    AtRound(u64),
    /// Switch once the maximum local load difference drops to the given
    /// number of tokens (the distributed-friendly trigger the paper
    /// recommends).
    MaxLocalDiffBelow(f64),
    /// Switch once `max − avg` drops to the given number of tokens.
    MaxMinusAvgBelow(f64),
    /// Never switch (pure-SOS baseline, for comparisons).
    Never,
}

impl fmt::Display for SwitchPolicy {
    /// Scenario-file form: `at:R`, `local_diff:T`, `max_minus_avg:T`, or
    /// `never`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SwitchPolicy::AtRound(r) => write!(f, "at:{r}"),
            SwitchPolicy::MaxLocalDiffBelow(t) => write!(f, "local_diff:{t}"),
            SwitchPolicy::MaxMinusAvgBelow(t) => write!(f, "max_minus_avg:{t}"),
            SwitchPolicy::Never => f.write_str("never"),
        }
    }
}

impl FromStr for SwitchPolicy {
    type Err = ParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let bad = || {
            ParseError::new(format!(
                "unknown hybrid policy '{s}' (expected at:R, local_diff:T, \
                 max_minus_avg:T, or never)"
            ))
        };
        if s == "never" {
            return Ok(SwitchPolicy::Never);
        }
        let (kind, value) = s.split_once(':').ok_or_else(bad)?;
        match kind {
            "at" => value.parse().map(SwitchPolicy::AtRound).map_err(|_| bad()),
            "local_diff" => value
                .parse()
                .map(SwitchPolicy::MaxLocalDiffBelow)
                .map_err(|_| bad()),
            "max_minus_avg" => value
                .parse()
                .map(SwitchPolicy::MaxMinusAvgBelow)
                .map_err(|_| bad()),
            _ => Err(bad()),
        }
    }
}

/// Runs the pure-SOS baseline and the hybrid side by side on identical
/// copies of a simulation and returns `(sos_final, hybrid_final)` maximum
/// loads above average — the comparison in the paper's Figure 5.
pub fn compare_sos_vs_hybrid<'g>(
    mut sos: Simulator<'g>,
    mut hybrid: Simulator<'g>,
    policy: SwitchPolicy,
    total_rounds: u64,
) -> (f64, f64) {
    let condition = StopCondition::MaxRounds(total_rounds as usize);
    sos.run_until(condition);
    hybrid.run_hybrid(policy, condition);
    (sos.metrics().max_minus_avg, hybrid.metrics().max_minus_avg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::Experiment;
    use crate::rounding::Rounding;
    use crate::scheme::Scheme;
    use sodiff_graph::generators;
    use sodiff_linalg::spectral;

    fn sos_sim(g: &sodiff_graph::Graph, seed: u64) -> Simulator<'_> {
        let spec = spectral::analyze(g, &sodiff_graph::Speeds::uniform(g.node_count()));
        Experiment::on(g)
            .discrete(Rounding::randomized(seed))
            .sos(spec.beta_opt())
            .build()
            .expect("valid experiment")
            .simulator()
    }

    #[test]
    fn fixed_round_switch_fires_exactly_once() {
        let g = generators::torus2d(8, 8);
        let mut sim = sos_sim(&g, 1);
        let report = sim.run_hybrid(SwitchPolicy::AtRound(50), StopCondition::MaxRounds(200));
        assert_eq!(report.switch_round, Some(50));
        assert_eq!(sim.scheme(), Scheme::fos());
        assert_eq!(report.rounds, 200);
    }

    #[test]
    fn never_policy_keeps_sos() {
        let g = generators::torus2d(6, 6);
        let mut sim = sos_sim(&g, 2);
        let report = sim.run_hybrid(SwitchPolicy::Never, StopCondition::MaxRounds(100));
        assert_eq!(report.switch_round, None);
        assert!(sim.scheme().is_sos());
    }

    #[test]
    fn local_diff_trigger_fires_after_convergence() {
        let g = generators::torus2d(10, 10);
        let mut sim = sos_sim(&g, 3);
        let report = sim.run_hybrid(
            SwitchPolicy::MaxLocalDiffBelow(10.0),
            StopCondition::MaxRounds(3000),
        );
        let switch = report
            .switch_round
            .expect("local-diff trigger should fire on a 10x10 torus within 3000 rounds");
        assert!(switch > 0);
        assert_eq!(sim.scheme(), Scheme::fos());
    }

    #[test]
    fn custom_trigger_switches_once() {
        let g = generators::torus2d(8, 8);
        let mut sim = sos_sim(&g, 5);
        let mut calls = 0u32;
        let report = sim.run_when(
            |s| {
                calls += 1;
                s.round() >= 30
            },
            StopCondition::MaxRounds(100),
            &mut crate::observer::NullObserver,
        );
        assert_eq!(report.switch_round, Some(30));
        // Trigger stops being evaluated after it fires.
        assert_eq!(calls, 31);
        assert_eq!(sim.scheme(), Scheme::fos());
    }

    /// The paper's headline hybrid result: switching to FOS drops the
    /// remaining imbalance below what pure SOS reaches.
    #[test]
    fn hybrid_improves_remaining_imbalance() {
        let g = generators::torus2d(16, 16);
        let sos = sos_sim(&g, 7);
        let hybrid = sos_sim(&g, 7);
        let (sos_final, hybrid_final) =
            compare_sos_vs_hybrid(sos, hybrid, SwitchPolicy::AtRound(400), 800);
        assert!(
            hybrid_final <= sos_final,
            "hybrid ({hybrid_final}) should not be worse than SOS ({sos_final})"
        );
        assert!(
            hybrid_final <= 8.0,
            "paper: post-switch max-avg drops to ~7 tokens, got {hybrid_final}"
        );
    }
}
