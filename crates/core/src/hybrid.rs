//! The SOS→FOS hybrid strategy (paper Section VI).
//!
//! The paper's central empirical observation: SOS converges fast but its
//! residual imbalance plateaus above what FOS can reach; switching every
//! node to FOS once the system is "almost" balanced removes most of the
//! remaining imbalance. The switch trigger can be a fixed round (the
//! paper's 2500/3000-step experiments, Figures 4–5) or a *local* criterion
//! such as the maximum local load difference — which, as the paper notes,
//! is available in a distributed system, unlike eigenvector information.

use crate::engine::{RunReport, Simulator, StopCondition};
use crate::observer::Observer;
use crate::scheme::Scheme;

/// When the hybrid controller flips from SOS to FOS.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SwitchPolicy {
    /// Switch at a fixed round (counted from the start of the hybrid run).
    AtRound(u64),
    /// Switch once the maximum local load difference drops to the given
    /// number of tokens (the distributed-friendly trigger the paper
    /// recommends).
    MaxLocalDiffBelow(f64),
    /// Switch once `max − avg` drops to the given number of tokens.
    MaxMinusAvgBelow(f64),
    /// Never switch (pure-SOS baseline, for comparisons).
    Never,
}

/// Outcome of a hybrid run.
#[derive(Debug, Clone)]
pub struct HybridReport {
    /// The round at which the switch happened, if it did.
    pub switch_round: Option<u64>,
    /// The report of the underlying run.
    pub run: RunReport,
}

/// Runs `total_rounds` rounds, switching the simulator to `fos` when the
/// policy fires (at most once), and invoking `observer` every round.
///
/// The simulator keeps its loads across the switch; only the scheme
/// changes, exactly as in the paper's experiments where "every node
/// synchronously switches to first order scheme".
pub fn run_hybrid(
    sim: &mut Simulator<'_>,
    policy: SwitchPolicy,
    total_rounds: u64,
    observer: &mut dyn Observer,
) -> HybridReport {
    let start = sim.round();
    let mut switch_round = None;
    for _ in 0..total_rounds {
        if switch_round.is_none() {
            let fire = match policy {
                SwitchPolicy::AtRound(r) => sim.round() - start >= r,
                SwitchPolicy::MaxLocalDiffBelow(t) => sim.metrics().max_local_diff <= t,
                SwitchPolicy::MaxMinusAvgBelow(t) => sim.metrics().max_minus_avg <= t,
                SwitchPolicy::Never => false,
            };
            if fire {
                sim.switch_scheme(Scheme::fos());
                switch_round = Some(sim.round());
            }
        }
        sim.step();
        observer.on_round(sim);
    }
    HybridReport {
        switch_round,
        run: RunReport {
            rounds: sim.round() - start,
            final_metrics: sim.metrics(),
            reason: crate::engine::StopReason::MaxRounds,
            remaining_imbalance: None,
        },
    }
}

/// Like [`run_hybrid`], but with an arbitrary switch trigger evaluated
/// before every round. This enables strategies beyond [`SwitchPolicy`],
/// e.g. the eigenvector-coefficient trigger the paper discusses (switch
/// once the leading coefficient's impact drops below a threshold — a
/// global-knowledge strategy useful for offline studies):
///
/// ```
/// use sodiff_core::prelude::*;
/// use sodiff_core::hybrid::run_hybrid_when;
/// use sodiff_graph::generators;
///
/// let g = generators::torus2d(8, 8);
/// let mut sim = Simulator::new(
///     &g,
///     SimulationConfig::discrete(Scheme::sos(1.7), Rounding::randomized(1)),
///     InitialLoad::paper_default(64),
/// );
/// struct Null;
/// impl Observer for Null { fn on_round(&mut self, _: &Simulator<'_>) {} }
/// let report = run_hybrid_when(
///     &mut sim,
///     |sim| sim.metrics().potential_over_n < 1000.0,
///     300,
///     &mut Null,
/// );
/// assert!(report.switch_round.is_some());
/// ```
pub fn run_hybrid_when(
    sim: &mut Simulator<'_>,
    mut trigger: impl FnMut(&Simulator<'_>) -> bool,
    total_rounds: u64,
    observer: &mut dyn Observer,
) -> HybridReport {
    let start = sim.round();
    let mut switch_round = None;
    for _ in 0..total_rounds {
        if switch_round.is_none() && trigger(sim) {
            sim.switch_scheme(Scheme::fos());
            switch_round = Some(sim.round());
        }
        sim.step();
        observer.on_round(sim);
    }
    HybridReport {
        switch_round,
        run: RunReport {
            rounds: sim.round() - start,
            final_metrics: sim.metrics(),
            reason: crate::engine::StopReason::MaxRounds,
            remaining_imbalance: None,
        },
    }
}

/// Convenience: run SOS until the policy fires, then FOS until
/// `total_rounds` is exhausted, without an observer.
pub fn run_hybrid_quiet(
    sim: &mut Simulator<'_>,
    policy: SwitchPolicy,
    total_rounds: u64,
) -> HybridReport {
    struct Null;
    impl Observer for Null {
        fn on_round(&mut self, _sim: &Simulator<'_>) {}
    }
    run_hybrid(sim, policy, total_rounds, &mut Null)
}

/// Runs the pure-SOS baseline and the hybrid side by side on identical
/// copies of a simulation and returns `(sos_final, hybrid_final)` maximum
/// loads above average — the comparison in the paper's Figure 5.
pub fn compare_sos_vs_hybrid<'g>(
    mut sos: Simulator<'g>,
    mut hybrid: Simulator<'g>,
    policy: SwitchPolicy,
    total_rounds: u64,
) -> (f64, f64) {
    sos.run_until(StopCondition::MaxRounds(total_rounds as usize));
    run_hybrid_quiet(&mut hybrid, policy, total_rounds);
    (sos.metrics().max_minus_avg, hybrid.metrics().max_minus_avg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::SimulationConfig;
    use crate::init::InitialLoad;
    use crate::rounding::Rounding;
    use sodiff_graph::{generators, Speeds};
    use sodiff_linalg::spectral;

    fn sos_sim(g: &sodiff_graph::Graph, seed: u64) -> Simulator<'_> {
        let spec = spectral::analyze(g, &Speeds::uniform(g.node_count()));
        Simulator::new(
            g,
            SimulationConfig::discrete(Scheme::sos(spec.beta_opt()), Rounding::randomized(seed)),
            InitialLoad::paper_default(g.node_count()),
        )
    }

    #[test]
    fn fixed_round_switch_fires_exactly_once() {
        let g = generators::torus2d(8, 8);
        let mut sim = sos_sim(&g, 1);
        let report = run_hybrid_quiet(&mut sim, SwitchPolicy::AtRound(50), 200);
        assert_eq!(report.switch_round, Some(50));
        assert_eq!(sim.scheme(), Scheme::fos());
        assert_eq!(report.run.rounds, 200);
    }

    #[test]
    fn never_policy_keeps_sos() {
        let g = generators::torus2d(6, 6);
        let mut sim = sos_sim(&g, 2);
        let report = run_hybrid_quiet(&mut sim, SwitchPolicy::Never, 100);
        assert_eq!(report.switch_round, None);
        assert!(sim.scheme().is_sos());
    }

    #[test]
    fn local_diff_trigger_fires_after_convergence() {
        let g = generators::torus2d(10, 10);
        let mut sim = sos_sim(&g, 3);
        let report = run_hybrid_quiet(&mut sim, SwitchPolicy::MaxLocalDiffBelow(10.0), 3000);
        let switch = report
            .switch_round
            .expect("local-diff trigger should fire on a 10x10 torus within 3000 rounds");
        assert!(switch > 0);
        assert_eq!(sim.scheme(), Scheme::fos());
    }

    #[test]
    fn custom_trigger_switches_once() {
        let g = generators::torus2d(8, 8);
        let mut sim = sos_sim(&g, 5);
        struct Null;
        impl crate::observer::Observer for Null {
            fn on_round(&mut self, _: &Simulator<'_>) {}
        }
        let mut calls = 0u32;
        let report = run_hybrid_when(
            &mut sim,
            |s| {
                calls += 1;
                s.round() >= 30
            },
            100,
            &mut Null,
        );
        assert_eq!(report.switch_round, Some(30));
        // Trigger stops being evaluated after it fires.
        assert_eq!(calls, 31);
        assert_eq!(sim.scheme(), Scheme::fos());
    }

    /// The paper's headline hybrid result: switching to FOS drops the
    /// remaining imbalance below what pure SOS reaches.
    #[test]
    fn hybrid_improves_remaining_imbalance() {
        let g = generators::torus2d(16, 16);
        let sos = sos_sim(&g, 7);
        let hybrid = sos_sim(&g, 7);
        let (sos_final, hybrid_final) =
            compare_sos_vs_hybrid(sos, hybrid, SwitchPolicy::AtRound(400), 800);
        assert!(
            hybrid_final <= sos_final,
            "hybrid ({hybrid_final}) should not be worse than SOS ({sos_final})"
        );
        assert!(
            hybrid_final <= 8.0,
            "paper: post-switch max-avg drops to ~7 tokens, got {hybrid_final}"
        );
    }
}
