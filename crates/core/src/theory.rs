//! Closed-form theory bounds from the paper, as calculators.
//!
//! All bounds are asymptotic (`O(·)`); the functions below evaluate the
//! bound *shapes* with unit constants, which is what the integration tests
//! and the EXPERIMENTS harness compare simulated quantities against. Every
//! function documents the theorem it implements.

/// Convergence time of continuous FOS:
/// `O(log(K·n·s_max)/(1−λ))` rounds (Section II; Elsässer–Monien–Preis for
/// the heterogeneous form). `k` is the initial max-min load difference.
pub fn fos_convergence_rounds(k: f64, n: usize, s_max: f64, gap: f64) -> f64 {
    assert!(gap > 0.0, "eigenvalue gap must be positive");
    ((k.max(1.0) * n as f64 * s_max.max(1.0)).ln()).max(1.0) / gap
}

/// Convergence time of continuous SOS with optimal `β`:
/// `O(log(K·n·s_max)/√(1−λ))` rounds (Section II).
pub fn sos_convergence_rounds(k: f64, n: usize, s_max: f64, gap: f64) -> f64 {
    assert!(gap > 0.0, "eigenvalue gap must be positive");
    ((k.max(1.0) * n as f64 * s_max.max(1.0)).ln()).max(1.0) / gap.sqrt()
}

/// Deviation bound for randomized FOS (Theorem 4(2)):
/// `O(d·√(log n · log s_max/(1−λ)))`.
///
/// `log s_max` is clamped below at 1 so the homogeneous case (`s_max = 1`)
/// keeps the `O(d·√(log n/(1−λ)))` form the paper states for it.
pub fn fos_deviation_bound(d: usize, n: usize, s_max: f64, gap: f64) -> f64 {
    assert!(gap > 0.0, "eigenvalue gap must be positive");
    let log_s = s_max.ln().max(1.0);
    d as f64 * ((n as f64).ln().max(1.0) * log_s / gap).sqrt()
}

/// Deviation bound for randomized SOS (Theorem 9(2)):
/// `O(d·log s_max·√(log n)/(1−λ)^{3/4})`.
pub fn sos_deviation_bound(d: usize, n: usize, s_max: f64, gap: f64) -> f64 {
    assert!(gap > 0.0, "eigenvalue gap must be positive");
    let log_s = s_max.ln().max(1.0);
    d as f64 * log_s * (n as f64).ln().max(1.0).sqrt() / gap.powf(0.75)
}

/// Deviation bound for arbitrarily-rounded (floor/ceiling) discrete SOS
/// (Theorem 8): `O(d·√(n·s_max)/(1−λ))`.
pub fn sos_arbitrary_rounding_deviation_bound(d: usize, n: usize, s_max: f64, gap: f64) -> f64 {
    assert!(gap > 0.0, "eigenvalue gap must be positive");
    d as f64 * (n as f64 * s_max).sqrt() / gap
}

/// Minimum initial load per node sufficient to avoid negative load in
/// *continuous* SOS with optimal `β` (Theorem 10):
/// `O(√n·Δ(0)/√(1−λ))`, where `Δ(0)` is the initial max-load-above-average.
pub fn min_initial_load_continuous_sos(n: usize, delta0: f64, gap: f64) -> f64 {
    assert!(gap > 0.0, "eigenvalue gap must be positive");
    (n as f64).sqrt() * delta0 / gap.sqrt()
}

/// Minimum initial load per node sufficient to avoid negative load in
/// *discrete* SOS (Theorem 11): `O((√n·Δ(0) + d²)/√(1−λ))`.
pub fn min_initial_load_discrete_sos(n: usize, delta0: f64, d: usize, gap: f64) -> f64 {
    assert!(gap > 0.0, "eigenvalue gap must be positive");
    ((n as f64).sqrt() * delta0 + (d * d) as f64) / gap.sqrt()
}

/// Upper bound on the refined local divergence of FOS (Theorem 4(1)):
/// `O(√(d·log s_max/(1−λ)))`.
pub fn fos_divergence_bound(d: usize, s_max: f64, gap: f64) -> f64 {
    assert!(gap > 0.0, "eigenvalue gap must be positive");
    (d as f64 * s_max.ln().max(1.0) / gap).sqrt()
}

/// Upper bound on the refined local divergence of SOS (Theorem 9(1)):
/// `O(√d·log s_max/(1−λ)^{3/4})`.
pub fn sos_divergence_bound(d: usize, s_max: f64, gap: f64) -> f64 {
    assert!(gap > 0.0, "eigenvalue gap must be positive");
    (d as f64).sqrt() * s_max.ln().max(1.0) / gap.powf(0.75)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sos_is_faster_than_fos_for_small_gap() {
        let (k, n, s) = (1000.0, 10_000, 1.0);
        let gap = 1e-4;
        assert!(sos_convergence_rounds(k, n, s, gap) < fos_convergence_rounds(k, n, s, gap));
        // Quadratic speedup: ratio ≈ √gap.
        let ratio = sos_convergence_rounds(k, n, s, gap) / fos_convergence_rounds(k, n, s, gap);
        assert!((ratio - gap.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn deviation_bounds_order() {
        // For small gaps: FOS randomized < SOS randomized < SOS arbitrary.
        let (d, n, s) = (4, 1_000_000, 1.0);
        let gap = 1e-5;
        let fos = fos_deviation_bound(d, n, s, gap);
        let sos = sos_deviation_bound(d, n, s, gap);
        let arb = sos_arbitrary_rounding_deviation_bound(d, n, s, gap);
        assert!(fos < sos, "{fos} < {sos}");
        assert!(sos < arb, "{sos} < {arb}");
    }

    #[test]
    fn min_load_bounds_scale_with_delta() {
        let a = min_initial_load_continuous_sos(100, 10.0, 0.01);
        let b = min_initial_load_continuous_sos(100, 20.0, 0.01);
        assert!((b - 2.0 * a).abs() < 1e-9);
        // Discrete adds the d² term.
        let c = min_initial_load_discrete_sos(100, 10.0, 4, 0.01);
        assert!(c > a);
    }

    #[test]
    fn homogeneous_log_smax_clamps_to_one() {
        // s_max = 1 must not zero the bounds.
        assert!(fos_deviation_bound(4, 100, 1.0, 0.1) > 0.0);
        assert!(sos_deviation_bound(4, 100, 1.0, 0.1) > 0.0);
        assert!(fos_divergence_bound(4, 1.0, 0.1) > 0.0);
    }

    #[test]
    #[should_panic(expected = "gap must be positive")]
    fn rejects_zero_gap() {
        fos_convergence_rounds(1.0, 10, 1.0, 0.0);
    }

    #[test]
    fn divergence_bounds_shrink_with_gap() {
        let tight = fos_divergence_bound(4, 1.0, 0.5);
        let loose = fos_divergence_bound(4, 1.0, 0.001);
        assert!(loose > tight);
        let tight = sos_divergence_bound(4, 1.0, 0.5);
        let loose = sos_divergence_bound(4, 1.0, 0.001);
        assert!(loose > tight);
    }
}
