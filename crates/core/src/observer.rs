//! Observation hooks and the per-round metrics recorder.

use crate::engine::Simulator;
use crate::metrics::MetricsSnapshot;

/// Callback invoked after every simulated round.
pub trait Observer {
    /// Called once per round, after loads have been updated.
    fn on_round(&mut self, sim: &Simulator<'_>);
}

/// An [`Observer`] that ignores every round (the default for quiet runs).
#[derive(Debug, Clone, Copy, Default)]
pub struct NullObserver;

impl Observer for NullObserver {
    fn on_round(&mut self, _sim: &Simulator<'_>) {}
}

/// One recorded row of the per-round metric series.
#[derive(Debug, Clone, Copy)]
pub struct MetricsRow {
    /// Round number (1-based: recorded after the round executed).
    pub round: u64,
    /// Quality metrics at the end of the round.
    pub metrics: MetricsSnapshot,
    /// Minimum transient load observed so far.
    pub min_transient: f64,
    /// Total load (conservation check / float-error tracking, Figure 6).
    pub total_load: f64,
}

/// An [`Observer`] that records the metric series of a run, optionally
/// subsampled.
///
/// # Example
///
/// ```
/// use sodiff_core::prelude::*;
/// use sodiff_graph::generators;
///
/// let g = generators::cycle(8);
/// let mut sim = Experiment::on(&g)
///     .discrete(Rounding::randomized(1))
///     .init(InitialLoad::point(0, 80))
///     .build()
///     .unwrap()
///     .simulator();
/// let mut rec = Recorder::every(2);
/// sim.run_until_with(StopCondition::MaxRounds(10), &mut rec);
/// assert_eq!(rec.rows().len(), 5);
/// assert_eq!(rec.rows()[0].round, 2);
/// ```
#[derive(Debug, Clone)]
pub struct Recorder {
    every: u64,
    rows: Vec<MetricsRow>,
}

impl Recorder {
    /// Records every round.
    pub fn new() -> Self {
        Self::every(1)
    }

    /// Records every `stride`-th round.
    ///
    /// # Panics
    ///
    /// Panics if `stride == 0`.
    pub fn every(stride: u64) -> Self {
        assert!(stride > 0, "stride must be positive");
        Self {
            every: stride,
            rows: Vec::new(),
        }
    }

    /// The recorded rows.
    pub fn rows(&self) -> &[MetricsRow] {
        &self.rows
    }

    /// Consumes the recorder, returning the rows.
    pub fn into_rows(self) -> Vec<MetricsRow> {
        self.rows
    }

    /// The last recorded row.
    pub fn last(&self) -> Option<&MetricsRow> {
        self.rows.last()
    }
}

impl Default for Recorder {
    fn default() -> Self {
        Self::new()
    }
}

impl Observer for Recorder {
    fn on_round(&mut self, sim: &Simulator<'_>) {
        if !sim.round().is_multiple_of(self.every) {
            return;
        }
        self.rows.push(MetricsRow {
            round: sim.round(),
            metrics: sim.metrics(),
            min_transient: sim.min_transient_load(),
            total_load: sim.total_load(),
        });
    }
}

/// An observer that fans out to several observers in order.
pub struct MultiObserver<'a> {
    observers: Vec<&'a mut dyn Observer>,
}

impl<'a> MultiObserver<'a> {
    /// Wraps a list of observers.
    pub fn new(observers: Vec<&'a mut dyn Observer>) -> Self {
        Self { observers }
    }
}

impl Observer for MultiObserver<'_> {
    fn on_round(&mut self, sim: &Simulator<'_>) {
        for obs in &mut self.observers {
            obs.on_round(sim);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::StopCondition;
    use crate::experiment::Experiment;
    use crate::init::InitialLoad;
    use crate::rounding::Rounding;
    use sodiff_graph::generators;

    #[test]
    fn recorder_records_every_round() {
        let g = generators::cycle(6);
        let mut sim = Experiment::on(&g)
            .discrete(Rounding::randomized(1))
            .init(InitialLoad::point(0, 60))
            .build()
            .unwrap()
            .simulator();
        let mut rec = Recorder::new();
        sim.run_until_with(StopCondition::MaxRounds(7), &mut rec);
        assert_eq!(rec.rows().len(), 7);
        assert_eq!(rec.rows()[6].round, 7);
        assert!(rec.last().unwrap().metrics.max_minus_avg >= 0.0);
    }

    #[test]
    fn recorder_conservation_column() {
        let g = generators::torus2d(3, 3);
        let mut sim = Experiment::on(&g)
            .discrete(Rounding::nearest())
            .init(InitialLoad::point(0, 900))
            .build()
            .unwrap()
            .simulator();
        let mut rec = Recorder::new();
        sim.run_until_with(StopCondition::MaxRounds(20), &mut rec);
        assert!(rec.rows().iter().all(|r| r.total_load == 900.0));
    }

    #[test]
    fn multi_observer_fans_out() {
        let g = generators::cycle(5);
        let mut sim = Experiment::on(&g)
            .continuous()
            .init(InitialLoad::point(0, 50))
            .build()
            .unwrap()
            .simulator();
        let mut a = Recorder::new();
        let mut b = Recorder::every(2);
        {
            let mut multi = MultiObserver::new(vec![&mut a, &mut b]);
            sim.run_until_with(StopCondition::MaxRounds(4), &mut multi);
        }
        assert_eq!(a.rows().len(), 4);
        assert_eq!(b.rows().len(), 2);
    }
}
