//! Software-prefetch shim for the cache-bound passes.
//!
//! The hot kernels are compute-shaped, but the per-round random-matching
//! generation ([`crate::matchgen`]) and the randomized framework's
//! scatter pass touch memory through data-dependent indices that the
//! hardware prefetchers cannot follow. On x86-64, with the `accel`
//! feature enabled, [`read_index`] issues a `_mm_prefetch` (T0 hint) for
//! the cache line of `slice[index]` a few iterations ahead of the demand
//! access; everywhere else it compiles to nothing.
//!
//! Results are **bit-identical** with and without the feature: a prefetch
//! is purely a latency hint — it never changes an architectural value.
//! This is also why the shim takes a slice + index instead of a raw
//! pointer: out-of-range distances (`i + DIST` past the end near a loop
//! tail) degrade to a no-op via the bounds check rather than requiring
//! any caller-side guard, keeping call sites branch-free to read and the
//! unsafety confined to this module. (The intrinsic itself is safe for
//! any address; the bounds check just keeps the hint meaningful.)

/// How many iterations ahead the call sites prefetch. One value shared
/// by all passes: far enough to cover an L2 miss at ~1 ns/iteration loop
/// speeds, near enough that lines are rarely evicted before use.
pub(crate) const DIST: usize = 16;

/// Prefetches the cache line holding `slice[index]` for reading (T0
/// hint). No-op when `index` is out of range, off x86-64, or without the
/// `accel` feature.
#[inline(always)]
#[allow(unused_variables)]
pub(crate) fn read_index<T>(slice: &[T], index: usize) {
    #[cfg(all(feature = "accel", target_arch = "x86_64"))]
    if let Some(r) = slice.get(index) {
        // SAFETY: `_mm_prefetch` is a pure hint valid for any address;
        // `r` is a live in-bounds reference besides.
        #[allow(unsafe_code)]
        unsafe {
            use std::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
            _mm_prefetch::<_MM_HINT_T0>((r as *const T).cast());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_and_out_of_range_are_both_fine() {
        let v = [1u64, 2, 3];
        read_index(&v, 0);
        read_index(&v, 2);
        read_index(&v, 3); // out of range: silently nothing
        read_index::<u64>(&[], 0);
    }
}
