//! Quality metrics for load distributions (paper Section VI).

use sodiff_graph::{Graph, Speeds};

/// Snapshot of the load-distribution quality metrics the paper tracks.
///
/// All values are in token units. In the heterogeneous model, "average"
/// means the speed-proportional balanced load `x̄_i = m·s_i/s`, and the
/// local difference is measured on the speed-normalized loads `x_i/s_i`
/// (which coincide with the raw definitions when `s ≡ 1`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MetricsSnapshot {
    /// `φ_global = max_v (x_v − x̄_v)` — maximum load above the balanced
    /// load (the paper's "maximum load minus average load").
    pub max_minus_avg: f64,
    /// `min_v (x_v − x̄_v)` — most underloaded node (negative when below
    /// the balanced load; detects negative load when `< −x̄`).
    pub min_minus_avg: f64,
    /// `φ_local = max_{(u,v)∈E} |x_u/s_u − x_v/s_v|` — maximum local load
    /// difference over edges.
    pub max_local_diff: f64,
    /// `φ_t/n = Σ_v (x_v − x̄_v)²/n` — the 2-norm potential of
    /// Muthukrishnan et al., divided by `n` as in the paper's plots.
    pub potential_over_n: f64,
    /// Minimum raw load (goes negative when SOS overdraws a node).
    pub min_load: f64,
}

/// Computes all metrics, reading loads through a closure (allocation-free)
/// and deriving the balanced load from the total the closure sums to.
///
/// # Panics
///
/// Panics if `speeds.len()` does not match the graph.
pub fn snapshot_with(
    graph: &Graph,
    speeds: &Speeds,
    load_of: impl Fn(usize) -> f64,
) -> MetricsSnapshot {
    let total: f64 = (0..graph.node_count()).map(&load_of).sum();
    snapshot_with_total(graph, speeds, total, load_of)
}

/// Node-block width of the potential sum: `Σ dev²` is accumulated per
/// consecutive block of this many nodes and the block partials are then
/// folded in block order. Summation order is thereby **independent of
/// the executor** — the sequential apply pass, every pooled chunking
/// (node chunks are block-aligned), and the from-scratch
/// [`snapshot_with_total`] all produce bit-identical potentials, which
/// keeps `RunReport`s bit-identical across thread counts.
pub const DEV_BLOCK: usize = 64;

/// Like [`snapshot_with`], but measures deviations against an externally
/// known `total` instead of re-summing the loads.
///
/// The simulator uses its **conserved initial total** here: in discrete
/// mode token conservation makes that bit-identical to re-summing, and in
/// continuous mode it pins the balanced load to the invariant the scheme
/// converges to instead of a float sum that drifts by rounding error.
/// This is also what makes the fused in-loop reduction of the apply
/// kernels (`Simulator::round_metrics`) reproduce a from-scratch
/// recompute exactly: both sides derive `x̄_i = T·s_i/S` from the same
/// `T` and sum the potential in the same [`DEV_BLOCK`] grouping.
///
/// # Panics
///
/// Panics if `speeds.len()` does not match the graph.
pub fn snapshot_with_total(
    graph: &Graph,
    speeds: &Speeds,
    total: f64,
    load_of: impl Fn(usize) -> f64,
) -> MetricsSnapshot {
    let n = graph.node_count();
    assert_eq!(speeds.len(), n, "speeds length mismatch");
    let mut max_dev = f64::NEG_INFINITY;
    let mut min_dev = f64::INFINITY;
    let mut potential = 0.0;
    let mut block_acc = 0.0;
    let mut min_load = f64::INFINITY;
    // Compare-and-assign extrema, matching the fused apply-pass
    // reduction (`kernel::LoadStats::absorb`) operation for operation so
    // the two paths agree bit for bit.
    for i in 0..n {
        let x = load_of(i);
        let ideal = total * speeds.get(i) / speeds.total();
        let dev = x - ideal;
        if dev > max_dev {
            max_dev = dev;
        }
        if dev < min_dev {
            min_dev = dev;
        }
        block_acc += dev * dev;
        if (i + 1).is_multiple_of(DEV_BLOCK) {
            potential += block_acc;
            block_acc = 0.0;
        }
        if x < min_load {
            min_load = x;
        }
    }
    potential += block_acc;
    MetricsSnapshot {
        max_minus_avg: max_dev,
        min_minus_avg: min_dev,
        max_local_diff: local_diff_with(graph, speeds, load_of),
        potential_over_n: potential / n as f64,
        min_load,
    }
}

/// `φ_local = max_{(u,v)∈E} |x_u/s_u − x_v/s_v|` alone: the one snapshot
/// field that inherently needs an edge sweep. Exposed separately so
/// callers that already have the node-derived fields from the fused
/// in-loop reduction (the run loop's final report, the
/// `MaxLocalDiffBelow` switch policy) pay exactly this sweep and nothing
/// else.
pub fn local_diff_with(graph: &Graph, speeds: &Speeds, load_of: impl Fn(usize) -> f64) -> f64 {
    let mut max_local = 0.0f64;
    for &(u, v) in graph.edges() {
        let (u, v) = (u as usize, v as usize);
        let diff = (load_of(u) / speeds.get(u) - load_of(v) / speeds.get(v)).abs();
        max_local = max_local.max(diff);
    }
    max_local
}

/// Computes all metrics for a load vector.
///
/// # Panics
///
/// Panics if `loads.len()` does not match the graph/speeds.
pub fn snapshot(graph: &Graph, speeds: &Speeds, loads: &[f64]) -> MetricsSnapshot {
    assert_eq!(
        loads.len(),
        graph.node_count(),
        "load vector length mismatch"
    );
    snapshot_with(graph, speeds, |i| loads[i])
}

/// Convenience wrapper for integer load vectors.
pub fn snapshot_i64(graph: &Graph, speeds: &Speeds, loads: &[i64]) -> MetricsSnapshot {
    assert_eq!(
        loads.len(),
        graph.node_count(),
        "load vector length mismatch"
    );
    snapshot_with(graph, speeds, |i| loads[i] as f64)
}

/// Detects the *remaining imbalance* of a converged discrete system
/// (paper metric 5): the value around which `max − avg` fluctuates once it
/// stops improving.
///
/// Feed one `max_minus_avg` value per round; [`RemainingImbalance::value`]
/// reports the minimum over the trailing window once the improvement over
/// a full window is below one token.
#[derive(Debug, Clone)]
pub struct RemainingImbalance {
    window: usize,
    history: Vec<f64>,
}

impl RemainingImbalance {
    /// Tracker with the given detection window (in rounds).
    ///
    /// # Panics
    ///
    /// Panics if `window == 0`.
    pub fn new(window: usize) -> Self {
        assert!(window > 0, "window must be positive");
        Self {
            window,
            history: Vec::new(),
        }
    }

    /// Records the `max − avg` value of one round.
    pub fn push(&mut self, max_minus_avg: f64) {
        self.history.push(max_minus_avg);
    }

    /// Returns `true` once the metric has stopped improving: the best
    /// value in the latest window is no more than one token better than
    /// the best value in the window before it.
    pub fn converged(&self) -> bool {
        if self.history.len() < 2 * self.window {
            return false;
        }
        let latest = &self.history[self.history.len() - self.window..];
        let before =
            &self.history[self.history.len() - 2 * self.window..self.history.len() - self.window];
        let min_latest = latest.iter().copied().fold(f64::INFINITY, f64::min);
        let min_before = before.iter().copied().fold(f64::INFINITY, f64::min);
        min_latest > min_before - 1.0
    }

    /// The detection window, for checkpointing.
    pub(crate) fn window(&self) -> usize {
        self.window
    }

    /// The trailing `2·window` samples — all [`Self::converged`] and
    /// [`Self::value`] ever look at — for checkpointing.
    pub(crate) fn history_tail(&self) -> &[f64] {
        let keep = self.history.len().min(2 * self.window);
        &self.history[self.history.len() - keep..]
    }

    /// Rebuilds a tracker from a checkpointed history tail; returns
    /// `None` when `window == 0`.
    pub(crate) fn from_history(window: usize, history: Vec<f64>) -> Option<Self> {
        if window == 0 {
            return None;
        }
        Some(Self { window, history })
    }

    /// The remaining imbalance: minimum `max − avg` over the latest
    /// window; `None` until [`Self::converged`].
    pub fn value(&self) -> Option<f64> {
        if !self.converged() {
            return None;
        }
        let latest = &self.history[self.history.len() - self.window..];
        Some(latest.iter().copied().fold(f64::INFINITY, f64::min))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sodiff_graph::generators;

    #[test]
    fn balanced_vector_has_zero_metrics() {
        let g = generators::torus2d(3, 3);
        let s = Speeds::uniform(9);
        let m = snapshot(&g, &s, &[7.0; 9]);
        assert_eq!(m.max_minus_avg, 0.0);
        assert_eq!(m.min_minus_avg, 0.0);
        assert_eq!(m.max_local_diff, 0.0);
        assert_eq!(m.potential_over_n, 0.0);
        assert_eq!(m.min_load, 7.0);
    }

    #[test]
    fn point_load_metrics() {
        let g = generators::cycle(4);
        let s = Speeds::uniform(4);
        let m = snapshot(&g, &s, &[8.0, 0.0, 0.0, 0.0]);
        assert_eq!(m.max_minus_avg, 6.0); // 8 - avg(2)
        assert_eq!(m.min_minus_avg, -2.0);
        assert_eq!(m.max_local_diff, 8.0);
        // potential = (36 + 4 + 4 + 4)/4 = 12
        assert_eq!(m.potential_over_n, 12.0);
        assert_eq!(m.min_load, 0.0);
    }

    #[test]
    fn heterogeneous_ideal_is_speed_proportional() {
        let g = generators::cycle(3);
        let s = Speeds::new(vec![1.0, 2.0, 3.0]);
        // Perfectly balanced for these speeds: 10, 20, 30.
        let m = snapshot(&g, &s, &[10.0, 20.0, 30.0]);
        assert!(m.max_minus_avg.abs() < 1e-12);
        assert!(m.max_local_diff.abs() < 1e-12);
        // Homogeneous-looking vector is *not* balanced here.
        let m = snapshot(&g, &s, &[20.0, 20.0, 20.0]);
        assert!(m.max_minus_avg > 0.0);
    }

    #[test]
    fn negative_load_shows_in_min_load() {
        let g = generators::path(2);
        let s = Speeds::uniform(2);
        let m = snapshot(&g, &s, &[-3.0, 7.0]);
        assert_eq!(m.min_load, -3.0);
    }

    #[test]
    fn snapshot_i64_matches_f64() {
        let g = generators::torus2d(3, 3);
        let s = Speeds::uniform(9);
        let ints: Vec<i64> = (0..9).map(|i| i * i).collect();
        let floats: Vec<f64> = ints.iter().map(|&x| x as f64).collect();
        assert_eq!(snapshot_i64(&g, &s, &ints), snapshot(&g, &s, &floats));
    }

    #[test]
    fn remaining_imbalance_detects_plateau() {
        let mut tracker = RemainingImbalance::new(5);
        // Decaying phase.
        for v in [100.0, 60.0, 40.0, 25.0, 15.0] {
            tracker.push(v);
        }
        assert!(!tracker.converged());
        // Plateau around 7.
        for _ in 0..10 {
            tracker.push(7.0);
        }
        assert!(tracker.converged());
        assert_eq!(tracker.value(), Some(7.0));
    }

    #[test]
    fn remaining_imbalance_not_fooled_by_decay() {
        let mut tracker = RemainingImbalance::new(3);
        for v in [100.0, 80.0, 60.0, 40.0, 20.0, 10.0] {
            tracker.push(v);
        }
        assert!(!tracker.converged(), "still improving by > 1 per window");
    }
}
