//! Error-propagation matrices, contributions, and the refined local
//! divergence `Υ^C(G)` (paper Sections III–IV).
//!
//! For FOS the rounding error injected at round `t−s` propagates to round
//! `t` through `M^s`; for SOS through the matrix sequence
//!
//! ```text
//! Q(0) = I,  Q(1) = β·M,  Q(t) = β·M·Q(t−1) + (1−β)·Q(t−2)
//! ```
//!
//! (equation (20)). The *contribution* of edge `(i,j)` on node `k` after
//! `t` rounds is `C_{k,i→j}(t) = P_{k,i} − P_{k,j}` with `P = M^t` (FOS)
//! or `P = Q(t−1)` (SOS, Lemma 6), and the refined local divergence is
//!
//! ```text
//! Υ^C(G)² = max_k Σ_{s≥0} Σ_i max_{j∈N(i)} C_{k,i→j}(s)²
//! ```
//!
//! This module computes rows of `M^t`/`Q(t)` matrix-free in `O(|E|)` per
//! step (all these matrices are polynomials in `M`, so they commute and
//! row recurrences mirror the matrix recurrences) and evaluates `Υ`
//! numerically with tail truncation.

use sodiff_graph::{Graph, Speeds};

use crate::scheme::Scheme;

/// Row-recurrence evolution of the error-propagation matrix of a scheme.
///
/// Yields row `k` of `M^t` (FOS) or of `Q(t)` (SOS) for `t = 0, 1, 2, …`.
pub struct PropagationRows<'g> {
    graph: &'g Graph,
    speeds: &'g Speeds,
    edge_alpha: Vec<f64>,
    scheme: Scheme,
    t: u64,
    current: Vec<f64>,
    previous: Vec<f64>,
    scratch: Vec<f64>,
}

impl<'g> PropagationRows<'g> {
    /// Starts the evolution for source node `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range, speeds mismatch the graph, or the
    /// scheme is not a diffusion scheme — the propagation matrices
    /// `M^t`/`Q(t)` are the FOS/SOS error-propagation theory of the
    /// paper; dimension exchange and matching-based balancing have
    /// round-dependent (matching-restricted) propagation operators this
    /// module does not model.
    pub fn new(graph: &'g Graph, speeds: &'g Speeds, scheme: Scheme, k: u32) -> Self {
        let n = graph.node_count();
        assert!((k as usize) < n, "source node out of range");
        assert_eq!(speeds.len(), n, "speeds length mismatch");
        assert!(
            scheme.is_diffusion(),
            "propagation rows are defined for the diffusion schemes (FOS/SOS), got {scheme}"
        );
        let mut current = vec![0.0; n];
        current[k as usize] = 1.0;
        let edge_alpha = graph
            .edges()
            .iter()
            .map(|&(u, v)| graph.alpha(u, v))
            .collect();
        Self {
            graph,
            speeds,
            edge_alpha,
            scheme,
            t: 0,
            current,
            previous: vec![0.0; n],
            scratch: vec![0.0; n],
        }
    }

    /// The current row (row `k` of `M^t` or `Q(t)` for the current `t`).
    pub fn row(&self) -> &[f64] {
        &self.current
    }

    /// The current step index `t`.
    pub fn t(&self) -> u64 {
        self.t
    }

    /// `out = r·M` for a row vector `r`:
    /// `(r·M)_j = r_j + (1/s_j)·Σ_{i∈N(j)} α_{ij}(r_i − r_j)`.
    fn row_times_m(&self, r: &[f64], out: &mut [f64]) {
        out.copy_from_slice(r);
        for (e, &(u, v)) in self.graph.edges().iter().enumerate() {
            let (u, v) = (u as usize, v as usize);
            let a = self.edge_alpha[e];
            // Column j = v receives α·(r_u − r_v)/s_v; column j = u the
            // mirrored term.
            out[v] += a * (r[u] - r[v]) / self.speeds.get(v);
            out[u] += a * (r[v] - r[u]) / self.speeds.get(u);
        }
    }

    /// Advances to `t + 1`.
    pub fn advance(&mut self) {
        match self.scheme {
            Scheme::Fos => {
                let mut next = std::mem::take(&mut self.scratch);
                self.row_times_m(&self.current, &mut next);
                self.scratch = std::mem::replace(&mut self.current, next);
            }
            Scheme::Sos { beta } => {
                // Q(t+1) = β·M·Q(t) + (1−β)·Q(t−1); rows follow the same
                // recurrence because all terms are polynomials in M.
                let mut next = std::mem::take(&mut self.scratch);
                self.row_times_m(&self.current, &mut next);
                if self.t == 0 {
                    // Q(1) = β·M.
                    for x in next.iter_mut() {
                        *x *= beta;
                    }
                } else {
                    for (x, &p) in next.iter_mut().zip(self.previous.iter()) {
                        *x = beta * *x + (1.0 - beta) * p;
                    }
                }
                self.previous.copy_from_slice(&self.current);
                self.scratch = std::mem::replace(&mut self.current, next);
            }
            Scheme::DimensionExchange { .. } | Scheme::Matching { .. } => {
                unreachable!("constructor rejects non-diffusion schemes")
            }
        }
        self.t += 1;
    }
}

/// Options for the numerical divergence computation.
#[derive(Debug, Clone, Copy)]
pub struct DivergenceOptions {
    /// Hard cap on the number of propagation steps.
    pub max_steps: u64,
    /// Stop once a step's contribution falls below this fraction of the
    /// accumulated sum for several consecutive steps.
    pub tail_tolerance: f64,
}

impl Default for DivergenceOptions {
    fn default() -> Self {
        Self {
            max_steps: 100_000,
            tail_tolerance: 1e-14,
        }
    }
}

/// Computes the refined local divergence `Υ^C(G)` for source node `k`.
///
/// `Υ²(k) = Σ_{s≥0} Σ_i max_{j∈N(i)} (P_{k,i}(s) − P_{k,j}(s))²` with `P`
/// the scheme's propagation matrix. The maximum over `k` is `Υ^C(G)`
/// itself; for vertex-transitive graphs (tori, hypercubes) any single `k`
/// suffices.
///
/// # Panics
///
/// Like [`PropagationRows::new`], panics for non-diffusion schemes (the
/// divergence theory is defined over the FOS/SOS propagation matrices) —
/// and so does [`refined_local_divergence`], which samples this function.
pub fn refined_local_divergence_at(
    graph: &Graph,
    speeds: &Speeds,
    scheme: Scheme,
    k: u32,
    opts: DivergenceOptions,
) -> f64 {
    let mut rows = PropagationRows::new(graph, speeds, scheme, k);
    let mut total = 0.0f64;
    let mut quiet_steps = 0;
    loop {
        let row = rows.row();
        let mut step_sum = 0.0;
        for i in graph.nodes() {
            let ri = row[i as usize];
            let mut worst = 0.0f64;
            for &j in graph.neighbor_nodes(i) {
                let d = ri - row[j as usize];
                worst = worst.max(d * d);
            }
            step_sum += worst;
        }
        total += step_sum;
        if step_sum <= opts.tail_tolerance * total.max(1e-300) {
            quiet_steps += 1;
            if quiet_steps >= 5 {
                break;
            }
        } else {
            quiet_steps = 0;
        }
        if rows.t() >= opts.max_steps {
            break;
        }
        rows.advance();
    }
    total.sqrt()
}

/// Computes `Υ^C(G)` as the maximum of [`refined_local_divergence_at`]
/// over a sample of source nodes (all nodes if `sample >= n`).
pub fn refined_local_divergence(
    graph: &Graph,
    speeds: &Speeds,
    scheme: Scheme,
    sample: usize,
    opts: DivergenceOptions,
) -> f64 {
    let n = graph.node_count();
    let stride = (n / sample.max(1)).max(1);
    (0..n)
        .step_by(stride)
        .map(|k| refined_local_divergence_at(graph, speeds, scheme, k as u32, opts))
        .fold(0.0, f64::max)
}

/// The contribution `C_{k,i→j}(t)` of edge `(i, j)` on node `k` after `t`
/// rounds for FOS (`M^t_{k,i} − M^t_{k,j}`, Definition 3) or SOS
/// (`Q_{k,i}(t−1) − Q_{k,j}(t−1)`, Lemma 6). Returns 0 for SOS at `t = 0`.
///
/// This is a convenience for tests and small studies; bulk computations
/// should drive [`PropagationRows`] directly.
///
/// # Panics
///
/// Like [`PropagationRows::new`], panics for non-diffusion schemes: the
/// contribution theory is defined over the FOS/SOS propagation matrices.
pub fn contribution(
    graph: &Graph,
    speeds: &Speeds,
    scheme: Scheme,
    k: u32,
    i: u32,
    j: u32,
    t: u64,
) -> f64 {
    let steps = match scheme {
        Scheme::Fos => t,
        Scheme::Sos { .. } => {
            if t == 0 {
                return 0.0;
            }
            t - 1
        }
        Scheme::DimensionExchange { .. } | Scheme::Matching { .. } => panic!(
            "edge contributions are defined for the diffusion schemes (FOS/SOS), got {scheme}"
        ),
    };
    let mut rows = PropagationRows::new(graph, speeds, scheme, k);
    for _ in 0..steps {
        rows.advance();
    }
    rows.row()[i as usize] - rows.row()[j as usize]
}

#[cfg(test)]
mod tests {
    use super::*;
    use sodiff_graph::generators;
    use sodiff_linalg::dense::DenseMatrix;
    use sodiff_linalg::diffusion::DiffusionOperator;
    use sodiff_linalg::spectral;

    fn dense_power(m: &DenseMatrix, t: u64) -> DenseMatrix {
        let n = m.rows();
        let mut p = DenseMatrix::identity(n);
        for _ in 0..t {
            p = p.matmul(m);
        }
        p
    }

    #[test]
    fn fos_rows_match_dense_powers() {
        let g = generators::torus2d(3, 3);
        let s = Speeds::uniform(9);
        let m = DiffusionOperator::new(&g, &s).to_dense();
        let mut rows = PropagationRows::new(&g, &s, Scheme::fos(), 4);
        for t in 0..6 {
            let p = dense_power(&m, t);
            for i in 0..9 {
                assert!(
                    (rows.row()[i] - p[(4, i)]).abs() < 1e-12,
                    "t={t} i={i}: {} vs {}",
                    rows.row()[i],
                    p[(4, i)]
                );
            }
            rows.advance();
        }
    }

    #[test]
    fn sos_rows_match_dense_q_recursion() {
        let g = generators::cycle(6);
        let s = Speeds::uniform(6);
        let beta = 1.5;
        let m = DiffusionOperator::new(&g, &s).to_dense();
        // Dense Q(t).
        let mut q_prev = DenseMatrix::identity(6);
        let mut q = m.clone();
        for e in 0..6 {
            for f in 0..6 {
                q[(e, f)] *= beta;
            }
        }
        let mut rows = PropagationRows::new(&g, &s, Scheme::sos(beta), 2);
        // t = 0: Q(0) = I.
        assert!((rows.row()[2] - 1.0).abs() < 1e-12);
        rows.advance();
        for t in 1..8 {
            for i in 0..6 {
                assert!(
                    (rows.row()[i] - q[(2, i)]).abs() < 1e-10,
                    "t={t} i={i}: {} vs {}",
                    rows.row()[i],
                    q[(2, i)]
                );
            }
            // Q(t+1) = β·M·Q(t) + (1−β)·Q(t−1).
            let mq = m.matmul(&q);
            let mut q_next = DenseMatrix::zeros(6, 6);
            for e in 0..6 {
                for f in 0..6 {
                    q_next[(e, f)] = beta * mq[(e, f)] + (1.0 - beta) * q_prev[(e, f)];
                }
            }
            q_prev = std::mem::replace(&mut q, q_next);
            rows.advance();
        }
    }

    #[test]
    fn heterogeneous_rows_match_dense_powers() {
        let g = generators::cycle(5);
        let s = Speeds::new(vec![1.0, 3.0, 2.0, 1.0, 5.0]);
        let m = DiffusionOperator::new(&g, &s).to_dense();
        let mut rows = PropagationRows::new(&g, &s, Scheme::fos(), 1);
        for t in 0..5 {
            let p = dense_power(&m, t);
            for i in 0..5 {
                assert!((rows.row()[i] - p[(1, i)]).abs() < 1e-12, "t={t} i={i}");
            }
            rows.advance();
        }
    }

    #[test]
    fn q_row_sums_are_equal_across_k() {
        // Lemma 7(3): Q(t) has equal column sums; by symmetry of our row
        // evolution (rows of Q), row sums evolve identically for every k.
        let g = generators::torus2d(3, 3);
        let s = Speeds::uniform(9);
        let beta = 1.7;
        let sums: Vec<Vec<f64>> = [0u32, 4]
            .iter()
            .map(|&k| {
                let mut rows = PropagationRows::new(&g, &s, Scheme::sos(beta), k);
                (0..6)
                    .map(|_| {
                        let sum: f64 = rows.row().iter().sum();
                        rows.advance();
                        sum
                    })
                    .collect()
            })
            .collect();
        for (a, b) in sums[0].iter().zip(&sums[1]) {
            assert!((a - b).abs() < 1e-10);
        }
    }

    #[test]
    fn fos_divergence_close_to_theory_shape() {
        // Theorem 4: Υ_FOS = O(√(d·log s_max/(1−λ))). On a homogeneous
        // torus we check monotonicity in graph size instead of constants.
        let s8 = {
            let g = generators::torus2d(8, 8);
            let sp = Speeds::uniform(64);
            refined_local_divergence_at(&g, &sp, Scheme::fos(), 0, DivergenceOptions::default())
        };
        let s16 = {
            let g = generators::torus2d(16, 16);
            let sp = Speeds::uniform(256);
            refined_local_divergence_at(&g, &sp, Scheme::fos(), 0, DivergenceOptions::default())
        };
        assert!(s8 > 0.5, "divergence should be non-trivial, got {s8}");
        assert!(s16 > s8, "divergence grows with the torus: {s8} vs {s16}");
        // And stays within the theorem's envelope (constant-free check:
        // compare against c·√(d/(1−λ)) with a generous c).
        let g = generators::torus2d(16, 16);
        let spec = spectral::analyze(&g, &Speeds::uniform(256));
        let envelope = 10.0 * (4.0 / spec.gap()).sqrt();
        assert!(s16 < envelope, "{s16} vs envelope {envelope}");
    }

    #[test]
    fn sos_divergence_exceeds_fos_but_stays_bounded() {
        let g = generators::torus2d(10, 10);
        let sp = Speeds::uniform(100);
        let spec = spectral::analyze(&g, &sp);
        let beta = spec.beta_opt();
        let fos =
            refined_local_divergence_at(&g, &sp, Scheme::fos(), 0, DivergenceOptions::default());
        let sos = refined_local_divergence_at(
            &g,
            &sp,
            Scheme::sos(beta),
            0,
            DivergenceOptions::default(),
        );
        // SOS propagates errors more aggressively: Υ_SOS ≥ Υ_FOS, with the
        // (1−λ)^{3/4} vs (1−λ)^{1/2} scaling of Theorems 4 and 9.
        assert!(sos > fos, "sos {sos} vs fos {fos}");
        let envelope = 10.0 * (4.0f64).sqrt() / spec.gap().powf(0.75);
        assert!(sos < envelope, "{sos} vs envelope {envelope}");
    }

    #[test]
    fn contribution_is_antisymmetric_in_ij() {
        let g = generators::torus2d(3, 3);
        let s = Speeds::uniform(9);
        for t in 1..4 {
            let c_ij = contribution(&g, &s, Scheme::sos(1.5), 0, 1, 2, t);
            let c_ji = contribution(&g, &s, Scheme::sos(1.5), 0, 2, 1, t);
            assert!((c_ij + c_ji).abs() < 1e-12);
        }
    }

    #[test]
    fn divergence_max_over_sample_covers_single_source() {
        let g = generators::grid2d(3, 3); // not vertex-transitive
        let s = Speeds::uniform(9);
        let single =
            refined_local_divergence_at(&g, &s, Scheme::fos(), 0, DivergenceOptions::default());
        let all = refined_local_divergence(&g, &s, Scheme::fos(), 9, DivergenceOptions::default());
        assert!(all >= single - 1e-12);
    }
}
