//! Division-free fused round kernels over flat structure-of-arrays state.
//!
//! Every phase of a simulation round is expressed here as a pure pass over
//! an index range, parameterized over *how* state is read and written:
//!
//! * the sequential executor instantiates the passes with [`CellsF64`] /
//!   [`CellsI64`] wrappers over plain slices (zero-cost shared-writable
//!   views via [`std::cell::Cell`]),
//! * the persistent worker pool instantiates the *same* passes with
//!   [`AtomicsF64`] / [`AtomicsI64`] wrappers over relaxed atomics.
//!
//! Because both executors run byte-for-byte the same arithmetic in the
//! same per-element order, parallel results are bit-identical to
//! sequential ones by construction — the property `tests/determinism.rs`
//! checks exhaustively.
//!
//! The per-edge work is division-free: [`KernelTables`] precomputes the
//! coefficient tables `coef_tail[e] = α_e/s_u` and `coef_head[e] = α_e/s_v`
//! at simulator construction, so the scheduled-flow pass is a fused
//! multiply–add over five flat arrays
//! (`Ŷ_e = mem·prev_e + gain·(coef_tail[e]·x_u − coef_head[e]·x_v)`)
//! instead of the two `f64` divisions per edge the naive form
//! `α_e·(x_u/s_u − x_v/s_v)` costs. For the edge-local rounding schemes
//! the rounding is fused into the same pass, saving a full sweep over the
//! edge arrays per round.

use std::cell::Cell;
use std::ops::Range;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering::Relaxed};

use sodiff_graph::{Graph, Speeds};

use crate::engine::FlowMemory;
use crate::rng::SplitMix64;
use crate::rounding::Rounding;

/// Immutable per-simulation tables shared by the sequential executor and
/// the worker pool (via `Arc`): division-free edge coefficients plus a
/// structure-of-arrays copy of the CSR adjacency.
pub(crate) struct KernelTables {
    /// Node count.
    pub n: usize,
    /// Edge count.
    pub m: usize,
    /// Canonical tail (`u` of `(u, v)`, `u < v`) per edge.
    pub tail: Vec<u32>,
    /// Canonical head per edge.
    pub head: Vec<u32>,
    /// `α_e / s_tail` per edge.
    pub coef_tail: Vec<f64>,
    /// `α_e / s_head` per edge.
    pub coef_head: Vec<f64>,
    /// CSR arc offsets, length `n + 1`.
    pub offsets: Vec<usize>,
    /// Arc-indexed edge ids.
    pub arc_edges: Vec<u32>,
    /// Arc-indexed orientation signs (`+1` = owner is the tail).
    pub arc_signs: Vec<i8>,
    /// Per-edge arc positions `(tail side, head side)`; built only when the
    /// randomized rounding framework needs the arc decomposition.
    pub edge_arc_pos: Vec<(u32, u32)>,
}

impl KernelTables {
    /// Builds the tables for `graph` with the given speeds.
    pub fn new(graph: &Graph, speeds: &Speeds, needs_arc_plan: bool) -> Self {
        let n = graph.node_count();
        let m = graph.edge_count();
        let mut tail = Vec::with_capacity(m);
        let mut head = Vec::with_capacity(m);
        let mut coef_tail = Vec::with_capacity(m);
        let mut coef_head = Vec::with_capacity(m);
        for &(u, v) in graph.edges() {
            let alpha = graph.alpha(u, v);
            tail.push(u);
            head.push(v);
            coef_tail.push(alpha / speeds.get(u as usize));
            coef_head.push(alpha / speeds.get(v as usize));
        }
        let mut offsets = Vec::with_capacity(n + 1);
        for v in 0..=n {
            offsets.push(if v == n {
                graph.arc_count()
            } else {
                graph.arc_range(v as u32).start
            });
        }
        let edge_arc_pos = if needs_arc_plan {
            let mut pos = vec![(0u32, 0u32); m];
            for v in graph.nodes() {
                let start = graph.arc_range(v).start;
                for (idx, &e) in graph.neighbor_edges(v).iter().enumerate() {
                    let p = (start + idx) as u32;
                    if graph.neighbor_signs(v)[idx] > 0 {
                        pos[e as usize].0 = p;
                    } else {
                        pos[e as usize].1 = p;
                    }
                }
            }
            pos
        } else {
            Vec::new()
        };
        Self {
            n,
            m,
            tail,
            head,
            coef_tail,
            coef_head,
            offsets,
            arc_edges: graph.arc_edge_ids().to_vec(),
            arc_signs: graph.arc_orientations().to_vec(),
            edge_arc_pos,
        }
    }
}

/// Shared-writable `f64` storage: a plain slice (sequential executor) or
/// relaxed atomics (worker pool) behind one interface.
///
/// The element slice is exposed so hot loops can zip a sub-range and let
/// the compiler elide per-element bounds checks; `get`/`set` cover random
/// access.
pub(crate) trait BufF64 {
    /// Storage element (`Cell<f64>` or `AtomicU64`).
    type Elem;
    /// The backing elements.
    fn elems(&self) -> &[Self::Elem];
    /// Reads one element.
    fn read(e: &Self::Elem) -> f64;
    /// Writes one element.
    fn write(e: &Self::Elem, v: f64);
    /// Reads element `i`.
    #[inline(always)]
    fn get(&self, i: usize) -> f64 {
        Self::read(&self.elems()[i])
    }
    /// Writes element `i`.
    #[inline(always)]
    fn set(&self, i: usize, v: f64) {
        Self::write(&self.elems()[i], v);
    }
}

/// Shared-writable `i64` storage (see [`BufF64`]).
pub(crate) trait BufI64 {
    /// Storage element (`Cell<i64>` or `AtomicI64`).
    type Elem;
    /// The backing elements.
    fn elems(&self) -> &[Self::Elem];
    /// Reads one element.
    fn read(e: &Self::Elem) -> i64;
    /// Writes one element.
    fn write(e: &Self::Elem, v: i64);
    /// Reads element `i`.
    #[inline(always)]
    fn get(&self, i: usize) -> i64 {
        Self::read(&self.elems()[i])
    }
    /// Writes element `i`.
    #[inline(always)]
    fn set(&self, i: usize, v: i64) {
        Self::write(&self.elems()[i], v);
    }
}

/// [`BufF64`] over a plain slice via `Cell` (single-threaded).
pub(crate) struct CellsF64<'a>(pub &'a [Cell<f64>]);

/// [`BufI64`] over a plain slice via `Cell` (single-threaded).
pub(crate) struct CellsI64<'a>(pub &'a [Cell<i64>]);

/// [`BufF64`] over relaxed atomics storing `f64` bits (worker pool).
pub(crate) struct AtomicsF64<'a>(pub &'a [AtomicU64]);

/// [`BufI64`] over relaxed atomics (worker pool).
pub(crate) struct AtomicsI64<'a>(pub &'a [AtomicI64]);

/// Shared-writable view of a mutable `f64` slice.
pub(crate) fn cells_f64(s: &mut [f64]) -> CellsF64<'_> {
    CellsF64(Cell::from_mut(s).as_slice_of_cells())
}

/// Shared-writable view of a mutable `i64` slice.
pub(crate) fn cells_i64(s: &mut [i64]) -> CellsI64<'_> {
    CellsI64(Cell::from_mut(s).as_slice_of_cells())
}

impl BufF64 for CellsF64<'_> {
    type Elem = Cell<f64>;
    #[inline(always)]
    fn elems(&self) -> &[Cell<f64>] {
        self.0
    }
    #[inline(always)]
    fn read(e: &Cell<f64>) -> f64 {
        e.get()
    }
    #[inline(always)]
    fn write(e: &Cell<f64>, v: f64) {
        e.set(v);
    }
}

impl BufI64 for CellsI64<'_> {
    type Elem = Cell<i64>;
    #[inline(always)]
    fn elems(&self) -> &[Cell<i64>] {
        self.0
    }
    #[inline(always)]
    fn read(e: &Cell<i64>) -> i64 {
        e.get()
    }
    #[inline(always)]
    fn write(e: &Cell<i64>, v: i64) {
        e.set(v);
    }
}

impl BufF64 for AtomicsF64<'_> {
    type Elem = AtomicU64;
    #[inline(always)]
    fn elems(&self) -> &[AtomicU64] {
        self.0
    }
    #[inline(always)]
    fn read(e: &AtomicU64) -> f64 {
        f64::from_bits(e.load(Relaxed))
    }
    #[inline(always)]
    fn write(e: &AtomicU64, v: f64) {
        e.store(v.to_bits(), Relaxed);
    }
}

impl BufI64 for AtomicsI64<'_> {
    type Elem = AtomicI64;
    #[inline(always)]
    fn elems(&self) -> &[AtomicI64] {
        self.0
    }
    #[inline(always)]
    fn read(e: &AtomicI64) -> i64 {
        e.load(Relaxed)
    }
    #[inline(always)]
    fn write(e: &AtomicI64, v: i64) {
        e.store(v, Relaxed);
    }
}

/// `s.trunc() as i64` without the libm call: the `f64 → i64` cast *is*
/// truncation toward zero (`cvttsd2si`), with the same saturating
/// overflow/NaN behavior as trunc-then-cast.
#[inline(always)]
fn trunc_i64(s: f64) -> i64 {
    s as i64
}

/// `s.round() as i64` (half away from zero) without the libm call.
///
/// Exact: `s − trunc(s)` is computed without rounding error (Sterbenz for
/// `|s| ≥ 1`, trivially for `|s| < 1`), so the half-comparison sees the
/// true fractional part — including boundary cases like
/// `0.49999999999999994` that the naive `(s + 0.5).trunc()` gets wrong.
/// The adjustment saturates so `|s| ≥ 2⁶³` keeps the cast's saturating
/// behavior instead of wrapping.
#[inline(always)]
fn round_i64(s: f64) -> i64 {
    let t = s as i64;
    let frac = s - t as f64;
    t.saturating_add(i64::from(frac >= 0.5))
        .saturating_sub(i64::from(frac <= -0.5))
}

/// `s.floor()` and the exact fractional part `s − ⌊s⌋`, without libm
/// (saturating at the `i64` range like the cast itself).
#[inline(always)]
fn floor_frac(s: f64) -> (i64, f64) {
    let t = s as i64;
    let f = t.saturating_sub(i64::from((t as f64) > s));
    (f, s - f as f64)
}

/// `r.ceil() as i64` for `r ≥ 0`, without libm (saturating).
#[inline(always)]
fn ceil_i64(r: f64) -> i64 {
    let t = r as i64;
    t.saturating_add(i64::from((t as f64) < r))
}

/// Fused edge pass for the **edge-local** rounding schemes in discrete
/// mode: computes the scheduled flow
/// `Ŷ_e = mem·prev_e + gain·(coef_tail·x_tail − coef_head·x_head)`,
/// rounds it, and updates the SOS flow memory, all in one zipped sweep
/// over `edges` (bounds checks hoisted by slicing the range up front).
///
/// # Panics
///
/// Panics for [`Rounding::RandomizedFramework`], which is node-centric and
/// runs through [`edge_pass_scheduled`] → [`arc_round`] → [`edge_combine`].
#[allow(clippy::too_many_arguments)] // a flat hot-path kernel; a params struct would obscure it
pub(crate) fn edge_pass_fused<P: BufF64, F: BufI64>(
    t: &KernelTables,
    edges: Range<usize>,
    mem: f64,
    gain: f64,
    round: u64,
    rounding: Rounding,
    flow_memory: FlowMemory,
    x: impl Fn(usize) -> f64,
    prev: &P,
    flows: &F,
) {
    let e0 = edges.start;
    let tails = &t.tail[edges.clone()];
    let heads = &t.head[edges.clone()];
    let coefs = t.coef_tail[edges.clone()]
        .iter()
        .zip(&t.coef_head[edges.clone()]);
    let prevs = &prev.elems()[edges.clone()];
    let flow_elems = &flows.elems()[edges];
    let arrays = tails
        .iter()
        .zip(heads)
        .zip(coefs)
        .zip(prevs)
        .zip(flow_elems);
    macro_rules! fused_loop {
        (|$k:ident, $s:ident| $round_expr:expr) => {
            for ($k, ((((&u, &v), (&ct, &ch)), pe), fe)) in arrays.enumerate() {
                let $s = mem * P::read(pe) + gain * (ct * x(u as usize) - ch * x(v as usize));
                let y: i64 = $round_expr;
                F::write(fe, y);
                P::write(
                    pe,
                    match flow_memory {
                        FlowMemory::Rounded => y as f64,
                        FlowMemory::Scheduled => $s,
                    },
                );
            }
        };
    }
    match rounding {
        Rounding::RoundDown => fused_loop!(|_k, s| trunc_i64(s)),
        Rounding::Nearest => fused_loop!(|_k, s| round_i64(s)),
        Rounding::UnbiasedEdge { seed } => fused_loop!(|k, s| {
            let mut rng = SplitMix64::for_node_round(seed, (e0 + k) as u32, round);
            let (floor, frac) = floor_frac(s);
            floor + i64::from(rng.next_f64() < frac)
        }),
        Rounding::RandomizedFramework { .. } => {
            panic!("the randomized framework is node-centric; use the arc passes")
        }
    }
}

/// Scheduled-flow-only edge pass (phase 1 of the randomized framework).
pub(crate) fn edge_pass_scheduled<S: BufF64>(
    t: &KernelTables,
    edges: Range<usize>,
    mem: f64,
    gain: f64,
    x: impl Fn(usize) -> f64,
    prev: impl Fn(usize) -> f64,
    sched: &S,
) {
    let e0 = edges.start;
    let tails = &t.tail[edges.clone()];
    let heads = &t.head[edges.clone()];
    let coefs = t.coef_tail[edges.clone()]
        .iter()
        .zip(&t.coef_head[edges.clone()]);
    let scheds = &sched.elems()[edges];
    for (k, (((&u, &v), (&ct, &ch)), se)) in
        tails.iter().zip(heads).zip(coefs).zip(scheds).enumerate()
    {
        let s = mem * prev(e0 + k) + gain * (ct * x(u as usize) - ch * x(v as usize));
        S::write(se, s);
    }
}

/// Fused edge pass for continuous mode: the scheduled flow *is* the flow,
/// so it is written straight into the flow memory (which the apply pass
/// then reads as this round's flows).
pub(crate) fn edge_pass_continuous<P: BufF64>(
    t: &KernelTables,
    edges: Range<usize>,
    mem: f64,
    gain: f64,
    x: impl Fn(usize) -> f64,
    prev: &P,
) {
    let tails = &t.tail[edges.clone()];
    let heads = &t.head[edges.clone()];
    let coefs = t.coef_tail[edges.clone()]
        .iter()
        .zip(&t.coef_head[edges.clone()]);
    let prevs = &prev.elems()[edges];
    for (((&u, &v), (&ct, &ch)), pe) in tails.iter().zip(heads).zip(coefs).zip(prevs) {
        let s = mem * P::read(pe) + gain * (ct * x(u as usize) - ch * x(v as usize));
        P::write(pe, s);
    }
}

/// Node-centric randomized-framework pass over `nodes` (paper
/// Section III-B): floors every positive outgoing flow into its arc slot,
/// then distributes the `⌈r⌉` excess tokens randomly, keyed by
/// `(seed, node, round)` so the result is independent of chunking.
pub(crate) fn arc_round(
    t: &KernelTables,
    nodes: Range<usize>,
    seed: u64,
    round: u64,
    sched: impl Fn(usize) -> f64,
    arc_out: &impl BufI64,
    excess: &mut Vec<(usize, f64)>,
) {
    for p in t.offsets[nodes.start]..t.offsets[nodes.end] {
        arc_out.set(p, 0);
    }
    for v in nodes {
        excess.clear();
        let mut r = 0.0f64;
        for p in t.offsets[v]..t.offsets[v + 1] {
            let outflow = sched(t.arc_edges[p] as usize) * t.arc_signs[p] as f64;
            if outflow > 0.0 {
                let (base, frac) = floor_frac(outflow);
                arc_out.set(p, base);
                if frac > 0.0 {
                    excess.push((p, frac));
                    r += frac;
                }
            }
        }
        if excess.is_empty() {
            continue;
        }
        let tokens = ceil_i64(r);
        if tokens == 0 {
            continue;
        }
        let mut rng = SplitMix64::for_node_round(seed, v as u32, round);
        let denom = tokens as f64;
        for _ in 0..tokens {
            // P(edge k) = frac_k / ⌈r⌉; P(stay) = 1 − r/⌈r⌉.
            let u = rng.next_f64() * denom;
            let mut cum = 0.0;
            for &(p, frac) in &*excess {
                cum += frac;
                if u < cum {
                    arc_out.set(p, arc_out.get(p) + 1);
                    break;
                }
            }
        }
    }
}

/// Combines the two arc sides of every edge into a signed edge flow
/// (phase 3 of the randomized framework) and updates the SOS flow memory.
pub(crate) fn edge_combine<F: BufI64, P: BufF64>(
    t: &KernelTables,
    edges: Range<usize>,
    flow_memory: FlowMemory,
    arc_out: impl Fn(usize) -> i64,
    sched: impl Fn(usize) -> f64,
    flows: &F,
    prev: &P,
) {
    let e0 = edges.start;
    let positions = &t.edge_arc_pos[edges.clone()];
    let flow_elems = &flows.elems()[edges.clone()];
    let prevs = &prev.elems()[edges];
    for (k, ((&(pt, ph), fe), pe)) in positions.iter().zip(flow_elems).zip(prevs).enumerate() {
        let y = arc_out(pt as usize) - arc_out(ph as usize);
        F::write(fe, y);
        P::write(
            pe,
            match flow_memory {
                FlowMemory::Rounded => y as f64,
                FlowMemory::Scheduled => sched(e0 + k),
            },
        );
    }
}

/// Node-centric application of integer flows to `nodes`; returns the
/// range's minimum transient load `min_i (x_i − Σ outgoing)`.
pub(crate) fn apply_discrete(
    t: &KernelTables,
    nodes: Range<usize>,
    flows: impl Fn(usize) -> i64,
    loads: &impl BufI64,
) -> f64 {
    let mut min_transient = f64::INFINITY;
    for i in nodes {
        let mut outgoing: i64 = 0;
        let mut net: i64 = 0;
        let arcs = t.offsets[i]..t.offsets[i + 1];
        for (&e, &sg) in t.arc_edges[arcs.clone()].iter().zip(&t.arc_signs[arcs]) {
            let y = flows(e as usize) * sg as i64;
            if y > 0 {
                outgoing += y;
            }
            net += y;
        }
        let x = loads.get(i);
        let transient = (x - outgoing) as f64;
        if transient < min_transient {
            min_transient = transient;
        }
        loads.set(i, x - net);
    }
    min_transient
}

/// Continuous analog of [`apply_discrete`].
pub(crate) fn apply_continuous(
    t: &KernelTables,
    nodes: Range<usize>,
    flows: impl Fn(usize) -> f64,
    loads: &impl BufF64,
) -> f64 {
    let mut min_transient = f64::INFINITY;
    for i in nodes {
        let mut outgoing = 0.0;
        let mut net = 0.0;
        let arcs = t.offsets[i]..t.offsets[i + 1];
        for (&e, &sg) in t.arc_edges[arcs.clone()].iter().zip(&t.arc_signs[arcs]) {
            let y = flows(e as usize) * sg as f64;
            if y > 0.0 {
                outgoing += y;
            }
            net += y;
        }
        let x = loads.get(i);
        let transient = x - outgoing;
        if transient < min_transient {
            min_transient = transient;
        }
        loads.set(i, x - net);
    }
    min_transient
}

#[cfg(test)]
mod tests {
    use super::*;
    use sodiff_graph::generators;

    #[test]
    fn tables_match_graph_structure() {
        let g = generators::torus2d(4, 5);
        let s = Speeds::linear_ramp(20, 3.0);
        let t = KernelTables::new(&g, &s, true);
        assert_eq!(t.n, 20);
        assert_eq!(t.m, g.edge_count());
        for e in 0..t.m {
            let (u, v) = g.edge(e as u32);
            assert_eq!((t.tail[e], t.head[e]), (u, v));
            let alpha = g.alpha(u, v);
            assert_eq!(t.coef_tail[e], alpha / s.get(u as usize));
            assert_eq!(t.coef_head[e], alpha / s.get(v as usize));
            let (pt, ph) = t.edge_arc_pos[e];
            assert_eq!(t.arc_edges[pt as usize], e as u32);
            assert_eq!(t.arc_edges[ph as usize], e as u32);
            assert_eq!(t.arc_signs[pt as usize], 1);
            assert_eq!(t.arc_signs[ph as usize], -1);
        }
        assert_eq!(t.offsets.len(), 21);
        assert_eq!(*t.offsets.last().unwrap(), g.arc_count());
    }

    #[test]
    fn integer_rounding_matches_libm_and_saturates() {
        for s in [
            0.0,
            0.4999,
            0.5,
            0.49999999999999994,
            1.5,
            2.5,
            -0.5,
            -1.5,
            -2.49,
            7.99,
            -7.99,
            1234567.5,
        ] {
            assert_eq!(trunc_i64(s), s.trunc() as i64, "trunc {s}");
            assert_eq!(round_i64(s), s.round() as i64, "round {s}");
            let (f, frac) = floor_frac(s);
            assert_eq!(f, s.floor() as i64, "floor {s}");
            assert_eq!(frac, s - s.floor(), "frac {s}");
        }
        for r in [0.0, 0.1, 1.0, 4.5, 1e9] {
            assert_eq!(ceil_i64(r), r.ceil() as i64, "ceil {r}");
        }
        // Saturation instead of wrap/panic at the i64 boundary.
        assert_eq!(round_i64(1e300), i64::MAX);
        assert_eq!(round_i64(-1e300), i64::MIN);
        assert_eq!(floor_frac(-1e300).0, i64::MIN);
        assert_eq!(ceil_i64(1e300), i64::MAX);
        assert_eq!(round_i64(f64::NAN), 0);
    }

    #[test]
    fn cell_and_atomic_buffers_agree() {
        let mut plain = vec![0.0f64; 8];
        let atomics: Vec<AtomicU64> = (0..8).map(|_| AtomicU64::new(0)).collect();
        {
            let cells = cells_f64(&mut plain);
            for i in 0..8 {
                cells.set(i, i as f64 * 1.5 - 2.0);
                AtomicsF64(&atomics).set(i, i as f64 * 1.5 - 2.0);
            }
            for i in 0..8 {
                assert_eq!(cells.get(i), AtomicsF64(&atomics).get(i));
            }
        }
        assert_eq!(plain[4], 4.0);
    }

    #[test]
    fn fused_pass_matches_two_phase_for_edge_local_schemes() {
        // One fused sweep must equal "scheduled pass then rounding pass".
        let g = generators::torus2d(5, 5);
        let s = Speeds::uniform(25);
        let t = KernelTables::new(&g, &s, false);
        let m = t.m;
        let loads: Vec<f64> = (0..25).map(|i| ((i * 13) % 17) as f64).collect();
        let prev_init: Vec<f64> = (0..m).map(|e| (e as f64) * 0.21 - 1.5).collect();
        for rounding in [
            Rounding::round_down(),
            Rounding::nearest(),
            Rounding::unbiased_edge(7),
        ] {
            let mut fused_prev = prev_init.clone();
            let mut fused_flows = vec![0i64; m];
            edge_pass_fused(
                &t,
                0..m,
                0.4,
                1.6,
                9,
                rounding,
                FlowMemory::Scheduled,
                |i| loads[i],
                &cells_f64(&mut fused_prev),
                &cells_i64(&mut fused_flows),
            );
            let mut sched = vec![0.0f64; m];
            edge_pass_scheduled(
                &t,
                0..m,
                0.4,
                1.6,
                |i| loads[i],
                |e| prev_init[e],
                &cells_f64(&mut sched),
            );
            assert_eq!(fused_prev, sched, "{rounding:?} flow memory");
            for e in 0..m {
                let expected = match rounding {
                    Rounding::RoundDown => sched[e].trunc() as i64,
                    Rounding::Nearest => sched[e].round() as i64,
                    Rounding::UnbiasedEdge { seed } => {
                        let mut rng = SplitMix64::for_node_round(seed, e as u32, 9);
                        let floor = sched[e].floor();
                        floor as i64 + i64::from(rng.next_f64() < sched[e] - floor)
                    }
                    Rounding::RandomizedFramework { .. } => unreachable!(),
                };
                assert_eq!(fused_flows[e], expected, "{rounding:?} edge {e}");
            }
        }
    }

    #[test]
    fn arc_round_plus_combine_matches_round_flows() {
        // The chunked arc decomposition must reproduce the direct
        // node-centric rounding exactly, for any chunk split.
        let g = generators::torus2d(4, 4);
        let s = Speeds::uniform(16);
        let t = KernelTables::new(&g, &s, true);
        let m = t.m;
        let sched: Vec<f64> = (0..m)
            .map(|e| ((e * 31 % 17) as f64 - 8.0) * 0.37)
            .collect();
        let rounding = Rounding::randomized(11);
        let mut direct = vec![0i64; m];
        rounding.round_flows(&g, &sched, 5, &mut direct);
        for split in [1usize, 3, 16] {
            let mut arc_out = vec![0i64; g.arc_count()];
            let mut excess = Vec::new();
            let mut lo = 0;
            while lo < 16 {
                let hi = (lo + split).min(16);
                arc_round(
                    &t,
                    lo..hi,
                    11,
                    5,
                    |e| sched[e],
                    &cells_i64(&mut arc_out),
                    &mut excess,
                );
                lo = hi;
            }
            let mut flows = vec![0i64; m];
            let mut prev = vec![0.0f64; m];
            edge_combine(
                &t,
                0..m,
                FlowMemory::Rounded,
                |p| arc_out[p],
                |e| sched[e],
                &cells_i64(&mut flows),
                &cells_f64(&mut prev),
            );
            assert_eq!(flows, direct, "split {split}");
            let as_f64: Vec<f64> = direct.iter().map(|&y| y as f64).collect();
            assert_eq!(prev, as_f64, "split {split} flow memory");
        }
    }

    #[test]
    fn apply_passes_conserve_and_track_transient() {
        let g = generators::star(5);
        let s = Speeds::uniform(5);
        let t = KernelTables::new(&g, &s, false);
        // Hub (node 0) sends 3 tokens along each of 4 edges.
        let flows = [3i64; 4];
        let mut loads = vec![10i64, 0, 0, 0, 0];
        let mt = apply_discrete(&t, 0..5, |e| flows[e], &cells_i64(&mut loads));
        assert_eq!(loads, vec![-2, 3, 3, 3, 3]);
        assert_eq!(mt, -2.0); // hub transient: 10 − 12
        let flows_f = [2.5f64; 4];
        let mut loads_f = vec![10.0f64, 0.0, 0.0, 0.0, 0.0];
        let mt = apply_continuous(&t, 0..5, |e| flows_f[e], &cells_f64(&mut loads_f));
        assert_eq!(loads_f, vec![0.0, 2.5, 2.5, 2.5, 2.5]);
        assert_eq!(mt, 0.0);
    }
}
