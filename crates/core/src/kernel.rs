//! Division-free fused round kernels over flat structure-of-arrays state.
//!
//! Every phase of a simulation round is expressed here as a pure pass over
//! an index range, parameterized over *how* state is read and written:
//!
//! * the sequential executor instantiates the passes with [`CellsF64`] /
//!   [`CellsI64`] wrappers over plain slices (zero-cost shared-writable
//!   views via [`std::cell::Cell`]),
//! * the persistent worker pool instantiates the *same* passes with
//!   [`AtomicsF64`] / [`AtomicsI64`] wrappers over relaxed atomics.
//!
//! Because both executors run byte-for-byte the same arithmetic in the
//! same per-element order, parallel results are bit-identical to
//! sequential ones by construction — the property `tests/determinism.rs`
//! checks exhaustively.
//!
//! The per-edge work is division-free: [`KernelTables`] precomputes the
//! coefficient tables `coef_tail[e] = α_e/s_u` and `coef_head[e] = α_e/s_v`
//! at simulator construction, so the scheduled-flow pass is a fused
//! multiply–add over five flat arrays
//! (`Ŷ_e = mem·prev_e + gain·(coef_tail[e]·x_u − coef_head[e]·x_v)`)
//! instead of the two `f64` divisions per edge the naive form
//! `α_e·(x_u/s_u − x_v/s_v)` costs. For the edge-local rounding schemes
//! the rounding is fused into the same pass, saving a full sweep over the
//! edge arrays per round.
//!
//! # The streaming three-phase randomized pipeline
//!
//! The paper's randomized rounding framework is node-centric (each node
//! rounds all its outgoing flows together), which used to cost four
//! sweeps with two indirections each: a scheduled pass, an arc pass that
//! *gathered* `sched[arc_edges[p]]`, a combine pass that gathered
//! `arc_out[edge_arc_pos[e]]`, and the apply pass. It now runs as three
//! streaming phases:
//!
//! 1. [`edge_pass_scatter`] — one sweep over edges computes the scheduled
//!    flow `Ŷ_e`, floors the sending side's outflow `|Ŷ_e|` on the spot
//!    (one floor per edge instead of one per positive arc), writes the
//!    signed base straight into the edge's flow slot, and *scatters* the
//!    fractional part into the sending arc's slot
//!    (`arc_frac[pos_send] = {|Ŷ_e|}`, `arc_frac[pos_recv] = 0`), all
//!    with branchless sign masks. For [`FlowMemory::Scheduled`] the SOS
//!    memory is updated in the same pass.
//! 2. [`arc_round_streamed`] — one sweep over nodes sums its arc range
//!    of `arc_frac` **contiguously** (no edge-id chase; zero slots leave
//!    the classic positive-outflow sum unchanged bit for bit), skips
//!    nodes with `r = 0` — the common case away from the diffusion
//!    wavefront — and distributes the `⌈r⌉` excess tokens using per-node
//!    RNG streams whose warmed-up states a flat
//!    [`crate::rng::fill_node_states`] sweep precomputed into a scratch
//!    buffer (one `mix64` per node instead of key construction plus a
//!    discarded warm-up draw); each token's draw comes straight off the
//!    stream counter ([`crate::rng::nth_u64`]), so draws are independent
//!    `mix64` chains with no serial dependency, and the target arc is
//!    found by a branchless count of passed prefix sums.
//! 3. [`prev_from_flows`] — for [`FlowMemory::Rounded`], a pure zipped
//!    edge sweep copies the integral flows into the SOS memory. Under
//!    the worker pool this phase shares a barrier interval with the
//!    apply pass (both only read `flows`), so the framework now costs
//!    two internal barriers per round instead of three.
//!
//! The pipeline is bit-identical to the original formulation (golden
//! traces in `tests/golden_trace.rs`, reference-equivalence tests below):
//! the arc slots hold exactly the outflow values `Ŷ_e·sign` the gather
//! produced, and the per-node token draws consume the same
//! `(seed, node, round)`-keyed streams.
//!
//! # Lane-chunked SIMD form, and why it is bit-exact
//!
//! The edge passes and the apply passes run in [`LANES`]-wide chunks with
//! a scalar tail (the same shape as the bulk RNG sweeps in
//! [`crate::rng`]): each chunk first computes the eight scheduled flows —
//! a pure independent multiply–add chain the compiler keeps in vector
//! registers — and then rounds/writes the eight results in ascending edge
//! order. This is a pure *reassociation of instructions, not of
//! arithmetic*: every per-edge value is computed by exactly the
//! expression the scalar loop used, on exactly the operands the scalar
//! loop read, because per-edge work is independent — edge `e` reads only
//! `loads[..]` (not written in this pass), `prev[e]`, and the constant
//! tables, and writes only `prev[e]`, `flows[e]`, and (scatter pass) the
//! two arc slots owned by `e`. Hoisting the eight reads of `prev[e]`
//! above the eight writes therefore never changes an operand, and no f64
//! addition is regrouped anywhere. The same argument covers the apply
//! passes: each node's arc reduction keeps its exact sequential order
//! inside its lane, and the fused statistics (`LoadStats::absorb` and
//! the per-block squared-deviation partials) are folded lane 0..8 in node
//! order, identical to the scalar sequence. Hence all golden-trace
//! checksums are unchanged by construction — the property
//! `tests/golden_trace.rs` pins. The one deliberately scalar loop is
//! [`arc_round_streamed`]'s prefix-sum token selection, whose sequential
//! f64 prefix is itself the pinned quantity (see the comment there).
//!
//! This module is exported `#[doc(hidden)]` so the workspace's criterion
//! benches can time each phase in isolation; it is **not** a stable API.

use std::cell::Cell;
use std::ops::Range;
use std::sync::atomic::{AtomicI32, AtomicI64, AtomicU32, AtomicU64, Ordering::Relaxed};

use sodiff_graph::{Graph, Speeds};

use crate::engine::FlowMemory;
use crate::metrics::DEV_BLOCK;
use crate::prefetch;
use crate::rng::{self, SplitMix64};
use crate::rounding::Rounding;

/// Lane width of the chunked kernels (matches [`crate::rng`]'s bulk-sweep
/// width): wide enough to fill 512-bit vectors, small enough that the
/// per-chunk lane arrays always stay in registers.
pub const LANES: usize = 8;

// The apply passes rely on block boundaries only falling at chunk ends.
const _: () = assert!(DEV_BLOCK.is_multiple_of(LANES));

/// Immutable per-simulation tables shared by the sequential executor and
/// the worker pool (via `Arc`): division-free edge coefficients plus a
/// structure-of-arrays copy of the CSR adjacency.
pub struct KernelTables {
    /// Node count.
    pub n: usize,
    /// Edge count.
    pub m: usize,
    /// Canonical tail (`u` of `(u, v)`, `u < v`) per edge.
    pub tail: Vec<u32>,
    /// Canonical head per edge.
    pub head: Vec<u32>,
    /// `α_e / s_tail` per edge.
    pub coef_tail: Vec<f64>,
    /// `α_e / s_head` per edge.
    pub coef_head: Vec<f64>,
    /// CSR arc offsets, length `n + 1`.
    pub offsets: Vec<usize>,
    /// Arc-indexed edge ids.
    pub arc_edges: Vec<u32>,
    /// Arc-indexed orientation signs (`+1` = owner is the tail).
    pub arc_signs: Vec<i8>,
    /// Per-edge arc positions `(tail side, head side)`; built only when the
    /// randomized rounding framework needs the arc decomposition.
    pub edge_arc_pos: Vec<(u32, u32)>,
    /// Per-node speed-proportional balanced load `x̄_i = T·s_i/S`, where
    /// `T` is the total load passed at construction (the conserved
    /// initial total for real simulations). The apply passes reduce load
    /// deviations against this table in the same sweep that applies
    /// flows, so stop conditions never pay a separate metrics pass.
    pub ideal: Vec<f64>,
}

impl KernelTables {
    /// Builds the tables for `graph` with the given speeds. `total_load`
    /// seeds the [`KernelTables::ideal`] balanced-load table (pass the
    /// initial total; benches that ignore the fused stats may pass any
    /// value).
    pub fn new(graph: &Graph, speeds: &Speeds, needs_arc_plan: bool, total_load: f64) -> Self {
        let n = graph.node_count();
        let m = graph.edge_count();
        let mut tail = Vec::with_capacity(m);
        let mut head = Vec::with_capacity(m);
        let mut coef_tail = Vec::with_capacity(m);
        let mut coef_head = Vec::with_capacity(m);
        for &(u, v) in graph.edges() {
            let alpha = graph.alpha(u, v);
            tail.push(u);
            head.push(v);
            coef_tail.push(alpha / speeds.get(u as usize));
            coef_head.push(alpha / speeds.get(v as usize));
        }
        let mut offsets = Vec::with_capacity(n + 1);
        for v in 0..=n {
            offsets.push(if v == n {
                graph.arc_count()
            } else {
                graph.arc_range(v as u32).start
            });
        }
        let edge_arc_pos = if needs_arc_plan {
            let mut pos = vec![(0u32, 0u32); m];
            for v in graph.nodes() {
                let start = graph.arc_range(v).start;
                for (idx, &e) in graph.neighbor_edges(v).iter().enumerate() {
                    let p = (start + idx) as u32;
                    if graph.neighbor_signs(v)[idx] > 0 {
                        pos[e as usize].0 = p;
                    } else {
                        pos[e as usize].1 = p;
                    }
                }
            }
            pos
        } else {
            Vec::new()
        };
        // Same per-node expression as `metrics::snapshot_with_total`, so
        // the fused deviations match a from-scratch recompute bit for bit.
        let ideal = (0..n)
            .map(|i| total_load * speeds.get(i) / speeds.total())
            .collect();
        Self {
            n,
            m,
            tail,
            head,
            coef_tail,
            coef_head,
            offsets,
            arc_edges: graph.arc_edge_ids().to_vec(),
            arc_signs: graph.arc_orientations().to_vec(),
            edge_arc_pos,
            ideal,
        }
    }
}

/// Per-chunk load statistics fused into the apply passes: the round's
/// minimum transient load plus everything the node-derived half of a
/// [`crate::metrics::MetricsSnapshot`] needs (deviations are measured
/// against [`KernelTables::ideal`]). Sequential executors reduce one
/// whole-range chunk; pool participants reduce their node chunk and the
/// control thread [`LoadStats::merge`]s them in chunk order at the
/// round's final barrier. The min/max fields combine exactly regardless
/// of chunking; the squared-deviation sum is **not** carried per chunk —
/// the apply passes write per-[`DEV_BLOCK`] partial sums into a shared
/// block buffer and the round driver folds them in block order
/// ([`fold_block_sums`]), so `sum_sq_dev` too is bit-identical for every
/// executor and thread count (see `tests/fused_metrics.rs`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadStats {
    /// Minimum transient load `min_i (x_i − Σ outgoing)` of the chunk.
    pub min_transient: f64,
    /// Minimum post-round load.
    pub min_load: f64,
    /// Maximum post-round deviation `x_i − x̄_i`.
    pub max_dev: f64,
    /// Minimum post-round deviation.
    pub min_dev: f64,
    /// Sum of squared post-round deviations. The apply passes return
    /// `0.0` here (they emit per-block partials instead); the round
    /// driver fills it from [`fold_block_sums`].
    pub sum_sq_dev: f64,
}

impl LoadStats {
    /// The merge identity (an empty chunk's statistics).
    pub fn identity() -> Self {
        Self {
            min_transient: f64::INFINITY,
            min_load: f64::INFINITY,
            max_dev: f64::NEG_INFINITY,
            min_dev: f64::INFINITY,
            sum_sq_dev: 0.0,
        }
    }

    /// Folds one node's min/max contributions into the chunk statistics
    /// (the squared deviation goes to the block accumulator instead).
    ///
    /// Compare-and-assign instead of `f64::min`/`f64::max`: the updates
    /// are rare once the extrema stabilize, so these are four
    /// well-predicted branches per node, not four IEEE min/max µop
    /// sequences (measured ~0.7 ns/edge cheaper on the 256×256 SOS
    /// nearest case). `metrics::snapshot_with_total` reduces with the
    /// same comparisons, keeping the fused and from-scratch snapshots
    /// bit-identical (NaNs lose every comparison on both paths alike).
    #[inline(always)]
    fn absorb(&mut self, load: f64, dev: f64, transient: f64) {
        if transient < self.min_transient {
            self.min_transient = transient;
        }
        if load < self.min_load {
            self.min_load = load;
        }
        if dev > self.max_dev {
            self.max_dev = dev;
        }
        if dev < self.min_dev {
            self.min_dev = dev;
        }
    }

    /// Combines two chunks' statistics (associative; `other` is the
    /// higher-indexed chunk so sequential merge order is well defined).
    pub fn merge(self, other: Self) -> Self {
        Self {
            min_transient: self.min_transient.min(other.min_transient),
            min_load: self.min_load.min(other.min_load),
            max_dev: self.max_dev.max(other.max_dev),
            min_dev: self.min_dev.min(other.min_dev),
            sum_sq_dev: self.sum_sq_dev + other.sum_sq_dev,
        }
    }
}

/// Shared-writable `f64` storage: a plain slice (sequential executor) or
/// relaxed atomics (worker pool) behind one interface.
///
/// The element slice is exposed so hot loops can zip a sub-range and let
/// the compiler elide per-element bounds checks; `get`/`set` cover random
/// access.
pub trait BufF64 {
    /// Storage element (`Cell<f64>` or `AtomicU64`).
    type Elem;
    /// The backing elements.
    fn elems(&self) -> &[Self::Elem];
    /// Reads one element.
    fn read(e: &Self::Elem) -> f64;
    /// Writes one element.
    fn write(e: &Self::Elem, v: f64);
    /// Reads element `i`.
    #[inline(always)]
    fn get(&self, i: usize) -> f64 {
        Self::read(&self.elems()[i])
    }
    /// Writes element `i`.
    #[inline(always)]
    fn set(&self, i: usize, v: f64) {
        Self::write(&self.elems()[i], v);
    }
}

/// Shared-writable `i64` storage (see [`BufF64`]).
pub trait BufI64 {
    /// Storage element (`Cell<i64>` or `AtomicI64`).
    type Elem;
    /// The backing elements.
    fn elems(&self) -> &[Self::Elem];
    /// Reads one element.
    fn read(e: &Self::Elem) -> i64;
    /// Writes one element.
    fn write(e: &Self::Elem, v: i64);
    /// Reads element `i`.
    #[inline(always)]
    fn get(&self, i: usize) -> i64 {
        Self::read(&self.elems()[i])
    }
    /// Writes element `i`.
    #[inline(always)]
    fn set(&self, i: usize, v: i64) {
        Self::write(&self.elems()[i], v);
    }
}

/// [`BufF64`] over a plain slice via `Cell` (single-threaded).
pub struct CellsF64<'a>(pub &'a [Cell<f64>]);

/// [`BufI64`] over a plain slice via `Cell` (single-threaded).
pub struct CellsI64<'a>(pub &'a [Cell<i64>]);

/// [`BufF64`] over relaxed atomics storing `f64` bits (worker pool).
pub struct AtomicsF64<'a>(pub &'a [AtomicU64]);

/// [`BufI64`] over relaxed atomics (worker pool).
pub struct AtomicsI64<'a>(pub &'a [AtomicI64]);

/// [`BufF64`] over **compact** `f32` storage (single-threaded): reads
/// widen losslessly (`f32 → f64` is exact), writes round to the nearest
/// `f32`. All arithmetic between a read and a write still happens in
/// `f64`, so compact mode is deterministic and executor-independent like
/// full mode — it just quantizes what *persists* across rounds. Halves
/// the per-element state bytes.
pub struct CellsF32<'a>(pub &'a [Cell<f32>]);

/// [`BufI64`] over **compact** `i32` storage (single-threaded): reads
/// widen exactly, writes truncate with two's-complement wrapping. The
/// simulator builder bounds the initial total so in-range values never
/// wrap (see `engine.rs`); wrapping on contract violation is still
/// deterministic.
pub struct CellsI32<'a>(pub &'a [Cell<i32>]);

/// [`BufF64`] over relaxed atomics storing compact `f32` bits (worker
/// pool twin of [`CellsF32`]).
pub struct AtomicsF32<'a>(pub &'a [AtomicU32]);

/// [`BufI64`] over relaxed compact atomics (worker pool twin of
/// [`CellsI32`]).
pub struct AtomicsI32<'a>(pub &'a [AtomicI32]);

/// Shared-writable view of a mutable `f64` slice.
pub fn cells_f64(s: &mut [f64]) -> CellsF64<'_> {
    CellsF64(Cell::from_mut(s).as_slice_of_cells())
}

/// Shared-writable view of a mutable `i64` slice.
pub fn cells_i64(s: &mut [i64]) -> CellsI64<'_> {
    CellsI64(Cell::from_mut(s).as_slice_of_cells())
}

/// Shared-writable view of a mutable compact `f32` slice.
pub fn cells_f32(s: &mut [f32]) -> CellsF32<'_> {
    CellsF32(Cell::from_mut(s).as_slice_of_cells())
}

/// Shared-writable view of a mutable compact `i32` slice.
pub fn cells_i32(s: &mut [i32]) -> CellsI32<'_> {
    CellsI32(Cell::from_mut(s).as_slice_of_cells())
}

impl BufF64 for CellsF64<'_> {
    type Elem = Cell<f64>;
    #[inline(always)]
    fn elems(&self) -> &[Cell<f64>] {
        self.0
    }
    #[inline(always)]
    fn read(e: &Cell<f64>) -> f64 {
        e.get()
    }
    #[inline(always)]
    fn write(e: &Cell<f64>, v: f64) {
        e.set(v);
    }
}

impl BufI64 for CellsI64<'_> {
    type Elem = Cell<i64>;
    #[inline(always)]
    fn elems(&self) -> &[Cell<i64>] {
        self.0
    }
    #[inline(always)]
    fn read(e: &Cell<i64>) -> i64 {
        e.get()
    }
    #[inline(always)]
    fn write(e: &Cell<i64>, v: i64) {
        e.set(v);
    }
}

impl BufF64 for AtomicsF64<'_> {
    type Elem = AtomicU64;
    #[inline(always)]
    fn elems(&self) -> &[AtomicU64] {
        self.0
    }
    #[inline(always)]
    fn read(e: &AtomicU64) -> f64 {
        f64::from_bits(e.load(Relaxed))
    }
    #[inline(always)]
    fn write(e: &AtomicU64, v: f64) {
        e.store(v.to_bits(), Relaxed);
    }
}

impl BufI64 for AtomicsI64<'_> {
    type Elem = AtomicI64;
    #[inline(always)]
    fn elems(&self) -> &[AtomicI64] {
        self.0
    }
    #[inline(always)]
    fn read(e: &AtomicI64) -> i64 {
        e.load(Relaxed)
    }
    #[inline(always)]
    fn write(e: &AtomicI64, v: i64) {
        e.store(v, Relaxed);
    }
}

impl BufF64 for CellsF32<'_> {
    type Elem = Cell<f32>;
    #[inline(always)]
    fn elems(&self) -> &[Cell<f32>] {
        self.0
    }
    #[inline(always)]
    fn read(e: &Cell<f32>) -> f64 {
        f64::from(e.get())
    }
    #[inline(always)]
    fn write(e: &Cell<f32>, v: f64) {
        e.set(v as f32);
    }
}

impl BufI64 for CellsI32<'_> {
    type Elem = Cell<i32>;
    #[inline(always)]
    fn elems(&self) -> &[Cell<i32>] {
        self.0
    }
    #[inline(always)]
    fn read(e: &Cell<i32>) -> i64 {
        i64::from(e.get())
    }
    #[inline(always)]
    fn write(e: &Cell<i32>, v: i64) {
        e.set(v as i32);
    }
}

impl BufF64 for AtomicsF32<'_> {
    type Elem = AtomicU32;
    #[inline(always)]
    fn elems(&self) -> &[AtomicU32] {
        self.0
    }
    #[inline(always)]
    fn read(e: &AtomicU32) -> f64 {
        f64::from(f32::from_bits(e.load(Relaxed)))
    }
    #[inline(always)]
    fn write(e: &AtomicU32, v: f64) {
        e.store((v as f32).to_bits(), Relaxed);
    }
}

impl BufI64 for AtomicsI32<'_> {
    type Elem = AtomicI32;
    #[inline(always)]
    fn elems(&self) -> &[AtomicI32] {
        self.0
    }
    #[inline(always)]
    fn read(e: &AtomicI32) -> i64 {
        i64::from(e.load(Relaxed))
    }
    #[inline(always)]
    fn write(e: &AtomicI32, v: i64) {
        e.store(v as i32, Relaxed);
    }
}

/// `s.trunc() as i64` without the libm call: the `f64 → i64` cast *is*
/// truncation toward zero (`cvttsd2si`), with the same saturating
/// overflow/NaN behavior as trunc-then-cast.
#[inline(always)]
fn trunc_i64(s: f64) -> i64 {
    s as i64
}

/// `s.round() as i64` (half away from zero) without the libm call.
///
/// Exact: `s − trunc(s)` is computed without rounding error (Sterbenz for
/// `|s| ≥ 1`, trivially for `|s| < 1`), so the half-comparison sees the
/// true fractional part — including boundary cases like
/// `0.49999999999999994` that the naive `(s + 0.5).trunc()` gets wrong.
/// The adjustment saturates so `|s| ≥ 2⁶³` keeps the cast's saturating
/// behavior instead of wrapping.
#[inline(always)]
fn round_i64(s: f64) -> i64 {
    let t = s as i64;
    let frac = s - t as f64;
    t.saturating_add(i64::from(frac >= 0.5))
        .saturating_sub(i64::from(frac <= -0.5))
}

/// `s.floor()` and the exact fractional part `s − ⌊s⌋`, without libm
/// (saturating at the `i64` range like the cast itself).
#[inline(always)]
fn floor_frac(s: f64) -> (i64, f64) {
    let t = s as i64;
    let f = t.saturating_sub(i64::from((t as f64) > s));
    (f, s - f as f64)
}

/// `r.ceil() as i64` for `r ≥ 0`, without libm (saturating).
#[inline(always)]
fn ceil_i64(r: f64) -> i64 {
    let t = r as i64;
    t.saturating_add(i64::from((t as f64) < r))
}

/// Fused edge pass for the **edge-local** rounding schemes in discrete
/// mode: computes the scheduled flow
/// `Ŷ_e = mem·prev_e + gain·(coef_tail·x_tail − coef_head·x_head)`,
/// rounds it, and updates the SOS flow memory, all in one zipped sweep
/// over `edges` (bounds checks hoisted by slicing the range up front).
///
/// # Panics
///
/// Panics for [`Rounding::RandomizedFramework`], which is node-centric and
/// runs through [`edge_pass_scatter`] → [`arc_round_streamed`] →
/// [`prev_from_flows`].
#[allow(clippy::too_many_arguments)] // a flat hot-path kernel; a params struct would obscure it
pub fn edge_pass_fused<P: BufF64, F: BufI64>(
    t: &KernelTables,
    edges: Range<usize>,
    mem: f64,
    gain: f64,
    round: u64,
    rounding: Rounding,
    flow_memory: FlowMemory,
    x: impl Fn(usize) -> f64,
    prev: &P,
    flows: &F,
) {
    let e0 = edges.start;
    let tails = &t.tail[edges.clone()];
    let heads = &t.head[edges.clone()];
    let cts = &t.coef_tail[edges.clone()];
    let chs = &t.coef_head[edges.clone()];
    let prevs = &prev.elems()[edges.clone()];
    let flow_elems = &flows.elems()[edges];
    let len = tails.len();
    let main = len - len % LANES;
    macro_rules! fused_loop {
        (|$k:ident, $s:ident| $round_expr:expr) => {{
            // Lane-chunked main loop (see the module docs for the
            // bit-exactness argument): chunk lane 1 computes the eight
            // independent scheduled flows, lane 2 rounds and writes them
            // in the same ascending edge order as the scalar tail.
            for k0 in (0..main).step_by(LANES) {
                let tc = &tails[k0..k0 + LANES];
                let hc = &heads[k0..k0 + LANES];
                let ctc = &cts[k0..k0 + LANES];
                let chc = &chs[k0..k0 + LANES];
                let pc = &prevs[k0..k0 + LANES];
                let fc = &flow_elems[k0..k0 + LANES];
                let mut s_lanes = [0.0f64; LANES];
                for l in 0..LANES {
                    s_lanes[l] = mem * P::read(&pc[l])
                        + gain * (ctc[l] * x(tc[l] as usize) - chc[l] * x(hc[l] as usize));
                }
                for l in 0..LANES {
                    let $k = k0 + l;
                    let $s = s_lanes[l];
                    let y: i64 = $round_expr;
                    F::write(&fc[l], y);
                    P::write(
                        &pc[l],
                        match flow_memory {
                            FlowMemory::Rounded => y as f64,
                            FlowMemory::Scheduled => $s,
                        },
                    );
                }
            }
            for $k in main..len {
                let $s = mem * P::read(&prevs[$k])
                    + gain * (cts[$k] * x(tails[$k] as usize) - chs[$k] * x(heads[$k] as usize));
                let y: i64 = $round_expr;
                F::write(&flow_elems[$k], y);
                P::write(
                    &prevs[$k],
                    match flow_memory {
                        FlowMemory::Rounded => y as f64,
                        FlowMemory::Scheduled => $s,
                    },
                );
            }
        }};
    }
    match rounding {
        Rounding::RoundDown => fused_loop!(|_k, s| trunc_i64(s)),
        Rounding::Nearest => fused_loop!(|_k, s| round_i64(s)),
        Rounding::UnbiasedEdge { seed } => fused_loop!(|k, s| {
            let mut rng = SplitMix64::for_node_round(seed, (e0 + k) as u32, round);
            let (floor, frac) = floor_frac(s);
            floor + i64::from(rng.next_f64() < frac)
        }),
        Rounding::RandomizedFramework { .. } => {
            panic!("the randomized framework is node-centric; use the arc passes")
        }
    }
}

/// Masked variant of [`edge_pass_fused`] for the pairwise schemes
/// (dimension exchange, matching-based balancing): the scheduled flow of
/// an edge outside the round's active matching is forced to zero by an
/// arithmetic mask (one bit load per edge, no branch), so inactive edges
/// round to a zero flow and leave their endpoints untouched. The
/// coefficient tables are passed explicitly because the pairwise schemes
/// use the λ-scaled harmonic-speed coefficients instead of the diffusion
/// `α_e/s` tables baked into [`KernelTables`].
///
/// `mask` returns the `w`-th 64-bit word of the active-edge bitset
/// (edge `e` is active iff bit `e % 64` of word `e / 64` is set). This is
/// a separate function rather than a flag on [`edge_pass_fused`] so the
/// diffusion hot path keeps its exact codegen.
///
/// # Panics
///
/// Panics for [`Rounding::RandomizedFramework`] (node-centric; use
/// [`edge_pass_scatter_masked`]).
#[allow(clippy::too_many_arguments)] // a flat hot-path kernel; a params struct would obscure it
pub fn edge_pass_fused_masked<P: BufF64, F: BufI64>(
    t: &KernelTables,
    coef_tail: &[f64],
    coef_head: &[f64],
    edges: Range<usize>,
    mask: impl Fn(usize) -> u64,
    mem: f64,
    gain: f64,
    round: u64,
    rounding: Rounding,
    flow_memory: FlowMemory,
    x: impl Fn(usize) -> f64,
    prev: &P,
    flows: &F,
) {
    let e0 = edges.start;
    let tails = &t.tail[edges.clone()];
    let heads = &t.head[edges.clone()];
    let cts = &coef_tail[edges.clone()];
    let chs = &coef_head[edges.clone()];
    let prevs = &prev.elems()[edges.clone()];
    let flow_elems = &flows.elems()[edges];
    let len = tails.len();
    let main = len - len % LANES;
    macro_rules! fused_loop {
        (|$k:ident, $s:ident| $round_expr:expr) => {{
            for k0 in (0..main).step_by(LANES) {
                let tc = &tails[k0..k0 + LANES];
                let hc = &heads[k0..k0 + LANES];
                let ctc = &cts[k0..k0 + LANES];
                let chc = &chs[k0..k0 + LANES];
                let pc = &prevs[k0..k0 + LANES];
                let fc = &flow_elems[k0..k0 + LANES];
                let mut s_lanes = [0.0f64; LANES];
                for l in 0..LANES {
                    let e = e0 + k0 + l;
                    let act = ((mask(e >> 6) >> (e & 63)) & 1) as f64;
                    s_lanes[l] = act
                        * (mem * P::read(&pc[l])
                            + gain * (ctc[l] * x(tc[l] as usize) - chc[l] * x(hc[l] as usize)));
                }
                for l in 0..LANES {
                    let $k = k0 + l;
                    let $s = s_lanes[l];
                    let y: i64 = $round_expr;
                    F::write(&fc[l], y);
                    P::write(
                        &pc[l],
                        match flow_memory {
                            FlowMemory::Rounded => y as f64,
                            FlowMemory::Scheduled => $s,
                        },
                    );
                }
            }
            for $k in main..len {
                let e = e0 + $k;
                let act = ((mask(e >> 6) >> (e & 63)) & 1) as f64;
                let $s = act
                    * (mem * P::read(&prevs[$k])
                        + gain
                            * (cts[$k] * x(tails[$k] as usize) - chs[$k] * x(heads[$k] as usize)));
                let y: i64 = $round_expr;
                F::write(&flow_elems[$k], y);
                P::write(
                    &prevs[$k],
                    match flow_memory {
                        FlowMemory::Rounded => y as f64,
                        FlowMemory::Scheduled => $s,
                    },
                );
            }
        }};
    }
    match rounding {
        Rounding::RoundDown => fused_loop!(|_k, s| trunc_i64(s)),
        Rounding::Nearest => fused_loop!(|_k, s| round_i64(s)),
        Rounding::UnbiasedEdge { seed } => fused_loop!(|k, s| {
            let mut rng = SplitMix64::for_node_round(seed, (e0 + k) as u32, round);
            let (floor, frac) = floor_frac(s);
            floor + i64::from(rng.next_f64() < frac)
        }),
        Rounding::RandomizedFramework { .. } => {
            panic!("the randomized framework is node-centric; use the arc passes")
        }
    }
}

/// Phase 1 of the randomized framework: computes the scheduled flow
/// `Ŷ_e`, **floors it right here** (the sending side's outflow is `|Ŷ_e|`
/// and its floor is the edge's base flow, so the per-arc floor pass of the
/// old formulation collapses into this per-edge one), writes the signed
/// base into the edge's flow slot, and *scatters* the fractional part
/// into the sending side's arc slot (`0.0` into the receiving side's).
/// The node-centric rounding phase then only sums its contiguous frac
/// slots and distributes excess tokens. For [`FlowMemory::Scheduled`]
/// the SOS memory is updated in the same sweep.
///
/// The sending-side selection is computed with arithmetic masks rather
/// than branches — the sign of `Ŷ_e` is data-dependent and essentially
/// random mid-simulation, so a branch here would mispredict about half
/// the time.
#[allow(clippy::too_many_arguments)] // a flat hot-path kernel; a params struct would obscure it
pub fn edge_pass_scatter<A: BufF64, F: BufI64, P: BufF64>(
    t: &KernelTables,
    edges: Range<usize>,
    mem: f64,
    gain: f64,
    flow_memory: FlowMemory,
    x: impl Fn(usize) -> f64,
    arc_frac: &A,
    flows: &F,
    prev: &P,
) {
    let tails = &t.tail[edges.clone()];
    let heads = &t.head[edges.clone()];
    let cts = &t.coef_tail[edges.clone()];
    let chs = &t.coef_head[edges.clone()];
    let positions = &t.edge_arc_pos[edges.clone()];
    let prevs = &prev.elems()[edges.clone()];
    let flow_elems = &flows.elems()[edges];
    let len = tails.len();
    let main = len - len % LANES;
    // Per-edge body shared by the chunked lane-2 loop and the scalar
    // tail. `trunc(Ŷ) = sign·⌊|Ŷ|⌋` *is* the signed base flow, and
    // `|Ŷ − trunc(Ŷ)|` is exactly the sending side's fractional part
    // (the subtraction is exact by Sterbenz, and negation is exact), so
    // one saturating cast replaces the abs/floor/sign-multiply chain.
    // The sending-side selection uses arithmetic masks rather than
    // branches — the sign of `Ŷ_e` is essentially random mid-simulation,
    // so a branch would mispredict about half the time: tail sends iff
    // `Ŷ_e > 0`, and the receiving slot gets `frac − frac_send`, which is
    // exactly `+0.0` or `frac`.
    let scatter_one = |&(pt, ph): &(u32, u32), pe: &P::Elem, fe: &F::Elem, s: f64| {
        let base = trunc_i64(s);
        let frac = (s - base as f64).abs();
        let tail_sends = f64::from(u8::from(s > 0.0));
        let frac_tail = frac * tail_sends;
        arc_frac.set(pt as usize, frac_tail);
        arc_frac.set(ph as usize, frac - frac_tail);
        F::write(fe, base);
        if matches!(flow_memory, FlowMemory::Scheduled) {
            P::write(pe, s);
        }
    };
    for k0 in (0..main).step_by(LANES) {
        // The arc slots live at data-dependent positions the hardware
        // prefetcher cannot follow; hint the lines a fixed distance
        // ahead (no-op without the `accel` feature).
        for &(pt, ph) in positions.iter().skip(k0 + prefetch::DIST).take(LANES) {
            prefetch::read_index(arc_frac.elems(), pt as usize);
            prefetch::read_index(arc_frac.elems(), ph as usize);
        }
        let tc = &tails[k0..k0 + LANES];
        let hc = &heads[k0..k0 + LANES];
        let ctc = &cts[k0..k0 + LANES];
        let chc = &chs[k0..k0 + LANES];
        let pc = &prevs[k0..k0 + LANES];
        let poc = &positions[k0..k0 + LANES];
        let fc = &flow_elems[k0..k0 + LANES];
        // Unlike the fused pass, compute and scatter stay fused per lane:
        // the scatter's two data-dependent stores dominate here, and
        // staging eight scheduled flows first only bursts those stores
        // into back-to-back groups that stall the store buffer (measured
        // ~10% slower on out-of-cache tori). The chunk still earns its
        // keep by hoisting the bounds checks into the slice splits above.
        for l in 0..LANES {
            let s = mem * P::read(&pc[l])
                + gain * (ctc[l] * x(tc[l] as usize) - chc[l] * x(hc[l] as usize));
            scatter_one(&poc[l], &pc[l], &fc[l], s);
        }
    }
    for k in main..len {
        let s = mem * P::read(&prevs[k])
            + gain * (cts[k] * x(tails[k] as usize) - chs[k] * x(heads[k] as usize));
        scatter_one(&positions[k], &prevs[k], &flow_elems[k], s);
    }
}

/// Masked variant of [`edge_pass_scatter`] for the pairwise schemes under
/// the randomized rounding framework: inactive edges contribute a zero
/// base flow and zero fractional parts, so the node-centric rounding
/// phase ([`arc_round_streamed`]) runs unchanged — a node whose arcs are
/// all inactive sums `r = 0` and skips out. See
/// [`edge_pass_fused_masked`] for the mask convention and why this is a
/// separate function.
#[allow(clippy::too_many_arguments)] // a flat hot-path kernel; a params struct would obscure it
pub fn edge_pass_scatter_masked<A: BufF64, F: BufI64, P: BufF64>(
    t: &KernelTables,
    coef_tail: &[f64],
    coef_head: &[f64],
    edges: Range<usize>,
    mask: impl Fn(usize) -> u64,
    mem: f64,
    gain: f64,
    flow_memory: FlowMemory,
    x: impl Fn(usize) -> f64,
    arc_frac: &A,
    flows: &F,
    prev: &P,
) {
    let e0 = edges.start;
    let tails = &t.tail[edges.clone()];
    let heads = &t.head[edges.clone()];
    let cts = &coef_tail[edges.clone()];
    let chs = &coef_head[edges.clone()];
    let positions = &t.edge_arc_pos[edges.clone()];
    let prevs = &prev.elems()[edges.clone()];
    let flow_elems = &flows.elems()[edges];
    let len = tails.len();
    let main = len - len % LANES;
    let scatter_one = |&(pt, ph): &(u32, u32), pe: &P::Elem, fe: &F::Elem, s: f64| {
        let base = trunc_i64(s);
        let frac = (s - base as f64).abs();
        let tail_sends = f64::from(u8::from(s > 0.0));
        let frac_tail = frac * tail_sends;
        arc_frac.set(pt as usize, frac_tail);
        arc_frac.set(ph as usize, frac - frac_tail);
        F::write(fe, base);
        if matches!(flow_memory, FlowMemory::Scheduled) {
            P::write(pe, s);
        }
    };
    for k0 in (0..main).step_by(LANES) {
        for &(pt, ph) in positions.iter().skip(k0 + prefetch::DIST).take(LANES) {
            prefetch::read_index(arc_frac.elems(), pt as usize);
            prefetch::read_index(arc_frac.elems(), ph as usize);
        }
        let tc = &tails[k0..k0 + LANES];
        let hc = &heads[k0..k0 + LANES];
        let ctc = &cts[k0..k0 + LANES];
        let chc = &chs[k0..k0 + LANES];
        let pc = &prevs[k0..k0 + LANES];
        let poc = &positions[k0..k0 + LANES];
        let fc = &flow_elems[k0..k0 + LANES];
        // Compute and scatter fused per lane, as in [`edge_pass_scatter`]:
        // staging the scheduled flows bursts the data-dependent stores.
        for l in 0..LANES {
            let e = e0 + k0 + l;
            let act = ((mask(e >> 6) >> (e & 63)) & 1) as f64;
            let s = act
                * (mem * P::read(&pc[l])
                    + gain * (ctc[l] * x(tc[l] as usize) - chc[l] * x(hc[l] as usize)));
            scatter_one(&poc[l], &pc[l], &fc[l], s);
        }
    }
    for k in main..len {
        let e = e0 + k;
        let act = ((mask(e >> 6) >> (e & 63)) & 1) as f64;
        let s = act
            * (mem * P::read(&prevs[k])
                + gain * (cts[k] * x(tails[k] as usize) - chs[k] * x(heads[k] as usize)));
        scatter_one(&positions[k], &prevs[k], &flow_elems[k], s);
    }
}

/// Fused edge pass for continuous mode: the scheduled flow *is* the flow,
/// so it is written straight into the flow memory (which the apply pass
/// then reads as this round's flows).
pub fn edge_pass_continuous<P: BufF64>(
    t: &KernelTables,
    edges: Range<usize>,
    mem: f64,
    gain: f64,
    x: impl Fn(usize) -> f64,
    prev: &P,
) {
    let tails = &t.tail[edges.clone()];
    let heads = &t.head[edges.clone()];
    let cts = &t.coef_tail[edges.clone()];
    let chs = &t.coef_head[edges.clone()];
    let prevs = &prev.elems()[edges];
    let len = tails.len();
    let main = len - len % LANES;
    for k0 in (0..main).step_by(LANES) {
        let tc = &tails[k0..k0 + LANES];
        let hc = &heads[k0..k0 + LANES];
        let ctc = &cts[k0..k0 + LANES];
        let chc = &chs[k0..k0 + LANES];
        let pc = &prevs[k0..k0 + LANES];
        let mut s_lanes = [0.0f64; LANES];
        for l in 0..LANES {
            s_lanes[l] = mem * P::read(&pc[l])
                + gain * (ctc[l] * x(tc[l] as usize) - chc[l] * x(hc[l] as usize));
        }
        for (l, &s) in s_lanes.iter().enumerate() {
            P::write(&pc[l], s);
        }
    }
    for k in main..len {
        let s = mem * P::read(&prevs[k])
            + gain * (cts[k] * x(tails[k] as usize) - chs[k] * x(heads[k] as usize));
        P::write(&prevs[k], s);
    }
}

/// Masked variant of [`edge_pass_continuous`] for the pairwise schemes:
/// inactive edges carry a zero flow this round. See
/// [`edge_pass_fused_masked`] for the mask convention.
#[allow(clippy::too_many_arguments)] // a flat hot-path kernel; a params struct would obscure it
pub fn edge_pass_continuous_masked<P: BufF64>(
    t: &KernelTables,
    coef_tail: &[f64],
    coef_head: &[f64],
    edges: Range<usize>,
    mask: impl Fn(usize) -> u64,
    mem: f64,
    gain: f64,
    x: impl Fn(usize) -> f64,
    prev: &P,
) {
    let e0 = edges.start;
    let tails = &t.tail[edges.clone()];
    let heads = &t.head[edges.clone()];
    let cts = &coef_tail[edges.clone()];
    let chs = &coef_head[edges.clone()];
    let prevs = &prev.elems()[edges];
    let len = tails.len();
    let main = len - len % LANES;
    for k0 in (0..main).step_by(LANES) {
        let tc = &tails[k0..k0 + LANES];
        let hc = &heads[k0..k0 + LANES];
        let ctc = &cts[k0..k0 + LANES];
        let chc = &chs[k0..k0 + LANES];
        let pc = &prevs[k0..k0 + LANES];
        let mut s_lanes = [0.0f64; LANES];
        for l in 0..LANES {
            let e = e0 + k0 + l;
            let act = ((mask(e >> 6) >> (e & 63)) & 1) as f64;
            s_lanes[l] = act
                * (mem * P::read(&pc[l])
                    + gain * (ctc[l] * x(tc[l] as usize) - chc[l] * x(hc[l] as usize)));
        }
        for (l, &s) in s_lanes.iter().enumerate() {
            P::write(&pc[l], s);
        }
    }
    for k in main..len {
        let e = e0 + k;
        let act = ((mask(e >> 6) >> (e & 63)) & 1) as f64;
        let s = act
            * (mem * P::read(&prevs[k])
                + gain * (cts[k] * x(tails[k] as usize) - chs[k] * x(heads[k] as usize)));
        P::write(&prevs[k], s);
    }
}

/// Reusable per-participant scratch of the randomized framework's
/// rounding phase: the bulk-swept RNG states of the participant's node
/// chunk.
#[derive(Default)]
pub struct FwScratch {
    /// Warmed-up SplitMix64 states, one per node of the current chunk
    /// (filled by [`crate::rng::fill_node_states`]).
    states: Vec<u64>,
}

impl FwScratch {
    /// An empty scratch (buffers grow on first use and are then reused).
    pub fn new() -> Self {
        Self::default()
    }
}

/// Phase 2 of the randomized framework: node-centric excess-token
/// distribution over `nodes` (paper Section III-B). Phase 1 already wrote
/// every edge's floored base flow and scattered the fractional parts into
/// arc slots, so each node only sums its **contiguous** `arc_frac` range
/// to get `r` (slots of arcs that don't send are exactly `0.0` and leave
/// the sum unchanged, so this equals the classic sum over positive
/// outflows), skips out when `r == 0` — the common case away from the
/// diffusion wavefront — and otherwise sends `⌈r⌉` excess tokens: each
/// token picks the first arc whose cumulative frac exceeds its draw, via
/// a branchless count of passed prefix sums (zero-frac slots can never be
/// selected), and increments that edge's flow. Exactly one endpoint of an
/// edge owns positive fracs for it, so flow slots have one writer.
///
/// The per-node random streams are keyed by `(seed, node, round)` — so
/// the result is independent of chunking — but their warmed-up states are
/// precomputed by a flat [`crate::rng::fill_node_states`] sweep into
/// `scratch.states` (one `mix64` per node instead of key construction
/// plus a discarded draw), and the `k`-th token draw is computed directly
/// from the stream counter ([`crate::rng::nth_u64`]), so successive draws
/// have no serial RNG dependency. Draw-for-draw identical to
/// [`SplitMix64::for_node_round`].
pub fn arc_round_streamed<A: BufF64, F: BufI64>(
    t: &KernelTables,
    nodes: Range<usize>,
    seed: u64,
    round: u64,
    arc_frac: &A,
    flows: &F,
    scratch: &mut FwScratch,
) {
    let states = &mut scratch.states;
    if states.len() != nodes.len() {
        states.resize(nodes.len(), 0);
    }
    rng::fill_node_states(rng::round_key(seed, round), nodes.start, states);
    // Walk the chunk's arc ranges by splitting running slices instead of
    // re-slicing from `offsets` per node — one length computation and
    // three `split_at`s per node, no repeated global-range checks.
    let chunk_arcs = t.offsets[nodes.start]..t.offsets[nodes.end];
    let mut fracs_rest = &arc_frac.elems()[chunk_arcs.clone()];
    let mut edges_rest = &t.arc_edges[chunk_arcs.clone()];
    let mut signs_rest = &t.arc_signs[chunk_arcs];
    let offsets = &t.offsets[nodes.start..=nodes.end];
    for (deg, &state) in offsets.windows(2).map(|w| w[1] - w[0]).zip(states.iter()) {
        let (fracs, rest) = fracs_rest.split_at(deg);
        fracs_rest = rest;
        let (edges, rest) = edges_rest.split_at(deg);
        edges_rest = rest;
        let (signs, rest) = signs_rest.split_at(deg);
        signs_rest = rest;
        // Why the frac sum and the prefix-count selection below stay
        // scalar while the RNG sweeps are lane-chunked: both reduce a
        // *sequential* f64 prefix whose per-element bit pattern is pinned
        // by the golden traces — `r` feeds `⌈r⌉` and every token compares
        // its draw against the exact running prefix, so any lane-split
        // regrouping of these sums changes which arc a token picks and
        // breaks bit-identity with the pre-pipeline formulation. (The
        // fixed-lane variants were also measured slower here in PR 3:
        // data-dependent trip counts of ~deg 4 defeat them.)
        let mut r = 0.0f64;
        // `first` ends up as the index of the node's first positive-frac
        // arc: the number of leading arcs whose cumulative sum is still
        // zero. It serves as the race-safe target of masked-out token
        // stores below (this node sends on it, so no other participant
        // ever writes that edge).
        let mut first = 0usize;
        for fe in fracs {
            r += A::read(fe);
            first += usize::from(r == 0.0);
        }
        if r == 0.0 {
            continue;
        }
        let tokens = ceil_i64(r);
        if tokens <= 0 {
            // `r` can only be NaN here if a scheduled flow was NaN; the
            // old formulation sent no tokens for such nodes either.
            continue;
        }
        let denom = tokens as f64;
        for k in 0..tokens as u64 {
            // P(arc j) = frac_j / ⌈r⌉; P(stay) = 1 − r/⌈r⌉. The draw is
            // computed from the stream counter (`nth_u64`), so successive
            // tokens have no serial RNG dependency; the target arc is the
            // branchless count of passed prefix sums (a selected arc
            // always has a positive frac, so this node owns its edge);
            // and a "stay" token degenerates to adding `0` to the first
            // sending arc's edge instead of a mispredict-prone skip.
            let u = rng::unit_f64(rng::nth_u64(state, k)) * denom;
            let mut cum = 0.0;
            let mut sel = 0usize;
            for fe in fracs {
                cum += A::read(fe);
                sel += usize::from(u >= cum);
            }
            let sent = sel < fracs.len();
            let j = if sent { sel } else { first };
            let fe = &flows.elems()[edges[j] as usize];
            F::write(fe, F::read(fe) + signs[j] as i64 * i64::from(sent));
        }
    }
}

/// Phase 3 of the randomized framework under [`FlowMemory::Rounded`]: a
/// pure zipped streaming sweep copying the integral flows into the SOS
/// memory. ([`FlowMemory::Scheduled`] already updated the memory in
/// phase 1.) Under the worker pool this runs in the same barrier interval
/// as the apply pass — both only read `flows`.
pub fn prev_from_flows<F: BufI64, P: BufF64>(edges: Range<usize>, flows: &F, prev: &P) {
    let flow_elems = &flows.elems()[edges.clone()];
    let prevs = &prev.elems()[edges];
    for (fe, pe) in flow_elems.iter().zip(prevs) {
        P::write(pe, F::read(fe) as f64);
    }
}

/// Number of [`DEV_BLOCK`]-node potential blocks over `n` nodes: the
/// length of the block-partial buffer the apply passes write.
pub fn dev_blocks(n: usize) -> usize {
    n.div_ceil(DEV_BLOCK)
}

/// Folds the first `blocks` per-block squared-deviation partials in
/// block order. Shared by the sequential executor, the pool's control
/// thread, and (structurally) `metrics::snapshot_with_total`, so the
/// potential's summation order never depends on the executor.
pub fn fold_block_sums(blocks: usize, sums: &impl BufF64) -> f64 {
    let mut total = 0.0;
    for b in 0..blocks {
        total += sums.get(b);
    }
    total
}

/// Node-centric application of integer flows to `nodes`; returns the
/// chunk's fused [`LoadStats`] — the minimum transient load
/// `min_i (x_i − Σ outgoing)` plus the post-round min/max/deviation
/// reduction against [`KernelTables::ideal`] — computed in the same
/// sweep, so stop conditions never pay a separate `O(n)` metrics pass.
/// Per-[`DEV_BLOCK`] squared-deviation partials go to `block_sums`
/// (indexed by global block id `i / DEV_BLOCK`); `nodes.start` must be
/// block-aligned so each block has exactly one writer — the pool aligns
/// its node chunks to guarantee it.
pub fn apply_discrete<L: BufI64>(
    t: &KernelTables,
    nodes: Range<usize>,
    flows: impl Fn(usize) -> i64,
    loads: &L,
    block_sums: &impl BufF64,
) -> LoadStats {
    debug_assert!(
        nodes.start.is_multiple_of(DEV_BLOCK),
        "chunk must be block-aligned"
    );
    let mut stats = LoadStats::identity();
    let mut block_acc = 0.0f64;
    let last = nodes.end;
    // Walk the chunk's arc ranges by splitting running slices (as
    // `arc_round_streamed` does) and zip the per-node tables, so the
    // inner loop carries no repeated global-range bounds checks.
    let chunk_arcs = t.offsets[nodes.start]..t.offsets[nodes.end];
    let mut edges_rest = &t.arc_edges[chunk_arcs.clone()];
    let mut signs_rest = &t.arc_signs[chunk_arcs];
    let offsets = &t.offsets[nodes.start..=nodes.end];
    let ideals = &t.ideal[nodes.clone()];
    let load_elems = &loads.elems()[nodes.clone()];
    let len = nodes.len();
    let main = len - len % LANES;
    // 8-node chunks: lane 1 runs each node's arc reduction in its exact
    // sequential order and stages the results; lane 2 folds the fused
    // statistics in lane (= node) order, identical to the scalar
    // sequence. `nodes.start` is block-aligned and `DEV_BLOCK` is a
    // multiple of `LANES`, so a potential-block boundary (or `last` on a
    // full chunk) can only fall at a chunk end — checked once per chunk.
    for k0 in (0..main).step_by(LANES) {
        let mut news = [0i64; LANES];
        let mut transients = [0i64; LANES];
        for l in 0..LANES {
            let deg = offsets[k0 + l + 1] - offsets[k0 + l];
            let (arc_edges, rest) = edges_rest.split_at(deg);
            edges_rest = rest;
            let (arc_signs, rest) = signs_rest.split_at(deg);
            signs_rest = rest;
            let mut outgoing: i64 = 0;
            let mut net: i64 = 0;
            for (&e, &sg) in arc_edges.iter().zip(arc_signs) {
                let y = flows(e as usize) * sg as i64;
                // Branchless: token direction is essentially random
                // mid-run, so `y > 0` would mispredict about half the
                // time; `max` compiles to a conditional move and is
                // exactly the branch's sum (integers).
                outgoing += y.max(0);
                net += y;
            }
            let x = L::read(&load_elems[k0 + l]);
            news[l] = x - net;
            transients[l] = x - outgoing;
        }
        for l in 0..LANES {
            let new = news[l];
            let dev = new as f64 - ideals[k0 + l];
            stats.absorb(new as f64, dev, transients[l] as f64);
            block_acc += dev * dev;
            L::write(&load_elems[k0 + l], new);
        }
        let i = nodes.start + k0 + LANES; // one past the chunk's last node
        if i.is_multiple_of(DEV_BLOCK) || i == last {
            block_sums.set((i - 1) / DEV_BLOCK, block_acc);
            block_acc = 0.0;
        }
    }
    for k in main..len {
        let deg = offsets[k + 1] - offsets[k];
        let (arc_edges, rest) = edges_rest.split_at(deg);
        edges_rest = rest;
        let (arc_signs, rest) = signs_rest.split_at(deg);
        signs_rest = rest;
        let mut outgoing: i64 = 0;
        let mut net: i64 = 0;
        for (&e, &sg) in arc_edges.iter().zip(arc_signs) {
            let y = flows(e as usize) * sg as i64;
            outgoing += y.max(0);
            net += y;
        }
        let le = &load_elems[k];
        let x = L::read(le);
        let new = x - net;
        let dev = new as f64 - ideals[k];
        stats.absorb(new as f64, dev, (x - outgoing) as f64);
        block_acc += dev * dev;
        let i = nodes.start + k;
        if (i + 1).is_multiple_of(DEV_BLOCK) || i + 1 == last {
            block_sums.set(i / DEV_BLOCK, block_acc);
            block_acc = 0.0;
        }
        L::write(le, new);
    }
    stats
}

/// Continuous analog of [`apply_discrete`].
pub fn apply_continuous<L: BufF64>(
    t: &KernelTables,
    nodes: Range<usize>,
    flows: impl Fn(usize) -> f64,
    loads: &L,
    block_sums: &impl BufF64,
) -> LoadStats {
    debug_assert!(
        nodes.start.is_multiple_of(DEV_BLOCK),
        "chunk must be block-aligned"
    );
    let mut stats = LoadStats::identity();
    let mut block_acc = 0.0f64;
    let last = nodes.end;
    let chunk_arcs = t.offsets[nodes.start]..t.offsets[nodes.end];
    let mut edges_rest = &t.arc_edges[chunk_arcs.clone()];
    let mut signs_rest = &t.arc_signs[chunk_arcs];
    let offsets = &t.offsets[nodes.start..=nodes.end];
    let ideals = &t.ideal[nodes.clone()];
    let load_elems = &loads.elems()[nodes.clone()];
    let len = nodes.len();
    let main = len - len % LANES;
    // Branchless positive-part accumulation, shared by both loops below:
    // flow direction is essentially random mid-run, so `y > 0.0` would
    // mispredict about half the time. The select adds exactly `y` or
    // `+0.0`; the accumulator starts at `+0.0` and only ever adds
    // non-negative values, so it is never `-0.0` and `acc + 0.0 == acc`
    // bit for bit — identical to the skipping branch (also for NaN `y`,
    // where both forms leave the accumulator unchanged).
    let pos = |y: f64| if y > 0.0 { y } else { 0.0 };
    for k0 in (0..main).step_by(LANES) {
        let mut news = [0.0f64; LANES];
        let mut transients = [0.0f64; LANES];
        for l in 0..LANES {
            let deg = offsets[k0 + l + 1] - offsets[k0 + l];
            let (arc_edges, rest) = edges_rest.split_at(deg);
            edges_rest = rest;
            let (arc_signs, rest) = signs_rest.split_at(deg);
            signs_rest = rest;
            let mut outgoing = 0.0;
            let mut net = 0.0;
            for (&e, &sg) in arc_edges.iter().zip(arc_signs) {
                let y = flows(e as usize) * sg as f64;
                outgoing += pos(y);
                net += y;
            }
            let x = L::read(&load_elems[k0 + l]);
            news[l] = x - net;
            transients[l] = x - outgoing;
        }
        for l in 0..LANES {
            let new = news[l];
            let dev = new - ideals[k0 + l];
            stats.absorb(new, dev, transients[l]);
            block_acc += dev * dev;
            L::write(&load_elems[k0 + l], new);
        }
        let i = nodes.start + k0 + LANES;
        if i.is_multiple_of(DEV_BLOCK) || i == last {
            block_sums.set((i - 1) / DEV_BLOCK, block_acc);
            block_acc = 0.0;
        }
    }
    for k in main..len {
        let deg = offsets[k + 1] - offsets[k];
        let (arc_edges, rest) = edges_rest.split_at(deg);
        edges_rest = rest;
        let (arc_signs, rest) = signs_rest.split_at(deg);
        signs_rest = rest;
        let mut outgoing = 0.0;
        let mut net = 0.0;
        for (&e, &sg) in arc_edges.iter().zip(arc_signs) {
            let y = flows(e as usize) * sg as f64;
            outgoing += pos(y);
            net += y;
        }
        let le = &load_elems[k];
        let x = L::read(le);
        let new = x - net;
        let dev = new - ideals[k];
        stats.absorb(new, dev, x - outgoing);
        block_acc += dev * dev;
        let i = nodes.start + k;
        if (i + 1).is_multiple_of(DEV_BLOCK) || i + 1 == last {
            block_sums.set(i / DEV_BLOCK, block_acc);
            block_acc = 0.0;
        }
        L::write(le, new);
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use sodiff_graph::generators;

    #[test]
    fn tables_match_graph_structure() {
        let g = generators::torus2d(4, 5);
        let s = Speeds::linear_ramp(20, 3.0);
        let t = KernelTables::new(&g, &s, true, 0.0);
        assert_eq!(t.n, 20);
        assert_eq!(t.m, g.edge_count());
        for e in 0..t.m {
            let (u, v) = g.edge(e as u32);
            assert_eq!((t.tail[e], t.head[e]), (u, v));
            let alpha = g.alpha(u, v);
            assert_eq!(t.coef_tail[e], alpha / s.get(u as usize));
            assert_eq!(t.coef_head[e], alpha / s.get(v as usize));
            let (pt, ph) = t.edge_arc_pos[e];
            assert_eq!(t.arc_edges[pt as usize], e as u32);
            assert_eq!(t.arc_edges[ph as usize], e as u32);
            assert_eq!(t.arc_signs[pt as usize], 1);
            assert_eq!(t.arc_signs[ph as usize], -1);
        }
        assert_eq!(t.offsets.len(), 21);
        assert_eq!(*t.offsets.last().unwrap(), g.arc_count());
    }

    #[test]
    fn integer_rounding_matches_libm_and_saturates() {
        for s in [
            0.0,
            0.4999,
            0.5,
            0.49999999999999994,
            1.5,
            2.5,
            -0.5,
            -1.5,
            -2.49,
            7.99,
            -7.99,
            1234567.5,
        ] {
            assert_eq!(trunc_i64(s), s.trunc() as i64, "trunc {s}");
            assert_eq!(round_i64(s), s.round() as i64, "round {s}");
            let (f, frac) = floor_frac(s);
            assert_eq!(f, s.floor() as i64, "floor {s}");
            assert_eq!(frac, s - s.floor(), "frac {s}");
        }
        for r in [0.0, 0.1, 1.0, 4.5, 1e9] {
            assert_eq!(ceil_i64(r), r.ceil() as i64, "ceil {r}");
        }
        // Saturation instead of wrap/panic at the i64 boundary.
        assert_eq!(round_i64(1e300), i64::MAX);
        assert_eq!(round_i64(-1e300), i64::MIN);
        assert_eq!(floor_frac(-1e300).0, i64::MIN);
        assert_eq!(ceil_i64(1e300), i64::MAX);
        assert_eq!(round_i64(f64::NAN), 0);
    }

    #[test]
    fn cell_and_atomic_buffers_agree() {
        let mut plain = vec![0.0f64; 8];
        let atomics: Vec<AtomicU64> = (0..8).map(|_| AtomicU64::new(0)).collect();
        {
            let cells = cells_f64(&mut plain);
            for i in 0..8 {
                cells.set(i, i as f64 * 1.5 - 2.0);
                AtomicsF64(&atomics).set(i, i as f64 * 1.5 - 2.0);
            }
            for i in 0..8 {
                assert_eq!(cells.get(i), AtomicsF64(&atomics).get(i));
            }
        }
        assert_eq!(plain[4], 4.0);
    }

    #[test]
    fn compact_buffers_widen_and_narrow() {
        // f32 storage: reads widen exactly, writes round to nearest f32,
        // and the Cell and atomic twins agree bit for bit.
        let mut plain = vec![0.0f32; 4];
        let atomics: Vec<AtomicU32> = (0..4).map(|_| AtomicU32::new(0)).collect();
        let vals = [1.5f64, 0.1, -3.25e7, f64::from(f32::MAX) * 2.0];
        {
            let cells = cells_f32(&mut plain);
            for (i, &v) in vals.iter().enumerate() {
                cells.set(i, v);
                AtomicsF32(&atomics).set(i, v);
                assert_eq!(cells.get(i), f64::from(v as f32), "narrow {v}");
                assert_eq!(cells.get(i), AtomicsF32(&atomics).get(i));
            }
        }
        assert_eq!(plain[0], 1.5);
        assert_eq!(plain[3], f32::INFINITY); // overflow saturates like `as f32`
                                             // i32 storage: exact in range; two's-complement wrap (the
                                             // documented contract-violation behavior) out of range.
        let mut ints = vec![0i32; 3];
        let iatomics: Vec<AtomicI32> = (0..3).map(|_| AtomicI32::new(0)).collect();
        {
            let cells = cells_i32(&mut ints);
            for (i, v) in [7i64, -(1 << 30), i64::from(i32::MAX) + 1]
                .into_iter()
                .enumerate()
            {
                cells.set(i, v);
                AtomicsI32(&iatomics).set(i, v);
                assert_eq!(cells.get(i), i64::from(v as i32), "narrow {v}");
                assert_eq!(cells.get(i), AtomicsI32(&iatomics).get(i));
            }
        }
        assert_eq!(ints, vec![7, -(1 << 30), i32::MIN]);
    }

    #[test]
    fn fused_pass_matches_two_phase_for_edge_local_schemes() {
        // One fused sweep must equal "scheduled pass then rounding pass".
        let g = generators::torus2d(5, 5);
        let s = Speeds::uniform(25);
        let t = KernelTables::new(&g, &s, false, 0.0);
        let m = t.m;
        let loads: Vec<f64> = (0..25).map(|i| ((i * 13) % 17) as f64).collect();
        let prev_init: Vec<f64> = (0..m).map(|e| (e as f64) * 0.21 - 1.5).collect();
        for rounding in [
            Rounding::round_down(),
            Rounding::nearest(),
            Rounding::unbiased_edge(7),
        ] {
            let mut fused_prev = prev_init.clone();
            let mut fused_flows = vec![0i64; m];
            edge_pass_fused(
                &t,
                0..m,
                0.4,
                1.6,
                9,
                rounding,
                FlowMemory::Scheduled,
                |i| loads[i],
                &cells_f64(&mut fused_prev),
                &cells_i64(&mut fused_flows),
            );
            let sched: Vec<f64> = (0..m)
                .map(|e| {
                    0.4 * prev_init[e]
                        + 1.6
                            * (t.coef_tail[e] * loads[t.tail[e] as usize]
                                - t.coef_head[e] * loads[t.head[e] as usize])
                })
                .collect();
            assert_eq!(fused_prev, sched, "{rounding:?} flow memory");
            for e in 0..m {
                let expected = match rounding {
                    Rounding::RoundDown => sched[e].trunc() as i64,
                    Rounding::Nearest => sched[e].round() as i64,
                    Rounding::UnbiasedEdge { seed } => {
                        let mut rng = SplitMix64::for_node_round(seed, e as u32, 9);
                        let floor = sched[e].floor();
                        floor as i64 + i64::from(rng.next_f64() < sched[e] - floor)
                    }
                    Rounding::RandomizedFramework { .. } => unreachable!(),
                };
                assert_eq!(fused_flows[e], expected, "{rounding:?} edge {e}");
            }
        }
    }

    #[test]
    fn streamed_pipeline_matches_round_flows() {
        // Scatter + streamed rounding must reproduce the reference
        // node-centric rounding exactly, for any node-chunk split.
        let g = generators::torus2d(4, 4);
        let s = Speeds::uniform(16);
        let t = KernelTables::new(&g, &s, true, 0.0);
        let m = t.m;
        let sched: Vec<f64> = (0..m)
            .map(|e| ((e * 31 % 17) as f64 - 8.0) * 0.37)
            .collect();
        let rounding = Rounding::randomized(11);
        let mut direct = vec![0i64; m];
        rounding.round_flows(&g, &sched, 5, &mut direct);
        for split in [1usize, 3, 16] {
            // Phase 1's floor + frac scatter, by hand (the edge pass
            // itself is covered by the scatter test below and the
            // engine-level golden-trace tests).
            let mut arc_frac = vec![0.0f64; g.arc_count()];
            let mut flows = vec![0i64; m];
            for (e, &(pt, ph)) in t.edge_arc_pos.iter().enumerate() {
                let s = sched[e];
                let base = s.abs().floor();
                let frac = s.abs() - base;
                flows[e] = if s > 0.0 { base as i64 } else { -(base as i64) };
                arc_frac[pt as usize] = if s > 0.0 { frac } else { 0.0 };
                arc_frac[ph as usize] = if s > 0.0 { 0.0 } else { frac };
            }
            let mut scratch = FwScratch::new();
            let mut lo = 0;
            while lo < 16 {
                let hi = (lo + split).min(16);
                arc_round_streamed(
                    &t,
                    lo..hi,
                    11,
                    5,
                    &cells_f64(&mut arc_frac),
                    &cells_i64(&mut flows),
                    &mut scratch,
                );
                lo = hi;
            }
            assert_eq!(flows, direct, "split {split}");
            let mut prev = vec![0.5f64; m];
            prev_from_flows(0..m, &cells_i64(&mut flows), &cells_f64(&mut prev));
            let as_f64: Vec<f64> = direct.iter().map(|&y| y as f64).collect();
            assert_eq!(prev, as_f64, "split {split} flow memory");
        }
    }

    #[test]
    fn edge_pass_scatter_floors_flows_and_scatters_fracs() {
        let g = generators::torus2d(3, 4);
        let s = Speeds::uniform(12);
        let t = KernelTables::new(&g, &s, true, 0.0);
        let m = t.m;
        let loads: Vec<f64> = (0..12).map(|i| ((i * 7) % 5) as f64).collect();
        let prev_init: Vec<f64> = (0..m).map(|e| (e as f64) * 0.11 - 0.9).collect();
        let expected: Vec<f64> = (0..m)
            .map(|e| {
                0.3 * prev_init[e]
                    + 1.7
                        * (t.coef_tail[e] * loads[t.tail[e] as usize]
                            - t.coef_head[e] * loads[t.head[e] as usize])
            })
            .collect();
        for memory in [FlowMemory::Rounded, FlowMemory::Scheduled] {
            let mut arc_frac = vec![9.9f64; g.arc_count()];
            let mut flows = vec![77i64; m];
            let mut prev = prev_init.clone();
            edge_pass_scatter(
                &t,
                0..m,
                0.3,
                1.7,
                memory,
                |i| loads[i],
                &cells_f64(&mut arc_frac),
                &cells_i64(&mut flows),
                &cells_f64(&mut prev),
            );
            for (e, &(pt, ph)) in t.edge_arc_pos.iter().enumerate() {
                let s = expected[e];
                let base = s.abs().floor();
                let frac = s.abs() - base;
                let signed_base = if s > 0.0 { base as i64 } else { -(base as i64) };
                assert_eq!(flows[e], signed_base, "{memory:?} base flow {e}");
                let (want_t, want_h) = if s > 0.0 { (frac, 0.0) } else { (0.0, frac) };
                assert_eq!(arc_frac[pt as usize], want_t, "{memory:?} tail frac {e}");
                assert_eq!(arc_frac[ph as usize], want_h, "{memory:?} head frac {e}");
            }
            match memory {
                FlowMemory::Rounded => assert_eq!(prev, prev_init),
                FlowMemory::Scheduled => assert_eq!(prev, expected),
            }
        }
    }

    #[test]
    fn apply_passes_conserve_and_track_transient() {
        let g = generators::star(5);
        let s = Speeds::uniform(5);
        // Total 10 over 5 uniform nodes: the ideal load is 2 per node.
        let t = KernelTables::new(&g, &s, false, 10.0);
        // Hub (node 0) sends 3 tokens along each of 4 edges.
        let flows = [3i64; 4];
        let mut loads = vec![10i64, 0, 0, 0, 0];
        let mut blocks = vec![0.0f64; dev_blocks(5)];
        let st = apply_discrete(
            &t,
            0..5,
            |e| flows[e],
            &cells_i64(&mut loads),
            &cells_f64(&mut blocks),
        );
        assert_eq!(loads, vec![-2, 3, 3, 3, 3]);
        assert_eq!(st.min_transient, -2.0); // hub transient: 10 − 12
        assert_eq!(st.min_load, -2.0);
        assert_eq!(st.max_dev, 1.0); // leaves at 3 vs ideal 2
        assert_eq!(st.min_dev, -4.0); // hub at −2 vs ideal 2
        assert_eq!(st.sum_sq_dev, 0.0, "apply leaves the sum to the fold");
        // Block partials: 16 + 4·1 = 20 squared deviation in one block.
        assert_eq!(fold_block_sums(blocks.len(), &cells_f64(&mut blocks)), 20.0);
        let flows_f = [2.5f64; 4];
        let mut loads_f = vec![10.0f64, 0.0, 0.0, 0.0, 0.0];
        let st = apply_continuous(
            &t,
            0..5,
            |e| flows_f[e],
            &cells_f64(&mut loads_f),
            &cells_f64(&mut blocks),
        );
        assert_eq!(loads_f, vec![0.0, 2.5, 2.5, 2.5, 2.5]);
        assert_eq!(st.min_transient, 0.0);
        assert_eq!(st.min_load, 0.0);
        assert_eq!(st.max_dev, 0.5);
        assert_eq!(st.min_dev, -2.0);
        assert_eq!(fold_block_sums(blocks.len(), &cells_f64(&mut blocks)), 5.0);
    }

    /// The block-partial fold must be independent of chunking: any
    /// block-aligned split of the node range produces the same partials
    /// and hence the same folded sum, bit for bit.
    #[test]
    fn block_fold_is_chunking_independent() {
        use crate::metrics::DEV_BLOCK;
        let g = generators::torus2d(12, 12); // n = 144: two full blocks + tail
        let n = g.node_count();
        let s = Speeds::uniform(n);
        let t = KernelTables::new(&g, &s, false, 144.0 * 3.0);
        let flows = vec![0i64; t.m];
        let run = |bounds: &[usize]| {
            let mut loads: Vec<i64> = (0..n as i64).map(|i| (i * 7) % 11).collect();
            let mut blocks = vec![0.0f64; dev_blocks(n)];
            let mut merged = LoadStats::identity();
            for w in bounds.windows(2) {
                merged = merged.merge(apply_discrete(
                    &t,
                    w[0]..w[1],
                    |e| flows[e],
                    &cells_i64(&mut loads),
                    &cells_f64(&mut blocks),
                ));
            }
            merged.sum_sq_dev = fold_block_sums(blocks.len(), &cells_f64(&mut blocks));
            merged
        };
        let whole = run(&[0, n]);
        for bounds in [
            vec![0, DEV_BLOCK, n],
            vec![0, DEV_BLOCK, 2 * DEV_BLOCK, n],
            vec![0, 2 * DEV_BLOCK, n],
        ] {
            assert_eq!(run(&bounds), whole, "bounds {bounds:?}");
        }
    }
}
