//! Coupled discrete/continuous runs measuring the deviation
//! `max_k |x_k^D(t) − x_k^C(t)|` that the paper's Theorems 3, 8, and 9
//! bound.

/// Per-round deviation series between a discrete process and its
/// continuous twin, started from the same initial load.
#[derive(Debug, Clone)]
pub struct DeviationSeries {
    /// `deviation[t]` = `max_k |x_k^D(t+1) − x_k^C(t+1)|` after round `t+1`.
    pub per_round: Vec<f64>,
}

impl DeviationSeries {
    /// The largest deviation over the whole run.
    pub fn max(&self) -> f64 {
        self.per_round.iter().copied().fold(0.0, f64::max)
    }

    /// The deviation at the final recorded round.
    pub fn last(&self) -> f64 {
        self.per_round.last().copied().unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use crate::experiment::Experiment;
    use crate::init::InitialLoad;
    use crate::rounding::Rounding;
    use sodiff_graph::{generators, Speeds};
    use sodiff_linalg::spectral;

    #[test]
    fn deviation_starts_small_and_stays_bounded() {
        let g = generators::torus2d(8, 8);
        let series = Experiment::on(&g)
            .discrete(Rounding::randomized(3))
            .build()
            .unwrap()
            .coupled_deviation(300)
            .unwrap();
        assert_eq!(series.per_round.len(), 300);
        // Round 1 rounds at most d tokens per node off.
        assert!(series.per_round[0] <= 5.0);
        // Theorem 4 shape: stays O(d √(log n / (1−λ))) — small here.
        assert!(series.max() < 40.0, "max deviation {}", series.max());
    }

    #[test]
    fn randomized_beats_round_down_deviation() {
        // Deterministic round-down creates a systematic bias that the
        // randomized framework avoids; after convergence the randomized
        // deviation should be clearly smaller.
        let g = generators::torus2d(10, 10);
        let spec = spectral::analyze(&g, &Speeds::uniform(100));
        let beta = spec.beta_opt();
        let rounds = 1500;
        let run = |rounding: Rounding| {
            Experiment::on(&g)
                .discrete(rounding)
                .sos(beta)
                .build()
                .unwrap()
                .coupled_deviation(rounds)
                .unwrap()
        };
        let randomized = run(Rounding::randomized(5));
        let down = run(Rounding::round_down());
        assert!(
            randomized.last() <= down.last() + 1.0,
            "randomized {} vs round-down {}",
            randomized.last(),
            down.last()
        );
    }

    #[test]
    fn heterogeneous_coupled_run_works() {
        let g = generators::torus2d(5, 5);
        let speeds = Speeds::linear_ramp(25, 4.0);
        let series = Experiment::on(&g)
            .discrete(Rounding::randomized(7))
            .speeds(speeds)
            .init(InitialLoad::point(0, 12_500))
            .build()
            .unwrap()
            .coupled_deviation(200)
            .unwrap();
        assert!(series.max() < 60.0, "max deviation {}", series.max());
    }
}
