//! Persistent worker pool for the round executor.
//!
//! The pool is split in two layers so that one set of threads can serve
//! many simulations (the batch [`crate::Driver`] runs a whole scenario
//! file over a single pool):
//!
//! * [`WorkerPool`] owns the threads, the round barrier, and a slot for
//!   the currently attached job. Threads are spawned **once** and park on
//!   the barrier between rounds; each round costs a handful of barrier
//!   waits instead of the `threads × phases` thread spawns of the old
//!   per-round `thread::scope` executor.
//! * [`RoundJob`] owns one simulation's shared state (kernel tables,
//!   chunk boundaries, loads, flow memory, scratch) in relaxed atomics.
//!   Attaching a different job retargets the same threads at a different
//!   simulation — no respawn, no rejoin. The per-round phase sequence
//!   itself lives in the job's [`crate::scheme_kernel::SchemeKernel`]:
//!   the pool is scheme-agnostic.
//!
//! Phases are separated by the barrier, which provides the necessary
//! happens-before edges, so the pool needs no `unsafe` and stays within
//! the crate's `#![forbid(unsafe_code)]`. All arithmetic runs through the
//! same kernels as the sequential executor ([`crate::kernel`]), in the
//! same per-element order, so pooled results are **bit-identical** to
//! sequential ones for every scheme × rounding × mode combination
//! regardless of thread count.

use std::sync::atomic::{AtomicBool, AtomicI32, AtomicI64, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Barrier, Mutex};
use std::thread::JoinHandle;

use crate::engine::FlowMemory;
use crate::kernel::{
    self, AtomicsF32, AtomicsF64, AtomicsI32, AtomicsI64, FwScratch, KernelTables, LoadStats,
};
use crate::matchgen::mask_words;
use crate::metrics::DEV_BLOCK;
use crate::scheme_kernel::{ChunkBufs, SchemeKernel};

/// One simulation's state as seen by the pool: everything a worker needs
/// to run its share of a round. The phase sequence itself lives in the
/// job's [`SchemeKernel`] — the pool only owns chunking, rendezvous, and
/// the shared atomic buffers.
pub(crate) struct RoundJob {
    tables: Arc<KernelTables>,
    kernel: Arc<SchemeKernel>,
    flow_memory: FlowMemory,
    /// Chunk boundaries over edges / nodes, one chunk per participant.
    edge_bounds: Vec<usize>,
    node_bounds: Vec<usize>,
    /// Per-round parameters, published before the start barrier.
    mem_bits: AtomicU64,
    gain_bits: AtomicU64,
    round: AtomicU64,
    /// Canonical state while the job is attached (bit-exact mirrors are
    /// copied back into the simulator's vectors after each round). A job
    /// is either full-width (the `*_i`/`*_f`/64-bit vectors are sized,
    /// the `*32` twins empty) or compact (`mem=compact`: the `*32`
    /// twins sized, the full-width vectors empty) — never both, so the
    /// unused layout costs nothing.
    loads_i: Vec<AtomicI64>,
    loads_f: Vec<AtomicU64>,
    prev: Vec<AtomicU64>,
    /// Arc-indexed fractional parts (framework jobs only).
    arc_frac: Vec<AtomicU64>,
    flows: Vec<AtomicI64>,
    /// Compact twins of the five state vectors above (`mem=compact`).
    loads_i32: Vec<AtomicI32>,
    loads_f32: Vec<AtomicU32>,
    prev32: Vec<AtomicU32>,
    arc_frac32: Vec<AtomicU32>,
    flows32: Vec<AtomicI32>,
    /// Whether this job runs the compact (`i32`/`f32`) state layout.
    compact: bool,
    /// Active-edge bitmask words (random-matching jobs, or any job with
    /// edge faults), published by the control thread before each round's
    /// first barrier.
    mask: Vec<AtomicU64>,
    /// Stale-edge bitmask words (stale-fault jobs only), published by
    /// the control thread before each round's first barrier.
    stale: Vec<AtomicU64>,
    /// Per-participant fused load statistics of the last round, combined
    /// by the control thread after the round's final barrier.
    stats: Vec<StatSlots>,
    /// Per-[`DEV_BLOCK`] squared-deviation partials (bits) of the apply
    /// pass. Node chunks are block-aligned, so each slot has exactly one
    /// writer per round; the control thread folds them in block order.
    block_sums: Vec<AtomicU64>,
}

/// One participant's fused [`LoadStats`] as relaxed atomic bits: written
/// by the participant at the end of its chunk, read by the control
/// thread after the round's final barrier (which provides the
/// happens-before edge).
struct StatSlots {
    min_transient: AtomicU64,
    min_load: AtomicU64,
    max_dev: AtomicU64,
    min_dev: AtomicU64,
    sum_sq_dev: AtomicU64,
}

impl StatSlots {
    fn new() -> Self {
        Self {
            min_transient: AtomicU64::new(0),
            min_load: AtomicU64::new(0),
            max_dev: AtomicU64::new(0),
            min_dev: AtomicU64::new(0),
            sum_sq_dev: AtomicU64::new(0),
        }
    }

    fn store(&self, s: LoadStats) {
        self.min_transient
            .store(s.min_transient.to_bits(), Ordering::Relaxed);
        self.min_load.store(s.min_load.to_bits(), Ordering::Relaxed);
        self.max_dev.store(s.max_dev.to_bits(), Ordering::Relaxed);
        self.min_dev.store(s.min_dev.to_bits(), Ordering::Relaxed);
        self.sum_sq_dev
            .store(s.sum_sq_dev.to_bits(), Ordering::Relaxed);
    }

    fn load(&self) -> LoadStats {
        LoadStats {
            min_transient: f64::from_bits(self.min_transient.load(Ordering::Relaxed)),
            min_load: f64::from_bits(self.min_load.load(Ordering::Relaxed)),
            max_dev: f64::from_bits(self.max_dev.load(Ordering::Relaxed)),
            min_dev: f64::from_bits(self.min_dev.load(Ordering::Relaxed)),
            sum_sq_dev: f64::from_bits(self.sum_sq_dev.load(Ordering::Relaxed)),
        }
    }
}

/// The initial loads seeding a [`RoundJob`], which also select the job's
/// state layout: full-width `i64`/`f64` or the compact (`mem=compact`)
/// `i32`/`f32` twins.
pub(crate) enum JobLoads<'a> {
    /// Full-width discrete loads.
    I64(&'a [i64]),
    /// Full-width continuous loads.
    F64(&'a [f64]),
    /// Compact discrete loads.
    I32(&'a [i32]),
    /// Compact continuous loads.
    F32(&'a [f32]),
}

impl RoundJob {
    /// Captures one simulation's state for execution on a pool with
    /// `threads` participants. The `loads` variant matches the mode and
    /// memory layout and seeds the job's canonical state.
    pub fn new(
        threads: usize,
        tables: Arc<KernelTables>,
        kernel: Arc<SchemeKernel>,
        flow_memory: FlowMemory,
        loads: JobLoads<'_>,
    ) -> Self {
        let n = tables.n;
        let m = tables.m;
        let arcs = tables.arc_edges.len();
        let framework = kernel.needs_arc_plan();
        let masked =
            kernel.needs_random_mask() || kernel.needs_fault_mask() || kernel.needs_churn_mask();
        let staled = kernel.needs_stale_mask();
        let compact = matches!(loads, JobLoads::I32(_) | JobLoads::F32(_));
        let discrete = matches!(loads, JobLoads::I64(_) | JobLoads::I32(_));
        let sized = |yes: bool, len: usize| if yes { len } else { 0 };
        Self {
            tables,
            kernel,
            flow_memory,
            edge_bounds: chunk_bounds(m, threads),
            node_bounds: block_chunk_bounds(n, threads),
            mem_bits: AtomicU64::new(0),
            gain_bits: AtomicU64::new(0),
            round: AtomicU64::new(0),
            loads_i: match loads {
                JobLoads::I64(src) => src.iter().map(|&x| AtomicI64::new(x)).collect(),
                _ => Vec::new(),
            },
            loads_f: match loads {
                JobLoads::F64(src) => src.iter().map(|&x| AtomicU64::new(x.to_bits())).collect(),
                _ => Vec::new(),
            },
            prev: (0..sized(!compact, m))
                .map(|_| AtomicU64::new(0f64.to_bits()))
                .collect(),
            arc_frac: (0..sized(framework && !compact, arcs))
                .map(|_| AtomicU64::new(0))
                .collect(),
            flows: (0..sized(discrete && !compact, m))
                .map(|_| AtomicI64::new(0))
                .collect(),
            loads_i32: match loads {
                JobLoads::I32(src) => src.iter().map(|&x| AtomicI32::new(x)).collect(),
                _ => Vec::new(),
            },
            loads_f32: match loads {
                JobLoads::F32(src) => src.iter().map(|&x| AtomicU32::new(x.to_bits())).collect(),
                _ => Vec::new(),
            },
            prev32: (0..sized(compact, m))
                .map(|_| AtomicU32::new(0f32.to_bits()))
                .collect(),
            arc_frac32: (0..sized(framework && compact, arcs))
                .map(|_| AtomicU32::new(0))
                .collect(),
            flows32: (0..sized(discrete && compact, m))
                .map(|_| AtomicI32::new(0))
                .collect(),
            compact,
            mask: (0..if masked { mask_words(m) } else { 0 })
                .map(|_| AtomicU64::new(0))
                .collect(),
            stale: (0..if staled { mask_words(m) } else { 0 })
                .map(|_| AtomicU64::new(0))
                .collect(),
            stats: (0..threads).map(|_| StatSlots::new()).collect(),
            block_sums: (0..kernel::dev_blocks(n))
                .map(|_| AtomicU64::new(0))
                .collect(),
        }
    }

    /// This job's scheme kernel (the simulator drives round preparation
    /// through it).
    pub fn kernel(&self) -> &Arc<SchemeKernel> {
        &self.kernel
    }

    /// The job's active-edge mask words (empty unless the kernel draws
    /// random matchings or injects edge faults).
    pub fn mask_slots(&self) -> &[AtomicU64] {
        &self.mask
    }

    /// The job's stale-edge mask words (empty unless the kernel injects
    /// stale flows).
    pub fn stale_slots(&self) -> &[AtomicU64] {
        &self.stale
    }

    /// The job's canonical integer loads (empty in continuous mode).
    pub fn loads_i_slots(&self) -> &[AtomicI64] {
        &self.loads_i
    }

    /// The job's canonical continuous load bits (empty in discrete mode).
    pub fn loads_f_slots(&self) -> &[AtomicU64] {
        &self.loads_f
    }

    /// Runs participant `t`'s share of one round. Called by workers and —
    /// for participant 0 — by the simulator thread itself. `barrier` is
    /// the owning pool's phase barrier.
    fn run_chunk(&self, barrier: &Barrier, t: usize, scratch: &mut FwScratch) {
        let tables = &*self.tables;
        let mem = f64::from_bits(self.mem_bits.load(Ordering::Relaxed));
        let gain = f64::from_bits(self.gain_bits.load(Ordering::Relaxed));
        let round = self.round.load(Ordering::Relaxed);
        let edges = self.edge_bounds[t]..self.edge_bounds[t + 1];
        let nodes = self.node_bounds[t]..self.node_bounds[t + 1];
        let stats = if self.compact {
            let bufs = ChunkBufs {
                loads_i: AtomicsI32(&self.loads_i32),
                loads_f: AtomicsF32(&self.loads_f32),
                prev: AtomicsF32(&self.prev32),
                arc_frac: AtomicsF32(&self.arc_frac32),
                flows: AtomicsI32(&self.flows32),
                mask: &self.mask,
                stale: &self.stale,
                block_sums: &self.block_sums,
            };
            self.kernel.run_chunk(
                tables,
                barrier,
                edges,
                nodes,
                mem,
                gain,
                round,
                self.flow_memory,
                &bufs,
                scratch,
            )
        } else {
            let bufs = ChunkBufs {
                loads_i: AtomicsI64(&self.loads_i),
                loads_f: AtomicsF64(&self.loads_f),
                prev: AtomicsF64(&self.prev),
                arc_frac: AtomicsF64(&self.arc_frac),
                flows: AtomicsI64(&self.flows),
                mask: &self.mask,
                stale: &self.stale,
                block_sums: &self.block_sums,
            };
            self.kernel.run_chunk(
                tables,
                barrier,
                edges,
                nodes,
                mem,
                gain,
                round,
                self.flow_memory,
                &bufs,
                scratch,
            )
        };
        self.stats[t].store(stats);
    }

    /// Copies the job's integer loads back into `out`.
    pub fn read_loads_i(&self, out: &mut [i64]) {
        for (o, a) in out.iter_mut().zip(&self.loads_i) {
            *o = a.load(Ordering::Relaxed);
        }
    }

    /// Copies the job's continuous loads back into `out`.
    pub fn read_loads_f(&self, out: &mut [f64]) {
        for (o, a) in out.iter_mut().zip(&self.loads_f) {
            *o = f64::from_bits(a.load(Ordering::Relaxed));
        }
    }

    /// Copies the job's flow memory back into `out`.
    pub fn read_prev(&self, out: &mut [f64]) {
        for (o, a) in out.iter_mut().zip(&self.prev) {
            *o = f64::from_bits(a.load(Ordering::Relaxed));
        }
    }

    /// Overwrites the job's integer loads from `src` (checkpoint
    /// restore; control thread only, workers parked between rounds).
    pub fn write_loads_i(&self, src: &[i64]) {
        for (a, &x) in self.loads_i.iter().zip(src) {
            a.store(x, Ordering::Relaxed);
        }
    }

    /// Overwrites the job's continuous loads from `src` (checkpoint
    /// restore; control thread only, workers parked between rounds).
    pub fn write_loads_f(&self, src: &[f64]) {
        for (a, &x) in self.loads_f.iter().zip(src) {
            a.store(x.to_bits(), Ordering::Relaxed);
        }
    }

    /// Overwrites the job's flow memory from `src` (checkpoint restore;
    /// control thread only, workers parked between rounds).
    pub fn write_prev(&self, src: &[f64]) {
        for (a, &x) in self.prev.iter().zip(src) {
            a.store(x.to_bits(), Ordering::Relaxed);
        }
    }

    /// The job's canonical compact integer loads (`mem=compact`,
    /// discrete mode; empty otherwise).
    pub fn loads_i32_slots(&self) -> &[AtomicI32] {
        &self.loads_i32
    }

    /// The job's canonical compact continuous load bits (`mem=compact`,
    /// continuous mode; empty otherwise).
    pub fn loads_f32_slots(&self) -> &[AtomicU32] {
        &self.loads_f32
    }

    /// Copies the job's compact integer loads back into `out`.
    pub fn read_loads_i32(&self, out: &mut [i32]) {
        for (o, a) in out.iter_mut().zip(&self.loads_i32) {
            *o = a.load(Ordering::Relaxed);
        }
    }

    /// Copies the job's compact continuous loads back into `out`.
    pub fn read_loads_f32(&self, out: &mut [f32]) {
        for (o, a) in out.iter_mut().zip(&self.loads_f32) {
            *o = f32::from_bits(a.load(Ordering::Relaxed));
        }
    }

    /// Copies the job's compact flow memory back into `out`.
    pub fn read_prev32(&self, out: &mut [f32]) {
        for (o, a) in out.iter_mut().zip(&self.prev32) {
            *o = f32::from_bits(a.load(Ordering::Relaxed));
        }
    }

    /// Overwrites the job's compact integer loads from `src` (checkpoint
    /// restore; control thread only, workers parked between rounds).
    pub fn write_loads_i32(&self, src: &[i32]) {
        for (a, &x) in self.loads_i32.iter().zip(src) {
            a.store(x, Ordering::Relaxed);
        }
    }

    /// Overwrites the job's compact continuous loads from `src`
    /// (checkpoint restore; control thread only, workers parked between
    /// rounds).
    pub fn write_loads_f32(&self, src: &[f32]) {
        for (a, &x) in self.loads_f32.iter().zip(src) {
            a.store(x.to_bits(), Ordering::Relaxed);
        }
    }

    /// Overwrites the job's compact flow memory from `src` (checkpoint
    /// restore; control thread only, workers parked between rounds).
    pub fn write_prev32(&self, src: &[f32]) {
        for (a, &x) in self.prev32.iter().zip(src) {
            a.store(x.to_bits(), Ordering::Relaxed);
        }
    }

    /// Bytes of per-node and per-edge simulation state this job holds
    /// (loads, flow memory, integral flows, arc fractions). Masks and
    /// per-block partials are metadata and excluded; the compact layout
    /// halves every category counted here.
    pub fn state_bytes(&self) -> usize {
        8 * (self.loads_i.len() + self.loads_f.len() + self.prev.len())
            + 8 * (self.arc_frac.len() + self.flows.len())
            + 4 * (self.loads_i32.len() + self.loads_f32.len() + self.prev32.len())
            + 4 * (self.arc_frac32.len() + self.flows32.len())
    }
}

/// State shared between the pool's owner and the workers.
struct PoolInner {
    /// Round rendezvous; participants = worker count + 1 (the driver or
    /// simulator thread).
    barrier: Barrier,
    stop: AtomicBool,
    /// The currently attached job; swapped when a different simulation
    /// takes over the pool.
    job: Mutex<Option<Arc<RoundJob>>>,
    /// Serializes whole rounds: the barrier protocol admits exactly one
    /// external participant, and the pool is `Sync` behind an `Arc`, so
    /// two simulators sharing a pool must take turns round by round.
    round_lock: Mutex<()>,
}

/// A persistent pool of `threads − 1` workers plus the calling thread.
///
/// The pool itself is simulation-agnostic: per-simulation state lives in a
/// [`RoundJob`] attached at `run_round` time, so a batch driver can push
/// many simulations through one spawn/join lifecycle.
pub(crate) struct WorkerPool {
    inner: Arc<PoolInner>,
    threads: usize,
    handles: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns the workers (parked until the first `run_round`).
    pub fn new(threads: usize) -> Self {
        assert!(threads > 1, "a pool needs at least two participants");
        let inner = Arc::new(PoolInner {
            barrier: Barrier::new(threads),
            stop: AtomicBool::new(false),
            job: Mutex::new(None),
            round_lock: Mutex::new(()),
        });
        let handles = (1..threads)
            .map(|t| {
                let sh = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("sodiff-worker-{t}"))
                    .spawn(move || {
                        let mut scratch = FwScratch::new();
                        loop {
                            sh.barrier.wait();
                            if sh.stop.load(Ordering::Acquire) {
                                break;
                            }
                            let job = sh
                                .job
                                .lock()
                                .expect("pool job lock poisoned")
                                .clone()
                                .expect("round released without a job");
                            job.run_chunk(&sh.barrier, t, &mut scratch);
                            sh.barrier.wait();
                        }
                    })
                    .expect("spawn pool worker")
            })
            .collect();
        Self {
            inner,
            threads,
            handles,
        }
    }

    /// Number of participants (workers + the calling thread). Jobs must be
    /// created with this chunk count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Executes one full round of `job` on the pool and returns the
    /// round's fused load statistics: the min/max fields merged from the
    /// per-participant chunk reductions in chunk order (exact — order
    /// free), the squared-deviation sum folded from the shared
    /// per-[`DEV_BLOCK`] partials in block order — bit-identical to the
    /// sequential executor's fold. The calling thread participates as
    /// chunk 0; `scratch` is its framework-rounding scratch.
    ///
    /// Concurrent callers (two simulations sharing one pool) are
    /// serialized round by round: the barrier protocol admits exactly one
    /// external participant at a time.
    pub fn run_round(
        &self,
        job: &Arc<RoundJob>,
        mem: f64,
        gain: f64,
        round: u64,
        scratch: &mut FwScratch,
    ) -> LoadStats {
        let _round = self
            .inner
            .round_lock
            .lock()
            .expect("pool round lock poisoned");
        job.mem_bits.store(mem.to_bits(), Ordering::Relaxed);
        job.gain_bits.store(gain.to_bits(), Ordering::Relaxed);
        job.round.store(round, Ordering::Relaxed);
        {
            let mut slot = self.inner.job.lock().expect("pool job lock poisoned");
            let current = slot.as_ref().is_some_and(|j| Arc::ptr_eq(j, job));
            if !current {
                *slot = Some(Arc::clone(job));
            }
        }
        self.inner.barrier.wait();
        job.run_chunk(&self.inner.barrier, 0, scratch);
        self.inner.barrier.wait();
        let mut stats = job
            .stats
            .iter()
            .map(StatSlots::load)
            .fold(LoadStats::identity(), LoadStats::merge);
        stats.sum_sq_dev = kernel::fold_block_sums(
            job.block_sums.len(),
            &crate::kernel::AtomicsF64(&job.block_sums),
        );
        stats
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.inner.stop.store(true, Ordering::Release);
        // Workers are parked on the start barrier; release them into the
        // stop check.
        self.inner.barrier.wait();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// Balanced chunk boundaries: `parts + 1` cut points over `len` items.
pub(crate) fn chunk_bounds(len: usize, parts: usize) -> Vec<usize> {
    let parts = parts.max(1);
    (0..=parts).map(|t| t * len / parts).collect()
}

/// Node chunk boundaries aligned down to [`DEV_BLOCK`] multiples (the
/// final boundary stays `len`), so every potential block has exactly one
/// writing participant. Alignment never changes simulation results —
/// the apply and rounding phases are per-node independent — only which
/// participant computes which node.
pub(crate) fn block_chunk_bounds(len: usize, parts: usize) -> Vec<usize> {
    let parts = parts.max(1);
    (0..=parts)
        .map(|t| {
            if t == parts {
                len
            } else {
                (t * len / parts) / DEV_BLOCK * DEV_BLOCK
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_bounds_partition() {
        for (len, parts) in [(10usize, 3usize), (7, 7), (5, 8), (0, 4), (100, 1)] {
            let b = chunk_bounds(len, parts);
            assert_eq!(b[0], 0);
            assert_eq!(*b.last().unwrap(), len);
            assert!(b.windows(2).all(|w| w[0] <= w[1]));
        }
    }

    use crate::engine::Mode;
    use crate::rounding::Rounding;
    use crate::scheme::Scheme;

    /// A kernel for the given mode on `graph` with uniform speeds.
    fn fos_kernel(graph: &sodiff_graph::Graph, mode: Mode) -> Arc<SchemeKernel> {
        let speeds = sodiff_graph::Speeds::uniform(graph.node_count());
        Arc::new(
            SchemeKernel::new(
                Scheme::fos(),
                mode,
                graph,
                &speeds,
                crate::fault::FaultSpec::none(),
                crate::load::LoadSpec::none(),
                crate::churn::ChurnSpec::none(),
            )
            .unwrap(),
        )
    }

    #[test]
    fn pool_starts_and_shuts_down_cleanly() {
        use sodiff_graph::{generators, Speeds};
        let g = generators::torus2d(4, 4);
        let tables = Arc::new(KernelTables::new(&g, &Speeds::uniform(16), false, 160.0));
        let loads = vec![10i64; 16];
        let pool = WorkerPool::new(3);
        let job = Arc::new(RoundJob::new(
            pool.threads(),
            tables,
            fos_kernel(&g, Mode::Discrete(Rounding::nearest())),
            FlowMemory::Rounded,
            JobLoads::I64(&loads),
        ));
        // Balanced start: every scheduled flow is 0, loads stay put.
        let mut scratch = FwScratch::new();
        let stats = pool.run_round(&job, 0.0, 1.0, 0, &mut scratch);
        assert_eq!(stats.min_transient, 10.0);
        assert_eq!(stats.min_load, 10.0);
        // total 160 over 16 uniform nodes: already balanced, zero devs.
        assert_eq!(stats.max_dev, 0.0);
        assert_eq!(stats.min_dev, 0.0);
        assert_eq!(stats.sum_sq_dev, 0.0);
        let mut out = vec![0i64; 16];
        job.read_loads_i(&mut out);
        assert_eq!(out, loads);
        drop(pool); // must not hang
    }

    #[test]
    fn pool_is_reusable_across_jobs() {
        use sodiff_graph::{generators, Speeds};
        let pool = WorkerPool::new(4);
        let mut scratch = FwScratch::new();
        // Two different graphs and modes, one pool, interleaved rounds.
        let g1 = generators::torus2d(3, 5);
        let t1 = Arc::new(KernelTables::new(&g1, &Speeds::uniform(15), false, 105.0));
        let job1 = Arc::new(RoundJob::new(
            pool.threads(),
            t1,
            fos_kernel(&g1, Mode::Discrete(Rounding::nearest())),
            FlowMemory::Rounded,
            JobLoads::I64(&[7i64; 15]),
        ));
        let g2 = generators::cycle(9);
        let t2 = Arc::new(KernelTables::new(&g2, &Speeds::uniform(9), false, 27.0));
        let job2 = Arc::new(RoundJob::new(
            pool.threads(),
            t2,
            fos_kernel(&g2, Mode::Continuous),
            FlowMemory::Rounded,
            JobLoads::F64(&[3.0f64; 9]),
        ));
        for round in 0..4 {
            let s1 = pool.run_round(&job1, 0.0, 1.0, round, &mut scratch);
            assert_eq!(s1.min_transient, 7.0);
            let s2 = pool.run_round(&job2, 0.0, 1.0, round, &mut scratch);
            assert_eq!(s2.min_transient, 3.0);
        }
        let mut out = vec![0i64; 15];
        job1.read_loads_i(&mut out);
        assert_eq!(out, vec![7i64; 15]);
    }
}
