//! Persistent worker pool for the round executor.
//!
//! Threads are spawned **once** in `Simulator::new` and park on a shared
//! [`Barrier`] between rounds; each round the main thread publishes the
//! round parameters, releases the start barrier, works its own chunk as
//! participant 0, and meets the workers again at the end barrier. Compared
//! to the previous per-round `thread::scope` executor this removes
//! `threads × phases` thread spawns/joins per round, which is what made
//! multi-threading a net loss below ~10⁵ edges.
//!
//! Shared round state (loads, flow memory, scheduled flows, arc counters)
//! lives in relaxed atomics inside an `Arc`; phases are separated by the
//! barrier, which provides the necessary happens-before edges, so the pool
//! needs no `unsafe` and stays within the crate's `#![forbid(unsafe_code)]`.
//! All arithmetic runs through the same kernels as the sequential
//! executor ([`crate::kernel`]), in the same per-element order, so pooled
//! results are **bit-identical** to sequential ones for every scheme ×
//! rounding × mode combination regardless of thread count.

use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::thread::JoinHandle;

use crate::engine::FlowMemory;
use crate::kernel::{self, AtomicsF64, AtomicsI64, KernelTables};
use crate::rounding::Rounding;

/// Which phase sequence a round runs; fixed at construction.
#[derive(Clone, Copy)]
pub(crate) enum PoolMode {
    /// Discrete mode with an edge-local rounding scheme: one fused edge
    /// phase, one apply phase.
    DiscreteEdgeLocal(Rounding),
    /// Discrete mode with the node-centric randomized framework: scheduled
    /// phase, arc-rounding phase, combine phase, apply phase.
    DiscreteFramework {
        /// RNG seed of the framework.
        seed: u64,
    },
    /// Continuous mode: one fused edge phase, one apply phase.
    Continuous,
}

/// State shared between the simulator thread and the workers.
struct Shared {
    tables: Arc<KernelTables>,
    mode: PoolMode,
    flow_memory: FlowMemory,
    /// Chunk boundaries over edges / nodes, one chunk per participant.
    edge_bounds: Vec<usize>,
    node_bounds: Vec<usize>,
    /// Round rendezvous; participants = worker count + 1 (the simulator).
    barrier: Barrier,
    stop: AtomicBool,
    /// Per-round parameters, published before the start barrier.
    mem_bits: AtomicU64,
    gain_bits: AtomicU64,
    round: AtomicU64,
    /// Canonical state while the pool is active (bit-exact mirrors are
    /// copied back into the simulator's vectors after each round).
    loads_i: Vec<AtomicI64>,
    loads_f: Vec<AtomicU64>,
    prev: Vec<AtomicU64>,
    sched: Vec<AtomicU64>,
    flows: Vec<AtomicI64>,
    arc_out: Vec<AtomicI64>,
    /// Per-participant minimum transient load of the last round (bits).
    mins: Vec<AtomicU64>,
}

/// Runs participant `t`'s share of one round. Called by workers and — for
/// participant 0 — by the simulator thread itself.
fn round_chunk(sh: &Shared, t: usize, excess: &mut Vec<(usize, f64)>) {
    let tables = &*sh.tables;
    let mem = f64::from_bits(sh.mem_bits.load(Ordering::Relaxed));
    let gain = f64::from_bits(sh.gain_bits.load(Ordering::Relaxed));
    let round = sh.round.load(Ordering::Relaxed);
    let edges = sh.edge_bounds[t]..sh.edge_bounds[t + 1];
    let nodes = sh.node_bounds[t]..sh.node_bounds[t + 1];
    let prev = AtomicsF64(&sh.prev);
    let flows = AtomicsI64(&sh.flows);
    match sh.mode {
        PoolMode::DiscreteEdgeLocal(rounding) => {
            kernel::edge_pass_fused(
                tables,
                edges,
                mem,
                gain,
                round,
                rounding,
                sh.flow_memory,
                |i| sh.loads_i[i].load(Ordering::Relaxed) as f64,
                &prev,
                &flows,
            );
            sh.barrier.wait();
            let mt = kernel::apply_discrete(
                tables,
                nodes,
                |e| sh.flows[e].load(Ordering::Relaxed),
                &AtomicsI64(&sh.loads_i),
            );
            sh.mins[t].store(mt.to_bits(), Ordering::Relaxed);
        }
        PoolMode::DiscreteFramework { seed } => {
            kernel::edge_pass_scheduled(
                tables,
                edges.clone(),
                mem,
                gain,
                |i| sh.loads_i[i].load(Ordering::Relaxed) as f64,
                |e| f64::from_bits(sh.prev[e].load(Ordering::Relaxed)),
                &AtomicsF64(&sh.sched),
            );
            sh.barrier.wait();
            kernel::arc_round(
                tables,
                nodes.clone(),
                seed,
                round,
                |e| f64::from_bits(sh.sched[e].load(Ordering::Relaxed)),
                &AtomicsI64(&sh.arc_out),
                excess,
            );
            sh.barrier.wait();
            kernel::edge_combine(
                tables,
                edges,
                sh.flow_memory,
                |p| sh.arc_out[p].load(Ordering::Relaxed),
                |e| f64::from_bits(sh.sched[e].load(Ordering::Relaxed)),
                &flows,
                &prev,
            );
            sh.barrier.wait();
            let mt = kernel::apply_discrete(
                tables,
                nodes,
                |e| sh.flows[e].load(Ordering::Relaxed),
                &AtomicsI64(&sh.loads_i),
            );
            sh.mins[t].store(mt.to_bits(), Ordering::Relaxed);
        }
        PoolMode::Continuous => {
            kernel::edge_pass_continuous(
                tables,
                edges,
                mem,
                gain,
                |i| f64::from_bits(sh.loads_f[i].load(Ordering::Relaxed)),
                &prev,
            );
            sh.barrier.wait();
            let mt = kernel::apply_continuous(
                tables,
                nodes,
                |e| f64::from_bits(sh.prev[e].load(Ordering::Relaxed)),
                &AtomicsF64(&sh.loads_f),
            );
            sh.mins[t].store(mt.to_bits(), Ordering::Relaxed);
        }
    }
}

/// A persistent pool of `threads − 1` workers plus the simulator thread.
pub(crate) struct WorkerPool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
    /// Participant-0 scratch for the framework's excess-token pass.
    excess: Vec<(usize, f64)>,
}

impl WorkerPool {
    /// Spawns the workers. Exactly one of `loads_i` / `loads_f` matches the
    /// mode and seeds the pool's canonical state.
    pub fn new(
        threads: usize,
        tables: Arc<KernelTables>,
        mode: PoolMode,
        flow_memory: FlowMemory,
        loads_i: &[i64],
        loads_f: &[f64],
    ) -> Self {
        assert!(threads > 1, "a pool needs at least two participants");
        let n = tables.n;
        let m = tables.m;
        let arcs = tables.arc_edges.len();
        let framework = matches!(mode, PoolMode::DiscreteFramework { .. });
        let shared = Arc::new(Shared {
            tables,
            mode,
            flow_memory,
            edge_bounds: chunk_bounds(m, threads),
            node_bounds: chunk_bounds(n, threads),
            barrier: Barrier::new(threads),
            stop: AtomicBool::new(false),
            mem_bits: AtomicU64::new(0),
            gain_bits: AtomicU64::new(0),
            round: AtomicU64::new(0),
            loads_i: loads_i.iter().map(|&x| AtomicI64::new(x)).collect(),
            loads_f: loads_f
                .iter()
                .map(|&x| AtomicU64::new(x.to_bits()))
                .collect(),
            prev: (0..m).map(|_| AtomicU64::new(0f64.to_bits())).collect(),
            sched: (0..if framework { m } else { 0 })
                .map(|_| AtomicU64::new(0))
                .collect(),
            flows: (0..if loads_i.is_empty() { 0 } else { m })
                .map(|_| AtomicI64::new(0))
                .collect(),
            arc_out: (0..if framework { arcs } else { 0 })
                .map(|_| AtomicI64::new(0))
                .collect(),
            mins: (0..threads).map(|_| AtomicU64::new(0)).collect(),
        });
        let handles = (1..threads)
            .map(|t| {
                let sh = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("sodiff-worker-{t}"))
                    .spawn(move || {
                        let mut excess = Vec::new();
                        loop {
                            sh.barrier.wait();
                            if sh.stop.load(Ordering::Acquire) {
                                break;
                            }
                            round_chunk(&sh, t, &mut excess);
                            sh.barrier.wait();
                        }
                    })
                    .expect("spawn pool worker")
            })
            .collect();
        Self {
            shared,
            handles,
            excess: Vec::new(),
        }
    }

    /// Executes one full round on the pool and returns the round's minimum
    /// transient load.
    pub fn run_round(&mut self, mem: f64, gain: f64, round: u64) -> f64 {
        let sh = &*self.shared;
        sh.mem_bits.store(mem.to_bits(), Ordering::Relaxed);
        sh.gain_bits.store(gain.to_bits(), Ordering::Relaxed);
        sh.round.store(round, Ordering::Relaxed);
        sh.barrier.wait();
        round_chunk(sh, 0, &mut self.excess);
        sh.barrier.wait();
        sh.mins
            .iter()
            .map(|b| f64::from_bits(b.load(Ordering::Relaxed)))
            .fold(f64::INFINITY, f64::min)
    }

    /// Copies the pool's integer loads back into `out`.
    pub fn read_loads_i(&self, out: &mut [i64]) {
        for (o, a) in out.iter_mut().zip(&self.shared.loads_i) {
            *o = a.load(Ordering::Relaxed);
        }
    }

    /// Copies the pool's continuous loads back into `out`.
    pub fn read_loads_f(&self, out: &mut [f64]) {
        for (o, a) in out.iter_mut().zip(&self.shared.loads_f) {
            *o = f64::from_bits(a.load(Ordering::Relaxed));
        }
    }

    /// Copies the pool's flow memory back into `out`.
    pub fn read_prev(&self, out: &mut [f64]) {
        for (o, a) in out.iter_mut().zip(&self.shared.prev) {
            *o = f64::from_bits(a.load(Ordering::Relaxed));
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shared.stop.store(true, Ordering::Release);
        // Workers are parked on the start barrier; release them into the
        // stop check.
        self.shared.barrier.wait();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// Balanced chunk boundaries: `parts + 1` cut points over `len` items.
pub(crate) fn chunk_bounds(len: usize, parts: usize) -> Vec<usize> {
    let parts = parts.max(1);
    (0..=parts).map(|t| t * len / parts).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_bounds_partition() {
        for (len, parts) in [(10usize, 3usize), (7, 7), (5, 8), (0, 4), (100, 1)] {
            let b = chunk_bounds(len, parts);
            assert_eq!(b[0], 0);
            assert_eq!(*b.last().unwrap(), len);
            assert!(b.windows(2).all(|w| w[0] <= w[1]));
        }
    }

    #[test]
    fn pool_starts_and_shuts_down_cleanly() {
        use sodiff_graph::{generators, Speeds};
        let g = generators::torus2d(4, 4);
        let tables = Arc::new(KernelTables::new(&g, &Speeds::uniform(16), false));
        let loads = vec![10i64; 16];
        let mut pool = WorkerPool::new(
            3,
            tables,
            PoolMode::DiscreteEdgeLocal(Rounding::nearest()),
            FlowMemory::Rounded,
            &loads,
            &[],
        );
        // Balanced start: every scheduled flow is 0, loads stay put.
        let mt = pool.run_round(0.0, 1.0, 0);
        assert_eq!(mt, 10.0);
        let mut out = vec![0i64; 16];
        pool.read_loads_i(&mut out);
        assert_eq!(out, loads);
        drop(pool); // must not hang
    }
}
