//! A tiny deterministic RNG for per-(node, round) random streams.
//!
//! The randomized rounding framework draws a handful of random numbers per
//! node per round. Seeding a cryptographic RNG (`StdRng`) that often would
//! dominate the simulation cost, so we use SplitMix64 — a statistically
//! solid 64-bit mixer — keyed by `(seed, node, round)`. This also makes
//! results independent of iteration order: a parallel executor touching
//! nodes in any order produces bit-identical flows.
//!
//! The hot path does not construct a [`SplitMix64`] per node: the
//! per-round part of the key is hoisted by [`round_key`], and
//! [`fill_node_states`] computes the warmed-up stream states for a whole
//! node range in one flat, auto-vectorizable sweep (one `mix64` per node
//! instead of the two finalizer rounds plus discarded warm-up draw the
//! keyed constructor pays). The sweep is bit-identical to
//! [`SplitMix64::for_node_round`]: resuming a state it produced with
//! [`SplitMix64::new`] yields exactly the canonical `(seed, node, round)`
//! stream, which `tests/golden_rng.rs` proves draw by draw.
//!
//! # No serial RNG state — the checkpointing invariant
//!
//! Every random draw in the simulator is a **pure function of its
//! coordinates**: `(seed, salt, round, counter)` for the fault and load
//! channels ([`salted_stream_key`] + [`nth_u64`]), `(seed, node, round)`
//! for the rounding streams. Nothing ever advances a generator that
//! outlives a round; the only "state" is the key arithmetic above,
//! recomputed from the coordinates on demand. Two consequences:
//!
//! * iteration order is irrelevant — parallel executors reproduce
//!   sequential runs bit for bit, and
//! * a run can be **resumed from any `(round, counter)` offset** with
//!   zero saved RNG bytes: replaying from the offset produces exactly
//!   the tail of the from-zero stream. This is what lets
//!   [`crate::checkpoint`] snapshots omit RNG state entirely — the
//!   `ScenarioSpec`'s seed is sufficient — proven by the
//!   `resume_from_arbitrary_offset_matches_from_zero` test below.

/// The SplitMix64 state increment (golden-ratio constant).
const GAMMA: u64 = 0x9e37_79b9_7f4a_7c15;

/// SplitMix64 stream generator.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a raw state.
    pub fn new(state: u64) -> Self {
        Self { state }
    }

    /// Creates the canonical stream for `(seed, node, round)`.
    pub fn for_node_round(seed: u64, node: u32, round: u64) -> Self {
        // Mix the coordinates through two rounds of the finalizer so that
        // neighboring (node, round) pairs decorrelate.
        let mut s = Self::new(seed ^ mix64((node as u64).wrapping_add(GAMMA)) ^ round_salt(round));
        s.next_u64(); // discard the first output to scramble low entropy
        s
    }

    /// Next 64 uniformly distributed bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GAMMA);
        mix64(self.state)
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        unit_f64(self.next_u64())
    }
}

#[inline]
fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The round-dependent key contribution of
/// [`SplitMix64::for_node_round`], shared by every node of a round.
#[inline]
fn round_salt(round: u64) -> u64 {
    mix64(round.wrapping_mul(0xbf58_476d_1ce4_e5b9))
}

/// Hoists the per-round half of the `(seed, node, round)` key: the value
/// every node of `round` XORs its own node mix into.
#[inline]
pub fn round_key(seed: u64, round: u64) -> u64 {
    seed ^ round_salt(round)
}

/// Round key of an independent sub-stream: the `(seed ^ salt, index)`
/// composition the fault channels and load generators share. Each
/// subsystem reserves one `salt` constant per randomness kind (crash
/// schedule, edge drops, Poisson arrivals, …) so several channels keyed
/// from one user-visible seed draw decorrelated streams — changing the
/// salt re-keys every round of that channel without touching the others.
#[inline]
pub fn salted_stream_key(seed: u64, salt: u64, index: u64) -> u64 {
    round_key(seed ^ salt, index)
}

/// The `k`-th (0-indexed) output of the SplitMix64 stream at `state`,
/// computed directly from the counter: identical to calling
/// [`SplitMix64::next_u64`] `k + 1` times, but with no serial dependency
/// between draws — consecutive `k` are independent `mix64` chains the CPU
/// can overlap.
#[inline]
pub fn nth_u64(state: u64, k: u64) -> u64 {
    mix64(state.wrapping_add(GAMMA.wrapping_mul(k.wrapping_add(1))))
}

/// Maps a random word to a uniform `f64` in `[0, 1)`, exactly as
/// [`SplitMix64::next_f64`] does (53 mantissa bits).
#[inline]
pub fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// The warmed-up SplitMix64 state of stream id `id` under `round_key`:
/// the per-element computation of the bulk sweeps below. The warm-up
/// discard of [`SplitMix64::for_node_round`] is fused into the key mix —
/// advancing the initial state by one `GAMMA` *is* discarding the first
/// output — so the per-id cost is a single `mix64`.
#[inline(always)]
fn warmed_state(round_key: u64, id: u64) -> u64 {
    (round_key ^ mix64(id.wrapping_add(GAMMA))).wrapping_add(GAMMA)
}

/// Lane width of the bulk sweeps: wide enough to keep eight independent
/// `mix64` chains in flight (the chain is ~5 cycles of serial latency but
/// one µop per step, so ILP — not SIMD — is where the win is; baseline
/// x86-64 has no 64-bit vector multiply anyway).
const SWEEP_LANES: usize = 8;

/// Bulk draw sweep: fills `out[i]` with the **warmed-up** SplitMix64 state
/// of node `first_node + i` for the round baked into `round_key` (from
/// [`round_key`]).
///
/// The per-node cost is a single `mix64` (see `warmed_state` above) in a
/// flat pass over consecutive node ids, restructured into fixed
/// `SWEEP_LANES`-wide chunks (scalar tail) so the eight chains retire
/// in parallel. Measured on the single-core build container (65536-node
/// sweep, `framework_phases/bulk_rng_sweep`): 120 → 111 µs mean per
/// sweep (~8%) over the plain `iter_mut().enumerate()` loop. Resuming
/// `out[i]` with [`SplitMix64::new`] produces exactly the stream
/// `for_node_round(seed, first_node + i, round)` would.
pub fn fill_node_states(round_key: u64, first_node: usize, out: &mut [u64]) {
    let mut id = first_node as u64;
    let mut chunks = out.chunks_exact_mut(SWEEP_LANES);
    for chunk in &mut chunks {
        for (lane, slot) in chunk.iter_mut().enumerate() {
            *slot = warmed_state(round_key, id.wrapping_add(lane as u64));
        }
        id = id.wrapping_add(SWEEP_LANES as u64);
    }
    for slot in chunks.into_remainder() {
        *slot = warmed_state(round_key, id);
        id = id.wrapping_add(1);
    }
}

/// Bulk sweep of each stream's **first draw**: fills `out[i]` with
/// `nth_u64(state, 0)` of the warmed-up state of id `first_id + i` —
/// exactly what resuming the stream and drawing once would produce — in
/// the same fixed-lane chunked shape as [`fill_node_states`] (two fused
/// `mix64`s per id, no intermediate state array).
///
/// This is the key sweep of the random-matching generator
/// ([`crate::matchgen`]): one uniform 64-bit key per edge per round.
pub fn fill_first_draws(round_key: u64, first_id: usize, out: &mut [u64]) {
    #[inline(always)]
    fn first_draw(round_key: u64, id: u64) -> u64 {
        mix64(warmed_state(round_key, id).wrapping_add(GAMMA))
    }
    let mut id = first_id as u64;
    let mut chunks = out.chunks_exact_mut(SWEEP_LANES);
    for chunk in &mut chunks {
        for (lane, slot) in chunk.iter_mut().enumerate() {
            *slot = first_draw(round_key, id.wrapping_add(lane as u64));
        }
        id = id.wrapping_add(SWEEP_LANES as u64);
    }
    for slot in chunks.into_remainder() {
        *slot = first_draw(round_key, id);
        id = id.wrapping_add(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_key() {
        let mut a = SplitMix64::for_node_round(1, 2, 3);
        let mut b = SplitMix64::for_node_round(1, 2, 3);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn distinct_keys_decorrelate() {
        let x = SplitMix64::for_node_round(1, 2, 3).next_u64();
        assert_ne!(x, SplitMix64::for_node_round(1, 2, 4).next_u64());
        assert_ne!(x, SplitMix64::for_node_round(1, 3, 3).next_u64());
        assert_ne!(x, SplitMix64::for_node_round(2, 2, 3).next_u64());
    }

    #[test]
    fn bulk_sweep_matches_keyed_constructor() {
        // The flat sweep must reproduce the canonical per-node streams
        // bit for bit, warm-up discard included.
        for seed in [0u64, 1, 42, u64::MAX] {
            for round in [0u64, 1, 77, 1 << 40] {
                let rk = round_key(seed, round);
                let mut states = vec![0u64; 33];
                fill_node_states(rk, 5, &mut states);
                for (i, &state) in states.iter().enumerate() {
                    let mut bulk = SplitMix64::new(state);
                    let mut keyed = SplitMix64::for_node_round(seed, (5 + i) as u32, round);
                    for draw in 0..8 {
                        assert_eq!(
                            bulk.next_u64(),
                            keyed.next_u64(),
                            "seed {seed} round {round} node {} draw {draw}",
                            5 + i
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn first_draw_sweep_matches_states_plus_counter() {
        // The fused two-mix sweep must equal "fill states, then take each
        // stream's draw 0", for lengths that exercise the chunked lanes
        // and the scalar tail alike.
        for len in [0usize, 1, 7, 8, 9, 33] {
            let rk = round_key(99, 1234);
            let mut states = vec![0u64; len];
            fill_node_states(rk, 3, &mut states);
            let mut draws = vec![0u64; len];
            fill_first_draws(rk, 3, &mut draws);
            for (i, (&state, &draw)) in states.iter().zip(&draws).enumerate() {
                assert_eq!(draw, nth_u64(state, 0), "id {}", 3 + i);
            }
        }
    }

    #[test]
    fn bulk_sweep_tail_matches_chunked_lanes() {
        // A sweep whose length is not a lane multiple must agree with a
        // longer sweep on the shared prefix (tail code path == lane path).
        let rk = round_key(5, 6);
        let mut short = vec![0u64; 13];
        let mut long = vec![0u64; 32];
        fill_node_states(rk, 0, &mut short);
        fill_node_states(rk, 0, &mut long);
        assert_eq!(short[..], long[..13]);
    }

    #[test]
    fn salted_streams_are_independent() {
        // Two channels salted differently under the SAME user seed must
        // draw decorrelated streams at every index, and each must still
        // be a deterministic function of (seed, salt, index).
        const SALT_A: u64 = 0x6372_6173_685f_9d1c;
        const SALT_B: u64 = 0x706f_6973_736f_6e5f;
        for seed in [0u64, 7, u64::MAX] {
            for index in [0u64, 1, 63, 1 << 33] {
                let a = salted_stream_key(seed, SALT_A, index);
                let b = salted_stream_key(seed, SALT_B, index);
                assert_ne!(a, b, "salts collided at seed {seed} index {index}");
                assert_eq!(a, salted_stream_key(seed, SALT_A, index));
                // First draws of the two streams differ too — salting
                // decorrelates the outputs, not just the keys.
                assert_ne!(nth_u64(a, 0), nth_u64(b, 0));
                // And the composition is exactly round_key of the salted
                // seed, so existing per-channel golden data stays valid.
                assert_eq!(a, round_key(seed ^ SALT_A, index));
            }
        }
    }

    #[test]
    fn nth_matches_serial_stream() {
        // nth_u64 is the counter-indexed form of the serial generator:
        // the k-th output of SplitMix64::new(S) for any S and k.
        for state in [0u64, 42, 0xdead_beef, u64::MAX] {
            let mut serial = SplitMix64::new(state);
            for k in 0..64u64 {
                assert_eq!(serial.next_u64(), nth_u64(state, k), "state {state} k {k}");
            }
        }
    }

    #[test]
    fn resume_from_arbitrary_offset_matches_from_zero() {
        // The checkpoint/resume invariant: replaying any stream from an
        // arbitrary (round, counter) offset yields exactly the tail of
        // the from-zero stream — no serial RNG state exists to save.
        const SALT: u64 = 0x6372_6173_685f_9d1c;
        for seed in [3u64, 99, u64::MAX] {
            for round in [0u64, 17, 1 << 35] {
                let key = salted_stream_key(seed, SALT, round);
                // From-zero reference: draws 0..48 of the round's stream.
                let reference: Vec<u64> = (0..48).map(|k| nth_u64(key, k)).collect();
                // "Resume" at arbitrary counter offsets — recomputing the
                // key from coordinates alone — and check every tail.
                for offset in [0u64, 1, 7, 31, 47] {
                    let resumed_key = salted_stream_key(seed, SALT, round);
                    let tail: Vec<u64> = (offset..48).map(|k| nth_u64(resumed_key, k)).collect();
                    assert_eq!(
                        tail[..],
                        reference[offset as usize..],
                        "seed {seed} round {round} offset {offset}"
                    );
                }
                // Split-replay composition: j draws, then k more, equals
                // draw j + k of the uninterrupted stream.
                for (j, k) in [(0u64, 5u64), (3, 4), (10, 37)] {
                    assert_eq!(nth_u64(key, j + k), reference[(j + k) as usize]);
                }
            }
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SplitMix64::new(42);
        for _ in 0..1000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn f64_mean_is_plausible() {
        let mut r = SplitMix64::new(7);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| r.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
