//! A tiny deterministic RNG for per-(node, round) random streams.
//!
//! The randomized rounding framework draws a handful of random numbers per
//! node per round. Seeding a cryptographic RNG (`StdRng`) that often would
//! dominate the simulation cost, so we use SplitMix64 — a statistically
//! solid 64-bit mixer — keyed by `(seed, node, round)`. This also makes
//! results independent of iteration order: a parallel executor touching
//! nodes in any order produces bit-identical flows.
//!
//! The hot path does not construct a [`SplitMix64`] per node: the
//! per-round part of the key is hoisted by [`round_key`], and
//! [`fill_node_states`] computes the warmed-up stream states for a whole
//! node range in one flat, auto-vectorizable sweep (one `mix64` per node
//! instead of the two finalizer rounds plus discarded warm-up draw the
//! keyed constructor pays). The sweep is bit-identical to
//! [`SplitMix64::for_node_round`]: resuming a state it produced with
//! [`SplitMix64::new`] yields exactly the canonical `(seed, node, round)`
//! stream, which `tests/golden_rng.rs` proves draw by draw.

/// The SplitMix64 state increment (golden-ratio constant).
const GAMMA: u64 = 0x9e37_79b9_7f4a_7c15;

/// SplitMix64 stream generator.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a raw state.
    pub fn new(state: u64) -> Self {
        Self { state }
    }

    /// Creates the canonical stream for `(seed, node, round)`.
    pub fn for_node_round(seed: u64, node: u32, round: u64) -> Self {
        // Mix the coordinates through two rounds of the finalizer so that
        // neighboring (node, round) pairs decorrelate.
        let mut s = Self::new(seed ^ mix64((node as u64).wrapping_add(GAMMA)) ^ round_salt(round));
        s.next_u64(); // discard the first output to scramble low entropy
        s
    }

    /// Next 64 uniformly distributed bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GAMMA);
        mix64(self.state)
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        unit_f64(self.next_u64())
    }
}

#[inline]
fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The round-dependent key contribution of
/// [`SplitMix64::for_node_round`], shared by every node of a round.
#[inline]
fn round_salt(round: u64) -> u64 {
    mix64(round.wrapping_mul(0xbf58_476d_1ce4_e5b9))
}

/// Hoists the per-round half of the `(seed, node, round)` key: the value
/// every node of `round` XORs its own node mix into.
#[inline]
pub fn round_key(seed: u64, round: u64) -> u64 {
    seed ^ round_salt(round)
}

/// The `k`-th (0-indexed) output of the SplitMix64 stream at `state`,
/// computed directly from the counter: identical to calling
/// [`SplitMix64::next_u64`] `k + 1` times, but with no serial dependency
/// between draws — consecutive `k` are independent `mix64` chains the CPU
/// can overlap.
#[inline]
pub fn nth_u64(state: u64, k: u64) -> u64 {
    mix64(state.wrapping_add(GAMMA.wrapping_mul(k.wrapping_add(1))))
}

/// Maps a random word to a uniform `f64` in `[0, 1)`, exactly as
/// [`SplitMix64::next_f64`] does (53 mantissa bits).
#[inline]
pub fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Bulk draw sweep: fills `out[i]` with the **warmed-up** SplitMix64 state
/// of node `first_node + i` for the round baked into `round_key` (from
/// [`round_key`]).
///
/// The warm-up discard of [`SplitMix64::for_node_round`] is fused into the
/// key mix — advancing the initial state by one `GAMMA` *is* discarding
/// the first output — so the per-node cost collapses to a single `mix64`
/// in a flat pass over consecutive node ids that the compiler can
/// vectorize. Resuming `out[i]` with [`SplitMix64::new`] produces exactly
/// the stream `for_node_round(seed, first_node + i, round)` would.
pub fn fill_node_states(round_key: u64, first_node: usize, out: &mut [u64]) {
    for (i, slot) in out.iter_mut().enumerate() {
        let node = (first_node + i) as u64;
        *slot = (round_key ^ mix64(node.wrapping_add(GAMMA))).wrapping_add(GAMMA);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_key() {
        let mut a = SplitMix64::for_node_round(1, 2, 3);
        let mut b = SplitMix64::for_node_round(1, 2, 3);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn distinct_keys_decorrelate() {
        let x = SplitMix64::for_node_round(1, 2, 3).next_u64();
        assert_ne!(x, SplitMix64::for_node_round(1, 2, 4).next_u64());
        assert_ne!(x, SplitMix64::for_node_round(1, 3, 3).next_u64());
        assert_ne!(x, SplitMix64::for_node_round(2, 2, 3).next_u64());
    }

    #[test]
    fn bulk_sweep_matches_keyed_constructor() {
        // The flat sweep must reproduce the canonical per-node streams
        // bit for bit, warm-up discard included.
        for seed in [0u64, 1, 42, u64::MAX] {
            for round in [0u64, 1, 77, 1 << 40] {
                let rk = round_key(seed, round);
                let mut states = vec![0u64; 33];
                fill_node_states(rk, 5, &mut states);
                for (i, &state) in states.iter().enumerate() {
                    let mut bulk = SplitMix64::new(state);
                    let mut keyed = SplitMix64::for_node_round(seed, (5 + i) as u32, round);
                    for draw in 0..8 {
                        assert_eq!(
                            bulk.next_u64(),
                            keyed.next_u64(),
                            "seed {seed} round {round} node {} draw {draw}",
                            5 + i
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SplitMix64::new(42);
        for _ in 0..1000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn f64_mean_is_plausible() {
        let mut r = SplitMix64::new(7);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| r.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
