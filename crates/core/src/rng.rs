//! A tiny deterministic RNG for per-(node, round) random streams.
//!
//! The randomized rounding framework draws a handful of random numbers per
//! node per round. Seeding a cryptographic RNG (`StdRng`) that often would
//! dominate the simulation cost, so we use SplitMix64 — a statistically
//! solid 64-bit mixer — keyed by `(seed, node, round)`. This also makes
//! results independent of iteration order: a parallel executor touching
//! nodes in any order produces bit-identical flows.

/// SplitMix64 stream generator.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a raw state.
    pub fn new(state: u64) -> Self {
        Self { state }
    }

    /// Creates the canonical stream for `(seed, node, round)`.
    pub fn for_node_round(seed: u64, node: u32, round: u64) -> Self {
        // Mix the coordinates through two rounds of the finalizer so that
        // neighboring (node, round) pairs decorrelate.
        let mut s = Self::new(
            seed ^ mix64((node as u64).wrapping_add(0x9e37_79b9_7f4a_7c15))
                ^ mix64(round.wrapping_mul(0xbf58_476d_1ce4_e5b9)),
        );
        s.next_u64(); // discard the first output to scramble low entropy
        s
    }

    /// Next 64 uniformly distributed bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        mix64(self.state)
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[inline]
fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_key() {
        let mut a = SplitMix64::for_node_round(1, 2, 3);
        let mut b = SplitMix64::for_node_round(1, 2, 3);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn distinct_keys_decorrelate() {
        let x = SplitMix64::for_node_round(1, 2, 3).next_u64();
        assert_ne!(x, SplitMix64::for_node_round(1, 2, 4).next_u64());
        assert_ne!(x, SplitMix64::for_node_round(1, 3, 3).next_u64());
        assert_ne!(x, SplitMix64::for_node_round(2, 2, 3).next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SplitMix64::new(42);
        for _ in 0..1000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn f64_mean_is_plausible() {
        let mut r = SplitMix64::new(7);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| r.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
