//! Exact checkpoint/resume: freeze any simulation mid-run, resume it
//! bit-identically — in the same process, or days later in a different
//! one.
//!
//! # Why resume can be *exact*
//!
//! Every random decision in the engine is drawn from counter-indexed
//! streams ([`crate::rng::nth_u64`] and the salted stream keys): the
//! k-th draw of round `r` is a pure function of `(seed, salt, r, k)`,
//! never of a mutable generator that advanced through rounds `0..r`.
//! There is **no serial RNG state to save** — a simulator rebuilt from
//! its [`ScenarioSpec`] and fast-forwarded to round `r` draws the exact
//! same words the original would have drawn. A snapshot therefore only
//! needs the genuinely evolving state:
//!
//! * the load vector (integer tokens or continuous) and the SOS flow
//!   memory (`prev_flow`),
//! * the round counters (`round`, `rounds_in_scheme`, the run origin)
//!   and the hybrid/switch state (`switch_round`, `degraded`),
//! * the fused per-round statistics (`min_transient`, the last round's
//!   [`crate::kernel::LoadStats`]),
//! * the cumulative [`FaultEvents`]/[`LoadEvents`]/[`ChurnEvents`]
//!   counters (the fault *masks* are re-derived per epoch from the
//!   spec's streams),
//! * the churn axis's active-node overlay words — the one
//!   history-dependent piece of axis state (a Markov chain over
//!   epochs), persisted verbatim so restore installs it without ever
//!   redrawing a transition,
//! * the divergence-watchdog window, the steady-state ring, and the
//!   plateau history — the small metric rings the stop conditions and
//!   the degradation logic read.
//!
//! Everything else — graph, speeds, kernels, coefficient tables, sweep
//! families — is deterministically rebuilt from the [`ScenarioSpec`]
//! embedded in the snapshot header.
//!
//! # File format (version 2)
//!
//! Little-endian throughout: an 8-byte magic (`SODIFFCK`), a `u32`
//! format version, a length-prefixed [`ScenarioSpec`] display line, the
//! encoded snapshot payload, and a trailing FNV-1a checksum over every
//! preceding byte. Version 2 (the churn release) appends the churn
//! event counters and the active-node overlay words after the version-1
//! payload; **version-1 files still load** — their churn fields decode
//! to the "churn never ran" defaults, which is exactly right because a
//! v1 writer predates the axis. Unknown (v3+) or zero versions are
//! rejected as [`CheckpointError::UnsupportedVersion`]. Files are
//! written to a temporary sibling and atomically renamed, so a crash
//! mid-write never leaves a torn "latest" checkpoint. Loading **never
//! panics**: truncation, bit corruption, and version skew surface as
//! typed [`CheckpointError`] variants.
//!
//! # Usage
//!
//! Scenario files opt in with `ckpt=every:N:DIR`; the engine then
//! snapshots to `DIR/<name>.ckpt` every `N` rounds (and to
//! `DIR/<name>-degraded.ckpt` the moment the divergence watchdog trips,
//! preserving the pre-degradation state for post-mortem). Programmatic
//! runs attach the same policy with
//! [`crate::ExperimentBuilder::checkpoint`], or call
//! [`crate::Simulator::snapshot`]/[`crate::Simulator::restore`]
//! directly:
//!
//! ```
//! use sodiff_core::checkpoint::{read_checkpoint, write_checkpoint};
//! use sodiff_core::ScenarioSpec;
//!
//! let spec: ScenarioSpec =
//!     "name=demo topology=torus2d:8:8 scheme=sos:1.8 rounding=nearest \
//!      init=point:0:6400 stop=rounds:40"
//!         .parse()
//!         .unwrap();
//! let graph = spec.build_graph().unwrap();
//! let experiment = spec.experiment_on(&graph).unwrap();
//!
//! // Run half, snapshot, "crash".
//! let mut sim = experiment.simulator();
//! for _ in 0..20 {
//!     sim.step();
//! }
//! let dir = std::env::temp_dir().join(format!("sodiff-doc-{}", std::process::id()));
//! std::fs::create_dir_all(&dir).unwrap();
//! let path = dir.join("demo.ckpt");
//! write_checkpoint(&path, &spec, &sim.snapshot()).unwrap();
//! drop(sim);
//!
//! // Resume in a "new process": finishes the remaining 20 rounds.
//! let report = read_checkpoint(&path).unwrap().resume().unwrap();
//! assert_eq!(report.rounds, 20);
//! # std::fs::remove_dir_all(&dir).ok();
//! ```

use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};
use std::str::FromStr;

use crate::churn::ChurnEvents;
use crate::engine::{RunReport, StopCondition};
use crate::error::{CheckpointError, ParseError};
use crate::fault::FaultEvents;
use crate::load::LoadEvents;
use crate::observer::{NullObserver, Observer};
use crate::scenario::{ScenarioSpec, StopSpec};

/// Magic bytes every checkpoint file starts with.
const MAGIC: &[u8; 8] = b"SODIFFCK";
/// The format version this build writes. Version 2 appended the churn
/// event counters and the active-node overlay; every version from
/// [`MIN_VERSION`] up is still readable.
const VERSION: u32 = 2;
/// The oldest format version this build still reads.
const MIN_VERSION: u32 = 1;

/// When and where to checkpoint: the `ckpt=every:N:DIR` scenario key as
/// data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointPolicy {
    /// Snapshot every `every` rounds (must be positive).
    pub every: u64,
    /// Directory the snapshot files go to (created on first write).
    pub dir: PathBuf,
}

impl fmt::Display for CheckpointPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "every:{}:{}", self.every, self.dir.display())
    }
}

impl FromStr for CheckpointPolicy {
    type Err = ParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let bad = || ParseError::new(format!("invalid ckpt '{s}' (expected every:N:DIR)"));
        let mut it = s.splitn(3, ':');
        match (it.next(), it.next(), it.next()) {
            (Some("every"), Some(n), Some(dir)) if !dir.is_empty() => {
                let every: u64 = n.parse().map_err(|_| bad())?;
                if every == 0 {
                    return Err(ParseError::new(format!(
                        "invalid ckpt '{s}': interval must be positive"
                    )));
                }
                Ok(CheckpointPolicy {
                    every,
                    dir: PathBuf::from(dir),
                })
            }
            _ => Err(bad()),
        }
    }
}

/// A checkpoint policy plus the identity the engine stamps into every
/// file it writes: the scenario name (the file stem) and the canonical
/// scenario line embedded in the header (what [`read_checkpoint`]
/// rebuilds the experiment from).
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointConfig {
    /// Interval and target directory.
    pub policy: CheckpointPolicy,
    /// Scenario name; becomes the checkpoint file stem.
    pub name: String,
    /// The canonical [`ScenarioSpec`] display line embedded in each
    /// snapshot header.
    pub spec_line: String,
}

/// Path separators in a scenario name would escape the checkpoint
/// directory; flatten them into the file stem.
fn file_stem(name: &str) -> String {
    name.replace(['/', '\\'], "_")
}

impl CheckpointConfig {
    /// Where the periodic "latest" snapshot goes (overwritten in place,
    /// atomically).
    pub fn latest_path(&self) -> PathBuf {
        self.policy
            .dir
            .join(format!("{}.ckpt", file_stem(&self.name)))
    }

    /// Where the watchdog-trip snapshot goes: the pre-degradation state,
    /// written once when the divergence watchdog fires.
    pub fn degraded_path(&self) -> PathBuf {
        self.policy
            .dir
            .join(format!("{}-degraded.ckpt", file_stem(&self.name)))
    }
}

/// The divergence-watchdog ring at snapshot time.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct WatchSnapshot {
    pub armed: bool,
    pub ring: Vec<f64>,
    pub len: usize,
    pub pos: usize,
}

/// The steady-state tracker ring at snapshot time.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct SteadySnapshot {
    pub window: usize,
    pub ring: Vec<f64>,
    pub pos: usize,
    pub len: usize,
    pub newer_sum: f64,
    pub older_sum: f64,
    pub check: bool,
}

/// The plateau tracker's history tail at snapshot time.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct PlateauSnapshot {
    pub window: usize,
    pub history: Vec<f64>,
}

/// The load vector in the snapshot's execution mode.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum LoadsSnapshot {
    /// Integer token counts (discrete mode).
    Discrete(Vec<i64>),
    /// Continuous loads.
    Continuous(Vec<f64>),
}

/// The full evolving state of one [`crate::Simulator`] at a round
/// boundary, as captured by [`crate::Simulator::snapshot`] and restored
/// by [`crate::Simulator::restore`].
///
/// Opaque on purpose: the contents mirror engine internals and are only
/// meaningful to a simulator built from the same [`ScenarioSpec`]. Use
/// [`write_checkpoint`]/[`read_checkpoint`] to persist one.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    pub(crate) round: u64,
    pub(crate) rounds_in_scheme: u64,
    /// `round` at the start of the interrupted `run_*` call: the origin
    /// hybrid triggers count from, and what turns the spec's absolute
    /// stop budget into a remaining one.
    pub(crate) run_start: u64,
    pub(crate) switch_round: Option<u64>,
    pub(crate) degraded: bool,
    pub(crate) min_transient: f64,
    /// Total initial load baked into the kernel tables; restore
    /// validates it bit-exactly against the target simulator's.
    pub(crate) initial_total: f64,
    /// The last round's fused statistics, if a round has run.
    pub(crate) round_stats: Option<[f64; 5]>,
    pub(crate) loads: LoadsSnapshot,
    pub(crate) prev_flow: Vec<f64>,
    pub(crate) fault_events: FaultEvents,
    pub(crate) load_events: LoadEvents,
    pub(crate) churn_events: ChurnEvents,
    /// The churn axis's active-node overlay words at snapshot time
    /// (empty = churn never ran; version-1 files always decode to
    /// empty). Persisted verbatim because the overlay is a Markov chain
    /// over epochs — restore must never redraw a transition.
    pub(crate) churn_active: Vec<u64>,
    pub(crate) watch: Option<WatchSnapshot>,
    pub(crate) steady: Option<SteadySnapshot>,
    pub(crate) plateau: Option<PlateauSnapshot>,
}

impl Snapshot {
    /// The round the snapshot was taken at (rounds fully executed).
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Rounds executed by the interrupted run up to this snapshot.
    pub fn rounds_done(&self) -> u64 {
        self.round.saturating_sub(self.run_start)
    }

    /// Converts the spec's (absolute) stop condition into the condition
    /// for the *remaining* run after this snapshot. Round-count budgets
    /// shrink by [`Self::rounds_done`]; `steady:` keeps watching the
    /// restored ring.
    pub(crate) fn remaining_stop(&self, stop: StopSpec) -> StopCondition {
        let done = self.rounds_done() as usize;
        match stop {
            StopSpec::Rounds(r) => StopCondition::MaxRounds(r.saturating_sub(done)),
            StopSpec::Balanced {
                threshold,
                max_rounds,
            } => StopCondition::BalancedWithin {
                threshold,
                max_rounds: max_rounds.saturating_sub(done),
            },
            StopSpec::Plateau { window, max_rounds } => StopCondition::Plateau {
                window,
                max_rounds: max_rounds.saturating_sub(done),
            },
            StopSpec::Steady { window } => StopCondition::Steady { window },
            StopSpec::Horizon(r) => {
                if r > done {
                    StopCondition::Horizon(r - done)
                } else {
                    StopCondition::MaxRounds(0)
                }
            }
        }
    }
}

/// A parsed checkpoint file: the embedded scenario plus the snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// The scenario the snapshot belongs to, parsed from the header.
    pub spec: ScenarioSpec,
    /// The frozen simulation state.
    pub snapshot: Snapshot,
}

impl Checkpoint {
    /// Rebuilds the scenario's experiment, restores the snapshot, and
    /// runs the *remaining* part of the spec's stop condition. The
    /// returned report covers only the resumed segment (its `rounds` is
    /// the post-restore count), but its final state is bit-identical to
    /// an uninterrupted run.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Build`] when the embedded scenario no longer
    /// builds, [`CheckpointError::Mismatch`] when the snapshot does not
    /// fit the rebuilt simulation.
    pub fn resume(&self) -> Result<RunReport, CheckpointError> {
        self.resume_with(&mut NullObserver)
    }

    /// [`Self::resume`] with a per-round [`Observer`].
    pub fn resume_with(&self, observer: &mut dyn Observer) -> Result<RunReport, CheckpointError> {
        let graph = self.spec.build_graph()?;
        let experiment = self.spec.experiment_on(&graph)?;
        let mut sim = experiment.simulator();
        sim.restore(&self.snapshot)?;
        let stop = self.snapshot.remaining_stop(self.spec.stop);
        Ok(match experiment.hybrid_policy() {
            Some(policy) => sim.run_hybrid_with(policy, stop, observer),
            None => sim.run_until_with(stop, observer),
        })
    }
}

// ---------------------------------------------------------------------
// Binary encoding
// ---------------------------------------------------------------------

/// FNV-1a, the same function the golden-trace suite uses.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    fn u8(&mut self, x: u8) {
        self.buf.push(x);
    }
    fn bool(&mut self, x: bool) {
        self.u8(x as u8);
    }
    fn u32(&mut self, x: u32) {
        self.buf.extend_from_slice(&x.to_le_bytes());
    }
    fn u64(&mut self, x: u64) {
        self.buf.extend_from_slice(&x.to_le_bytes());
    }
    fn usize(&mut self, x: usize) {
        self.u64(x as u64);
    }
    fn i64(&mut self, x: i64) {
        self.buf.extend_from_slice(&x.to_le_bytes());
    }
    fn f64(&mut self, x: f64) {
        self.u64(x.to_bits());
    }
    fn opt_u64(&mut self, x: Option<u64>) {
        match x {
            Some(v) => {
                self.bool(true);
                self.u64(v);
            }
            None => self.bool(false),
        }
    }
    fn vec_f64(&mut self, xs: &[f64]) {
        self.usize(xs.len());
        for &x in xs {
            self.f64(x);
        }
    }
    fn vec_i64(&mut self, xs: &[i64]) {
        self.usize(xs.len());
        for &x in xs {
            self.i64(x);
        }
    }
    fn vec_u64(&mut self, xs: &[u64]) {
        self.usize(xs.len());
        for &x in xs {
            self.u64(x);
        }
    }
    fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }
}

struct Dec<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], CheckpointError> {
        if self.bytes.len() - self.pos < n {
            return Err(CheckpointError::Truncated);
        }
        let slice = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }
    fn u8(&mut self) -> Result<u8, CheckpointError> {
        Ok(self.take(1)?[0])
    }
    fn bool(&mut self) -> Result<bool, CheckpointError> {
        Ok(self.u8()? != 0)
    }
    fn u32(&mut self) -> Result<u32, CheckpointError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64, CheckpointError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn usize(&mut self) -> Result<usize, CheckpointError> {
        usize::try_from(self.u64()?).map_err(|_| CheckpointError::Truncated)
    }
    fn i64(&mut self) -> Result<i64, CheckpointError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn f64(&mut self) -> Result<f64, CheckpointError> {
        Ok(f64::from_bits(self.u64()?))
    }
    fn opt_u64(&mut self) -> Result<Option<u64>, CheckpointError> {
        Ok(if self.bool()? {
            Some(self.u64()?)
        } else {
            None
        })
    }
    /// A length prefix, bounded by what the remaining bytes could hold
    /// so a corrupted length can never trigger a huge allocation.
    fn len(&mut self, elem_size: usize) -> Result<usize, CheckpointError> {
        let n = self.usize()?;
        if n.checked_mul(elem_size)
            .is_none_or(|total| total > self.bytes.len() - self.pos)
        {
            return Err(CheckpointError::Truncated);
        }
        Ok(n)
    }
    fn vec_f64(&mut self) -> Result<Vec<f64>, CheckpointError> {
        let n = self.len(8)?;
        (0..n).map(|_| self.f64()).collect()
    }
    fn vec_i64(&mut self) -> Result<Vec<i64>, CheckpointError> {
        let n = self.len(8)?;
        (0..n).map(|_| self.i64()).collect()
    }
    fn vec_u64(&mut self) -> Result<Vec<u64>, CheckpointError> {
        let n = self.len(8)?;
        (0..n).map(|_| self.u64()).collect()
    }
    fn str(&mut self) -> Result<String, CheckpointError> {
        let n = self.u32()? as usize;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| CheckpointError::Truncated)
    }
}

fn encode_snapshot(enc: &mut Enc, snap: &Snapshot, version: u32) {
    enc.u64(snap.round);
    enc.u64(snap.rounds_in_scheme);
    enc.u64(snap.run_start);
    enc.opt_u64(snap.switch_round);
    enc.bool(snap.degraded);
    enc.f64(snap.min_transient);
    enc.f64(snap.initial_total);
    match snap.round_stats {
        Some(stats) => {
            enc.bool(true);
            for x in stats {
                enc.f64(x);
            }
        }
        None => enc.bool(false),
    }
    match &snap.loads {
        LoadsSnapshot::Discrete(loads) => {
            enc.u8(0);
            enc.vec_i64(loads);
        }
        LoadsSnapshot::Continuous(loads) => {
            enc.u8(1);
            enc.vec_f64(loads);
        }
    }
    enc.vec_f64(&snap.prev_flow);
    let fe = snap.fault_events;
    enc.u64(fe.crashes);
    enc.u64(fe.rejoins);
    enc.u64(fe.edges_dropped);
    enc.u64(fe.shocks);
    enc.u64(fe.stale_edges);
    let le = snap.load_events;
    enc.u64(le.arrivals);
    enc.u64(le.departures);
    enc.f64(le.injected);
    match &snap.watch {
        Some(w) => {
            enc.bool(true);
            enc.bool(w.armed);
            enc.vec_f64(&w.ring);
            enc.usize(w.len);
            enc.usize(w.pos);
        }
        None => enc.bool(false),
    }
    match &snap.steady {
        Some(s) => {
            enc.bool(true);
            enc.usize(s.window);
            enc.vec_f64(&s.ring);
            enc.usize(s.pos);
            enc.usize(s.len);
            enc.f64(s.newer_sum);
            enc.f64(s.older_sum);
            enc.bool(s.check);
        }
        None => enc.bool(false),
    }
    match &snap.plateau {
        Some(p) => {
            enc.bool(true);
            enc.usize(p.window);
            enc.vec_f64(&p.history);
        }
        None => enc.bool(false),
    }
    // Version 2 appends the churn axis: event counters plus the
    // active-node overlay words (the history-dependent Markov state).
    if version >= 2 {
        let ce = snap.churn_events;
        enc.u64(ce.departures);
        enc.u64(ce.arrivals);
        enc.u64(ce.handoffs);
        enc.f64(ce.joined);
        enc.f64(ce.departed);
        enc.vec_u64(&snap.churn_active);
    }
}

fn decode_snapshot(dec: &mut Dec<'_>, version: u32) -> Result<Snapshot, CheckpointError> {
    let round = dec.u64()?;
    let rounds_in_scheme = dec.u64()?;
    let run_start = dec.u64()?;
    let switch_round = dec.opt_u64()?;
    let degraded = dec.bool()?;
    let min_transient = dec.f64()?;
    let initial_total = dec.f64()?;
    let round_stats = if dec.bool()? {
        let mut stats = [0.0; 5];
        for x in &mut stats {
            *x = dec.f64()?;
        }
        Some(stats)
    } else {
        None
    };
    let loads = match dec.u8()? {
        0 => LoadsSnapshot::Discrete(dec.vec_i64()?),
        1 => LoadsSnapshot::Continuous(dec.vec_f64()?),
        _ => return Err(CheckpointError::Truncated),
    };
    let prev_flow = dec.vec_f64()?;
    let fault_events = FaultEvents {
        crashes: dec.u64()?,
        rejoins: dec.u64()?,
        edges_dropped: dec.u64()?,
        shocks: dec.u64()?,
        stale_edges: dec.u64()?,
    };
    let load_events = LoadEvents {
        arrivals: dec.u64()?,
        departures: dec.u64()?,
        injected: dec.f64()?,
    };
    let watch = if dec.bool()? {
        let armed = dec.bool()?;
        let ring = dec.vec_f64()?;
        let len = dec.usize()?;
        let pos = dec.usize()?;
        Some(WatchSnapshot {
            armed,
            ring,
            len,
            pos,
        })
    } else {
        None
    };
    let steady = if dec.bool()? {
        let window = dec.usize()?;
        let ring = dec.vec_f64()?;
        let pos = dec.usize()?;
        let len = dec.usize()?;
        let newer_sum = dec.f64()?;
        let older_sum = dec.f64()?;
        let check = dec.bool()?;
        Some(SteadySnapshot {
            window,
            ring,
            pos,
            len,
            newer_sum,
            older_sum,
            check,
        })
    } else {
        None
    };
    let plateau = if dec.bool()? {
        let window = dec.usize()?;
        let history = dec.vec_f64()?;
        Some(PlateauSnapshot { window, history })
    } else {
        None
    };
    // Version-1 files predate the churn axis: their churn fields decode
    // to the "churn never ran" defaults (empty overlay, zero counters).
    let (churn_events, churn_active) = if version >= 2 {
        let churn_events = ChurnEvents {
            departures: dec.u64()?,
            arrivals: dec.u64()?,
            handoffs: dec.u64()?,
            joined: dec.f64()?,
            departed: dec.f64()?,
        };
        (churn_events, dec.vec_u64()?)
    } else {
        (ChurnEvents::default(), Vec::new())
    };
    Ok(Snapshot {
        round,
        rounds_in_scheme,
        run_start,
        switch_round,
        degraded,
        min_transient,
        initial_total,
        round_stats,
        loads,
        prev_flow,
        fault_events,
        load_events,
        churn_events,
        churn_active,
        watch,
        steady,
        plateau,
    })
}

/// Serializes a checkpoint to bytes (magic, version, spec line,
/// payload, trailing FNV-1a). Takes the already-rendered canonical
/// scenario line: the engine's auto-checkpoint path carries the line,
/// not the parsed spec.
fn encode_checkpoint_line(spec_line: &str, snap: &Snapshot) -> Vec<u8> {
    encode_checkpoint_line_at(spec_line, snap, VERSION)
}

/// Serializes at an explicit (older) format version. Production writes
/// always use [`VERSION`]; the back-compat fixture generator uses this
/// to emit a faithful version-1 file.
pub(crate) fn encode_checkpoint_line_at(spec_line: &str, snap: &Snapshot, version: u32) -> Vec<u8> {
    let mut enc = Enc {
        buf: Vec::with_capacity(256 + 16 * snap.prev_flow.len()),
    };
    enc.buf.extend_from_slice(MAGIC);
    enc.u32(version);
    enc.str(spec_line);
    encode_snapshot(&mut enc, snap, version);
    let checksum = fnv1a(&enc.buf);
    enc.u64(checksum);
    enc.buf
}

/// Parses checkpoint bytes; the inverse of [`encode_checkpoint`].
fn decode_checkpoint(bytes: &[u8]) -> Result<Checkpoint, CheckpointError> {
    if bytes.len() < MAGIC.len() {
        return Err(CheckpointError::Truncated);
    }
    if &bytes[..MAGIC.len()] != MAGIC {
        return Err(CheckpointError::BadMagic);
    }
    let mut dec = Dec {
        bytes,
        pos: MAGIC.len(),
    };
    let version = dec.u32()?;
    if !(MIN_VERSION..=VERSION).contains(&version) {
        return Err(CheckpointError::UnsupportedVersion { found: version });
    }
    if bytes.len() < MAGIC.len() + 4 + 8 {
        return Err(CheckpointError::Truncated);
    }
    let body_len = bytes.len() - 8;
    let stored = u64::from_le_bytes(bytes[body_len..].try_into().unwrap());
    let computed = fnv1a(&bytes[..body_len]);
    if stored != computed {
        return Err(CheckpointError::ChecksumMismatch { stored, computed });
    }
    // Decode only the body: the checksum trailer is not payload.
    dec.bytes = &bytes[..body_len];
    let spec_line = dec.str()?;
    let spec: ScenarioSpec = spec_line.parse()?;
    let snapshot = decode_snapshot(&mut dec, version)?;
    Ok(Checkpoint { spec, snapshot })
}

/// Writes a checkpoint file: encode, write to a temporary sibling,
/// atomically rename over `path`. The parent directory is created if
/// missing.
///
/// # Errors
///
/// [`CheckpointError::Io`] with the failing path on any filesystem
/// error.
pub fn write_checkpoint(
    path: &Path,
    spec: &ScenarioSpec,
    snap: &Snapshot,
) -> Result<(), CheckpointError> {
    write_checkpoint_line(path, &spec.to_string(), snap)
}

/// [`write_checkpoint`] from an already-rendered scenario line; the
/// engine's auto-checkpoint sink uses this to avoid re-parsing the spec
/// every interval.
pub(crate) fn write_checkpoint_line(
    path: &Path,
    spec_line: &str,
    snap: &Snapshot,
) -> Result<(), CheckpointError> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            fs::create_dir_all(parent).map_err(|e| CheckpointError::io(parent, e))?;
        }
    }
    let bytes = encode_checkpoint_line(spec_line, snap);
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = PathBuf::from(tmp);
    fs::write(&tmp, &bytes).map_err(|e| CheckpointError::io(&tmp, e))?;
    fs::rename(&tmp, path).map_err(|e| CheckpointError::io(path, e))
}

/// Reads and validates a checkpoint file.
///
/// # Errors
///
/// Every failure mode is a typed [`CheckpointError`]:
/// [`CheckpointError::Io`] (unreadable), [`CheckpointError::BadMagic`]
/// (not a checkpoint), [`CheckpointError::UnsupportedVersion`],
/// [`CheckpointError::Truncated`],
/// [`CheckpointError::ChecksumMismatch`] (bit corruption), or
/// [`CheckpointError::Spec`] (unparseable embedded scenario). Never
/// panics on malformed input.
pub fn read_checkpoint(path: &Path) -> Result<Checkpoint, CheckpointError> {
    let bytes = fs::read(path).map_err(|e| CheckpointError::io(path, e))?;
    decode_checkpoint(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_snapshot() -> Snapshot {
        Snapshot {
            round: 40,
            rounds_in_scheme: 12,
            run_start: 8,
            switch_round: Some(36),
            degraded: true,
            min_transient: -3.5,
            initial_total: 6400.0,
            round_stats: Some([1.0, 2.0, 3.0, -4.0, 5.5]),
            loads: LoadsSnapshot::Discrete(vec![3, -1, 98]),
            prev_flow: vec![0.25, -7.125],
            fault_events: FaultEvents {
                crashes: 4,
                rejoins: 3,
                edges_dropped: 17,
                shocks: 1,
                stale_edges: 9,
            },
            load_events: LoadEvents {
                arrivals: 11,
                departures: 6,
                injected: 123.5,
            },
            churn_events: ChurnEvents {
                departures: 2,
                arrivals: 3,
                handoffs: 5,
                joined: 24.0,
                departed: 17.5,
            },
            churn_active: vec![0xdead_beef_0042_1337, 0b101],
            watch: Some(WatchSnapshot {
                armed: true,
                ring: (0..16).map(|i| i as f64).collect(),
                len: 16,
                pos: 5,
            }),
            steady: Some(SteadySnapshot {
                window: 4,
                ring: vec![1.0; 8],
                pos: 3,
                len: 8,
                newer_sum: 4.0,
                older_sum: 4.0,
                check: true,
            }),
            plateau: Some(PlateauSnapshot {
                window: 3,
                history: vec![9.0, 8.0, 7.5, 7.25, 7.25, 7.25],
            }),
        }
    }

    #[test]
    fn policy_display_roundtrip() {
        for text in ["every:16:ckpts", "every:1:/tmp/sodiff/run-a"] {
            let policy: CheckpointPolicy = text.parse().unwrap();
            assert_eq!(policy.to_string(), text);
        }
        assert!("every:0:dir".parse::<CheckpointPolicy>().is_err());
        assert!("every:16".parse::<CheckpointPolicy>().is_err());
        assert!("always:16:dir".parse::<CheckpointPolicy>().is_err());
        assert!("every:x:dir".parse::<CheckpointPolicy>().is_err());
    }

    #[test]
    fn snapshot_encoding_roundtrips() {
        let spec: ScenarioSpec = "name=t topology=cycle:8 stop=rounds:80".parse().unwrap();
        let snap = sample_snapshot();
        let bytes = encode_checkpoint_line(&spec.to_string(), &snap);
        let back = decode_checkpoint(&bytes).unwrap();
        assert_eq!(back.spec, spec);
        assert_eq!(back.snapshot, snap);

        // A continuous snapshot with all the optionals absent.
        let snap = Snapshot {
            switch_round: None,
            round_stats: None,
            loads: LoadsSnapshot::Continuous(vec![1.5, 2.5]),
            watch: None,
            steady: None,
            plateau: None,
            degraded: false,
            ..snap
        };
        let back = decode_checkpoint(&encode_checkpoint_line(&spec.to_string(), &snap)).unwrap();
        assert_eq!(back.snapshot, snap);
    }

    /// Regenerates the committed version-1 back-compat fixture
    /// (`tests/fixtures/checkpoint_v1.ckpt`): the crash-churn golden
    /// scenario run to round 33, encoded with the v1 codec (no churn
    /// fields). `tests/checkpoint_corruption.rs` resumes it under the
    /// v2 reader and must land on the pinned golden checksum. Ignored:
    /// run `cargo test -p sodiff-core regenerate_v1 -- --ignored` only
    /// when the fixture scenario itself changes.
    #[test]
    #[ignore]
    fn regenerate_v1_fixture() {
        let line = "name=v1fix topology=torus2d:8:8 rounding=nearest scheme=sos:1.7 \
                    init=point:0:6400 faults=crash:0.1:7 stop=rounds:64";
        let spec: ScenarioSpec = line.parse().unwrap();
        let graph = spec.build_graph().unwrap();
        let mut sim = spec.experiment_on(&graph).unwrap().simulator();
        sim.run_until(StopCondition::MaxRounds(33));
        let bytes = encode_checkpoint_line_at(&spec.to_string(), &sim.snapshot(), 1);
        let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../../tests/fixtures/checkpoint_v1.ckpt");
        fs::create_dir_all(path.parent().unwrap()).unwrap();
        fs::write(&path, &bytes).unwrap();
        // The file we just wrote must decode as a v1 checkpoint.
        let back = decode_checkpoint(&bytes).unwrap();
        assert_eq!(back.snapshot.round, 33);
        assert_eq!(back.snapshot.churn_active, Vec::<u64>::new());
    }

    #[test]
    fn version_one_files_decode_with_churn_defaults() {
        let spec: ScenarioSpec = "name=t topology=cycle:8 stop=rounds:80".parse().unwrap();
        let snap = sample_snapshot();
        let v1 = encode_checkpoint_line_at(&spec.to_string(), &snap, 1);
        let back = decode_checkpoint(&v1).unwrap();
        // Everything the v1 format carries round-trips; the churn
        // fields decode to "churn never ran".
        let expected = Snapshot {
            churn_events: ChurnEvents::default(),
            churn_active: Vec::new(),
            ..snap
        };
        assert_eq!(back.snapshot, expected);
    }

    #[test]
    fn corrupted_bytes_yield_typed_errors() {
        let spec: ScenarioSpec = "name=t topology=cycle:8".parse().unwrap();
        let good = encode_checkpoint_line(&spec.to_string(), &sample_snapshot());

        assert_eq!(
            decode_checkpoint(&good[..4]),
            Err(CheckpointError::Truncated)
        );
        let mut bad_magic = good.clone();
        bad_magic[0] ^= 0xff;
        assert_eq!(
            decode_checkpoint(&bad_magic),
            Err(CheckpointError::BadMagic)
        );
        let mut bad_version = good.clone();
        bad_version[8] = 0x7f;
        assert_eq!(
            decode_checkpoint(&bad_version),
            Err(CheckpointError::UnsupportedVersion { found: 0x7f })
        );
        let mut flipped = good.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0x10;
        assert!(matches!(
            decode_checkpoint(&flipped),
            Err(CheckpointError::ChecksumMismatch { .. })
        ));
        // Truncation anywhere in the body: never a panic, always typed.
        for cut in [9, 15, 40, good.len() - 9, good.len() - 1] {
            assert!(decode_checkpoint(&good[..cut]).is_err());
        }
    }

    #[test]
    fn remaining_stop_shrinks_budgets() {
        let snap = Snapshot {
            run_start: 0,
            round: 30,
            ..sample_snapshot()
        };
        assert_eq!(
            snap.remaining_stop(StopSpec::Rounds(80)),
            StopCondition::MaxRounds(50)
        );
        assert_eq!(
            snap.remaining_stop(StopSpec::Horizon(30)),
            StopCondition::MaxRounds(0)
        );
        assert_eq!(
            snap.remaining_stop(StopSpec::Horizon(31)),
            StopCondition::Horizon(1)
        );
        assert_eq!(
            snap.remaining_stop(StopSpec::Steady { window: 16 }),
            StopCondition::Steady { window: 16 }
        );
        let plateau = snap.remaining_stop(StopSpec::Plateau {
            window: 10,
            max_rounds: 100,
        });
        assert_eq!(
            plateau,
            StopCondition::Plateau {
                window: 10,
                max_rounds: 70
            }
        );
    }
}
