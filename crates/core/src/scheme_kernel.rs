//! The scheme-kernel layer: one object per simulation that owns the
//! per-round flow computation — edge pass, rounding hook, apply pass, and
//! barrier plan — for **every** balancing scheme.
//!
//! Before this layer existed, the flow computation was hard-wired through
//! the engine (sequential rounds) and the worker pool (chunked rounds):
//! adding a scheme meant re-threading its phase sequence through both by
//! hand. A [`SchemeKernel`] now captures the two orthogonal choices a
//! scheme makes, as plain enums dispatched statically:
//!
//! * [`FlowPass`] — *how* an active edge's flow is computed and rounded:
//!   the continuous pass, the fused edge-local discrete pass, or the
//!   three-phase randomized-framework pipeline. These call straight into
//!   the division-free kernels of [`crate::kernel`], so the diffusion
//!   paths keep their exact pre-refactor codegen (pinned bit-for-bit by
//!   `tests/golden_trace.rs`).
//! * [`ActivePlan`] — *which* edges are active each round: all of them
//!   (diffusion), a precomputed family of bitmasks swept round-robin
//!   (dimension exchange over the color classes of an edge coloring;
//!   matching-based balancing over maximal matchings), or a fresh random
//!   maximal matching drawn per round from a `(seed, round)`-keyed greedy
//!   order.
//! * [`crate::FaultSpec`] — *what goes wrong* each round: deterministic
//!   node crash/rejoin churn, per-round edge drops, load shocks, and
//!   stale-flow injection, all drawn from counter-indexed RNG streams
//!   (see the `fault` module). With edge faults active, every plan's
//!   mask is intersected with the round's live/undropped edge set (sweep
//!   families are incrementally repaired at crash epochs); with
//!   `faults=none` every hot loop below takes exactly its original
//!   unperturbed path.
//! * [`crate::LoadSpec`] — *what work arrives* each round: Poisson
//!   arrivals/departures, periodic hotspot bursts, a diurnal swing, and
//!   an adversarial most-loaded-node injector, all planned and applied
//!   by the control thread before the round's flow pass (see the `load`
//!   module). With `load=none` every run takes exactly the pre-load
//!   code paths.
//! * [`crate::ChurnSpec`] — *which nodes exist* each round: live
//!   topology churn over the graph's reserved node capacity, with
//!   epoch-aligned departures/(re)arrivals drawn from the same
//!   counter-indexed streams, conservation-exact handoff of a departing
//!   node's entire load to its live neighbors, and per-epoch incremental
//!   repair of the sweep-plan mask families against the combined
//!   churn-active × crash-live node set (see the `churn` module). With
//!   churn active every plan — including diffusion — routes through the
//!   published active-edge mask; with `churn=none` every hot loop takes
//!   exactly its pre-churn path. Per round the control thread runs
//!   fault → churn → load injection before the flow pass, so a
//!   departing node's handoff lands before new work arrives.
//!
//! The masked plans run through `*_masked` kernel variants that force
//! inactive edges' flows to zero with a branchless bit test; the
//! diffusion plan runs through the original unmasked kernels. Both the
//! sequential executor ([`SchemeKernel::run_discrete_seq`] /
//! [`SchemeKernel::run_continuous_seq`]) and the worker pool
//! ([`SchemeKernel::run_chunk`]) execute the *same* kernel calls in the
//! same per-element order, so pooled results remain bit-identical to
//! sequential ones for every scheme — the property
//! `tests/determinism.rs` and the golden traces check.
//!
//! Pairwise schemes replace the diffusion coefficients `α_e/s` with the
//! λ-scaled harmonic-speed pair `coef_tail = λ·s_v/(s_u+s_v)`,
//! `coef_head = λ·s_u/(s_u+s_v)`, so an active edge schedules
//! `y = λ·(s_u·s_v/(s_u+s_v))·(x_u/s_u − x_v/s_v)` — exact pairwise
//! averaging at `λ = 1` under uniform speeds.
//!
//! Per-round matching state (the random plan's mask) is produced by the
//! *control* thread — [`SchemeKernel::prepare_pooled`] before the round's
//! first barrier on the pool, or inline in the sequential round — so
//! results never depend on the executor.
//!
//! See the "adding a scheme" walkthrough in the crate docs
//! ([`crate`]) for the end-to-end list of touch points.

use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::Barrier;

use sodiff_graph::{matching, EdgeId, Graph, Speeds};

use crate::churn::{ChurnSpec, ChurnState};
use crate::engine::{FlowMemory, Mode};
use crate::error::BuildError;
use crate::fault::{EffBase, FaultSpec, FaultState};
use crate::kernel::{self, AtomicsF64, BufF64, BufI64, FwScratch, KernelTables, LoadStats};
use crate::load::{LoadSpec, LoadState};
use crate::matchgen::{self, mask_words, MatchScratch};
use crate::rounding::Rounding;
use crate::scheme::{MatchingStrategy, Scheme};

/// How an active edge's flow is computed and rounded (the per-mode phase
/// sequence).
#[derive(Debug, Clone, Copy)]
pub(crate) enum FlowPass {
    /// Continuous mode: the scheduled flow is the flow.
    Continuous,
    /// Discrete mode with an edge-local rounding: one fused sweep.
    EdgeLocal(Rounding),
    /// Discrete mode with the node-centric randomized framework: the
    /// streaming three-phase pipeline.
    Framework {
        /// RNG seed of the framework's per-(node, round) streams.
        seed: u64,
    },
}

/// Which edges are active each round.
pub(crate) enum ActivePlan {
    /// Every edge, every round (the diffusion schemes).
    All,
    /// Precomputed edge bitmasks swept round-robin: color classes for
    /// dimension exchange, maximal matchings for round-robin
    /// matching-based balancing. `masks[round % masks.len()]` is the
    /// round's active set.
    Sweep {
        /// The mask family.
        masks: Vec<Vec<u64>>,
        /// How the family reacts to node crashes: `true` re-covers freed
        /// live nodes after masking dead incidences out (matchings stay
        /// maximal-ish), `false` only masks out (color classes keep
        /// their one-neighbor-per-round structure).
        recover: bool,
    },
    /// A fresh random maximal matching per round (greedy over a
    /// `(seed, round)`-keyed random edge order, generated by the control
    /// thread).
    Random {
        /// Seed of the per-round matching draws.
        seed: u64,
    },
}

/// Everything a simulation's control thread needs between rounds: the
/// framework rounding scratch, the matching-generation scratch, and the
/// sequential executor's potential-block buffer.
#[derive(Default)]
pub(crate) struct RoundScratch {
    /// Participant-0 scratch of the randomized framework's rounding phase.
    pub fw: FwScratch,
    /// Random-matching generation scratch.
    pub matchgen: MatchScratch,
    /// Per-[`crate::metrics::DEV_BLOCK`] squared-deviation partials of
    /// the sequential apply pass (the pool keeps its own atomic buffer).
    block_sums: Vec<f64>,
    /// Fault-injection state: live sets, repaired sweep masks, per-round
    /// drop/stale masks, and the accumulated event counters.
    pub fault: FaultState,
    /// Dynamic-workload state: the round's planned injection deltas and
    /// the accumulated event counters / injected-total account.
    pub load: LoadState,
    /// Topology-churn state: the active-node overlay, its induced
    /// active-edge mask, the per-epoch repaired sweep families, the
    /// epoch's handoff deltas, and the accumulated event counters.
    pub churn: ChurnState,
}

impl RoundScratch {
    /// An empty scratch (buffers grow on first use and are then reused).
    pub fn new() -> Self {
        Self::default()
    }
}

/// One simulation's shared atomic state as seen by a pool participant;
/// see [`SchemeKernel::run_chunk`].
///
/// Generic over the five load/flow buffer handles so the compact
/// (`mem=compact`) jobs thread their `i32`/`f32` atomic twins through
/// the *same* phase sequence the full-width jobs monomorphize: the
/// full-width instantiation ([`crate::kernel::AtomicsI64`] /
/// [`crate::kernel::AtomicsF64`]) keeps its exact pre-compact codegen.
/// The mask/stale/potential words stay `u64` in both layouts.
pub(crate) struct ChunkBufs<'a, LI, LF, P, F, A> {
    /// Integer loads (discrete mode; empty otherwise).
    pub loads_i: LI,
    /// Continuous loads (continuous mode; empty otherwise).
    pub loads_f: LF,
    /// Per-edge flow memory.
    pub prev: P,
    /// Arc-indexed fractional parts (framework flow pass only).
    pub arc_frac: A,
    /// Per-edge integral flows (discrete mode).
    pub flows: F,
    /// Active-edge bitmask words (random matching plan, or any plan
    /// under edge faults), published by the control thread before the
    /// round's first barrier.
    pub mask: &'a [AtomicU64],
    /// The round's stale-edge words (stale fault channel only),
    /// published by the control thread before the round's first barrier
    /// and consumed by the apply pass.
    pub stale: &'a [AtomicU64],
    /// Per-block squared-deviation partials written by the apply pass
    /// (one writer per block: node chunks are block-aligned), folded by
    /// the control thread after the round.
    pub block_sums: &'a [AtomicU64],
}

/// The per-simulation scheme kernel; see the module docs above.
pub(crate) struct SchemeKernel {
    flow: FlowPass,
    plan: ActivePlan,
    /// λ-scaled pairwise coefficients (empty for diffusion, which uses
    /// the `α_e/s` tables baked into [`KernelTables`]).
    coef_tail: Vec<f64>,
    coef_head: Vec<f64>,
    /// Packed per-edge endpoints for the random-matching generator's
    /// greedy pass ([`matchgen::edge_pairs`]; empty for other plans).
    match_pairs: Vec<u64>,
    /// The fault-injection axis (`FaultSpec::none()` = unperturbed).
    pub faults: FaultSpec,
    /// The dynamic-workload axis (`LoadSpec::none()` = static load).
    pub loads: LoadSpec,
    /// The topology-churn axis (`ChurnSpec::none()` = fixed node set).
    pub churn: ChurnSpec,
}

/// Builds the edge bitmask of one active set.
fn class_mask(m: usize, edges: &[EdgeId]) -> Vec<u64> {
    let mut words = vec![0u64; mask_words(m)];
    for &e in edges {
        words[(e >> 6) as usize] |= 1u64 << (e & 63);
    }
    words
}

/// The λ-scaled harmonic-speed coefficient tables of the pairwise
/// schemes: `coef_tail[e] = λ·s_v/(s_u+s_v)`, `coef_head[e] = λ·s_u/(s_u+s_v)`,
/// so `y_e = coef_tail·x_u − coef_head·x_v = λ·(s_u·s_v/(s_u+s_v))·(x_u/s_u − x_v/s_v)`.
fn exchange_coefs(graph: &Graph, speeds: &Speeds, lambda: f64) -> (Vec<f64>, Vec<f64>) {
    let m = graph.edge_count();
    let mut coef_tail = Vec::with_capacity(m);
    let mut coef_head = Vec::with_capacity(m);
    for &(u, v) in graph.edges() {
        let su = speeds.get(u as usize);
        let sv = speeds.get(v as usize);
        coef_tail.push(lambda * sv / (su + sv));
        coef_head.push(lambda * su / (su + sv));
    }
    (coef_tail, coef_head)
}

impl SchemeKernel {
    /// Validates `scheme` against `graph` without building anything: the
    /// builder-level check behind [`crate::ExperimentBuilder::build`].
    ///
    /// # Errors
    ///
    /// [`BuildError::InvalidBeta`] / [`BuildError::InvalidLambda`] for
    /// out-of-range parameters; [`BuildError::NoColoring`] /
    /// [`BuildError::NoMatching`] when a pairwise scheme meets an
    /// edgeless graph.
    pub fn validate(scheme: Scheme, graph: &Graph) -> Result<(), BuildError> {
        scheme.check()?;
        if graph.edge_count() == 0 {
            let why = format!("the graph has {} node(s) but no edges", graph.node_count());
            match scheme {
                Scheme::DimensionExchange { .. } => return Err(BuildError::NoColoring(why)),
                Scheme::Matching { .. } => return Err(BuildError::NoMatching(why)),
                Scheme::Fos | Scheme::Sos { .. } => {}
            }
        }
        Ok(())
    }

    /// Builds the kernel for one validated simulation.
    ///
    /// # Errors
    ///
    /// Everything [`SchemeKernel::validate`] reports.
    pub fn new(
        scheme: Scheme,
        mode: Mode,
        graph: &Graph,
        speeds: &Speeds,
        faults: FaultSpec,
        loads: LoadSpec,
        churn: ChurnSpec,
    ) -> Result<Self, BuildError> {
        Self::validate(scheme, graph)?;
        faults.check()?;
        loads.check()?;
        churn.check()?;
        let flow = match mode {
            Mode::Continuous => FlowPass::Continuous,
            Mode::Discrete(Rounding::RandomizedFramework { seed }) => FlowPass::Framework { seed },
            Mode::Discrete(rounding) => FlowPass::EdgeLocal(rounding),
        };
        let m = graph.edge_count();
        let (plan, lambda) = match scheme {
            Scheme::Fos | Scheme::Sos { .. } => (ActivePlan::All, None),
            Scheme::DimensionExchange { lambda } => {
                let coloring = matching::edge_coloring(graph);
                let masks = coloring
                    .classes()
                    .iter()
                    .map(|class| class_mask(m, class))
                    .collect();
                (
                    ActivePlan::Sweep {
                        masks,
                        recover: false,
                    },
                    Some(lambda),
                )
            }
            Scheme::Matching { lambda, strategy } => {
                let plan = match strategy {
                    MatchingStrategy::RoundRobin => {
                        let coloring = matching::edge_coloring(graph);
                        let masks = matching::maximal_matchings(graph, &coloring)
                            .iter()
                            .map(|matching| class_mask(m, matching))
                            .collect();
                        ActivePlan::Sweep {
                            masks,
                            recover: true,
                        }
                    }
                    MatchingStrategy::Random { seed } => ActivePlan::Random { seed },
                };
                (plan, Some(lambda))
            }
        };
        let (coef_tail, coef_head) = match lambda {
            Some(lambda) => exchange_coefs(graph, speeds, lambda),
            None => (Vec::new(), Vec::new()),
        };
        Ok(Self {
            flow,
            plan,
            coef_tail,
            coef_head,
            match_pairs: Vec::new(),
            faults,
            loads,
            churn,
        })
    }

    /// Builds the per-simulation matchgen endpoint table once the kernel
    /// tables exist (random-matching plan only; no-op otherwise).
    pub fn finish(&mut self, t: &KernelTables) {
        if matches!(self.plan, ActivePlan::Random { .. }) {
            self.match_pairs = matchgen::edge_pairs(t);
        }
    }

    /// Whether the flow pass needs the arc decomposition tables
    /// (`edge_arc_pos` / `arc_frac`) of the randomized framework.
    pub fn needs_arc_plan(&self) -> bool {
        matches!(self.flow, FlowPass::Framework { .. })
    }

    /// Whether the plan publishes a per-round mask through the job's
    /// atomic mask words (the random-matching plan).
    pub fn needs_random_mask(&self) -> bool {
        matches!(self.plan, ActivePlan::Random { .. })
    }

    /// Whether the fault axis forces per-round edge masking (crash or
    /// edgedrop channel active), routing every plan — including
    /// diffusion — through the published mask words.
    pub fn needs_fault_mask(&self) -> bool {
        self.faults.has_edge_faults()
    }

    /// Whether the fault axis publishes a per-round stale mask for the
    /// apply pass.
    pub fn needs_stale_mask(&self) -> bool {
        self.faults.stale.is_some()
    }

    /// Whether the churn axis forces per-round edge masking (a flux
    /// channel is active), routing every plan — including diffusion —
    /// through the published mask words so a departed node's incident
    /// edges carry no flow.
    pub fn needs_churn_mask(&self) -> bool {
        !self.churn.is_none()
    }

    /// The pairwise coefficient tables for masked passes, falling back
    /// to the diffusion `α_e/s` tables when this kernel is a diffusion
    /// scheme that only became masked through the fault axis.
    fn masked_coefs<'a>(&'a self, t: &'a KernelTables) -> (&'a [f64], &'a [f64]) {
        if self.coef_tail.is_empty() {
            (&t.coef_tail, &t.coef_head)
        } else {
            (&self.coef_tail, &self.coef_head)
        }
    }

    /// The sweep family and its repair style, if the plan is a sweep.
    /// Crate-visible so checkpoint restore can re-materialize the fault
    /// epoch the snapshot was taken in.
    pub(crate) fn sweep_family(&self) -> Option<(&[Vec<u64>], bool)> {
        match &self.plan {
            ActivePlan::Sweep { masks, recover } => Some((masks, *recover)),
            _ => None,
        }
    }

    /// The sweep family the *fault* state should repair at crash epochs:
    /// `None` while churn is active, because [`ChurnState`] then rebuilds
    /// the family each epoch against the combined churn-active ×
    /// crash-live node set, superseding the crash-only repair.
    pub(crate) fn fault_sweep_family(&self) -> Option<(&[Vec<u64>], bool)> {
        if self.needs_churn_mask() {
            None
        } else {
            self.sweep_family()
        }
    }

    /// The round's active-edge mask (`None` = all edges active),
    /// generating the random matching into `mg` when the plan calls for
    /// one. Control-thread only.
    fn active_mask<'a>(
        &'a self,
        round: u64,
        t: &KernelTables,
        mg: &'a mut MatchScratch,
    ) -> Option<&'a [u64]> {
        match &self.plan {
            ActivePlan::All => None,
            ActivePlan::Sweep { masks, .. } => Some(&masks[(round % masks.len() as u64) as usize]),
            ActivePlan::Random { seed } => {
                matchgen::fill_random_matching(*seed, round, t, &self.match_pairs, mg);
                Some(&mg.mask)
            }
        }
    }

    /// The round's *effective* active mask under the fault and churn
    /// axes: the plan's mask intersected with the churn-active edge set
    /// (when a flux channel is on) and with the live/undropped edge set
    /// (when edge faults are on, counting drop and stale events), the
    /// plain [`SchemeKernel::active_mask`] otherwise. Control-thread
    /// only; [`FaultState::begin_round`] and [`ChurnState::begin_round`]
    /// must already have run this round. With churn active, sweep plans
    /// use the churn state's repaired families (rebuilt each epoch
    /// against the combined churn-active × crash-live node set), which
    /// supersede the fault state's crash-only repairs.
    fn round_mask<'a>(
        &'a self,
        round: u64,
        t: &KernelTables,
        mg: &'a mut MatchScratch,
        fault: &'a mut FaultState,
        churn: &'a mut ChurnState,
    ) -> Option<&'a [u64]> {
        let churned = self.needs_churn_mask();
        if self.faults.has_edge_faults() {
            let base = match &self.plan {
                ActivePlan::All => {
                    if churned {
                        EffBase::External(churn.active_edge_words())
                    } else {
                        EffBase::All
                    }
                }
                ActivePlan::Sweep { masks, .. } => {
                    let idx = (round % masks.len() as u64) as usize;
                    if churned {
                        EffBase::External(churn.repaired_mask(idx))
                    } else if self.faults.crash.is_some() {
                        EffBase::Repaired(idx)
                    } else {
                        EffBase::External(&masks[idx])
                    }
                }
                ActivePlan::Random { seed } => {
                    matchgen::fill_random_matching(*seed, round, t, &self.match_pairs, mg);
                    if churned {
                        EffBase::External(churn.compose(&mg.mask, t.m))
                    } else {
                        EffBase::External(&mg.mask)
                    }
                }
            };
            return Some(fault.compose_eff(&self.faults, t.m, base));
        }
        if churned {
            let mask = match &self.plan {
                ActivePlan::All => churn.active_edge_words(),
                ActivePlan::Sweep { masks, .. } => {
                    churn.repaired_mask((round % masks.len() as u64) as usize)
                }
                ActivePlan::Random { seed } => {
                    matchgen::fill_random_matching(*seed, round, t, &self.match_pairs, mg);
                    churn.compose(&mg.mask, t.m)
                }
            };
            if self.faults.stale.is_some() {
                fault.count_stale(Some(mask), t.m);
            }
            return Some(mask);
        }
        let mask = self.active_mask(round, t, mg);
        if self.faults.stale.is_some() {
            fault.count_stale(mask, t.m);
        }
        mask
    }

    /// Pool-mode round preparation, run by the control thread *before*
    /// the round's first barrier: advances the fault state (epoch churn,
    /// drop/stale draws, load shocks applied through the job's atomics —
    /// exclusive, the workers are parked), generates the random matching
    /// (if the plan draws one), and publishes the round's effective mask
    /// and stale words. Fault-free sweep plans need no publication —
    /// workers index the kernel's immutable masks directly.
    #[allow(clippy::too_many_arguments)] // the job's full shared state, flat by design
    pub fn prepare_pooled<LI: BufI64, LF: BufF64>(
        &self,
        t: &KernelTables,
        graph: &Graph,
        round: u64,
        scratch: &mut RoundScratch,
        loads_i: &LI,
        loads_f: &LF,
        mask_out: &[AtomicU64],
        stale_out: &[AtomicU64],
    ) {
        let RoundScratch {
            matchgen,
            fault,
            load,
            churn,
            ..
        } = scratch;
        let discrete = loads_f.elems().is_empty();
        if !self.faults.is_none() {
            fault.begin_round(&self.faults, graph, round, self.fault_sweep_family());
            if let Some((donor, hotspot)) = fault.shock_targets(&self.faults, round, t.n) {
                if discrete {
                    let amt = loads_i.get(donor) / 4;
                    if amt != 0 {
                        loads_i.set(donor, loads_i.get(donor) - amt);
                        loads_i.set(hotspot, loads_i.get(hotspot) + amt);
                        fault.events.shocks += 1;
                    }
                } else {
                    let amt = loads_f.get(donor) / 4.0;
                    if amt != 0.0 {
                        loads_f.set(donor, loads_f.get(donor) - amt);
                        loads_f.set(hotspot, loads_f.get(hotspot) + amt);
                        fault.events.shocks += 1;
                    }
                }
            }
        }
        if !self.churn.is_none() {
            // Churn transitions and handoff deltas land after the fault
            // epoch (so repairs see the current crash-live set) and
            // before load injection, per the round ordering
            // churn → load inject → flow pass.
            let fault_live = self.faults.crash.is_some().then(|| fault.live_node_words());
            if discrete {
                churn.begin_round(
                    &self.churn,
                    graph,
                    round,
                    true,
                    fault_live,
                    self.sweep_family(),
                    |i| loads_i.get(i) as f64,
                );
                churn.apply_i64(loads_i);
            } else {
                churn.begin_round(
                    &self.churn,
                    graph,
                    round,
                    false,
                    fault_live,
                    self.sweep_family(),
                    |i| loads_f.get(i),
                );
                churn.apply_f64(loads_f);
            }
        }
        if !self.loads.is_none() {
            // Load deltas land before the flow pass and before the first
            // barrier (workers parked), same as the shock channel, so
            // both executors balance identical per-round loads.
            if discrete {
                load.plan_round(&self.loads, round, t.n, true, |i| loads_i.get(i) as f64);
                load.apply_i64(loads_i);
            } else {
                load.plan_round(&self.loads, round, t.n, false, |i| loads_f.get(i));
                load.apply_f64(loads_f);
            }
        }
        let publish =
            self.needs_random_mask() || self.needs_fault_mask() || self.needs_churn_mask();
        if let Some(mask) = self.round_mask(round, t, matchgen, fault, churn) {
            if publish {
                for (word, &w) in mask_out.iter().zip(mask) {
                    word.store(w, Relaxed);
                }
            }
        }
        if self.faults.stale.is_some() {
            for (word, &w) in stale_out.iter().zip(&fault.stale) {
                word.store(w, Relaxed);
            }
        }
    }

    /// One full sequential round in discrete mode; returns the round's
    /// fused load statistics (minimum transient load plus the post-round
    /// min/max/deviation reduction of the apply pass).
    ///
    /// Generic over the load/flow buffer handles so `mem=full`
    /// monomorphizes to the exact pre-compact code (Cell-backed `i64` /
    /// `f64` slices) while `mem=compact` threads its `i32`/`f32` twins
    /// through the same phase sequence; all arithmetic stays `f64` in
    /// both instantiations.
    #[allow(clippy::too_many_arguments)] // the engine's full round state, flat by design
    pub fn run_discrete_seq<L: BufI64, P: BufF64, F: BufI64, A: BufF64>(
        &self,
        t: &KernelTables,
        graph: &Graph,
        mem: f64,
        gain: f64,
        round: u64,
        flow_memory: FlowMemory,
        loads: &L,
        prev: &P,
        flows: &F,
        arc_frac: &A,
        scratch: &mut RoundScratch,
    ) -> LoadStats {
        let (n, m) = (t.n, t.m);
        let RoundScratch {
            fw,
            matchgen,
            block_sums,
            fault,
            load,
            churn,
        } = scratch;
        if !self.faults.is_none() {
            fault.begin_round(&self.faults, graph, round, self.fault_sweep_family());
            if let Some((donor, hotspot)) = fault.shock_targets(&self.faults, round, n) {
                let amt = loads.get(donor) / 4;
                if amt != 0 {
                    loads.set(donor, loads.get(donor) - amt);
                    loads.set(hotspot, loads.get(hotspot) + amt);
                    fault.events.shocks += 1;
                }
            }
        }
        if !self.churn.is_none() {
            let fault_live = self.faults.crash.is_some().then(|| fault.live_node_words());
            churn.begin_round(
                &self.churn,
                graph,
                round,
                true,
                fault_live,
                self.sweep_family(),
                |i| loads.get(i) as f64,
            );
            churn.apply_i64(loads);
        }
        if !self.loads.is_none() {
            load.plan_round(&self.loads, round, n, true, |i| loads.get(i) as f64);
            load.apply_i64(loads);
        }
        let mask = self.round_mask(round, t, matchgen, fault, churn);
        match self.flow {
            FlowPass::EdgeLocal(rounding) => match mask {
                None => kernel::edge_pass_fused(
                    t,
                    0..m,
                    mem,
                    gain,
                    round,
                    rounding,
                    flow_memory,
                    |i| loads.get(i) as f64,
                    prev,
                    flows,
                ),
                Some(words) => {
                    let (ct, ch) = self.masked_coefs(t);
                    kernel::edge_pass_fused_masked(
                        t,
                        ct,
                        ch,
                        0..m,
                        |w| words[w],
                        mem,
                        gain,
                        round,
                        rounding,
                        flow_memory,
                        |i| loads.get(i) as f64,
                        prev,
                        flows,
                    )
                }
            },
            FlowPass::Framework { seed } => {
                match mask {
                    None => kernel::edge_pass_scatter(
                        t,
                        0..m,
                        mem,
                        gain,
                        flow_memory,
                        |i| loads.get(i) as f64,
                        arc_frac,
                        flows,
                        prev,
                    ),
                    Some(words) => {
                        let (ct, ch) = self.masked_coefs(t);
                        kernel::edge_pass_scatter_masked(
                            t,
                            ct,
                            ch,
                            0..m,
                            |w| words[w],
                            mem,
                            gain,
                            flow_memory,
                            |i| loads.get(i) as f64,
                            arc_frac,
                            flows,
                            prev,
                        )
                    }
                }
                kernel::arc_round_streamed(t, 0..n, seed, round, arc_frac, flows, fw);
                if matches!(flow_memory, FlowMemory::Rounded) {
                    kernel::prev_from_flows(0..m, flows, prev);
                }
            }
            FlowPass::Continuous => unreachable!("continuous flow pass on discrete state"),
        }
        let blocks = kernel::dev_blocks(n);
        block_sums.resize(blocks, 0.0);
        let mut stats = if self.faults.stale.is_some() {
            // Lossy apply: the flow was computed and recorded in the
            // flow memory above, but a stale edge's tokens never land.
            let stale: &[u64] = &fault.stale;
            kernel::apply_discrete(
                t,
                0..n,
                |e| flows.get(e) * (((stale[e >> 6] >> (e & 63)) & 1) ^ 1) as i64,
                loads,
                &kernel::cells_f64(block_sums),
            )
        } else {
            kernel::apply_discrete(
                t,
                0..n,
                |e| flows.get(e),
                loads,
                &kernel::cells_f64(block_sums),
            )
        };
        stats.sum_sq_dev = kernel::fold_block_sums(blocks, &kernel::cells_f64(block_sums));
        stats
    }

    /// One full sequential round in continuous mode; returns the round's
    /// fused load statistics. Generic over the load/flow buffer handles
    /// like [`SchemeKernel::run_discrete_seq`].
    #[allow(clippy::too_many_arguments)] // the engine's full round state, flat by design
    pub fn run_continuous_seq<LF: BufF64, P: BufF64>(
        &self,
        t: &KernelTables,
        graph: &Graph,
        mem: f64,
        gain: f64,
        round: u64,
        loads: &LF,
        prev: &P,
        scratch: &mut RoundScratch,
    ) -> LoadStats {
        let (n, m) = (t.n, t.m);
        let RoundScratch {
            matchgen,
            block_sums,
            fault,
            load,
            churn,
            ..
        } = scratch;
        if !self.faults.is_none() {
            fault.begin_round(&self.faults, graph, round, self.fault_sweep_family());
            if let Some((donor, hotspot)) = fault.shock_targets(&self.faults, round, n) {
                let amt = loads.get(donor) / 4.0;
                if amt != 0.0 {
                    loads.set(donor, loads.get(donor) - amt);
                    loads.set(hotspot, loads.get(hotspot) + amt);
                    fault.events.shocks += 1;
                }
            }
        }
        if !self.churn.is_none() {
            let fault_live = self.faults.crash.is_some().then(|| fault.live_node_words());
            churn.begin_round(
                &self.churn,
                graph,
                round,
                false,
                fault_live,
                self.sweep_family(),
                |i| loads.get(i),
            );
            churn.apply_f64(loads);
        }
        if !self.loads.is_none() {
            load.plan_round(&self.loads, round, n, false, |i| loads.get(i));
            load.apply_f64(loads);
        }
        let mask = self.round_mask(round, t, matchgen, fault, churn);
        match mask {
            None => kernel::edge_pass_continuous(t, 0..m, mem, gain, |i| loads.get(i), prev),
            Some(words) => {
                let (ct, ch) = self.masked_coefs(t);
                kernel::edge_pass_continuous_masked(
                    t,
                    ct,
                    ch,
                    0..m,
                    |w| words[w],
                    mem,
                    gain,
                    |i| loads.get(i),
                    prev,
                )
            }
        }
        let blocks = kernel::dev_blocks(n);
        block_sums.resize(blocks, 0.0);
        let mut stats = if self.faults.stale.is_some() {
            let stale: &[u64] = &fault.stale;
            kernel::apply_continuous(
                t,
                0..n,
                |e| {
                    if (stale[e >> 6] >> (e & 63)) & 1 == 1 {
                        0.0
                    } else {
                        prev.get(e)
                    }
                },
                loads,
                &kernel::cells_f64(block_sums),
            )
        } else {
            kernel::apply_continuous(
                t,
                0..n,
                |e| prev.get(e),
                loads,
                &kernel::cells_f64(block_sums),
            )
        };
        stats.sum_sq_dev = kernel::fold_block_sums(blocks, &kernel::cells_f64(block_sums));
        stats
    }

    /// One pool participant's share of a round: the same kernel calls as
    /// the sequential methods, separated by `barrier` between phases
    /// (one internal barrier for the edge-local and continuous passes,
    /// two for the framework pipeline — the flow-memory copy shares the
    /// apply pass's interval). Returns the chunk's fused load
    /// statistics.
    #[allow(clippy::too_many_arguments)] // one pool participant's full round context
    pub fn run_chunk<LI: BufI64, LF: BufF64, P: BufF64, F: BufI64, A: BufF64>(
        &self,
        t: &KernelTables,
        barrier: &Barrier,
        edges: Range<usize>,
        nodes: Range<usize>,
        mem: f64,
        gain: f64,
        round: u64,
        flow_memory: FlowMemory,
        bufs: &ChunkBufs<'_, LI, LF, P, F, A>,
        scratch: &mut FwScratch,
    ) -> LoadStats {
        if self.needs_stale_mask() {
            self.run_chunk_inner(
                t,
                barrier,
                edges,
                nodes,
                mem,
                gain,
                round,
                flow_memory,
                bufs,
                scratch,
                Some(|w: usize| bufs.stale[w].load(Relaxed)),
            )
        } else {
            self.run_chunk_inner(
                t,
                barrier,
                edges,
                nodes,
                mem,
                gain,
                round,
                flow_memory,
                bufs,
                scratch,
                None::<fn(usize) -> u64>,
            )
        }
    }

    /// [`SchemeKernel::run_chunk`] monomorphized per stale-mask source.
    #[allow(clippy::too_many_arguments)] // one pool participant's full round context
    fn run_chunk_inner<LI, LF, P, F, A, SF>(
        &self,
        t: &KernelTables,
        barrier: &Barrier,
        edges: Range<usize>,
        nodes: Range<usize>,
        mem: f64,
        gain: f64,
        round: u64,
        flow_memory: FlowMemory,
        bufs: &ChunkBufs<'_, LI, LF, P, F, A>,
        scratch: &mut FwScratch,
        stale: Option<SF>,
    ) -> LoadStats
    where
        LI: BufI64,
        LF: BufF64,
        P: BufF64,
        F: BufI64,
        A: BufF64,
        SF: Fn(usize) -> u64,
    {
        if self.needs_fault_mask() || self.needs_churn_mask() {
            // Edge faults and topology churn route *every* plan through
            // the effective mask the control thread published for the
            // round.
            return self.chunk_phases(
                t,
                barrier,
                edges,
                nodes,
                mem,
                gain,
                round,
                flow_memory,
                bufs,
                scratch,
                Some(|w: usize| bufs.mask[w].load(Relaxed)),
                stale,
            );
        }
        match &self.plan {
            ActivePlan::All => self.chunk_phases(
                t,
                barrier,
                edges,
                nodes,
                mem,
                gain,
                round,
                flow_memory,
                bufs,
                scratch,
                None::<fn(usize) -> u64>,
                stale,
            ),
            ActivePlan::Sweep { masks, .. } => {
                let words = &masks[(round % masks.len() as u64) as usize];
                self.chunk_phases(
                    t,
                    barrier,
                    edges,
                    nodes,
                    mem,
                    gain,
                    round,
                    flow_memory,
                    bufs,
                    scratch,
                    Some(|w: usize| words[w]),
                    stale,
                )
            }
            ActivePlan::Random { .. } => self.chunk_phases(
                t,
                barrier,
                edges,
                nodes,
                mem,
                gain,
                round,
                flow_memory,
                bufs,
                scratch,
                Some(|w: usize| bufs.mask[w].load(Relaxed)),
                stale,
            ),
        }
    }

    /// The phase sequence of one chunk, monomorphized per mask source so
    /// the all-edges diffusion paths keep their original unmasked
    /// codegen.
    #[allow(clippy::too_many_arguments)] // one pool participant's full round context
    fn chunk_phases<LI, LF, P, F, A, MF, SF>(
        &self,
        t: &KernelTables,
        barrier: &Barrier,
        edges: Range<usize>,
        nodes: Range<usize>,
        mem: f64,
        gain: f64,
        round: u64,
        flow_memory: FlowMemory,
        bufs: &ChunkBufs<'_, LI, LF, P, F, A>,
        scratch: &mut FwScratch,
        mask: Option<MF>,
        stale: Option<SF>,
    ) -> LoadStats
    where
        LI: BufI64,
        LF: BufF64,
        P: BufF64,
        F: BufI64,
        A: BufF64,
        MF: Fn(usize) -> u64,
        SF: Fn(usize) -> u64,
    {
        let prev = &bufs.prev;
        let flows = &bufs.flows;
        match self.flow {
            FlowPass::EdgeLocal(rounding) => {
                match &mask {
                    None => kernel::edge_pass_fused(
                        t,
                        edges,
                        mem,
                        gain,
                        round,
                        rounding,
                        flow_memory,
                        |i| bufs.loads_i.get(i) as f64,
                        prev,
                        flows,
                    ),
                    Some(mf) => {
                        let (ct, ch) = self.masked_coefs(t);
                        kernel::edge_pass_fused_masked(
                            t,
                            ct,
                            ch,
                            edges,
                            mf,
                            mem,
                            gain,
                            round,
                            rounding,
                            flow_memory,
                            |i| bufs.loads_i.get(i) as f64,
                            prev,
                            flows,
                        )
                    }
                }
                barrier.wait();
                match &stale {
                    None => kernel::apply_discrete(
                        t,
                        nodes,
                        |e| bufs.flows.get(e),
                        &bufs.loads_i,
                        &AtomicsF64(bufs.block_sums),
                    ),
                    Some(sf) => kernel::apply_discrete(
                        t,
                        nodes,
                        |e| bufs.flows.get(e) * (((sf(e >> 6) >> (e & 63)) & 1) ^ 1) as i64,
                        &bufs.loads_i,
                        &AtomicsF64(bufs.block_sums),
                    ),
                }
            }
            FlowPass::Framework { seed } => {
                match &mask {
                    None => kernel::edge_pass_scatter(
                        t,
                        edges.clone(),
                        mem,
                        gain,
                        flow_memory,
                        |i| bufs.loads_i.get(i) as f64,
                        &bufs.arc_frac,
                        flows,
                        prev,
                    ),
                    Some(mf) => {
                        let (ct, ch) = self.masked_coefs(t);
                        kernel::edge_pass_scatter_masked(
                            t,
                            ct,
                            ch,
                            edges.clone(),
                            mf,
                            mem,
                            gain,
                            flow_memory,
                            |i| bufs.loads_i.get(i) as f64,
                            &bufs.arc_frac,
                            flows,
                            prev,
                        )
                    }
                }
                barrier.wait();
                kernel::arc_round_streamed(
                    t,
                    nodes.clone(),
                    seed,
                    round,
                    &bufs.arc_frac,
                    flows,
                    scratch,
                );
                barrier.wait();
                // Same barrier interval as the apply pass: both only read
                // the flows (the copy writes `prev`, the apply writes
                // `loads` — disjoint).
                if matches!(flow_memory, FlowMemory::Rounded) {
                    kernel::prev_from_flows(edges, flows, prev);
                }
                match &stale {
                    None => kernel::apply_discrete(
                        t,
                        nodes,
                        |e| bufs.flows.get(e),
                        &bufs.loads_i,
                        &AtomicsF64(bufs.block_sums),
                    ),
                    Some(sf) => kernel::apply_discrete(
                        t,
                        nodes,
                        |e| bufs.flows.get(e) * (((sf(e >> 6) >> (e & 63)) & 1) ^ 1) as i64,
                        &bufs.loads_i,
                        &AtomicsF64(bufs.block_sums),
                    ),
                }
            }
            FlowPass::Continuous => {
                match &mask {
                    None => kernel::edge_pass_continuous(
                        t,
                        edges,
                        mem,
                        gain,
                        |i| bufs.loads_f.get(i),
                        prev,
                    ),
                    Some(mf) => {
                        let (ct, ch) = self.masked_coefs(t);
                        kernel::edge_pass_continuous_masked(
                            t,
                            ct,
                            ch,
                            edges,
                            mf,
                            mem,
                            gain,
                            |i| bufs.loads_f.get(i),
                            prev,
                        )
                    }
                }
                barrier.wait();
                match &stale {
                    None => kernel::apply_continuous(
                        t,
                        nodes,
                        |e| bufs.prev.get(e),
                        &bufs.loads_f,
                        &AtomicsF64(bufs.block_sums),
                    ),
                    Some(sf) => kernel::apply_continuous(
                        t,
                        nodes,
                        |e| {
                            if (sf(e >> 6) >> (e & 63)) & 1 == 1 {
                                0.0
                            } else {
                                bufs.prev.get(e)
                            }
                        },
                        &bufs.loads_f,
                        &AtomicsF64(bufs.block_sums),
                    ),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sodiff_graph::generators;

    fn tables(graph: &Graph) -> KernelTables {
        KernelTables::new(graph, &Speeds::uniform(graph.node_count()), false, 0.0)
    }

    #[test]
    fn validate_rejects_pairwise_on_edgeless_graphs() {
        let g = generators::path(1);
        assert!(matches!(
            SchemeKernel::validate(Scheme::dimension_exchange(1.0), &g),
            Err(BuildError::NoColoring(_))
        ));
        assert!(matches!(
            SchemeKernel::validate(Scheme::matching_random(1, 1.0), &g),
            Err(BuildError::NoMatching(_))
        ));
        // Diffusion on an edgeless graph is a (trivial) no-op, not an error.
        assert!(SchemeKernel::validate(Scheme::fos(), &g).is_ok());
    }

    #[test]
    fn validate_rejects_bad_lambda() {
        let g = generators::cycle(4);
        assert!(matches!(
            SchemeKernel::validate(Scheme::dimension_exchange(0.0), &g),
            Err(BuildError::InvalidLambda(_))
        ));
        assert!(matches!(
            SchemeKernel::validate(Scheme::matching_round_robin(1.5), &g),
            Err(BuildError::InvalidLambda(_))
        ));
    }

    #[test]
    fn de_plan_sweeps_color_classes() {
        let g = generators::torus2d(4, 4);
        let k = SchemeKernel::new(
            Scheme::dimension_exchange(1.0),
            Mode::Discrete(Rounding::nearest()),
            &g,
            &Speeds::uniform(16),
            FaultSpec::none(),
            LoadSpec::none(),
            ChurnSpec::none(),
        )
        .unwrap();
        let ActivePlan::Sweep { masks, recover } = &k.plan else {
            panic!("DE should sweep masks");
        };
        assert!(!recover, "color classes are masked out, not re-covered");
        assert_eq!(masks.len(), 4, "even 2D torus: 4 color classes");
        // The classes partition the edges.
        let mut seen = vec![0u32; g.edge_count()];
        for words in masks {
            for e in 0..g.edge_count() {
                seen[e] += ((words[e >> 6] >> (e & 63)) & 1) as u32;
            }
        }
        assert!(seen.iter().all(|&c| c == 1));
    }

    #[test]
    fn exchange_coefs_harmonic() {
        let g = generators::path(2);
        let speeds = Speeds::new(vec![1.0, 3.0]);
        let (ct, ch) = exchange_coefs(&g, &speeds, 0.5);
        // λ·s_v/(s_u+s_v) and λ·s_u/(s_u+s_v) for (s_u, s_v) = (1, 3).
        assert!((ct[0] - 0.5 * 3.0 / 4.0).abs() < 1e-15);
        assert!((ch[0] - 0.5 * 1.0 / 4.0).abs() < 1e-15);
    }

    #[test]
    fn de_sequential_round_conserves_and_averages_pairs() {
        // Uniform speeds, λ = 1: each active edge moves (x_u − x_v)/2,
        // rounded. One DE round on a 2-node path with loads (10, 0) moves
        // exactly 5 tokens.
        let g = generators::path(2);
        let speeds = Speeds::uniform(2);
        let k = SchemeKernel::new(
            Scheme::dimension_exchange(1.0),
            Mode::Discrete(Rounding::nearest()),
            &g,
            &speeds,
            FaultSpec::none(),
            LoadSpec::none(),
            ChurnSpec::none(),
        )
        .unwrap();
        let t = tables(&g);
        let mut loads = vec![10i64, 0];
        let mut prev = vec![0.0f64; 1];
        let mut flows = vec![0i64; 1];
        let mut scratch = RoundScratch::new();
        let stats = k.run_discrete_seq(
            &t,
            &g,
            0.0,
            1.0,
            0,
            FlowMemory::Rounded,
            &kernel::cells_i64(&mut loads),
            &kernel::cells_f64(&mut prev),
            &kernel::cells_i64(&mut flows),
            &kernel::cells_f64(&mut []),
            &mut scratch,
        );
        assert_eq!(loads, vec![5, 5]);
        assert_eq!(flows, vec![5]);
        assert_eq!(prev, vec![5.0]);
        assert_eq!(stats.min_transient, 0.0); // node 1: 0 − 0; node 0: 10 − 5
    }

    #[test]
    fn inactive_color_class_moves_nothing() {
        // On a 4-cycle (2 color classes) only the active class's edges
        // carry flow each round.
        let g = generators::cycle(4);
        let speeds = Speeds::uniform(4);
        let k = SchemeKernel::new(
            Scheme::dimension_exchange(1.0),
            Mode::Discrete(Rounding::nearest()),
            &g,
            &speeds,
            FaultSpec::none(),
            LoadSpec::none(),
            ChurnSpec::none(),
        )
        .unwrap();
        let t = tables(&g);
        let mut loads = vec![100i64, 0, 0, 0];
        let mut prev = vec![0.0f64; 4];
        let mut flows = vec![0i64; 4];
        let mut scratch = RoundScratch::new();
        for round in 0..2 {
            k.run_discrete_seq(
                &t,
                &g,
                0.0,
                1.0,
                round,
                FlowMemory::Rounded,
                &kernel::cells_i64(&mut loads),
                &kernel::cells_f64(&mut prev),
                &kernel::cells_i64(&mut flows),
                &kernel::cells_f64(&mut []),
                &mut scratch,
            );
            let ActivePlan::Sweep { masks, .. } = &k.plan else {
                unreachable!()
            };
            let words = &masks[(round % masks.len() as u64) as usize];
            for (e, &f) in flows.iter().enumerate() {
                let active = (words[e >> 6] >> (e & 63)) & 1 == 1;
                if !active {
                    assert_eq!(f, 0, "round {round}: inactive edge {e} moved {f}");
                }
            }
        }
        assert_eq!(loads.iter().sum::<i64>(), 100, "tokens conserved");
    }

    #[test]
    fn crashed_nodes_freeze_loads_and_conserve_total() {
        let g = generators::torus2d(4, 4);
        let faults = FaultSpec::none().with_crash(0.3, 9);
        let live = faults.live_nodes(0, 16);
        assert!(
            live.iter().any(|&l| !l),
            "seed 9 should kill someone in epoch 0"
        );
        let k = SchemeKernel::new(
            Scheme::fos(),
            Mode::Discrete(Rounding::nearest()),
            &g,
            &Speeds::uniform(16),
            faults,
            LoadSpec::none(),
            ChurnSpec::none(),
        )
        .unwrap();
        let t = tables(&g);
        let mut loads: Vec<i64> = (0..16).map(|i| i * 3).collect();
        let total: i64 = loads.iter().sum();
        let frozen = loads.clone();
        let mut prev = vec![0.0f64; t.m];
        let mut flows = vec![0i64; t.m];
        let mut scratch = RoundScratch::new();
        for round in 0..crate::fault::EPOCH_LEN {
            k.run_discrete_seq(
                &t,
                &g,
                0.0,
                1.0,
                round,
                FlowMemory::Rounded,
                &kernel::cells_i64(&mut loads),
                &kernel::cells_f64(&mut prev),
                &kernel::cells_i64(&mut flows),
                &kernel::cells_f64(&mut []),
                &mut scratch,
            );
            assert_eq!(loads.iter().sum::<i64>(), total, "round {round}");
            for (v, &was) in frozen.iter().enumerate() {
                if !live[v] {
                    assert_eq!(loads[v], was, "dead node {v} moved in round {round}");
                }
            }
        }
        assert!(scratch.fault.events.crashes > 0);
    }
}
