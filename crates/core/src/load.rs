//! Deterministic dynamic-workload injection: per-round load deltas drawn
//! on the control thread, plus the windowed steady-state statistics that
//! replace "rounds to convergence" as the figure of merit for runs under
//! sustained traffic.
//!
//! This is the fourth statically dispatched axis of the scheme-kernel
//! layer (`FlowPass × ActivePlan × FaultSpec × LoadSpec`). Every
//! generator draws from a counter-indexed SplitMix64 stream keyed by
//! `(seed ⊕ kind-salt, round)` — the exact salting discipline of
//! [`crate::fault`], shared through [`crate::rng::salted_stream_key`] —
//! and the deltas are planned *and applied by the control thread before
//! the round's flow pass* (before the pool's first barrier), so dynamic
//! runs stay bit-identical sequential vs pooled at any thread count. The
//! four generators of a [`LoadSpec`]:
//!
//! * **poisson** — open-system arrivals and departures: each round draws
//!   two independent Poisson(`rate`) counts; every arrival adds one
//!   token at a uniformly random node and every departure removes one
//!   from a uniformly random node. The net per-round delta is generally
//!   nonzero, which the injected-total accounting in [`LoadEvents`]
//!   tracks so conservation checks still hold
//!   (`total == initial + injected`).
//! * **hotspot** — a periodic burst: every `period` rounds, `burst`
//!   tokens arrive at a fixed node (`node`, taken modulo the node count)
//!   and the same `burst` departs from a random *other* node, modeling a
//!   traffic spike that concentrates load without changing the total.
//! * **diurnal** — a deterministic day/night swing, no seed: round `r`
//!   injects `amp · sin(2π·r/period)` tokens (rounded to the nearest
//!   integer in discrete mode) at the rotating node `r mod n`, so the
//!   system alternates between surplus and deficit phases.
//! * **adversarial** — an injector that fights the balancer: every
//!   `period` rounds it scans the *current* loads, adds `burst` tokens
//!   on the most-loaded node, and drains `burst` from a random other
//!   node. The scan runs only on firing rounds, on the control thread.
//!
//! Generators compose with each other and with every fault channel
//! (churn + traffic together). Injection is oblivious to crash churn: a
//! token arriving at a downed node queues there until the node rejoins
//! (its frozen load still changes only through injection, never through
//! balancing flows).
//!
//! In scenario text the generators compose with `+`:
//! `load=poisson:0.5:7+hotspot:0:100:16:3`; see the grammar table in
//! [`crate::scenario`]. `load=none` (the default) takes exactly the
//! pre-load code paths — one predictable branch per round, which the
//! `sos_load_none` perf gate holds within 2% of the fault-free baseline.
//! A sustained `load=poisson` run adds no per-round sweep beyond the
//! generator draws: steady-state statistics come from the already-fused
//! per-round `max_dev` of [`crate::kernel::LoadStats`], accumulated by
//! [`SteadyTracker`] and reported as [`SteadyStats`] (mean/max/p99 over
//! the stop condition's window).

use crate::error::{BuildError, ParseError};
use crate::kernel::{BufF64, BufI64};
use crate::rng::{nth_u64, salted_stream_key, unit_f64};
use std::fmt;
use std::str::FromStr;

/// Per-kind seed salts so generators sharing one user seed decorrelate
/// (ASCII-styled, like the fault channels').
const POISSON_SALT: u64 = 0x706f_6973_736f_6e5f;
const HOTSPOT_SALT: u64 = 0x686f_7473_706f_745f;
const ADVERSE_SALT: u64 = 0x6164_7665_7273_655f;

/// Upper bound on the Poisson rate (expected events per round); keeps
/// the per-round draw loop short and the arithmetic exact.
pub const MAX_RATE: f64 = 1024.0;

/// Upper bound on burst sizes and the diurnal amplitude; keeps every
/// delta exactly representable in both `i64` and `f64`.
pub const MAX_BURST: i64 = 1_000_000_000;

/// Hard safety cap on one round's Poisson count (the rate bound makes
/// reaching it astronomically unlikely).
const MAX_EVENTS_PER_DRAW: u64 = 4096;

/// The Poisson arrival/departure generator: `load=poisson:RATE:SEED`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PoissonLoad {
    /// Expected arrivals per round (= expected departures per round),
    /// a finite value in `[0, MAX_RATE]`.
    pub rate: f64,
    /// Seed of the generator's counter-indexed draw stream.
    pub seed: u64,
}

/// The periodic hotspot burst: `load=hotspot:NODE:BURST:PERIOD:SEED`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HotspotLoad {
    /// Target node of the burst (taken modulo the node count).
    pub node: usize,
    /// Tokens moved per firing, in `[1, MAX_BURST]`.
    pub burst: i64,
    /// Firing period in rounds (fires when `round % period == 0`).
    pub period: u64,
    /// Seed of the donor-node draw stream.
    pub seed: u64,
}

/// The deterministic diurnal swing: `load=diurnal:AMP:PERIOD`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiurnalLoad {
    /// Peak injection amplitude in tokens, a finite value in
    /// `[0, MAX_BURST]`.
    pub amp: f64,
    /// Period of the sine swing in rounds.
    pub period: u64,
}

/// The adversarial most-loaded-region injector:
/// `load=adversarial:BURST:PERIOD:SEED`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdversarialLoad {
    /// Tokens piled onto the current argmax node per firing, in
    /// `[1, MAX_BURST]`.
    pub burst: i64,
    /// Firing period in rounds.
    pub period: u64,
    /// Seed of the donor-node draw stream.
    pub seed: u64,
}

/// A deterministic dynamic-workload plan: which load generators are
/// active and with what parameters. See the module docs for the
/// semantics of each generator. [`LoadSpec::none`] (the default)
/// injects nothing and keeps every run on the pre-load code paths.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LoadSpec {
    /// Poisson arrivals/departures at random nodes.
    pub poisson: Option<PoissonLoad>,
    /// Periodic burst onto a fixed node.
    pub hotspot: Option<HotspotLoad>,
    /// Deterministic sinusoidal surplus/deficit swing.
    pub diurnal: Option<DiurnalLoad>,
    /// Periodic burst onto the currently most-loaded node.
    pub adversarial: Option<AdversarialLoad>,
}

impl LoadSpec {
    /// The empty plan: no injection, pre-load code paths.
    pub fn none() -> Self {
        Self::default()
    }

    /// Returns `true` if no generator is active.
    pub fn is_none(&self) -> bool {
        self.poisson.is_none()
            && self.hotspot.is_none()
            && self.diurnal.is_none()
            && self.adversarial.is_none()
    }

    /// Adds a Poisson arrival/departure generator.
    pub fn with_poisson(mut self, rate: f64, seed: u64) -> Self {
        self.poisson = Some(PoissonLoad { rate, seed });
        self
    }

    /// Adds a periodic hotspot burst.
    pub fn with_hotspot(mut self, node: usize, burst: i64, period: u64, seed: u64) -> Self {
        self.hotspot = Some(HotspotLoad {
            node,
            burst,
            period,
            seed,
        });
        self
    }

    /// Adds a deterministic diurnal swing.
    pub fn with_diurnal(mut self, amp: f64, period: u64) -> Self {
        self.diurnal = Some(DiurnalLoad { amp, period });
        self
    }

    /// Adds an adversarial most-loaded-node injector.
    pub fn with_adversarial(mut self, burst: i64, period: u64, seed: u64) -> Self {
        self.adversarial = Some(AdversarialLoad {
            burst,
            period,
            seed,
        });
        self
    }

    /// Validates every generator's parameters (finite rates and
    /// amplitudes in range, positive bursts and periods).
    ///
    /// # Errors
    ///
    /// [`BuildError::InvalidLoad`] naming the offending generator.
    pub fn check(&self) -> Result<(), BuildError> {
        let bad = |why: String| Err(BuildError::InvalidLoad(why));
        if let Some(PoissonLoad { rate, .. }) = self.poisson {
            if !rate.is_finite() || !(0.0..=MAX_RATE).contains(&rate) {
                return bad(format!("poisson rate {rate} outside [0, {MAX_RATE}]"));
            }
        }
        if let Some(HotspotLoad { burst, period, .. }) = self.hotspot {
            if !(1..=MAX_BURST).contains(&burst) {
                return bad(format!("hotspot burst {burst} outside [1, {MAX_BURST}]"));
            }
            if period == 0 {
                return bad("hotspot period must be positive".into());
            }
        }
        if let Some(DiurnalLoad { amp, period }) = self.diurnal {
            if !amp.is_finite() || !(0.0..=MAX_BURST as f64).contains(&amp) {
                return bad(format!("diurnal amplitude {amp} outside [0, {MAX_BURST}]"));
            }
            if period == 0 {
                return bad("diurnal period must be positive".into());
            }
        }
        if let Some(AdversarialLoad { burst, period, .. }) = self.adversarial {
            if !(1..=MAX_BURST).contains(&burst) {
                return bad(format!(
                    "adversarial burst {burst} outside [1, {MAX_BURST}]"
                ));
            }
            if period == 0 {
                return bad("adversarial period must be positive".into());
            }
        }
        Ok(())
    }
}

impl fmt::Display for LoadSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_none() {
            return write!(f, "none");
        }
        let mut sep = "";
        if let Some(PoissonLoad { rate, seed }) = self.poisson {
            write!(f, "poisson:{rate}:{seed}")?;
            sep = "+";
        }
        if let Some(HotspotLoad {
            node,
            burst,
            period,
            seed,
        }) = self.hotspot
        {
            write!(f, "{sep}hotspot:{node}:{burst}:{period}:{seed}")?;
            sep = "+";
        }
        if let Some(DiurnalLoad { amp, period }) = self.diurnal {
            write!(f, "{sep}diurnal:{amp}:{period}")?;
            sep = "+";
        }
        if let Some(AdversarialLoad {
            burst,
            period,
            seed,
        }) = self.adversarial
        {
            write!(f, "{sep}adversarial:{burst}:{period}:{seed}")?;
        }
        Ok(())
    }
}

impl FromStr for LoadSpec {
    type Err = ParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s == "none" {
            return Ok(Self::none());
        }
        let bad = |why: String| ParseError::new(format!("in load '{s}': {why}"));
        fn num<T: FromStr>(field: &str, what: &str) -> Result<T, String> {
            field.parse().map_err(|_| format!("bad {what} '{field}'"))
        }
        let mut spec = Self::none();
        for part in s.split('+') {
            let fields: Vec<&str> = part.split(':').collect();
            let kind = fields[0];
            let arity = |shape: &str| bad(format!("'{part}' should be {shape}"));
            match kind {
                "poisson" => {
                    let [_, rate, seed] = fields[..] else {
                        return Err(arity("poisson:<rate>:<seed>"));
                    };
                    if spec.poisson.is_some() {
                        return Err(bad("duplicate load kind 'poisson'".into()));
                    }
                    spec.poisson = Some(PoissonLoad {
                        rate: num(rate, "rate").map_err(bad)?,
                        seed: num(seed, "seed").map_err(bad)?,
                    });
                }
                "hotspot" => {
                    let [_, node, burst, period, seed] = fields[..] else {
                        return Err(arity("hotspot:<node>:<burst>:<period>:<seed>"));
                    };
                    if spec.hotspot.is_some() {
                        return Err(bad("duplicate load kind 'hotspot'".into()));
                    }
                    spec.hotspot = Some(HotspotLoad {
                        node: num(node, "node").map_err(bad)?,
                        burst: num(burst, "burst").map_err(bad)?,
                        period: num(period, "period").map_err(bad)?,
                        seed: num(seed, "seed").map_err(bad)?,
                    });
                }
                "diurnal" => {
                    let [_, amp, period] = fields[..] else {
                        return Err(arity("diurnal:<amplitude>:<period>"));
                    };
                    if spec.diurnal.is_some() {
                        return Err(bad("duplicate load kind 'diurnal'".into()));
                    }
                    spec.diurnal = Some(DiurnalLoad {
                        amp: num(amp, "amplitude").map_err(bad)?,
                        period: num(period, "period").map_err(bad)?,
                    });
                }
                "adversarial" => {
                    let [_, burst, period, seed] = fields[..] else {
                        return Err(arity("adversarial:<burst>:<period>:<seed>"));
                    };
                    if spec.adversarial.is_some() {
                        return Err(bad("duplicate load kind 'adversarial'".into()));
                    }
                    spec.adversarial = Some(AdversarialLoad {
                        burst: num(burst, "burst").map_err(bad)?,
                        period: num(period, "period").map_err(bad)?,
                        seed: num(seed, "seed").map_err(bad)?,
                    });
                }
                other => {
                    return Err(bad(format!(
                        "unknown load kind '{other}' \
                         (poisson, hotspot, diurnal, adversarial)"
                    )))
                }
            }
        }
        // The same range checks as `LoadSpec::check`, surfaced at parse
        // time with the line-anchored message shape of scenario errors.
        if let Err(BuildError::InvalidLoad(why)) = spec.check() {
            return Err(bad(why));
        }
        Ok(spec)
    }
}

/// Counts and totals of the injection a run actually experienced,
/// reported in [`crate::RunReport::load`]. All zero for `load=none`
/// runs. The counters accumulate over the simulator's lifetime (across
/// repeated `run_until` calls on the same [`crate::Simulator`]).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LoadEvents {
    /// Positive injection events applied (Poisson arrivals, burst
    /// inflows, diurnal surplus rounds).
    pub arrivals: u64,
    /// Negative injection events applied (Poisson departures, burst
    /// outflows, diurnal deficit rounds).
    pub departures: u64,
    /// Cumulative net injected tokens: the exact amount by which the
    /// live total exceeds the initial total, so conservation checks
    /// become `total == initial + injected`. Integer-valued in discrete
    /// mode (every delta is a whole token count).
    pub injected: f64,
}

/// Samples a Poisson(`rate`) count from `key`'s draw stream starting at
/// counter `*k` (advanced past the draws used): the number of unit-rate
/// exponential inter-arrival gaps that fit into `rate`, accumulated in
/// log space so large rates stay stable.
fn poisson_count(key: u64, k: &mut u64, rate: f64) -> u64 {
    let mut count = 0u64;
    let mut acc = 0.0f64;
    loop {
        let u = unit_f64(nth_u64(key, *k));
        *k += 1;
        // u ∈ [0, 1) so 1 − u ∈ (0, 1] and the log is finite and ≤ 0.
        acc -= (1.0 - u).ln();
        if acc > rate || count >= MAX_EVENTS_PER_DRAW {
            return count;
        }
        count += 1;
    }
}

/// Draws a uniformly random node `≠ exclude` from one stream word
/// (exact distinct sampling, no rejection loop); requires `n ≥ 2`.
fn other_node(word: u64, n: usize, exclude: usize) -> usize {
    let d = (word % (n as u64 - 1)) as usize;
    if d >= exclude {
        d + 1
    } else {
        d
    }
}

/// Control-thread injection state carried between rounds: the round's
/// planned deltas and the accumulated event counters. Lives in
/// [`crate::scheme_kernel::RoundScratch`], so the sequential executor
/// and the pool's control thread share one code path.
#[derive(Default)]
pub(crate) struct LoadState {
    /// The round's injection events as `(node, delta)` pairs, planned by
    /// [`LoadState::plan_round`] and consumed by the `apply_*` methods.
    /// Deltas are exact whole-token values in discrete mode (the
    /// diurnal generator rounds at plan time).
    deltas: Vec<(usize, f64)>,
    /// Accumulated event counters and the injected-total account.
    pub events: LoadEvents,
}

impl LoadState {
    /// Plans one round's injection events: draws every active
    /// generator's deltas from its counter-indexed stream and records
    /// them (with the event accounting) for the apply step. `peek`
    /// reads a node's current load as `f64` — it is only called on
    /// adversarial firing rounds. Control-thread only; must run before
    /// the round's flow pass in both executors.
    pub fn plan_round(
        &mut self,
        spec: &LoadSpec,
        round: u64,
        n: usize,
        discrete: bool,
        peek: impl Fn(usize) -> f64,
    ) {
        self.deltas.clear();
        let deltas = &mut self.deltas;
        let events = &mut self.events;
        let mut push = |node: usize, delta: f64| {
            if delta > 0.0 {
                events.arrivals += 1;
            } else {
                events.departures += 1;
            }
            events.injected += delta;
            deltas.push((node, delta));
        };
        if let Some(PoissonLoad { rate, seed }) = spec.poisson {
            if rate > 0.0 {
                let key = salted_stream_key(seed, POISSON_SALT, round);
                let mut k = 0u64;
                let arrivals = poisson_count(key, &mut k, rate);
                for _ in 0..arrivals {
                    let node = (nth_u64(key, k) % n as u64) as usize;
                    k += 1;
                    push(node, 1.0);
                }
                let departures = poisson_count(key, &mut k, rate);
                for _ in 0..departures {
                    let node = (nth_u64(key, k) % n as u64) as usize;
                    k += 1;
                    push(node, -1.0);
                }
            }
        }
        if let Some(HotspotLoad {
            node,
            burst,
            period,
            seed,
        }) = spec.hotspot
        {
            if round.is_multiple_of(period) && n > 1 {
                let target = node % n;
                let key = salted_stream_key(seed, HOTSPOT_SALT, round);
                let donor = other_node(nth_u64(key, 0), n, target);
                push(target, burst as f64);
                push(donor, -(burst as f64));
            }
        }
        if let Some(DiurnalLoad { amp, period }) = spec.diurnal {
            let phase = (round % period) as f64 / period as f64;
            let raw = amp * (std::f64::consts::TAU * phase).sin();
            let delta = if discrete { raw.round() } else { raw };
            if delta != 0.0 {
                push((round % n as u64) as usize, delta);
            }
        }
        if let Some(AdversarialLoad {
            burst,
            period,
            seed,
        }) = spec.adversarial
        {
            if round.is_multiple_of(period) && n > 1 {
                let mut hot = 0usize;
                let mut best = peek(0);
                for i in 1..n {
                    let x = peek(i);
                    if x > best {
                        best = x;
                        hot = i;
                    }
                }
                let key = salted_stream_key(seed, ADVERSE_SALT, round);
                let donor = other_node(nth_u64(key, 0), n, hot);
                push(hot, burst as f64);
                push(donor, -(burst as f64));
            }
        }
    }

    /// Applies the planned deltas to discrete loads behind any
    /// [`BufI64`] storage: the sequential `Cell` slices, the pool's
    /// atomic slots (control-thread only, before the round's first
    /// barrier — the workers are parked, so `Relaxed` is exclusive
    /// access), and the compact `i32` twins of either. Every delta is
    /// integral in discrete mode, so the cast is exact, and the
    /// read/add/write sequence is the same arithmetic in the same event
    /// order on every storage, keeping pooled runs bit-identical to
    /// sequential ones.
    pub fn apply_i64<L: BufI64>(&self, loads: &L) {
        for &(node, delta) in &self.deltas {
            loads.set(node, loads.get(node) + delta as i64);
        }
    }

    /// Applies the planned deltas to continuous loads behind any
    /// [`BufF64`] storage; same exclusivity and bit-identity contract as
    /// [`LoadState::apply_i64`].
    pub fn apply_f64<L: BufF64>(&self, loads: &L) {
        for &(node, delta) in &self.deltas {
            loads.set(node, loads.get(node) + delta);
        }
    }
}

/// Windowed steady-state deviation statistics of a dynamic run,
/// reported in [`crate::RunReport::steady`] by the `steady:`/`horizon:`
/// stop modes: the mean, max, and 99th percentile of the fused
/// per-round `max_dev` (from [`crate::kernel::LoadStats`], so no extra
/// per-round sweep) over the window the run ended on.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SteadyStats {
    /// Rounds the statistics cover (the trailing window for `steady:`,
    /// the whole horizon for `horizon:`; shorter if the run ended
    /// early).
    pub window: usize,
    /// Mean per-round `max_dev` over the window.
    pub mean_dev: f64,
    /// Largest per-round `max_dev` over the window.
    pub max_dev: f64,
    /// 99th-percentile per-round `max_dev` over the window.
    pub p99_dev: f64,
}

/// Accumulates the per-round fused `max_dev` for the steady-state stop
/// modes and computes [`SteadyStats`] at the end of the run.
///
/// In *steady* mode the ring holds the last `2·window` samples and
/// [`SteadyTracker::is_steady`] compares the trailing window's mean
/// against the preceding window's: once the newer window stops
/// improving on the older one by more than 1%, the deviation process is
/// declared steady. In *horizon* mode the ring holds the whole horizon
/// and the steadiness check never fires. Both maintain the window sums
/// incrementally (O(1) per round).
#[derive(Clone)]
pub(crate) struct SteadyTracker {
    /// The statistics window (`W` for steady, the horizon for horizon).
    window: usize,
    /// Sample ring: capacity `2W` (steady) or `W` (horizon).
    ring: Vec<f64>,
    pos: usize,
    len: usize,
    /// Running sum of the newest `window` samples.
    newer_sum: f64,
    /// Running sum of the preceding `window` samples (steady mode).
    older_sum: f64,
    /// Whether the steadiness trigger is evaluated (steady mode).
    check: bool,
}

impl SteadyTracker {
    /// A tracker for `stop=steady:window`.
    pub fn steady(window: usize) -> Self {
        Self::with_capacity(window, 2 * window, true)
    }

    /// A tracker for `stop=horizon:rounds`.
    pub fn horizon(rounds: usize) -> Self {
        Self::with_capacity(rounds, rounds, false)
    }

    /// Whether this tracker evaluates the steadiness trigger (steady
    /// mode) rather than recording a fixed horizon.
    pub fn checks_steadiness(&self) -> bool {
        self.check
    }

    /// The ring and running sums as raw parts
    /// `(window, ring, pos, len, newer_sum, older_sum, check)` for
    /// checkpointing.
    #[allow(clippy::type_complexity)]
    pub fn raw_parts(&self) -> (usize, &[f64], usize, usize, f64, f64, bool) {
        (
            self.window,
            &self.ring,
            self.pos,
            self.len,
            self.newer_sum,
            self.older_sum,
            self.check,
        )
    }

    /// Rebuilds a tracker from checkpointed [`Self::raw_parts`]; returns
    /// `None` when the parts are not a valid ring.
    pub fn from_raw_parts(
        window: usize,
        ring: Vec<f64>,
        pos: usize,
        len: usize,
        newer_sum: f64,
        older_sum: f64,
        check: bool,
    ) -> Option<Self> {
        if ring.is_empty() || pos >= ring.len() || len > ring.len() || window == 0 {
            return None;
        }
        Some(Self {
            window,
            ring,
            pos,
            len,
            newer_sum,
            older_sum,
            check,
        })
    }

    fn with_capacity(window: usize, capacity: usize, check: bool) -> Self {
        Self {
            window,
            ring: vec![0.0; capacity.max(1)],
            pos: 0,
            len: 0,
            newer_sum: 0.0,
            older_sum: 0.0,
            check,
        }
    }

    /// Feeds one round's fused `max_dev`.
    pub fn push(&mut self, max_dev: f64) {
        let cap = self.ring.len();
        if self.len == cap {
            // The slot about to be overwritten leaves the older window
            // (steady mode) or the horizon window.
            self.older_sum -= self.ring[self.pos];
        }
        if self.len >= self.window {
            // The sample pushed `window` rounds ago moves newer → older.
            let moving = self.ring[(self.pos + cap - self.window) % cap];
            self.newer_sum -= moving;
            self.older_sum += moving;
        }
        self.ring[self.pos] = max_dev;
        self.newer_sum += max_dev;
        self.pos = (self.pos + 1) % cap;
        self.len = (self.len + 1).min(cap);
    }

    /// Whether the deviation process has reached steady state: the ring
    /// is full and the trailing window's mean no longer improves on the
    /// preceding window's by more than 1%. Always `false` in horizon
    /// mode.
    pub fn is_steady(&self) -> bool {
        self.check && self.len == self.ring.len() && self.newer_sum >= 0.99 * self.older_sum
    }

    /// The statistics over the trailing window (recomputed exactly from
    /// the stored samples, not the running sums). `None` before any
    /// sample arrived.
    pub fn stats(&self) -> Option<SteadyStats> {
        if self.len == 0 {
            return None;
        }
        let cap = self.ring.len();
        let count = self.len.min(self.window);
        let mut samples: Vec<f64> = (0..count)
            .map(|back| self.ring[(self.pos + cap - 1 - back) % cap])
            .collect();
        samples.sort_by(f64::total_cmp);
        let mean = samples.iter().sum::<f64>() / count as f64;
        let p99_idx = ((count as f64 * 0.99).ceil() as usize).clamp(1, count) - 1;
        Some(SteadyStats {
            window: count,
            mean_dev: mean,
            max_dev: samples[count - 1],
            p99_dev: samples[p99_idx],
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicI64, Ordering::Relaxed};

    #[test]
    fn display_roundtrip() {
        for spec in [
            LoadSpec::none(),
            LoadSpec::none().with_poisson(0.5, 7),
            LoadSpec::none().with_hotspot(3, 100, 16, 9),
            LoadSpec::none().with_diurnal(8.5, 64),
            LoadSpec::none().with_adversarial(50, 32, 5),
            LoadSpec::none()
                .with_poisson(2.0, 1)
                .with_hotspot(0, 10, 4, 2)
                .with_diurnal(3.0, 48)
                .with_adversarial(7, 8, 4),
        ] {
            let text = spec.to_string();
            assert_eq!(text.parse::<LoadSpec>().unwrap(), spec, "{text}");
        }
        assert_eq!(LoadSpec::none().to_string(), "none");
        assert_eq!(
            LoadSpec::none().with_poisson(0.25, 9).to_string(),
            "poisson:0.25:9"
        );
    }

    #[test]
    fn parse_errors_carry_context() {
        for (text, needle) in [
            ("poisson:0.1", "should be poisson:<rate>:<seed>"),
            ("poisson:0.1:2:3", "should be poisson:<rate>:<seed>"),
            ("poisson:x:1", "bad rate"),
            ("poisson:-0.5:1", "outside [0, 1024]"),
            ("poisson:nan:1", "outside [0, 1024]"),
            ("poisson:0.1:z", "bad seed"),
            (
                "hotspot:0:5:4",
                "should be hotspot:<node>:<burst>:<period>:<seed>",
            ),
            ("hotspot:0:0:4:1", "outside [1, 1000000000]"),
            ("hotspot:0:5:0:1", "period must be positive"),
            ("diurnal:2", "should be diurnal:<amplitude>:<period>"),
            ("diurnal:inf:4", "outside [0, 1000000000]"),
            ("diurnal:2:0", "period must be positive"),
            (
                "adversarial:5:4",
                "should be adversarial:<burst>:<period>:<seed>",
            ),
            ("adversarial:-1:4:1", "outside [1, 1000000000]"),
            ("meteor:0.1:1", "unknown load kind"),
            ("poisson:0.1:1+poisson:0.2:2", "duplicate load kind"),
        ] {
            let err = text.parse::<LoadSpec>().unwrap_err();
            assert!(
                err.message.contains(needle),
                "{text}: {} should contain {needle}",
                err.message
            );
        }
    }

    #[test]
    fn check_rejects_out_of_range_parameters() {
        assert!(LoadSpec::none().check().is_ok());
        assert!(LoadSpec::none().with_poisson(0.0, 1).check().is_ok());
        assert!(LoadSpec::none().with_poisson(MAX_RATE, 1).check().is_ok());
        let err = LoadSpec::none().with_poisson(-1.0, 1).check().unwrap_err();
        assert!(matches!(err, BuildError::InvalidLoad(_)));
        assert!(err.to_string().contains("poisson"));
        assert!(LoadSpec::none().with_poisson(f64::NAN, 1).check().is_err());
        assert!(LoadSpec::none().with_hotspot(0, 0, 4, 1).check().is_err());
        assert!(LoadSpec::none().with_hotspot(0, 5, 0, 1).check().is_err());
        assert!(LoadSpec::none().with_diurnal(-2.0, 4).check().is_err());
        assert!(LoadSpec::none().with_diurnal(2.0, 0).check().is_err());
        assert!(LoadSpec::none()
            .with_adversarial(MAX_BURST + 1, 4, 1)
            .check()
            .is_err());
        assert!(LoadSpec::none().with_adversarial(5, 0, 1).check().is_err());
    }

    #[test]
    fn poisson_plan_is_deterministic_and_rate_plausible() {
        let spec = LoadSpec::none().with_poisson(2.0, 11);
        let mut a = LoadState::default();
        let mut b = LoadState::default();
        let mut arrivals = 0u64;
        for round in 0..200 {
            a.plan_round(&spec, round, 36, true, |_| 0.0);
            b.plan_round(&spec, round, 36, true, |_| 0.0);
            assert_eq!(a.deltas, b.deltas, "round {round}");
            arrivals = a.events.arrivals;
        }
        // Rate 2 over 200 rounds: the arrival count concentrates near 400.
        assert!(
            (280..=520).contains(&arrivals),
            "{arrivals} arrivals at rate 2"
        );
        // Injected stays integral and equals arrivals − departures.
        assert_eq!(
            a.events.injected,
            a.events.arrivals as f64 - a.events.departures as f64
        );
        // Rate 0 never fires.
        let quiet = LoadSpec::none().with_poisson(0.0, 11);
        let mut c = LoadState::default();
        c.plan_round(&quiet, 0, 36, true, |_| 0.0);
        assert!(c.deltas.is_empty());
    }

    #[test]
    fn hotspot_fires_on_period_and_conserves() {
        let spec = LoadSpec::none().with_hotspot(40, 25, 8, 3);
        let mut state = LoadState::default();
        let n = 16;
        for round in 0..32 {
            state.plan_round(&spec, round, n, true, |_| 0.0);
            if round % 8 == 0 {
                assert_eq!(state.deltas.len(), 2, "round {round}");
                let (target, inflow) = state.deltas[0];
                let (donor, outflow) = state.deltas[1];
                assert_eq!(target, 40 % n, "node is taken modulo n");
                assert_eq!(inflow, 25.0);
                assert_eq!(outflow, -25.0);
                assert_ne!(donor, target);
            } else {
                assert!(state.deltas.is_empty(), "round {round}");
            }
        }
        assert_eq!(state.events.injected, 0.0, "bursts conserve the total");
        assert_eq!(state.events.arrivals, 4);
        assert_eq!(state.events.departures, 4);
    }

    #[test]
    fn diurnal_swings_and_rounds_in_discrete_mode() {
        let spec = LoadSpec::none().with_diurnal(10.0, 8);
        let mut state = LoadState::default();
        let mut saw_surplus = false;
        let mut saw_deficit = false;
        for round in 0..8 {
            state.plan_round(&spec, round, 4, true, |_| 0.0);
            for &(_, delta) in &state.deltas {
                assert_eq!(delta, delta.round(), "discrete deltas are integral");
                saw_surplus |= delta > 0.0;
                saw_deficit |= delta < 0.0;
            }
        }
        assert!(saw_surplus && saw_deficit, "a full period swings both ways");
        // A full sine period integrates to (near) zero injected load.
        assert_eq!(state.events.injected, 0.0);
        // Continuous mode keeps the fractional amplitude.
        let mut c = LoadState::default();
        c.plan_round(&spec, 1, 4, false, |_| 0.0);
        let (node, delta) = c.deltas[0];
        assert_eq!(node, 1, "delta lands on the rotating node");
        assert!((delta - 10.0 * (std::f64::consts::TAU / 8.0).sin()).abs() < 1e-12);
    }

    #[test]
    fn adversarial_targets_the_most_loaded_node() {
        let spec = LoadSpec::none().with_adversarial(30, 4, 7);
        let loads = [5.0, 80.0, 2.0, 80.0, 1.0];
        let mut state = LoadState::default();
        state.plan_round(&spec, 0, loads.len(), true, |i| loads[i]);
        let (hot, inflow) = state.deltas[0];
        let (donor, outflow) = state.deltas[1];
        assert_eq!(hot, 1, "first argmax wins ties");
        assert_eq!(inflow, 30.0);
        assert_eq!(outflow, -30.0);
        assert_ne!(donor, hot);
        // Off-period rounds stay quiet (and never touch `peek`).
        state.plan_round(&spec, 1, loads.len(), true, |_| unreachable!());
        assert!(state.deltas.is_empty());
    }

    #[test]
    fn applied_deltas_match_across_representations() {
        let spec = LoadSpec::none()
            .with_poisson(1.5, 3)
            .with_hotspot(2, 10, 2, 4);
        let n = 9;
        let mut seq = vec![100i64; n];
        let atomics: Vec<AtomicI64> = (0..n).map(|_| AtomicI64::new(100)).collect();
        let mut state = LoadState::default();
        for round in 0..24 {
            state.plan_round(&spec, round, n, true, |i| seq[i] as f64);
            state.apply_i64(&crate::kernel::cells_i64(&mut seq));
            state.apply_i64(&crate::kernel::AtomicsI64(&atomics));
        }
        let pooled: Vec<i64> = atomics.iter().map(|a| a.load(Relaxed)).collect();
        assert_eq!(seq, pooled);
        // The injected account matches the realized totals exactly.
        let total: i64 = seq.iter().sum();
        assert_eq!(total as f64, 100.0 * n as f64 + state.events.injected);
    }

    #[test]
    fn steady_tracker_detects_flat_windows_and_reports_stats() {
        let mut t = SteadyTracker::steady(4);
        // Steep decay: every newer window improves by far more than 1%.
        for x in [100.0, 80.0, 60.0, 40.0, 20.0, 10.0, 5.0, 2.0] {
            t.push(x);
            assert!(!t.is_steady(), "still improving at {x}");
        }
        // Flat tail: the trigger compares the newest window against the
        // one before it, so it trips only once *both* windows are flat —
        // after 2·window − 1 flat rounds here (the older window still
        // holds decaying samples until then).
        for _ in 0..6 {
            t.push(2.0);
            assert!(!t.is_steady(), "older window still decaying");
        }
        t.push(2.0);
        assert!(t.is_steady());
        let stats = t.stats().unwrap();
        assert_eq!(stats.window, 4);
        assert_eq!(stats.mean_dev, 2.0);
        assert_eq!(stats.max_dev, 2.0);
        assert_eq!(stats.p99_dev, 2.0);
    }

    #[test]
    fn horizon_tracker_covers_the_whole_run() {
        let mut t = SteadyTracker::horizon(10);
        for i in 0..10 {
            t.push(i as f64);
            assert!(!t.is_steady(), "horizon mode never self-stops");
        }
        let stats = t.stats().unwrap();
        assert_eq!(stats.window, 10);
        assert_eq!(stats.mean_dev, 4.5);
        assert_eq!(stats.max_dev, 9.0);
        assert_eq!(stats.p99_dev, 9.0);
        // A short run reports over what it saw.
        let mut t = SteadyTracker::horizon(10);
        t.push(3.0);
        t.push(5.0);
        let stats = t.stats().unwrap();
        assert_eq!((stats.window, stats.mean_dev, stats.max_dev), (2, 4.0, 5.0));
        assert!(SteadyTracker::horizon(5).stats().is_none());
    }
}
