//! Deterministic fault injection: node churn, edge drops, load shocks,
//! and stale-flow (lossy apply) perturbation.
//!
//! Every fault is drawn from a counter-indexed SplitMix64 stream (the
//! [`crate::rng`] design), keyed by `(seed ⊕ kind-salt, epoch-or-round,
//! id)` — no serial RNG state, so the sequential executor and the worker
//! pool see the *same* perturbations in the same order and stay
//! bit-identical. The four channels of a [`FaultSpec`]:
//!
//! * **crash** — node churn on fixed epochs of [`EPOCH_LEN`] rounds:
//!   each node is independently down for a whole epoch with probability
//!   `p` (fresh draws per epoch, so nodes crash *and* rejoin at epoch
//!   boundaries). A downed node's incident edges are masked out, which
//!   freezes its load; dimension-exchange color classes and round-robin
//!   matching families are repaired incrementally
//!   ([`sodiff_graph::matching::repair_matching`] /
//!   [`sodiff_graph::matching::mask_dead_edges`]) instead of recomputed.
//!   Contrast with the live-topology churn axis ([`crate::churn`]): a
//!   crash-frozen node keeps its slot and **returns with its frozen
//!   load**, whereas a churn departure hands its load away and a churn
//!   re-arrival starts from the configured initial load — so the two
//!   channels compose without double-counting in the conservation
//!   invariant (see the audit note on [`crate::ChurnEvents`]).
//! * **edgedrop** — each edge independently drops (carries no flow) for
//!   one round with probability `p`, drawn fresh every round.
//! * **shock** — with probability `p` per round, a hotspot burst moves a
//!   quarter of a random live donor's load to a random other live node
//!   before the round's flow computation. Shocks conserve the total
//!   load, so the balanced ideal is unchanged.
//! * **stale** — each edge's *applied* flow is independently lost for
//!   one round with probability `p`: the flow is computed and recorded
//!   in the flow memory as usual, but the loads are not updated (a lossy
//!   apply, as if the message carrying the tokens was dropped after
//!   both endpoints noted it). Stale losses are symmetric, so they also
//!   conserve the total.
//!
//! In scenario text the channels compose with `+`:
//! `faults=crash:0.05:7+edgedrop:0.01:9+shock:0.2:3+stale:0.02:5`; see
//! the grammar table in [`crate::scenario`]. `faults=none` (the default)
//! takes exactly the unperturbed code paths — the hook costs one
//! predictable branch per round, which the `sos_faults_none` perf gate
//! holds within 2% of the clean baseline.

use std::fmt;
use std::str::FromStr;

use sodiff_graph::{matching, Graph};

use crate::error::{BuildError, ParseError};
use crate::rng::{nth_u64, salted_stream_key, unit_f64};

/// Length of a crash epoch in rounds: the node churn schedule redraws
/// which nodes are down every `EPOCH_LEN` rounds, so crash/rejoin events
/// happen only at round numbers divisible by `EPOCH_LEN`.
pub const EPOCH_LEN: u64 = 16;

/// Per-kind seed salts so channels sharing one user seed decorrelate.
const CRASH_SALT: u64 = 0x6372_6173_685f_9d1c;
const DROP_SALT: u64 = 0x6564_6765_6472_6f70;
const SHOCK_SALT: u64 = 0x7368_6f63_6b5f_5f5f;
const STALE_SALT: u64 = 0x7374_616c_655f_5f5f;

/// One fault channel: an activation probability (or per-round rate) and
/// the RNG seed of its draw stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultChannel {
    /// Activation probability in `[0, 1]`.
    pub p: f64,
    /// Seed of the channel's counter-indexed draw stream.
    pub seed: u64,
}

/// A deterministic fault-injection plan: which perturbation channels are
/// active and with what probability/seed. See the module docs for the
/// semantics of each channel. [`FaultSpec::none`] (the default) injects
/// nothing and keeps every run on the unperturbed code paths.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FaultSpec {
    /// Node crash/rejoin churn on [`EPOCH_LEN`]-round epochs.
    pub crash: Option<FaultChannel>,
    /// Per-round independent edge drops.
    pub edgedrop: Option<FaultChannel>,
    /// Per-round load shocks (hotspot bursts).
    pub shock: Option<FaultChannel>,
    /// Per-round stale-flow (lossy apply) injection.
    pub stale: Option<FaultChannel>,
}

impl FaultSpec {
    /// The empty plan: no faults, unperturbed code paths.
    pub fn none() -> Self {
        Self::default()
    }

    /// Returns `true` if no channel is active.
    pub fn is_none(&self) -> bool {
        self.crash.is_none()
            && self.edgedrop.is_none()
            && self.shock.is_none()
            && self.stale.is_none()
    }

    /// Adds a node crash/rejoin channel (probability `p`, seed `seed`).
    pub fn with_crash(mut self, p: f64, seed: u64) -> Self {
        self.crash = Some(FaultChannel { p, seed });
        self
    }

    /// Adds a per-round edge-drop channel.
    pub fn with_edgedrop(mut self, p: f64, seed: u64) -> Self {
        self.edgedrop = Some(FaultChannel { p, seed });
        self
    }

    /// Adds a per-round load-shock channel (rate `p`).
    pub fn with_shock(mut self, p: f64, seed: u64) -> Self {
        self.shock = Some(FaultChannel { p, seed });
        self
    }

    /// Adds a per-round stale-flow channel.
    pub fn with_stale(mut self, p: f64, seed: u64) -> Self {
        self.stale = Some(FaultChannel { p, seed });
        self
    }

    /// Validates every channel's probability (finite, in `[0, 1]`).
    ///
    /// # Errors
    ///
    /// [`BuildError::InvalidFaults`] naming the offending channel.
    pub fn check(&self) -> Result<(), BuildError> {
        for (kind, channel) in self.channels() {
            let p = channel.p;
            if !p.is_finite() || !(0.0..=1.0).contains(&p) {
                return Err(BuildError::InvalidFaults(format!(
                    "{kind} probability {p} outside [0, 1]"
                )));
            }
        }
        Ok(())
    }

    /// The crash schedule's live set for `round` on an `n`-node graph:
    /// `out[v]` is `true` iff node `v` is up. All-true when no crash
    /// channel is configured. This is the *exact* schedule the simulator
    /// uses (same draws), exposed so analyses and tests can reconstruct
    /// which nodes were frozen in any epoch.
    pub fn live_nodes(&self, round: u64, n: usize) -> Vec<bool> {
        match self.crash {
            None => vec![true; n],
            Some(FaultChannel { p, seed }) => {
                let key = salted_stream_key(seed, CRASH_SALT, round / EPOCH_LEN);
                let mut draws = vec![0u64; n];
                crate::rng::fill_first_draws(key, 0, &mut draws);
                draws.iter().map(|&d| unit_f64(d) >= p).collect()
            }
        }
    }

    /// Whether any channel forces per-round edge masking (crash or
    /// edgedrop).
    pub(crate) fn has_edge_faults(&self) -> bool {
        self.crash.is_some() || self.edgedrop.is_some()
    }

    fn channels(&self) -> impl Iterator<Item = (&'static str, FaultChannel)> {
        [
            ("crash", self.crash),
            ("edgedrop", self.edgedrop),
            ("shock", self.shock),
            ("stale", self.stale),
        ]
        .into_iter()
        .filter_map(|(kind, c)| c.map(|c| (kind, c)))
    }
}

impl fmt::Display for FaultSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_none() {
            return write!(f, "none");
        }
        let mut first = true;
        for (kind, FaultChannel { p, seed }) in self.channels() {
            if !first {
                write!(f, "+")?;
            }
            write!(f, "{kind}:{p}:{seed}")?;
            first = false;
        }
        Ok(())
    }
}

impl FromStr for FaultSpec {
    type Err = ParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s == "none" {
            return Ok(Self::none());
        }
        let bad = |why: String| ParseError::new(format!("in faults '{s}': {why}"));
        let mut spec = Self::none();
        for part in s.split('+') {
            let mut fields = part.split(':');
            let kind = fields.next().unwrap_or("");
            let (p, seed) = match (fields.next(), fields.next(), fields.next()) {
                (Some(p), Some(seed), None) => (p, seed),
                _ => {
                    return Err(bad(format!(
                        "'{part}' should be <kind>:<probability>:<seed>"
                    )))
                }
            };
            let p: f64 = p
                .parse()
                .map_err(|_| bad(format!("bad probability '{p}'")))?;
            if !p.is_finite() || !(0.0..=1.0).contains(&p) {
                return Err(bad(format!("{kind} probability {p} outside [0, 1]")));
            }
            let seed: u64 = seed
                .parse()
                .map_err(|_| bad(format!("bad seed '{seed}'")))?;
            let slot = match kind {
                "crash" => &mut spec.crash,
                "edgedrop" => &mut spec.edgedrop,
                "shock" => &mut spec.shock,
                "stale" => &mut spec.stale,
                other => {
                    return Err(bad(format!(
                        "unknown fault kind '{other}' \
                         (crash, edgedrop, shock, stale)"
                    )))
                }
            };
            if slot.is_some() {
                return Err(bad(format!("duplicate fault kind '{kind}'")));
            }
            *slot = Some(FaultChannel { p, seed });
        }
        Ok(spec)
    }
}

/// Counts of the fault events a run actually experienced, reported in
/// [`crate::RunReport::faults`]. All zero for `faults=none` runs. The
/// counters accumulate over the simulator's lifetime (across repeated
/// `run_until` calls on the same [`crate::Simulator`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultEvents {
    /// Nodes that went down at an epoch boundary.
    pub crashes: u64,
    /// Nodes that came back up at an epoch boundary.
    pub rejoins: u64,
    /// Scheduled-active edges that dropped for a round.
    pub edges_dropped: u64,
    /// Load shocks that moved tokens.
    pub shocks: u64,
    /// Active edges whose applied flow was lost for a round.
    pub stale_edges: u64,
}

impl FaultEvents {
    /// Total churn events (crashes + rejoins): the boundaries between
    /// which per-node load freezing and live-set conservation hold.
    pub fn churn_events(&self) -> u64 {
        self.crashes + self.rejoins
    }
}

/// Which base edge set the round's effective mask starts from; see
/// [`FaultState::compose_eff`].
pub(crate) enum EffBase<'a> {
    /// All edges (diffusion plans): the live-edge set under crash churn,
    /// every edge otherwise.
    All,
    /// The current epoch's repaired sweep mask at this index (crash
    /// churn active).
    Repaired(usize),
    /// An externally produced mask — a sweep class without crash churn,
    /// or the round's random matching (intersected with the live edges
    /// when crash churn is active).
    External(&'a [u64]),
}

/// Control-thread fault state carried between rounds: the current
/// epoch's live sets and repaired sweep masks, the round's drop/stale
/// masks, and the accumulated event counters. Lives in
/// [`crate::scheme_kernel::RoundScratch`], so the sequential executor
/// and the pool's control thread share one code path.
#[derive(Default)]
pub(crate) struct FaultState {
    /// Epoch whose live sets are materialized (`None` before round 0).
    epoch: Option<u64>,
    /// Live-node bitmask words (crash channel only).
    live_nodes: Vec<u64>,
    /// Edges with both endpoints live (crash channel only).
    live_edges: Vec<u64>,
    /// Per-epoch incrementally repaired sweep masks (crash + sweep plan).
    repaired: Vec<Vec<u64>>,
    /// The round's dropped-edge words (edgedrop channel only).
    drop: Vec<u64>,
    /// The round's stale-edge words (stale channel only), consumed by
    /// the apply passes.
    pub stale: Vec<u64>,
    /// The round's composed effective mask.
    eff: Vec<u64>,
    /// Raw draw scratch for the bulk RNG sweeps.
    draws: Vec<u64>,
    /// Live nodes in the current epoch.
    live_count: usize,
    /// Accumulated event counters.
    pub events: FaultEvents,
}

/// All bits of mask word `w` that correspond to a valid id below `len`.
#[inline]
fn valid_word(w: usize, len: usize) -> u64 {
    let base = w * 64;
    if base + 64 <= len {
        u64::MAX
    } else if base >= len {
        0
    } else {
        (1u64 << (len - base)) - 1
    }
}

impl FaultState {
    /// Per-round control-thread preparation: advances the crash epoch
    /// (recomputing live sets and repairing `sweep` masks at
    /// boundaries) and draws the round's drop and stale masks. Must run
    /// before the round's flow pass, in both executors.
    pub fn begin_round(
        &mut self,
        spec: &FaultSpec,
        graph: &Graph,
        round: u64,
        sweep: Option<(&[Vec<u64>], bool)>,
    ) {
        let m = graph.edge_count();
        if spec.crash.is_some() {
            self.ensure_epoch(spec, graph, round, sweep);
        }
        if let Some(FaultChannel { p, seed }) = spec.edgedrop {
            Self::fill_edge_mask(
                &mut self.drop,
                &mut self.draws,
                seed,
                DROP_SALT,
                p,
                round,
                m,
            );
        }
        if let Some(FaultChannel { p, seed }) = spec.stale {
            Self::fill_edge_mask(
                &mut self.stale,
                &mut self.draws,
                seed,
                STALE_SALT,
                p,
                round,
                m,
            );
        }
    }

    /// Recomputes the live sets for `round`'s epoch if it changed:
    /// fresh per-node draws, crash/rejoin counting against the previous
    /// epoch (everything live before round 0), the live-edge mask, and
    /// the incremental repair of the sweep masks.
    fn ensure_epoch(
        &mut self,
        spec: &FaultSpec,
        graph: &Graph,
        round: u64,
        sweep: Option<(&[Vec<u64>], bool)>,
    ) {
        let FaultChannel { p, seed } = spec.crash.expect("caller checked the crash channel");
        let epoch = round / EPOCH_LEN;
        if self.epoch == Some(epoch) {
            return;
        }
        let n = graph.node_count();
        let m = graph.edge_count();
        let nw = n.div_ceil(64).max(1);
        self.draws.resize(n.max(m).max(1), 0);
        crate::rng::fill_first_draws(
            salted_stream_key(seed, CRASH_SALT, epoch),
            0,
            &mut self.draws[..n],
        );
        let first = self.epoch.is_none();
        self.live_nodes.resize(nw, 0);
        let mut live_count = 0usize;
        for w in 0..nw {
            let valid = valid_word(w, n);
            let mut word = 0u64;
            let base = w * 64;
            for b in 0..64.min(n.saturating_sub(base)) {
                word |= u64::from(unit_f64(self.draws[base + b]) >= p) << b;
            }
            let old = if first { valid } else { self.live_nodes[w] };
            self.events.crashes += u64::from((old & !word).count_ones());
            self.events.rejoins += u64::from((!old & word & valid).count_ones());
            live_count += word.count_ones() as usize;
            self.live_nodes[w] = word;
        }
        self.live_count = live_count;
        let mw = m.div_ceil(64).max(1);
        self.live_edges.clear();
        self.live_edges.resize(mw, 0);
        for (e, &(u, v)) in graph.edges().iter().enumerate() {
            let both = self.live(u as usize) && self.live(v as usize);
            self.live_edges[e >> 6] |= u64::from(both) << (e & 63);
        }
        if let Some((masks, recover)) = sweep {
            self.repaired.resize(masks.len(), Vec::new());
            for (repaired, base) in self.repaired.iter_mut().zip(masks) {
                repaired.clone_from(base);
                if recover {
                    matching::repair_matching(graph, &self.live_nodes, repaired);
                } else {
                    matching::mask_dead_edges(graph, &self.live_nodes, repaired);
                }
            }
        }
        self.epoch = Some(epoch);
    }

    /// Draws one per-round Bernoulli edge mask (drop or stale).
    fn fill_edge_mask(
        out: &mut Vec<u64>,
        draws: &mut Vec<u64>,
        seed: u64,
        salt: u64,
        p: f64,
        round: u64,
        m: usize,
    ) {
        draws.resize(draws.len().max(m).max(1), 0);
        crate::rng::fill_first_draws(salted_stream_key(seed, salt, round), 0, &mut draws[..m]);
        let mw = m.div_ceil(64).max(1);
        out.clear();
        out.resize(mw, 0);
        for (e, &draw) in draws[..m].iter().enumerate() {
            out[e >> 6] |= u64::from(unit_f64(draw) < p) << (e & 63);
        }
    }

    /// Composes the round's effective active-edge mask:
    /// `base ∧ live-edges ∧ ¬dropped`, counting the dropped-while-active
    /// edges (and, fused here because the composed mask *is* the active
    /// set, the round's stale losses). Returns the mask the flow pass
    /// should use.
    pub fn compose_eff(&mut self, spec: &FaultSpec, m: usize, base: EffBase<'_>) -> &[u64] {
        let mw = m.div_ceil(64).max(1);
        self.eff.resize(mw, 0);
        let crash = spec.crash.is_some();
        let dropping = spec.edgedrop.is_some();
        let staling = spec.stale.is_some();
        for w in 0..mw {
            let base_w = match base {
                EffBase::All => {
                    if crash {
                        self.live_edges[w]
                    } else {
                        valid_word(w, m)
                    }
                }
                EffBase::Repaired(i) => self.repaired[i][w],
                EffBase::External(ext) => {
                    if crash {
                        ext[w] & self.live_edges[w]
                    } else {
                        ext[w]
                    }
                }
            };
            let word = if dropping {
                self.events.edges_dropped += u64::from((base_w & self.drop[w]).count_ones());
                base_w & !self.drop[w]
            } else {
                base_w
            };
            if staling {
                self.events.stale_edges += u64::from((word & self.stale[w]).count_ones());
            }
            self.eff[w] = word;
        }
        &self.eff
    }

    /// Counts the round's stale losses among the active edges (`mask`
    /// `None` = all edges active). Call once per round when the stale
    /// channel is on, after the active mask is known.
    pub fn count_stale(&mut self, mask: Option<&[u64]>, m: usize) {
        let mw = m.div_ceil(64).max(1);
        for w in 0..mw {
            let active = mask.map_or_else(|| valid_word(w, m), |words| words[w]);
            self.events.stale_edges += u64::from((active & self.stale[w]).count_ones());
        }
    }

    /// The materialized epoch's live-node words (crash channel only;
    /// empty before the first `begin_round`). The churn axis intersects
    /// these with its activation overlay when repairing sweep schedules,
    /// so a crash-frozen node is never re-matched.
    pub fn live_node_words(&self) -> &[u64] {
        &self.live_nodes
    }

    /// Whether node `u` is live in the materialized epoch (only
    /// meaningful when the crash channel is on).
    #[inline]
    fn live(&self, u: usize) -> bool {
        (self.live_nodes[u >> 6] >> (u & 63)) & 1 == 1
    }

    /// Rejection-samples a live node id from `key`'s draw stream,
    /// starting at draw counter `k`, skipping `exclude`. Returns the
    /// node and the next unused counter; `None` after 128 rejections.
    fn pick_live(
        &self,
        crash: bool,
        key: u64,
        mut k: u64,
        n: usize,
        exclude: Option<usize>,
    ) -> Option<(usize, u64)> {
        for _ in 0..128 {
            let cand = (nth_u64(key, k) % n as u64) as usize;
            k += 1;
            if (!crash || self.live(cand)) && Some(cand) != exclude {
                return Some((cand, k));
            }
        }
        None
    }

    /// The round's shock, if one fires: a `(donor, hotspot)` pair of
    /// distinct live nodes. The caller moves a quarter of the donor's
    /// load to the hotspot (mode-specific arithmetic) and counts the
    /// event iff tokens moved. Requires [`FaultState::begin_round`] for
    /// this round to have run (live sets current).
    pub fn shock_targets(&self, spec: &FaultSpec, round: u64, n: usize) -> Option<(usize, usize)> {
        let FaultChannel { p, seed } = spec.shock?;
        let key = salted_stream_key(seed, SHOCK_SALT, round);
        if unit_f64(nth_u64(key, 0)) >= p {
            return None;
        }
        let crash = spec.crash.is_some();
        let live_count = if crash { self.live_count } else { n };
        if live_count < 2 {
            return None;
        }
        let (hotspot, k) = self.pick_live(crash, key, 1, n, None)?;
        let (donor, _) = self.pick_live(crash, key, k, n, Some(hotspot))?;
        Some((donor, hotspot))
    }
}

/// Window length of the divergence watchdog.
const WATCH_WINDOW: usize = 16;

/// The graceful-degradation watchdog of [`crate::Simulator`]'s run loop:
/// observes the fused per-round `max_dev` statistic (free since the
/// in-loop metrics reduction) and fires when the deviation is non-finite
/// or grew more than 8× over the best of the last [`WATCH_WINDOW`]
/// rounds (clamped below at 1.0 so settled runs never trip on noise).
/// Armed only while faults are injected, so clean runs are untouched.
#[derive(Clone)]
pub(crate) struct DivergenceWatch {
    armed: bool,
    window: [f64; WATCH_WINDOW],
    len: usize,
    pos: usize,
}

impl DivergenceWatch {
    /// Whether this watchdog can ever fire.
    pub fn armed(&self) -> bool {
        self.armed
    }

    /// The observation ring as raw parts `(armed, window, len, pos)` for
    /// checkpointing.
    pub fn raw_parts(&self) -> (bool, &[f64], usize, usize) {
        (self.armed, &self.window, self.len, self.pos)
    }

    /// Rebuilds a watchdog from checkpointed [`Self::raw_parts`];
    /// returns `None` when the parts are not a valid ring.
    pub fn from_raw_parts(armed: bool, window: &[f64], len: usize, pos: usize) -> Option<Self> {
        if window.len() != WATCH_WINDOW || len > WATCH_WINDOW || pos >= WATCH_WINDOW {
            return None;
        }
        let mut ring = [0.0; WATCH_WINDOW];
        ring.copy_from_slice(window);
        Some(Self {
            armed,
            window: ring,
            len,
            pos,
        })
    }

    /// A watchdog; `armed = false` never fires.
    pub fn new(armed: bool) -> Self {
        Self {
            armed,
            window: [0.0; WATCH_WINDOW],
            len: 0,
            pos: 0,
        }
    }

    /// Feeds one round's `max_dev`; returns `true` if the watchdog
    /// fires (divergence detected). The window resets after a firing so
    /// the fallback scheme gets a fresh observation period.
    pub fn observe(&mut self, max_dev: f64) -> bool {
        if !self.armed {
            return false;
        }
        if !max_dev.is_finite() {
            return true;
        }
        if self.len == WATCH_WINDOW {
            let min = self.window.iter().copied().fold(f64::INFINITY, f64::min);
            if max_dev > 8.0 * min.max(1.0) {
                self.len = 0;
                self.pos = 0;
                return true;
            }
        }
        self.window[self.pos] = max_dev;
        self.pos = (self.pos + 1) % WATCH_WINDOW;
        self.len = (self.len + 1).min(WATCH_WINDOW);
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sodiff_graph::generators;

    #[test]
    fn display_roundtrip() {
        for spec in [
            FaultSpec::none(),
            FaultSpec::none().with_crash(0.05, 7),
            FaultSpec::none().with_edgedrop(0.01, 9).with_stale(0.5, 3),
            FaultSpec::none()
                .with_crash(0.1, 1)
                .with_edgedrop(0.2, 2)
                .with_shock(0.3, 3)
                .with_stale(0.4, 4),
        ] {
            let text = spec.to_string();
            assert_eq!(text.parse::<FaultSpec>().unwrap(), spec, "{text}");
        }
        assert_eq!(FaultSpec::none().to_string(), "none");
        assert_eq!(
            FaultSpec::none().with_shock(0.25, 9).to_string(),
            "shock:0.25:9"
        );
    }

    #[test]
    fn parse_errors_carry_context() {
        for (text, needle) in [
            ("crash:0.1", "should be <kind>:<probability>:<seed>"),
            ("crash:0.1:2:3", "should be <kind>:<probability>:<seed>"),
            ("crash:x:1", "bad probability"),
            ("crash:1.5:1", "outside [0, 1]"),
            ("crash:-0.1:1", "outside [0, 1]"),
            ("crash:nan:1", "outside [0, 1]"),
            ("crash:0.1:z", "bad seed"),
            ("meteor:0.1:1", "unknown fault kind"),
            ("crash:0.1:1+crash:0.2:2", "duplicate fault kind"),
        ] {
            let err = text.parse::<FaultSpec>().unwrap_err();
            assert!(
                err.message.contains(needle),
                "{text}: {} should contain {needle}",
                err.message
            );
        }
    }

    #[test]
    fn check_rejects_out_of_range_probabilities() {
        assert!(FaultSpec::none().check().is_ok());
        assert!(FaultSpec::none().with_crash(1.0, 1).check().is_ok());
        let err = FaultSpec::none().with_shock(2.0, 1).check().unwrap_err();
        assert!(matches!(err, BuildError::InvalidFaults(_)));
        assert!(err.to_string().contains("shock"));
        assert!(FaultSpec::none().with_stale(f64::NAN, 1).check().is_err());
    }

    #[test]
    fn crash_schedule_is_per_epoch_and_deterministic() {
        let spec = FaultSpec::none().with_crash(0.3, 42);
        let n = 257;
        // Constant within an epoch, fresh draws across epochs.
        let a = spec.live_nodes(0, n);
        assert_eq!(a, spec.live_nodes(EPOCH_LEN - 1, n));
        let b = spec.live_nodes(EPOCH_LEN, n);
        assert_ne!(a, b, "new epoch redraws (p = 0.3 on 257 nodes)");
        assert_eq!(b, spec.live_nodes(2 * EPOCH_LEN - 1, n));
        // p = 0 keeps everyone up; p = 1 takes everyone down.
        assert!(FaultSpec::none()
            .with_crash(0.0, 1)
            .live_nodes(0, 64)
            .iter()
            .all(|&l| l));
        assert!(FaultSpec::none()
            .with_crash(1.0, 1)
            .live_nodes(0, 64)
            .iter()
            .all(|&l| !l));
    }

    #[test]
    fn fault_state_matches_public_schedule() {
        let spec = FaultSpec::none().with_crash(0.25, 7);
        let g = generators::torus2d(6, 6);
        let mut fs = FaultState::default();
        for round in [0, 5, 16, 40] {
            fs.begin_round(&spec, &g, round, None);
            let public = spec.live_nodes(round, g.node_count());
            for (v, &live) in public.iter().enumerate() {
                assert_eq!(fs.live(v), live, "round {round} node {v}");
            }
            assert_eq!(
                fs.live_count,
                public.iter().filter(|&&l| l).count(),
                "round {round}"
            );
        }
        // Churn events were counted at the two epoch transitions.
        assert!(fs.events.crashes > 0);
    }

    #[test]
    fn effective_mask_excludes_dead_and_dropped_edges() {
        let spec = FaultSpec::none().with_crash(0.3, 3).with_edgedrop(0.2, 5);
        let g = generators::torus2d(5, 5);
        let m = g.edge_count();
        let mut fs = FaultState::default();
        fs.begin_round(&spec, &g, 0, None);
        let drop = fs.drop.clone();
        let eff = fs.compose_eff(&spec, m, EffBase::All).to_vec();
        let live = spec.live_nodes(0, g.node_count());
        for (e, &(u, v)) in g.edges().iter().enumerate() {
            let bit = (eff[e >> 6] >> (e & 63)) & 1 == 1;
            let dropped = (drop[e >> 6] >> (e & 63)) & 1 == 1;
            assert_eq!(
                bit,
                live[u as usize] && live[v as usize] && !dropped,
                "edge {e}"
            );
        }
        assert!(fs.events.edges_dropped > 0);
    }

    #[test]
    fn shock_targets_are_live_distinct_and_rate_limited() {
        let g = generators::torus2d(6, 6);
        let n = g.node_count();
        let spec = FaultSpec::none().with_crash(0.3, 11).with_shock(0.5, 13);
        let mut fs = FaultState::default();
        let mut fired = 0u32;
        for round in 0..200 {
            fs.begin_round(&spec, &g, round, None);
            if let Some((donor, hotspot)) = fs.shock_targets(&spec, round, n) {
                fired += 1;
                assert_ne!(donor, hotspot);
                assert!(fs.live(donor), "round {round}");
                assert!(fs.live(hotspot), "round {round}");
            }
        }
        // Rate 0.5 over 200 rounds: the count concentrates around 100.
        assert!((60..=140).contains(&fired), "{fired} shocks at rate 0.5");
        // Rate 0 never fires.
        let quiet = FaultSpec::none().with_shock(0.0, 13);
        assert!(fs.shock_targets(&quiet, 0, n).is_none());
        // A single-node graph cannot host a donor/hotspot pair.
        assert!(fs.shock_targets(&spec, 0, 1).is_none());
    }

    #[test]
    fn watchdog_fires_on_growth_and_non_finite_only() {
        let mut w = DivergenceWatch::new(true);
        for _ in 0..WATCH_WINDOW {
            assert!(!w.observe(10.0));
        }
        assert!(!w.observe(50.0), "5x growth stays under the 8x bar");
        assert!(w.observe(200.0), "20x growth fires");
        // The window resets after firing: no immediate re-fire.
        assert!(!w.observe(200.0));
        let mut w = DivergenceWatch::new(true);
        assert!(w.observe(f64::NAN), "non-finite fires immediately");
        let mut disarmed = DivergenceWatch::new(false);
        assert!(!disarmed.observe(f64::INFINITY), "disarmed never fires");
        // Settled runs (deviation below 1) never trip on relative noise.
        let mut w = DivergenceWatch::new(true);
        for _ in 0..WATCH_WINDOW {
            assert!(!w.observe(0.01));
        }
        assert!(!w.observe(0.5), "50x growth below the absolute floor");
    }
}
