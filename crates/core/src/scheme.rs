//! The diffusion schemes: first order (FOS) and second order (SOS).

use std::fmt;

/// Which diffusion scheme drives the flow computation (paper Section II).
///
/// * **FOS**: `y_{i,j}(t) = α_{i,j}·(x_i(t)/s_i − x_j(t)/s_j)`.
/// * **SOS**: the first round after (re)activation is an FOS round;
///   afterwards
///   `y_{i,j}(t) = (β−1)·y_{i,j}(t−1) + β·α_{i,j}·(x_i(t)/s_i − x_j(t)/s_j)`
///   with `β ∈ (0, 2)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Scheme {
    /// First order scheme.
    Fos,
    /// Second order scheme with over-relaxation parameter `β`.
    Sos {
        /// The relaxation parameter `β ∈ (0, 2)`; `β_opt = 2/(1+√(1−λ²))`.
        beta: f64,
    },
}

impl Scheme {
    /// First order scheme.
    pub fn fos() -> Self {
        Scheme::Fos
    }

    /// Second order scheme.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < beta < 2` (the convergence range; Section II).
    pub fn sos(beta: f64) -> Self {
        assert!(
            beta > 0.0 && beta < 2.0,
            "SOS requires beta in (0, 2), got {beta}"
        );
        Scheme::Sos { beta }
    }

    /// Returns `true` for the second order scheme.
    pub fn is_sos(&self) -> bool {
        matches!(self, Scheme::Sos { .. })
    }

    /// The effective `(β − 1)` memory coefficient and `β` gain for a round.
    ///
    /// `rounds_in_scheme` counts rounds since this scheme was (re)activated:
    /// SOS behaves like FOS in its first round (paper equation (4)).
    pub(crate) fn coefficients(&self, rounds_in_scheme: u64) -> (f64, f64) {
        match *self {
            Scheme::Fos => (0.0, 1.0),
            Scheme::Sos { beta } => {
                if rounds_in_scheme == 0 {
                    (0.0, 1.0)
                } else {
                    (beta - 1.0, beta)
                }
            }
        }
    }
}

impl fmt::Display for Scheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Scheme::Fos => write!(f, "FOS"),
            Scheme::Sos { beta } => write!(f, "SOS(beta={beta})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sos_validates_beta() {
        assert!(Scheme::sos(1.5).is_sos());
        assert!(!Scheme::fos().is_sos());
    }

    #[test]
    #[should_panic(expected = "beta in (0, 2)")]
    fn sos_rejects_beta_two() {
        Scheme::sos(2.0);
    }

    #[test]
    #[should_panic(expected = "beta in (0, 2)")]
    fn sos_rejects_zero() {
        Scheme::sos(0.0);
    }

    #[test]
    fn first_sos_round_is_fos() {
        let s = Scheme::sos(1.8);
        assert_eq!(s.coefficients(0), (0.0, 1.0));
        let (mem, gain) = s.coefficients(1);
        assert!((mem - 0.8).abs() < 1e-15);
        assert!((gain - 1.8).abs() < 1e-15);
    }

    #[test]
    fn fos_never_uses_memory() {
        assert_eq!(Scheme::fos().coefficients(5), (0.0, 1.0));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Scheme::fos().to_string(), "FOS");
        assert!(Scheme::sos(1.9).to_string().contains("1.9"));
    }
}
