//! The iterative load-balancing schemes: diffusion (FOS/SOS), dimension
//! exchange, and matching-based balancing.

use std::fmt;

use crate::error::BuildError;

/// How a matching-based scheme picks its per-round matching.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MatchingStrategy {
    /// Sweep a precomputed family of maximal matchings round-robin (one
    /// maximal matching per color class of the graph's edge coloring).
    RoundRobin,
    /// Draw a fresh random maximal matching every round (greedy over a
    /// `(seed, round)`-keyed random edge order; deterministic per seed).
    Random {
        /// Seed of the per-round matching draws.
        seed: u64,
    },
}

/// Which balancing scheme drives the flow computation.
///
/// The diffusion schemes (paper Section II) exchange load over **all**
/// edges every round:
///
/// * **FOS**: `y_{i,j}(t) = α_{i,j}·(x_i(t)/s_i − x_j(t)/s_j)`.
/// * **SOS**: the first round after (re)activation is an FOS round;
///   afterwards
///   `y_{i,j}(t) = (β−1)·y_{i,j}(t−1) + β·α_{i,j}·(x_i(t)/s_i − x_j(t)/s_j)`
///   with `β ∈ (0, 2)`.
///
/// Their classic pairwise counterparts activate only a **matching** per
/// round, so each node exchanges with at most one neighbor:
///
/// * **Dimension exchange**: rounds sweep the color classes of a proper
///   edge coloring (see [`sodiff_graph::matching`]); an active edge
///   `(u, v)` schedules
///   `y_{u,v} = λ·(s_u·s_v/(s_u+s_v))·(x_u/s_u − x_v/s_v)` — for `λ = 1`
///   and uniform speeds that is the exact pairwise averaging
///   `(x_u − x_v)/2`.
/// * **Matching-based balancing**: one maximal matching per round
///   (round-robin over a precomputed family or freshly randomized),
///   exchanging the same λ-scaled pairwise quantum — discretized by the
///   configured rounding in discrete mode, e.g.
///   `⌊λ·(x_u/s_u − x_v/s_v)·s̄⌋` under round-down.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Scheme {
    /// First order diffusion scheme.
    Fos,
    /// Second order diffusion scheme with over-relaxation parameter `β`.
    Sos {
        /// The relaxation parameter `β ∈ (0, 2)`; `β_opt = 2/(1+√(1−λ²))`.
        beta: f64,
    },
    /// Dimension exchange over an edge coloring.
    DimensionExchange {
        /// Pairwise exchange gain `λ ∈ (0, 1]`; 1 = exact averaging.
        lambda: f64,
    },
    /// Matching-based balancing: one maximal matching per round.
    Matching {
        /// Pairwise exchange gain `λ ∈ (0, 1]`; 1 = exact averaging.
        lambda: f64,
        /// How the per-round matching is chosen.
        strategy: MatchingStrategy,
    },
}

impl Scheme {
    /// First order scheme.
    pub fn fos() -> Self {
        Scheme::Fos
    }

    /// Second order scheme.
    ///
    /// This is a thin wrapper over [`Scheme::try_sos`] for call sites that
    /// know `beta` is valid (e.g. `β_opt` from a spectrum).
    ///
    /// # Panics
    ///
    /// Panics unless `0 < beta < 2` (the convergence range; Section II).
    /// Fallible callers should use [`Scheme::try_sos`].
    pub fn sos(beta: f64) -> Self {
        Self::try_sos(beta).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Second order scheme, validating `β` up front.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::InvalidBeta`] unless `0 < beta < 2` (the
    /// convergence range; Section II).
    pub fn try_sos(beta: f64) -> Result<Self, BuildError> {
        if beta > 0.0 && beta < 2.0 {
            Ok(Scheme::Sos { beta })
        } else {
            Err(BuildError::InvalidBeta(beta))
        }
    }

    /// Dimension exchange with gain `lambda` (validated at build:
    /// [`BuildError::InvalidLambda`] outside `(0, 1]`).
    pub fn dimension_exchange(lambda: f64) -> Self {
        Scheme::DimensionExchange { lambda }
    }

    /// Matching-based balancing sweeping a precomputed maximal-matching
    /// family round-robin (lambda validated at build).
    pub fn matching_round_robin(lambda: f64) -> Self {
        Scheme::Matching {
            lambda,
            strategy: MatchingStrategy::RoundRobin,
        }
    }

    /// Matching-based balancing drawing a fresh random maximal matching
    /// each round (lambda validated at build).
    pub fn matching_random(seed: u64, lambda: f64) -> Self {
        Scheme::Matching {
            lambda,
            strategy: MatchingStrategy::Random { seed },
        }
    }

    /// Returns `true` for the second order scheme.
    pub fn is_sos(&self) -> bool {
        matches!(self, Scheme::Sos { .. })
    }

    /// Returns `true` for the diffusion schemes (FOS/SOS), which exchange
    /// over all edges every round. Dimension exchange and matching-based
    /// balancing are pairwise: only one matching is active per round.
    pub fn is_diffusion(&self) -> bool {
        matches!(self, Scheme::Fos | Scheme::Sos { .. })
    }

    /// Validates the scheme's parameters (the builder's check).
    pub(crate) fn check(&self) -> Result<(), BuildError> {
        match *self {
            Scheme::Fos => Ok(()),
            Scheme::Sos { beta } => Self::try_sos(beta).map(|_| ()),
            Scheme::DimensionExchange { lambda } | Scheme::Matching { lambda, .. } => {
                if lambda > 0.0 && lambda <= 1.0 {
                    Ok(())
                } else {
                    Err(BuildError::InvalidLambda(lambda))
                }
            }
        }
    }

    /// The effective `(β − 1)` memory coefficient and `β` gain for a round.
    ///
    /// `rounds_in_scheme` counts rounds since this scheme was (re)activated:
    /// SOS behaves like FOS in its first round (paper equation (4)). The
    /// pairwise schemes carry no flow memory, so they are always `(0, 1)`
    /// (their `λ` gain is baked into the per-edge coefficient tables).
    pub(crate) fn coefficients(&self, rounds_in_scheme: u64) -> (f64, f64) {
        match *self {
            Scheme::Fos | Scheme::DimensionExchange { .. } | Scheme::Matching { .. } => (0.0, 1.0),
            Scheme::Sos { beta } => {
                if rounds_in_scheme == 0 {
                    (0.0, 1.0)
                } else {
                    (beta - 1.0, beta)
                }
            }
        }
    }
}

impl fmt::Display for Scheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Scheme::Fos => write!(f, "FOS"),
            Scheme::Sos { beta } => write!(f, "SOS(beta={beta})"),
            Scheme::DimensionExchange { lambda } => write!(f, "DE(lambda={lambda})"),
            Scheme::Matching { lambda, strategy } => match strategy {
                MatchingStrategy::RoundRobin => write!(f, "MATCHING(rr, lambda={lambda})"),
                MatchingStrategy::Random { seed } => {
                    write!(f, "MATCHING(random, seed={seed}, lambda={lambda})")
                }
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sos_validates_beta() {
        assert!(Scheme::sos(1.5).is_sos());
        assert!(!Scheme::fos().is_sos());
    }

    #[test]
    fn try_sos_reports_invalid_beta() {
        for beta in [0.0, -1.0, 2.0, 3.5, f64::NAN] {
            assert!(
                matches!(Scheme::try_sos(beta), Err(BuildError::InvalidBeta(_))),
                "beta {beta}"
            );
        }
        assert_eq!(Scheme::try_sos(1.8), Ok(Scheme::Sos { beta: 1.8 }));
    }

    #[test]
    #[should_panic(expected = "beta in (0, 2)")]
    fn sos_rejects_beta_two() {
        Scheme::sos(2.0);
    }

    #[test]
    #[should_panic(expected = "beta in (0, 2)")]
    fn sos_rejects_zero() {
        Scheme::sos(0.0);
    }

    #[test]
    fn first_sos_round_is_fos() {
        let s = Scheme::sos(1.8);
        assert_eq!(s.coefficients(0), (0.0, 1.0));
        let (mem, gain) = s.coefficients(1);
        assert!((mem - 0.8).abs() < 1e-15);
        assert!((gain - 1.8).abs() < 1e-15);
    }

    #[test]
    fn fos_never_uses_memory() {
        assert_eq!(Scheme::fos().coefficients(5), (0.0, 1.0));
    }

    #[test]
    fn pairwise_schemes_never_use_memory() {
        assert_eq!(Scheme::dimension_exchange(0.5).coefficients(7), (0.0, 1.0));
        assert_eq!(Scheme::matching_random(3, 1.0).coefficients(7), (0.0, 1.0));
        assert!(!Scheme::dimension_exchange(1.0).is_diffusion());
        assert!(!Scheme::matching_round_robin(1.0).is_diffusion());
        assert!(Scheme::fos().is_diffusion());
        assert!(Scheme::sos(1.5).is_diffusion());
    }

    #[test]
    fn check_validates_lambda() {
        for lambda in [0.0, -0.5, 1.5, f64::NAN] {
            assert!(
                matches!(
                    Scheme::dimension_exchange(lambda).check(),
                    Err(BuildError::InvalidLambda(_))
                ),
                "lambda {lambda}"
            );
            assert!(matches!(
                Scheme::matching_round_robin(lambda).check(),
                Err(BuildError::InvalidLambda(_))
            ));
        }
        assert!(Scheme::dimension_exchange(1.0).check().is_ok());
        assert!(Scheme::matching_random(9, 0.25).check().is_ok());
        assert!(Scheme::Sos { beta: 5.0 }.check().is_err());
    }

    #[test]
    fn display_formats() {
        assert_eq!(Scheme::fos().to_string(), "FOS");
        assert!(Scheme::sos(1.9).to_string().contains("1.9"));
        assert_eq!(Scheme::dimension_exchange(1.0).to_string(), "DE(lambda=1)");
        assert_eq!(
            Scheme::matching_random(4, 0.5).to_string(),
            "MATCHING(random, seed=4, lambda=0.5)"
        );
        assert!(Scheme::matching_round_robin(1.0).to_string().contains("rr"));
    }
}
