//! Declarative scenario specifications: whole experiments as text.
//!
//! A [`ScenarioSpec`] describes one experiment — topology, speeds, scheme,
//! rounding, mode, initial load, stop condition, threads, and an optional
//! hybrid switch — as a line of whitespace-separated `key=value` pairs:
//!
//! ```text
//! name=fig1_sos topology=torus2d:256:256 scheme=sos_opt mode=discrete \
//!     rounding=randomized seed=42 init=paper stop=rounds:1280 threads=1
//! ```
//!
//! The format is hand-parsed (no serde; the build environment is offline)
//! and round-trips exactly through `Display`/`FromStr`, so scenario files
//! can be generated, diffed, and replayed byte-for-byte. Bench binaries
//! and the `scenarios` example feed files of these lines to the batch
//! [`crate::Driver`]; [`ScenarioSpec::parse_many`] handles `#` comments
//! and blank lines.
//!
//! Keys and defaults:
//!
//! | key | values | default |
//! |-----|--------|---------|
//! | `name` | free token (no spaces) | `scenario` |
//! | `topology` | see [`TopologySpec`] | *required* |
//! | `speeds` | `uniform`, `two_class:FAST:SPEED`, `ramp:MAX`, `skewed:MAX:EXP:SEED` | `uniform` |
//! | `scheme` | `fos`, `sos:BETA`, `sos_opt`, `de:LAMBDA`, `matching:rr:LAMBDA`, `matching:random:SEED:LAMBDA` | `fos` |
//! | `mode` | `continuous`, `discrete` | `discrete` |
//! | `rounding` | `randomized`, `round_down`, `nearest`, `unbiased` | `randomized` |
//! | `seed` | integer | *unset* (randomized kinds then fail to build) |
//! | `init` | `paper`, `point:NODE:TOTAL`, `equal:PER`, `ramp:MAX`, `random:TOTAL:SEED` | `paper` |
//! | `stop` | `rounds:N`, `balanced:THRESHOLD:MAX`, `plateau:WINDOW:MAX`, `steady:WINDOW`, `horizon:R` | `rounds:1000` |
//! | `threads` | positive integer | `1` |
//! | `flow_memory` | `rounded`, `scheduled` | `rounded` |
//! | `faults` | `none`, or `+`-joined `crash:P:SEED`, `edgedrop:P:SEED`, `shock:RATE:SEED`, `stale:P:SEED` | `none` |
//! | `load` | `none`, or `+`-joined `poisson:RATE:SEED`, `hotspot:NODE:BURST:PERIOD:SEED`, `diurnal:AMP:PERIOD`, `adversarial:BURST:PERIOD:SEED` | `none` |
//! | `churn` | `none`, or `flux:P_LEAVE:P_JOIN:SEED[:INIT]` (epoch-aligned node join/leave with conservation-exact handoff; see [`crate::churn`]) | `none` |
//! | `ckpt` | `every:N:DIR` (snapshot to `DIR/<name>.ckpt` every `N` rounds; see [`crate::checkpoint`]) | *unset* |
//! | `mem` | `full` (f64/i64 state), `compact` (f32/i32 state at half the bytes; see [`MemSpec`]) | `full` |
//! | `hybrid` | `at:R`, `local_diff:T`, `max_minus_avg:T`, `never` | *unset* |

use std::fmt;
use std::str::FromStr;

use sodiff_graph::{Graph, Speeds, TopologySpec};

use crate::checkpoint::{CheckpointConfig, CheckpointPolicy};
use crate::churn::ChurnSpec;
use crate::engine::{FlowMemory, RunReport, StopCondition};
use crate::error::{BuildError, ParseError};
use crate::experiment::Experiment;
use crate::fault::FaultSpec;
use crate::hybrid::SwitchPolicy;
use crate::init::InitialLoad;
use crate::load::LoadSpec;
use crate::rounding::RoundingSpec;
use crate::scheme::Scheme;

/// Node speeds as data (`speeds=` key).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum SpeedsSpec {
    /// The homogeneous model (`uniform`).
    #[default]
    Uniform,
    /// The first `fast` nodes run at `speed`, the rest at 1
    /// (`two_class:FAST:SPEED`).
    TwoClass {
        /// Number of fast nodes.
        fast: usize,
        /// Speed of the fast nodes.
        speed: f64,
    },
    /// Linear ramp from 1 to `max` (`ramp:MAX`).
    Ramp {
        /// Speed of the last node.
        max: f64,
    },
    /// Random skewed speeds `1 + (max−1)·U^exponent`
    /// (`skewed:MAX:EXP:SEED`).
    Skewed {
        /// Maximum speed.
        max: f64,
        /// Skew exponent.
        exponent: f64,
        /// RNG seed.
        seed: u64,
    },
}

impl SpeedsSpec {
    /// Materializes the speeds for an `n`-node graph.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::InvalidSpeeds`] for speeds below 1,
    /// non-finite values, or a fast-node count above `n`.
    pub fn build(&self, n: usize) -> Result<Speeds, BuildError> {
        let invalid = |msg: String| Err(BuildError::InvalidSpeeds(msg));
        match *self {
            SpeedsSpec::Uniform => Ok(Speeds::uniform(n)),
            SpeedsSpec::TwoClass { fast, speed } => {
                if fast > n {
                    return invalid(format!("{fast} fast nodes on a {n}-node graph"));
                }
                if !speed.is_finite() || speed < 1.0 {
                    return invalid(format!("fast speed must be finite and >= 1, got {speed}"));
                }
                Ok(Speeds::two_class(n, fast, speed))
            }
            SpeedsSpec::Ramp { max } => {
                if !max.is_finite() || max < 1.0 {
                    return invalid(format!("ramp maximum must be finite and >= 1, got {max}"));
                }
                Ok(Speeds::linear_ramp(n, max))
            }
            SpeedsSpec::Skewed {
                max,
                exponent,
                seed,
            } => {
                if !max.is_finite() || max < 1.0 {
                    return invalid(format!("skewed maximum must be finite and >= 1, got {max}"));
                }
                if !exponent.is_finite() {
                    return invalid(format!("skew exponent must be finite, got {exponent}"));
                }
                Ok(Speeds::random_skewed(n, max, exponent, seed))
            }
        }
    }
}

impl fmt::Display for SpeedsSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpeedsSpec::Uniform => f.write_str("uniform"),
            SpeedsSpec::TwoClass { fast, speed } => write!(f, "two_class:{fast}:{speed}"),
            SpeedsSpec::Ramp { max } => write!(f, "ramp:{max}"),
            SpeedsSpec::Skewed {
                max,
                exponent,
                seed,
            } => write!(f, "skewed:{max}:{exponent}:{seed}"),
        }
    }
}

impl FromStr for SpeedsSpec {
    type Err = ParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let parts: Vec<&str> = s.split(':').collect();
        let bad = || {
            ParseError::new(format!(
                "invalid speeds '{s}' (expected uniform, two_class:FAST:SPEED, ramp:MAX, \
                 or skewed:MAX:EXP:SEED)"
            ))
        };
        match parts.as_slice() {
            ["uniform"] => Ok(SpeedsSpec::Uniform),
            ["two_class", fast, speed] => Ok(SpeedsSpec::TwoClass {
                fast: fast.parse().map_err(|_| bad())?,
                speed: speed.parse().map_err(|_| bad())?,
            }),
            ["ramp", max] => Ok(SpeedsSpec::Ramp {
                max: max.parse().map_err(|_| bad())?,
            }),
            ["skewed", max, exponent, seed] => Ok(SpeedsSpec::Skewed {
                max: max.parse().map_err(|_| bad())?,
                exponent: exponent.parse().map_err(|_| bad())?,
                seed: seed.parse().map_err(|_| bad())?,
            }),
            _ => Err(bad()),
        }
    }
}

/// The balancing scheme as data (`scheme=` key).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum SchemeSpec {
    /// First-order scheme (`fos`).
    #[default]
    Fos,
    /// Second-order scheme with an explicit `β` (`sos:BETA`).
    Sos {
        /// Relaxation parameter.
        beta: f64,
    },
    /// Second-order scheme with `β_opt` computed from the graph's
    /// spectrum at build time (`sos_opt`).
    SosOpt,
    /// Dimension exchange over the graph's edge coloring
    /// (`de:LAMBDA`; bare `de` means `λ = 1`).
    De {
        /// Pairwise exchange gain `λ ∈ (0, 1]`.
        lambda: f64,
    },
    /// Matching-based balancing over a round-robin family of maximal
    /// matchings (`matching:rr:LAMBDA`; bare `matching` / `matching:rr`
    /// mean `λ = 1`).
    MatchingRr {
        /// Pairwise exchange gain `λ ∈ (0, 1]`.
        lambda: f64,
    },
    /// Matching-based balancing drawing a fresh random maximal matching
    /// per round (`matching:random:SEED:LAMBDA`;
    /// `matching:random:SEED` means `λ = 1`).
    MatchingRandom {
        /// Seed of the per-round matching draws.
        seed: u64,
        /// Pairwise exchange gain `λ ∈ (0, 1]`.
        lambda: f64,
    },
}

impl SchemeSpec {
    /// Resolves the scheme against a concrete graph and speeds.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::InvalidBeta`] for explicit `β` outside
    /// `(0, 2)` or when `sos_opt` is requested on a graph whose `λ` is
    /// not in `[0, 1)` (disconnected or degenerate networks), and
    /// [`BuildError::InvalidLambda`] for a pairwise exchange gain outside
    /// `(0, 1]`.
    pub fn resolve(&self, graph: &Graph, speeds: &Speeds) -> Result<Scheme, BuildError> {
        let scheme = match *self {
            SchemeSpec::Fos => Scheme::Fos,
            SchemeSpec::Sos { beta } => Scheme::try_sos(beta)?,
            SchemeSpec::SosOpt => {
                let lambda = sodiff_linalg::spectral::analyze(graph, speeds).lambda;
                if !(0.0..1.0).contains(&lambda) {
                    return Err(BuildError::InvalidBeta(lambda));
                }
                Scheme::Sos {
                    beta: sodiff_linalg::spectral::beta_opt(lambda),
                }
            }
            SchemeSpec::De { lambda } => Scheme::dimension_exchange(lambda),
            SchemeSpec::MatchingRr { lambda } => Scheme::matching_round_robin(lambda),
            SchemeSpec::MatchingRandom { seed, lambda } => Scheme::matching_random(seed, lambda),
        };
        scheme.check()?;
        Ok(scheme)
    }
}

impl fmt::Display for SchemeSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchemeSpec::Fos => f.write_str("fos"),
            SchemeSpec::Sos { beta } => write!(f, "sos:{beta}"),
            SchemeSpec::SosOpt => f.write_str("sos_opt"),
            SchemeSpec::De { lambda } => write!(f, "de:{lambda}"),
            SchemeSpec::MatchingRr { lambda } => write!(f, "matching:rr:{lambda}"),
            SchemeSpec::MatchingRandom { seed, lambda } => {
                write!(f, "matching:random:{seed}:{lambda}")
            }
        }
    }
}

impl FromStr for SchemeSpec {
    type Err = ParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let parts: Vec<&str> = s.split(':').collect();
        let bad = |what: &str| ParseError::new(format!("invalid {what} in scheme '{s}'"));
        // Range violations are caught here — scenario files get a
        // line-anchored parse error instead of a late build failure —
        // but the ranges themselves live in `Scheme`'s own validation
        // (programmatic specs are still re-validated at build).
        let beta_checked = |beta: &str| {
            let beta: f64 = beta.parse().map_err(|_| bad("sos beta"))?;
            Scheme::try_sos(beta)
                .map(|_| beta)
                .map_err(|e| ParseError::new(format!("in scheme '{s}': {e}")))
        };
        let lambda_checked = |lambda: &str, what: &str| {
            let lambda: f64 = lambda.parse().map_err(|_| bad(what))?;
            Scheme::dimension_exchange(lambda)
                .check()
                .map(|()| lambda)
                .map_err(|e| ParseError::new(format!("in scheme '{s}': {e}")))
        };
        match parts.as_slice() {
            ["fos"] => Ok(SchemeSpec::Fos),
            ["sos_opt"] => Ok(SchemeSpec::SosOpt),
            ["sos", beta] => Ok(SchemeSpec::Sos {
                beta: beta_checked(beta)?,
            }),
            ["de"] => Ok(SchemeSpec::De { lambda: 1.0 }),
            ["de", lambda] => Ok(SchemeSpec::De {
                lambda: lambda_checked(lambda, "de lambda")?,
            }),
            ["matching"] | ["matching", "rr"] => Ok(SchemeSpec::MatchingRr { lambda: 1.0 }),
            ["matching", "rr", lambda] => Ok(SchemeSpec::MatchingRr {
                lambda: lambda_checked(lambda, "matching lambda")?,
            }),
            ["matching", "random", seed] => seed
                .parse()
                .map(|seed| SchemeSpec::MatchingRandom { seed, lambda: 1.0 })
                .map_err(|_| bad("matching seed")),
            ["matching", "random", seed, lambda] => {
                let seed = seed.parse().map_err(|_| bad("matching seed"))?;
                let lambda = lambda_checked(lambda, "matching lambda")?;
                Ok(SchemeSpec::MatchingRandom { seed, lambda })
            }
            _ => Err(ParseError::new(format!(
                "unknown scheme '{s}' (expected fos, sos:BETA, sos_opt, de:LAMBDA, \
                 matching:rr:LAMBDA, or matching:random:SEED:LAMBDA)"
            ))),
        }
    }
}

/// State-storage width as data (`mem=` key).
///
/// Selects how the simulator *stores* its per-node and per-edge state;
/// all arithmetic stays f64/i64 in either mode, so runs remain
/// deterministic and thread-count independent. `compact` halves the
/// resident state (f32 loads/flow-memory/arc fractions, i32 discrete
/// loads/flows) at the price of narrowing on every store — results
/// drift from `full` at f32 precision but stay within the discrete
/// schemes' deviation bounds. `full` is the default and takes exactly
/// the same code paths as before the key existed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MemSpec {
    /// f64/i64 state storage (`full`): the bit-pinned reference.
    #[default]
    Full,
    /// f32/i32 state storage (`compact`): half the bytes per element.
    Compact,
}

impl fmt::Display for MemSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemSpec::Full => f.write_str("full"),
            MemSpec::Compact => f.write_str("compact"),
        }
    }
}

impl FromStr for MemSpec {
    type Err = ParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "full" => Ok(MemSpec::Full),
            "compact" => Ok(MemSpec::Compact),
            other => Err(ParseError::new(format!(
                "unknown mem '{other}' (expected full or compact)"
            ))),
        }
    }
}

/// Continuous vs discrete execution as data (`mode=` key; the rounding
/// kind rides in the separate `rounding=` key).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModeSpec {
    /// Idealized execution.
    Continuous,
    /// Discrete execution with the given rounding kind.
    Discrete(RoundingSpec),
}

impl Default for ModeSpec {
    fn default() -> Self {
        ModeSpec::Discrete(RoundingSpec::default())
    }
}

/// Initial token placement as data (`init=` key).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum InitSpec {
    /// The paper's default: `1000·n` tokens on node 0 (`paper`).
    #[default]
    Paper,
    /// All tokens on one node (`point:NODE:TOTAL`).
    Point {
        /// The loaded node.
        node: u32,
        /// Total tokens.
        total: i64,
    },
    /// The same load on every node (`equal:PER`).
    Equal {
        /// Tokens per node.
        per: i64,
    },
    /// Linear ramp from 0 to `max` (`ramp:MAX`).
    Ramp {
        /// Load of the last node.
        max: i64,
    },
    /// Tokens dropped uniformly at random (`random:TOTAL:SEED`).
    Random {
        /// Total tokens.
        total: i64,
        /// RNG seed.
        seed: u64,
    },
}

impl InitSpec {
    /// Resolves to a concrete [`InitialLoad`] for an `n`-node graph.
    /// (Range validation happens when the experiment builds.)
    pub fn resolve(&self, n: usize) -> InitialLoad {
        match *self {
            InitSpec::Paper => InitialLoad::paper_default(n),
            InitSpec::Point { node, total } => InitialLoad::point(node, total),
            InitSpec::Equal { per } => InitialLoad::EqualPerNode(per),
            InitSpec::Ramp { max } => InitialLoad::Ramp { max_per_node: max },
            InitSpec::Random { total, seed } => InitialLoad::UniformRandom { total, seed },
        }
    }
}

impl fmt::Display for InitSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InitSpec::Paper => f.write_str("paper"),
            InitSpec::Point { node, total } => write!(f, "point:{node}:{total}"),
            InitSpec::Equal { per } => write!(f, "equal:{per}"),
            InitSpec::Ramp { max } => write!(f, "ramp:{max}"),
            InitSpec::Random { total, seed } => write!(f, "random:{total}:{seed}"),
        }
    }
}

impl FromStr for InitSpec {
    type Err = ParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let parts: Vec<&str> = s.split(':').collect();
        let bad = || {
            ParseError::new(format!(
                "invalid init '{s}' (expected paper, point:NODE:TOTAL, equal:PER, ramp:MAX, \
                 or random:TOTAL:SEED)"
            ))
        };
        match parts.as_slice() {
            ["paper"] => Ok(InitSpec::Paper),
            ["point", node, total] => Ok(InitSpec::Point {
                node: node.parse().map_err(|_| bad())?,
                total: total.parse().map_err(|_| bad())?,
            }),
            ["equal", per] => Ok(InitSpec::Equal {
                per: per.parse().map_err(|_| bad())?,
            }),
            ["ramp", max] => Ok(InitSpec::Ramp {
                max: max.parse().map_err(|_| bad())?,
            }),
            ["random", total, seed] => Ok(InitSpec::Random {
                total: total.parse().map_err(|_| bad())?,
                seed: seed.parse().map_err(|_| bad())?,
            }),
            _ => Err(bad()),
        }
    }
}

/// Stop condition as data (`stop=` key).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StopSpec {
    /// Exactly `N` rounds (`rounds:N`).
    Rounds(usize),
    /// Until `max − avg ≤ threshold`, capped (`balanced:THRESHOLD:MAX`).
    Balanced {
        /// Target `max − avg` in tokens.
        threshold: f64,
        /// Hard round cap.
        max_rounds: usize,
    },
    /// Until the imbalance plateaus, capped (`plateau:WINDOW:MAX`).
    Plateau {
        /// Plateau detection window.
        window: usize,
        /// Hard round cap.
        max_rounds: usize,
    },
    /// Until the deviation reaches steady state under a dynamic
    /// workload (`steady:WINDOW`; built-in 100 000-round cap).
    Steady {
        /// Steady-state detection window.
        window: usize,
    },
    /// Exactly `R` rounds with whole-run deviation statistics
    /// (`horizon:R`).
    Horizon(usize),
}

impl Default for StopSpec {
    fn default() -> Self {
        StopSpec::Rounds(1000)
    }
}

impl StopSpec {
    /// Converts to the engine's [`StopCondition`].
    pub fn to_condition(self) -> StopCondition {
        match self {
            StopSpec::Rounds(r) => StopCondition::MaxRounds(r),
            StopSpec::Balanced {
                threshold,
                max_rounds,
            } => StopCondition::BalancedWithin {
                threshold,
                max_rounds,
            },
            StopSpec::Plateau { window, max_rounds } => {
                StopCondition::Plateau { window, max_rounds }
            }
            StopSpec::Steady { window } => StopCondition::Steady { window },
            StopSpec::Horizon(r) => StopCondition::Horizon(r),
        }
    }
}

impl fmt::Display for StopSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StopSpec::Rounds(r) => write!(f, "rounds:{r}"),
            StopSpec::Balanced {
                threshold,
                max_rounds,
            } => write!(f, "balanced:{threshold}:{max_rounds}"),
            StopSpec::Plateau { window, max_rounds } => {
                write!(f, "plateau:{window}:{max_rounds}")
            }
            StopSpec::Steady { window } => write!(f, "steady:{window}"),
            StopSpec::Horizon(r) => write!(f, "horizon:{r}"),
        }
    }
}

impl FromStr for StopSpec {
    type Err = ParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let parts: Vec<&str> = s.split(':').collect();
        let bad = || {
            ParseError::new(format!(
                "invalid stop condition '{s}' (expected rounds:N, balanced:THRESHOLD:MAX, \
                 plateau:WINDOW:MAX, steady:WINDOW, or horizon:R)"
            ))
        };
        // Range violations are caught here so scenario files get a
        // line-anchored parse error instead of a late build failure; the
        // authoritative ranges live in `StopCondition::check`.
        match parts.as_slice() {
            ["rounds", r] => Ok(StopSpec::Rounds(r.parse().map_err(|_| bad())?)),
            ["balanced", threshold, max] => {
                let threshold: f64 = threshold.parse().map_err(|_| bad())?;
                if threshold.is_nan() {
                    return Err(ParseError::new(format!(
                        "invalid stop condition '{s}': balance threshold must not be NaN"
                    )));
                }
                Ok(StopSpec::Balanced {
                    threshold,
                    max_rounds: max.parse().map_err(|_| bad())?,
                })
            }
            ["plateau", window, max] => {
                let window: usize = window.parse().map_err(|_| bad())?;
                if window == 0 {
                    return Err(ParseError::new(format!(
                        "invalid stop condition '{s}': plateau window must be positive"
                    )));
                }
                Ok(StopSpec::Plateau {
                    window,
                    max_rounds: max.parse().map_err(|_| bad())?,
                })
            }
            ["steady", window] => {
                let window: usize = window.parse().map_err(|_| bad())?;
                if window == 0 {
                    return Err(ParseError::new(format!(
                        "invalid stop condition '{s}': steady window must be positive"
                    )));
                }
                Ok(StopSpec::Steady { window })
            }
            ["horizon", r] => {
                let r: usize = r.parse().map_err(|_| bad())?;
                if r == 0 {
                    return Err(ParseError::new(format!(
                        "invalid stop condition '{s}': horizon must be positive"
                    )));
                }
                Ok(StopSpec::Horizon(r))
            }
            _ => Err(bad()),
        }
    }
}

/// One experiment described entirely as data; see the module docs above
/// for the text format.
///
/// # Example
///
/// ```
/// use sodiff_core::ScenarioSpec;
///
/// let spec: ScenarioSpec =
///     "topology=torus2d:8:8 scheme=sos:1.9 mode=discrete rounding=randomized \
///      seed=7 stop=rounds:200"
///         .parse()
///         .unwrap();
/// let report = spec.run().unwrap();
/// assert_eq!(report.rounds, 200);
/// // Display round-trips exactly:
/// let again: ScenarioSpec = spec.to_string().parse().unwrap();
/// assert_eq!(again, spec);
/// ```
#[derive(Debug, Clone)]
pub struct ScenarioSpec {
    /// Scenario name used in reports. Serialized as one `key=value`
    /// token: whitespace and `=` are replaced with `_` by `Display`, so
    /// the printed form always re-parses.
    pub name: String,
    /// Network topology.
    pub topology: TopologySpec,
    /// Node speeds.
    pub speeds: SpeedsSpec,
    /// Diffusion scheme.
    pub scheme: SchemeSpec,
    /// Continuous or discrete execution (with rounding kind).
    pub mode: ModeSpec,
    /// RNG seed for randomized rounding kinds.
    pub seed: Option<u64>,
    /// Initial token placement.
    pub init: InitSpec,
    /// Stop condition.
    pub stop: StopSpec,
    /// Worker threads (a batch [`crate::Driver`] overrides this with its
    /// own pool size; results are thread-count independent).
    pub threads: usize,
    /// SOS flow-memory source.
    pub flow_memory: FlowMemory,
    /// Deterministic fault injection ([`FaultSpec::none`] = clean run).
    pub faults: FaultSpec,
    /// Deterministic dynamic-load injection ([`LoadSpec::none`] = the
    /// static workload).
    pub load: LoadSpec,
    /// Deterministic live-topology churn ([`ChurnSpec::none`] = static
    /// membership).
    pub churn: ChurnSpec,
    /// Optional periodic checkpointing (`ckpt=every:N:DIR`): the engine
    /// snapshots the full simulation state to `DIR/<name>.ckpt` every
    /// `N` rounds, exactly resumable via [`crate::checkpoint`].
    pub ckpt: Option<CheckpointPolicy>,
    /// State-storage width ([`MemSpec::Full`] = the bit-pinned f64/i64
    /// reference, [`MemSpec::Compact`] = f32/i32 at half the bytes).
    pub mem: MemSpec,
    /// Optional SOS→FOS hybrid switch.
    pub hybrid: Option<SwitchPolicy>,
    /// 1-based line of the scenario file this spec came from, when
    /// parsed by [`ScenarioSpec::parse_many`]. Provenance only: ignored
    /// by `PartialEq` and not serialized by `Display`.
    pub source_line: Option<usize>,
}

// Manual impl: `source_line` is provenance, not configuration — two
// specs describing the same experiment compare equal regardless of
// which file line (if any) each was read from, keeping the documented
// `Display`/`FromStr` round-trip equality exact.
impl PartialEq for ScenarioSpec {
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name
            && self.topology == other.topology
            && self.speeds == other.speeds
            && self.scheme == other.scheme
            && self.mode == other.mode
            && self.seed == other.seed
            && self.init == other.init
            && self.stop == other.stop
            && self.threads == other.threads
            && self.flow_memory == other.flow_memory
            && self.faults == other.faults
            && self.load == other.load
            && self.churn == other.churn
            && self.ckpt == other.ckpt
            && self.mem == other.mem
            && self.hybrid == other.hybrid
    }
}

impl ScenarioSpec {
    /// A scenario on `topology` with every other key at its default.
    pub fn new(topology: TopologySpec) -> Self {
        Self {
            name: "scenario".to_string(),
            topology,
            speeds: SpeedsSpec::default(),
            scheme: SchemeSpec::default(),
            mode: ModeSpec::default(),
            seed: None,
            init: InitSpec::default(),
            stop: StopSpec::default(),
            threads: 1,
            flow_memory: FlowMemory::default(),
            faults: FaultSpec::none(),
            load: LoadSpec::none(),
            churn: ChurnSpec::none(),
            ckpt: None,
            mem: MemSpec::default(),
            hybrid: None,
            source_line: None,
        }
    }

    /// Builds the scenario's graph instance.
    ///
    /// # Errors
    ///
    /// Wraps generator failures as [`BuildError::Graph`].
    pub fn build_graph(&self) -> Result<Graph, BuildError> {
        Ok(self.topology.build()?)
    }

    /// Assembles the experiment on an already-built graph (so callers can
    /// reuse one graph across many scenarios).
    ///
    /// # Errors
    ///
    /// Propagates every [`BuildError`] of the underlying
    /// [`crate::ExperimentBuilder`], plus speed/scheme resolution errors.
    pub fn experiment_on<'g>(&self, graph: &'g Graph) -> Result<Experiment<'g>, BuildError> {
        let n = graph.node_count();
        if n == 0 {
            return Err(BuildError::EmptyGraph);
        }
        let speeds = self.speeds.build(n)?;
        let scheme = self.scheme.resolve(graph, &speeds)?;
        let builder = Experiment::on(graph);
        let mut builder = match self.mode {
            ModeSpec::Continuous => builder.continuous(),
            ModeSpec::Discrete(spec) => builder.discrete_spec(spec),
        };
        builder = builder
            .scheme(scheme)
            .flow_memory(self.flow_memory)
            .threads(self.threads)
            .init(self.init.resolve(n))
            .stop(self.stop.to_condition())
            .faults(self.faults)
            .load(self.load)
            .churn(self.churn)
            .mem(self.mem);
        if !matches!(self.speeds, SpeedsSpec::Uniform) {
            builder = builder.speeds(speeds);
        }
        if let Some(seed) = self.seed {
            builder = builder.seed(seed);
        }
        if let Some(policy) = &self.ckpt {
            builder = builder.checkpoint(CheckpointConfig {
                policy: policy.clone(),
                name: self.name.clone(),
                spec_line: self.to_string(),
            });
        }
        if let Some(policy) = self.hybrid {
            builder = builder.hybrid(policy);
        }
        builder.build()
    }

    /// Builds the graph and runs the scenario to completion.
    ///
    /// # Errors
    ///
    /// Propagates graph and experiment build errors.
    pub fn run(&self) -> Result<RunReport, BuildError> {
        let graph = self.build_graph()?;
        Ok(self.experiment_on(&graph)?.run())
    }

    /// Parses a scenario file: one spec per line, `#` comments and blank
    /// lines ignored.
    ///
    /// # Errors
    ///
    /// The returned [`ParseError`] carries the 1-based line number of the
    /// offending line.
    pub fn parse_many(text: &str) -> Result<Vec<ScenarioSpec>, ParseError> {
        let mut specs = Vec::new();
        for (idx, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut spec: ScenarioSpec =
                line.parse().map_err(|e: ParseError| e.at_line(idx + 1))?;
            spec.source_line = Some(idx + 1);
            specs.push(spec);
        }
        Ok(specs)
    }
}

/// Keeps `name=` a single parseable token: whitespace and `=` would
/// shear the `key=value` tokenization (or smuggle extra keys), so they
/// are replaced with `_`.
fn sanitize_name(name: &str) -> std::borrow::Cow<'_, str> {
    let breaks_token = |c: char| c.is_whitespace() || c == '=';
    if name.contains(breaks_token) {
        std::borrow::Cow::Owned(name.replace(breaks_token, "_"))
    } else {
        std::borrow::Cow::Borrowed(name)
    }
}

impl fmt::Display for ScenarioSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "name={} topology={}",
            sanitize_name(&self.name),
            self.topology
        )?;
        write!(f, " speeds={} scheme={}", self.speeds, self.scheme)?;
        match self.mode {
            ModeSpec::Continuous => write!(f, " mode=continuous")?,
            ModeSpec::Discrete(rounding) => write!(f, " mode=discrete rounding={rounding}")?,
        }
        if let Some(seed) = self.seed {
            write!(f, " seed={seed}")?;
        }
        write!(f, " init={} stop={}", self.init, self.stop)?;
        write!(f, " threads={}", self.threads)?;
        let memory = match self.flow_memory {
            FlowMemory::Rounded => "rounded",
            FlowMemory::Scheduled => "scheduled",
        };
        write!(f, " flow_memory={memory}")?;
        if !self.faults.is_none() {
            write!(f, " faults={}", self.faults)?;
        }
        if !self.load.is_none() {
            write!(f, " load={}", self.load)?;
        }
        if !self.churn.is_none() {
            write!(f, " churn={}", self.churn)?;
        }
        if let Some(ckpt) = &self.ckpt {
            write!(f, " ckpt={ckpt}")?;
        }
        if self.mem != MemSpec::Full {
            write!(f, " mem={}", self.mem)?;
        }
        if let Some(policy) = self.hybrid {
            write!(f, " hybrid={policy}")?;
        }
        Ok(())
    }
}

impl FromStr for ScenarioSpec {
    type Err = ParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut name = None;
        let mut topology = None;
        let mut speeds = None;
        let mut scheme = None;
        let mut mode = None;
        let mut rounding = None;
        let mut seed = None;
        let mut init = None;
        let mut stop = None;
        let mut threads = None;
        let mut flow_memory = None;
        let mut faults = None;
        let mut load = None;
        let mut churn = None;
        let mut ckpt = None;
        let mut mem = None;
        let mut hybrid = None;
        for token in s.split_whitespace() {
            let (key, value) = token
                .split_once('=')
                .ok_or_else(|| ParseError::new(format!("expected key=value, got '{token}'")))?;
            let duplicate = |set: bool| {
                if set {
                    Err(ParseError::new(format!("duplicate key '{key}'")))
                } else {
                    Ok(())
                }
            };
            match key {
                "name" => {
                    duplicate(name.is_some())?;
                    name = Some(value.to_string());
                }
                "topology" => {
                    duplicate(topology.is_some())?;
                    topology = Some(value.parse::<TopologySpec>().map_err(|e| {
                        ParseError::new(format!("invalid topology '{value}': {e}"))
                    })?);
                }
                "speeds" => {
                    duplicate(speeds.is_some())?;
                    speeds = Some(value.parse::<SpeedsSpec>()?);
                }
                "scheme" => {
                    duplicate(scheme.is_some())?;
                    scheme = Some(value.parse::<SchemeSpec>()?);
                }
                "mode" => {
                    duplicate(mode.is_some())?;
                    mode = Some(match value {
                        "continuous" => false,
                        "discrete" => true,
                        other => {
                            return Err(ParseError::new(format!(
                                "unknown mode '{other}' (expected continuous or discrete)"
                            )))
                        }
                    });
                }
                "rounding" => {
                    duplicate(rounding.is_some())?;
                    rounding = Some(value.parse::<RoundingSpec>()?);
                }
                "seed" => {
                    duplicate(seed.is_some())?;
                    seed = Some(
                        value
                            .parse::<u64>()
                            .map_err(|_| ParseError::new(format!("invalid seed '{value}'")))?,
                    );
                }
                "init" => {
                    duplicate(init.is_some())?;
                    init = Some(value.parse::<InitSpec>()?);
                }
                "stop" => {
                    duplicate(stop.is_some())?;
                    stop = Some(value.parse::<StopSpec>()?);
                }
                "threads" => {
                    duplicate(threads.is_some())?;
                    threads =
                        Some(value.parse::<usize>().map_err(|_| {
                            ParseError::new(format!("invalid thread count '{value}'"))
                        })?);
                }
                "flow_memory" => {
                    duplicate(flow_memory.is_some())?;
                    flow_memory = Some(match value {
                        "rounded" => FlowMemory::Rounded,
                        "scheduled" => FlowMemory::Scheduled,
                        other => {
                            return Err(ParseError::new(format!(
                                "unknown flow memory '{other}' (expected rounded or scheduled)"
                            )))
                        }
                    });
                }
                "faults" => {
                    duplicate(faults.is_some())?;
                    faults = Some(value.parse::<FaultSpec>()?);
                }
                "load" => {
                    duplicate(load.is_some())?;
                    load = Some(value.parse::<LoadSpec>()?);
                }
                "churn" => {
                    duplicate(churn.is_some())?;
                    churn = Some(value.parse::<ChurnSpec>()?);
                }
                "ckpt" => {
                    duplicate(ckpt.is_some())?;
                    ckpt = Some(value.parse::<CheckpointPolicy>()?);
                }
                "mem" => {
                    duplicate(mem.is_some())?;
                    mem = Some(value.parse::<MemSpec>()?);
                }
                "hybrid" => {
                    duplicate(hybrid.is_some())?;
                    hybrid = Some(value.parse::<SwitchPolicy>()?);
                }
                other => {
                    return Err(ParseError::new(format!("unknown key '{other}'")));
                }
            }
        }
        let topology =
            topology.ok_or_else(|| ParseError::new("missing required key 'topology'"))?;
        let mode = match (mode, rounding) {
            (Some(false), None) => ModeSpec::Continuous,
            (Some(false), Some(_)) => {
                return Err(ParseError::new(
                    "rounding= is only valid with mode=discrete",
                ))
            }
            (Some(true) | None, rounding) => ModeSpec::Discrete(rounding.unwrap_or_default()),
        };
        Ok(ScenarioSpec {
            name: name.unwrap_or_else(|| "scenario".to_string()),
            topology,
            speeds: speeds.unwrap_or_default(),
            scheme: scheme.unwrap_or_default(),
            mode,
            seed,
            init: init.unwrap_or_default(),
            stop: stop.unwrap_or_default(),
            threads: threads.unwrap_or(1),
            flow_memory: flow_memory.unwrap_or_default(),
            faults: faults.unwrap_or_else(FaultSpec::none),
            load: load.unwrap_or_else(LoadSpec::none),
            churn: churn.unwrap_or_else(ChurnSpec::none),
            ckpt,
            mem: mem.unwrap_or_default(),
            hybrid,
            source_line: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_with_defaults() {
        let spec: ScenarioSpec = "topology=cycle:8".parse().unwrap();
        assert_eq!(spec.name, "scenario");
        assert_eq!(spec.topology, TopologySpec::Cycle { n: 8 });
        assert_eq!(spec.mode, ModeSpec::Discrete(RoundingSpec::Randomized));
        assert_eq!(spec.stop, StopSpec::Rounds(1000));
        assert_eq!(spec.threads, 1);
    }

    #[test]
    fn display_roundtrip_full() {
        let spec: ScenarioSpec = "name=hetero topology=torus2d:6:6 speeds=two_class:9:4 \
             scheme=sos:1.75 mode=discrete rounding=unbiased seed=3 init=point:0:36000 \
             stop=plateau:40:5000 threads=2 flow_memory=scheduled hybrid=local_diff:12.5"
            .parse()
            .unwrap();
        let text = spec.to_string();
        let again: ScenarioSpec = text.parse().unwrap();
        assert_eq!(again, spec);
        assert_eq!(again.to_string(), text);
    }

    #[test]
    fn parse_errors_carry_context() {
        for (text, needle) in [
            ("topology=cycle:8 bogus=1", "unknown key"),
            ("topology=cycle:8 topology=cycle:9", "duplicate key"),
            ("scheme=fos", "missing required key 'topology'"),
            ("topology=wat:3", "invalid topology"),
            (
                "topology=cycle:8 mode=continuous rounding=nearest",
                "only valid with mode=discrete",
            ),
            ("topology=cycle:8 stop=sometimes", "invalid stop condition"),
            ("topology=cycle:8 hybrid=at", "unknown hybrid policy"),
            ("topology=cycle:8 faults=crash", "in faults"),
            ("topology=cycle:8 faults=crash:2:1", "in faults"),
            (
                "topology=cycle:8 faults=none faults=none",
                "duplicate key 'faults'",
            ),
            ("topology=cycle:8 load=poisson", "in load"),
            ("topology=cycle:8 load=poisson:-1:2", "in load"),
            (
                "topology=cycle:8 load=none load=none",
                "duplicate key 'load'",
            ),
            (
                "topology=cycle:8 stop=steady:0",
                "steady window must be positive",
            ),
            (
                "topology=cycle:8 stop=horizon:0",
                "horizon must be positive",
            ),
        ] {
            let err = text.parse::<ScenarioSpec>().unwrap_err();
            assert!(
                err.message.contains(needle),
                "'{text}' -> '{}' (wanted '{needle}')",
                err.message
            );
        }
    }

    #[test]
    fn parse_many_skips_comments_and_numbers_lines() {
        let text = "# scenario file\n\nname=a topology=cycle:8\n   \nname=b topology=star:5\n";
        let specs = ScenarioSpec::parse_many(text).unwrap();
        assert_eq!(specs.len(), 2);
        assert_eq!(specs[0].name, "a");
        assert_eq!(specs[1].name, "b");
        let err = ScenarioSpec::parse_many("topology=cycle:8\nnope\n").unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn faults_key_roundtrips_and_defaults_to_none() {
        let spec: ScenarioSpec = "topology=cycle:8".parse().unwrap();
        assert!(spec.faults.is_none());
        assert!(!spec.to_string().contains("faults="));

        let spec: ScenarioSpec =
            "topology=torus2d:8:8 scheme=sos:1.7 mode=discrete rounding=nearest \
             faults=crash:0.1:7+shock:0.05:9 stop=rounds:64"
                .parse()
                .unwrap();
        assert_eq!(
            spec.faults,
            FaultSpec::none().with_crash(0.1, 7).with_shock(0.05, 9)
        );
        let text = spec.to_string();
        assert!(text.contains("faults=crash:0.1:7+shock:0.05:9"), "{text}");
        let again: ScenarioSpec = text.parse().unwrap();
        assert_eq!(again, spec);
    }

    #[test]
    fn load_key_roundtrips_and_defaults_to_none() {
        let spec: ScenarioSpec = "topology=cycle:8".parse().unwrap();
        assert!(spec.load.is_none());
        assert!(!spec.to_string().contains("load="));

        let spec: ScenarioSpec =
            "topology=torus2d:8:8 scheme=sos:1.7 mode=discrete rounding=nearest \
             load=poisson:0.5:7+hotspot:0:100:16:3 stop=steady:32"
                .parse()
                .unwrap();
        assert_eq!(
            spec.load,
            LoadSpec::none()
                .with_poisson(0.5, 7)
                .with_hotspot(0, 100, 16, 3)
        );
        assert_eq!(spec.stop, StopSpec::Steady { window: 32 });
        let text = spec.to_string();
        assert!(
            text.contains("load=poisson:0.5:7+hotspot:0:100:16:3"),
            "{text}"
        );
        assert!(text.contains("stop=steady:32"), "{text}");
        let again: ScenarioSpec = text.parse().unwrap();
        assert_eq!(again, spec);
    }

    #[test]
    fn churn_key_roundtrips_and_defaults_to_none() {
        let spec: ScenarioSpec = "topology=cycle:8".parse().unwrap();
        assert!(spec.churn.is_none());
        assert!(!spec.to_string().contains("churn="));

        let spec: ScenarioSpec =
            "topology=torus2d:8:8 scheme=sos:1.7 mode=discrete rounding=nearest \
             churn=flux:0.1:0.4:9:50 stop=rounds:64"
                .parse()
                .unwrap();
        assert_eq!(
            spec.churn,
            ChurnSpec::none().with_flux(0.1, 0.4, 9).with_initial(50.0)
        );
        let text = spec.to_string();
        assert!(text.contains("churn=flux:0.1:0.4:9:50"), "{text}");
        let again: ScenarioSpec = text.parse().unwrap();
        assert_eq!(again, spec);

        // The optional initial-load field is omitted when zero.
        let spec: ScenarioSpec = "topology=cycle:8 churn=flux:0.05:0.5:3".parse().unwrap();
        assert!(spec.to_string().ends_with("churn=flux:0.05:0.5:3"));

        for (text, needle) in [
            ("topology=cycle:8 churn=flux", "in churn"),
            ("topology=cycle:8 churn=flux:2:0.5:1", "in churn"),
            ("topology=cycle:8 churn=storm:0.1:0.1:1", "unknown churn"),
            (
                "topology=cycle:8 churn=none churn=none",
                "duplicate key 'churn'",
            ),
        ] {
            let err = text.parse::<ScenarioSpec>().unwrap_err();
            assert!(
                err.message.contains(needle),
                "'{text}' -> '{}' (wanted '{needle}')",
                err.message
            );
        }
    }

    #[test]
    fn mem_key_roundtrips_and_defaults_to_full() {
        let spec: ScenarioSpec = "topology=cycle:8".parse().unwrap();
        assert_eq!(spec.mem, MemSpec::Full);
        assert!(!spec.to_string().contains("mem="));

        let spec: ScenarioSpec = "topology=cycle:8 mem=compact".parse().unwrap();
        assert_eq!(spec.mem, MemSpec::Compact);
        let text = spec.to_string();
        assert!(text.contains("mem=compact"), "{text}");
        let again: ScenarioSpec = text.parse().unwrap();
        assert_eq!(again, spec);

        let err = "topology=cycle:8 mem=tiny"
            .parse::<ScenarioSpec>()
            .unwrap_err();
        assert!(err.message.contains("unknown mem"), "{}", err.message);
        let err = "topology=cycle:8 mem=full mem=full"
            .parse::<ScenarioSpec>()
            .unwrap_err();
        assert!(
            err.message.contains("duplicate key 'mem'"),
            "{}",
            err.message
        );
    }

    #[test]
    fn source_line_is_provenance_not_identity() {
        let text = "# file\nname=a topology=cycle:8\n\nname=b topology=star:5\n";
        let specs = ScenarioSpec::parse_many(text).unwrap();
        assert_eq!(specs[0].source_line, Some(2));
        assert_eq!(specs[1].source_line, Some(4));
        // Equality ignores provenance; Display does not serialize it.
        let reparsed: ScenarioSpec = specs[0].to_string().parse().unwrap();
        assert_eq!(reparsed.source_line, None);
        assert_eq!(reparsed, specs[0]);
    }

    #[test]
    fn display_sanitizes_hostile_names() {
        let mut spec = ScenarioSpec::new(TopologySpec::Cycle { n: 8 });
        spec.name = "fig 1 topology=star:3".into();
        let text = spec.to_string();
        let reparsed: ScenarioSpec = text.parse().unwrap();
        assert_eq!(reparsed.name, "fig_1_topology_star:3");
        assert_eq!(reparsed.topology, TopologySpec::Cycle { n: 8 });
    }

    #[test]
    fn missing_seed_surfaces_at_build_not_parse() {
        let spec: ScenarioSpec = "topology=cycle:8 mode=discrete rounding=randomized"
            .parse()
            .unwrap();
        let g = spec.build_graph().unwrap();
        let err = spec.experiment_on(&g).unwrap_err();
        assert!(matches!(err, BuildError::MissingSeed(_)));
    }

    #[test]
    fn sos_opt_resolves_beta_from_spectrum() {
        let spec: ScenarioSpec = "topology=torus2d:8:8 scheme=sos_opt mode=continuous"
            .parse()
            .unwrap();
        let g = spec.build_graph().unwrap();
        let exp = spec.experiment_on(&g).unwrap();
        let expected = sodiff_linalg::spectral::analyze(&g, &Speeds::uniform(64)).beta_opt();
        assert_eq!(exp.scheme(), Scheme::Sos { beta: expected });
    }

    #[test]
    fn scenario_run_executes() {
        let spec: ScenarioSpec =
            "topology=complete:16 mode=discrete rounding=nearest init=point:0:1600 stop=rounds:20"
                .parse()
                .unwrap();
        let report = spec.run().unwrap();
        assert_eq!(report.rounds, 20);
        assert!(report.final_metrics.max_minus_avg <= 2.0);
    }
}
