//! Batch execution of scenario files over one persistent worker pool or
//! across concurrently scheduled scenarios.
//!
//! A [`Driver`] takes a slice of [`ScenarioSpec`]s and runs them either
//! back to back or concurrently:
//!
//! * [`Driver::with_threads`]`(t > 1)` parallelizes **within** each
//!   simulation: the `t − 1` pool workers are spawned **once** and
//!   re-attached to every simulation in the batch (see [`crate::pool`]),
//!   instead of paying a spawn/join cycle per `Simulator` — the
//!   difference measured by the `driver_batch` entry of
//!   `BENCH_rounds.json`. Best for batches of few large scenarios.
//! * [`Driver::concurrent`]`(k)` parallelizes **across** the batch: `k`
//!   workers pull scenarios from a shared work-stealing queue and run
//!   each one on the sequential executor. Independent scenarios never
//!   synchronize, so this scales with cores for the common serving shape
//!   — many small-to-medium scenarios — where per-round barriers would
//!   dominate. Measured by the `driver_batch_concurrent` entry.
//!
//! Both are bit-identical to [`Driver::new`]'s sequential execution: the
//! pooled executor reproduces the sequential executor exactly, and
//! concurrent scheduling only reorders *which* scenario runs when — each
//! scenario's simulation is self-contained, and reports are returned in
//! input order. A batch report therefore never depends on the driver's
//! parallelism (proven by `tests/driver_concurrent.rs`).
//!
//! # Crash isolation, retries, and durable recovery
//!
//! [`Driver::run_batch`] is infallible: a scenario that fails to build,
//! panics mid-run, or diverges to non-finite loads is recorded as a
//! [`ScenarioError`] (with its input position and, when the spec came
//! from a file, its 1-based line number) and the **rest of the batch
//! keeps running**. Panics are caught per scenario; a pooled driver
//! whose workers may be deserted mid-barrier by the panic quarantines
//! that pool and transparently spawns a fresh one for the remaining
//! scenarios. With [`Driver::retries`], panicked scenarios get bounded
//! re-runs (fresh pool, capped exponential backoff) before being
//! recorded; attempt counts land in [`ScenarioReport::attempts`].
//!
//! Whole batches survive process death too: [`Driver::run_batch_durable`]
//! writes a plain-text **recovery journal** (all spec lines up front,
//! one `done`/`fail` line appended and flushed per finished scenario),
//! and [`Driver::resume_batch`] replays it — completed scenarios are
//! skipped, and scenarios that were checkpointing (`ckpt=every:N:DIR`,
//! see [`crate::checkpoint`]) restart **bit-identically** from their
//! latest snapshot instead of from round 0.
//!
//! # Example
//!
//! ```
//! use sodiff_core::{Driver, ScenarioSpec};
//!
//! let specs = ScenarioSpec::parse_many(
//!     "name=small topology=torus2d:8:8 scheme=sos:1.9 seed=1 stop=rounds:50\n\
//!      name=ring  topology=cycle:32 seed=2 stop=rounds:100\n",
//! )
//! .unwrap();
//! let batch = Driver::new().run_batch(&specs);
//! assert!(batch.errors.is_empty());
//! assert_eq!(batch.scenarios.len(), 2);
//! assert_eq!(batch.total_rounds, 150);
//! ```

use std::collections::HashSet;
use std::fmt;
use std::fs;
use std::io::Write;
use std::panic::{self, AssertUnwindSafe};
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

use crate::checkpoint::{read_checkpoint, Checkpoint, CheckpointConfig};
use crate::engine::RunReport;
use crate::error::{BuildError, CheckpointError, ParseError};
use crate::pool::WorkerPool;
use crate::scenario::ScenarioSpec;

/// First line of every recovery journal.
const JOURNAL_HEADER: &str = "sodiff-journal v1";

/// A scenario's outcome plus the number of attempts it consumed.
type Outcome = (Result<ScenarioReport, ScenarioFailure>, u32);

/// One scenario's outcome inside a [`BatchReport`].
#[derive(Debug, Clone)]
pub struct ScenarioReport {
    /// The scenario's `name=`.
    pub name: String,
    /// Canonical spec text (round-trips through `ScenarioSpec::from_str`).
    pub spec: String,
    /// Nodes of the built graph.
    pub nodes: usize,
    /// Edges of the built graph.
    pub edges: usize,
    /// The run's report (bit-identical to running the scenario through a
    /// hand-built `Simulator`).
    pub report: RunReport,
    /// Wall-clock time of this scenario (graph build + rounds).
    pub wall: Duration,
    /// How many attempts this scenario took (1 = first try succeeded;
    /// each [`Driver::retries`] re-run after a panic adds one).
    pub attempts: u32,
}

/// Why one scenario of a batch failed; see [`ScenarioError`].
#[derive(Debug)]
#[non_exhaustive]
pub enum ScenarioFailure {
    /// The scenario failed to build (bad topology, parameters, …).
    Build(BuildError),
    /// The scenario panicked mid-run; carries the panic message.
    Panicked(String),
    /// The run completed but its final loads are non-finite.
    Diverged(String),
    /// The scenario's checkpoint could not be restored during
    /// [`Driver::resume_batch`] (damaged file, or it belongs to a
    /// different scenario); the scenario was **not** run.
    Checkpoint(CheckpointError),
}

impl fmt::Display for ScenarioFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioFailure::Build(e) => write!(f, "{e}"),
            ScenarioFailure::Panicked(msg) => write!(f, "panicked: {msg}"),
            ScenarioFailure::Diverged(msg) => write!(f, "diverged: {msg}"),
            ScenarioFailure::Checkpoint(e) => write!(f, "checkpoint: {e}"),
        }
    }
}

impl std::error::Error for ScenarioFailure {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ScenarioFailure::Build(e) => Some(e),
            ScenarioFailure::Checkpoint(e) => Some(e),
            ScenarioFailure::Panicked(_) | ScenarioFailure::Diverged(_) => None,
        }
    }
}

/// One failed scenario of a batch, anchored to its input position.
///
/// [`Driver::run_batch`] collects these (in input order) instead of
/// aborting at the earliest failure, so one bad line in a scenario file
/// no longer hides the results — or the other errors — of the rest.
#[derive(Debug)]
pub struct ScenarioError {
    /// 0-based position of the scenario in the batch slice.
    pub index: usize,
    /// The scenario's `name=`.
    pub name: String,
    /// 1-based scenario-file line ([`ScenarioSpec::parse_many`]
    /// provenance), when known.
    pub line: Option<usize>,
    /// What went wrong.
    pub error: ScenarioFailure,
    /// How many attempts were made before giving up (0 when the
    /// scenario never started, e.g. an unreadable checkpoint).
    pub attempts: u32,
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "scenario '{}' (input #{}", self.name, self.index + 1)?;
        if let Some(line) = self.line {
            write!(f, ", line {line}")?;
        }
        write!(f, "): {}", self.error)
    }
}

impl std::error::Error for ScenarioError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.error)
    }
}

/// Outcome of a whole batch, with aggregate metrics across the
/// scenarios that completed.
#[derive(Debug)]
pub struct BatchReport {
    /// Per-scenario reports of the **successful** scenarios, in input
    /// order.
    pub scenarios: Vec<ScenarioReport>,
    /// Failed scenarios, in input order; empty for an all-green batch.
    pub errors: Vec<ScenarioError>,
    /// Total rounds executed across the successful scenarios.
    pub total_rounds: u64,
    /// Total wall-clock time of the batch.
    pub total_wall: Duration,
    /// Worst final `max − avg` across successful scenarios.
    pub worst_max_minus_avg: f64,
    /// Mean final `max − avg` across successful scenarios.
    pub mean_max_minus_avg: f64,
    /// Worst windowed p99 deviation across the successful scenarios
    /// that ran under a `stop=steady:`/`stop=horizon:` mode (`None`
    /// when no scenario reported steady-state statistics).
    pub worst_steady_p99: Option<f64>,
    /// Total attempts across all scenarios (equals the scenario count
    /// when nothing was retried; see [`Driver::retries`]).
    pub total_attempts: u64,
    /// Churn event totals summed across the successful scenarios (all
    /// zero when no scenario declared a `churn=` plan); see
    /// [`crate::ChurnEvents`].
    pub churn: crate::ChurnEvents,
}

impl BatchReport {
    fn assemble(
        scenarios: Vec<ScenarioReport>,
        errors: Vec<ScenarioError>,
        total_wall: Duration,
    ) -> Self {
        let total_rounds = scenarios.iter().map(|s| s.report.rounds).sum();
        let finals: Vec<f64> = scenarios
            .iter()
            .map(|s| s.report.final_metrics.max_minus_avg)
            .collect();
        let worst = finals.iter().copied().fold(0.0f64, f64::max);
        let mean = if finals.is_empty() {
            0.0
        } else {
            finals.iter().sum::<f64>() / finals.len() as f64
        };
        let worst_steady_p99 = scenarios
            .iter()
            .filter_map(|s| s.report.steady.map(|st| st.p99_dev))
            .reduce(f64::max);
        let total_attempts = scenarios.iter().map(|s| u64::from(s.attempts)).sum::<u64>()
            + errors.iter().map(|e| u64::from(e.attempts)).sum::<u64>();
        let churn = scenarios.iter().map(|s| s.report.churn).fold(
            crate::ChurnEvents::default(),
            |acc, e| crate::ChurnEvents {
                departures: acc.departures + e.departures,
                arrivals: acc.arrivals + e.arrivals,
                handoffs: acc.handoffs + e.handoffs,
                joined: acc.joined + e.joined,
                departed: acc.departed + e.departed,
            },
        );
        Self {
            scenarios,
            errors,
            total_rounds,
            total_wall,
            worst_max_minus_avg: worst,
            mean_max_minus_avg: mean,
            worst_steady_p99,
            total_attempts,
            churn,
        }
    }
}

/// Journal entries are line-oriented: flatten any embedded newlines out
/// of failure messages before appending them.
fn journal_text(message: &str) -> String {
    message.replace(['\n', '\r'], " ")
}

/// Parses a recovery journal into its specs (with journal-line
/// provenance) and the set of finished (`done` or `fail`) indices.
fn parse_journal(text: &str) -> Result<(Vec<ScenarioSpec>, HashSet<usize>), CheckpointError> {
    let mut lines = text.lines().enumerate();
    match lines.next() {
        Some((_, l)) if l.trim() == JOURNAL_HEADER => {}
        Some((_, l)) => {
            return Err(CheckpointError::Journal {
                line: 1,
                message: format!("expected '{JOURNAL_HEADER}' header, found '{l}'"),
            });
        }
        None => {
            return Err(CheckpointError::Journal {
                line: 1,
                message: "empty journal".to_string(),
            });
        }
    }
    let mut specs: Vec<ScenarioSpec> = Vec::new();
    let mut finished = HashSet::new();
    for (idx, raw) in lines {
        let line = idx + 1;
        let entry = raw.trim();
        if entry.is_empty() {
            continue;
        }
        let err = |message: String| CheckpointError::Journal { line, message };
        if let Some(spec_text) = entry.strip_prefix("spec ") {
            let mut spec: ScenarioSpec = spec_text
                .parse()
                .map_err(|e: ParseError| err(e.to_string()))?;
            spec.source_line = Some(line);
            specs.push(spec);
        } else if let Some(rest) = entry
            .strip_prefix("done ")
            .or_else(|| entry.strip_prefix("fail "))
        {
            let index_text = rest.split_whitespace().next().unwrap_or("");
            let i: usize = index_text
                .parse()
                .map_err(|_| err(format!("invalid scenario index '{index_text}'")))?;
            if i >= specs.len() {
                return Err(err(format!(
                    "scenario index {i} out of range ({} specs declared)",
                    specs.len()
                )));
            }
            finished.insert(i);
        } else {
            return Err(err(format!("unrecognized journal entry '{entry}'")));
        }
    }
    Ok((specs, finished))
}

/// Checkpoint-vs-journal spec equality, with the execution-only
/// `threads=` key (results never depend on it) normalized away.
/// `ScenarioSpec`'s equality already ignores file-line provenance.
fn specs_equivalent(a: &ScenarioSpec, b: &ScenarioSpec) -> bool {
    let mut a = a.clone();
    a.threads = b.threads;
    a == *b
}

/// Renders a caught panic payload; `&str`/`String` payloads (the
/// overwhelmingly common case: `panic!`, `assert!`, `unwrap`) pass
/// through verbatim.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "scenario panicked with a non-string payload".to_string()
    }
}

/// Executes batches of [`ScenarioSpec`]s, reusing one persistent worker
/// pool across all simulations or scheduling independent scenarios
/// concurrently; see the module docs above.
pub struct Driver {
    threads: usize,
    concurrency: usize,
    retries: usize,
    // Mutex (not a plain field) so a panicking scenario can quarantine a
    // pool whose workers it deserted mid-barrier and install a fresh one
    // for the rest of the batch.
    pool: Mutex<Option<Arc<WorkerPool>>>,
}

impl Driver {
    /// A sequential driver: every scenario runs on the calling thread,
    /// regardless of its `threads=` key (no pools are spawned).
    pub fn new() -> Self {
        Self {
            threads: 1,
            concurrency: 1,
            retries: 0,
            pool: Mutex::new(None),
        }
    }

    /// A driver whose simulations all run on one persistent pool of
    /// `threads` participants (spawned here, reused for every scenario).
    /// The pool size overrides each scenario's `threads=` key; reports
    /// are unaffected because pooled execution is bit-identical to
    /// sequential.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::ZeroThreads`] if `threads == 0`.
    pub fn with_threads(threads: usize) -> Result<Self, BuildError> {
        if threads == 0 {
            return Err(BuildError::ZeroThreads);
        }
        Ok(Self {
            threads,
            concurrency: 1,
            retries: 0,
            pool: Mutex::new((threads > 1).then(|| Arc::new(WorkerPool::new(threads)))),
        })
    }

    /// A driver that schedules up to `workers` **independent scenarios
    /// concurrently**: [`Driver::run_batch`] spawns that many scoped
    /// worker threads which pull the next unstarted scenario from a
    /// shared work-stealing queue and run it on the sequential
    /// (single-threaded) executor. Reports are returned in input order
    /// and are bit-identical to [`Driver::new`]'s sequential runs — each
    /// scenario's simulation is completely self-contained.
    ///
    /// This is the right shape when the batch has at least as many
    /// scenarios as cores; use [`Driver::with_threads`] to instead
    /// parallelize within few large scenarios.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::ZeroThreads`] if `workers == 0`.
    pub fn concurrent(workers: usize) -> Result<Self, BuildError> {
        if workers == 0 {
            return Err(BuildError::ZeroThreads);
        }
        Ok(Self {
            threads: 1,
            concurrency: workers,
            retries: 0,
            pool: Mutex::new(None),
        })
    }

    /// Gives every **panicking** scenario up to `n` additional attempts,
    /// each on a freshly quarantined pool, after a capped exponential
    /// backoff (25 ms doubling per attempt, at most 800 ms). Build
    /// failures and divergence are deterministic and never retried.
    /// Attempt counts are recorded on [`ScenarioReport::attempts`] and
    /// [`ScenarioError::attempts`].
    #[must_use]
    pub fn retries(mut self, n: usize) -> Self {
        self.retries = n;
        self
    }

    /// Maximum extra attempts per panicking scenario (0 by default).
    pub fn max_retries(&self) -> usize {
        self.retries
    }

    /// Worker threads per simulation (1 = sequential).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Scenarios scheduled concurrently by [`Driver::run_batch`]
    /// (1 = back-to-back).
    pub fn concurrency(&self) -> usize {
        self.concurrency
    }

    /// The pool simulations currently attach to, if any.
    fn attached_pool(&self) -> Option<Arc<WorkerPool>> {
        self.pool
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    /// Replaces a possibly-wedged pool after a scenario panicked.
    ///
    /// The panic may have deserted the pool's workers mid-barrier;
    /// *dropping* such a pool would block forever on the same barrier,
    /// so the wedged pool is deliberately leaked (its parked workers
    /// with it) and a fresh pool of the same size takes its place for
    /// the rest of the batch.
    fn quarantine_pool(&self) {
        let mut slot = self.pool.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(old) = slot.take() {
            std::mem::forget(old);
            *slot = Some(Arc::new(WorkerPool::new(self.threads)));
        }
    }

    /// Runs one scenario on this driver's pool.
    ///
    /// # Errors
    ///
    /// Build failures are wrapped as [`BuildError::Scenario`] carrying the
    /// scenario's name.
    pub fn run_spec(&self, spec: &ScenarioSpec) -> Result<ScenarioReport, BuildError> {
        let wrap = |source: BuildError| BuildError::Scenario {
            name: spec.name.clone(),
            source: Box::new(source),
        };
        let start = Instant::now();
        let graph = spec.build_graph().map_err(wrap)?;
        // The driver owns execution: its thread count (and pool) replaces
        // the scenario's `threads=` key, so a sequential driver never
        // spawns per-scenario pools. Results are unaffected — pooled
        // execution is bit-identical to sequential.
        let mut spec = spec.clone();
        spec.threads = self.threads;
        let experiment = spec.experiment_on(&graph).map_err(wrap)?;
        let report = match self.attached_pool() {
            Some(pool) => {
                let mut sim = experiment.simulator_on(pool);
                experiment.run_on(&mut sim, &mut crate::observer::NullObserver)
            }
            None => {
                let mut sim = experiment.simulator();
                experiment.run_on(&mut sim, &mut crate::observer::NullObserver)
            }
        };
        Ok(ScenarioReport {
            name: spec.name.clone(),
            spec: spec.to_string(),
            nodes: graph.node_count(),
            edges: graph.edge_count(),
            report,
            wall: start.elapsed(),
            attempts: 1,
        })
    }

    /// One crash-isolated scenario: build failures, panics, and
    /// non-finite results all come back as a typed failure instead of
    /// unwinding into (and killing) the batch. Panics are retried up to
    /// [`Driver::retries`] times, each attempt on a fresh quarantined
    /// pool after a capped exponential backoff. Returns the outcome and
    /// the number of attempts made.
    fn run_guarded(&self, attempt: impl Fn() -> Result<ScenarioReport, BuildError>) -> Outcome {
        let mut attempts: u32 = 0;
        loop {
            attempts += 1;
            let outcome = match panic::catch_unwind(AssertUnwindSafe(&attempt)) {
                Ok(Ok(report)) => {
                    let max_minus_avg = report.report.final_metrics.max_minus_avg;
                    if max_minus_avg.is_finite() {
                        Ok(report)
                    } else {
                        Err(ScenarioFailure::Diverged(format!(
                            "final max − avg is {max_minus_avg}"
                        )))
                    }
                }
                Ok(Err(e)) => Err(ScenarioFailure::Build(e)),
                Err(payload) => {
                    self.quarantine_pool();
                    Err(ScenarioFailure::Panicked(panic_message(payload)))
                }
            };
            match outcome {
                // Only panics are worth retrying: builds and divergence
                // are deterministic in the spec, a panic may be a wedged
                // environment the fresh pool already replaced.
                Err(ScenarioFailure::Panicked(_)) if (attempts as usize) <= self.retries => {
                    std::thread::sleep(Duration::from_millis(25u64 << (attempts - 1).min(5)));
                }
                outcome => {
                    return (
                        outcome.map(|mut report| {
                            report.attempts = attempts;
                            report
                        }),
                        attempts,
                    );
                }
            }
        }
    }

    /// Runs every scenario and aggregates the results (in input order).
    /// With [`Driver::concurrent`], up to `concurrency` scenarios are in
    /// flight at once; the per-scenario reports are identical to a
    /// sequential driver's either way.
    ///
    /// The batch always runs to completion: scenarios that fail to
    /// build, panic, or diverge are collected (in input order) in
    /// [`BatchReport::errors`] while the rest execute normally.
    pub fn run_batch(&self, specs: &[ScenarioSpec]) -> BatchReport {
        self.run_batch_with(specs, |spec| self.run_spec(spec))
    }

    /// [`Driver::run_batch`] with an injectable per-scenario runner —
    /// the crash-isolation seam the fault-injection tests drive panics
    /// through. Not part of the stable API.
    #[doc(hidden)]
    pub fn run_batch_with(
        &self,
        specs: &[ScenarioSpec],
        runner: impl Fn(&ScenarioSpec) -> Result<ScenarioReport, BuildError> + Sync,
    ) -> BatchReport {
        self.run_batch_core(specs, None, None, &|_, spec| runner(spec))
    }

    /// Shared engine behind all batch entry points. `indices` maps
    /// positions in `specs` back to original batch positions (identity
    /// when `None`); `journal` receives a flushed `done`/`fail` line as
    /// each scenario finishes; `runner` gets the position in `specs`.
    fn run_batch_core(
        &self,
        specs: &[ScenarioSpec],
        indices: Option<&[usize]>,
        journal: Option<&Mutex<fs::File>>,
        runner: &(impl Fn(usize, &ScenarioSpec) -> Result<ScenarioReport, BuildError> + Sync),
    ) -> BatchReport {
        let start = Instant::now();
        let orig = |i: usize| indices.map_or(i, |map| map[i]);
        let run_one = |i: usize, spec: &ScenarioSpec| {
            let outcome = self.run_guarded(|| runner(i, spec));
            if let Some(sink) = journal {
                let entry = match &outcome.0 {
                    Ok(_) => format!("done {}", orig(i)),
                    Err(e) => format!("fail {} {}", orig(i), journal_text(&e.to_string())),
                };
                let mut file = sink.lock().unwrap_or_else(PoisonError::into_inner);
                // A journal write failure must not fail the batch: the
                // worst case is re-running a finished scenario on resume.
                let _ = writeln!(file, "{entry}");
                let _ = file.flush();
            }
            outcome
        };
        let results: Vec<Outcome> = if self.concurrency <= 1 || specs.len() <= 1 {
            specs
                .iter()
                .enumerate()
                .map(|(i, spec)| run_one(i, spec))
                .collect()
        } else {
            let slots: Vec<Mutex<Option<Outcome>>> =
                specs.iter().map(|_| Mutex::new(None)).collect();
            // Work-stealing queue over the batch: each worker claims
            // the next unstarted scenario, so long and short scenarios
            // balance themselves without any up-front partitioning.
            // Workers never unwind (run_guarded catches), so every
            // slot is filled even when scenarios fail.
            let next = AtomicUsize::new(0);
            std::thread::scope(|scope| {
                for _ in 0..self.concurrency.min(specs.len()) {
                    scope.spawn(|| loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(spec) = specs.get(i) else { break };
                        let result = run_one(i, spec);
                        *slots[i].lock().unwrap_or_else(PoisonError::into_inner) = Some(result);
                    });
                }
            });
            slots
                .into_iter()
                .map(|slot| {
                    slot.into_inner()
                        .unwrap_or_else(PoisonError::into_inner)
                        .expect("every scenario slot is filled before the scope ends")
                })
                .collect()
        };
        let mut scenarios = Vec::new();
        let mut errors = Vec::new();
        for (index, (spec, (result, attempts))) in specs.iter().zip(results).enumerate() {
            match result {
                Ok(report) => scenarios.push(report),
                Err(error) => errors.push(ScenarioError {
                    index: orig(index),
                    name: spec.name.clone(),
                    line: spec.source_line,
                    error,
                    attempts,
                }),
            }
        }
        BatchReport::assemble(scenarios, errors, start.elapsed())
    }

    /// [`Driver::run_batch`] with a durable **recovery journal**: before
    /// anything runs, the canonical spec line of every scenario is
    /// written to `journal`; as each scenario finishes, a `done <i>` (or
    /// `fail <i> <message>`) line is appended and flushed. If the
    /// process dies mid-batch, [`Driver::resume_batch`] replays the
    /// journal — finished scenarios are skipped, and scenarios that were
    /// checkpointing (`ckpt=every:N:DIR`) restart from their latest
    /// snapshot instead of from round 0.
    ///
    /// The journal is a human-readable text file:
    ///
    /// ```text
    /// sodiff-journal v1
    /// spec name=a topology=torus2d:8:8 seed=1 ... stop=rounds:60
    /// spec name=b topology=cycle:17 seed=2 ... stop=rounds:45
    /// done 0
    /// fail 1 panicked: ...
    /// ```
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Io`] when the journal cannot be created or
    /// seeded. Scenario failures do **not** error the call — they are
    /// recorded in the report (and the journal) exactly like in
    /// [`Driver::run_batch`].
    pub fn run_batch_durable(
        &self,
        specs: &[ScenarioSpec],
        journal: &Path,
    ) -> Result<BatchReport, CheckpointError> {
        let io = |e: std::io::Error| CheckpointError::io(journal, e);
        if let Some(parent) = journal.parent() {
            if !parent.as_os_str().is_empty() {
                fs::create_dir_all(parent).map_err(|e| CheckpointError::io(parent, e))?;
            }
        }
        let mut file = fs::File::create(journal).map_err(io)?;
        writeln!(file, "{JOURNAL_HEADER}").map_err(io)?;
        for spec in specs {
            writeln!(file, "spec {spec}").map_err(io)?;
        }
        file.flush().map_err(io)?;
        let sink = Mutex::new(file);
        Ok(self.run_batch_core(specs, None, Some(&sink), &|_, spec| self.run_spec(spec)))
    }

    /// Resumes a batch from a [`Driver::run_batch_durable`] journal:
    /// scenarios already marked `done`/`fail` are skipped, scenarios
    /// with a readable checkpoint continue from its snapshot (the
    /// resumed report covers only the remaining rounds, but the final
    /// state is bit-identical to an uninterrupted run), and everything
    /// else re-runs from round 0. New outcomes are appended to the same
    /// journal, so a resume interrupted again is itself resumable.
    /// [`ScenarioError::index`] values refer to the **original** batch
    /// positions.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Io`] when the journal cannot be read or
    /// reopened, and [`CheckpointError::Journal`] (with the offending
    /// 1-based line) for malformed entries. A damaged *checkpoint file*
    /// does not error the call: its scenario is recorded as a
    /// line-anchored [`ScenarioFailure::Checkpoint`] in
    /// [`BatchReport::errors`] and the rest of the batch proceeds.
    pub fn resume_batch(&self, journal: &Path) -> Result<BatchReport, CheckpointError> {
        let text = fs::read_to_string(journal).map_err(|e| CheckpointError::io(journal, e))?;
        let (specs, finished) = parse_journal(&text)?;
        let file = fs::OpenOptions::new()
            .append(true)
            .open(journal)
            .map_err(|e| CheckpointError::io(journal, e))?;
        let sink = Mutex::new(file);
        let start = Instant::now();

        // Partition the unfinished scenarios into restorable runs (a
        // readable checkpoint whose embedded spec matches the journal's)
        // and from-scratch runs. Checkpoint damage is a per-scenario
        // failure — journaled like any other — not a batch error.
        let mut run_specs = Vec::new();
        let mut run_indices = Vec::new();
        let mut checkpoints: Vec<Option<Checkpoint>> = Vec::new();
        let mut ckpt_errors = Vec::new();
        for (i, spec) in specs.iter().enumerate() {
            if finished.contains(&i) {
                continue;
            }
            let mut restored = None;
            if let Some(policy) = &spec.ckpt {
                let cfg = CheckpointConfig {
                    policy: policy.clone(),
                    name: spec.name.clone(),
                    spec_line: spec.to_string(),
                };
                let path = cfg.latest_path();
                if path.exists() {
                    let loaded = read_checkpoint(&path).and_then(|ckpt| {
                        if specs_equivalent(&ckpt.spec, spec) {
                            Ok(ckpt)
                        } else {
                            Err(CheckpointError::Mismatch(format!(
                                "checkpoint {} was written by scenario '{}', not '{}'",
                                path.display(),
                                ckpt.spec.name,
                                spec.name
                            )))
                        }
                    });
                    match loaded {
                        Ok(ckpt) => restored = Some(ckpt),
                        Err(e) => {
                            {
                                let mut file = sink.lock().unwrap_or_else(PoisonError::into_inner);
                                let _ = writeln!(file, "fail {i} {}", journal_text(&e.to_string()));
                                let _ = file.flush();
                            }
                            ckpt_errors.push(ScenarioError {
                                index: i,
                                name: spec.name.clone(),
                                line: spec.source_line,
                                error: ScenarioFailure::Checkpoint(e),
                                attempts: 0,
                            });
                            continue;
                        }
                    }
                }
            }
            checkpoints.push(restored);
            run_specs.push(spec.clone());
            run_indices.push(i);
        }

        let mut report =
            self.run_batch_core(&run_specs, Some(&run_indices), Some(&sink), &|pos, spec| {
                match &checkpoints[pos] {
                    Some(ckpt) => self.run_spec_resumed(spec, ckpt),
                    None => self.run_spec(spec),
                }
            });
        report.errors.extend(ckpt_errors);
        report.errors.sort_by_key(|e| e.index);
        report.total_wall = start.elapsed();
        Ok(report)
    }

    /// [`Driver::run_spec`] continued from a checkpoint: restores the
    /// snapshot into a freshly built simulator (attached to this
    /// driver's pool) and runs only the remaining part of the spec's
    /// stop condition.
    fn run_spec_resumed(
        &self,
        spec: &ScenarioSpec,
        ckpt: &Checkpoint,
    ) -> Result<ScenarioReport, BuildError> {
        let wrap = |source: BuildError| BuildError::Scenario {
            name: spec.name.clone(),
            source: Box::new(source),
        };
        let start = Instant::now();
        let graph = spec.build_graph().map_err(wrap)?;
        let mut spec = spec.clone();
        spec.threads = self.threads;
        let experiment = spec.experiment_on(&graph).map_err(wrap)?;
        let mut sim = match self.attached_pool() {
            Some(pool) => experiment.simulator_on(pool),
            None => experiment.simulator(),
        };
        sim.restore(&ckpt.snapshot)
            .map_err(BuildError::from)
            .map_err(wrap)?;
        let stop = ckpt.snapshot.remaining_stop(spec.stop);
        let observer = &mut crate::observer::NullObserver;
        let report = match experiment.hybrid_policy() {
            Some(policy) => sim.run_hybrid_with(policy, stop, observer),
            None => sim.run_until_with(stop, observer),
        };
        Ok(ScenarioReport {
            name: spec.name.clone(),
            spec: spec.to_string(),
            nodes: graph.node_count(),
            edges: graph.edge_count(),
            report,
            wall: start.elapsed(),
            attempts: 1,
        })
    }
}

impl Default for Driver {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_specs() -> Vec<ScenarioSpec> {
        ScenarioSpec::parse_many(
            "name=torus topology=torus2d:6:6 scheme=sos:1.8 seed=4 stop=rounds:80\n\
             name=cube topology=hypercube:5 seed=5 stop=rounds:40\n\
             name=ideal topology=cycle:12 mode=continuous scheme=sos:1.5 stop=rounds:60\n",
        )
        .unwrap()
    }

    #[test]
    fn batch_aggregates_rounds() {
        let batch = Driver::new().run_batch(&sample_specs());
        assert!(batch.errors.is_empty());
        assert_eq!(batch.scenarios.len(), 3);
        assert_eq!(batch.total_rounds, 80 + 40 + 60);
        assert!(batch.worst_max_minus_avg >= batch.mean_max_minus_avg);
        assert_eq!(batch.scenarios[0].nodes, 36);
        assert_eq!(batch.scenarios[1].edges, 80);
    }

    #[test]
    fn pooled_batch_is_bit_identical_to_sequential() {
        let specs = sample_specs();
        let seq = Driver::new().run_batch(&specs);
        let pooled = Driver::with_threads(3).unwrap().run_batch(&specs);
        assert!(seq.errors.is_empty() && pooled.errors.is_empty());
        for (a, b) in seq.scenarios.iter().zip(&pooled.scenarios) {
            assert_eq!(a.report, b.report, "{}", a.name);
        }
    }

    #[test]
    fn concurrent_specs_on_one_pool_stay_correct() {
        // Two threads pushing different scenarios through the same pooled
        // driver must serialize on the pool's round lock and still produce
        // the sequential results — the barrier protocol admits one
        // external participant at a time.
        let specs = sample_specs();
        let sequential = Driver::new().run_batch(&specs);
        let driver = Driver::with_threads(3).unwrap();
        let reports: Vec<ScenarioReport> = std::thread::scope(|scope| {
            let handles: Vec<_> = specs
                .iter()
                .map(|spec| scope.spawn(|| driver.run_spec(spec).unwrap()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for (a, b) in sequential.scenarios.iter().zip(&reports) {
            assert_eq!(a.report, b.report, "{}", a.name);
        }
    }

    #[test]
    fn sequential_driver_ignores_scenario_threads() {
        // `threads=8` in the spec must not make Driver::new spawn pools;
        // the run still succeeds and matches the sequential result.
        let specs = ScenarioSpec::parse_many(
            "name=threaded topology=torus2d:5:5 seed=2 threads=8 stop=rounds:40",
        )
        .unwrap();
        let driven = Driver::new().run_batch(&specs);
        let standalone = specs[0].run().unwrap();
        assert_eq!(driven.scenarios[0].report, standalone);
    }

    #[test]
    fn failing_scenario_is_reported_not_fatal() {
        // `broken` parses but cannot build: randomized rounding without a
        // seed. (Out-of-range parameters like `sos:3.0` are rejected at
        // parse time with a line number.) The batch still completes `ok`.
        let specs = ScenarioSpec::parse_many(
            "name=ok topology=cycle:8 seed=1 stop=rounds:5\n\
             name=broken topology=cycle:8 rounding=randomized\n",
        )
        .unwrap();
        let batch = Driver::new().run_batch(&specs);
        assert_eq!(batch.scenarios.len(), 1);
        assert_eq!(batch.scenarios[0].name, "ok");
        assert_eq!(batch.errors.len(), 1);
        let err = &batch.errors[0];
        assert_eq!(
            (err.index, err.name.as_str(), err.line),
            (1, "broken", Some(2))
        );
        match &err.error {
            ScenarioFailure::Build(BuildError::Scenario { name, source }) => {
                assert_eq!(name, "broken");
                assert!(matches!(**source, BuildError::MissingSeed(_)));
            }
            other => panic!("unexpected error {other:?}"),
        }
        let rendered = err.to_string();
        assert!(
            rendered.contains("'broken'") && rendered.contains("line 2"),
            "{rendered}"
        );
    }

    #[test]
    fn steady_scenarios_surface_worst_p99() {
        let specs = ScenarioSpec::parse_many(
            "name=dyn topology=torus2d:6:6 scheme=sos:1.8 seed=4 load=poisson:0.5:7 \
             stop=horizon:40\n\
             name=static topology=cycle:12 seed=5 stop=rounds:20\n",
        )
        .unwrap();
        let batch = Driver::new().run_batch(&specs);
        assert!(batch.errors.is_empty());
        let steady = batch.scenarios[0].report.steady.unwrap();
        assert_eq!(steady.window, 40);
        assert!(batch.scenarios[1].report.steady.is_none());
        assert_eq!(batch.worst_steady_p99, Some(steady.p99_dev));
    }

    #[test]
    fn zero_thread_driver_rejected() {
        assert!(matches!(
            Driver::with_threads(0),
            Err(BuildError::ZeroThreads)
        ));
        assert!(matches!(
            Driver::concurrent(0),
            Err(BuildError::ZeroThreads)
        ));
    }

    #[test]
    fn concurrent_batch_is_bit_identical_to_sequential() {
        let specs = sample_specs();
        let seq = Driver::new().run_batch(&specs);
        for workers in [2usize, 3, 8] {
            let conc = Driver::concurrent(workers).unwrap().run_batch(&specs);
            assert!(conc.errors.is_empty());
            assert_eq!(conc.scenarios.len(), seq.scenarios.len());
            for (a, b) in seq.scenarios.iter().zip(&conc.scenarios) {
                assert_eq!(a.name, b.name, "input order preserved");
                assert_eq!(a.report, b.report, "{} ({workers} workers)", a.name);
            }
            assert_eq!(conc.total_rounds, seq.total_rounds);
        }
    }

    #[test]
    fn concurrent_batch_reports_all_failures_in_input_order() {
        let specs = ScenarioSpec::parse_many(
            "name=ok topology=cycle:8 seed=1 stop=rounds:5\n\
             name=bad1 topology=cycle:8 rounding=randomized\n\
             name=ok2 topology=cycle:8 seed=2 stop=rounds:5\n\
             name=bad2 topology=cycle:8 seed=1 init=point:99:10\n",
        )
        .unwrap();
        let batch = Driver::concurrent(4).unwrap().run_batch(&specs);
        assert_eq!(batch.scenarios.len(), 2, "both good scenarios completed");
        assert_eq!(batch.scenarios[0].name, "ok");
        assert_eq!(batch.scenarios[1].name, "ok2");
        let positions: Vec<(usize, &str, Option<usize>)> = batch
            .errors
            .iter()
            .map(|e| (e.index, e.name.as_str(), e.line))
            .collect();
        assert_eq!(positions, [(1, "bad1", Some(2)), (3, "bad2", Some(4))]);
    }

    #[test]
    fn panicking_scenario_is_isolated() {
        let specs = ScenarioSpec::parse_many(
            "name=ok topology=cycle:8 seed=1 stop=rounds:5\n\
             name=boom topology=cycle:8 seed=2 stop=rounds:5\n\
             name=ok2 topology=cycle:8 seed=3 stop=rounds:5\n",
        )
        .unwrap();
        for driver in [Driver::new(), Driver::concurrent(3).unwrap()] {
            let batch = driver.run_batch_with(&specs, |spec| {
                if spec.name == "boom" {
                    panic!("injected fault in {}", spec.name);
                }
                driver.run_spec(spec)
            });
            assert_eq!(batch.scenarios.len(), 2, "batch survived the panic");
            assert_eq!(batch.errors.len(), 1);
            let err = &batch.errors[0];
            assert_eq!(err.name, "boom");
            match &err.error {
                ScenarioFailure::Panicked(msg) => assert!(msg.contains("injected fault")),
                other => panic!("unexpected error {other:?}"),
            }
        }
    }

    #[test]
    fn retries_rerun_panicked_scenarios() {
        let specs =
            ScenarioSpec::parse_many("name=flaky topology=cycle:8 seed=1 stop=rounds:5").unwrap();
        let driver = Driver::new().retries(2);
        let calls = AtomicUsize::new(0);
        let batch = driver.run_batch_with(&specs, |spec| {
            if calls.fetch_add(1, Ordering::Relaxed) < 2 {
                panic!("transient wedge");
            }
            driver.run_spec(spec)
        });
        assert!(batch.errors.is_empty(), "{:?}", batch.errors);
        assert_eq!(batch.scenarios[0].attempts, 3);
        assert_eq!(batch.total_attempts, 3);
        // The retried report matches a clean first-try run.
        let clean = Driver::new().run_batch(&specs);
        assert_eq!(batch.scenarios[0].report, clean.scenarios[0].report);
    }

    #[test]
    fn exhausted_retries_report_attempt_count() {
        let specs =
            ScenarioSpec::parse_many("name=doomed topology=cycle:8 seed=1 stop=rounds:5").unwrap();
        let batch = Driver::new()
            .retries(1)
            .run_batch_with(&specs, |_| -> Result<ScenarioReport, BuildError> {
                panic!("always wedged")
            });
        assert_eq!(batch.errors.len(), 1);
        assert_eq!(batch.errors[0].attempts, 2);
        assert!(matches!(
            batch.errors[0].error,
            ScenarioFailure::Panicked(_)
        ));
        // Deterministic failures are never retried.
        let calls = AtomicUsize::new(0);
        let bad =
            ScenarioSpec::parse_many("name=bad topology=cycle:8 rounding=randomized").unwrap();
        let driver = Driver::new().retries(3);
        let batch = driver.run_batch_with(&bad, |spec| {
            calls.fetch_add(1, Ordering::Relaxed);
            driver.run_spec(spec)
        });
        assert_eq!(calls.load(Ordering::Relaxed), 1);
        assert_eq!(batch.errors[0].attempts, 1);
    }

    #[test]
    fn journal_parsing_rejects_malformed_entries() {
        assert!(matches!(
            parse_journal(""),
            Err(CheckpointError::Journal { line: 1, .. })
        ));
        assert!(matches!(
            parse_journal("not a journal\n"),
            Err(CheckpointError::Journal { line: 1, .. })
        ));
        let good = "sodiff-journal v1\n\
                    spec name=a topology=cycle:8 seed=1 stop=rounds:5\n\
                    done 0\n";
        let (specs, finished) = parse_journal(good).unwrap();
        assert_eq!(specs.len(), 1);
        assert!(finished.contains(&0));
        assert_eq!(specs[0].source_line, Some(2), "journal-line provenance");
        let bad_index = "sodiff-journal v1\n\
                         spec name=a topology=cycle:8 seed=1 stop=rounds:5\n\
                         done 3\n";
        assert!(matches!(
            parse_journal(bad_index),
            Err(CheckpointError::Journal { line: 3, .. })
        ));
        assert!(matches!(
            parse_journal("sodiff-journal v1\nwat 0\n"),
            Err(CheckpointError::Journal { line: 2, .. })
        ));
        let bad_spec = "sodiff-journal v1\nspec name=a topology=nope:3\n";
        assert!(matches!(
            parse_journal(bad_spec),
            Err(CheckpointError::Journal { line: 2, .. })
        ));
    }

    #[test]
    fn pooled_driver_replaces_pool_after_panic() {
        let specs = sample_specs();
        let clean = Driver::new().run_batch(&specs);
        let driver = Driver::with_threads(3).unwrap();
        let mut specs_with_bomb = specs.clone();
        specs_with_bomb.insert(
            1,
            "name=boom topology=cycle:8 seed=9 stop=rounds:5"
                .parse()
                .unwrap(),
        );
        let batch = driver.run_batch_with(&specs_with_bomb, |spec| {
            if spec.name == "boom" {
                panic!("pool desertion");
            }
            driver.run_spec(spec)
        });
        assert_eq!(batch.errors.len(), 1);
        assert_eq!(batch.scenarios.len(), specs.len());
        // Scenarios after the panic still ran (on the replacement pool)
        // and stayed bit-identical to the sequential driver.
        for (a, b) in clean.scenarios.iter().zip(&batch.scenarios) {
            assert_eq!(a.report, b.report, "{}", a.name);
        }
    }
}
