//! Batch execution of scenario files over one persistent worker pool or
//! across concurrently scheduled scenarios.
//!
//! A [`Driver`] takes a slice of [`ScenarioSpec`]s and runs them either
//! back to back or concurrently:
//!
//! * [`Driver::with_threads`]`(t > 1)` parallelizes **within** each
//!   simulation: the `t − 1` pool workers are spawned **once** and
//!   re-attached to every simulation in the batch (see [`crate::pool`]),
//!   instead of paying a spawn/join cycle per `Simulator` — the
//!   difference measured by the `driver_batch` entry of
//!   `BENCH_rounds.json`. Best for batches of few large scenarios.
//! * [`Driver::concurrent`]`(k)` parallelizes **across** the batch: `k`
//!   workers pull scenarios from a shared work-stealing queue and run
//!   each one on the sequential executor. Independent scenarios never
//!   synchronize, so this scales with cores for the common serving shape
//!   — many small-to-medium scenarios — where per-round barriers would
//!   dominate. Measured by the `driver_batch_concurrent` entry.
//!
//! Both are bit-identical to [`Driver::new`]'s sequential execution: the
//! pooled executor reproduces the sequential executor exactly, and
//! concurrent scheduling only reorders *which* scenario runs when — each
//! scenario's simulation is self-contained, and reports are returned in
//! input order. A batch report therefore never depends on the driver's
//! parallelism (proven by `tests/driver_concurrent.rs`).
//!
//! # Example
//!
//! ```
//! use sodiff_core::{Driver, ScenarioSpec};
//!
//! let specs = ScenarioSpec::parse_many(
//!     "name=small topology=torus2d:8:8 scheme=sos:1.9 seed=1 stop=rounds:50\n\
//!      name=ring  topology=cycle:32 seed=2 stop=rounds:100\n",
//! )
//! .unwrap();
//! let batch = Driver::new().run_batch(&specs).unwrap();
//! assert_eq!(batch.scenarios.len(), 2);
//! assert_eq!(batch.total_rounds, 150);
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::engine::RunReport;
use crate::error::BuildError;
use crate::pool::WorkerPool;
use crate::scenario::ScenarioSpec;

/// One scenario's outcome inside a [`BatchReport`].
#[derive(Debug, Clone)]
pub struct ScenarioReport {
    /// The scenario's `name=`.
    pub name: String,
    /// Canonical spec text (round-trips through `ScenarioSpec::from_str`).
    pub spec: String,
    /// Nodes of the built graph.
    pub nodes: usize,
    /// Edges of the built graph.
    pub edges: usize,
    /// The run's report (bit-identical to running the scenario through a
    /// hand-built `Simulator`).
    pub report: RunReport,
    /// Wall-clock time of this scenario (graph build + rounds).
    pub wall: Duration,
}

/// Outcome of a whole batch, with aggregate metrics across scenarios.
#[derive(Debug, Clone)]
pub struct BatchReport {
    /// Per-scenario reports, in input order.
    pub scenarios: Vec<ScenarioReport>,
    /// Total rounds executed across the batch.
    pub total_rounds: u64,
    /// Total wall-clock time of the batch.
    pub total_wall: Duration,
    /// Worst final `max − avg` across scenarios.
    pub worst_max_minus_avg: f64,
    /// Mean final `max − avg` across scenarios.
    pub mean_max_minus_avg: f64,
}

impl BatchReport {
    fn from_scenarios(scenarios: Vec<ScenarioReport>, total_wall: Duration) -> Self {
        let total_rounds = scenarios.iter().map(|s| s.report.rounds).sum();
        let finals: Vec<f64> = scenarios
            .iter()
            .map(|s| s.report.final_metrics.max_minus_avg)
            .collect();
        let worst = finals.iter().copied().fold(0.0f64, f64::max);
        let mean = if finals.is_empty() {
            0.0
        } else {
            finals.iter().sum::<f64>() / finals.len() as f64
        };
        Self {
            scenarios,
            total_rounds,
            total_wall,
            worst_max_minus_avg: worst,
            mean_max_minus_avg: mean,
        }
    }
}

/// Executes batches of [`ScenarioSpec`]s, reusing one persistent worker
/// pool across all simulations or scheduling independent scenarios
/// concurrently; see the module docs above.
pub struct Driver {
    threads: usize,
    concurrency: usize,
    pool: Option<Arc<WorkerPool>>,
}

impl Driver {
    /// A sequential driver: every scenario runs on the calling thread,
    /// regardless of its `threads=` key (no pools are spawned).
    pub fn new() -> Self {
        Self {
            threads: 1,
            concurrency: 1,
            pool: None,
        }
    }

    /// A driver whose simulations all run on one persistent pool of
    /// `threads` participants (spawned here, reused for every scenario).
    /// The pool size overrides each scenario's `threads=` key; reports
    /// are unaffected because pooled execution is bit-identical to
    /// sequential.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::ZeroThreads`] if `threads == 0`.
    pub fn with_threads(threads: usize) -> Result<Self, BuildError> {
        if threads == 0 {
            return Err(BuildError::ZeroThreads);
        }
        Ok(Self {
            threads,
            concurrency: 1,
            pool: (threads > 1).then(|| Arc::new(WorkerPool::new(threads))),
        })
    }

    /// A driver that schedules up to `workers` **independent scenarios
    /// concurrently**: [`Driver::run_batch`] spawns that many scoped
    /// worker threads which pull the next unstarted scenario from a
    /// shared work-stealing queue and run it on the sequential
    /// (single-threaded) executor. Reports are returned in input order
    /// and are bit-identical to [`Driver::new`]'s sequential runs — each
    /// scenario's simulation is completely self-contained.
    ///
    /// This is the right shape when the batch has at least as many
    /// scenarios as cores; use [`Driver::with_threads`] to instead
    /// parallelize within few large scenarios.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::ZeroThreads`] if `workers == 0`.
    pub fn concurrent(workers: usize) -> Result<Self, BuildError> {
        if workers == 0 {
            return Err(BuildError::ZeroThreads);
        }
        Ok(Self {
            threads: 1,
            concurrency: workers,
            pool: None,
        })
    }

    /// Worker threads per simulation (1 = sequential).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Scenarios scheduled concurrently by [`Driver::run_batch`]
    /// (1 = back-to-back).
    pub fn concurrency(&self) -> usize {
        self.concurrency
    }

    /// Runs one scenario on this driver's pool.
    ///
    /// # Errors
    ///
    /// Build failures are wrapped as [`BuildError::Scenario`] carrying the
    /// scenario's name.
    pub fn run_spec(&self, spec: &ScenarioSpec) -> Result<ScenarioReport, BuildError> {
        let wrap = |source: BuildError| BuildError::Scenario {
            name: spec.name.clone(),
            source: Box::new(source),
        };
        let start = Instant::now();
        let graph = spec.build_graph().map_err(wrap)?;
        // The driver owns execution: its thread count (and pool) replaces
        // the scenario's `threads=` key, so a sequential driver never
        // spawns per-scenario pools. Results are unaffected — pooled
        // execution is bit-identical to sequential.
        let mut spec = spec.clone();
        spec.threads = self.threads;
        let experiment = spec.experiment_on(&graph).map_err(wrap)?;
        let report = match &self.pool {
            Some(pool) => {
                let mut sim = experiment.simulator_on(Arc::clone(pool));
                experiment.run_on(&mut sim, &mut crate::observer::NullObserver)
            }
            None => {
                let mut sim = experiment.simulator();
                experiment.run_on(&mut sim, &mut crate::observer::NullObserver)
            }
        };
        Ok(ScenarioReport {
            name: spec.name.clone(),
            spec: spec.to_string(),
            nodes: graph.node_count(),
            edges: graph.edge_count(),
            report,
            wall: start.elapsed(),
        })
    }

    /// Runs every scenario and aggregates the results (in input order).
    /// With [`Driver::concurrent`], up to `concurrency` scenarios are in
    /// flight at once; the per-scenario reports are identical to a
    /// sequential driver's either way.
    ///
    /// # Errors
    ///
    /// Fails on the first scenario (by input order) that fails to build,
    /// wrapping the error with that scenario's name. A sequential driver
    /// stops at that scenario; a concurrent driver may have executed
    /// later scenarios already, but the reported error is the same.
    pub fn run_batch(&self, specs: &[ScenarioSpec]) -> Result<BatchReport, BuildError> {
        let start = Instant::now();
        if self.concurrency <= 1 || specs.len() <= 1 {
            let mut scenarios = Vec::with_capacity(specs.len());
            for spec in specs {
                scenarios.push(self.run_spec(spec)?);
            }
            return Ok(BatchReport::from_scenarios(scenarios, start.elapsed()));
        }
        let slots: Vec<Mutex<Option<Result<ScenarioReport, BuildError>>>> =
            specs.iter().map(|_| Mutex::new(None)).collect();
        // Work-stealing queue over the batch: each worker claims the next
        // unstarted scenario, so long and short scenarios balance
        // themselves without any up-front partitioning.
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..self.concurrency.min(specs.len()) {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(spec) = specs.get(i) else { break };
                    let result = self.run_spec(spec);
                    *slots[i].lock().expect("driver slot lock poisoned") = Some(result);
                });
            }
        });
        let mut scenarios = Vec::with_capacity(specs.len());
        for slot in slots {
            let result = slot
                .into_inner()
                .expect("driver slot lock poisoned")
                .expect("every scenario slot is filled before the scope ends");
            scenarios.push(result?);
        }
        Ok(BatchReport::from_scenarios(scenarios, start.elapsed()))
    }
}

impl Default for Driver {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_specs() -> Vec<ScenarioSpec> {
        ScenarioSpec::parse_many(
            "name=torus topology=torus2d:6:6 scheme=sos:1.8 seed=4 stop=rounds:80\n\
             name=cube topology=hypercube:5 seed=5 stop=rounds:40\n\
             name=ideal topology=cycle:12 mode=continuous scheme=sos:1.5 stop=rounds:60\n",
        )
        .unwrap()
    }

    #[test]
    fn batch_aggregates_rounds() {
        let batch = Driver::new().run_batch(&sample_specs()).unwrap();
        assert_eq!(batch.scenarios.len(), 3);
        assert_eq!(batch.total_rounds, 80 + 40 + 60);
        assert!(batch.worst_max_minus_avg >= batch.mean_max_minus_avg);
        assert_eq!(batch.scenarios[0].nodes, 36);
        assert_eq!(batch.scenarios[1].edges, 80);
    }

    #[test]
    fn pooled_batch_is_bit_identical_to_sequential() {
        let specs = sample_specs();
        let seq = Driver::new().run_batch(&specs).unwrap();
        let pooled = Driver::with_threads(3).unwrap().run_batch(&specs).unwrap();
        for (a, b) in seq.scenarios.iter().zip(&pooled.scenarios) {
            assert_eq!(a.report, b.report, "{}", a.name);
        }
    }

    #[test]
    fn concurrent_specs_on_one_pool_stay_correct() {
        // Two threads pushing different scenarios through the same pooled
        // driver must serialize on the pool's round lock and still produce
        // the sequential results — the barrier protocol admits one
        // external participant at a time.
        let specs = sample_specs();
        let sequential = Driver::new().run_batch(&specs).unwrap();
        let driver = Driver::with_threads(3).unwrap();
        let reports: Vec<ScenarioReport> = std::thread::scope(|scope| {
            let handles: Vec<_> = specs
                .iter()
                .map(|spec| scope.spawn(|| driver.run_spec(spec).unwrap()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for (a, b) in sequential.scenarios.iter().zip(&reports) {
            assert_eq!(a.report, b.report, "{}", a.name);
        }
    }

    #[test]
    fn sequential_driver_ignores_scenario_threads() {
        // `threads=8` in the spec must not make Driver::new spawn pools;
        // the run still succeeds and matches the sequential result.
        let specs = ScenarioSpec::parse_many(
            "name=threaded topology=torus2d:5:5 seed=2 threads=8 stop=rounds:40",
        )
        .unwrap();
        let driven = Driver::new().run_batch(&specs).unwrap();
        let standalone = specs[0].run().unwrap();
        assert_eq!(driven.scenarios[0].report, standalone);
    }

    #[test]
    fn failing_scenario_is_named() {
        // `broken` parses but cannot build: randomized rounding without a
        // seed. (Out-of-range parameters like `sos:3.0` are rejected at
        // parse time with a line number.)
        let specs = ScenarioSpec::parse_many(
            "name=ok topology=cycle:8 seed=1 stop=rounds:5\n\
             name=broken topology=cycle:8 rounding=randomized\n",
        )
        .unwrap();
        let err = Driver::new().run_batch(&specs).unwrap_err();
        match err {
            BuildError::Scenario { name, source } => {
                assert_eq!(name, "broken");
                assert!(matches!(*source, BuildError::MissingSeed(_)));
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn zero_thread_driver_rejected() {
        assert!(matches!(
            Driver::with_threads(0),
            Err(BuildError::ZeroThreads)
        ));
        assert!(matches!(
            Driver::concurrent(0),
            Err(BuildError::ZeroThreads)
        ));
    }

    #[test]
    fn concurrent_batch_is_bit_identical_to_sequential() {
        let specs = sample_specs();
        let seq = Driver::new().run_batch(&specs).unwrap();
        for workers in [2usize, 3, 8] {
            let conc = Driver::concurrent(workers)
                .unwrap()
                .run_batch(&specs)
                .unwrap();
            assert_eq!(conc.scenarios.len(), seq.scenarios.len());
            for (a, b) in seq.scenarios.iter().zip(&conc.scenarios) {
                assert_eq!(a.name, b.name, "input order preserved");
                assert_eq!(a.report, b.report, "{} ({workers} workers)", a.name);
            }
            assert_eq!(conc.total_rounds, seq.total_rounds);
        }
    }

    #[test]
    fn concurrent_batch_reports_first_failure_by_input_order() {
        let specs = ScenarioSpec::parse_many(
            "name=ok topology=cycle:8 seed=1 stop=rounds:5\n\
             name=bad1 topology=cycle:8 rounding=randomized\n\
             name=ok2 topology=cycle:8 seed=2 stop=rounds:5\n\
             name=bad2 topology=cycle:8 seed=1 init=point:99:10\n",
        )
        .unwrap();
        let err = Driver::concurrent(4)
            .unwrap()
            .run_batch(&specs)
            .unwrap_err();
        match err {
            BuildError::Scenario { name, source } => {
                assert_eq!(name, "bad1", "earliest failing scenario wins");
                assert!(matches!(*source, BuildError::MissingSeed(_)));
            }
            other => panic!("unexpected error {other:?}"),
        }
    }
}
