//! Deterministic live-topology churn: machines joining and leaving the
//! network mid-run, with conservation-exact load handoff.
//!
//! Where the crash channel of [`crate::fault`] *freezes* a node inside a
//! static graph (its load stays put and returns with it on rejoin),
//! churn makes membership itself dynamic over a **reserved capacity**:
//! the graph's `n` node slots are the cluster's maximum size, and a
//! [`sodiff_graph::ActiveSet`] overlay tracks which slots currently hold
//! a machine. The CSR arrays never change — a departed slot's incident
//! edges are masked out of every flow pass, and dimension-exchange /
//! matching schedules are repaired incrementally
//! ([`sodiff_graph::matching::repair_matching`], whose greedy-extension
//! half [`sodiff_graph::matching::extend_matching`] covers the *join*
//! direction) instead of recomputed.
//!
//! The single channel, `churn=flux:P_LEAVE:P_JOIN:SEED[:INIT]`, drives a
//! Markov chain over the active set on the same [`EPOCH_LEN`]-round
//! epochs as the crash schedule: at each epoch boundary every active
//! slot departs with probability `P_LEAVE` and every inactive slot
//! (re)arrives with probability `P_JOIN`, drawn from a counter-indexed
//! SplitMix64 stream (the [`crate::rng`] design — no serial RNG state,
//! so sequential and pooled executors see identical churn). Unlike the
//! memoryless crash redraw, the active set is **history-dependent**:
//! checkpoints therefore persist the overlay words verbatim (format v2)
//! and restore never redraws.
//!
//! **Conservation-exact handoff.** A departing machine hands its entire
//! load to its post-transition active neighbors in adjacency order:
//! discrete loads split as `⌊L/k⌋` each with the first `L mod k`
//! neighbors taking one extra token (exact for negative loads via
//! Euclidean division), continuous loads as `L/k` with the last
//! neighbor absorbing the floating-point remainder — either way the
//! deltas sum to exactly `−L`. Only a machine with *no* active neighbor
//! takes its load out of the system (counted in
//! [`ChurnEvents::departed`]); an arrival adds the configured `INIT`
//! load (counted in [`ChurnEvents::joined`]). The global invariant every
//! churned run maintains, every round, is
//! `total == initial + injected + joined − departed`.
//!
//! **Composition with crash-rejoin** (see the audit note on
//! [`ChurnEvents`]): a crash-frozen node still *owns* its slot — it can
//! receive handoff load (held frozen until it rejoins, like any of its
//! load), and it returns with exactly its frozen balance, touching no
//! churn account. A churn re-arrival starts from `INIT` plus whatever
//! load was parked on the slot while it was empty (shocks and injection
//! draw targets without consulting the overlay; parked tokens stay in
//! the total, so the two channels never double-count).
//!
//! `churn=none` (the default) takes exactly the pre-churn code paths —
//! the hook is one predictable branch per round, held within 2% of the
//! clean baseline by the `sos_churn_none` perf gate.

use std::fmt;
use std::str::FromStr;

use sodiff_graph::{matching, ActiveSet, Graph};

use crate::error::{BuildError, ParseError};
use crate::fault::EPOCH_LEN;
use crate::kernel::{BufF64, BufI64};
use crate::rng::{salted_stream_key, unit_f64};

/// Seed salt of the flux channel's draw stream (decorrelates a seed
/// shared with fault/load channels).
const FLUX_SALT: u64 = 0x6368_7572_6e5f_5f5f;

/// Largest accepted initial load of an arriving machine.
const MAX_INIT: f64 = 1_000_000_000.0;

/// The flux channel: per-epoch leave/join probabilities, the RNG seed of
/// the draw stream, and the initial load an arriving machine brings.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChurnChannel {
    /// Per-epoch departure probability of an active slot, in `[0, 1]`.
    pub leave: f64,
    /// Per-epoch (re)arrival probability of an inactive slot, in `[0, 1]`.
    pub join: f64,
    /// Seed of the channel's counter-indexed draw stream.
    pub seed: u64,
    /// Load an arriving machine activates with (truncated to whole
    /// tokens in discrete mode), accounted in [`ChurnEvents::joined`].
    pub init: f64,
}

/// A deterministic live-topology churn plan. [`ChurnSpec::none`] (the
/// default) keeps membership static and every run on the pre-churn code
/// paths; see the module docs for the flux channel's semantics.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ChurnSpec {
    /// Epoch-aligned join/leave flux over the reserved node capacity.
    pub flux: Option<ChurnChannel>,
}

impl ChurnSpec {
    /// The empty plan: static membership, pre-churn code paths.
    pub fn none() -> Self {
        Self::default()
    }

    /// Returns `true` if membership is static.
    pub fn is_none(&self) -> bool {
        self.flux.is_none()
    }

    /// Adds the flux channel (leave/join probabilities and seed);
    /// arrivals start empty.
    pub fn with_flux(mut self, leave: f64, join: f64, seed: u64) -> Self {
        self.flux = Some(ChurnChannel {
            leave,
            join,
            seed,
            init: 0.0,
        });
        self
    }

    /// Sets the initial load arriving machines activate with (requires
    /// an active flux channel; a no-op otherwise).
    pub fn with_initial(mut self, init: f64) -> Self {
        if let Some(ch) = &mut self.flux {
            ch.init = init;
        }
        self
    }

    /// Validates the channel's probabilities and initial load.
    ///
    /// # Errors
    ///
    /// [`BuildError::InvalidChurn`] naming the offending field.
    pub fn check(&self) -> Result<(), BuildError> {
        let Some(ChurnChannel {
            leave, join, init, ..
        }) = self.flux
        else {
            return Ok(());
        };
        for (what, p) in [("leave", leave), ("join", join)] {
            if !p.is_finite() || !(0.0..=1.0).contains(&p) {
                return Err(BuildError::InvalidChurn(format!(
                    "{what} probability {p} outside [0, 1]"
                )));
            }
        }
        if !init.is_finite() || !(0.0..=MAX_INIT).contains(&init) {
            return Err(BuildError::InvalidChurn(format!(
                "initial load {init} outside [0, {MAX_INIT}]"
            )));
        }
        Ok(())
    }
}

impl fmt::Display for ChurnSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.flux {
            None => write!(f, "none"),
            Some(ChurnChannel {
                leave,
                join,
                seed,
                init,
            }) => {
                write!(f, "flux:{leave}:{join}:{seed}")?;
                if init != 0.0 {
                    write!(f, ":{init}")?;
                }
                Ok(())
            }
        }
    }
}

impl FromStr for ChurnSpec {
    type Err = ParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s == "none" {
            return Ok(Self::none());
        }
        let bad = |why: String| ParseError::new(format!("in churn '{s}': {why}"));
        let mut fields = s.split(':');
        let kind = fields.next().unwrap_or("");
        if kind != "flux" {
            return Err(bad(format!("unknown churn kind '{kind}' (flux)")));
        }
        let (leave, join, seed, init) = match (
            fields.next(),
            fields.next(),
            fields.next(),
            fields.next(),
            fields.next(),
        ) {
            (Some(l), Some(j), Some(seed), init, None) => (l, j, seed, init),
            _ => {
                return Err(bad(format!(
                    "'{s}' should be flux:<p_leave>:<p_join>:<seed>[:<initial-load>]"
                )))
            }
        };
        let num = |field: &str, what: &str| -> Result<f64, ParseError> {
            field
                .parse::<f64>()
                .map_err(|_| bad(format!("bad {what} '{field}'")))
        };
        let leave = num(leave, "leave probability")?;
        let join = num(join, "join probability")?;
        let seed: u64 = seed
            .parse()
            .map_err(|_| bad(format!("bad seed '{seed}'")))?;
        let init = match init {
            Some(field) => num(field, "initial load")?,
            None => 0.0,
        };
        let spec = Self {
            flux: Some(ChurnChannel {
                leave,
                join,
                seed,
                init,
            }),
        };
        if let Err(BuildError::InvalidChurn(why)) = spec.check() {
            return Err(bad(why));
        }
        Ok(spec)
    }
}

/// Accounting of the churn a run actually experienced, reported in
/// [`crate::RunReport::churn`]. All zero for `churn=none` runs. The
/// counters accumulate over the simulator's lifetime, and close the
/// conservation invariant `total == initial + injected + joined −
/// departed` (where `injected` is [`crate::LoadEvents::injected`]).
///
/// **Rejoin-semantics audit** (crash vs churn, so the channels compose
/// without double-counting): a *crash-frozen* node returns with its
/// frozen load — no entry in any account here or in
/// [`crate::FaultEvents`] beyond the crash/rejoin counters. A *churn
/// re-arrival* starts from the configured initial load — exactly `init`
/// enters the system and lands in [`ChurnEvents::joined`]; load parked
/// on the empty slot meanwhile was already counted at its source
/// (injection or shocks) and is simply returned to service.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ChurnEvents {
    /// Machines that left at an epoch boundary.
    pub departures: u64,
    /// Machines that (re)arrived at an epoch boundary.
    pub arrivals: u64,
    /// Departures that handed their load to at least one active
    /// neighbor (the complement left with their load).
    pub handoffs: u64,
    /// Total load brought by arrivals (`arrivals × init`, truncated to
    /// whole tokens per arrival in discrete mode).
    pub joined: f64,
    /// Total load removed with neighborless departures.
    pub departed: f64,
}

impl ChurnEvents {
    /// Total membership events (departures + arrivals).
    pub fn total(&self) -> u64 {
        self.departures + self.arrivals
    }
}

/// Control-thread churn state carried between rounds: the activation
/// overlay (the Markov chain's state), the derived active-edge and
/// repaired-schedule masks of the current epoch, and the transition's
/// planned load deltas. Lives in
/// [`crate::scheme_kernel::RoundScratch`], so the sequential executor
/// and the pool's control thread share one code path.
#[derive(Default)]
pub(crate) struct ChurnState {
    /// Epoch whose transition has been applied (`None` before round 0).
    epoch: Option<u64>,
    /// The activation overlay — persisted verbatim in checkpoints
    /// (history-dependent; never redrawn on restore).
    active: ActiveSet,
    /// Edges with both endpoints active (churn only; crash liveness is
    /// composed separately by [`crate::fault::FaultState::compose_eff`]).
    active_edges: Vec<u64>,
    /// Per-epoch repaired sweep masks over the combined (churn-active ∧
    /// crash-live) node set.
    repaired: Vec<Vec<u64>>,
    /// Scratch for composing an external mask with the active edges.
    eff: Vec<u64>,
    /// Combined live-word scratch for schedule repair.
    combined: Vec<u64>,
    /// Raw draw scratch for the bulk RNG sweep.
    draws: Vec<u64>,
    /// This epoch's departing slots (transition scratch).
    departing: Vec<u32>,
    /// This epoch's arriving slots (transition scratch).
    arriving: Vec<u32>,
    /// The transition's load deltas as `(node, delta)` pairs, planned at
    /// epoch boundaries and consumed by the `apply_*` methods (empty on
    /// every other round).
    deltas: Vec<(usize, f64)>,
    /// Accumulated event counters and load accounts.
    pub events: ChurnEvents,
}

impl ChurnState {
    /// Per-round control-thread preparation: at epoch boundaries,
    /// advances the membership Markov chain, plans the
    /// conservation-exact handoff/arrival deltas (`peek` reads a node's
    /// current load; only called for departing slots), and re-derives
    /// the active-edge and repaired-`sweep` masks over the combined
    /// (churn-active ∧ `fault_live`) node set. Must run after the fault
    /// block (so `fault_live` is current) and before load injection and
    /// the flow pass, in both executors.
    #[allow(clippy::too_many_arguments)]
    pub fn begin_round(
        &mut self,
        spec: &ChurnSpec,
        graph: &Graph,
        round: u64,
        discrete: bool,
        fault_live: Option<&[u64]>,
        sweep: Option<(&[Vec<u64>], bool)>,
        peek: impl Fn(usize) -> f64,
    ) {
        self.deltas.clear();
        let Some(ChurnChannel {
            leave,
            join,
            seed,
            init,
        }) = spec.flux
        else {
            return;
        };
        let epoch = round / EPOCH_LEN;
        if self.epoch == Some(epoch) {
            return;
        }
        let n = graph.node_count();
        if self.active.capacity() != n {
            self.active = ActiveSet::all_active(n);
        }
        self.draws.resize(n.max(1), 0);
        crate::rng::fill_first_draws(
            salted_stream_key(seed, FLUX_SALT, epoch),
            0,
            &mut self.draws[..n],
        );
        // Transition first, handoff second: a departing machine hands its
        // load to neighbors active *after* this boundary, so load never
        // lands on a slot emptying in the same epoch (and a fresh arrival
        // can immediately absorb a leaving neighbor's share).
        self.departing.clear();
        self.arriving.clear();
        for v in 0..n as u32 {
            let u = unit_f64(self.draws[v as usize]);
            if self.active.is_active(v) {
                if u < leave {
                    self.departing.push(v);
                }
            } else if u < join {
                self.arriving.push(v);
            }
        }
        for &v in &self.departing {
            self.active.deactivate(v);
        }
        for &v in &self.arriving {
            self.active.activate(v);
        }
        for &v in &self.departing {
            self.events.departures += 1;
            let load = peek(v as usize);
            if load == 0.0 {
                continue;
            }
            let targets: Vec<usize> = graph
                .neighbor_nodes(v)
                .iter()
                .filter(|&&u| self.active.is_active(u))
                .map(|&u| u as usize)
                .collect();
            self.deltas.push((v as usize, -load));
            if targets.is_empty() {
                self.events.departed += load;
                continue;
            }
            self.events.handoffs += 1;
            let k = targets.len();
            if discrete {
                let tokens = load as i64;
                let q = tokens.div_euclid(k as i64);
                let r = tokens.rem_euclid(k as i64) as usize;
                for (i, &u) in targets.iter().enumerate() {
                    let share = q + i64::from(i < r);
                    if share != 0 {
                        self.deltas.push((u, share as f64));
                    }
                }
            } else {
                let share = load / k as f64;
                for &u in &targets[..k - 1] {
                    self.deltas.push((u, share));
                }
                self.deltas
                    .push((targets[k - 1], load - share * (k - 1) as f64));
            }
        }
        let init_eff = if discrete { init.trunc() } else { init };
        for &v in &self.arriving {
            self.events.arrivals += 1;
            if init_eff != 0.0 {
                self.deltas.push((v as usize, init_eff));
                self.events.joined += init_eff;
            }
        }
        self.rebuild_masks(graph, fault_live, sweep);
        self.epoch = Some(epoch);
    }

    /// Re-derives the epoch's active-edge mask and repaired sweep masks
    /// from the current overlay (and `fault_live`, when the crash
    /// channel is also on). Pure in the overlay — checkpoint restore
    /// calls this directly instead of replaying churn history.
    pub fn rebuild_masks(
        &mut self,
        graph: &Graph,
        fault_live: Option<&[u64]>,
        sweep: Option<(&[Vec<u64>], bool)>,
    ) {
        let m = graph.edge_count();
        let mw = m.div_ceil(64).max(1);
        self.active_edges.clear();
        self.active_edges.resize(mw, 0);
        for (e, &(u, v)) in graph.edges().iter().enumerate() {
            let both = self.active.is_active(u) && self.active.is_active(v);
            self.active_edges[e >> 6] |= u64::from(both) << (e & 63);
        }
        if let Some((masks, recover)) = sweep {
            let words = self.active.words();
            self.combined.clear();
            match fault_live {
                Some(live) => self
                    .combined
                    .extend(words.iter().zip(live).map(|(&a, &b)| a & b)),
                None => self.combined.extend_from_slice(words),
            }
            self.repaired.resize(masks.len(), Vec::new());
            for (repaired, base) in self.repaired.iter_mut().zip(masks) {
                repaired.clone_from(base);
                if recover {
                    matching::repair_matching(graph, &self.combined, repaired);
                } else {
                    matching::mask_dead_edges(graph, &self.combined, repaired);
                }
            }
        }
    }

    /// Restores the Markov chain's state from checkpointed overlay
    /// words: `epoch` is the epoch of the last completed round, so the
    /// next `begin_round` transitions exactly when the uninterrupted run
    /// would have. The caller must follow with [`Self::rebuild_masks`].
    pub fn restore(&mut self, n: usize, words: Vec<u64>, epoch: u64) {
        self.active = ActiveSet::from_words(n, words);
        self.epoch = Some(epoch);
    }

    /// The overlay words for checkpointing (empty before the first
    /// churned round).
    pub fn active_words(&self) -> &[u64] {
        self.active.words()
    }

    /// Number of currently active slots (once materialized).
    #[cfg(test)]
    pub fn active_count(&self) -> usize {
        self.active.active_count()
    }

    /// The epoch's churn-active edge mask (both endpoints active).
    pub fn active_edge_words(&self) -> &[u64] {
        &self.active_edges
    }

    /// The epoch's repaired sweep mask at family index `i`.
    pub fn repaired_mask(&self, i: usize) -> &[u64] {
        &self.repaired[i]
    }

    /// Intersects an externally produced mask (a random matching, or a
    /// fault-composed effective mask) with the churn-active edges.
    pub fn compose<'a>(&'a mut self, base: &[u64], m: usize) -> &'a [u64] {
        let mw = m.div_ceil(64).max(1);
        self.eff.resize(mw, 0);
        for (w, (out, &b)) in self.eff.iter_mut().zip(base).enumerate() {
            *out = b & self.active_edges[w];
        }
        &self.eff
    }

    /// Applies the planned transition deltas to discrete loads behind
    /// any [`BufI64`] (plain cells or the pool's atomic slots — control
    /// thread only, workers parked). Deltas are whole tokens by
    /// construction.
    pub fn apply_i64<L: BufI64>(&self, loads: &L) {
        for &(node, delta) in &self.deltas {
            loads.set(node, loads.get(node) + delta as i64);
        }
    }

    /// Applies the planned transition deltas to continuous loads behind
    /// any [`BufF64`]; see [`ChurnState::apply_i64`].
    pub fn apply_f64<L: BufF64>(&self, loads: &L) {
        for &(node, delta) in &self.deltas {
            loads.set(node, loads.get(node) + delta);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sodiff_graph::generators;

    #[test]
    fn spec_round_trips_through_text() {
        for text in [
            "none",
            "flux:0.1:0.2:7",
            "flux:0:1:0",
            "flux:0.05:0.3:42:12.5",
        ] {
            let spec: ChurnSpec = text.parse().unwrap();
            assert_eq!(spec.to_string(), text);
            let again: ChurnSpec = spec.to_string().parse().unwrap();
            assert_eq!(spec, again);
        }
        // A zero initial load collapses to the 4-field canonical form.
        let spec: ChurnSpec = "flux:0.1:0.2:7:0".parse().unwrap();
        assert_eq!(spec.to_string(), "flux:0.1:0.2:7");
    }

    #[test]
    fn parse_rejects_malformed_plans() {
        for text in [
            "flux",
            "flux:0.1",
            "flux:0.1:0.2",
            "flux:0.1:0.2:7:1:9",
            "flux:1.5:0.2:7",
            "flux:0.1:-0.2:7",
            "flux:0.1:0.2:7:-3",
            "flux:nope:0.2:7",
            "flux:0.1:0.2:x",
            "drain:0.1:0.2:7",
            "",
        ] {
            let err = text.parse::<ChurnSpec>().unwrap_err();
            assert!(err.to_string().contains("churn"), "{text}: {err}");
        }
    }

    #[test]
    fn check_validates_builder_specs() {
        assert!(ChurnSpec::none().check().is_ok());
        assert!(ChurnSpec::none().with_flux(0.2, 0.3, 1).check().is_ok());
        assert!(ChurnSpec::none().with_flux(1.1, 0.3, 1).check().is_err());
        assert!(ChurnSpec::none()
            .with_flux(0.1, f64::NAN, 1)
            .check()
            .is_err());
        let bad_init = ChurnSpec::none().with_flux(0.1, 0.1, 1).with_initial(-1.0);
        assert!(matches!(bad_init.check(), Err(BuildError::InvalidChurn(_))));
        // with_initial without a channel stays the empty plan.
        assert!(ChurnSpec::none().with_initial(5.0).is_none());
    }

    /// Drives one state over `rounds` on `graph` with constant loads.
    fn drive(
        spec: &ChurnSpec,
        graph: &Graph,
        rounds: u64,
        loads: &mut [i64],
    ) -> (Vec<u64>, ChurnEvents) {
        let mut st = ChurnState::default();
        for round in 0..rounds {
            st.begin_round(spec, graph, round, true, None, None, |v| loads[v] as f64);
            for &(node, delta) in &st.deltas {
                loads[node] += delta as i64;
            }
        }
        (st.active_words().to_vec(), st.events)
    }

    #[test]
    fn transitions_are_deterministic_and_conserving() {
        let g = generators::torus2d(6, 6);
        let spec = ChurnSpec::none().with_flux(0.3, 0.5, 99).with_initial(4.0);
        let mut a = vec![10i64; 36];
        let mut b = vec![10i64; 36];
        let (wa, ea) = drive(&spec, &g, 64, &mut a);
        let (wb, eb) = drive(&spec, &g, 64, &mut b);
        assert_eq!(wa, wb);
        assert_eq!(ea, eb);
        assert_eq!(a, b);
        assert!(ea.departures > 0 && ea.arrivals > 0, "{ea:?}");
        // Conservation: total == initial + joined − departed.
        let total: i64 = a.iter().sum();
        assert_eq!(total as f64, 360.0 + ea.joined - ea.departed);
    }

    #[test]
    fn total_departure_drains_the_system() {
        // leave=1, join=0: every machine departs at round 0, nobody is
        // left to take a handoff, all load exits through `departed`.
        let g = generators::star(4);
        let spec = ChurnSpec::none().with_flux(1.0, 0.0, 5);
        let mut st = ChurnState::default();
        let mut loads = [7i64, 1, 2, 3];
        st.begin_round(&spec, &g, 0, true, None, None, |v| loads[v] as f64);
        for &(node, delta) in &st.deltas {
            loads[node] += delta as i64;
        }
        assert_eq!(loads, [0, 0, 0, 0]);
        assert_eq!(st.events.departed, 13.0);
        assert_eq!(st.events.handoffs, 0);
        assert_eq!(st.active_count(), 0);
    }

    #[test]
    fn handoff_split_is_integer_exact() {
        // Hand-drive the split: hub of a star departs with 7 tokens and
        // 3 active leaves — shares must be ⌊7/3⌋ = 2 each plus one extra
        // for the first neighbor in adjacency order.
        let g = generators::star(4);
        let mut st = ChurnState {
            active: ActiveSet::all_active(4),
            ..Default::default()
        };
        st.active.deactivate(0);
        let loads = [7i64, 0, 0, 0];
        let targets: Vec<usize> = g
            .neighbor_nodes(0)
            .iter()
            .filter(|&&u| st.active.is_active(u))
            .map(|&u| u as usize)
            .collect();
        assert_eq!(targets.len(), 3);
        // The same arithmetic begin_round uses, checked end to end by the
        // conservation proptests; pinned here on a human-checkable case.
        let tokens = loads[0];
        let q = tokens.div_euclid(3);
        let r = tokens.rem_euclid(3) as usize;
        let shares: Vec<i64> = (0..3).map(|i| q + i64::from(i < r)).collect();
        assert_eq!(shares, [3, 2, 2]);
        assert_eq!(shares.iter().sum::<i64>(), tokens);
    }

    #[test]
    fn proportional_split_sums_to_exactly_the_departing_load() {
        // Continuous: an awkward load splits across k neighbors with the
        // last share absorbing the rounding remainder.
        let g = generators::complete(5);
        let spec = ChurnSpec::none().with_flux(0.4, 0.0, 3);
        let mut st = ChurnState::default();
        let loads = [0.1f64, 7.3, 11.0, 0.0, 2.25];
        st.begin_round(&spec, &g, 0, false, None, None, |v| loads[v]);
        if st.events.handoffs > 0 {
            let sum: f64 = st.deltas.iter().map(|&(_, d)| d).sum();
            assert_eq!(sum, 0.0, "handoff deltas cancel exactly");
        }
    }

    #[test]
    fn epoch_transitions_happen_only_at_boundaries() {
        let g = generators::cycle(8);
        let spec = ChurnSpec::none().with_flux(0.5, 0.5, 11);
        let mut st = ChurnState::default();
        let mut loads = [5i64; 8];
        let mut boundaries = 0;
        for round in 0..2 * EPOCH_LEN {
            st.begin_round(&spec, &g, round, true, None, None, |v| loads[v] as f64);
            if !st.deltas.is_empty() || round % EPOCH_LEN == 0 {
                assert_eq!(round % EPOCH_LEN, 0, "delta outside a boundary");
                boundaries += 1;
            }
            for &(node, delta) in &st.deltas {
                loads[node] += delta as i64;
            }
        }
        assert_eq!(boundaries, 2);
    }

    #[test]
    fn restore_skips_the_redraw_and_matches_the_uninterrupted_chain() {
        let g = generators::torus2d(5, 5);
        let spec = ChurnSpec::none().with_flux(0.3, 0.4, 17).with_initial(2.0);
        let mut loads = vec![8i64; 25];
        let mut full = ChurnState::default();
        for round in 0..3 * EPOCH_LEN {
            full.begin_round(&spec, &g, round, true, None, None, |v| loads[v] as f64);
            for &(node, delta) in &full.deltas {
                loads[node] += delta as i64;
            }
        }
        // Snapshot mid-epoch after round 2*EPOCH_LEN (same loads replay).
        let mut loads2 = vec![8i64; 25];
        let mut head = ChurnState::default();
        let cut = 2 * EPOCH_LEN + 3;
        for round in 0..cut {
            head.begin_round(&spec, &g, round, true, None, None, |v| loads2[v] as f64);
            for &(node, delta) in &head.deltas {
                loads2[node] += delta as i64;
            }
        }
        let mut tail = ChurnState::default();
        tail.restore(25, head.active_words().to_vec(), (cut - 1) / EPOCH_LEN);
        tail.rebuild_masks(&g, None, None);
        tail.events = head.events;
        for round in cut..3 * EPOCH_LEN {
            tail.begin_round(&spec, &g, round, true, None, None, |v| loads2[v] as f64);
            for &(node, delta) in &tail.deltas {
                loads2[node] += delta as i64;
            }
        }
        assert_eq!(tail.active_words(), full.active_words());
        assert_eq!(tail.events, full.events);
        assert_eq!(loads, loads2);
    }

    #[test]
    fn rebuilt_sweep_masks_stay_matchings_over_the_active_set() {
        let g = generators::torus2d(4, 4);
        let coloring = sodiff_graph::matching::edge_coloring(&g);
        let families = sodiff_graph::matching::maximal_matchings(&g, &coloring);
        let masks: Vec<Vec<u64>> = families
            .iter()
            .map(|f| {
                let mut words = vec![0u64; g.edge_count().div_ceil(64).max(1)];
                for &e in f {
                    words[(e >> 6) as usize] |= 1u64 << (e & 63);
                }
                words
            })
            .collect();
        let spec = ChurnSpec::none().with_flux(0.4, 0.2, 23);
        let mut st = ChurnState::default();
        st.begin_round(&spec, &g, 0, true, None, Some((&masks, true)), |_| 0.0);
        for i in 0..masks.len() {
            let repaired: Vec<_> = (0..g.edge_count())
                .filter(|&e| (st.repaired_mask(i)[e >> 6] >> (e & 63)) & 1 == 1)
                .map(|e| e as sodiff_graph::EdgeId)
                .collect();
            assert!(sodiff_graph::matching::is_matching(&g, &repaired));
            for &e in &repaired {
                let (u, v) = g.edge(e);
                assert!(st.active.is_active(u) && st.active.is_active(v));
            }
        }
    }
}
