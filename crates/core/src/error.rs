//! Typed errors for the experiment API.
//!
//! Every invalid configuration that used to panic in the old
//! `SimulationConfig` + `Simulator::new` surface is reported as a
//! [`BuildError`] by the [`crate::ExperimentBuilder`] and the scenario
//! [`crate::Driver`]; text-format problems in scenario files surface as
//! [`ParseError`].

use std::error::Error;
use std::fmt;

use sodiff_graph::GraphError;

/// A scenario text could not be parsed.
///
/// Produced by `ScenarioSpec::from_str` and [`crate::ScenarioSpec::parse_many`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number within the parsed text (1 for single-line
    /// parses).
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl ParseError {
    /// Creates a parse error for line 1.
    pub(crate) fn new(message: impl Into<String>) -> Self {
        Self {
            line: 1,
            message: message.into(),
        }
    }

    /// Returns the error re-anchored at `line`.
    pub(crate) fn at_line(mut self, line: usize) -> Self {
        self.line = line;
        self
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "scenario line {}: {}", self.line, self.message)
    }
}

impl Error for ParseError {}

/// An experiment configuration was invalid.
///
/// This is the workspace-wide typed error of the experiment API: every
/// path that used to panic (bad `β`, mismatched speeds length, zero-node
/// graphs, randomized rounding without a seed, out-of-range initial loads,
/// zero worker threads) returns one of these variants instead.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum BuildError {
    /// The graph has no nodes.
    EmptyGraph,
    /// The SOS relaxation parameter is outside the convergence range
    /// `(0, 2)`.
    InvalidBeta(f64),
    /// The pairwise exchange gain `λ` of a dimension-exchange or
    /// matching-based scheme is outside `(0, 1]`.
    InvalidLambda(f64),
    /// Dimension exchange needs an edge coloring to sweep, but the graph
    /// has none (no edges).
    NoColoring(String),
    /// Matching-based balancing needs at least one matching, but the
    /// graph has none (no edges).
    NoMatching(String),
    /// The SOS→FOS hybrid switch only applies to diffusion schemes;
    /// carries the offending scheme's display form.
    HybridRequiresDiffusion(String),
    /// The speeds vector length does not match the graph's node count.
    SpeedsLengthMismatch {
        /// Node count of the graph.
        expected: usize,
        /// Length of the provided speeds vector.
        got: usize,
    },
    /// A speeds specification carried invalid values (speeds below 1,
    /// non-finite values, or a fast-node count exceeding `n`).
    InvalidSpeeds(String),
    /// A randomized rounding scheme was selected without an RNG seed.
    MissingSeed(&'static str),
    /// The executor was configured with zero worker threads.
    ZeroThreads,
    /// The initial load references nodes outside the graph, carries a
    /// negative total, or has the wrong length.
    InvalidInitialLoad(String),
    /// The stop condition is degenerate (zero plateau window or a
    /// non-finite threshold).
    InvalidStopCondition(String),
    /// A fault-injection plan carried an out-of-range probability or
    /// rate (each must be a finite value in `[0, 1]`).
    InvalidFaults(String),
    /// A dynamic-load plan carried an out-of-range parameter (negative
    /// or non-finite rate/amplitude, zero period, …).
    InvalidLoad(String),
    /// A live-topology churn plan carried an out-of-range parameter
    /// (probability outside `[0, 1]`, negative or non-finite initial
    /// load).
    InvalidChurn(String),
    /// The operation needs a discrete-mode experiment.
    RequiresDiscrete(&'static str),
    /// Building the topology failed.
    Graph(GraphError),
    /// Parsing a scenario failed.
    Parse(ParseError),
    /// An error in one scenario of a batch, tagged with its name.
    Scenario {
        /// `name=` of the failing scenario.
        name: String,
        /// The underlying error.
        source: Box<BuildError>,
    },
    /// The checkpoint policy is degenerate (zero interval, empty
    /// directory).
    InvalidCheckpoint(String),
    /// Restoring from a checkpoint snapshot failed.
    Checkpoint(Box<CheckpointError>),
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::EmptyGraph => write!(f, "graph has no nodes"),
            BuildError::InvalidBeta(beta) => {
                write!(f, "SOS requires beta in (0, 2), got {beta}")
            }
            BuildError::InvalidLambda(lambda) => write!(
                f,
                "pairwise exchange requires lambda in (0, 1], got {lambda}"
            ),
            BuildError::NoColoring(msg) => {
                write!(f, "dimension exchange needs an edge coloring: {msg}")
            }
            BuildError::NoMatching(msg) => {
                write!(f, "matching-based balancing needs a matching: {msg}")
            }
            BuildError::HybridRequiresDiffusion(scheme) => write!(
                f,
                "the SOS→FOS hybrid switch requires a diffusion scheme (FOS/SOS), got {scheme}"
            ),
            BuildError::SpeedsLengthMismatch { expected, got } => write!(
                f,
                "speeds length must match node count: graph has {expected} nodes, \
                 speeds has {got}"
            ),
            BuildError::InvalidSpeeds(msg) => write!(f, "invalid speeds: {msg}"),
            BuildError::MissingSeed(what) => write!(
                f,
                "{what} rounding needs an RNG seed (set one with .seed(..) or seed=)"
            ),
            BuildError::ZeroThreads => write!(f, "thread count must be positive"),
            BuildError::InvalidInitialLoad(msg) => write!(f, "invalid initial load: {msg}"),
            BuildError::InvalidStopCondition(msg) => write!(f, "invalid stop condition: {msg}"),
            BuildError::InvalidFaults(msg) => write!(f, "invalid fault plan: {msg}"),
            BuildError::InvalidLoad(msg) => write!(f, "invalid load plan: {msg}"),
            BuildError::InvalidChurn(msg) => write!(f, "invalid churn plan: {msg}"),
            BuildError::RequiresDiscrete(what) => {
                write!(f, "{what} requires a discrete-mode experiment")
            }
            BuildError::Graph(e) => write!(f, "{e}"),
            BuildError::Parse(e) => write!(f, "{e}"),
            BuildError::Scenario { name, source } => {
                write!(f, "scenario '{name}': {source}")
            }
            BuildError::InvalidCheckpoint(msg) => write!(f, "invalid checkpoint policy: {msg}"),
            BuildError::Checkpoint(e) => write!(f, "{e}"),
        }
    }
}

impl Error for BuildError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            BuildError::Graph(e) => Some(e),
            BuildError::Parse(e) => Some(e),
            BuildError::Scenario { source, .. } => Some(source),
            BuildError::Checkpoint(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GraphError> for BuildError {
    fn from(e: GraphError) -> Self {
        BuildError::Graph(e)
    }
}

impl From<ParseError> for BuildError {
    fn from(e: ParseError) -> Self {
        BuildError::Parse(e)
    }
}

impl From<CheckpointError> for BuildError {
    fn from(e: CheckpointError) -> Self {
        BuildError::Checkpoint(Box::new(e))
    }
}

/// A checkpoint file or recovery journal could not be used.
///
/// Produced by the persistence layer in [`crate::checkpoint`] and by
/// [`crate::Driver::resume_batch`]. Loading a snapshot **never panics**:
/// truncation, corruption, and version skew all come back as one of
/// these variants.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CheckpointError {
    /// Reading or writing the file failed; carries the path and the OS
    /// error rendered to text (so the error stays `Clone`).
    Io {
        /// The file that could not be read or written.
        path: std::path::PathBuf,
        /// The rendered `std::io::Error`.
        message: String,
    },
    /// The file does not start with the checkpoint magic bytes.
    BadMagic,
    /// The file was written by an unknown format version.
    UnsupportedVersion {
        /// The version tag found in the header.
        found: u32,
    },
    /// The file ends before the encoded snapshot does.
    Truncated,
    /// The trailing FNV-1a checksum does not match the file contents
    /// (bit corruption).
    ChecksumMismatch {
        /// Checksum stored in the file.
        stored: u64,
        /// Checksum recomputed over the file contents.
        computed: u64,
    },
    /// The scenario line embedded in the header does not parse.
    Spec(ParseError),
    /// The snapshot does not fit the simulation it is being restored
    /// into (node/edge count, mode, or initial-total mismatch).
    Mismatch(String),
    /// A recovery journal line is malformed; `line` is 1-based.
    Journal {
        /// 1-based line number within the journal file.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// Rebuilding the experiment from the embedded scenario failed.
    Build(Box<BuildError>),
}

impl CheckpointError {
    /// An [`CheckpointError::Io`] from a path and an `io::Error`.
    pub(crate) fn io(path: &std::path::Path, e: std::io::Error) -> Self {
        CheckpointError::Io {
            path: path.to_path_buf(),
            message: e.to_string(),
        }
    }
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io { path, message } => {
                write!(f, "checkpoint I/O on {}: {message}", path.display())
            }
            CheckpointError::BadMagic => write!(f, "not a sodiff checkpoint (bad magic)"),
            CheckpointError::UnsupportedVersion { found } => {
                write!(f, "unsupported checkpoint format version {found}")
            }
            CheckpointError::Truncated => write!(f, "checkpoint file is truncated"),
            CheckpointError::ChecksumMismatch { stored, computed } => write!(
                f,
                "checkpoint checksum mismatch: stored {stored:#018x}, computed {computed:#018x}"
            ),
            CheckpointError::Spec(e) => write!(f, "checkpoint header: {e}"),
            CheckpointError::Mismatch(msg) => {
                write!(f, "snapshot does not fit this simulation: {msg}")
            }
            CheckpointError::Journal { line, message } => {
                write!(f, "journal line {line}: {message}")
            }
            CheckpointError::Build(e) => write!(f, "rebuilding checkpointed scenario: {e}"),
        }
    }
}

impl Error for CheckpointError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CheckpointError::Spec(e) => Some(e),
            CheckpointError::Build(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ParseError> for CheckpointError {
    fn from(e: ParseError) -> Self {
        CheckpointError::Spec(e)
    }
}

impl From<BuildError> for CheckpointError {
    fn from(e: BuildError) -> Self {
        CheckpointError::Build(Box::new(e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(BuildError::InvalidBeta(2.5).to_string().contains("(0, 2)"));
        assert!(BuildError::SpeedsLengthMismatch {
            expected: 8,
            got: 5
        }
        .to_string()
        .contains("speeds length must match node count"));
        assert_eq!(
            BuildError::ZeroThreads.to_string(),
            "thread count must be positive"
        );
        assert!(
            BuildError::InvalidFaults("crash probability 2 outside [0, 1]".into())
                .to_string()
                .contains("invalid fault plan")
        );
        let nested = BuildError::Scenario {
            name: "fig1".into(),
            source: Box::new(BuildError::EmptyGraph),
        };
        assert!(nested.to_string().contains("fig1"));
        assert!(nested.to_string().contains("no nodes"));
    }

    #[test]
    fn conversions_wrap() {
        let g: BuildError = GraphError::SelfLoop(3).into();
        assert!(matches!(g, BuildError::Graph(_)));
        let p: BuildError = ParseError::new("bad key").into();
        assert!(p.to_string().contains("line 1"));
    }
}
