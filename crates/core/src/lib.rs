//! # sodiff-core — discrete diffusion load balancing
//!
//! A from-scratch implementation of the algorithms and analyses in
//! *Akbari, Berenbrink, Elsässer, Kaaser: "Discrete Load Balancing in
//! Heterogeneous Networks with a Focus on Second-Order Diffusion"*
//! (ICDCS 2015):
//!
//! * first-order (FOS) and second-order (SOS) diffusion schemes, both
//!   continuous (idealized) and discrete (integral tokens), in the
//!   homogeneous and heterogeneous (speed-proportional) models —
//!   [`Scheme`], [`Simulator`];
//! * the paper's randomized rounding framework plus deterministic and
//!   per-edge baselines — [`Rounding`];
//! * the SOS→FOS hybrid switch that removes the residual imbalance SOS
//!   leaves behind — [`hybrid`];
//! * coupled discrete/continuous deviation measurements — [`deviation`];
//! * the error-propagation matrices `M^t`/`Q(t)`, edge contributions, and
//!   the refined local divergence `Υ^C(G)` — [`divergence`];
//! * negative-load (transient) tracking in the engine and the paper's
//!   minimum-initial-load bounds — [`theory`];
//! * the evaluation metrics (max−avg, max local difference, 2-norm
//!   potential, remaining imbalance) — [`metrics`].
//!
//! # Quickstart
//!
//! ```
//! use sodiff_core::prelude::*;
//! use sodiff_graph::{generators, Speeds};
//! use sodiff_linalg::spectral;
//!
//! let graph = generators::torus2d(16, 16);
//! let spectrum = spectral::analyze(&graph, &Speeds::uniform(graph.node_count()));
//! let config = SimulationConfig::discrete(
//!     Scheme::sos(spectrum.beta_opt()),
//!     Rounding::randomized(42),
//! );
//! let mut sim = Simulator::new(&graph, config, InitialLoad::paper_default(256));
//! let report = sim.run_until(StopCondition::MaxRounds(400));
//! assert!(report.final_metrics.max_minus_avg < 20.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod deviation;
pub mod divergence;
mod engine;
pub mod hybrid;
mod init;
pub mod metrics;
mod observer;
pub mod rng;
mod rounding;
mod scheme;
pub mod theory;

pub use engine::{
    FlowMemory, Mode, RunReport, SimulationConfig, Simulator, StopCondition, StopReason,
};
pub use init::InitialLoad;
pub use metrics::MetricsSnapshot;
pub use observer::{MetricsRow, MultiObserver, Observer, Recorder};
pub use rounding::Rounding;
pub use scheme::Scheme;

/// Convenient glob import: `use sodiff_core::prelude::*;`.
pub mod prelude {
    pub use crate::engine::{
        FlowMemory, Mode, RunReport, SimulationConfig, Simulator, StopCondition, StopReason,
    };
    pub use crate::hybrid::{run_hybrid, run_hybrid_quiet, run_hybrid_when, HybridReport, SwitchPolicy};
    pub use crate::init::InitialLoad;
    pub use crate::metrics::MetricsSnapshot;
    pub use crate::observer::{MetricsRow, MultiObserver, Observer, Recorder};
    pub use crate::rounding::Rounding;
    pub use crate::scheme::Scheme;
    pub use sodiff_graph::Speeds;
    pub use sodiff_linalg::spectral::beta_opt;
}
