//! # sodiff-core — discrete diffusion load balancing
//!
//! A from-scratch implementation of the algorithms and analyses in
//! *Akbari, Berenbrink, Elsässer, Kaaser: "Discrete Load Balancing in
//! Heterogeneous Networks with a Focus on Second-Order Diffusion"*
//! (ICDCS 2015):
//!
//! * first-order (FOS) and second-order (SOS) diffusion schemes, both
//!   continuous (idealized) and discrete (integral tokens), in the
//!   homogeneous and heterogeneous (speed-proportional) models —
//!   [`Scheme`], [`Simulator`];
//! * the classic *pairwise* counterparts of diffusion: **dimension
//!   exchange** (rounds sweep the color classes of an edge coloring, so
//!   each node exchanges with one neighbor per round) and
//!   **matching-based balancing** (one maximal matching per round,
//!   round-robin or freshly randomized) — [`Scheme::dimension_exchange`],
//!   [`Scheme::matching_round_robin`], [`Scheme::matching_random`];
//! * the paper's randomized rounding framework plus deterministic and
//!   per-edge baselines — [`Rounding`];
//! * the SOS→FOS hybrid switch that removes the residual imbalance SOS
//!   leaves behind — [`SwitchPolicy`], [`ExperimentBuilder::hybrid`];
//! * coupled discrete/continuous deviation measurements — [`deviation`],
//!   [`Experiment::coupled_deviation`];
//! * the error-propagation matrices `M^t`/`Q(t)`, edge contributions, and
//!   the refined local divergence `Υ^C(G)` — [`divergence`];
//! * negative-load (transient) tracking in the engine and the paper's
//!   minimum-initial-load bounds — [`theory`];
//! * the evaluation metrics (max−avg, max local difference, 2-norm
//!   potential, remaining imbalance) — [`metrics`].
//!
//! # Quickstart
//!
//! The paper is an *experiment matrix* — every figure sweeps scheme ×
//! rounding × mode × topology × speeds — and the public API mirrors that.
//! One experiment is built with the typestate [`ExperimentBuilder`]: pick
//! a graph, pick a mode (the compiler enforces this step), refine, then
//! `build()` — every invalid input comes back as a typed [`BuildError`]
//! instead of a panic:
//!
//! ```
//! use sodiff_core::prelude::*;
//! use sodiff_graph::generators;
//! use sodiff_linalg::spectral;
//!
//! let graph = generators::torus2d(16, 16);
//! let spectrum = spectral::analyze(&graph, &Speeds::uniform(graph.node_count()));
//! let report = Experiment::on(&graph)
//!     .discrete(Rounding::randomized(42))
//!     .sos(spectrum.beta_opt())
//!     .init(InitialLoad::paper_default(graph.node_count()))
//!     .stop(StopCondition::MaxRounds(400))
//!     .build()
//!     .expect("valid experiment")
//!     .run();
//! assert!(report.final_metrics.max_minus_avg < 20.0);
//! ```
//!
//! Whole experiments can also be described *as text* and executed in
//! batches: a [`ScenarioSpec`] round-trips through `Display`/`FromStr`
//! (`topology=torus2d:16:16 scheme=sos_opt seed=42 …`), and the batch
//! [`Driver`] runs a slice of them over **one** persistent worker pool:
//!
//! ```
//! use sodiff_core::{Driver, ScenarioSpec};
//!
//! let specs = ScenarioSpec::parse_many(
//!     "name=sos topology=torus2d:16:16 scheme=sos_opt seed=42 stop=rounds:120\n\
//!      name=fos topology=torus2d:16:16 scheme=fos seed=42 stop=rounds:120\n",
//! )
//! .unwrap();
//! let batch = Driver::new().run_batch(&specs);
//! assert!(batch.errors.is_empty());
//! assert_eq!(batch.scenarios.len(), 2);
//! // At a short horizon SOS is far ahead of FOS (the paper's Figure 1).
//! assert!(batch.scenarios[0].report.final_metrics.max_minus_avg
//!     < batch.scenarios[1].report.final_metrics.max_minus_avg);
//! ```
//!
//! The pre-0.2 surface (`SimulationConfig::{discrete,continuous}`,
//! `Simulator::new`, the `run_hybrid*` free functions) has been removed
//! after one deprecation release; the builder and the `Simulator` methods
//! above are the only entry points.
//!
//! # The scheme-kernel layer, and adding a scheme
//!
//! Every scheme's per-round flow computation — edge pass, rounding hook,
//! apply pass, and barrier plan — lives in one crate-internal layer, the
//! `scheme_kernel` module. A scheme is the combination of five
//! statically dispatched axes: a *flow pass* (continuous / fused
//! edge-local discrete / the three-phase randomized-framework pipeline),
//! an *active plan* (all edges every round, a precomputed family of edge
//! bitmasks swept round-robin, or a fresh random maximal matching per
//! round), a *fault plan* ([`FaultSpec`]: deterministic node
//! crash/rejoin churn, per-round edge drops, load shocks, and stale-flow
//! injection, all drawn from counter-indexed RNG streams — see the
//! `fault` module docs), a *load plan* ([`LoadSpec`]: per-round
//! dynamic-workload injection — Poisson arrivals/departures, periodic
//! hotspot bursts, diurnal swings, and an adversarial injector that
//! re-targets the currently most-loaded node, drawn from the same
//! salted counter-indexed streams — see the `load` module docs), and a
//! *churn plan* ([`ChurnSpec`]: live topology churn — epoch-aligned
//! node departures and (re)arrivals over the graph's reserved node
//! capacity, with conservation-exact handoff of a departing node's
//! entire load to its live neighbors, configurable initial load on
//! arrival, and incremental per-epoch repair of the sweep-plan mask
//! families over the shrunken/regrown active set — see the `churn`
//! module docs). `faults=none`, `load=none`, and `churn=none` plans
//! keep every hot loop on the original unperturbed kernels.
//! Orthogonal to those five axes, the
//! **memory layout** (`mem=full` / `mem=compact`, [`MemSpec`]) selects
//! the state-storage width: the whole per-round phase sequence is
//! generic over five buffer handles (loads, flow memory, integral
//! flows, arc fractions — see the `BufF64`/`BufI64` traits in the
//! kernel layer) and monomorphizes per layout, so `mem=full`
//! instantiates to the exact pre-compact code while `mem=compact`
//! stores loads and per-edge state as `i32`/`f32` at half the bytes,
//! widening on every read and narrowing on every write but keeping all
//! arithmetic in `f64`. Load deltas are planned and applied on
//! the control thread before each round's flow pass (and before the
//! pool's first barrier), so both the sequential executor and the
//! worker pool balance identical per-round loads and run the same
//! kernel calls in the same per-element order — pooled results are
//! bit-identical to sequential ones for every scheme, every fault plan,
//! every load plan, and every churn plan, by construction. Dynamic runs
//! stop through the dedicated [`StopCondition::Steady`] /
//! [`StopCondition::Horizon`] modes, which report windowed steady-state
//! deviation statistics ([`RunReport::steady`]) plus injected-token
//! accounting ([`RunReport::load`]) and churn-event accounting
//! ([`RunReport::churn`]) so conservation checks still hold
//! (`total == initial + injected + joined − departed`).
//!
//! To add a new scheme end to end, touch exactly these points:
//!
//! 1. **`scheme.rs`** — add the [`Scheme`] variant, its constructor, its
//!    parameter validation in `Scheme::check`, and its `(memory, gain)`
//!    coefficients (return `(0.0, 1.0)` if the scheme has no flow
//!    memory).
//! 2. **`scheme_kernel.rs`** — map the variant to a flow pass × active
//!    plan in `SchemeKernel::new`. If the scheme activates a subset of
//!    edges, build its masks here (e.g. from
//!    [`sodiff_graph::matching`]); if it needs new per-edge
//!    coefficients, compute them here. Only a genuinely new *phase
//!    structure* requires touching `kernel.rs` itself. The fault axis
//!    composes automatically: any masked plan is intersected with the
//!    round's live/dropped edge sets, and sweep families are repaired
//!    incrementally at crash epochs — a new scheme only needs to decide
//!    whether its masks should be *re-covered* after node deaths
//!    (matchings: yes) or merely *masked out* (color classes: no), the
//!    `recover` flag of the sweep plan.
//! 3. **`error.rs`** — add `BuildError` variants for configurations the
//!    scheme cannot run on, and report them from
//!    `SchemeKernel::validate` so both the builder and hand-built
//!    `SimulationConfig`s reject them.
//! 4. **`scenario.rs`** — add the [`SchemeSpec`] variant with its
//!    `scheme=` text form (`Display`/`FromStr` must round-trip exactly;
//!    extend the proptest strategies in `tests/scenario_spec.rs`).
//! 5. **Tests** — pin a golden trace in `tests/golden_trace.rs`
//!    (sequential and pooled against the same checksum) and add the
//!    scheme to the determinism grid in `tests/determinism.rs`.
//! 6. **Bench** — add a `perf_baseline` case so `BENCH_rounds.json`
//!    tracks it (and extend the CI gate if it is a hot path).
//!
//! The engine, the pool, the builder plumbing, and the batch driver need
//! **no** changes: they are scheme-agnostic.
//!
//! # Persistence: exact checkpoint/resume
//!
//! Every point of the six-axis experiment matrix (scheme × rounding ×
//! mode × topology × speeds — faults, dynamic load, and topology churn
//! included) can be frozen mid-run and resumed **bit-identically**,
//! because all randomness is drawn from counter-indexed streams with no
//! serial generator state (see [`rng`]): a snapshot only carries the
//! genuinely evolving state — loads, SOS flow memory, round counters,
//! hybrid/degradation flags, cumulative event counters, the churn axis's
//! active-node overlay (the one history-dependent piece of axis state,
//! persisted verbatim since format v2 so restore never redraws a
//! transition), and the stop-condition metric rings — while kernels,
//! coefficient tables, and fault/churn masks are re-derived from the
//! [`ScenarioSpec`] embedded in the checkpoint header. Format v1 files
//! (pre-churn) still load, defaulting to a churn-never-ran overlay. Scenario files opt in with `ckpt=every:N:DIR`
//! (plus an automatic pre-degradation snapshot when the divergence
//! watchdog trips); programmatic runs use
//! [`ExperimentBuilder::checkpoint`] or
//! [`Simulator::snapshot`]/[`Simulator::restore`] directly. The
//! versioned, checksummed file format and the recovery story (the batch
//! [`Driver`]'s journal, [`Driver::resume_batch`], bounded
//! retry-with-backoff for panicked scenarios) live in the [`checkpoint`]
//! module; loading a damaged file **never panics** — truncation, bit
//! corruption, and version skew all surface as typed
//! [`CheckpointError`] variants.
//!
//! # Performance
//!
//! The round loop is the measured fast path of this workspace (see
//! `crates/bench/src/bin/perf_baseline.rs`, which emits
//! `BENCH_rounds.json` at the repo root). Its design, in three layers:
//!
//! **Division-free fused edge kernels** (`kernel` module, crate-private).
//! At construction the simulator precomputes per-edge coefficient tables
//! `coef_tail[e] = α_e/s_u` and `coef_head[e] = α_e/s_v` plus flat
//! structure-of-arrays copies of the CSR adjacency (edge ids, orientation
//! signs), so the scheduled-flow pass is a pure multiply–add sweep
//! `Ŷ_e = mem·prev_e + gain·(coef_tail[e]·x_u − coef_head[e]·x_v)` with no
//! `f64` division, no `Speeds::get` indirection, and no tuple-of-pairs
//! adjacency loads. For the edge-local rounding schemes (round-down,
//! nearest, per-edge unbiased) the rounding and the SOS flow-memory update
//! are fused into the same sweep, and rounding itself avoids libm
//! (`trunc`/`round`/`floor` become exact integer-cast sequences — on
//! baseline x86-64 the libm calls dominated the old kernel). Hot loops zip
//! pre-sliced ranges so bounds checks vanish without any `unsafe`.
//!
//! **Streaming three-phase randomized pipeline** (`kernel` module). The
//! paper's randomized rounding framework — long the slowest discrete
//! configuration — runs as three streaming phases instead of four
//! gather-heavy sweeps: the edge pass floors the scheduled flow on the
//! spot (one truncating cast per edge) and scatters the fractional part
//! into the sending side's arc slot; the node-centric rounding phase then
//! reads its fracs **contiguously**, skips token-free nodes, and
//! distributes excess tokens with per-node RNG streams whose warmed-up
//! states come from a flat bulk sweep (`rng::fill_node_states`, the
//! warm-up discard fused into the key mix) and whose draws come straight
//! off the stream counter (`rng::nth_u64`) with a branchless
//! prefix-count selection — no serial RNG dependency, no data-dependent
//! branch per entry. All outputs are **bit-identical** to the original
//! per-node `SplitMix64` formulation (`tests/golden_trace.rs`,
//! `tests/golden_rng.rs`).
//!
//! **Scheme-kernel dispatch** (`scheme_kernel` module). The per-round
//! phase sequence is selected once per simulation through plain enums
//! (flow pass × active plan) and monomorphized per mask source, so the
//! diffusion hot paths run the *original unmasked* kernels — the layer
//! adds no per-round indirection to FOS/SOS — while the pairwise schemes
//! get masked variants of the same passes.
//!
//! **Persistent worker pool + concurrent scenario scheduling** (`pool` /
//! `driver` modules). With [`ExperimentBuilder::threads`]`(t > 1)`,
//! `t − 1` workers are spawned once and park on a barrier between rounds;
//! the framework now needs two internal barriers per round (the
//! flow-memory copy shares the apply pass's barrier interval). The batch
//! [`Driver`] re-targets one pool at every simulation of a scenario file
//! ([`Driver::with_threads`]) or — new — schedules **independent
//! scenarios concurrently** ([`Driver::concurrent`]): K workers pull
//! scenarios off a work-stealing queue and run each on the sequential
//! executor, which scales with cores for many-small-scenario batches
//! without any per-round synchronization. Pooled and concurrent results
//! are **bit-identical** to sequential ones (`tests/determinism.rs`,
//! `tests/driver_concurrent.rs`).
//!
//! **Measured baseline** (single-core CI container, 2026-07; sequential
//! unless noted; ns per edge per round). **Caveat for every row: the
//! benchmark host is single-core**, so thread counts above 1 and the
//! `driver_batch_concurrent` entry of `BENCH_rounds.json` measure pure
//! scheduling overhead, never parallel wall-clock gains — re-measure on
//! a multi-core host before drawing scaling conclusions.
//!
//! **Fused in-loop metrics** (`kernel::LoadStats` + the apply passes).
//! The apply pass reduces, in the same sweep that applies flows, the
//! minimum transient load, the post-round min/max deviations against a
//! precomputed balanced-load table ([`KernelTables`'s `ideal`]), and
//! per-64-node-block squared-deviation partials folded in block order.
//! Threshold/plateau-stopped runs therefore make exactly **one pass
//! over the node loads per round** — the old per-round `O(n + m)`
//! `metrics()` sweep is gone — and every run report's final metrics
//! come from the same fused statistics ([`Simulator::round_metrics`]),
//! bit-identical to a from-scratch recompute for every scheme, mode,
//! and thread count (`tests/fused_metrics.rs`). Cost: ~4–5% on bare
//! diffusion rounds (the reduction rides the apply pass); win: metric-
//! stopped rounds dropped 12.83 → 8.65 ns/edge (1.48×, same-day A/B).
//!
//! The round-loop perf overhaul (PR 5) rebuilt the per-round overhead
//! paths: sort-free `O(m)` random-matching generation
//! ([`matchgen`]: counting-scatter buckets, measured 3.2× over the
//! sort in isolation — `benches/matching_gen.rs`), the fused metrics
//! reduction above, lane-chunked bulk RNG sweeps
//! ([`rng::fill_node_states`] / [`rng::fill_first_draws`], ~8%), and
//! running-slice apply iteration (which alone took the masked pairwise
//! rounds from ~16.1 to ~9.6 ns/edge). Same-day A/B on the build
//! container (baseline tree → this tree):
//!
//! | case | before | after |
//! |------|-------:|------:|
//! | 256×256 torus, matching (random), nearest | 60.75 | 23.96 (**2.54×**) |
//! | 256×256 torus, matching (round-robin), nearest | 16.13 | 9.59 (1.68×) |
//! | 256×256 torus, dimension exchange, nearest | 16.13 | 9.70 (1.66×) |
//! | 256×256 torus, SOS nearest + threshold stop | 12.83 | 8.65 (1.48×) |
//! | 256×256 torus, SOS discrete nearest | 7.90 | 8.22 (+4%) |
//! | 256×256 torus, SOS discrete **randomized** | 17.32 | 18.16 (+5%) |
//! | 256×256 torus, SOS continuous | 4.45 | 4.49 (+1%) |
//!
//! (The committed `BENCH_rounds.json` was refreshed the same day; its
//! absolute values sit a few percent above this table where the
//! container was busier during the committed run. Host drift, not
//! code: the **unchanged** PR-4 tree re-measured the same day at 7.90
//! `sos_discrete_nearest` / 17.32 randomized / 4.45 continuous / 16.13
//! de — all above its own committed 7.37 / 16.46 / 4.37 / 16.08 — so
//! cross-file deltas of ±5–20% on this box say nothing about the code;
//! trust the same-day A/B column pairs above. The CI gates normalize
//! by the same-run `sos_discrete_nearest` ratio, so they are immune to
//! this drift.)
//!
//! The dynamic-workload axis (`load` module, 2026-08) follows the fault
//! axis's cost discipline and is held to it by CI: with `load=none` the
//! round loop takes the exact pre-load code paths (same-run min-batch
//! ns/edge ratio vs the fault-free baseline measured at 0.998, gated at
//! ≤ 1.02), and an active `load=poisson:2:42` plan adds only the
//! control-thread generator draw plus a sparse delta application — no
//! extra per-round sweep — measured at 8.40 vs 8.45 min ns/edge against
//! its own `load=none` twin (`sos_load_poisson` / `sos_load_none` in
//! `BENCH_rounds.json`, ratio-gated at +25% like the other kernels).
//!
//! The churn axis (`churn` module, 2026-08) is held to the same
//! discipline: with `churn=none` the kernel's plan predicates all
//! compile the churn path away and the round loop takes the exact
//! pre-churn code (same-run min-batch ns/edge ratio vs the churn-free
//! baseline gated at ≤ 1.02 — `sos_churn_none` vs `sos_mem_full` in
//! `BENCH_rounds.json`). An active `churn=flux:…` plan does all of its
//! work on the control thread at 16-round epoch boundaries — one bulk
//! counter-indexed draw sweep over the node capacity, a sparse handoff
//! delta list, and an incremental sweep-mask repair — and between
//! epochs only adds the branchless active-edge mask intersection the
//! fault axis already pays for, so the steady per-round cost rides the
//! existing masked kernels (`sos_churn_flux`, ratio-gated at +25%).
//!
//! The pairwise schemes sweep all `m` edges per round with a branchless
//! activity mask (only the active matching carries flow), so their
//! ns-per-edge cost is not comparable to diffusion's tokens-moved rate.
//! The random-matching plan's remaining premium over round-robin
//! (~14 ns/edge) is the per-round `O(m)` bucket generation — counting,
//! scatter, and greedy passes that are random-access bound; see
//! [`matchgen`] for the layout choices that keep them cache-resident.
//!
//! **8-lane chunked SIMD edge/apply kernels + software prefetch**
//! (PR 9). Every hot per-edge pass — the fused discrete kernels, the
//! framework's scatter pass, the continuous kernel, their masked
//! pairwise/fault variants, and both apply passes — now runs as 8-lane
//! chunks with a scalar tail, the same shape that paid off in
//! [`rng::fill_node_states`]. Per-edge work is independent and each
//! lane performs the identical operation sequence on its own edge, so
//! the chunked loops are **bit-identical** to the scalar originals (the
//! full argument lives in the `kernel` module docs; every pinned
//! checksum in `tests/golden_trace.rs` is unchanged). The win is
//! largest where the old loops carried a per-edge branch: the masked
//! pairwise/fault kernels hoist the mask word per lane group and go
//! branchless. The random-matching generator additionally packs the
//! greedy pass's endpoint pairs into one `u64` stream and issues
//! software prefetches ([`matchgen`], the `prefetch` module) ahead of
//! its random-access bucket writes. Same-day A/B, 256×256 torus,
//! single-thread default build (min-estimator ns/edge):
//!
//! | case | before | after |
//! |------|-------:|------:|
//! | dimension exchange, nearest | 16.56 | 8.63 (**1.92×**) |
//! | matching (round-robin), nearest | 16.58 | 8.71 (**1.90×**) |
//! | SOS + crash churn (masked kernel) | 16.65 | 8.68 (**1.92×**) |
//! | matching (random), nearest | 31.25 | 23.37 (**1.34×**) |
//! | SOS discrete nearest (unmasked) | — | 1.03× t1 / 1.13× t4 |
//! | SOS continuous | — | 1.05× |
//!
//! The unmasked diffusion kernels were already pure multiply–add
//! streams, so lane-chunking mostly helps the compiler's scheduling
//! there; the masked kernels are where the restructuring removes real
//! work. An optional `accel` feature adds an x86-64 intrinsics path
//! (guarded, with the chunked-scalar form as the portable fallback) —
//! CI builds and tests both. Levers tried and **rejected** on
//! measurement, so they are not re-attempted blindly: splatting a
//! uniform coefficient across lanes (no gain — the loads are the
//! bottleneck, not the coefficient reads), a degree-4 specialization of
//! the apply pass (regressed irregular graphs), and replacing
//! nearest-rounding with truncation (~1–1.5 ns/edge cheaper but
//! bit-pinned: rounding mode is part of the golden surface).
//!
//! **Compact-state memory diet** (`mem=compact`, PR 9). The fifth
//! config axis above is the capacity lever for 10⁸-edge graphs: per-node
//! loads and per-edge state (integral flows, SOS flow memory, arc
//! fractions) store as `i32`/`f32` — exactly half the bytes per element,
//! verified end to end by [`Simulator::state_bytes`] (the pool job's
//! atomic mirrors shrink too; [`sodiff_graph::Graph::memory_bytes`]
//! accounts the CSR side, ~2.9 GB at 10⁸ edges). All arithmetic stays
//! `f64`; each store narrows (nearest for `f32`, exact for in-range
//! `i32` — the builder rejects initial loads whose total exceeds
//! `i32::MAX/4`). Compact is therefore a *different but equally valid*
//! deterministic process with its own pinned golden traces
//! (`tests/compact_mode.rs`), still bit-identical across executors and
//! thread counts, still exactly checkpoint/resumable (snapshots widen
//! losslessly; restore re-narrows after validating representability),
//! and within a small tolerance of `mem=full` final metrics. For graphs
//! whose per-edge state outgrows the last-level cache,
//! [`sodiff_graph::Graph::reorder_edges_blocked`] optionally renumbers
//! edge ids in node-block-major order so flows stream in the same order
//! as loads (opt-in: edge ids key the per-(edge, round) RNG streams, so
//! reordering changes which random outcomes a run draws).

// Unsafe is forbidden outside the `accel` feature. With `accel` on, the
// only unsafe in the crate is the `_mm_prefetch` intrinsic inside
// [`prefetch`] (explicitly `#[allow]`ed there); everything else stays
// denied so new unsafe cannot creep in behind the feature gate.
#![cfg_attr(not(feature = "accel"), forbid(unsafe_code))]
#![cfg_attr(feature = "accel", deny(unsafe_code))]
#![warn(missing_docs)]

pub mod checkpoint;
mod churn;
pub mod deviation;
pub mod divergence;
mod driver;
mod engine;
mod error;
mod experiment;
mod fault;
pub mod hybrid;
mod init;
#[doc(hidden)]
pub mod kernel;
mod load;
#[doc(hidden)]
pub mod matchgen;
pub mod metrics;
mod observer;
mod pool;
mod prefetch;
pub mod rng;
mod rounding;
mod scenario;
mod scheme;
mod scheme_kernel;
pub mod theory;

pub use checkpoint::{
    read_checkpoint, write_checkpoint, Checkpoint, CheckpointConfig, CheckpointPolicy, Snapshot,
};
pub use churn::{ChurnChannel, ChurnEvents, ChurnSpec};
pub use driver::{BatchReport, Driver, ScenarioError, ScenarioFailure, ScenarioReport};
pub use engine::{
    FlowMemory, Mode, RunReport, SimulationConfig, Simulator, StopCondition, StopReason,
};
pub use error::{BuildError, CheckpointError, ParseError};
pub use experiment::{Experiment, ExperimentBuilder, NeedsMode, Ready};
pub use fault::{FaultChannel, FaultEvents, FaultSpec, EPOCH_LEN};
pub use hybrid::SwitchPolicy;
pub use init::InitialLoad;
pub use load::{
    AdversarialLoad, DiurnalLoad, HotspotLoad, LoadEvents, LoadSpec, PoissonLoad, SteadyStats,
    MAX_BURST, MAX_RATE,
};
pub use metrics::MetricsSnapshot;
pub use observer::{MetricsRow, MultiObserver, NullObserver, Observer, Recorder};
pub use rounding::{Rounding, RoundingSpec};
pub use scenario::{InitSpec, MemSpec, ModeSpec, ScenarioSpec, SchemeSpec, SpeedsSpec, StopSpec};
pub use scheme::{MatchingStrategy, Scheme};

/// Convenient glob import: `use sodiff_core::prelude::*;`.
pub mod prelude {
    pub use crate::checkpoint::{
        read_checkpoint, write_checkpoint, Checkpoint, CheckpointConfig, CheckpointPolicy, Snapshot,
    };
    pub use crate::churn::{ChurnChannel, ChurnEvents, ChurnSpec};
    pub use crate::driver::{BatchReport, Driver, ScenarioError, ScenarioFailure, ScenarioReport};
    pub use crate::engine::{
        FlowMemory, Mode, RunReport, SimulationConfig, Simulator, StopCondition, StopReason,
    };
    pub use crate::error::{BuildError, CheckpointError, ParseError};
    pub use crate::experiment::{Experiment, ExperimentBuilder};
    pub use crate::fault::{FaultChannel, FaultEvents, FaultSpec};
    pub use crate::hybrid::SwitchPolicy;
    pub use crate::init::InitialLoad;
    pub use crate::load::{
        AdversarialLoad, DiurnalLoad, HotspotLoad, LoadEvents, LoadSpec, PoissonLoad, SteadyStats,
    };
    pub use crate::metrics::MetricsSnapshot;
    pub use crate::observer::{MetricsRow, MultiObserver, NullObserver, Observer, Recorder};
    pub use crate::rounding::{Rounding, RoundingSpec};
    pub use crate::scenario::{MemSpec, ScenarioSpec};
    pub use crate::scheme::{MatchingStrategy, Scheme};
    pub use sodiff_graph::{Speeds, TopologySpec};
    pub use sodiff_linalg::spectral::beta_opt;
}
