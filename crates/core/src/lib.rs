//! # sodiff-core — discrete diffusion load balancing
//!
//! A from-scratch implementation of the algorithms and analyses in
//! *Akbari, Berenbrink, Elsässer, Kaaser: "Discrete Load Balancing in
//! Heterogeneous Networks with a Focus on Second-Order Diffusion"*
//! (ICDCS 2015):
//!
//! * first-order (FOS) and second-order (SOS) diffusion schemes, both
//!   continuous (idealized) and discrete (integral tokens), in the
//!   homogeneous and heterogeneous (speed-proportional) models —
//!   [`Scheme`], [`Simulator`];
//! * the paper's randomized rounding framework plus deterministic and
//!   per-edge baselines — [`Rounding`];
//! * the SOS→FOS hybrid switch that removes the residual imbalance SOS
//!   leaves behind — [`SwitchPolicy`], [`ExperimentBuilder::hybrid`];
//! * coupled discrete/continuous deviation measurements — [`deviation`],
//!   [`Experiment::coupled_deviation`];
//! * the error-propagation matrices `M^t`/`Q(t)`, edge contributions, and
//!   the refined local divergence `Υ^C(G)` — [`divergence`];
//! * negative-load (transient) tracking in the engine and the paper's
//!   minimum-initial-load bounds — [`theory`];
//! * the evaluation metrics (max−avg, max local difference, 2-norm
//!   potential, remaining imbalance) — [`metrics`].
//!
//! # Quickstart
//!
//! The paper is an *experiment matrix* — every figure sweeps scheme ×
//! rounding × mode × topology × speeds — and the public API mirrors that.
//! One experiment is built with the typestate [`ExperimentBuilder`]: pick
//! a graph, pick a mode (the compiler enforces this step), refine, then
//! `build()` — every invalid input comes back as a typed [`BuildError`]
//! instead of a panic:
//!
//! ```
//! use sodiff_core::prelude::*;
//! use sodiff_graph::generators;
//! use sodiff_linalg::spectral;
//!
//! let graph = generators::torus2d(16, 16);
//! let spectrum = spectral::analyze(&graph, &Speeds::uniform(graph.node_count()));
//! let report = Experiment::on(&graph)
//!     .discrete(Rounding::randomized(42))
//!     .sos(spectrum.beta_opt())
//!     .init(InitialLoad::paper_default(graph.node_count()))
//!     .stop(StopCondition::MaxRounds(400))
//!     .build()
//!     .expect("valid experiment")
//!     .run();
//! assert!(report.final_metrics.max_minus_avg < 20.0);
//! ```
//!
//! Whole experiments can also be described *as text* and executed in
//! batches: a [`ScenarioSpec`] round-trips through `Display`/`FromStr`
//! (`topology=torus2d:16:16 scheme=sos_opt seed=42 …`), and the batch
//! [`Driver`] runs a slice of them over **one** persistent worker pool:
//!
//! ```
//! use sodiff_core::{Driver, ScenarioSpec};
//!
//! let specs = ScenarioSpec::parse_many(
//!     "name=sos topology=torus2d:16:16 scheme=sos_opt seed=42 stop=rounds:120\n\
//!      name=fos topology=torus2d:16:16 scheme=fos seed=42 stop=rounds:120\n",
//! )
//! .unwrap();
//! let batch = Driver::new().run_batch(&specs).unwrap();
//! assert_eq!(batch.scenarios.len(), 2);
//! // At a short horizon SOS is far ahead of FOS (the paper's Figure 1).
//! assert!(batch.scenarios[0].report.final_metrics.max_minus_avg
//!     < batch.scenarios[1].report.final_metrics.max_minus_avg);
//! ```
//!
//! The pre-0.2 surface (`SimulationConfig::{discrete,continuous}`,
//! `Simulator::new`, the `run_hybrid*` free functions) remains available
//! as `#[deprecated]` shims for one release; each shim's docs show the
//! replacement call.
//!
//! # Performance
//!
//! The round loop is the measured fast path of this workspace (see
//! `crates/bench/src/bin/perf_baseline.rs`, which emits
//! `BENCH_rounds.json` at the repo root). Its design, in three layers:
//!
//! **Division-free fused edge kernels** (`kernel` module, crate-private).
//! At construction the simulator precomputes per-edge coefficient tables
//! `coef_tail[e] = α_e/s_u` and `coef_head[e] = α_e/s_v` plus flat
//! structure-of-arrays copies of the CSR adjacency (edge ids, orientation
//! signs), so the scheduled-flow pass is a pure multiply–add sweep
//! `Ŷ_e = mem·prev_e + gain·(coef_tail[e]·x_u − coef_head[e]·x_v)` with no
//! `f64` division, no `Speeds::get` indirection, and no tuple-of-pairs
//! adjacency loads. For the edge-local rounding schemes (round-down,
//! nearest, per-edge unbiased) the rounding and the SOS flow-memory update
//! are fused into the same sweep, and rounding itself avoids libm
//! (`trunc`/`round`/`floor` become exact integer-cast sequences — on
//! baseline x86-64 the libm calls dominated the old kernel). Hot loops zip
//! pre-sliced ranges so bounds checks vanish without any `unsafe`.
//!
//! **Persistent worker pool** (`pool` module, crate-private). With
//! [`ExperimentBuilder::threads`]`(t > 1)`, `t − 1` workers are spawned
//! once and park on a barrier between rounds; each round costs a handful
//! of barrier waits instead of the `threads × phases` thread spawns of the
//! previous scoped-thread executor. The pool is split from the
//! per-simulation state, so the batch [`Driver`] re-targets one pool at
//! every simulation of a scenario file instead of respawning per
//! `Simulator`. Phases run the *same* kernel functions as the sequential
//! path over relaxed-atomic views of the state, in the same per-element
//! order, so pooled results are **bit-identical** to sequential ones
//! (enforced by `tests/determinism.rs` across every scheme × rounding ×
//! mode × thread-count combination).
//!
//! **Measured baseline** (single-core CI container, 2026-07; sequential
//! unless noted; ns per edge per round):
//!
//! | case | before | after | speedup |
//! |------|-------:|------:|--------:|
//! | 512×512 torus, FOS discrete nearest | 9.50 | 5.89 | 1.61× |
//! | 256×256 torus, SOS discrete nearest | 9.91 | 6.21 | 1.60× |
//! | 256×256 torus, SOS continuous | 6.01 | 4.43 | 1.36× |
//! | 256×256 torus, SOS continuous, 4 threads | 12.99 | 5.69 | 2.28× |
//! | 256×256 torus, SOS discrete nearest, 4 threads | 11.43 | 8.89 | 1.29× |
//!
//! The 4-thread rows compare the old scoped-spawn executor against the
//! pool at the same thread count — on the single-core benchmark host a
//! wall-clock parallel speedup is impossible, so the pooled rows measure
//! pure executor overhead (now close to the sequential cost, where the old
//! executor doubled it). On multi-core hosts the same overhead reduction
//! is what moves the multi-threading break-even from ~10⁵ down to ~10⁴
//! edges.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod deviation;
pub mod divergence;
mod driver;
mod engine;
mod error;
mod experiment;
pub mod hybrid;
mod init;
mod kernel;
pub mod metrics;
mod observer;
mod pool;
pub mod rng;
mod rounding;
mod scenario;
mod scheme;
pub mod theory;

pub use driver::{BatchReport, Driver, ScenarioReport};
pub use engine::{
    FlowMemory, Mode, RunReport, SimulationConfig, Simulator, StopCondition, StopReason,
};
pub use error::{BuildError, ParseError};
pub use experiment::{Experiment, ExperimentBuilder, NeedsMode, Ready};
pub use hybrid::SwitchPolicy;
pub use init::InitialLoad;
pub use metrics::MetricsSnapshot;
pub use observer::{MetricsRow, MultiObserver, NullObserver, Observer, Recorder};
pub use rounding::{Rounding, RoundingSpec};
pub use scenario::{InitSpec, ModeSpec, ScenarioSpec, SchemeSpec, SpeedsSpec, StopSpec};
pub use scheme::Scheme;

/// Convenient glob import: `use sodiff_core::prelude::*;`.
pub mod prelude {
    pub use crate::driver::{BatchReport, Driver, ScenarioReport};
    pub use crate::engine::{
        FlowMemory, Mode, RunReport, SimulationConfig, Simulator, StopCondition, StopReason,
    };
    pub use crate::error::{BuildError, ParseError};
    pub use crate::experiment::{Experiment, ExperimentBuilder};
    #[allow(deprecated)]
    pub use crate::hybrid::{
        run_hybrid, run_hybrid_quiet, run_hybrid_when, HybridReport, SwitchPolicy,
    };
    pub use crate::init::InitialLoad;
    pub use crate::metrics::MetricsSnapshot;
    pub use crate::observer::{MetricsRow, MultiObserver, NullObserver, Observer, Recorder};
    pub use crate::rounding::{Rounding, RoundingSpec};
    pub use crate::scenario::ScenarioSpec;
    pub use crate::scheme::Scheme;
    pub use sodiff_graph::{Speeds, TopologySpec};
    pub use sodiff_linalg::spectral::beta_opt;
}
