//! # sodiff-core — discrete diffusion load balancing
//!
//! A from-scratch implementation of the algorithms and analyses in
//! *Akbari, Berenbrink, Elsässer, Kaaser: "Discrete Load Balancing in
//! Heterogeneous Networks with a Focus on Second-Order Diffusion"*
//! (ICDCS 2015):
//!
//! * first-order (FOS) and second-order (SOS) diffusion schemes, both
//!   continuous (idealized) and discrete (integral tokens), in the
//!   homogeneous and heterogeneous (speed-proportional) models —
//!   [`Scheme`], [`Simulator`];
//! * the paper's randomized rounding framework plus deterministic and
//!   per-edge baselines — [`Rounding`];
//! * the SOS→FOS hybrid switch that removes the residual imbalance SOS
//!   leaves behind — [`SwitchPolicy`], [`ExperimentBuilder::hybrid`];
//! * coupled discrete/continuous deviation measurements — [`deviation`],
//!   [`Experiment::coupled_deviation`];
//! * the error-propagation matrices `M^t`/`Q(t)`, edge contributions, and
//!   the refined local divergence `Υ^C(G)` — [`divergence`];
//! * negative-load (transient) tracking in the engine and the paper's
//!   minimum-initial-load bounds — [`theory`];
//! * the evaluation metrics (max−avg, max local difference, 2-norm
//!   potential, remaining imbalance) — [`metrics`].
//!
//! # Quickstart
//!
//! The paper is an *experiment matrix* — every figure sweeps scheme ×
//! rounding × mode × topology × speeds — and the public API mirrors that.
//! One experiment is built with the typestate [`ExperimentBuilder`]: pick
//! a graph, pick a mode (the compiler enforces this step), refine, then
//! `build()` — every invalid input comes back as a typed [`BuildError`]
//! instead of a panic:
//!
//! ```
//! use sodiff_core::prelude::*;
//! use sodiff_graph::generators;
//! use sodiff_linalg::spectral;
//!
//! let graph = generators::torus2d(16, 16);
//! let spectrum = spectral::analyze(&graph, &Speeds::uniform(graph.node_count()));
//! let report = Experiment::on(&graph)
//!     .discrete(Rounding::randomized(42))
//!     .sos(spectrum.beta_opt())
//!     .init(InitialLoad::paper_default(graph.node_count()))
//!     .stop(StopCondition::MaxRounds(400))
//!     .build()
//!     .expect("valid experiment")
//!     .run();
//! assert!(report.final_metrics.max_minus_avg < 20.0);
//! ```
//!
//! Whole experiments can also be described *as text* and executed in
//! batches: a [`ScenarioSpec`] round-trips through `Display`/`FromStr`
//! (`topology=torus2d:16:16 scheme=sos_opt seed=42 …`), and the batch
//! [`Driver`] runs a slice of them over **one** persistent worker pool:
//!
//! ```
//! use sodiff_core::{Driver, ScenarioSpec};
//!
//! let specs = ScenarioSpec::parse_many(
//!     "name=sos topology=torus2d:16:16 scheme=sos_opt seed=42 stop=rounds:120\n\
//!      name=fos topology=torus2d:16:16 scheme=fos seed=42 stop=rounds:120\n",
//! )
//! .unwrap();
//! let batch = Driver::new().run_batch(&specs).unwrap();
//! assert_eq!(batch.scenarios.len(), 2);
//! // At a short horizon SOS is far ahead of FOS (the paper's Figure 1).
//! assert!(batch.scenarios[0].report.final_metrics.max_minus_avg
//!     < batch.scenarios[1].report.final_metrics.max_minus_avg);
//! ```
//!
//! The pre-0.2 surface (`SimulationConfig::{discrete,continuous}`,
//! `Simulator::new`, the `run_hybrid*` free functions) has been removed
//! after one deprecation release; the builder and the `Simulator` methods
//! above are the only entry points.
//!
//! # Performance
//!
//! The round loop is the measured fast path of this workspace (see
//! `crates/bench/src/bin/perf_baseline.rs`, which emits
//! `BENCH_rounds.json` at the repo root). Its design, in three layers:
//!
//! **Division-free fused edge kernels** (`kernel` module, crate-private).
//! At construction the simulator precomputes per-edge coefficient tables
//! `coef_tail[e] = α_e/s_u` and `coef_head[e] = α_e/s_v` plus flat
//! structure-of-arrays copies of the CSR adjacency (edge ids, orientation
//! signs), so the scheduled-flow pass is a pure multiply–add sweep
//! `Ŷ_e = mem·prev_e + gain·(coef_tail[e]·x_u − coef_head[e]·x_v)` with no
//! `f64` division, no `Speeds::get` indirection, and no tuple-of-pairs
//! adjacency loads. For the edge-local rounding schemes (round-down,
//! nearest, per-edge unbiased) the rounding and the SOS flow-memory update
//! are fused into the same sweep, and rounding itself avoids libm
//! (`trunc`/`round`/`floor` become exact integer-cast sequences — on
//! baseline x86-64 the libm calls dominated the old kernel). Hot loops zip
//! pre-sliced ranges so bounds checks vanish without any `unsafe`.
//!
//! **Streaming three-phase randomized pipeline** (`kernel` module). The
//! paper's randomized rounding framework — long the slowest discrete
//! configuration — runs as three streaming phases instead of four
//! gather-heavy sweeps: the edge pass floors the scheduled flow on the
//! spot (one truncating cast per edge) and scatters the fractional part
//! into the sending side's arc slot; the node-centric rounding phase then
//! reads its fracs **contiguously**, skips token-free nodes, and
//! distributes excess tokens with per-node RNG streams whose warmed-up
//! states come from a flat bulk sweep (`rng::fill_node_states`, the
//! warm-up discard fused into the key mix) and whose draws come straight
//! off the stream counter (`rng::nth_u64`) with a branchless
//! prefix-count selection — no serial RNG dependency, no data-dependent
//! branch per entry. All outputs are **bit-identical** to the original
//! per-node `SplitMix64` formulation (`tests/golden_trace.rs`,
//! `tests/golden_rng.rs`).
//!
//! **Persistent worker pool + concurrent scenario scheduling** (`pool` /
//! `driver` modules). With [`ExperimentBuilder::threads`]`(t > 1)`,
//! `t − 1` workers are spawned once and park on a barrier between rounds;
//! the framework now needs two internal barriers per round (the
//! flow-memory copy shares the apply pass's barrier interval). The batch
//! [`Driver`] re-targets one pool at every simulation of a scenario file
//! ([`Driver::with_threads`]) or — new — schedules **independent
//! scenarios concurrently** ([`Driver::concurrent`]): K workers pull
//! scenarios off a work-stealing queue and run each on the sequential
//! executor, which scales with cores for many-small-scenario batches
//! without any per-round synchronization. Pooled and concurrent results
//! are **bit-identical** to sequential ones (`tests/determinism.rs`,
//! `tests/driver_concurrent.rs`).
//!
//! **Measured baseline** (single-core CI container, 2026-07; sequential
//! unless noted; ns per edge per round; "before" = the PR-2 committed
//! `BENCH_rounds.json`):
//!
//! | case | before | after | speedup |
//! |------|-------:|------:|--------:|
//! | 256×256 torus, SOS discrete **randomized** | 25.43 | 16.31 | 1.56× |
//! | 256×256 torus, SOS discrete randomized, 4 threads | 27.11 | 18.35 | 1.48× |
//! | 256×256 torus, SOS discrete nearest | 7.13 | 7.56 | ~1× |
//! | 256×256 torus, SOS continuous | 4.36 | 4.42 | ~1× |
//! | 512×512 torus, FOS discrete nearest | 7.17 | 7.60 | ~1× |
//!
//! The randomized framework was the target of this round of work; the
//! other configurations are unchanged within noise. On the single-core
//! benchmark host a wall-clock parallel speedup is impossible, so the
//! 4-thread and `driver_batch_concurrent` rows of `BENCH_rounds.json`
//! measure pure scheduling overhead; re-measure on a multi-core host.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod deviation;
pub mod divergence;
mod driver;
mod engine;
mod error;
mod experiment;
pub mod hybrid;
mod init;
#[doc(hidden)]
pub mod kernel;
pub mod metrics;
mod observer;
mod pool;
pub mod rng;
mod rounding;
mod scenario;
mod scheme;
pub mod theory;

pub use driver::{BatchReport, Driver, ScenarioReport};
pub use engine::{
    FlowMemory, Mode, RunReport, SimulationConfig, Simulator, StopCondition, StopReason,
};
pub use error::{BuildError, ParseError};
pub use experiment::{Experiment, ExperimentBuilder, NeedsMode, Ready};
pub use hybrid::SwitchPolicy;
pub use init::InitialLoad;
pub use metrics::MetricsSnapshot;
pub use observer::{MetricsRow, MultiObserver, NullObserver, Observer, Recorder};
pub use rounding::{Rounding, RoundingSpec};
pub use scenario::{InitSpec, ModeSpec, ScenarioSpec, SchemeSpec, SpeedsSpec, StopSpec};
pub use scheme::Scheme;

/// Convenient glob import: `use sodiff_core::prelude::*;`.
pub mod prelude {
    pub use crate::driver::{BatchReport, Driver, ScenarioReport};
    pub use crate::engine::{
        FlowMemory, Mode, RunReport, SimulationConfig, Simulator, StopCondition, StopReason,
    };
    pub use crate::error::{BuildError, ParseError};
    pub use crate::experiment::{Experiment, ExperimentBuilder};
    pub use crate::hybrid::SwitchPolicy;
    pub use crate::init::InitialLoad;
    pub use crate::metrics::MetricsSnapshot;
    pub use crate::observer::{MetricsRow, MultiObserver, NullObserver, Observer, Recorder};
    pub use crate::rounding::{Rounding, RoundingSpec};
    pub use crate::scenario::ScenarioSpec;
    pub use crate::scheme::Scheme;
    pub use sodiff_graph::{Speeds, TopologySpec};
    pub use sodiff_linalg::spectral::beta_opt;
}
