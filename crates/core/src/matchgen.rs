//! Per-round random maximal-matching generation for the scheme-kernel
//! layer's random plan (`crate::scheme_kernel`).
//!
//! Every round of `scheme=matching:random:…` draws a fresh maximal
//! matching greedily over a `(seed, round)`-keyed random edge order. The
//! original implementation materialized that order by sorting `(key,
//! edge)` pairs — `O(m log m)` per round, which dominated the workload
//! (~44 of its ~60 ns/edge). [`fill_random_matching`] replaces the sort
//! with an `O(m)` **counting-scatter bucket pass**:
//!
//! 1. one fused RNG sweep ([`crate::rng::fill_first_draws`]) computes
//!    each edge's 64-bit key — the first draw of its `(seed, edge,
//!    round)` stream, the same key the sort used;
//! 2. a counting pass buckets edges by the key's top `k` bits
//!    (`k ≈ ⌈log₂ m⌉ − 3`, so buckets hold ~8 edges on average and the
//!    counts table stays cache-resident), a prefix sum turns counts into
//!    bucket offsets, and a stable scatter lays `(edge id, packed
//!    endpoints)` pairs out in bucket order — the endpoint word
//!    ([`edge_pairs`]) is a *sequential* read at scatter time, so
//!    carrying it costs a wider store but removes the random
//!    `uv[order[i]]` gather that used to dominate the next pass;
//! 3. the greedy matcher streams the scattered pairs **sequentially** —
//!    i.e. in key-prefix order with edge-id tie-break — marking
//!    endpoints matched and setting mask bits exactly as before; its
//!    only remaining random accesses probe the L1-resident per-node
//!    `matched` bitset.
//!
//! The counting and scatter passes' random accesses (the bucket counts
//! table, the scattered pair slots) additionally issue software
//! prefetches a batch ahead under the `accel` feature
//! (the `prefetch` module); results are bit-identical either way.
//!
//! The visit order is deterministic per `(seed, round)` and generated on
//! the control thread only, so sequential and pooled execution stay
//! bit-identical. It is *not* the same order the full-key sort produced
//! (ties inside a bucket break by edge id instead of by the key's low
//! bits), so the matching **distribution** changed when this landed and
//! the `matching:random` golden traces were re-pinned once — see the
//! re-pin policy in `tests/golden_trace.rs`. The statistical properties
//! the scheme relies on are unchanged and tested below: every round's
//! matching is maximal, distinct rounds draw distinct matchings, and
//! matching sizes stay tightly concentrated across rounds.
//!
//! [`fill_random_matching_sorted`] keeps the pre-optimization sort-based
//! generator as a reference: `benches/matching_gen.rs` times the two
//! side by side, and the tests here compare their outputs' statistics.
//!
//! This module is exported `#[doc(hidden)]` (like [`crate::kernel`]) so
//! the workspace benches can time matching generation in isolation; it
//! is **not** a stable API.

use sodiff_graph::EdgeId;

use crate::kernel::KernelTables;
use crate::prefetch;
use crate::rng;

/// Number of 64-bit words of an edge bitmask over `m` edges.
pub fn mask_words(m: usize) -> usize {
    m.div_ceil(64)
}

/// Control-thread scratch for per-round random matching generation. All
/// buffers grow on first use and are then reused across rounds — steady
/// state allocates nothing.
#[derive(Default)]
pub struct MatchScratch {
    /// The generated active-edge bitmask (`⌈m/64⌉` words).
    pub mask: Vec<u64>,
    /// Bucket occupancy, then (after the prefix sum) bucket offsets;
    /// `2^k + 1` slots.
    counts: Vec<u32>,
    /// Edge ids scattered into bucket order (the sort-based reference
    /// generator's greedy visit order).
    order: Vec<EdgeId>,
    /// `(edge id, packed endpoints)` scattered into bucket order — the
    /// bucketed generator's greedy visit stream. Carrying the endpoint
    /// word (a sequential read at scatter time) lets the greedy pass
    /// stream this buffer sequentially instead of gathering
    /// `uv[order[i]]` at random.
    slots: Vec<(EdgeId, u64)>,
    /// Per-node matched bitset of the round under construction (a
    /// `⌈n/64⌉`-word bitset keeps the greedy pass's random endpoint
    /// probes L1-resident on graphs where a byte-per-node array is not).
    matched: Vec<u64>,
    /// Full 64-bit keys of the sort-based reference generator.
    keys: Vec<u64>,
    /// `(key, edge)` pairs of the sort-based reference generator.
    pairs: Vec<(u64, EdgeId)>,
}

/// Bucket-index width for `m` edges: `⌈log₂ m⌉ − 3` bits, i.e. ~8 edges
/// per bucket in expectation. Coarser buckets than edges trade a few
/// more edge-id tie-breaks for an 8× smaller counts table — the
/// counting passes' random accesses then stay in L1/L2 where a
/// one-edge-per-bucket table thrashes — and the cap at 2¹⁶ buckets
/// bounds the table at 256 KiB of `u32` counts for huge graphs.
fn bucket_bits(m: usize) -> u32 {
    (usize::BITS - (m.max(2) - 1).leading_zeros())
        .saturating_sub(3)
        .clamp(1, 16)
}

/// The interleaved endpoint table the greedy pass probes: edge `e`'s
/// tail in the low 32 bits, head in the high 32. One packed word per
/// edge means one random cache-line touch where the kernel tables' SoA
/// `tail`/`head` pair would cost two — the greedy pass visits edges in
/// random order, so those touches miss. Built once per simulation (the
/// scheme kernel owns it for the random plan) and shared across rounds.
pub fn edge_pairs(t: &KernelTables) -> Vec<u64> {
    t.tail
        .iter()
        .zip(&t.head)
        .map(|(&u, &v)| u as u64 | ((v as u64) << 32))
        .collect()
}

/// Greedy maximal matching over `order`, writing endpoint bits into the
/// `matched` bitset and active-edge bits into `mask` (the sort-based
/// reference generator's tail; the bucketed generator streams
/// [`greedy_match_packed`] instead). `uv` is the packed endpoint table
/// of [`edge_pairs`].
fn greedy_match(uv: &[u64], order: &[EdgeId], matched: &mut [u64], mask: &mut [u64]) {
    for &e in order {
        let pair = uv[e as usize];
        let (u, v) = ((pair & 0xffff_ffff) as usize, (pair >> 32) as usize);
        let (wu, bu) = (u >> 6, 1u64 << (u & 63));
        let (wv, bv) = (v >> 6, 1u64 << (v & 63));
        if (matched[wu] & bu) | (matched[wv] & bv) == 0 {
            matched[wu] |= bu;
            matched[wv] |= bv;
            mask[(e >> 6) as usize] |= 1u64 << (e & 63);
        }
    }
}

/// Greedy maximal matching over the scattered `(edge, endpoints)` stream:
/// same visit order and same per-edge decision as [`greedy_match`], but
/// every input is a sequential read — the endpoint gather already
/// happened at scatter time — so the pass runs at streaming speed with
/// only the L1-resident `matched` bitset probed at random (hinted a few
/// iterations ahead under `accel`).
fn greedy_match_packed(slots: &[(EdgeId, u64)], matched: &mut [u64], mask: &mut [u64]) {
    for (i, &(e, pair)) in slots.iter().enumerate() {
        if let Some(&(_, ahead)) = slots.get(i + prefetch::DIST) {
            prefetch::read_index(matched, (ahead & 0xffff_ffff) as usize >> 6);
            prefetch::read_index(matched, (ahead >> 32) as usize >> 6);
        }
        let (u, v) = ((pair & 0xffff_ffff) as usize, (pair >> 32) as usize);
        let (wu, bu) = (u >> 6, 1u64 << (u & 63));
        let (wv, bv) = (v >> 6, 1u64 << (v & 63));
        if (matched[wu] & bu) | (matched[wv] & bv) == 0 {
            matched[wu] |= bu;
            matched[wv] |= bv;
            mask[(e >> 6) as usize] |= 1u64 << (e & 63);
        }
    }
}

/// Fills `mg.mask` with a maximal matching drawn greedily over the
/// `(seed, round)`-keyed random edge order, in `O(m)` via the
/// counting-scatter bucket pass described in the module docs.
/// Deterministic per `(seed, round)` and independent of the executor:
/// only the control thread runs this.
pub fn fill_random_matching(
    seed: u64,
    round: u64,
    t: &KernelTables,
    uv: &[u64],
    mg: &mut MatchScratch,
) {
    let m = t.m;
    mg.mask.clear();
    mg.mask.resize(mask_words(m), 0);
    if m == 0 {
        return;
    }
    let bits = bucket_bits(m);
    let buckets = 1usize << bits;
    let shift = 64 - bits;
    mg.counts.clear();
    mg.counts.resize(buckets + 1, 0);
    // Count pass: draw each edge's key (the first draw of its
    // (seed, edge, round) stream — the same key the sort used) in
    // lane-chunked stack batches and count bucket occupancy. The draws
    // are *recomputed* in the scatter pass below instead of being stored:
    // two extra `mix64`s per edge are far cheaper than writing and
    // re-reading an m-sized key array that the round's kernel sweeps
    // would be evicted by.
    let rk = rng::round_key(seed, round);
    let mut draws = [0u64; 64];
    let mut e0 = 0usize;
    while e0 < m {
        let len = (m - e0).min(64);
        rng::fill_first_draws(rk, e0, &mut draws[..len]);
        // Issue the batch's count-line hints up front (no-op without
        // `accel`): the increments hit the counts table at random, and
        // draining the batch's misses in parallel beats paying them one
        // load at a time.
        for &draw in &draws[..len] {
            prefetch::read_index(&mg.counts, (draw >> shift) as usize + 1);
        }
        for &draw in &draws[..len] {
            mg.counts[(draw >> shift) as usize + 1] += 1;
        }
        e0 += len;
    }
    for b in 1..=buckets {
        mg.counts[b] += mg.counts[b - 1];
    }
    // Stable scatter: edges arrive in increasing id, so within a bucket
    // the visit order is edge-id order — the effective greedy key is
    // (key >> shift, edge id). The endpoint word rides along: `uv` is
    // read sequentially here, turning the greedy pass's random
    // `uv[order[i]]` gathers into one wider sequential stream.
    mg.slots.resize(m, (0, 0));
    let mut e0 = 0usize;
    while e0 < m {
        let len = (m - e0).min(64);
        rng::fill_first_draws(rk, e0, &mut draws[..len]);
        for &draw in &draws[..len] {
            prefetch::read_index(&mg.counts, (draw >> shift) as usize);
        }
        for (i, &draw) in draws[..len].iter().enumerate() {
            let slot = &mut mg.counts[(draw >> shift) as usize];
            mg.slots[*slot as usize] = ((e0 + i) as EdgeId, uv[e0 + i]);
            *slot += 1;
        }
        e0 += len;
    }
    mg.matched.clear();
    mg.matched.resize(mask_words(t.n), 0);
    greedy_match_packed(&mg.slots, &mut mg.matched, &mut mg.mask);
}

/// The pre-optimization sort-based generator: materializes the greedy
/// order by sorting `(key, edge)` pairs — `O(m log m)` per round. Kept
/// as the reference implementation for `benches/matching_gen.rs` and the
/// distribution-sanity tests; the simulator always runs the bucketed
/// [`fill_random_matching`].
pub fn fill_random_matching_sorted(
    seed: u64,
    round: u64,
    t: &KernelTables,
    uv: &[u64],
    mg: &mut MatchScratch,
) {
    let m = t.m;
    mg.mask.clear();
    mg.mask.resize(mask_words(m), 0);
    if m == 0 {
        return;
    }
    mg.keys.resize(m, 0);
    rng::fill_first_draws(rng::round_key(seed, round), 0, &mut mg.keys);
    mg.pairs.clear();
    mg.pairs.extend(
        mg.keys
            .iter()
            .enumerate()
            .map(|(e, &key)| (key, e as EdgeId)),
    );
    mg.pairs.sort_unstable();
    mg.order.clear();
    mg.order.extend(mg.pairs.iter().map(|&(_, e)| e));
    mg.matched.clear();
    mg.matched.resize(mask_words(t.n), 0);
    greedy_match(uv, &mg.order, &mut mg.matched, &mut mg.mask);
}

#[cfg(test)]
mod tests {
    use super::*;
    use sodiff_graph::{generators, matching, Graph, Speeds};

    fn tables(graph: &Graph) -> KernelTables {
        let n = graph.node_count();
        KernelTables::new(graph, &Speeds::uniform(n), false, 0.0)
    }

    fn mask_edges(m: usize, mask: &[u64]) -> Vec<EdgeId> {
        (0..m as u32)
            .filter(|&e| (mask[(e >> 6) as usize] >> (e & 63)) & 1 == 1)
            .collect()
    }

    #[test]
    fn bucketed_matchings_are_maximal_deterministic_and_vary() {
        let g = generators::torus2d(5, 5);
        let t = tables(&g);
        let mut mg = MatchScratch::default();
        let mut per_round = Vec::new();
        let uv = edge_pairs(&t);
        for round in 0..4 {
            fill_random_matching(9, round, &t, &uv, &mut mg);
            let edges = mask_edges(t.m, &mg.mask);
            assert!(
                matching::is_maximal_matching(&g, &edges),
                "round {round} must draw a maximal matching"
            );
            per_round.push(edges);
        }
        assert!(
            per_round.windows(2).any(|w| w[0] != w[1]),
            "successive rounds should draw different matchings"
        );
        // Same (seed, round) reproduces the same matching.
        fill_random_matching(9, 0, &t, &uv, &mut mg);
        assert_eq!(mask_edges(t.m, &mg.mask), per_round[0]);
    }

    /// The statistical guarantee the bucket pass must preserve: across
    /// many rounds, every matching is maximal and sizes concentrate
    /// tightly around the sorted reference's mean (the greedy order is
    /// ~uniform either way; only tie-breaks inside a key-prefix bucket
    /// differ).
    #[test]
    fn bucketed_matching_sizes_match_sorted_reference_statistics() {
        let g = generators::torus2d(16, 16);
        let t = tables(&g);
        let rounds = 64u64;
        let uv = edge_pairs(&t);
        type FillFn = dyn Fn(u64, u64, &KernelTables, &[u64], &mut MatchScratch);
        let mean_size = |fill: &FillFn| {
            let mut mg = MatchScratch::default();
            let mut sizes = Vec::new();
            for round in 0..rounds {
                fill(33, round, &t, &uv, &mut mg);
                let edges = mask_edges(t.m, &mg.mask);
                assert!(matching::is_maximal_matching(&g, &edges));
                sizes.push(edges.len() as f64);
            }
            let mean = sizes.iter().sum::<f64>() / sizes.len() as f64;
            let var =
                sizes.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / sizes.len() as f64;
            (mean, var.sqrt())
        };
        let (bucket_mean, bucket_sd) = mean_size(&fill_random_matching);
        let (sorted_mean, sorted_sd) = mean_size(&fill_random_matching_sorted);
        // A maximal matching on a 16×16 torus has between n/4 = 64 and
        // n/2 = 128 edges; random greedy sits near ~0.43·m ≈ 110. The
        // two generators must agree on the regime.
        assert!(
            (bucket_mean - sorted_mean).abs() < 0.05 * sorted_mean,
            "means diverge: bucketed {bucket_mean:.1} vs sorted {sorted_mean:.1}"
        );
        for (name, mean, sd) in [
            ("bucketed", bucket_mean, bucket_sd),
            ("sorted", sorted_mean, sorted_sd),
        ] {
            assert!(
                (64.0..=128.0).contains(&mean),
                "{name} mean size {mean} outside the maximal-matching range"
            );
            assert!(
                sd < 0.1 * mean,
                "{name} sizes not concentrated: sd {sd:.2} vs mean {mean:.1}"
            );
        }
    }

    #[test]
    fn handles_tiny_and_edgeless_graphs() {
        let mut mg = MatchScratch::default();
        // Single edge: always matched.
        let g = generators::path(2);
        let t = tables(&g);
        fill_random_matching(1, 0, &t, &edge_pairs(&t), &mut mg);
        assert_eq!(mask_edges(t.m, &mg.mask), vec![0]);
        // Edgeless: empty mask, no panic (shift stays in range).
        let g = generators::path(1);
        let t = tables(&g);
        fill_random_matching(1, 0, &t, &edge_pairs(&t), &mut mg);
        assert!(mg.mask.is_empty());
    }

    #[test]
    fn scratch_is_reusable_across_graph_sizes() {
        // A scratch warmed on a big graph must produce correct results on
        // a smaller one (stale buffer lengths trimmed, not trusted).
        let big = generators::torus2d(8, 8);
        let small = generators::cycle(5);
        let (tb, ts) = (tables(&big), tables(&small));
        let mut mg = MatchScratch::default();
        fill_random_matching(2, 0, &tb, &edge_pairs(&tb), &mut mg);
        fill_random_matching(2, 0, &ts, &edge_pairs(&ts), &mut mg);
        let edges = mask_edges(ts.m, &mg.mask);
        assert!(matching::is_maximal_matching(&small, &edges));
        let mut fresh = MatchScratch::default();
        fill_random_matching(2, 0, &ts, &edge_pairs(&ts), &mut fresh);
        assert_eq!(mg.mask, fresh.mask, "reused scratch must not leak state");
    }
}
