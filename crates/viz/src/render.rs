//! Load-vector renderers.

use crate::image::GrayImage;

/// Pixel shading mode, mirroring the paper's two visualizations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Shading {
    /// Figures 9–10: shading is normalized per frame — a white pixel is a
    /// node at the average load, the darkest pixel is the node furthest
    /// from it (in either direction).
    Adaptive,
    /// Figure 11: white = at the average; black = deviation at or beyond
    /// `threshold` tokens (the paper uses 10).
    Absolute {
        /// Deviation (in tokens) mapped to full black.
        threshold: f64,
    },
}

/// Renders a row-major torus load vector into a grayscale image
/// (one pixel per node, `rows × cols`).
///
/// # Panics
///
/// Panics if `loads.len() != rows * cols` or the dimensions are zero.
pub fn render_torus(rows: usize, cols: usize, loads: &[f64], shading: Shading) -> GrayImage {
    assert_eq!(loads.len(), rows * cols, "load grid shape mismatch");
    let n = loads.len() as f64;
    let avg = loads.iter().sum::<f64>() / n;
    let mut img = GrayImage::new(cols, rows);
    let scale = match shading {
        Shading::Adaptive => loads
            .iter()
            .map(|&x| (x - avg).abs())
            .fold(0.0f64, f64::max),
        Shading::Absolute { threshold } => {
            assert!(threshold > 0.0, "threshold must be positive");
            threshold
        }
    };
    for r in 0..rows {
        for c in 0..cols {
            let dev = (loads[r * cols + c] - avg).abs();
            let frac = if scale > 0.0 {
                (dev / scale).min(1.0)
            } else {
                0.0
            };
            img.set(c, r, (255.0 * (1.0 - frac)).round() as u8);
        }
    }
    img
}

const SPARK_LEVELS: [char; 8] = [' ', '.', ':', '-', '=', '+', '*', '#'];

/// Renders a load vector as a one-line ASCII sparkline (for example
/// binaries): denser glyphs mean larger deviation from the average.
pub fn ascii_sparkline(loads: &[f64], width: usize) -> String {
    if loads.is_empty() || width == 0 {
        return String::new();
    }
    let avg = loads.iter().sum::<f64>() / loads.len() as f64;
    let chunk = loads.len().div_ceil(width);
    let mut out = String::with_capacity(width);
    let max_dev = loads
        .iter()
        .map(|&x| (x - avg).abs())
        .fold(0.0f64, f64::max);
    for block in loads.chunks(chunk) {
        let dev = block.iter().map(|&x| (x - avg).abs()).fold(0.0, f64::max);
        let idx = if max_dev > 0.0 {
            ((dev / max_dev) * (SPARK_LEVELS.len() - 1) as f64).round() as usize
        } else {
            0
        };
        out.push(SPARK_LEVELS[idx]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balanced_grid_renders_white() {
        let img = render_torus(2, 3, &[5.0; 6], Shading::Adaptive);
        assert!(img.pixels().iter().all(|&p| p == 255));
        let img = render_torus(2, 3, &[5.0; 6], Shading::Absolute { threshold: 10.0 });
        assert!(img.pixels().iter().all(|&p| p == 255));
    }

    #[test]
    fn adaptive_darkest_at_extreme() {
        let loads = [0.0, 0.0, 0.0, 12.0];
        let img = render_torus(2, 2, &loads, Shading::Adaptive);
        // Node 3 deviates most -> black; others deviate 3 from avg(3) -> 0.
        assert_eq!(img.get(1, 1), 0);
        assert!(img.get(0, 0) > 150);
    }

    #[test]
    fn absolute_clamps_at_threshold() {
        let loads = [0.0, 0.0, 0.0, 100.0];
        let img = render_torus(2, 2, &loads, Shading::Absolute { threshold: 10.0 });
        assert_eq!(img.get(1, 1), 0, "deviation 75 >> 10 is clamped black");
    }

    #[test]
    fn image_orientation_is_row_major() {
        // Node (row 1, col 0) maps to pixel (x=0, y=1).
        let loads = [0.0, 0.0, 9.0, 0.0];
        let img = render_torus(2, 2, &loads, Shading::Adaptive);
        assert_eq!(img.get(0, 1), 0);
    }

    #[test]
    fn sparkline_marks_hotspot() {
        let mut loads = vec![1.0; 64];
        loads[32] = 100.0;
        let line = ascii_sparkline(&loads, 16);
        assert_eq!(line.len(), 16);
        assert!(line.contains('#'));
    }

    #[test]
    fn sparkline_handles_empty_and_flat() {
        assert_eq!(ascii_sparkline(&[], 10), "");
        let flat = ascii_sparkline(&[2.0; 10], 5);
        assert!(flat.chars().all(|c| c == ' '));
    }
}
