//! 8-bit grayscale raster with a binary-PGM (P5) encoder.

use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;

/// An 8-bit grayscale image (row-major, origin at the top-left).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GrayImage {
    width: usize,
    height: usize,
    pixels: Vec<u8>,
}

impl GrayImage {
    /// All-black image of the given dimensions.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(width: usize, height: usize) -> Self {
        assert!(width > 0 && height > 0, "image dimensions must be positive");
        Self {
            width,
            height,
            pixels: vec![0; width * height],
        }
    }

    /// Image width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Image height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Pixel value at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn get(&self, x: usize, y: usize) -> u8 {
        assert!(x < self.width && y < self.height, "pixel out of bounds");
        self.pixels[y * self.width + x]
    }

    /// Sets the pixel at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn set(&mut self, x: usize, y: usize, value: u8) {
        assert!(x < self.width && y < self.height, "pixel out of bounds");
        self.pixels[y * self.width + x] = value;
    }

    /// Raw pixel buffer (row-major).
    pub fn pixels(&self) -> &[u8] {
        &self.pixels
    }

    /// Encodes the image as a binary PGM (P5) byte stream.
    pub fn encode_pgm(&self) -> Vec<u8> {
        let mut out = format!("P5\n{} {}\n255\n", self.width, self.height).into_bytes();
        out.extend_from_slice(&self.pixels);
        out
    }

    /// Writes the image as a binary PGM file.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from file creation and writing.
    pub fn save_pgm<P: AsRef<Path>>(&self, path: P) -> io::Result<()> {
        let mut w = BufWriter::new(File::create(path)?);
        w.write_all(&self.encode_pgm())?;
        w.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_roundtrip() {
        let mut img = GrayImage::new(3, 2);
        img.set(2, 1, 200);
        assert_eq!(img.get(2, 1), 200);
        assert_eq!(img.get(0, 0), 0);
    }

    #[test]
    fn pgm_header_and_payload() {
        let mut img = GrayImage::new(2, 2);
        img.set(0, 0, 1);
        img.set(1, 1, 255);
        let bytes = img.encode_pgm();
        let header = b"P5\n2 2\n255\n";
        assert!(bytes.starts_with(header));
        assert_eq!(&bytes[header.len()..], &[1, 0, 0, 255]);
    }

    #[test]
    fn save_pgm_writes_file() {
        let dir = std::env::temp_dir().join("sodiff_viz_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.pgm");
        GrayImage::new(4, 4).save_pgm(&path).unwrap();
        let data = std::fs::read(&path).unwrap();
        assert!(data.starts_with(b"P5\n4 4\n255\n"));
        assert_eq!(data.len(), b"P5\n4 4\n255\n".len() + 16);
        std::fs::remove_file(path).ok();
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_panics() {
        GrayImage::new(2, 2).get(2, 0);
    }

    #[test]
    #[should_panic(expected = "dimensions must be positive")]
    fn zero_size_rejected() {
        GrayImage::new(0, 3);
    }
}
