//! Visualization of diffusion load-balancing runs.
//!
//! The paper renders the 2D-torus load as grayscale rasters (Figures 9–11
//! and the companion video): each pixel is one node, shaded by how far its
//! load is from the balanced average. This crate reimplements that
//! pipeline with a dependency-free binary-PGM writer:
//!
//! * [`GrayImage`] — an 8-bit grayscale raster with a P5 (binary PGM)
//!   encoder,
//! * [`Shading`] — the paper's two shadings: *adaptive* (light = close to
//!   the average, darkest = the current extreme deviation; Figures 9–10)
//!   and *absolute* (black = deviation at or beyond a fixed token
//!   threshold; Figure 11),
//! * [`render_torus`] — maps a row-major torus load vector to an image,
//! * [`ascii_sparkline`] — a terminal-friendly miniature for examples.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod image;
mod render;

pub use image::GrayImage;
pub use render::{ascii_sparkline, render_torus, Shading};
