//! Property-based tests of the graph substrate.

use proptest::collection::vec;
use proptest::prelude::*;

use sodiff_graph::{generators, traversal, GraphBuilder, NodeId};

/// Arbitrary edge candidate lists over up to 40 nodes.
fn edge_candidates() -> impl Strategy<Value = (usize, Vec<(NodeId, NodeId)>)> {
    (2usize..=40).prop_flat_map(|n| {
        let edges = vec((0..n as NodeId, 0..n as NodeId), 0..120);
        (Just(n), edges)
    })
}

proptest! {
    /// CSR invariants hold for any deduplicated edge set: degree sums,
    /// adjacency symmetry, canonical ordering, consistent edge ids.
    #[test]
    fn csr_invariants((n, candidates) in edge_candidates()) {
        let mut b = GraphBuilder::new(n);
        for (u, v) in candidates {
            b.add_edge_dedup(u, v);
        }
        let g = b.build();
        // Degree sum == 2m.
        let degree_sum: usize = g.nodes().map(|v| g.degree(v)).sum();
        prop_assert_eq!(degree_sum, 2 * g.edge_count());
        prop_assert_eq!(g.arc_count(), 2 * g.edge_count());
        // Canonical edges ordered and unique.
        for w in g.edges().windows(2) {
            prop_assert!(w[0] < w[1]);
        }
        // Adjacency symmetric with matching edge ids; arc ranges partition.
        let mut total_arcs = 0;
        for u in g.nodes() {
            let range = g.arc_range(u);
            prop_assert_eq!(range.len(), g.degree(u));
            total_arcs += range.len();
            for (v, e) in g.neighbors(u) {
                prop_assert!(g.neighbors(v).any(|(w, f)| w == u && f == e));
                let (a, b2) = g.edge(e);
                prop_assert_eq!((a.min(b2), a.max(b2)), (u.min(v), u.max(v)));
            }
        }
        prop_assert_eq!(total_arcs, g.arc_count());
    }

    /// Component labels agree with pairwise BFS reachability.
    #[test]
    fn components_match_bfs((n, candidates) in edge_candidates()) {
        let mut b = GraphBuilder::new(n);
        for (u, v) in candidates {
            b.add_edge_dedup(u, v);
        }
        let g = b.build();
        let labels = traversal::component_labels(&g);
        let dist0 = traversal::bfs_distances(&g, 0);
        for v in g.nodes() {
            let reachable = dist0[v as usize] != traversal::UNREACHABLE;
            prop_assert_eq!(reachable, labels[v as usize] == labels[0]);
        }
    }

    /// Torus generators produce 2k-regular connected graphs.
    #[test]
    fn torus_regularity(rows in 3usize..12, cols in 3usize..12) {
        let g = generators::torus2d(rows, cols);
        prop_assert_eq!(g.node_count(), rows * cols);
        prop_assert!(g.nodes().all(|v| g.degree(v) == 4));
        prop_assert!(g.is_connected());
        prop_assert_eq!(
            traversal::diameter(&g),
            Some((rows / 2 + cols / 2) as u32)
        );
    }

    /// Configuration-model graphs respect the degree cap and stay close
    /// to nd/2 edges.
    #[test]
    fn configuration_model_degree_cap(
        n in 10usize..200,
        d in 2usize..8,
        seed in any::<u64>(),
    ) {
        prop_assume!(n * d % 2 == 0);
        let g = generators::random_regular(n, d, seed).unwrap();
        prop_assert!(g.max_degree() <= d);
        prop_assert!(g.edge_count() <= n * d / 2);
        prop_assert!(g.edge_count() + 6 * d * d >= n * d / 2);
    }

    /// Erdős–Rényi never exceeds the complete graph and is monotone-ish
    /// in p at the extremes.
    #[test]
    fn gnp_bounds(n in 2usize..80, p in 0.0f64..1.0, seed in any::<u64>()) {
        let g = generators::erdos_renyi(n, p, seed);
        prop_assert!(g.edge_count() <= n * (n - 1) / 2);
        prop_assert!(g.max_degree() < n);
    }

    /// RGG patching always yields one component, any radius.
    #[test]
    fn rgg_always_connected(n in 2usize..120, radius in 0.0f64..4.0, seed in any::<u64>()) {
        let g = generators::random_geometric(n, radius, seed);
        prop_assert!(g.is_connected());
    }

    /// Hypercube distances equal Hamming distances.
    #[test]
    fn hypercube_distance_is_hamming(dim in 1u32..8, src in any::<u32>()) {
        let g = generators::hypercube(dim);
        let n = g.node_count() as u32;
        let src = src % n;
        let dist = traversal::bfs_distances(&g, src);
        for v in 0..n {
            prop_assert_eq!(dist[v as usize], (src ^ v).count_ones());
        }
    }
}
