//! Graph substrate for the `sodiff` workspace.
//!
//! This crate provides everything the diffusion load-balancing simulator
//! needs from a graph library, implemented from scratch:
//!
//! * a compact immutable [`Graph`] in compressed-sparse-row (CSR) form with
//!   a canonical undirected edge list (every edge `{u, v}` is stored once
//!   with `u < v` and has a stable [`EdgeId`]),
//! * a mutable [`GraphBuilder`] for assembling graphs edge by edge,
//! * the network generators used in the paper's evaluation
//!   ([`generators::torus2d`], [`generators::hypercube`],
//!   [`generators::random_regular`] via the configuration model,
//!   [`generators::random_geometric`]) plus classic topologies
//!   (cycle, path, grid, complete, star, Erdős–Rényi),
//! * traversal utilities: BFS, connected components, diameter, and a
//!   union-find used to patch random geometric graphs into one component,
//! * edge colorings and maximal matchings ([`matching`]) — the pairwise
//!   communication schedules behind dimension-exchange and matching-based
//!   balancing, exact for tori/hypercubes and greedy elsewhere,
//! * a declarative, serializable [`TopologySpec`] (`"torus2d:16:16"` …)
//!   that builds any of the generators fallibly — the topology half of the
//!   workspace's scenario files.
//!
//! Node identifiers are dense `u32` indices (`0..n`), which keeps the
//! million-node paper-scale graphs comfortably in memory.
//!
//! # Example
//!
//! ```
//! use sodiff_graph::generators;
//!
//! let g = generators::torus2d(16, 16);
//! assert_eq!(g.node_count(), 256);
//! assert_eq!(g.edge_count(), 2 * 256); // each node has degree 4
//! assert!(g.is_connected());
//! assert_eq!(g.max_degree(), 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod csr;
mod error;
pub mod generators;
pub mod matching;
mod speeds;
mod topology;
pub mod traversal;
mod unionfind;

pub use builder::GraphBuilder;
pub use csr::{ActiveSet, EdgeId, Graph, GraphKind, NodeId};
pub use error::GraphError;
pub use matching::EdgeColoring;
pub use speeds::Speeds;
pub use topology::TopologySpec;
pub use unionfind::UnionFind;
