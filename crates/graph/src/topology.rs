//! Declarative topology specifications: a serializable, fallible layer in
//! front of [`crate::generators`].
//!
//! A [`TopologySpec`] describes one network instance as data
//! (`torus2d:16:16`, `random_cm:4096:7`, …), round-trips through
//! `Display`/`FromStr`, and builds the graph with every invalid parameter
//! reported as a [`GraphError`] instead of a panic. This is the topology
//! half of the workspace's scenario files (see `sodiff_core::ScenarioSpec`).

use std::fmt;
use std::str::FromStr;

use crate::csr::Graph;
use crate::error::GraphError;
use crate::generators;

/// A network topology described as data.
///
/// The textual form is `kind:arg:arg:…` with `:`-separated arguments, e.g.
/// `torus2d:16:16`, `hypercube:10`, `random_regular:200:6:3`. Randomized
/// generators carry their seed in the spec, so a spec names one concrete
/// graph instance.
///
/// # Example
///
/// ```
/// use sodiff_graph::TopologySpec;
///
/// let spec: TopologySpec = "torus2d:8:4".parse().unwrap();
/// let g = spec.build().unwrap();
/// assert_eq!(g.node_count(), 32);
/// assert_eq!(spec.to_string(), "torus2d:8:4");
/// ```
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum TopologySpec {
    /// 2D torus `rows × cols` (`torus2d:R:C`).
    Torus2d {
        /// Number of rows.
        rows: usize,
        /// Number of columns.
        cols: usize,
    },
    /// k-dimensional torus (`torus:D1:D2:…`).
    Torus {
        /// Side lengths per dimension.
        dims: Vec<usize>,
    },
    /// Hypercube of the given dimension (`hypercube:D`).
    Hypercube {
        /// Dimension (`2^dim` nodes).
        dim: u32,
    },
    /// Cycle on `n ≥ 3` nodes (`cycle:N`).
    Cycle {
        /// Number of nodes.
        n: usize,
    },
    /// Path on `n ≥ 1` nodes (`path:N`).
    Path {
        /// Number of nodes.
        n: usize,
    },
    /// Complete graph (`complete:N`).
    Complete {
        /// Number of nodes.
        n: usize,
    },
    /// Star with hub 0 (`star:N`).
    Star {
        /// Number of nodes including the hub.
        n: usize,
    },
    /// Open 2D grid (`grid2d:R:C`).
    Grid2d {
        /// Number of rows.
        rows: usize,
        /// Number of columns.
        cols: usize,
    },
    /// Random `d`-regular configuration-model graph
    /// (`random_regular:N:D:SEED`).
    RandomRegular {
        /// Number of nodes.
        n: usize,
        /// Target degree.
        d: usize,
        /// RNG seed.
        seed: u64,
    },
    /// The paper's "Random Graph (CM)" with `d = ⌊log₂ n⌋`
    /// (`random_cm:N:SEED`).
    RandomCm {
        /// Number of nodes.
        n: usize,
        /// RNG seed.
        seed: u64,
    },
    /// Erdős–Rényi `G(n, p)` (`erdos_renyi:N:P:SEED`).
    ErdosRenyi {
        /// Number of nodes.
        n: usize,
        /// Edge probability.
        p: f64,
        /// RNG seed.
        seed: u64,
    },
    /// Random geometric graph with explicit radius
    /// (`geometric:N:RADIUS:SEED`).
    Geometric {
        /// Number of nodes.
        n: usize,
        /// Connection radius.
        radius: f64,
        /// RNG seed.
        seed: u64,
    },
    /// The paper's RGG configuration, `r = 4·(log n)^(1/4)` (`rgg:N:SEED`).
    RggPaper {
        /// Number of nodes.
        n: usize,
        /// RNG seed.
        seed: u64,
    },
}

impl TopologySpec {
    /// Builds the described graph.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidParameter`] for parameters the
    /// corresponding generator would reject (zero-sized tori, cycles below
    /// 3 nodes, hypercube dimension ≥ 32, `p` outside `[0, 1]`, negative
    /// radius, or impossible regular-graph configurations).
    pub fn build(&self) -> Result<Graph, GraphError> {
        let invalid = |msg: String| Err(GraphError::InvalidParameter(msg));
        match self {
            TopologySpec::Torus2d { rows, cols } => {
                if *rows == 0 || *cols == 0 {
                    return invalid(format!("torus sides must be positive ({rows}x{cols})"));
                }
                Ok(generators::torus2d(*rows, *cols))
            }
            TopologySpec::Torus { dims } => {
                if dims.is_empty() || dims.contains(&0) {
                    return invalid(format!("torus sides must be positive ({dims:?})"));
                }
                Ok(generators::torus(dims))
            }
            TopologySpec::Hypercube { dim } => {
                if *dim >= 32 {
                    return invalid(format!("hypercube dimension must be < 32, got {dim}"));
                }
                Ok(generators::hypercube(*dim))
            }
            TopologySpec::Cycle { n } => {
                if *n < 3 {
                    return invalid(format!("cycle needs at least 3 nodes, got {n}"));
                }
                Ok(generators::cycle(*n))
            }
            TopologySpec::Path { n } => Ok(generators::path(*n)),
            TopologySpec::Complete { n } => Ok(generators::complete(*n)),
            TopologySpec::Star { n } => Ok(generators::star(*n)),
            TopologySpec::Grid2d { rows, cols } => Ok(generators::grid2d(*rows, *cols)),
            TopologySpec::RandomRegular { n, d, seed } => generators::random_regular(*n, *d, *seed),
            TopologySpec::RandomCm { n, seed } => {
                if *n < 2 {
                    return invalid(format!("random_cm needs at least 2 nodes, got {n}"));
                }
                generators::random_graph_cm(*n, *seed)
            }
            TopologySpec::ErdosRenyi { n, p, seed } => {
                if !(0.0..=1.0).contains(p) {
                    return invalid(format!(
                        "erdos_renyi probability must be in [0, 1], got {p}"
                    ));
                }
                Ok(generators::erdos_renyi(*n, *p, *seed))
            }
            TopologySpec::Geometric { n, radius, seed } => {
                if !radius.is_finite() || *radius < 0.0 {
                    return invalid(format!(
                        "geometric radius must be non-negative, got {radius}"
                    ));
                }
                Ok(generators::random_geometric(*n, *radius, *seed))
            }
            TopologySpec::RggPaper { n, seed } => {
                if *n < 2 {
                    return invalid(format!("rgg needs at least 2 nodes, got {n}"));
                }
                Ok(generators::rgg_paper(*n, *seed))
            }
        }
    }
}

impl fmt::Display for TopologySpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologySpec::Torus2d { rows, cols } => write!(f, "torus2d:{rows}:{cols}"),
            TopologySpec::Torus { dims } => {
                write!(f, "torus")?;
                for d in dims {
                    write!(f, ":{d}")?;
                }
                Ok(())
            }
            TopologySpec::Hypercube { dim } => write!(f, "hypercube:{dim}"),
            TopologySpec::Cycle { n } => write!(f, "cycle:{n}"),
            TopologySpec::Path { n } => write!(f, "path:{n}"),
            TopologySpec::Complete { n } => write!(f, "complete:{n}"),
            TopologySpec::Star { n } => write!(f, "star:{n}"),
            TopologySpec::Grid2d { rows, cols } => write!(f, "grid2d:{rows}:{cols}"),
            TopologySpec::RandomRegular { n, d, seed } => {
                write!(f, "random_regular:{n}:{d}:{seed}")
            }
            TopologySpec::RandomCm { n, seed } => write!(f, "random_cm:{n}:{seed}"),
            TopologySpec::ErdosRenyi { n, p, seed } => write!(f, "erdos_renyi:{n}:{p}:{seed}"),
            TopologySpec::Geometric { n, radius, seed } => {
                write!(f, "geometric:{n}:{radius}:{seed}")
            }
            TopologySpec::RggPaper { n, seed } => write!(f, "rgg:{n}:{seed}"),
        }
    }
}

/// Parses one `:`-separated argument.
fn arg<T: FromStr>(parts: &[&str], idx: usize, what: &str, spec: &str) -> Result<T, GraphError> {
    parts
        .get(idx)
        .ok_or_else(|| {
            GraphError::InvalidParameter(format!("topology '{spec}' is missing its {what}"))
        })?
        .parse()
        .map_err(|_| {
            GraphError::InvalidParameter(format!("topology '{spec}' has an invalid {what}"))
        })
}

/// Rejects extra arguments beyond `expected`.
fn exactly(parts: &[&str], expected: usize, spec: &str) -> Result<(), GraphError> {
    if parts.len() == expected {
        Ok(())
    } else {
        Err(GraphError::InvalidParameter(format!(
            "topology '{spec}' takes {expected} argument(s), got {}",
            parts.len()
        )))
    }
}

impl FromStr for TopologySpec {
    type Err = GraphError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut pieces = s.split(':');
        let kind = pieces.next().unwrap_or_default();
        let parts: Vec<&str> = pieces.collect();
        let spec = match kind {
            "torus2d" => {
                exactly(&parts, 2, s)?;
                TopologySpec::Torus2d {
                    rows: arg(&parts, 0, "row count", s)?,
                    cols: arg(&parts, 1, "column count", s)?,
                }
            }
            "torus" => {
                if parts.is_empty() {
                    return Err(GraphError::InvalidParameter(format!(
                        "topology '{s}' needs at least one side length"
                    )));
                }
                let dims = parts
                    .iter()
                    .enumerate()
                    .map(|(i, _)| arg(&parts, i, "side length", s))
                    .collect::<Result<Vec<usize>, _>>()?;
                TopologySpec::Torus { dims }
            }
            "hypercube" => {
                exactly(&parts, 1, s)?;
                TopologySpec::Hypercube {
                    dim: arg(&parts, 0, "dimension", s)?,
                }
            }
            "cycle" => {
                exactly(&parts, 1, s)?;
                TopologySpec::Cycle {
                    n: arg(&parts, 0, "node count", s)?,
                }
            }
            "path" => {
                exactly(&parts, 1, s)?;
                TopologySpec::Path {
                    n: arg(&parts, 0, "node count", s)?,
                }
            }
            "complete" => {
                exactly(&parts, 1, s)?;
                TopologySpec::Complete {
                    n: arg(&parts, 0, "node count", s)?,
                }
            }
            "star" => {
                exactly(&parts, 1, s)?;
                TopologySpec::Star {
                    n: arg(&parts, 0, "node count", s)?,
                }
            }
            "grid2d" => {
                exactly(&parts, 2, s)?;
                TopologySpec::Grid2d {
                    rows: arg(&parts, 0, "row count", s)?,
                    cols: arg(&parts, 1, "column count", s)?,
                }
            }
            "random_regular" => {
                exactly(&parts, 3, s)?;
                TopologySpec::RandomRegular {
                    n: arg(&parts, 0, "node count", s)?,
                    d: arg(&parts, 1, "degree", s)?,
                    seed: arg(&parts, 2, "seed", s)?,
                }
            }
            "random_cm" => {
                exactly(&parts, 2, s)?;
                TopologySpec::RandomCm {
                    n: arg(&parts, 0, "node count", s)?,
                    seed: arg(&parts, 1, "seed", s)?,
                }
            }
            "erdos_renyi" => {
                exactly(&parts, 3, s)?;
                TopologySpec::ErdosRenyi {
                    n: arg(&parts, 0, "node count", s)?,
                    p: arg(&parts, 1, "edge probability", s)?,
                    seed: arg(&parts, 2, "seed", s)?,
                }
            }
            "geometric" => {
                exactly(&parts, 3, s)?;
                TopologySpec::Geometric {
                    n: arg(&parts, 0, "node count", s)?,
                    radius: arg(&parts, 1, "radius", s)?,
                    seed: arg(&parts, 2, "seed", s)?,
                }
            }
            "rgg" => {
                exactly(&parts, 2, s)?;
                TopologySpec::RggPaper {
                    n: arg(&parts, 0, "node count", s)?,
                    seed: arg(&parts, 1, "seed", s)?,
                }
            }
            other => {
                return Err(GraphError::InvalidParameter(format!(
                    "unknown topology kind '{other}' \
                     (expected torus2d, torus, hypercube, cycle, path, complete, star, \
                     grid2d, random_regular, random_cm, erdos_renyi, geometric, or rgg)"
                )))
            }
        };
        Ok(spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_build_roundtrip() {
        for text in [
            "torus2d:5:7",
            "torus:3:3:3",
            "hypercube:6",
            "cycle:12",
            "path:4",
            "complete:9",
            "star:5",
            "grid2d:3:4",
            "random_regular:40:4:7",
            "random_cm:64:3",
            "erdos_renyi:50:0.2:9",
            "geometric:50:2.5:4",
            "rgg:60:2",
        ] {
            let spec: TopologySpec = text.parse().unwrap_or_else(|e| panic!("{text}: {e}"));
            assert_eq!(spec.to_string(), text, "display must round-trip");
            let reparsed: TopologySpec = spec.to_string().parse().unwrap();
            assert_eq!(reparsed, spec);
            let g = spec.build().unwrap_or_else(|e| panic!("{text}: {e}"));
            assert!(g.node_count() > 0, "{text} built an empty graph");
        }
    }

    #[test]
    fn build_matches_generators() {
        let spec = TopologySpec::Torus2d { rows: 4, cols: 6 };
        assert_eq!(spec.build().unwrap(), generators::torus2d(4, 6));
        let spec = TopologySpec::RandomRegular {
            n: 30,
            d: 4,
            seed: 11,
        };
        assert_eq!(
            spec.build().unwrap(),
            generators::random_regular(30, 4, 11).unwrap()
        );
    }

    #[test]
    fn invalid_parameters_are_errors_not_panics() {
        let bad = [
            "torus2d:0:4",
            "torus:0",
            "hypercube:40",
            "cycle:2",
            "erdos_renyi:10:1.5:1",
            "geometric:10:-1:1",
            "random_regular:5:3:1",
            "rgg:1:1",
        ];
        for text in bad {
            let spec: TopologySpec = text.parse().unwrap_or_else(|e| panic!("{text}: {e}"));
            assert!(
                matches!(spec.build(), Err(GraphError::InvalidParameter(_))),
                "{text} should be rejected"
            );
        }
    }

    #[test]
    fn parse_errors() {
        for text in [
            "",
            "mesh:4:4",
            "torus2d:4",
            "torus2d:4:5:6",
            "torus2d:a:b",
            "hypercube",
            "random_regular:10:2",
        ] {
            assert!(
                text.parse::<TopologySpec>().is_err(),
                "'{text}' should not parse"
            );
        }
    }
}
