//! Network generators for the graph classes in the paper's evaluation
//! (Table I) plus classic topologies used in tests.
//!
//! All randomized generators take an explicit seed and are fully
//! deterministic for a fixed seed.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{RngExt, SeedableRng};

use crate::builder::GraphBuilder;
use crate::csr::{Graph, GraphKind, NodeId};
use crate::error::GraphError;
use crate::traversal::component_labels;

/// Two-dimensional torus with side lengths `rows × cols`, nodes in
/// row-major order; each node is connected to its 4-neighborhood with
/// periodic (wrap-around) boundaries.
///
/// For side length 1 or 2 the wrap-around edge coincides with the direct
/// edge and is inserted once (no parallel edges), so e.g. `torus2d(2, 2)`
/// is the 4-cycle.
///
/// # Panics
///
/// Panics if `rows == 0 || cols == 0`.
pub fn torus2d(rows: usize, cols: usize) -> Graph {
    torus(&[rows, cols])
}

/// k-dimensional torus with the given side lengths (row-major layout).
///
/// # Panics
///
/// Panics if `dims` is empty or any side is 0.
pub fn torus(dims: &[usize]) -> Graph {
    assert!(!dims.is_empty(), "torus needs at least one dimension");
    assert!(dims.iter().all(|&d| d > 0), "torus sides must be positive");
    let n: usize = dims.iter().product();
    let mut b = GraphBuilder::with_edge_capacity(n, n * dims.len());
    let mut strides = vec![1usize; dims.len()];
    for i in (0..dims.len().saturating_sub(1)).rev() {
        strides[i] = strides[i + 1] * dims[i + 1];
    }
    for v in 0..n {
        for (axis, &len) in dims.iter().enumerate() {
            if len == 1 {
                continue;
            }
            let coord = (v / strides[axis]) % len;
            let next = (coord + 1) % len;
            // Replace `coord` with `next` along `axis`.
            let u = v - coord * strides[axis] + next * strides[axis];
            b.add_edge_dedup(v as NodeId, u as NodeId);
        }
    }
    let mut g = b.build();
    g.set_kind(GraphKind::Torus(dims.iter().map(|&d| d as u32).collect()));
    g
}

/// Hypercube of dimension `dim` on `2^dim` nodes; nodes are adjacent iff
/// their indices differ in exactly one bit.
///
/// # Panics
///
/// Panics if `dim >= 32`.
pub fn hypercube(dim: u32) -> Graph {
    assert!(dim < 32, "hypercube dimension must be < 32");
    let n = 1usize << dim;
    let mut b = GraphBuilder::with_edge_capacity(n, n * dim as usize / 2);
    for v in 0..n {
        for bit in 0..dim {
            let u = v ^ (1usize << bit);
            if u > v {
                b.add_edge(v as NodeId, u as NodeId)
                    .expect("hypercube edge");
            }
        }
    }
    let mut g = b.build();
    g.set_kind(GraphKind::Hypercube(dim));
    g
}

/// Cycle on `n ≥ 3` nodes.
///
/// # Panics
///
/// Panics if `n < 3`.
pub fn cycle(n: usize) -> Graph {
    assert!(n >= 3, "cycle needs at least 3 nodes");
    let mut b = GraphBuilder::with_edge_capacity(n, n);
    for v in 0..n {
        b.add_edge(v as NodeId, ((v + 1) % n) as NodeId)
            .expect("cycle edge");
    }
    let mut g = b.build();
    g.set_kind(GraphKind::Cycle);
    g
}

/// Path on `n ≥ 1` nodes.
pub fn path(n: usize) -> Graph {
    let mut b = GraphBuilder::with_edge_capacity(n, n.saturating_sub(1));
    for v in 1..n {
        b.add_edge((v - 1) as NodeId, v as NodeId)
            .expect("path edge");
    }
    let mut g = b.build();
    g.set_kind(GraphKind::Path);
    g
}

/// Complete graph on `n` nodes.
pub fn complete(n: usize) -> Graph {
    let mut b = GraphBuilder::with_edge_capacity(n, n * n.saturating_sub(1) / 2);
    for u in 0..n {
        for v in (u + 1)..n {
            b.add_edge(u as NodeId, v as NodeId).expect("complete edge");
        }
    }
    let mut g = b.build();
    g.set_kind(GraphKind::Complete);
    g
}

/// Star with hub 0 and `n - 1` leaves.
pub fn star(n: usize) -> Graph {
    let mut b = GraphBuilder::with_edge_capacity(n, n.saturating_sub(1));
    for v in 1..n {
        b.add_edge(0, v as NodeId).expect("star edge");
    }
    let mut g = b.build();
    g.set_kind(GraphKind::Star);
    g
}

/// Open (non-periodic) 2D grid `rows × cols` in row-major order.
pub fn grid2d(rows: usize, cols: usize) -> Graph {
    let n = rows * cols;
    let mut b = GraphBuilder::with_edge_capacity(n, 2 * n);
    for r in 0..rows {
        for c in 0..cols {
            let v = (r * cols + c) as NodeId;
            if c + 1 < cols {
                b.add_edge(v, v + 1).expect("grid edge");
            }
            if r + 1 < rows {
                b.add_edge(v, v + cols as NodeId).expect("grid edge");
            }
        }
    }
    b.build()
}

/// Erdős–Rényi `G(n, p)` graph.
///
/// Uses the geometric skipping method, so the cost is proportional to the
/// number of generated edges rather than `n²`.
pub fn erdos_renyi(n: usize, p: f64, seed: u64) -> Graph {
    assert!((0.0..=1.0).contains(&p), "p must be in [0, 1]");
    let mut b = GraphBuilder::new(n);
    if n < 2 || p == 0.0 {
        return b.build();
    }
    let mut rng = StdRng::seed_from_u64(seed);
    if p >= 1.0 {
        return complete(n);
    }
    // Iterate over the strictly-upper-triangular pairs in lexicographic
    // order, skipping ahead by geometrically distributed gaps.
    let log1p = (1.0 - p).ln();
    let mut v: i64 = 1;
    let mut w: i64 = -1;
    let n = n as i64;
    loop {
        let r: f64 = rng.random_range(0.0..1.0f64);
        let skip = ((1.0 - r).ln() / log1p).floor() as i64;
        w += 1 + skip;
        while w >= v && v < n {
            w -= v;
            v += 1;
        }
        if v >= n {
            break;
        }
        b.add_edge(v as NodeId, w as NodeId).expect("gnp edge");
    }
    b.build()
}

/// Random `d`-regular multigraph candidate via the configuration model
/// ([Wormald 1999], the construction cited by the paper), with self-loops
/// and parallel edges dropped.
///
/// The result is a simple graph whose degrees are *at most* `d`; for
/// `d = O(log n)` the expected number of dropped edges is `O(d²)`, which is
/// exactly the regime of the paper's "Random Graph (CM)" with
/// `d = ⌊log₂ n⌋`. Retries `attempts` times and keeps the candidate with
/// the fewest dropped edges.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if `n * d` is odd or `d >= n`.
pub fn random_regular(n: usize, d: usize, seed: u64) -> Result<Graph, GraphError> {
    if !(n * d).is_multiple_of(2) {
        return Err(GraphError::InvalidParameter(format!(
            "configuration model needs n*d even (n={n}, d={d})"
        )));
    }
    if d >= n {
        return Err(GraphError::InvalidParameter(format!(
            "degree d={d} must be smaller than n={n}"
        )));
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let attempts = 4;
    let mut best: Option<Graph> = None;
    for _ in 0..attempts {
        // Stubs: node v owns stubs v*d .. (v+1)*d. A uniform perfect
        // matching on stubs is a random pairing of a shuffled list.
        let mut stubs: Vec<NodeId> = (0..n as NodeId)
            .flat_map(|v| std::iter::repeat_n(v, d))
            .collect();
        stubs.shuffle(&mut rng);
        let mut b = GraphBuilder::with_edge_capacity(n, n * d / 2);
        for pair in stubs.chunks_exact(2) {
            b.add_edge_dedup(pair[0], pair[1]);
        }
        let g = b.build();
        let better = match &best {
            None => true,
            Some(prev) => g.edge_count() > prev.edge_count(),
        };
        if better {
            let perfect = g.edge_count() == n * d / 2;
            best = Some(g);
            if perfect {
                break;
            }
        }
    }
    Ok(best.expect("at least one attempt"))
}

/// Random geometric graph: `n` points uniform in `[0, √n]²`, nodes joined
/// when their Euclidean distance is at most `radius`; stray components are
/// then connected to the giant component by their closest node pair, as in
/// the paper's construction.
///
/// The paper uses `radius = 4·(log n)^(1/4) = 4·√(√(log n))` for
/// `n = 10⁴` (stated as `4·⁴√(log n)` in Table I); pass whatever radius the
/// experiment calls for.
pub fn random_geometric(n: usize, radius: f64, seed: u64) -> Graph {
    assert!(radius >= 0.0, "radius must be non-negative");
    let mut rng = StdRng::seed_from_u64(seed);
    let side = (n as f64).sqrt();
    let points: Vec<(f64, f64)> = (0..n)
        .map(|_| (rng.random_range(0.0..side), rng.random_range(0.0..side)))
        .collect();
    let mut b = GraphBuilder::new(n);
    if n == 0 {
        return b.build();
    }
    // Uniform cell grid of cell size `radius`: only neighboring cells can
    // contain points within range.
    // Cell size of `radius` makes neighbor search exact over the 3x3 cell
    // block; cap the grid at ~n cells so a tiny radius cannot blow up memory.
    let min_cell = side / (n as f64).sqrt().ceil().max(1.0);
    let cell_size = radius.max(min_cell).max(1e-9);
    let cells_per_side = ((side / cell_size).ceil() as usize).max(1);
    let cell_of = |p: (f64, f64)| -> (usize, usize) {
        let cx = ((p.0 / cell_size) as usize).min(cells_per_side - 1);
        let cy = ((p.1 / cell_size) as usize).min(cells_per_side - 1);
        (cx, cy)
    };
    let mut grid: Vec<Vec<NodeId>> = vec![Vec::new(); cells_per_side * cells_per_side];
    for (i, &p) in points.iter().enumerate() {
        let (cx, cy) = cell_of(p);
        grid[cy * cells_per_side + cx].push(i as NodeId);
    }
    let r2 = radius * radius;
    for (i, &p) in points.iter().enumerate() {
        let (cx, cy) = cell_of(p);
        for dy in -1i64..=1 {
            for dx in -1i64..=1 {
                let nx = cx as i64 + dx;
                let ny = cy as i64 + dy;
                if nx < 0 || ny < 0 || nx >= cells_per_side as i64 || ny >= cells_per_side as i64 {
                    continue;
                }
                for &j in &grid[ny as usize * cells_per_side + nx as usize] {
                    if (j as usize) <= i {
                        continue;
                    }
                    let q = points[j as usize];
                    let (ddx, ddy) = (p.0 - q.0, p.1 - q.1);
                    if ddx * ddx + ddy * ddy <= r2 {
                        b.add_edge(i as NodeId, j).expect("rgg edge");
                    }
                }
            }
        }
    }
    let mut g = b.build();
    // Patch disconnected components: repeatedly connect every non-giant
    // component to its closest node in the giant component.
    let labels = component_labels(&g);
    let num_components = labels.iter().max().map(|&m| m as usize + 1).unwrap_or(0);
    if num_components > 1 {
        let mut sizes = vec![0usize; num_components];
        for &l in &labels {
            sizes[l as usize] += 1;
        }
        let giant = sizes
            .iter()
            .enumerate()
            .max_by_key(|&(_, s)| *s)
            .map(|(i, _)| i as u32)
            .expect("non-empty");
        let giant_nodes: Vec<NodeId> = (0..n as NodeId)
            .filter(|&v| labels[v as usize] == giant)
            .collect();
        let mut extra: Vec<(NodeId, NodeId)> = Vec::new();
        for comp in 0..num_components as u32 {
            if comp == giant {
                continue;
            }
            let mut best: Option<(f64, NodeId, NodeId)> = None;
            for v in (0..n as NodeId).filter(|&v| labels[v as usize] == comp) {
                let p = points[v as usize];
                for &u in &giant_nodes {
                    let q = points[u as usize];
                    let d2 = (p.0 - q.0).powi(2) + (p.1 - q.1).powi(2);
                    if best.map(|(bd, _, _)| d2 < bd).unwrap_or(true) {
                        best = Some((d2, v, u));
                    }
                }
            }
            let (_, v, u) = best.expect("components are non-empty");
            extra.push((v, u));
        }
        let mut b = GraphBuilder::with_edge_capacity(n, g.edge_count() + extra.len());
        for &(u, v) in g.edges() {
            b.add_edge(u, v).expect("existing edge");
        }
        for (u, v) in extra {
            b.add_edge_dedup(u, v);
        }
        g = b.build();
    }
    g
}

/// The paper's "Random Graph (CM)": configuration model with
/// `d = ⌊log₂ n⌋` (Table I).
pub fn random_graph_cm(n: usize, seed: u64) -> Result<Graph, GraphError> {
    let mut d = (n as f64).log2().floor() as usize;
    if n * d % 2 == 1 {
        d -= 1; // keep n*d even, degree stays Θ(log n)
    }
    random_regular(n, d, seed)
}

/// The paper's random geometric graph configuration:
/// `n` points, `radius = 4·(log n)^(1/4)` (Table I).
pub fn rgg_paper(n: usize, seed: u64) -> Graph {
    let radius = 4.0 * (n as f64).ln().powf(0.25);
    random_geometric(n, radius, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traversal::connected_components;

    #[test]
    fn torus2d_structure() {
        let g = torus2d(5, 7);
        assert_eq!(g.node_count(), 35);
        assert_eq!(g.edge_count(), 2 * 35);
        assert!(g.nodes().all(|v| g.degree(v) == 4));
        assert!(g.is_connected());
        assert_eq!(*g.kind(), GraphKind::Torus(vec![5, 7]));
    }

    #[test]
    fn torus2d_wraps_around() {
        let g = torus2d(4, 4);
        // Node 0 = (0,0) must be adjacent to (0,3)=3 and (3,0)=12.
        assert!(g.has_edge(0, 3));
        assert!(g.has_edge(0, 12));
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(0, 4));
    }

    #[test]
    fn degenerate_small_torus() {
        let g = torus2d(2, 2); // == 4-cycle
        assert_eq!(g.edge_count(), 4);
        assert!(g.nodes().all(|v| g.degree(v) == 2));
        let g = torus2d(1, 5); // == 5-cycle
        assert_eq!(g.edge_count(), 5);
        assert!(g.is_connected());
    }

    #[test]
    fn torus_3d() {
        let g = torus(&[3, 3, 3]);
        assert_eq!(g.node_count(), 27);
        assert!(g.nodes().all(|v| g.degree(v) == 6));
        assert!(g.is_connected());
    }

    #[test]
    fn hypercube_structure() {
        let g = hypercube(6);
        assert_eq!(g.node_count(), 64);
        assert_eq!(g.edge_count(), 64 * 6 / 2);
        assert!(g.nodes().all(|v| g.degree(v) == 6));
        assert!(g.is_connected());
        assert_eq!(*g.kind(), GraphKind::Hypercube(6));
        // Adjacency iff Hamming distance 1.
        for u in g.nodes() {
            for &v in g.neighbor_nodes(u) {
                assert_eq!((u ^ v).count_ones(), 1);
            }
        }
    }

    #[test]
    fn classic_topologies() {
        assert_eq!(cycle(6).edge_count(), 6);
        assert_eq!(path(6).edge_count(), 5);
        assert_eq!(complete(6).edge_count(), 15);
        assert_eq!(star(6).edge_count(), 5);
        assert_eq!(star(6).degree(0), 5);
        let g = grid2d(3, 4);
        assert_eq!(g.node_count(), 12);
        assert_eq!(g.edge_count(), 3 * 3 + 2 * 4);
        assert!(g.is_connected());
    }

    #[test]
    fn erdos_renyi_extremes() {
        assert_eq!(erdos_renyi(50, 0.0, 1).edge_count(), 0);
        assert_eq!(erdos_renyi(10, 1.0, 1).edge_count(), 45);
    }

    #[test]
    fn erdos_renyi_density_is_plausible() {
        let n = 400;
        let p = 0.05;
        let g = erdos_renyi(n, p, 42);
        let expected = p * (n * (n - 1) / 2) as f64;
        let got = g.edge_count() as f64;
        assert!(
            (got - expected).abs() < 4.0 * expected.sqrt() + 10.0,
            "edges {got} vs expected {expected}"
        );
    }

    #[test]
    fn erdos_renyi_is_deterministic_per_seed() {
        let a = erdos_renyi(100, 0.1, 7);
        let b = erdos_renyi(100, 0.1, 7);
        assert_eq!(a, b);
        let c = erdos_renyi(100, 0.1, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn random_regular_rejects_bad_params() {
        assert!(random_regular(5, 3, 1).is_err()); // nd odd
        assert!(random_regular(4, 4, 1).is_err()); // d >= n
    }

    #[test]
    fn random_regular_degrees_close_to_d() {
        let n = 500;
        let d = 8;
        let g = random_regular(n, d, 3).unwrap();
        assert!(g.max_degree() <= d);
        // The configuration model drops O(d^2) edges in expectation.
        assert!(g.edge_count() >= n * d / 2 - 5 * d * d);
        assert!(g.is_connected(), "random regular graph should be connected");
    }

    #[test]
    fn random_graph_cm_paper_settings_scaled() {
        let g = random_graph_cm(4096, 11).unwrap();
        assert_eq!(g.node_count(), 4096);
        assert!(g.max_degree() <= 12); // log2(4096) = 12
        assert!(g.is_connected());
    }

    #[test]
    fn rgg_is_connected_after_patching() {
        let g = random_geometric(300, 1.2, 5);
        assert_eq!(g.node_count(), 300);
        assert_eq!(connected_components(&g), 1);
    }

    #[test]
    fn rgg_paper_radius_is_dense_enough() {
        let g = rgg_paper(500, 9);
        assert!(g.is_connected());
        // With r = 4 (ln n)^{1/4} ≈ 6.3 at n=500 on a ~22x22 square the
        // graph is quite dense; just sanity-check the scale.
        assert!(g.min_degree() >= 1);
        assert!(g.max_degree() < 500);
    }

    #[test]
    fn rgg_zero_radius_still_connects() {
        // Degenerate: no geometric edges at all; the patching step must
        // still produce one component (a tree of closest pairs).
        let g = random_geometric(20, 0.0, 2);
        assert_eq!(connected_components(&g), 1);
        assert_eq!(g.edge_count(), 19);
    }

    #[test]
    fn rgg_deterministic_per_seed() {
        assert_eq!(random_geometric(200, 1.5, 4), random_geometric(200, 1.5, 4));
    }
}
