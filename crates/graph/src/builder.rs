//! Mutable builder that assembles a CSR [`Graph`].

use std::collections::HashSet;

use crate::csr::{EdgeId, Graph, GraphKind, NodeId};
use crate::error::GraphError;

/// Incremental builder for an undirected [`Graph`].
///
/// Edges may be added in any order and with either endpoint order; they are
/// canonicalized to `u < v`. Self-loops and duplicates are rejected.
///
/// # Example
///
/// ```
/// use sodiff_graph::GraphBuilder;
///
/// let mut b = GraphBuilder::new(4);
/// b.add_edge(0, 1).unwrap();
/// b.add_edge(3, 1).unwrap();
/// let g = b.build();
/// assert_eq!(g.edge_count(), 2);
/// assert_eq!(g.edge(1), (1, 3)); // canonicalized
/// ```
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    node_count: usize,
    edges: Vec<(NodeId, NodeId)>,
    seen: HashSet<(NodeId, NodeId)>,
}

impl GraphBuilder {
    /// Creates a builder for a graph on `node_count` nodes (ids `0..n`).
    pub fn new(node_count: usize) -> Self {
        Self {
            node_count,
            edges: Vec::new(),
            seen: HashSet::new(),
        }
    }

    /// Creates a builder with preallocated capacity for `edges` edges.
    pub fn with_edge_capacity(node_count: usize, edges: usize) -> Self {
        Self {
            node_count,
            edges: Vec::with_capacity(edges),
            seen: HashSet::with_capacity(edges),
        }
    }

    /// Number of nodes this builder was created with.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Number of edges added so far.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Returns `true` if the undirected edge `{u, v}` is already present.
    pub fn contains_edge(&self, u: NodeId, v: NodeId) -> bool {
        let key = if u < v { (u, v) } else { (v, u) };
        self.seen.contains(&key)
    }

    /// Adds the undirected edge `{u, v}`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfRange`], [`GraphError::SelfLoop`], or
    /// [`GraphError::DuplicateEdge`] when the edge is invalid.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) -> Result<(), GraphError> {
        for node in [u, v] {
            if node as usize >= self.node_count {
                return Err(GraphError::NodeOutOfRange {
                    node,
                    node_count: self.node_count,
                });
            }
        }
        if u == v {
            return Err(GraphError::SelfLoop(u));
        }
        let key = if u < v { (u, v) } else { (v, u) };
        if !self.seen.insert(key) {
            return Err(GraphError::DuplicateEdge(key.0, key.1));
        }
        self.edges.push(key);
        Ok(())
    }

    /// Adds `{u, v}` if it is not a self-loop or duplicate; returns whether
    /// the edge was inserted.
    ///
    /// # Panics
    ///
    /// Panics if a node id is out of range (that is a programming error in
    /// generator code, not a data condition).
    pub fn add_edge_dedup(&mut self, u: NodeId, v: NodeId) -> bool {
        match self.add_edge(u, v) {
            Ok(()) => true,
            Err(GraphError::SelfLoop(_)) | Err(GraphError::DuplicateEdge(..)) => false,
            Err(e) => panic!("add_edge_dedup: {e}"),
        }
    }

    /// Finalizes the builder into an immutable CSR [`Graph`].
    pub fn build(self) -> Graph {
        self.build_with_kind(GraphKind::Generic)
    }

    pub(crate) fn build_with_kind(mut self, kind: GraphKind) -> Graph {
        // Canonical edge ids are assigned in sorted order so that rebuilding
        // the same edge set always yields the same graph regardless of
        // insertion order.
        self.edges.sort_unstable();
        let n = self.node_count;
        let mut degrees = vec![0usize; n];
        for &(u, v) in &self.edges {
            degrees[u as usize] += 1;
            degrees[v as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut acc = 0usize;
        offsets.push(0);
        for &d in &degrees {
            acc += d;
            offsets.push(acc);
        }
        let mut cursor = offsets.clone();
        let mut adj_nodes = vec![0 as NodeId; acc];
        let mut adj_edges = vec![0 as EdgeId; acc];
        for (e, &(u, v)) in self.edges.iter().enumerate() {
            let e = e as EdgeId;
            adj_nodes[cursor[u as usize]] = v;
            adj_edges[cursor[u as usize]] = e;
            cursor[u as usize] += 1;
            adj_nodes[cursor[v as usize]] = u;
            adj_edges[cursor[v as usize]] = e;
            cursor[v as usize] += 1;
        }
        Graph::from_parts(offsets, adj_nodes, adj_edges, self.edges, kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_self_loop() {
        let mut b = GraphBuilder::new(2);
        assert_eq!(b.add_edge(1, 1), Err(GraphError::SelfLoop(1)));
    }

    #[test]
    fn rejects_duplicate_in_both_orders() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 2).unwrap();
        assert_eq!(b.add_edge(2, 0), Err(GraphError::DuplicateEdge(0, 2)));
        assert_eq!(b.add_edge(0, 2), Err(GraphError::DuplicateEdge(0, 2)));
    }

    #[test]
    fn rejects_out_of_range() {
        let mut b = GraphBuilder::new(2);
        assert!(matches!(
            b.add_edge(0, 5),
            Err(GraphError::NodeOutOfRange { node: 5, .. })
        ));
    }

    #[test]
    fn dedup_insert_reports_insertion() {
        let mut b = GraphBuilder::new(3);
        assert!(b.add_edge_dedup(0, 1));
        assert!(!b.add_edge_dedup(1, 0));
        assert!(!b.add_edge_dedup(2, 2));
        assert_eq!(b.edge_count(), 1);
    }

    #[test]
    fn build_is_insertion_order_independent() {
        let mut b1 = GraphBuilder::new(4);
        b1.add_edge(0, 1).unwrap();
        b1.add_edge(2, 3).unwrap();
        b1.add_edge(1, 2).unwrap();
        let mut b2 = GraphBuilder::new(4);
        b2.add_edge(2, 1).unwrap();
        b2.add_edge(3, 2).unwrap();
        b2.add_edge(1, 0).unwrap();
        assert_eq!(b1.build(), b2.build());
    }

    #[test]
    fn empty_graph_builds() {
        let g = GraphBuilder::new(0).build();
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.max_degree(), 0);
    }

    #[test]
    fn isolated_nodes_have_degree_zero() {
        let mut b = GraphBuilder::new(5);
        b.add_edge(0, 1).unwrap();
        let g = b.build();
        assert_eq!(g.degree(4), 0);
        assert!(g.neighbor_nodes(4).is_empty());
    }
}
