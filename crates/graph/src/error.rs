//! Error type for graph construction.

use std::error::Error;
use std::fmt;

use crate::NodeId;

/// Errors produced while building a [`crate::Graph`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GraphError {
    /// A node id was `>= n`.
    NodeOutOfRange {
        /// The offending node id.
        node: NodeId,
        /// The number of nodes in the builder.
        node_count: usize,
    },
    /// An edge `{v, v}` was inserted.
    SelfLoop(NodeId),
    /// The same undirected edge was inserted twice.
    DuplicateEdge(NodeId, NodeId),
    /// A generator was asked for an impossible configuration
    /// (e.g. a `d`-regular graph with `n * d` odd, or `d >= n`).
    InvalidParameter(String),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfRange { node, node_count } => {
                write!(f, "node {node} out of range (graph has {node_count} nodes)")
            }
            GraphError::SelfLoop(v) => write!(f, "self-loop at node {v}"),
            GraphError::DuplicateEdge(u, v) => write!(f, "duplicate edge {{{u}, {v}}}"),
            GraphError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
        }
    }
}

impl Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(GraphError::SelfLoop(3).to_string(), "self-loop at node 3");
        assert_eq!(
            GraphError::DuplicateEdge(1, 2).to_string(),
            "duplicate edge {1, 2}"
        );
        assert!(GraphError::NodeOutOfRange {
            node: 9,
            node_count: 4
        }
        .to_string()
        .contains("out of range"));
        assert!(GraphError::InvalidParameter("nd odd".into())
            .to_string()
            .contains("nd odd"));
    }
}
